package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	demi "demikernel"
	"demikernel/internal/fabric"
	"demikernel/internal/membuf"
	"demikernel/internal/metrics"
	"demikernel/internal/nic"
	"demikernel/internal/offload"
	"demikernel/internal/rdma"
	"demikernel/internal/simclock"
)

// runE2 reproduces Table 1: the taxonomy of kernel-bypass accelerators
// and, per libOS, the OS functionality that had to be supplied in
// software to close the gap.
func runE2(seed int64) (*Result, error) {
	res := &Result{}
	c := demi.NewCluster(seed)
	nodes := map[string]*demi.Node{
		"catnap":  c.MustSpawn(demi.Catnap, demi.WithHost(1)),
		"catnip":  c.MustSpawn(demi.Catnip, demi.WithHost(2)),
		"catmint": c.MustSpawn(demi.Catmint, demi.WithHost(3)),
	}
	catfishNode, err := c.Spawn(demi.Catfish, demi.WithBlocks(0))
	if err != nil {
		return nil, err
	}
	nodes["catfish"] = catfishNode

	tbl := metrics.NewTable("E2: accelerator taxonomy (Table 1) and the software gap",
		"libOS", "bypass", "HW transport", "HW offloads", "software the libOS supplies")
	order := []string{"catnap", "catnip", "catmint", "catfish"}
	feats := map[string]demi.Features{}
	for _, name := range order {
		f := nodes[name].Features()
		feats[name] = f
		tbl.AddRow(name, f.KernelBypass, f.HWTransport, f.HWOffloads,
			strings.Join(f.SoftwareSupplied, "; "))
	}
	res.Tables = append(res.Tables, tbl)

	res.check("only the kernel libOS lacks bypass",
		!feats["catnap"].KernelBypass && feats["catnip"].KernelBypass &&
			feats["catmint"].KernelBypass && feats["catfish"].KernelBypass, "")
	res.check("DPDK-class device needs the most software (a full stack)",
		len(feats["catnip"].SoftwareSupplied) > len(feats["catmint"].SoftwareSupplied),
		"catnip supplies %d components, catmint %d",
		len(feats["catnip"].SoftwareSupplied), len(feats["catmint"].SoftwareSupplied))
	res.check("RDMA provides transport in hardware, DPDK does not",
		feats["catmint"].HWTransport && !feats["catnip"].HWTransport, "")
	return res, nil
}

// runE7 reproduces §4.5: region-amortised transparent registration vs
// explicit per-buffer registration, and free-protection for in-flight
// buffers.
func runE7(seed int64) (*Result, error) {
	res := &Result{}
	model := simclock.Datacenter2019()
	const nMessages = 256
	const msgSize = 4096

	// Explicit per-message registration (raw verbs discipline).
	sw := fabric.NewSwitch(&model, seed)
	rawDev := rdma.New(&model, sw, fabric.MAC{0x02, 0, 0, 0, 0, 0x51})
	pd := rawDev.AllocPD()
	for i := 0; i < nMessages; i++ {
		mr := pd.RegisterMemory(make([]byte, msgSize))
		_ = mr
	}
	rawStats := rawDev.Stats()
	rawCost := simclock.Lat(rawStats.Registrations) * model.RegistrationNS

	// LibOS pool (catmint arenas).
	c := demi.NewCluster(seed)
	node := c.MustSpawn(demi.Catmint, demi.WithHost(1))
	var sgas []demi.SGA
	for i := 0; i < nMessages; i++ {
		sgas = append(sgas, node.AllocSGA(msgSize))
	}
	for _, s := range sgas {
		s.Free()
	}
	poolRegs := node.Catmint.Device().Stats().Registrations
	poolCost := simclock.Lat(poolRegs) * model.RegistrationNS
	poolPinned := node.Catmint.Device().Stats().PinnedBytes

	tbl := metrics.NewTable("E7a: registering memory for 256 x 4KB messages",
		"approach", "registrations", "registration cost", "pinned bytes")
	tbl.AddRow("explicit per-buffer (raw verbs)", rawStats.Registrations, rawCost, rawStats.PinnedBytes)
	tbl.AddRow("libOS regions (catmint pool)", poolRegs, poolCost, poolPinned)
	res.Tables = append(res.Tables, tbl)

	// Free-protection: the app frees while the device holds the buffer.
	mem := membuf.NewManager(&model)
	violations := 0
	for i := 0; i < nMessages; i++ {
		b := mem.Alloc(msgSize)
		b.HoldForIO() // device starts DMA
		b.Free()      // application frees immediately (§4.5 allows this)
		// The "device" touches the buffer after the app free; if the
		// allocator recycled it, another alloc could alias it.
		probe := mem.Alloc(msgSize)
		if &probe.Bytes()[0] == &b.Bytes()[0] {
			violations++
		}
		probe.Free()
		b.ReleaseFromIO() // device completes; now it recycles
	}
	st := mem.Stats()
	tbl2 := metrics.NewTable("E7b: free-protection for in-flight buffers",
		"metric", "value")
	tbl2.AddRow("app frees while in flight", nMessages)
	tbl2.AddRow("deferred deallocations", st.DeferredFrees)
	tbl2.AddRow("use-after-free aliasing violations", violations)
	res.Tables = append(res.Tables, tbl2)

	res.check("libOS registration is amortised (>=64x fewer registrations)",
		rawStats.Registrations >= 64*poolRegs,
		"explicit=%d pooled=%d", rawStats.Registrations, poolRegs)
	res.check("every early free was deferred", st.DeferredFrees == nMessages,
		"deferred=%d", st.DeferredFrees)
	res.check("no in-flight buffer was recycled", violations == 0, "violations=%d", violations)
	return res, nil
}

// runE8 reproduces §4.2/§4.3: running a queue filter on the device frees
// the host CPU, and key-based steering improves cache utilisation.
func runE8(seed int64) (*Result, error) {
	res := &Result{}
	model := simclock.Datacenter2019()
	const nFrames = 2000
	const keepEvery = 4 // 25% of traffic matches

	macTx := fabric.MAC{0x02, 0, 0, 0, 0, 0x61}
	macRx := fabric.MAC{0x02, 0, 0, 0, 0, 0x62}
	mkFrame := func(i int) []byte {
		payload := "cold-data"
		if i%keepEvery == 0 {
			payload = "KEEP-data"
		}
		f := append(append(append([]byte{}, macRx[:]...), macTx[:]...), 0x08, 0x00)
		return append(f, payload...)
	}
	spec := offload.FilterSpec{
		Name:  "keep",
		Frame: func(f []byte) bool { return len(f) > 14 && f[14] == 'K' },
	}

	run := func(onDevice bool) (hostEvals int, hostCost simclock.Lat, devEvals int64, delivered int) {
		sw := fabric.NewSwitch(&model, seed)
		tx := nic.New(&model, sw, nic.Config{MAC: macTx})
		rx := nic.New(&model, sw, nic.Config{MAC: macRx, RingDepth: nFrames})
		if onDevice {
			offload.InstallDrop(rx, spec)
		}
		for i := 0; i < nFrames; i++ {
			tx.Tx(mkFrame(i), 0)
		}
		for {
			frames := rx.RxBurst(0, 256)
			if len(frames) == 0 {
				break
			}
			for _, f := range frames {
				if onDevice {
					delivered++
					continue
				}
				// CPU fallback: the host evaluates the predicate.
				hostEvals++
				hostCost += model.FilterNS
				if spec.Frame(f.Data) {
					delivered++
				}
			}
		}
		return hostEvals, hostCost, rx.Stats().FilterEvals, delivered
	}

	cpuEvals, cpuCost, _, cpuDelivered := run(false)
	nicEvals, nicCost, devEvals, nicDelivered := run(true)

	tbl := metrics.NewTable("E8a: filter placement for 2000 frames (25% match)",
		"placement", "host evals", "host filter cost", "device evals", "matches delivered")
	tbl.AddRow("CPU fallback", cpuEvals, cpuCost, 0, cpuDelivered)
	tbl.AddRow("device (NIC filter table)", nicEvals, nicCost, devEvals, nicDelivered)
	res.Tables = append(res.Tables, tbl)

	// Steering: key-affine placement vs random spray over core caches.
	const nCores, cacheCap, nKeys, nAccesses = 4, 64, 512, 30000
	r := rand.New(rand.NewSource(seed))
	steered := offload.NewCacheSim(nCores, cacheCap)
	sprayed := offload.NewCacheSim(nCores, cacheCap)
	for i := 0; i < nAccesses; i++ {
		// Zipf-ish skew: small keyspace hit often.
		var key string
		if r.Intn(10) < 7 {
			key = fmt.Sprintf("hot-%02d", r.Intn(nKeys/16))
		} else {
			key = fmt.Sprintf("key-%03d", r.Intn(nKeys))
		}
		steered.Access(offload.QueueForKey([]byte(key), nCores), key)
		sprayed.Access(r.Intn(nCores), key)
	}
	tbl2 := metrics.NewTable("E8b: cache hit ratio with key-based steering (§4.3)",
		"steering", "hit ratio")
	tbl2.AddRow("key-affine (NIC steers by key)", fmt.Sprintf("%.3f", steered.HitRatio()))
	tbl2.AddRow("random spray", fmt.Sprintf("%.3f", sprayed.HitRatio()))
	res.Tables = append(res.Tables, tbl2)

	res.check("device filter eliminates host filter work",
		nicEvals == 0 && cpuEvals == nFrames, "host evals: cpu=%d nic=%d", cpuEvals, nicEvals)
	res.check("same matches delivered either way",
		cpuDelivered == nicDelivered && nicDelivered == nFrames/keepEvery,
		"cpu=%d nic=%d", cpuDelivered, nicDelivered)
	res.check("key steering improves cache hit ratio",
		steered.HitRatio() > sprayed.HitRatio()+0.05,
		"steered %.3f vs sprayed %.3f", steered.HitRatio(), sprayed.HitRatio())
	return res, nil
}

// runE13 reproduces the §2 receive-buffer sizing dilemma on raw verbs,
// then shows the libOS managing it.
func runE13(seed int64) (*Result, error) {
	res := &Result{}
	model := simclock.Datacenter2019()
	const burst = 64
	const msgSize = 1024

	tbl := metrics.NewTable("E13: 64-message burst vs posted receive buffers",
		"configuration", "posted recvs", "failed sends (RNR)", "over-provisioned bytes")

	failuresAt := map[int]int{}
	for _, posted := range []int{8, 16, 32, 64, 128} {
		sw := fabric.NewSwitch(&model, seed)
		snd := rdma.New(&model, sw, fabric.MAC{0x02, 0, 0, 0, 0, 0x71})
		rcv := rdma.New(&model, sw, fabric.MAC{0x02, 0, 0, 0, 0, 0x72})

		rpd := rcv.AllocPD()
		rscq, rrcq := rcv.CreateCQ(), rcv.CreateCQ()
		l, err := rcv.Listen(9, rpd, rscq, rrcq)
		if err != nil {
			return nil, err
		}
		spd := snd.AllocPD()
		sscq, srcq := snd.CreateCQ(), snd.CreateCQ()
		qp := snd.Connect(rcv.MAC(), 9, spd, sscq, srcq)
		for snd.Poll()+rcv.Poll() > 0 {
		}
		rqp, ok := l.Accept()
		if !ok {
			return nil, fmt.Errorf("no accepted QP")
		}
		recvMR := rpd.RegisterMemory(make([]byte, posted*msgSize))
		for i := 0; i < posted; i++ {
			rqp.PostRecv(uint64(i), rdma.Sge{MR: recvMR, Off: i * msgSize, Len: msgSize})
		}
		sendMR := spd.RegisterMemory(make([]byte, msgSize))
		// The raw application bursts without coordinating with the
		// receiver — the failure mode the paper describes.
		for i := 0; i < burst; i++ {
			if err := qp.PostSend(uint64(i), rdma.Sge{MR: sendMR, Off: 0, Len: msgSize}); err != nil {
				return nil, err
			}
		}
		for snd.Poll()+rcv.Poll() > 0 {
		}
		failed := 0
		for _, wc := range sscq.Poll(0) {
			if wc.Status == rdma.StatusRNR {
				failed++
			}
		}
		failuresAt[posted] = failed
		waste := 0
		if posted > burst {
			waste = (posted - burst) * msgSize
		}
		tbl.AddRow(fmt.Sprintf("raw verbs, app-posted"), posted, failed, waste)
	}

	// The libOS path: catmint keeps its window posted and the queue API
	// paces pushes, so the same burst count completes without failures.
	rig, err := newEchoRig("catmint", seed, 0)
	if err != nil {
		return nil, err
	}
	libosFailed := 0
	for i := 0; i < burst; i++ {
		if _, err := rig.client.RTT(make([]byte, msgSize), 0); err != nil {
			libosFailed++
		}
	}
	rnr := rig.srvNode.Catmint.Device().Stats().RNRNaks +
		rig.cliNode.Catmint.Device().Stats().RNRNaks
	rig.close()
	tbl.AddRow("catmint (libOS-managed)", "libOS window", libosFailed, 0)
	tbl.Note = "raw verbs: the application guesses; the libOS owns buffer management (§4.5)"
	res.Tables = append(res.Tables, tbl)

	res.check("under-provisioning fails (posted=8 loses most of the burst)",
		failuresAt[8] == burst-8, "failed=%d", failuresAt[8])
	res.check("exact provisioning (64) succeeds", failuresAt[64] == 0,
		"failed=%d", failuresAt[64])
	res.check("libOS management avoids failures entirely",
		libosFailed == 0 && rnr == 0, "failed=%d rnr=%d", libosFailed, rnr)
	return res, nil
}
