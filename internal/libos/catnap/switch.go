// Live libOS switching, catnap side: endpoints export to / adopt from
// the transport-neutral core.PortState. The kernel keeps owning the
// netstack either way — promotion detaches the protocol objects from
// their file descriptors without closing them, demotion wraps live
// objects in fresh descriptors. Control-plane only: no syscall or copy
// costs are charged for the handoff itself.
package catnap

import (
	"demikernel/internal/core"
	"demikernel/internal/sga"
)

// Export implements core.PortExporter. The old endpoint is left
// closed-in-place without closing the connection; stale concurrent
// operations fail with queue.ErrClosed (retriable by failover).
func (t *Transport) Export(cep core.Endpoint) (core.PortState, bool) {
	e, ok := cep.(*endpoint)
	if !ok || e.t != t {
		return core.PortState{}, false
	}
	e.mu.Lock()
	st := core.PortState{
		Bound:     e.bound,
		Listening: e.listening,
		Framer:    e.framer,
		Ready:     e.ready,
		Waiters:   e.waiters,
	}
	if e.fd >= 0 {
		if c, err := t.k.DetachConn(e.fd); err == nil {
			st.Conn = c
		}
	}
	if e.listening {
		if l, err := t.k.DetachListener(e.listenFD); err == nil {
			st.Listener = l
		}
	}
	for i := range e.txq {
		f := &e.txq[i]
		rest := append([]byte(nil), f.data[f.sent:]...)
		st.Tx = append(st.Tx, core.PortTx{Data: rest, Cost: f.cost, Done: f.done})
	}
	e.txq = nil
	e.ready = nil
	e.waiters = nil
	e.fd = -1
	e.listenFD = 0
	e.listening = false
	e.closed = true
	e.framer = sga.Framer{}
	e.mu.Unlock()
	return st, true
}

// Adopt implements core.PortAdopter: it wraps the exported protocol
// objects in fresh kernel descriptors and rebuilds the endpoint's soft
// state around them.
func (t *Transport) Adopt(st core.PortState) (core.Endpoint, error) {
	e := &endpoint{
		t:       t,
		fd:      -1,
		bound:   st.Bound,
		framer:  st.Framer,
		ready:   st.Ready,
		waiters: st.Waiters,
	}
	e.framer.SetClone(nil) // catnap decodes into plain heap SGAs
	if st.Conn != nil {
		e.fd = t.k.AdoptConn(st.Conn)
	}
	if st.Listener != nil {
		e.listenFD = t.k.AdoptListener(st.Listener)
		e.listening = true
	}
	for _, f := range st.Tx {
		e.txq = append(e.txq, txFrame{data: f.Data, cost: f.Cost, done: f.Done})
	}
	t.adopt(e)
	return e, nil
}
