package demikernel

// WithTenant spawn-surface tests: tenant nodes come up as queue groups
// on the cluster's one shared NIC, keep full TCP service to outside
// clients, reject identity collisions, and crash without taking the
// shared device's link (and therefore their neighbors) down with them.

import (
	"errors"
	"testing"

	"demikernel/internal/core"
)

func TestSpawnWithTenant(t *testing.T) {
	c := NewCluster(81)

	srv := c.MustSpawn(Catnip, WithHost(1), WithTenant("alpha", TenantPolicy{
		FrameQuotaBytes: 1 << 20,
		TxWeight:        2,
	}))
	if srv.Tenant == nil || srv.Tenant.ID != "alpha" {
		t.Fatalf("tenant identity not attached: %+v", srv.Tenant)
	}
	if srv.Catnip.Group() == nil {
		t.Fatal("tenant transport is not bound to a queue group")
	}
	if got, ok := c.Tenants().Get("alpha"); !ok || got != srv.Tenant {
		t.Fatal("tenant not registered in the cluster registry")
	}

	// A plain client on its own dedicated NIC talks to the tenant
	// exactly as it would to a whole-device node.
	cli := c.MustSpawn(Catnip, WithHost(2))
	cqd, sqd, cleanup := connectNodes(t, c, cli, srv, 80)
	defer cleanup()
	echoOnce(t, cli, cqd, srv, sqd, "tenant slice of a shared NIC")

	// The tenant's traffic was charged against its own ledger and fully
	// credited back as frames were consumed or released.
	if frames, bytes := srv.Tenant.Ledger.Outstanding(); frames < 0 || bytes < 0 {
		t.Fatalf("ledger went negative: %d frames / %d bytes", frames, bytes)
	}

	// A second, sharded tenant claims its own contiguous queues on the
	// same device.
	srv2 := c.MustSpawn(Catnip, WithHost(3), WithShards(2),
		WithTenant("beta", TenantPolicy{TxWeight: 1}))
	if srv2.Sharded == nil || srv2.Sharded.Set.Group() == nil {
		t.Fatalf("sharded tenant shape: %+v", srv2)
	}
	if q := srv2.Sharded.Set.Group().NumRxQueues(); q != 2 {
		t.Fatalf("sharded tenant owns %d queues, want 2", q)
	}
	if srv2.Catnip.Device() != srv.Catnip.Device() {
		t.Fatal("tenants spawned on different devices, want one shared NIC")
	}
}

func TestSpawnWithTenantRejectsMisuse(t *testing.T) {
	c := NewCluster(82)
	if _, err := c.Spawn(Catnap, WithHost(1), WithTenant("a", TenantPolicy{})); !errors.Is(err, core.ErrNotSupported) {
		t.Fatalf("WithTenant on catnap = %v, want ErrNotSupported", err)
	}
	c.MustSpawn(Catnip, WithHost(1), WithTenant("a", TenantPolicy{}))
	if _, err := c.Spawn(Catnip, WithHost(2), WithTenant("a", TenantPolicy{})); err == nil {
		t.Fatal("duplicate tenant ID spawned")
	}
}

func TestTenantCrashSparesNeighbors(t *testing.T) {
	c := NewCluster(83)
	a := c.MustSpawn(Catnip, WithHost(1), WithTenant("a", TenantPolicy{}))
	b := c.MustSpawn(Catnip, WithHost(2), WithTenant("b", TenantPolicy{}))
	cli := c.MustSpawn(Catnip, WithHost(3))

	cqd, sqd, cleanup := connectNodes(t, c, cli, b, 80)
	defer cleanup()
	echoOnce(t, cli, cqd, b, sqd, "before the crash")

	// Tenant a dies. The shared NIC's link must stay up — b is serving
	// through the same port.
	if _, err := a.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if !c.Switch.LinkUp(a.Catnip.Device().PortID()) {
		t.Fatal("tenant crash cut the shared NIC's link")
	}
	echoOnce(t, cli, cqd, b, sqd, "after the crash")

	// Device-side reclamation: the dead tenant holds no quota.
	if frames, bytes := a.Tenant.Ledger.Outstanding(); frames != 0 || bytes != 0 {
		t.Fatalf("crashed tenant still holds %d frames / %d bytes", frames, bytes)
	}
	if count, _, _ := a.Tenant.Ledger.Reclaims(); count == 0 {
		t.Fatal("crash did not run ledger reclamation")
	}

	// And the corpse comes back on the same queues, MAC, and IP.
	if err := a.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	cqd2, sqd2, cleanup2 := connectNodes(t, c, cli, a, 81)
	defer cleanup2()
	echoOnce(t, cli, cqd2, a, sqd2, "reborn tenant")
}
