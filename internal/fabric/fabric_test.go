package fabric

import (
	"testing"

	"demikernel/internal/simclock"
)

var (
	macA = MAC{0x02, 0, 0, 0, 0, 0xA}
	macB = MAC{0x02, 0, 0, 0, 0, 0xB}
	macC = MAC{0x02, 0, 0, 0, 0, 0xC}
)

func frame(dst, src MAC, payload string) Frame {
	data := make([]byte, 0, 14+len(payload))
	data = append(data, dst[:]...)
	data = append(data, src[:]...)
	data = append(data, 0x08, 0x00)
	data = append(data, payload...)
	return Frame{Data: data}
}

func newTestSwitch() *Switch {
	model := simclock.Datacenter2019()
	return NewSwitch(&model, 1)
}

func TestMACString(t *testing.T) {
	if got := macA.String(); got != "02:00:00:00:00:0a" {
		t.Fatalf("MAC.String = %q", got)
	}
	if !Broadcast.IsBroadcast() {
		t.Fatal("Broadcast must report IsBroadcast")
	}
	if macA.IsBroadcast() {
		t.Fatal("unicast MAC reports broadcast")
	}
}

func TestFloodThenLearn(t *testing.T) {
	sw := newTestSwitch()
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	pc := sw.NewPort(0)

	// A sends to B before anyone is learned: flood to B and C, not A.
	pa.Send(frame(macB, macA, "hello"))
	if _, ok := pa.Poll(); ok {
		t.Fatal("sender received its own flooded frame")
	}
	fb, ok := pb.Poll()
	if !ok {
		t.Fatal("B missed the flooded frame")
	}
	if string(fb.Data[14:]) != "hello" {
		t.Fatalf("payload = %q", fb.Data[14:])
	}
	if _, ok := pc.Poll(); !ok {
		t.Fatal("C missed the flooded frame")
	}

	// B replies; the switch has learned A, so only A receives.
	pb.Send(frame(macA, macB, "re"))
	if _, ok := pa.Poll(); !ok {
		t.Fatal("A missed the reply")
	}
	if _, ok := pc.Poll(); ok {
		t.Fatal("C received a unicast frame after learning")
	}

	// Now A→B is also learned.
	pa.Send(frame(macB, macA, "again"))
	if _, ok := pc.Poll(); ok {
		t.Fatal("C received learned unicast traffic")
	}
	if _, ok := pb.Poll(); !ok {
		t.Fatal("B missed learned unicast traffic")
	}
}

func TestBroadcastFloods(t *testing.T) {
	sw := newTestSwitch()
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	pc := sw.NewPort(0)
	pa.Send(frame(Broadcast, macA, "arp"))
	if _, ok := pb.Poll(); !ok {
		t.Fatal("B missed broadcast")
	}
	if _, ok := pc.Poll(); !ok {
		t.Fatal("C missed broadcast")
	}
	if _, ok := pa.Poll(); ok {
		t.Fatal("sender got its own broadcast")
	}
}

func TestWireCostAccumulates(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := NewSwitch(&model, 1)
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	_ = pb
	in := frame(macB, macA, "x")
	in.Cost = 100
	pa.Send(in)
	// flooded to b
	got, ok := sw.ports[1].Poll()
	if !ok {
		t.Fatal("no frame")
	}
	want := simclock.Lat(100) + model.WireDelayNS
	if got.Cost != want {
		t.Fatalf("cost = %v, want %v", got.Cost, want)
	}
	_ = pa
}

func TestRuntFramesDropped(t *testing.T) {
	sw := newTestSwitch()
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	pa.Send(Frame{Data: []byte{1, 2, 3}})
	if _, ok := pb.Poll(); ok {
		t.Fatal("runt frame was delivered")
	}
}

func TestRxRingOverflowDrops(t *testing.T) {
	sw := newTestSwitch()
	pa := sw.NewPort(0)
	pb := sw.NewPort(2) // tiny ring
	_ = pb
	for i := 0; i < 10; i++ {
		pa.Send(frame(macB, macA, "spam"))
	}
	st := sw.Stats()
	if st.DroppedRxFull == 0 {
		t.Fatal("expected overflow drops on tiny ring")
	}
	// The first sends flooded; count delivered+dropped matches sends per port.
	if st.Delivered == 0 {
		t.Fatal("nothing delivered at all")
	}
}

func TestLossInjection(t *testing.T) {
	sw := newTestSwitch()
	sw.SetImpairments(Impairments{LossRate: 1.0})
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	for i := 0; i < 5; i++ {
		pa.Send(frame(macB, macA, "gone"))
	}
	if _, ok := pb.Poll(); ok {
		t.Fatal("frame survived 100% loss")
	}
	if sw.Stats().InjectedLoss != 5 {
		t.Fatalf("InjectedLoss = %d, want 5", sw.Stats().InjectedLoss)
	}
}

func TestDuplicationInjection(t *testing.T) {
	sw := newTestSwitch()
	sw.SetImpairments(Impairments{DupRate: 1.0})
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	_ = pb
	pa.Send(frame(macB, macA, "twice"))
	n := 0
	for {
		if _, ok := sw.ports[1].Poll(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("received %d copies, want 2", n)
	}
}

func TestReorderInjection(t *testing.T) {
	sw := newTestSwitch()
	sw.SetImpairments(Impairments{ReorderRate: 1.0})
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	_ = pb
	pa.Send(frame(macB, macA, "1")) // held
	pa.Send(frame(macB, macA, "2")) // delivered first, then "1"
	var got []string
	for {
		f, ok := sw.ports[1].Poll()
		if !ok {
			break
		}
		got = append(got, string(f.Data[14:]))
	}
	if len(got) != 2 || got[0] != "2" || got[1] != "1" {
		t.Fatalf("order = %v, want [2 1]", got)
	}
}

func TestFlushReleasesHeldFrame(t *testing.T) {
	sw := newTestSwitch()
	sw.SetImpairments(Impairments{ReorderRate: 1.0})
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	_ = pb
	pa.Send(frame(macB, macA, "held"))
	if _, ok := sw.ports[1].Poll(); ok {
		t.Fatal("held frame delivered early")
	}
	sw.Flush()
	if _, ok := sw.ports[1].Poll(); !ok {
		t.Fatal("Flush did not release the held frame")
	}
}

func TestDeterministicInjection(t *testing.T) {
	run := func() Stats {
		model := simclock.Datacenter2019()
		sw := NewSwitch(&model, 42)
		sw.SetImpairments(Impairments{LossRate: 0.3, DupRate: 0.2})
		pa := sw.NewPort(0)
		pb := sw.NewPort(0)
		_ = pb
		for i := 0; i < 200; i++ {
			pa.Send(frame(macB, macA, "d"))
		}
		return sw.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different stats: %+v vs %+v", a, b)
	}
}
