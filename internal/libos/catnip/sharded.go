// Sharded catnip: N independent datapath shards over one multi-queue
// NIC, the paper's §3.1 scale-out recipe made concrete. RSS on the
// device steers each flow to one RX queue; each shard owns that queue's
// netstack instance, its memory manager, its frame pool, and every
// connection whose flow hashes to it. On the per-packet path nothing is
// shared between shards — not a lock, not a buffer pool, not a counter
// cache line. What little inter-shard traffic remains (a request that
// RSS delivered to a shard which does not own the key, control-plane
// ops) rides the bounded lock-free SPSC mesh in internal/shard.
package catnip

import (
	"fmt"
	"sync/atomic"

	"demikernel/internal/core"
	"demikernel/internal/fabric"
	"demikernel/internal/netstack"
	"demikernel/internal/nic"
	"demikernel/internal/shard"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// ShardSet is a set of catnip transports sharing one NIC, one MAC, one
// IP — and nothing else. Shard i polls RX queue i exclusively.
//
// A set may be provisioned with more shards than are active: the extra
// shards poll their (empty) queues and drain the mesh, and a live
// Resteer widens or narrows the RSS indirection to bring them into or
// out of the flow partition — the device-plane half of elastic
// resharding. Size() is the *active* count; Capacity() the provisioned
// one.
type ShardSet struct {
	dev *nic.Device
	// qg, when non-nil, is the tenant queue group the set is bound to:
	// the shards own a slice of a shared NIC instead of a whole device.
	qg     *nic.QueueGroup
	shards []*Transport
	group  *shard.Group
	neigh  *netstack.NeighborTable
	active atomic.Int32
}

// NewSharded attaches an n-shard catnip instance to the fabric switch.
// The device is configured with n RSS receive queues; shard i gets its
// own netstack (polling queue i), membuf manager, and frame pool.
//
// ARP needs special handling under RSS: ARP frames carry no IP/TCP
// tuple, so their hash would scatter them across queues and n-1 stacks
// would answer or miss. A hardware filter steers etherType 0x0806 to
// queue 0; shard 0 is the designated ARP speaker, and resolutions are
// published to a neighbor table shared (read-mostly, amortised to the
// control path) by every sibling stack.
func NewSharded(model *simclock.CostModel, sw *fabric.Switch, cfg Config, n int) *ShardSet {
	return NewShardedElastic(model, sw, cfg, n, n)
}

// NewShardedElastic is NewSharded with pre-provisioned headroom: the
// device gets capacity receive queues and capacity full shard
// verticals (stack, membuf, pool, mesh row), but RSS spreads new flows
// across only the first n. Resteer moves the active width anywhere in
// [1, capacity] while the set is live. capacity == n degenerates to
// the fixed layout.
func NewShardedElastic(model *simclock.CostModel, sw *fabric.Switch, cfg Config, n, capacity int) *ShardSet {
	if n <= 0 {
		panic("catnip: shard count must be positive")
	}
	if capacity < n {
		capacity = n
	}
	dev := nic.New(model, sw, nic.Config{MAC: cfg.MAC, RxQueues: capacity})
	if capacity > 1 {
		dev.AddFilter(nic.HWFilter{
			// EtherType ARP (0x0806) at the usual offset.
			Match:  func(f []byte) bool { return len(f) >= 14 && f[12] == 0x08 && f[13] == 0x06 },
			Action: nic.ActionSteer,
			Queue:  0,
		})
	}
	if n < capacity {
		if err := dev.SetRSSQueues(n); err != nil {
			panic(err)
		}
	}
	neigh := netstack.NewNeighborTable()
	s := &ShardSet{
		dev:   dev,
		group: shard.NewGroup(capacity, 0),
		neigh: neigh,
	}
	s.active.Store(int32(n))
	for i := 0; i < capacity; i++ {
		s.shards = append(s.shards, newOnDevice(model, dev, cfg, i, cfg.newPool(), neigh))
	}
	return s
}

// NewShardedOn attaches an n-shard catnip instance to a tenant queue
// group on a shared NIC: shard i polls the group's i-th queue. n must
// equal the group's queue count — the share-nothing contract is one
// shard per owned queue, no more, no fewer.
//
// No ARP hardware filter is installed here: on a multi-tenant device
// the classification table already steers each tenant's ARP traffic to
// that tenant's first queue, so shard 0 is the ARP speaker exactly as
// in the whole-device layout.
func NewShardedOn(model *simclock.CostModel, grp *nic.QueueGroup, cfg Config, n int) *ShardSet {
	if n <= 0 {
		panic("catnip: shard count must be positive")
	}
	if n != grp.NumRxQueues() {
		panic(fmt.Sprintf("catnip: %d shards over a %d-queue group", n, grp.NumRxQueues()))
	}
	neigh := netstack.NewNeighborTable()
	s := &ShardSet{
		dev:   grp.Device(),
		qg:    grp,
		group: shard.NewGroup(n, 0),
		neigh: neigh,
	}
	s.active.Store(int32(n))
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, newOnPort(model, grp.Device(), grp, cfg, i, cfg.newPool(), neigh))
	}
	return s
}

// Size returns the ACTIVE shard count: how many shards RSS spreads new
// flows across. Equal to Capacity() unless the set was provisioned
// elastic and resteered.
func (s *ShardSet) Size() int { return int(s.active.Load()) }

// Capacity returns the provisioned shard count.
func (s *ShardSet) Capacity() int { return len(s.shards) }

// Resteer repartitions the live flow space to m active shards: every
// established (and in-handshake) flow on a surviving shard is pinned
// to its current queue so the connection never moves, then the RSS
// indirection width flips to m so new flows spread across the new
// active set. Flows on retiring shards (index >= m) are deliberately
// left unpinned: re-hashed frames land on a surviving shard whose
// stack answers with RST, and the client's failover machinery redials
// into the new layout — bounded disruption instead of a stalled
// connection. Tenant-bound sets cannot resteer (the queue-group RSS
// range belongs to the device's isolation plane).
func (s *ShardSet) Resteer(m int) error {
	if s.qg != nil {
		return fmt.Errorf("catnip: tenant shard set cannot resteer: %w", core.ErrNotSupported)
	}
	if m < 1 || m > len(s.shards) {
		return fmt.Errorf("catnip: resteer to %d shards outside [1,%d]", m, len(s.shards))
	}
	old := int(s.active.Load())
	keep := old
	if m < keep {
		keep = m
	}
	pins := make(map[nic.FlowKey]int)
	for i := 0; i < keep; i++ {
		for _, fl := range s.shards[i].Stack().EstablishedFlows() {
			pins[nic.FlowKey{RemoteIP: fl.RemoteIP, RemotePort: fl.RemotePort, LocalPort: fl.LocalPort}] = i
		}
	}
	s.dev.SetFlowPins(pins)
	if err := s.dev.SetRSSQueues(m); err != nil {
		return err
	}
	s.active.Store(int32(m))
	return nil
}

// Shard returns shard i's transport; each shard is a complete
// core.Transport and is wrapped in its own core.LibOS by the facade.
func (s *ShardSet) Shard(i int) *Transport { return s.shards[i] }

// Device returns the shared multi-queue NIC.
func (s *ShardSet) Device() *nic.Device { return s.dev }

// Group returns the tenant queue group the set is bound to, or nil when
// the set owns the whole device.
func (s *ShardSet) Group() *nic.QueueGroup { return s.qg }

// Mesh returns the cross-shard SPSC message mesh. Shard worker i is the
// sole sender on rows (i→*) and sole receiver on columns (*→i).
func (s *ShardSet) Mesh() *shard.Group { return s.group }

// Neighbors returns the shared ARP resolution table.
func (s *ShardSet) Neighbors() *netstack.NeighborTable { return s.neigh }

// QueueOfFlow reports which shard RSS will deliver a flow to — the same
// computation the device performs per frame, exposed so clients can pick
// source ports that land their flow on a chosen shard and servers can
// partition their keyspace to match.
func (s *ShardSet) QueueOfFlow(srcIP, dstIP netstack.IPv4Addr, srcPort, dstPort uint16) int {
	return nic.RSSQueueFlow(srcIP, dstIP, srcPort, dstPort, s.Size())
}

// SourcePortFor searches the ephemeral range for a source port whose
// flow (localIP:port → remoteIP:remotePort) RSS-hashes to the target
// queue on a peer with peerShards receive queues. It starts the probe at
// a caller-supplied seed so concurrent dialers spread out. Panics only
// if no port in the range maps to the target — impossible for any
// non-degenerate hash with a 16k-port search space.
func SourcePortFor(localIP, remoteIP netstack.IPv4Addr, remotePort uint16, peerShards, targetQueue int, seed uint16) uint16 {
	if peerShards <= 1 {
		return 0 // any ephemeral port works; let the stack pick
	}
	const base, span = 49152, 16384
	for off := 0; off < span; off++ {
		p := base + (uint32(seed)+uint32(off))%span
		// Hash is computed with the *receiver's* orientation: at the
		// server NIC the frame's source is our local tuple.
		if nic.RSSQueueFlow(localIP, remoteIP, uint16(p), remotePort, peerShards) == targetQueue {
			return uint16(p)
		}
	}
	panic(fmt.Sprintf("catnip: no source port maps to shard %d/%d", targetQueue, peerShards))
}

// RegisterTelemetry lifts every shard's vertical (NIC shared, stack and
// membuf per shard) plus the cross-shard mesh counters into a registry:
// prefix.nic.*, prefix.shard.<i>.netstack.*, prefix.shard.<i>.membuf.*,
// prefix.shard.<i>.xs_*.
func (s *ShardSet) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	if s.qg != nil {
		s.qg.RegisterTelemetry(r, prefix+".nic")
	} else {
		s.dev.RegisterTelemetry(r, prefix+".nic")
	}
	for i, t := range s.shards {
		p := fmt.Sprintf("%s.shard.%d", prefix, i)
		netstack.RegisterStatsTelemetry(r, p+".netstack", t.StackStats)
		t.mem.RegisterTelemetry(r, p+".membuf")
		t.RegisterLifecycleTelemetry(r, p+".lifecycle")
	}
	s.group.RegisterTelemetry(r, prefix+".shard")
	r.RegisterFunc(prefix+".active_shards", func() int64 { return int64(s.Size()) })
}
