GO ?= go

.PHONY: all tier1 vet build test race statsmoke shardsmoke lifecyclesoak tenantsoak httpsoak storagesoak reshardsoak chaos bench benchsmoke benchall report clean

all: tier1

## tier1: the gate every PR must keep green — vet, build, full test
## suite, a short -race pass over the concurrency-heavy packages
## (the chaos engine, the user TCP stack, the pinned-memory allocator,
## the telemetry instruments, the qtoken completer, the cross-shard
## SPSC mesh, the sharded KV workers, the failover backoff machinery,
## and the simulated drift clock), a counter-consistency smoke
## (telemetry must conserve frames: TXed == delivered + every
## attributed drop, at the fabric, per NIC, and per stack — including
## across a crash/restart, the crash-time RxFlushed bucket folded in),
## a 2-shard KV scaling smoke (the sharded runtime must come up,
## align, and beat one shard), a crash/restart soak (the lifecycle
## tests repeated under -race: typed errors only, listener re-binding,
## failover recovery, frame conservation across the incarnation
## boundary), an HTTP workload soak (production-shaped traffic with
## slow readers and a mid-run crash/restart; stalled readers must
## become TCP backpressure, not unbounded buffering), and a
## one-iteration smoke of the hot-path benchmark suite so a broken
## benchmark rig fails the gate, not the nightly bench run.
tier1: vet build test race statsmoke shardsmoke lifecyclesoak tenantsoak httpsoak storagesoak reshardsoak benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/chaos/ ./internal/netstack/ ./internal/membuf/ ./internal/telemetry/ ./internal/queue/ ./internal/shard/ ./internal/apps/kv/ ./internal/apps/failover/ ./internal/apps/httpd/ ./internal/simclock/ ./internal/libos/catnip/ ./internal/tenant/ ./internal/nic/ ./internal/uring/ ./internal/workload/
	$(GO) test -race -count=1 -run 'TestChaosShardedKV' .

## statsmoke: run an impaired echo workload and check that the telemetry
## counters obey the frame-conservation laws end to end (demi-stat
## -selftest). A leak anywhere in the datapath bookkeeping fails tier1.
statsmoke:
	$(GO) run ./cmd/demi-stat -selftest

## shardsmoke: bring up the sharded runtime at 1 and 2 shards and
## verify RSS alignment and a speedup; part of tier1. The full curve
## (1..8 shards, with the 2.5x @ 4-shard regression fence) runs under
## `make bench`.
shardsmoke:
	$(GO) run ./cmd/demi-bench -shards 2 -shardsout /dev/null

## lifecyclesoak: the crash/restart gauntlet, repeated under the race
## detector — node death mid-connection, client failover across the
## outage, the sharded-KV chaos schedule (loss → asymmetric
## partition → crash → restart → heal), and the SQ/CQ ring flush
## (every ring op pending at crash time resolves to one typed
## ErrLocalReset CQE; frames conserved across the incarnation
## boundary). Part of tier1.
lifecyclesoak:
	$(GO) test -race -count=2 -run 'TestCrashRestartMidConnection|TestKVFailoverAcrossCrash|TestChaosShardedKVCrashRestart|TestRingCrashRestart|TestShardedRingSmoke|TestHTTPCrashRestartKeepAlive|TestHTTPHalfCloseFlush' .

## tenantsoak: the multi-tenant isolation gauntlet, under the race
## detector — three tenants on one shared NIC, one hostile (flood →
## quota leak → crash mid-burst); victims' KV ops must all succeed
## with p99 within 2x of the quiet baseline, per-tenant frame
## conservation must hold across the crash, and the dead tenant's
## quota must reclaim to zero. Followed by a short run of the
## demi-stat -tenants dashboard, which re-asserts containment.
## Part of tier1.
tenantsoak:
	$(GO) test -race -count=1 -run 'TestHostileTenantSoak|TestTenantCrashSparesNeighbors' .
	$(GO) run ./cmd/demi-stat -tenants -n 300

## httpsoak: the HTTP/1.1 workload gauntlet, under the race detector —
## the production-shaped soak (Zipf popularity, keep-alive churn, slow
## readers, a mid-run crash/restart of the 2-shard server, exact
## request accounting) plus the slow-client stall/recover tests on both
## data paths (per-op tokens and SQ/CQ rings): a stalled reader must
## park the bounded rx ready list (rx_ready_stalls) and turn into TCP
## backpressure, then drain cleanly once the reader resumes. Followed
## by a short run of the demi-stat -http dashboard, which re-asserts
## the same on the CLI surface. Part of tier1.
httpsoak:
	$(GO) test -race -count=1 -run 'TestHTTPProductionSoak|TestHTTPSlowClientStallAndRecover|TestHTTPRingSlowClient' .
	$(GO) run ./cmd/demi-stat -http -n 600

## storagesoak: the storage-pushdown gauntlet, under the race detector —
## the pushdown engine tests (depth-N traversals, hop-budget and
## runtime-validation kills, the mid-traversal DeviceReset abort with
## its single typed completion), the blob-store recovery suite (torn
## tails, CRC mismatches, chaos resets, injected I/O errors), the
## decoder-agreement property tests (device IndexStep vs host fallback,
## byte-identical on thousands of corrupt blocks), and the root chaos
## test that resets the controller mid-traversal over a live catfish
## node. Followed by a short run of the demi-stat -storage dashboard,
## which audits the crossing/leak invariants on the CLI surface.
## Part of tier1.
storagesoak:
	$(GO) test -race -count=1 ./internal/spdk/ ./internal/offload/ ./internal/libos/catfish/
	$(GO) test -race -count=1 -run 'TestChaosPushdownResetMidTraversal' .
	$(GO) run ./cmd/demi-stat -storage -n 300 -depth 4

## reshardsoak: the elastic-resharding and live-switching gauntlet,
## under the race detector — grow 4→8 and shrink 8→2 under client load
## with zero failed requests, reshard 2→4→3 through loss, an asymmetric
## partition, and a crash/restart (request + frame conservation across
## generations), and a catnap↔catnip switch with an established
## connection carrying in-flight bytes through both transitions.
## Part of tier1.
reshardsoak:
	$(GO) test -race -count=1 -run 'TestReshardUnderLoad|TestChaosReshardUnderCrashRestart|TestSwitchKindLive' .

## chaos: just the fault-injection suite (root soak tests + engine).
chaos:
	$(GO) test -run 'TestChaos|TestCrashRestart|TestKVFailover' -count=1 ./...

## bench: run the hot-path regression suite and write the machine-
## readable result stream to BENCH_hotpath.json, then measure the
## multi-core scaling curve (1..8 shards) and persist it as
## BENCH_multishard.json. The curve run fails if 4 shards fall below
## 2.5x the single-shard virtual throughput. Finally measure the HTTP
## server on both data paths (demi-http -bench) and persist
## BENCH_http.json; that run fails unless the ring path sustains >=2x
## the per-op requests/sec at some batch >= 8 with zero steady-state
## allocations per request. The storage run persists BENCH_storage.json
## and fails in-bench unless a depth>=4 pushdown GET crosses the device
## boundary at least 3x less often than the host traversal, with zero
## steady-state allocations per GET. The reshard run persists
## BENCH_reshard.json and fails in-bench unless client p99 during a
## live 4→8 reshard stays within 3x of steady-state p99. Compare the
## files against the committed baselines to spot regressions.
bench:
	$(GO) test -run xxx -bench 'BenchmarkHotPath' -benchmem -json . | tee BENCH_hotpath.json
	$(GO) test -run xxx -bench 'BenchmarkURing' -benchmem -json . | tee BENCH_uring.json
	$(GO) test -run xxx -bench 'BenchmarkStorage' -benchmem -json . | tee BENCH_storage.json
	$(GO) test -run xxx -bench 'BenchmarkReshard' -benchmem -json . | tee BENCH_reshard.json
	$(GO) run ./cmd/demi-bench -shards 8 -shardsout BENCH_multishard.json
	$(GO) run ./cmd/demi-http -bench -out BENCH_http.json

## benchsmoke: one iteration of every hot-path benchmark; part of tier1.
benchsmoke:
	$(GO) test -run xxx -bench 'BenchmarkHotPath|BenchmarkURing|BenchmarkHTTP|BenchmarkStorage|BenchmarkReshard' -benchtime=1x .

## benchall: every benchmark in the repo (E1..E13 experiments + hot path).
benchall:
	$(GO) test -bench=. -benchmem .

## report: regenerate EXPERIMENTS.md's measured tables.
report:
	$(GO) run ./cmd/demi-bench -md EXPERIMENTS.md

clean:
	$(GO) clean ./...
