package fabric

import (
	"errors"
	"math/bits"
	"sync"
	"sync/atomic"

	"demikernel/internal/telemetry"
)

// This file implements the frame pool behind the zero-allocation data
// path. A kernel-bypass stack that allocates per packet spends its µs
// budget in the allocator and the GC instead of the wire (§4.5 of the
// paper puts buffer management squarely in the libOS); the pool recycles
// frame backing storage across the whole tx→wire→rx pipeline.
//
// Ownership contract: a FrameBuf starts with one reference. Exactly one
// holder owns a Frame at any moment — the sending stack until Port.Send,
// the switch while the frame is in flight (including the reorder hold
// slot), the NIC ring after delivery, and finally the receiving stack,
// which releases it once the payload has been copied out or consumed.
// Every drop point (runt, link down, injected loss, ring full) releases.
// Frames whose Buf is nil (heap-backed, e.g. from tests or transports
// that do not pool) are unaffected: Release is a no-op for them, so the
// pool is strictly opt-in and never required for correctness.

// frameClasses are the pooled buffer size classes. The largest class
// covers a full Ethernet+IPv4+TCP frame at the default 1400-byte MSS
// with headroom; larger requests fall back to dedicated heap buffers
// (counted as misses, never recycled).
var frameClasses = [...]int{128, 512, 2048, 16384}

// Accountant charges pooled frame storage to some resource account —
// the hook the multi-tenant plane (internal/tenant's Ledger) plugs in.
// ChargeFrame is called once per Get with the class-rounded byte size
// and may refuse (Get then returns nil); CreditFrame is called once
// when the final reference is released. Both run on the per-frame hot
// path and must be lock-free.
type Accountant interface {
	ChargeFrame(bytes int) bool
	CreditFrame(bytes int)
}

// ErrNoMem is the typed backpressure error surfaced when a pool's
// accountant refuses a charge — the frame-plane twin of
// membuf.ErrNoMem: one tenant exhausting its frame quota gets this
// while every other tenant's pool keeps allocating.
var ErrNoMem = errors.New("fabric: frame quota exhausted")

// FrameBuf is a reference-counted, pool-recycled frame backing buffer.
type FrameBuf struct {
	pool  *FramePool
	class int8 // index into frameClasses; -1 = oversized, not recycled
	refs  atomic.Int32
	data  []byte // current view (len = requested size)
	full  []byte // full class-sized backing storage
}

// Owner names the tenant owning the buffer's pool ("" when unowned).
func (b *FrameBuf) Owner() string {
	if b.pool == nil {
		return ""
	}
	return b.pool.owner
}

// ownerSuffix tags a panic message with the offending tenant. Only the
// failure path pays the formatting.
func (b *FrameBuf) ownerSuffix() string {
	if o := b.Owner(); o != "" {
		return " [pool owner: " + o + "]"
	}
	return ""
}

// Bytes returns the buffer's usable bytes (length = the size requested
// from Get). The slice is valid until the final reference is released.
func (b *FrameBuf) Bytes() []byte { return b.data }

// Retain takes an additional reference, for holders that fan a frame out
// to more than one consumer.
//
// Invariant (audited): Retain is only legal while the caller itself
// holds a live reference, i.e. while refs >= 1 is guaranteed by the
// caller's own ownership. Under that contract the count can never be
// observed at 0 by a legal Retain, so there is no window between the
// count reaching 0 in Release and the buffer entering the pool in which
// a correct program can resurrect it. An *illegal* Retain that races
// that window flips the count 0→1 and is caught deterministically by the
// panic below (Add returns exactly 1); the concurrent recycle is then
// moot because the process is already down. TestFrameBufRefsRaceStress
// pins the legal-use side of this contract under -race.
func (b *FrameBuf) Retain() {
	if b.refs.Add(1) <= 1 {
		panic("fabric: Retain on released FrameBuf" + b.ownerSuffix())
	}
}

// Release drops one reference; the storage recycles into the pool when
// the last reference is gone. Releasing more times than retained is a
// bug and panics. Exactly one goroutine can observe the count hit 0
// (atomic decrement), so put runs at most once per lifetime.
func (b *FrameBuf) Release() {
	n := b.refs.Add(-1)
	switch {
	case n == 0:
		if b.pool != nil {
			b.pool.onFinalRelease(b)
		}
	case n < 0:
		panic("fabric: FrameBuf reference count underflow (double release)" + b.ownerSuffix())
	}
}

// FramePoolStats is a snapshot of a pool's counters.
type FramePoolStats struct {
	// Pooled counts Gets served by recycling a previously released
	// buffer.
	Pooled int64
	// Misses counts Gets that had to allocate fresh storage (cold pool
	// or oversized request).
	Misses int64
	// Recycled counts buffers returned to the pool's free lists.
	Recycled int64
	// QuotaDenied counts Gets refused by the pool's accountant (the
	// owning tenant was over its frame quota).
	QuotaDenied int64
}

// FramePool recycles frame buffers by size class. It is safe for
// concurrent use. The zero value is not usable; call NewFramePool.
//
// The hot counters are each padded to their own cache line: Get and put
// run on every frame of every shard, and with the counters adjacent a
// TX-heavy shard bumping misses would invalidate the line an RX-heavy
// shard needs for recycled (write-write false sharing). sync.Pool is
// already per-P sharded internally.
type FramePool struct {
	classes [len(frameClasses)]sync.Pool

	// owner/acct attribute the pool to a tenant (SetOwner, config
	// time). acct==nil — the single-tenant default — costs the hot
	// path one predictable nil check.
	owner string
	acct  Accountant

	pooled   atomic.Int64
	_        [56]byte //nolint:unused // false-sharing pad
	misses   atomic.Int64
	_        [56]byte //nolint:unused // false-sharing pad
	recycled atomic.Int64
	_        [56]byte //nolint:unused // false-sharing pad

	quotaDenied atomic.Int64
}

// NewFramePool returns an empty frame pool.
func NewFramePool() *FramePool { return &FramePool{} }

// SetOwner tags the pool with the owning tenant's name (surfaced in
// Retain/Release violation panics, naming the offender) and optionally
// attaches an accountant charging the tenant's frame quota. Call before
// the pool is shared with the data path; not safe concurrently with
// Get/Release.
func (p *FramePool) SetOwner(owner string, acct Accountant) {
	p.owner = owner
	p.acct = acct
}

// Owner returns the pool's owner tag ("" when unowned).
func (p *FramePool) Owner() string { return p.owner }

// DefaultFramePool is the process-wide pool the simulated stacks draw
// their frame buffers from.
var DefaultFramePool = NewFramePool()

// classFor returns the index of the smallest class that fits n, or -1.
func classFor(n int) int {
	for i, c := range frameClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// Get returns a buffer whose Bytes() is exactly n bytes, backed by
// recycled pool storage when available. The caller owns one reference.
//
// When the pool has an accountant (multi-tenant mode) and the charge is
// refused, Get returns nil: the owning tenant is over its frame quota.
// Callers on the data path treat nil as a drop-with-backpressure (the
// typed error for it is ErrNoMem); pools without an accountant never
// return nil.
func (p *FramePool) Get(n int) *FrameBuf {
	ci := classFor(n)
	if p.acct != nil && !p.acct.ChargeFrame(chargeSize(ci, n)) {
		p.quotaDenied.Add(1)
		return nil
	}
	if ci < 0 {
		// Oversized: dedicated heap buffer, never recycled.
		p.misses.Add(1)
		mem := make([]byte, n)
		b := &FrameBuf{pool: p, class: -1, data: mem, full: mem}
		b.refs.Store(1)
		return b
	}
	var b *FrameBuf
	if v := p.classes[ci].Get(); v != nil {
		b = v.(*FrameBuf)
		p.pooled.Add(1)
	} else {
		p.misses.Add(1)
		mem := make([]byte, frameClasses[ci])
		b = &FrameBuf{pool: p, class: int8(ci)}
		b.full = mem
	}
	b.data = b.full[:n]
	b.refs.Store(1)
	return b
}

// chargeSize is the accounted size of a buffer in class ci: the full
// class-rounded backing size (that is what the tenant really pins), or
// the raw request for oversized heap buffers.
func chargeSize(ci, n int) int {
	if ci >= 0 {
		return frameClasses[ci]
	}
	return n
}

// onFinalRelease runs exactly once per buffer lifetime, when the last
// reference is gone: the tenant's account is credited and class-backed
// storage recycles (oversized buffers go to the GC, as before).
func (p *FramePool) onFinalRelease(b *FrameBuf) {
	if p.acct != nil {
		p.acct.CreditFrame(chargeSize(int(b.class), len(b.full)))
	}
	if b.class >= 0 {
		p.put(b)
	}
}

func (p *FramePool) put(b *FrameBuf) {
	// Defensive fence for the audited Retain/Release invariant: by the
	// time the last Release reaches here no other holder may exist, so
	// any non-zero count means an illegal Retain raced the recycle.
	// Failing loudly here beats recycling a buffer somebody still reads.
	if b.refs.Load() != 0 {
		panic("fabric: FrameBuf recycled while still referenced (illegal Retain after final Release)" + b.ownerSuffix())
	}
	b.data = nil
	p.recycled.Add(1)
	p.classes[b.class].Put(b)
}

// Stats returns a snapshot of the pool's counters.
func (p *FramePool) Stats() FramePoolStats {
	return FramePoolStats{
		Pooled:      p.pooled.Load(),
		Misses:      p.misses.Load(),
		Recycled:    p.recycled.Load(),
		QuotaDenied: p.quotaDenied.Load(),
	}
}

// PoolStats returns the counters of the process-wide DefaultFramePool,
// for observability surfaces (cmd/demi-bench).
func PoolStats() FramePoolStats { return DefaultFramePool.Stats() }

// RegisterTelemetry lifts the pool's counters into a telemetry registry
// under prefix (e.g. "framepool").
func (p *FramePool) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	r.RegisterFunc(prefix+".pooled", p.pooled.Load)
	r.RegisterFunc(prefix+".misses", p.misses.Load)
	r.RegisterFunc(prefix+".recycled", p.recycled.Load)
	r.RegisterFunc(prefix+".quota_denied", p.quotaDenied.Load)
}

// RegisterBurstTelemetry lifts the process-wide RX burst-size histogram
// into a telemetry registry under prefix, one sample per bucket
// (prefix.le_N / prefix.gt_N, mirroring BurstBucketLabel).
func RegisterBurstTelemetry(r *telemetry.Registry, prefix string) {
	for i := 0; i < BurstBuckets; i++ {
		i := i
		label := BurstBucketLabel(i)
		switch {
		case i < BurstBuckets-1 && i > 1:
			label = "le_" + itoa(1<<i)
		case i == BurstBuckets-1:
			label = "gt_" + itoa(1<<(BurstBuckets-2))
		}
		r.RegisterFunc(prefix+"."+label, burstHist[i].Load)
	}
}

// --- burst-size observability ---

// BurstBuckets is the number of burst-size histogram buckets. Bucket i
// (for i < BurstBuckets-1) counts bursts of size in (2^(i-1), 2^i]; the
// last bucket counts everything larger.
const BurstBuckets = 9

var burstHist [BurstBuckets]atomic.Int64

// RecordBurstSize records the size of one non-empty receive burst in the
// process-wide histogram. Devices call it from their rx_burst paths so
// batching efficiency is observable, not asserted.
func RecordBurstSize(n int) {
	if n <= 0 {
		return
	}
	i := bits.Len(uint(n - 1)) // 1→0, 2→1, 4→2, 8→3, ...
	if i >= BurstBuckets {
		i = BurstBuckets - 1
	}
	burstHist[i].Add(1)
}

// BurstHistogram returns a snapshot of the burst-size histogram.
func BurstHistogram() [BurstBuckets]int64 {
	var out [BurstBuckets]int64
	for i := range out {
		out[i] = burstHist[i].Load()
	}
	return out
}

// BurstBucketLabel names histogram bucket i ("1", "2", "≤4", ... ">128").
func BurstBucketLabel(i int) string {
	switch {
	case i == 0:
		return "1"
	case i == 1:
		return "2"
	case i < BurstBuckets-1:
		return "≤" + itoa(1<<i)
	default:
		return ">" + itoa(1<<(BurstBuckets-2))
	}
}

// itoa avoids pulling strconv into the hot-path package for one label.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
