package nic

import "demikernel/internal/fabric"

// ring is a fixed-capacity single-producer/single-consumer style
// descriptor ring. The device serialises access with its own lock, so the
// ring itself needs no synchronisation; it exists to model the bounded
// descriptor rings of real hardware, including drop-on-full behaviour.
type ring struct {
	buf  []fabric.Frame
	head int // next slot to pop
	tail int // next slot to push
	n    int // occupied slots
}

func newRing(depth int) *ring {
	return &ring{buf: make([]fabric.Frame, depth)}
}

// push appends a frame; it reports false (dropping the frame) when full.
func (r *ring) push(f fabric.Frame) bool {
	if r.n == len(r.buf) {
		return false
	}
	r.buf[r.tail] = f
	r.tail = (r.tail + 1) % len(r.buf)
	r.n++
	return true
}

// pop removes and returns the oldest frame.
func (r *ring) pop() (fabric.Frame, bool) {
	if r.n == 0 {
		return fabric.Frame{}, false
	}
	f := r.buf[r.head]
	r.buf[r.head] = fabric.Frame{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return f, true
}

func (r *ring) len() int { return r.n }
