// pipeline: queue composition (§4.3) — filter, map, sort, and merge
// building an I/O processing pipeline that a libOS could offload to a
// programmable accelerator. Here the stages run on the CPU fallback;
// experiment E8 shows the same filter lowered onto the simulated NIC.
package main

import (
	"fmt"
	"log"

	demi "demikernel"
)

func main() {
	cluster := demi.NewCluster(3)
	node := cluster.MustSpawn(demi.Catnip, demi.WithHost(1))

	// Raw ingress queue: a mix of telemetry readings, some corrupt.
	ingress := node.Queue()

	// filter(): drop elements that fail validation.
	valid, err := node.Filter(ingress, func(s demi.SGA) bool {
		return s.Len() > 0 && s.Segments[0].Buf[0] != '#'
	})
	if err != nil {
		log.Fatal(err)
	}

	// map(): normalise every element (prefix with its length).
	normalized, err := node.Map(valid, func(s demi.SGA) demi.SGA {
		tag := fmt.Sprintf("[%02d]", s.Len())
		return demi.NewSGA(append([]byte(tag), s.Bytes()...))
	})
	if err != nil {
		log.Fatal(err)
	}

	// sort(): highest-priority first. Priority is the first byte after
	// the tag: '0' beats '9'.
	prioritized, err := node.Sort(normalized, func(a, b demi.SGA) bool {
		return a.Bytes()[4] < b.Bytes()[4]
	})
	if err != nil {
		log.Fatal(err)
	}

	inputs := []string{
		"3:disk-temp=41C",
		"#corrupt-frame",
		"0:PAGER:machine-down",
		"9:fan-rpm=1200",
		"#another-bad-one",
		"1:latency-spike=9ms",
	}
	for _, in := range inputs {
		if _, err := node.BlockingPush(ingress, demi.NewSGA([]byte(in))); err != nil {
			log.Fatal(err)
		}
	}
	node.Poll() // let the sorted view prefetch

	fmt.Println("pipeline output (filtered, normalised, priority order):")
	for i := 0; i < 4; i++ {
		comp, err := node.BlockingPop(prioritized)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", comp.SGA.Bytes())
	}

	// merge(): one consumer view over two producer queues.
	qa, qb := node.Queue(), node.Queue()
	merged, err := node.Merge(qa, qb)
	if err != nil {
		log.Fatal(err)
	}
	node.BlockingPush(qa, demi.NewSGA([]byte("from queue A")))
	node.BlockingPush(qb, demi.NewSGA([]byte("from queue B")))
	node.Poll()
	fmt.Println("merged view:")
	for i := 0; i < 2; i++ {
		comp, err := node.BlockingPop(merged)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", comp.SGA.Bytes())
	}
}
