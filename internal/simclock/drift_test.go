package simclock

import (
	"testing"
	"time"
)

func TestDriftClockZeroIsIdentity(t *testing.T) {
	c := NewDriftClock()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("undrifted clock should track real time: %v not in [%v, %v]", got, before, after)
	}
}

func TestDriftClockOffsetJumps(t *testing.T) {
	c := NewDriftClock()
	c.SetSkew(0, time.Hour)
	got := c.Now()
	want := time.Now().Add(time.Hour)
	if d := want.Sub(got); d < -time.Second || d > time.Second {
		t.Fatalf("offset clock off by %v", d)
	}
}

func TestDriftClockRunsFast(t *testing.T) {
	c := NewDriftClock()
	// 1e6 ppm doubles the clock's speed.
	c.SetSkew(1e6, 0)
	start := c.Now()
	time.Sleep(20 * time.Millisecond)
	elapsed := c.Now().Sub(start)
	if elapsed < 35*time.Millisecond {
		t.Fatalf("2x clock advanced only %v over ~20ms real", elapsed)
	}
}

func TestDriftClockSetSkewPreservesContinuity(t *testing.T) {
	c := NewDriftClock()
	c.SetSkew(1e6, 0)
	time.Sleep(5 * time.Millisecond)
	before := c.Now()
	c.SetSkew(0, 0) // discipline the clock again
	after := c.Now()
	if after.Before(before) {
		t.Fatalf("clock jumped backward across SetSkew: %v -> %v", before, after)
	}
	if d := after.Sub(before); d > 5*time.Millisecond {
		t.Fatalf("clock jumped forward %v across SetSkew", d)
	}
	// And it now runs at real speed.
	time.Sleep(10 * time.Millisecond)
	if d := c.Now().Sub(after); d > 30*time.Millisecond {
		t.Fatalf("disciplined clock still fast: %v over ~10ms", d)
	}
}

func TestDriftClockSkewReporting(t *testing.T) {
	c := NewDriftClock()
	c.SetSkew(250, -time.Second)
	ppm, off := c.Skew()
	if ppm != 250 || off != -time.Second {
		t.Fatalf("Skew() = %v, %v", ppm, off)
	}
}
