package demikernel

// Hostile-tenant soak: three tenants share one NIC; one goes hostile on
// a seeded chaos schedule — flooding its TX path, leaking pooled frames
// against its quota, then crashing mid-rampage. The isolation layer
// (queue groups, WDRR TX weights, rate limits, per-tenant quota
// ledgers) must keep the victims' KV service not merely alive but
// *unperturbed*: every victim operation succeeds, victim tail latency
// stays within 2x of the quiet baseline (virtual time), per-tenant
// frame conservation holds across the crash, and the dead tenant's
// quota is fully reclaimed device-side.

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"demikernel/internal/apps/kv"
	"demikernel/internal/chaos"
	"demikernel/internal/fabric"
	"demikernel/internal/nic"
)

// latP99 returns the 99th-percentile of virtual latencies.
func latP99(lats []Lat) Lat {
	if len(lats) == 0 {
		return 0
	}
	s := append([]Lat(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)*99/100]
}

// tenantConservation asserts the per-tenant frame law on one queue
// group: every frame the group's classifier accepted is in some
// incarnation's FramesIn, still ringed in one of the group's own
// queues, or in the group's crash-time RxFlushed bucket.
func tenantConservation(t *testing.T, name string, grp *nic.QueueGroup, framesIn int64) {
	t.Helper()
	dev := grp.Device()
	gs := grp.Stats()
	var occ int64
	for q := 0; q < grp.NumRxQueues(); q++ {
		occ += int64(dev.RxOccupancy(grp.BaseQueue() + q))
	}
	if gs.RxFrames != framesIn+occ+gs.RxFlushed {
		t.Errorf("tenant %s conservation violated: group rx=%d != frames_in=%d + rings=%d + flushed=%d",
			name, gs.RxFrames, framesIn, occ, gs.RxFlushed)
	}
}

func TestHostileTenantSoak(t *testing.T) {
	const port = 6379
	c := NewCluster(46)

	// Three tenants on one shared NIC: two victims (one of them
	// sharded, so the group-relative RSS path is under fire too) and
	// one hostile. The hostile tenant gets a real quota and a TX rate
	// cap — the contract the device will hold it to.
	vicA := c.MustSpawn(Catnip, WithHost(1), WithTenant("vic-a", TenantPolicy{
		TxWeight:        2,
		FrameQuotaBytes: 8 << 20,
	}))
	vicB := c.MustSpawn(Catnip, WithHost(2), WithShards(2), WithTenant("vic-b", TenantPolicy{
		TxWeight:        2,
		FrameQuotaBytes: 8 << 20,
	}))
	mal := c.MustSpawn(Catnip, WithHost(3), WithTenant("mal", TenantPolicy{
		TxWeight:        1,
		FrameQuotaBytes: 2 << 20,
		TxRateBps:       4 << 20, // 4 MB/s: the flood will exceed this
		TxBurstBytes:    64 << 10,
	}))

	// Clients live on their own dedicated NICs — the victims' service
	// is observed from outside the contested device. The flood sink is
	// a fourth bystander: frames addressed to its unbound port are
	// dropped (and released) on arrival without touching the victims.
	cliANode := c.MustSpawn(Catnip, WithHost(4))
	cliBNode := c.MustSpawn(Catnip, WithHost(5))
	sinkNode := c.MustSpawn(Catnip, WithHost(6))
	cliANode.WaitTimeout = 250 * time.Millisecond
	cliBNode.WaitTimeout = 250 * time.Millisecond

	srvA := kv.NewServer(vicA.LibOS, &c.Model)
	if err := srvA.Listen(port); err != nil {
		t.Fatal(err)
	}
	srvB := kv.NewShardedServer(vicB.Sharded.Libs, &c.Model, vicB.Sharded.Mesh())
	if err := srvB.Listen(port); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Node{vicA, vicB, mal, cliANode, cliBNode, sinkNode} {
		defer n.Background()()
	}
	stop := make(chan struct{})
	go srvA.Run(stop)
	wgB := srvB.Run(stop)
	defer func() { close(stop); wgB.Wait() }()

	cliA := kv.NewClient(cliANode.LibOS)
	if err := cliA.Connect(c.AddrOf(vicA, port)); err != nil {
		t.Fatal(err)
	}
	cliB, err := kv.NewShardedClient(cliBNode.LibOS, vicB.Sharded.Size(), func(i int) (QD, error) {
		return c.Router().DialShard(cliBNode, vicB.Sharded, port, i, uint16(3000*i+7))
	})
	if err != nil {
		t.Fatal(err)
	}

	// One KV op against each victim; returns the two virtual costs.
	expected := make(map[string][]byte)
	step := func(i int) (la, lb Lat) {
		key := fmt.Sprintf("k%02d", i%16)
		val := bytes.Repeat([]byte{byte(i)}, 64+i%193)
		if _, err := cliA.Set(key, val); err != nil {
			t.Fatalf("victim A set %d failed under hostile tenant: %v", i, err)
		}
		got, cost, found, err := cliA.Get(key)
		if err != nil || !found || !bytes.Equal(got, val) {
			t.Fatalf("victim A get %d: err=%v found=%v", i, err, found)
		}
		la = cost
		expected[key] = val
		if _, err := cliB.Set(key, val); err != nil {
			t.Fatalf("victim B set %d failed under hostile tenant: %v", i, err)
		}
		got, cost, found, err = cliB.Get(key)
		if err != nil || !found || !bytes.Equal(got, val) {
			t.Fatalf("victim B get %d: err=%v found=%v", i, err, found)
		}
		return la, cost
	}

	// --- Phase 1: quiet baseline. ---
	var quietA, quietB []Lat
	for i := 0; i < 100; i++ {
		la, lb := step(i)
		quietA, quietB = append(quietA, la), append(quietB, lb)
	}

	// --- Phase 2: the rampage. ---
	// Flood: a background goroutine spams datagrams at the bystander
	// sink as fast as the hostile node can push — the WDRR scheduler
	// and the tenant's own rate cap are what stand between this and
	// the victims' share of the link.
	floodStop := make(chan struct{})
	var floodWG sync.WaitGroup
	sink := c.AddrOf(sinkNode, 9)
	flood := func() {
		fqd, err := mal.SocketUDP()
		if err != nil {
			return
		}
		if err := mal.Bind(fqd, Addr{Port: 7777}); err != nil {
			return
		}
		if err := mal.Connect(fqd, sink); err != nil {
			return
		}
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			for {
				select {
				case <-floodStop:
					return
				default:
				}
				// Bursts of back-to-back datagrams overwhelm the
				// tenant's staging ring and rate cap immediately; the
				// sleep between bursts keeps the *test machine's* CPU
				// out of the victims' measured latency.
				ok := true
				for j := 0; j < 32; j++ {
					if _, err := mal.BlockingPush(fqd, NewSGA(bytes.Repeat([]byte{0xAB}, 1024))); err != nil {
						// The transport crashed under us: typed error,
						// stop hammering a corpse.
						ok = false
						break
					}
				}
				if !ok {
					time.Sleep(100 * time.Microsecond)
					continue
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	// Leak: acquire pooled frames charged to the hostile quota and
	// never release them. The ledger absorbs it; the crash reclaims it.
	var leaked []*fabric.FrameBuf
	leak := func() {
		for i := 0; i < 400; i++ {
			if fb := mal.Catnip.Pool().Get(1500); fb != nil {
				leaked = append(leaked, fb)
			}
		}
	}

	eng := chaos.New(46).HostileTenant(0, 40*time.Millisecond, 0, "mal", chaos.HostileTenantFaults{
		Flood: flood,
		Leak:  leak,
		Node:  mal,
	})
	eng.Start()

	var hostileA, hostileB []Lat
	for i := 100; len(hostileA) < 100 || !eng.Done(); i++ {
		eng.Step()
		la, lb := step(i)
		hostileA, hostileB = append(hostileA, la), append(hostileB, lb)
	}
	close(floodStop)
	floodWG.Wait()

	// Quiesce: drain the wire and every ring so conservation can be
	// read at a fixed point.
	c.Switch.Flush()
	qdeadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(qdeadline) {
		c.Poll()
		c.Switch.Flush()
		time.Sleep(time.Millisecond)
	}

	// The schedule must have fired completely: flood, leak, crash.
	if fired := eng.Fired(); len(fired) != 3 {
		t.Fatalf("schedule fired %d/3 events: %v", len(fired), fired)
	}
	if !mal.Crashed() {
		t.Fatal("hostile tenant is not dead")
	}

	// Isolation, latency half: the victims' tail moved by at most 2x.
	for _, v := range []struct {
		name           string
		quiet, hostile []Lat
	}{
		{"vic-a", quietA, hostileA},
		{"vic-b", quietB, hostileB},
	} {
		q, h := latP99(v.quiet), latP99(v.hostile)
		if h > 2*q {
			t.Errorf("victim %s p99 under hostile tenant: %d ns > 2x quiet %d ns", v.name, h, q)
		}
	}

	// Containment: the flood was actually hostile (it overran the rate
	// cap and was dropped at the hostile tenant's own staging ring, not
	// on the shared link) and the leak actually leaked.
	malGrp := mal.Catnip.Group()
	if malGrp.Stats().ThrottleDrops == 0 {
		t.Error("flood never hit the hostile tenant's rate cap: fault did not bite")
	}
	if len(leaked) == 0 {
		t.Error("leak acquired no frames: fault did not bite")
	}

	// Reclamation: the dead tenant holds zero quota, courtesy of the
	// device-side ledger reclaim at crash time.
	if frames, bytes := mal.Tenant.Ledger.Outstanding(); frames != 0 || bytes != 0 {
		t.Errorf("hostile quota not reclaimed: %d frames / %d bytes outstanding", frames, bytes)
	}
	if count, _, _ := mal.Tenant.Ledger.Reclaims(); count == 0 {
		t.Error("crash never ran ledger reclamation")
	}

	// Per-tenant frame conservation, including across the hostile
	// tenant's crash (its ingested-but-dead frames sit in RxFlushed).
	var framesInB int64
	for i := 0; i < vicB.Sharded.Size(); i++ {
		framesInB += vicB.Sharded.Set.Shard(i).StackStats().FramesIn
	}
	tenantConservation(t, "vic-a", vicA.Catnip.Group(), vicA.Catnip.StackStats().FramesIn)
	tenantConservation(t, "vic-b", vicB.Sharded.Set.Group(), framesInB)
	tenantConservation(t, "mal", malGrp, mal.Catnip.StackStats().FramesIn)

	// And the whole shared device still satisfies the port-level law:
	// delivered == ingested + ring-dropped + filter-dropped + unowned.
	dev := vicA.Catnip.Device()
	dev.QueueDepth(0) // force a wire drain
	ds := dev.Stats()
	ps := c.Switch.PortStats(dev.PortID())
	if ps.Delivered != ds.RxFrames+ds.RxDropped+ds.FilterDrops+ds.SteerDrops {
		t.Errorf("shared NIC conservation violated: delivered=%d != rx=%d+dropped=%d+filtered=%d+steered=%d",
			ps.Delivered, ds.RxFrames, ds.RxDropped, ds.FilterDrops, ds.SteerDrops)
	}
}
