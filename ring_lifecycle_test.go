package demikernel

// Ring-path lifecycle tests: the syscall-free SQ/CQ data path under
// node crash and restart. The paper's §3 argument — no OS means no
// death notification — applies doubly to shared-memory rings: nothing
// but the libOS can resolve SQEs a dead stack will never drain. These
// tests require that every ring operation pending at crash time
// resolves to exactly one typed ErrLocalReset CQE, that submission is
// refused afterwards, that a restarted node carries fresh rings, and
// that frames are conserved across the incarnation boundary.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"demikernel/internal/fabric"
	"demikernel/internal/queue"
	"demikernel/internal/uring"
)

// ringConnect builds a connected catnip pair, keeping the Node handles
// so the test can Crash and Restart the server. Background polling is
// used only for the TCP handshake.
func ringConnect(t *testing.T, c *Cluster, cliNode, srvNode *Node, port uint16) (cqd, lqd, sqd QD) {
	t.Helper()
	lqd, err := srvNode.Socket()
	if err != nil {
		t.Fatal(err)
	}
	addr := c.AddrOf(srvNode, port)
	if err := srvNode.Bind(lqd, addr); err != nil {
		t.Fatal(err)
	}
	if err := srvNode.Listen(lqd); err != nil {
		t.Fatal(err)
	}
	cqd, err = cliNode.Socket()
	if err != nil {
		t.Fatal(err)
	}
	stop := srvNode.Background()
	if err := cliNode.Connect(cqd, addr); err != nil {
		stop()
		t.Fatal(err)
	}
	sqd, err = srvNode.Accept(lqd)
	if err != nil {
		stop()
		t.Fatal(err)
	}
	stop()
	return cqd, lqd, sqd
}

// ringEcho drives one push+pop round trip from the client ring against
// a manually-pumped server ring and returns the echoed payload.
func ringEcho(t *testing.T, cli, srv *Node, cp, sp *uring.Pair, cqd, sqd QD, payload []byte) []byte {
	t.Helper()
	if n, err := srv.SubmitBatch(sp, []uring.SQE{{Op: queue.OpPop, QD: int32(sqd), Tag: 0}}); err != nil || n != 1 {
		t.Fatalf("server pop submit: n=%d err=%v", n, err)
	}
	if n, err := cli.SubmitBatch(cp, []uring.SQE{
		{Op: queue.OpPush, QD: int32(cqd), Tag: 1, SGA: NewSGA(payload)},
		{Op: queue.OpPop, QD: int32(cqd), Tag: 2},
	}); err != nil || n != 2 {
		t.Fatalf("client submit: n=%d err=%v", n, err)
	}
	scq := make([]uring.CQE, 4)
	ccq := make([]uring.CQE, 4)
	var echoed []byte
	deadline := time.Now().Add(2 * time.Second)
	got := 0
	for got < 2 {
		if time.Now().After(deadline) {
			t.Fatal("ring echo made no progress")
		}
		cli.Poll()
		srv.Poll()
		for _, cq := range scq[:srv.HarvestCQ(sp, scq)] {
			if cq.Err != nil {
				t.Fatalf("server CQE error: %v", cq.Err)
			}
			if cq.Kind == queue.OpPop {
				if n, err := srv.SubmitBatch(sp, []uring.SQE{
					{Op: queue.OpPush, QD: int32(sqd), Tag: 3, SGA: cq.SGA, Cost: cq.Cost},
				}); err != nil || n != 1 {
					t.Fatalf("server echo submit: n=%d err=%v", n, err)
				}
			}
		}
		for _, cq := range ccq[:cli.HarvestCQ(cp, ccq)] {
			if cq.Err != nil {
				t.Fatalf("client CQE error: %v", cq.Err)
			}
			if cq.Kind == queue.OpPop {
				echoed = append(echoed[:0], cq.SGA.Bytes()...)
				cq.SGA.Free()
			}
			got++
		}
	}
	return echoed
}

// TestRingCrashRestart kills a node with ring operations pending in
// every pre-crash state — a CQE posted but unharvested and SQEs posted
// but undrained — and requires each to resolve to exactly one typed
// ErrLocalReset CQE, submission to be refused afterwards, a fresh ring
// to work after Restart, and the frame-conservation laws to hold across
// the incarnation boundary.
func TestRingCrashRestart(t *testing.T) {
	c := NewCluster(71)
	srvNode := c.MustSpawn(Catnip, WithHost(1))
	cliNode := c.MustSpawn(Catnip, WithConfig(NodeConfig{
		Host: 2, RTO: 2 * time.Millisecond, MaxRetransmits: 4,
	}))
	cliNode.WaitTimeout = 200 * time.Millisecond
	cqd, lqd, sqd := ringConnect(t, c, cliNode, srvNode, 7171)

	cp := cliNode.AttachRing(16)
	sp := srvNode.AttachRing(16)

	// Prove the ring path is live end to end.
	if got := ringEcho(t, cliNode, srvNode, cp, sp, cqd, sqd, []byte("ping")); !bytes.Equal(got, []byte("ping")) {
		t.Fatalf("pre-crash ring echo = %q", got)
	}

	// Stage a CQE that will sit unharvested at crash time: the server
	// arms a pop, the client's ring push lands, both sides poll until
	// the completion is on the server CQ — and nobody harvests it.
	if n, err := srvNode.SubmitBatch(sp, []uring.SQE{{Op: queue.OpPop, QD: int32(sqd), Tag: 10}}); err != nil || n != 1 {
		t.Fatalf("server pop submit: n=%d err=%v", n, err)
	}
	if n, err := cliNode.SubmitBatch(cp, []uring.SQE{
		{Op: queue.OpPush, QD: int32(cqd), Tag: 11, SGA: NewSGA([]byte("doomed"))},
	}); err != nil || n != 1 {
		t.Fatalf("client push submit: n=%d err=%v", n, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sp.CQLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("staged pop never completed")
		}
		cliNode.Poll()
		srvNode.Poll()
	}
	// Drain the client's push CQE so the client ring is quiescent.
	ccq := make([]uring.CQE, 4)
	for n := 0; n == 0; n = cliNode.HarvestCQ(cp, ccq) {
		cliNode.Poll()
	}

	// Stage two SQEs that will sit undrained: posted to the SQ with no
	// Poll on the server side before the crash.
	if n, err := srvNode.SubmitBatch(sp, []uring.SQE{
		{Op: queue.OpPop, QD: int32(sqd), Tag: 12},
		{Op: queue.OpPop, QD: int32(sqd), Tag: 13},
	}); err != nil || n != 2 {
		t.Fatalf("staging undrained SQEs: n=%d err=%v", n, err)
	}

	aborted, err := srvNode.Crash()
	if err != nil {
		t.Fatal(err)
	}
	if aborted < 3 {
		t.Fatalf("crash aborted %d ops, want >= 3 (2 SQ-flushed + 1 CQ-rewritten)", aborted)
	}

	// Every pending ring op resolves to exactly one typed CQE: the
	// unharvested completion is rewritten at harvest, the two undrained
	// SQEs were converted at flush.
	scq := make([]uring.CQE, 16)
	n := srvNode.HarvestCQ(sp, scq)
	if n != 3 {
		t.Fatalf("post-crash harvest = %d CQEs, want 3", n)
	}
	for i := 0; i < n; i++ {
		if !errors.Is(scq[i].Err, ErrLocalReset) {
			t.Fatalf("post-crash CQE %d: err = %v, want ErrLocalReset", i, scq[i].Err)
		}
	}
	cnt := sp.CountersSnapshot()
	if cnt.SQFlushed != 2 || cnt.CQFlushed != 1 {
		t.Fatalf("flush counters sq=%d cq=%d, want 2/1", cnt.SQFlushed, cnt.CQFlushed)
	}

	// The dead pair refuses new submissions with the typed reset error.
	if _, err := srvNode.SubmitBatch(sp, []uring.SQE{{Op: queue.OpPop, QD: int32(sqd), Tag: 14}}); !errors.Is(err, ErrLocalReset) {
		t.Fatalf("submit after crash = %v, want ErrLocalReset", err)
	}

	// Rebirth: fresh ring pair on the same node, same listening QD.
	if err := srvNode.Restart(); err != nil {
		t.Fatal(err)
	}
	cqd2, err := cliNode.Socket()
	if err != nil {
		t.Fatal(err)
	}
	stop := srvNode.Background()
	if err := cliNode.Connect(cqd2, c.AddrOf(srvNode, 7171)); err != nil {
		stop()
		t.Fatalf("redial after restart: %v", err)
	}
	sqd2, err := srvNode.Accept(lqd)
	if err != nil {
		stop()
		t.Fatalf("pre-crash listener refused a post-restart dial: %v", err)
	}
	stop()
	sp2 := srvNode.AttachRing(16)
	if got := ringEcho(t, cliNode, srvNode, cp, sp2, cqd2, sqd2, []byte("again")); !bytes.Equal(got, []byte("again")) {
		t.Fatalf("post-restart ring echo = %q", got)
	}

	// Quiesce, then read the conservation laws across the incarnation
	// boundary (same laws as the chaos lifecycle soak).
	c.Switch.SetImpairments(fabric.Impairments{})
	c.Switch.Flush()
	qdeadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(qdeadline) {
		c.Poll()
		c.Switch.Flush()
		time.Sleep(time.Millisecond)
	}

	sw := c.Switch
	fs := sw.Stats()
	var sumTx int64
	for id := 0; id < sw.NumPorts(); id++ {
		sumTx += sw.PortStats(id).TxFrames
	}
	if lhs, rhs := sumTx+fs.InjectedDup, fs.Delivered+fs.InjectedLoss+fs.LinkDownDrops+fs.DroppedRxFull+fs.AsymDrops; lhs != rhs {
		t.Fatalf("fabric conservation violated: tx+dup=%d != delivered+loss+linkdown+rxfull+asym=%d", lhs, rhs)
	}
	dev := srvNode.Catnip.Device()
	dev.QueueDepth(0)
	ds := dev.Stats()
	ps := sw.PortStats(dev.PortID())
	if ps.Delivered != ds.RxFrames+ds.RxDropped+ds.FilterDrops {
		t.Fatalf("nic conservation violated: delivered=%d != rx=%d+dropped=%d+filtered=%d",
			ps.Delivered, ds.RxFrames, ds.RxDropped, ds.FilterDrops)
	}
	srvNode.Poll()
	ds = dev.Stats()
	var occ int64
	for q := 0; q < dev.NumRxQueues(); q++ {
		occ += int64(dev.RxOccupancy(q))
	}
	framesIn := srvNode.Catnip.StackStats().FramesIn
	if ds.RxFrames != framesIn+occ+ds.RxFlushed {
		t.Fatalf("stack conservation violated across crash: nic rx=%d != sum frames_in=%d + rings=%d + flushed=%d",
			ds.RxFrames, framesIn, occ, ds.RxFlushed)
	}
}

// TestShardedRingSmoke attaches one ring pair per shard of a 2-shard
// node and drives an operation through each, proving the ring drain
// hook works per shard worker, not just on single-shard nodes.
func TestShardedRingSmoke(t *testing.T) {
	c := NewCluster(72)
	srvNode := c.MustSpawn(Catnip, WithHost(1), WithShards(2))
	cliNode := c.MustSpawn(Catnip, WithHost(2))
	sh := srvNode.Sharded
	if sh == nil || len(sh.Libs) != 2 {
		t.Fatalf("expected a 2-shard node, got %+v", sh)
	}

	stopS := srvNode.Background()
	defer stopS()
	stopC := cliNode.Background()
	defer stopC()

	// Every shard's own netstack listens on the same port; RSS decides
	// which shard a SYN reaches, so the dial must come from a source
	// port that hashes to the target shard.
	const port = 7200
	lqds := make([]QD, 2)
	for shardID := 0; shardID < 2; shardID++ {
		lib := sh.Libs[shardID]
		lqd, err := lib.Socket()
		if err != nil {
			t.Fatal(err)
		}
		if err := lib.Bind(lqd, Addr{Port: port}); err != nil {
			t.Fatal(err)
		}
		if err := lib.Listen(lqd); err != nil {
			t.Fatal(err)
		}
		lqds[shardID] = lqd
	}

	for shardID := 0; shardID < 2; shardID++ {
		lib := sh.Libs[shardID]
		lqd := lqds[shardID]
		cqd, err := c.Router().DialShard(cliNode, sh, port, shardID, uint16(shardID))
		if err != nil {
			t.Fatalf("shard %d dial: %v", shardID, err)
		}
		sqd, err := lib.Accept(lqd)
		if err != nil {
			t.Fatalf("shard %d accept: %v", shardID, err)
		}

		// Ring pair on the shard's own libOS: its worker loop (running
		// via Background) must drain the SQ and complete the ops.
		sp := lib.AttachRing(8)
		if n, err := lib.SubmitBatch(sp, []uring.SQE{{Op: queue.OpPop, QD: int32(sqd), Tag: 1}}); err != nil || n != 1 {
			t.Fatalf("shard %d pop submit: n=%d err=%v", shardID, n, err)
		}
		payload := []byte("shard-hello")
		if _, err := cliNode.BlockingPush(cqd, NewSGA(payload)); err != nil {
			t.Fatalf("shard %d push: %v", shardID, err)
		}
		cqes := make([]uring.CQE, 4)
		n, err := lib.WaitAnyRing(sp, cqes, time.Now().Add(2*time.Second))
		if err != nil {
			t.Fatalf("shard %d ring wait: %v", shardID, err)
		}
		if n != 1 || cqes[0].Err != nil || !bytes.Equal(cqes[0].SGA.Bytes(), payload) {
			t.Fatalf("shard %d ring pop: n=%d err=%v payload=%q", shardID, n, cqes[0].Err, cqes[0].SGA.Bytes())
		}
		cqes[0].SGA.Free()
		cliNode.Close(cqd)
		lib.Close(sqd)
		lib.Close(lqds[shardID])
	}
}
