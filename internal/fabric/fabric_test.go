package fabric

import (
	"testing"

	"demikernel/internal/simclock"
)

var (
	macA = MAC{0x02, 0, 0, 0, 0, 0xA}
	macB = MAC{0x02, 0, 0, 0, 0, 0xB}
	macC = MAC{0x02, 0, 0, 0, 0, 0xC}
)

func frame(dst, src MAC, payload string) Frame {
	data := make([]byte, 0, 14+len(payload))
	data = append(data, dst[:]...)
	data = append(data, src[:]...)
	data = append(data, 0x08, 0x00)
	data = append(data, payload...)
	return Frame{Data: data}
}

func newTestSwitch() *Switch {
	model := simclock.Datacenter2019()
	return NewSwitch(&model, 1)
}

func TestMACString(t *testing.T) {
	if got := macA.String(); got != "02:00:00:00:00:0a" {
		t.Fatalf("MAC.String = %q", got)
	}
	if !Broadcast.IsBroadcast() {
		t.Fatal("Broadcast must report IsBroadcast")
	}
	if macA.IsBroadcast() {
		t.Fatal("unicast MAC reports broadcast")
	}
}

func TestFloodThenLearn(t *testing.T) {
	sw := newTestSwitch()
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	pc := sw.NewPort(0)

	// A sends to B before anyone is learned: flood to B and C, not A.
	pa.Send(frame(macB, macA, "hello"))
	if _, ok := pa.Poll(); ok {
		t.Fatal("sender received its own flooded frame")
	}
	fb, ok := pb.Poll()
	if !ok {
		t.Fatal("B missed the flooded frame")
	}
	if string(fb.Data[14:]) != "hello" {
		t.Fatalf("payload = %q", fb.Data[14:])
	}
	if _, ok := pc.Poll(); !ok {
		t.Fatal("C missed the flooded frame")
	}

	// B replies; the switch has learned A, so only A receives.
	pb.Send(frame(macA, macB, "re"))
	if _, ok := pa.Poll(); !ok {
		t.Fatal("A missed the reply")
	}
	if _, ok := pc.Poll(); ok {
		t.Fatal("C received a unicast frame after learning")
	}

	// Now A→B is also learned.
	pa.Send(frame(macB, macA, "again"))
	if _, ok := pc.Poll(); ok {
		t.Fatal("C received learned unicast traffic")
	}
	if _, ok := pb.Poll(); !ok {
		t.Fatal("B missed learned unicast traffic")
	}
}

func TestBroadcastFloods(t *testing.T) {
	sw := newTestSwitch()
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	pc := sw.NewPort(0)
	pa.Send(frame(Broadcast, macA, "arp"))
	if _, ok := pb.Poll(); !ok {
		t.Fatal("B missed broadcast")
	}
	if _, ok := pc.Poll(); !ok {
		t.Fatal("C missed broadcast")
	}
	if _, ok := pa.Poll(); ok {
		t.Fatal("sender got its own broadcast")
	}
}

func TestWireCostAccumulates(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := NewSwitch(&model, 1)
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	_ = pb
	in := frame(macB, macA, "x")
	in.Cost = 100
	pa.Send(in)
	// flooded to b
	got, ok := sw.ports[1].Poll()
	if !ok {
		t.Fatal("no frame")
	}
	want := simclock.Lat(100) + model.WireDelayNS
	if got.Cost != want {
		t.Fatalf("cost = %v, want %v", got.Cost, want)
	}
	_ = pa
}

func TestRuntFramesDropped(t *testing.T) {
	sw := newTestSwitch()
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	pa.Send(Frame{Data: []byte{1, 2, 3}})
	if _, ok := pb.Poll(); ok {
		t.Fatal("runt frame was delivered")
	}
}

func TestRxRingOverflowDrops(t *testing.T) {
	sw := newTestSwitch()
	pa := sw.NewPort(0)
	pb := sw.NewPort(2) // tiny ring
	_ = pb
	for i := 0; i < 10; i++ {
		pa.Send(frame(macB, macA, "spam"))
	}
	st := sw.Stats()
	if st.DroppedRxFull == 0 {
		t.Fatal("expected overflow drops on tiny ring")
	}
	// The first sends flooded; count delivered+dropped matches sends per port.
	if st.Delivered == 0 {
		t.Fatal("nothing delivered at all")
	}
}

func TestLossInjection(t *testing.T) {
	sw := newTestSwitch()
	sw.SetImpairments(Impairments{LossRate: 1.0})
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	for i := 0; i < 5; i++ {
		pa.Send(frame(macB, macA, "gone"))
	}
	if _, ok := pb.Poll(); ok {
		t.Fatal("frame survived 100% loss")
	}
	if sw.Stats().InjectedLoss != 5 {
		t.Fatalf("InjectedLoss = %d, want 5", sw.Stats().InjectedLoss)
	}
}

func TestDuplicationInjection(t *testing.T) {
	sw := newTestSwitch()
	sw.SetImpairments(Impairments{DupRate: 1.0})
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	_ = pb
	pa.Send(frame(macB, macA, "twice"))
	n := 0
	for {
		if _, ok := sw.ports[1].Poll(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("received %d copies, want 2", n)
	}
}

func TestReorderInjection(t *testing.T) {
	sw := newTestSwitch()
	sw.SetImpairments(Impairments{ReorderRate: 1.0})
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	_ = pb
	pa.Send(frame(macB, macA, "1")) // held
	pa.Send(frame(macB, macA, "2")) // delivered first, then "1"
	var got []string
	for {
		f, ok := sw.ports[1].Poll()
		if !ok {
			break
		}
		got = append(got, string(f.Data[14:]))
	}
	if len(got) != 2 || got[0] != "2" || got[1] != "1" {
		t.Fatalf("order = %v, want [2 1]", got)
	}
}

func TestFlushReleasesHeldFrame(t *testing.T) {
	sw := newTestSwitch()
	sw.SetImpairments(Impairments{ReorderRate: 1.0})
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	_ = pb
	pa.Send(frame(macB, macA, "held"))
	if _, ok := sw.ports[1].Poll(); ok {
		t.Fatal("held frame delivered early")
	}
	sw.Flush()
	if _, ok := sw.ports[1].Poll(); !ok {
		t.Fatal("Flush did not release the held frame")
	}
}

func TestLinkDownDropsAtSender(t *testing.T) {
	sw := newTestSwitch()
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)

	sw.SetLinkState(pa.ID(), false)
	for i := 0; i < 3; i++ {
		pa.Send(frame(macB, macA, "void"))
	}
	if _, ok := pb.Poll(); ok {
		t.Fatal("frame crossed an administratively down link")
	}
	if got := sw.Stats().LinkDownDrops; got != 3 {
		t.Fatalf("global LinkDownDrops = %d, want 3", got)
	}
	if got := sw.PortStats(pa.ID()).LinkDownDrops; got != 3 {
		t.Fatalf("port %d LinkDownDrops = %d, want 3", pa.ID(), got)
	}
	if got := sw.PortStats(pb.ID()).LinkDownDrops; got != 0 {
		t.Fatalf("receiver port charged %d LinkDownDrops for a tx-side cut", got)
	}

	// Healing the link restores delivery.
	sw.SetLinkState(pa.ID(), true)
	pa.Send(frame(macB, macA, "back"))
	f, ok := pb.Poll()
	if !ok {
		t.Fatal("no delivery after the link came back up")
	}
	if string(f.Data[14:]) != "back" {
		t.Fatalf("payload after heal = %q", f.Data[14:])
	}
}

func TestLinkDownDropsAtReceiver(t *testing.T) {
	sw := newTestSwitch()
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)

	// Teach the switch where B lives so the frame is unicast, then cut B.
	pb.Send(frame(macA, macB, "learn"))
	pa.Poll()
	sw.SetLinkState(pb.ID(), false)

	pa.Send(frame(macB, macA, "drowned"))
	if _, ok := pb.Poll(); ok {
		t.Fatal("frame delivered to a down port")
	}
	if got := sw.Stats().LinkDownDrops; got != 1 {
		t.Fatalf("global LinkDownDrops = %d, want 1", got)
	}
	// The drop is attributed to the receiver's port, not the sender's.
	if got := sw.PortStats(pb.ID()).LinkDownDrops; got != 1 {
		t.Fatalf("receiver port LinkDownDrops = %d, want 1", got)
	}
	if got := sw.PortStats(pa.ID()).LinkDownDrops; got != 0 {
		t.Fatalf("sender port LinkDownDrops = %d, want 0", got)
	}
}

func TestCorruptionInjection(t *testing.T) {
	sw := newTestSwitch()
	sw.SetImpairments(Impairments{CorruptRate: 1.0})
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)

	sent := frame(macB, macA, "precious payload")
	orig := append([]byte(nil), sent.Data...)
	pa.Send(sent)

	got, ok := pb.Poll()
	if !ok {
		t.Fatal("corrupted frame was not delivered (corruption must not drop)")
	}
	// Exactly one byte differs, and only past the Ethernet header.
	diffs := 0
	for i := range orig {
		if got.Data[i] != orig[i] {
			diffs++
			if i < MinFrameLen {
				t.Fatalf("corruption touched header byte %d", i)
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diffs)
	}
	// The sender's buffer is untouched: corruption copies.
	for i := range orig {
		if sent.Data[i] != orig[i] {
			t.Fatal("corruption scribbled on the sender's buffer")
		}
	}
	if got := sw.Stats().InjectedCorrupt; got != 1 {
		t.Fatalf("global InjectedCorrupt = %d, want 1", got)
	}
	if got := sw.PortStats(pa.ID()).InjectedCorrupt; got != 1 {
		t.Fatalf("port InjectedCorrupt = %d, want 1", got)
	}
}

func TestPerPortImpairmentsTargetOnePort(t *testing.T) {
	sw := newTestSwitch()
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	pc := sw.NewPort(0)
	_ = pb

	// Only A's uplink corrupts; C's traffic must pass clean.
	sw.SetPortImpairments(pa.ID(), Impairments{CorruptRate: 1.0})

	pa.Send(frame(macB, macA, "dirty"))
	pc.Send(frame(macB, macC, "clean"))

	var clean, dirty int
	for {
		f, ok := sw.ports[1].Poll()
		if !ok {
			break
		}
		switch string(f.Data[14:]) {
		case "clean":
			clean++
		case "dirty":
			t.Fatal("frame from the impaired port arrived uncorrupted")
		default:
			dirty++
		}
	}
	if clean != 1 || dirty != 1 {
		t.Fatalf("clean=%d dirty=%d, want 1 and 1", clean, dirty)
	}
	if got := sw.PortStats(pa.ID()).InjectedCorrupt; got != 1 {
		t.Fatalf("impaired port InjectedCorrupt = %d, want 1", got)
	}
	if got := sw.PortStats(pc.ID()).InjectedCorrupt; got != 0 {
		t.Fatalf("clean port InjectedCorrupt = %d, want 0", got)
	}
}

func TestPortStatsCountTxAndDelivered(t *testing.T) {
	sw := newTestSwitch()
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)

	// Learn both directions so traffic is unicast.
	pa.Send(frame(macB, macA, "l1"))
	pb.Poll()
	pb.Send(frame(macA, macB, "l2"))
	pa.Poll()

	for i := 0; i < 4; i++ {
		pa.Send(frame(macB, macA, "x"))
		pb.Poll()
	}
	sa, sb := sw.PortStats(pa.ID()), sw.PortStats(pb.ID())
	if sa.TxFrames != 5 { // learn + 4
		t.Fatalf("A TxFrames = %d, want 5", sa.TxFrames)
	}
	if sb.Delivered != 5 {
		t.Fatalf("B Delivered = %d, want 5", sb.Delivered)
	}
}

func TestDeterministicInjection(t *testing.T) {
	run := func() Stats {
		model := simclock.Datacenter2019()
		sw := NewSwitch(&model, 42)
		sw.SetImpairments(Impairments{LossRate: 0.3, DupRate: 0.2})
		pa := sw.NewPort(0)
		pb := sw.NewPort(0)
		_ = pb
		for i := 0; i < 200; i++ {
			pa.Send(frame(macB, macA, "d"))
		}
		return sw.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different stats: %+v vs %+v", a, b)
	}
}
