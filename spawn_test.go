package demikernel

// Spawn API tests: the unified construction surface must honor its
// options, reject nonsense kinds and kind/option mismatches with errors
// (not panics), and the deprecated per-kind constructors must remain
// exact thin wrappers over it.

import (
	"errors"
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/telemetry"
)

func TestSpawnHonorsOptions(t *testing.T) {
	c := NewCluster(71)
	reg := telemetry.NewRegistry()
	n := c.MustSpawn(Catnip,
		WithConfig(NodeConfig{RTO: 3 * time.Millisecond, MaxRetransmits: 2}),
		WithHost(7), // later WithHost wins over WithConfig's Host
		WithTelemetry(reg),
		WithLifecycle(),
	)
	if n.Catnip == nil || n.Sharded != nil {
		t.Fatalf("spawned the wrong shape: %+v", n)
	}
	if n.IP != c.ip(7) || n.MAC != c.mac(7) {
		t.Fatalf("WithHost lost to WithConfig: ip=%v mac=%v", n.IP, n.MAC)
	}
	if n.Clock == nil {
		t.Fatal("WithLifecycle attached no drift clock")
	}
	if len(reg.Snapshot().Samples) == 0 {
		t.Fatal("WithTelemetry registered nothing")
	}

	sharded := c.MustSpawn(Catnip, WithHost(8), WithShards(4))
	if sharded.Sharded == nil || sharded.Sharded.Size() != 4 {
		t.Fatalf("WithShards(4) produced %+v", sharded.Sharded)
	}
	if sharded.Catnip != sharded.Sharded.Set.Shard(0) {
		t.Fatal("sharded node's Catnip is not shard 0")
	}
}

func TestSpawnRejectsBadRequests(t *testing.T) {
	c := NewCluster(72)
	if _, err := c.Spawn(Kind("catzilla"), WithHost(1)); err == nil {
		t.Fatal("unknown kind spawned")
	}
	if _, err := c.Spawn(Catmint, WithHost(1), WithShards(2)); !errors.Is(err, core.ErrNotSupported) {
		t.Fatalf("WithShards on catmint = %v, want ErrNotSupported", err)
	}
}

// The deprecated constructors must be behaviorally identical to the
// Spawn calls they forward to — same shapes, same identities.
func TestDeprecatedConstructorsDelegate(t *testing.T) {
	c := NewCluster(73)

	nip := c.NewCatnipNode(NodeConfig{Host: 1})
	if nip.Catnip == nil || nip.IP != c.ip(1) {
		t.Fatalf("NewCatnipNode shape: %+v", nip)
	}
	nap := c.NewCatnapNode(NodeConfig{Host: 2})
	if nap.Kernel == nil {
		t.Fatal("NewCatnapNode spawned no kernel")
	}
	mint := c.NewCatmintNode(NodeConfig{Host: 3})
	if mint.Catmint == nil {
		t.Fatal("NewCatmintNode spawned no RDMA transport")
	}
	fish, err := c.NewCatfishNode(64)
	if err != nil || fish.Catfish == nil {
		t.Fatalf("NewCatfishNode: %v %+v", err, fish)
	}
	sharded := c.NewShardedCatnipNode(NodeConfig{Host: 4}, 2)
	if sharded == nil || sharded.Size() != 2 {
		t.Fatalf("NewShardedCatnipNode shape: %+v", sharded)
	}

	// And a wrapper-spawned node still has the full lifecycle surface.
	if _, err := nip.Crash(); err != nil {
		t.Fatalf("Crash on wrapper-spawned node: %v", err)
	}
	if err := nip.Restart(); err != nil {
		t.Fatalf("Restart on wrapper-spawned node: %v", err)
	}
}
