// Package offload implements the paper's §4.2–§4.3 offload story: queue
// filter and map functions that a libOS can either run on the host CPU
// (the default fallback) or lower onto the kernel-bypass device ("library
// OSes always implement filters directly on supported devices but default
// to using the CPU if necessary").
//
// It also models the cache-utilisation benefit the paper attributes to
// filters: "they can improve cache utilization by steering I/O to CPUs
// based on application-specific parameters (e.g., keys in a key-value
// store)". The CacheSim type is a per-core LRU model that makes the
// benefit measurable: key-affine steering keeps a key's working set on
// one core; spraying destroys it.
package offload

import (
	"container/list"

	"demikernel/internal/nic"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
)

// FilterSpec is one filter expressed at both levels: over SGAs for the
// CPU path, and over raw frames for the device path. The two must agree
// on any frame a libOS would deliver; tests check that.
type FilterSpec struct {
	Name string
	// SGA is the CPU implementation over popped elements.
	SGA queue.FilterFunc
	// Frame is the device implementation over raw Ethernet frames.
	Frame func(frame []byte) bool
}

// InstallDrop lowers the spec onto the device as a drop filter:
// non-matching frames are discarded in "hardware", costing the device's
// per-element offloaded filter cost but zero host CPU. It returns the
// filter-table index.
func InstallDrop(dev *nic.Device, spec FilterSpec) int {
	return dev.AddFilter(nic.HWFilter{
		Match:  func(f []byte) bool { return !spec.Frame(f) },
		Action: nic.ActionDrop,
	})
}

// InstallSteer lowers the spec onto the device as a steering filter:
// matching frames go to the given receive queue.
func InstallSteer(dev *nic.Device, spec FilterSpec, rxQueue int) int {
	return dev.AddFilter(nic.HWFilter{
		Match:  spec.Frame,
		Action: nic.ActionSteer,
		Queue:  rxQueue,
	})
}

// CPUFilter wraps q with the spec's CPU fallback, charging host filter
// cost per element.
func CPUFilter(q queue.IoQueue, spec FilterSpec, model *simclock.CostModel) queue.IoQueue {
	return queue.NewFilterQueue(q, spec.SGA, model)
}

// KeySteering installs one steering filter per receive queue, assigning
// keys to queues by a stable hash of the key bytes extracted by keyOf.
// It models FlexNIC-style key-based steering [32 in the paper].
func KeySteering(dev *nic.Device, nQueues int, keyOf func(frame []byte) ([]byte, bool)) {
	for q := 0; q < nQueues; q++ {
		qq := q
		dev.AddFilter(nic.HWFilter{
			Match: func(f []byte) bool {
				key, ok := keyOf(f)
				if !ok {
					return false
				}
				return int(hashBytes(key))%nQueues == qq
			},
			Action: nic.ActionSteer,
			Queue:  qq,
		})
	}
}

// hashBytes is a small FNV-1a.
func hashBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// QueueForKey returns the receive queue KeySteering assigns to key.
func QueueForKey(key []byte, nQueues int) int {
	return int(hashBytes(key)) % nQueues
}

// CacheSim models per-core data caches as independent LRU sets of
// cache-line-sized entries keyed by application keys. It quantifies the
// steering claim: the hit ratio is the observable.
type CacheSim struct {
	cores    []*lru
	hits     int64
	misses   int64
	capacity int
}

// NewCacheSim builds nCores caches of the given entry capacity each.
func NewCacheSim(nCores, capacity int) *CacheSim {
	cs := &CacheSim{capacity: capacity}
	for i := 0; i < nCores; i++ {
		cs.cores = append(cs.cores, newLRU(capacity))
	}
	return cs
}

// Access records core touching key's working set.
func (cs *CacheSim) Access(core int, key string) {
	if cs.cores[core].touch(key) {
		cs.hits++
	} else {
		cs.misses++
	}
}

// HitRatio returns hits / (hits + misses).
func (cs *CacheSim) HitRatio() float64 {
	total := cs.hits + cs.misses
	if total == 0 {
		return 0
	}
	return float64(cs.hits) / float64(total)
}

// Hits returns the raw hit count.
func (cs *CacheSim) Hits() int64 { return cs.hits }

// Misses returns the raw miss count.
func (cs *CacheSim) Misses() int64 { return cs.misses }

// lru is a fixed-capacity LRU set.
type lru struct {
	cap   int
	order *list.List
	index map[string]*list.Element
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), index: make(map[string]*list.Element)}
}

// touch returns true on hit, inserting (and possibly evicting) on miss.
func (l *lru) touch(key string) bool {
	if e, ok := l.index[key]; ok {
		l.order.MoveToFront(e)
		return true
	}
	if l.order.Len() >= l.cap {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.index, oldest.Value.(string))
	}
	l.index[key] = l.order.PushFront(key)
	return false
}

// SGAKeyFilter builds a FilterSpec matching elements whose first segment
// starts with prefix. The frame-level variant scans the raw frame for the
// framed SGA: it assumes the standard catnip layout (eth+ip+tcp headers,
// then the SGA frame) and falls back to a payload scan — imprecise in
// exactly the way real offloaded parsers are, and consistent for the
// experiment's traffic.
func SGAKeyFilter(prefix []byte) FilterSpec {
	return FilterSpec{
		Name: "prefix:" + string(prefix),
		SGA: func(s sga.SGA) bool {
			if s.NumSegments() == 0 {
				return false
			}
			first := s.Segments[0].Buf
			return len(first) >= len(prefix) && string(first[:len(prefix)]) == string(prefix)
		},
		Frame: func(f []byte) bool {
			// eth(14)+ipv4(20)+tcp(20)+sga hdr(8)+seg len(4) = 66.
			const off = 66
			if len(f) < off+len(prefix) {
				return false
			}
			return string(f[off:off+len(prefix)]) == string(prefix)
		},
	}
}
