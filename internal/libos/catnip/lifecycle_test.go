package catnip_test

// Lifecycle unit tests: Crash must abort every pending qtoken with the
// typed local-reset error (nothing hangs, nothing leaks), Restart must
// re-arm the application's listening queues on the fresh stack without
// the application re-running its setup, and the device must account for
// every ring frame the dead stack never ingested. These are the §3
// obligations of a kernel-bypass node in miniature.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	demi "demikernel"
	"demikernel/internal/core"
	"demikernel/internal/libos/catnip"
)

func TestCrashAbortsPendingQTokensTyped(t *testing.T) {
	c, srv, cli, cleanup := pair(t, 51)
	defer cleanup()
	_, sqd := connect(t, c, srv, cli, 80)

	// A pop with no data coming: the crash is the only thing that can
	// complete it, and it must do so with the typed error, not a hang.
	qt, err := srv.Pop(sqd)
	if err != nil {
		t.Fatal(err)
	}
	aborted, err := srv.Crash()
	if err != nil {
		t.Fatal(err)
	}
	if aborted == 0 {
		t.Fatal("Crash aborted nothing despite a pending pop")
	}
	if !srv.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	comp, err := srv.Wait(qt)
	if err != nil {
		t.Fatalf("Wait on an aborted qtoken errored at the API layer: %v", err)
	}
	if !errors.Is(comp.Err, core.ErrLocalReset) {
		t.Fatalf("aborted completion error = %v, want ErrLocalReset", comp.Err)
	}

	// Idempotent: the second crash of a corpse finds nothing to abort.
	again, err := srv.Crash()
	if err != nil || again != 0 {
		t.Fatalf("second Crash = %d, %v; want 0, nil", again, err)
	}
}

func TestRestartOfRunningStackRefused(t *testing.T) {
	_, srv, _, cleanup := pair(t, 52)
	defer cleanup()
	if err := srv.Restart(); !errors.Is(err, catnip.ErrNotCrashed) {
		t.Fatalf("Restart of a running node = %v, want ErrNotCrashed", err)
	}
}

func TestLifecycleUnsupportedOffCatnip(t *testing.T) {
	c := demi.NewCluster(53)
	n := c.MustSpawn(demi.Catnap, demi.WithHost(1))
	if _, err := n.Crash(); !errors.Is(err, core.ErrNotSupported) {
		t.Fatalf("Crash on catnap = %v, want ErrNotSupported", err)
	}
	if err := n.Restart(); !errors.Is(err, core.ErrNotSupported) {
		t.Fatalf("Restart on catnap = %v, want ErrNotSupported", err)
	}
}

// The LibrettOS recovery property: the application's listening QD —
// created once, before the crash — keeps accepting after Restart, on
// the reborn stack, with no application-side rebind.
func TestListenerRearmsAcrossRestart(t *testing.T) {
	c := demi.NewCluster(54)
	srv := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	cli := c.MustSpawn(demi.Catnip, demi.WithConfig(demi.NodeConfig{
		Host: 2, RTO: 2 * time.Millisecond, MaxRetransmits: 4,
	}))
	defer srv.Background()()
	defer cli.Background()()

	lqd, err := srv.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind(lqd, demi.Addr{Port: 80}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(lqd); err != nil {
		t.Fatal(err)
	}
	cqd, _ := cli.Socket()
	if err := cli.Connect(cqd, c.AddrOf(srv, 80)); err != nil {
		t.Fatal(err)
	}
	sqd, err := srv.Accept(lqd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.BlockingPush(cqd, demi.NewSGA([]byte("ping"))); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.BlockingPop(sqd); err != nil {
		t.Fatal(err)
	}

	if _, err := srv.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Restart(); err != nil {
		t.Fatal(err)
	}
	if srv.Crashed() {
		t.Fatal("Crashed() = true after Restart")
	}
	if cr, rs := srv.Catnip.Lifetimes(); cr != 1 || rs != 1 {
		t.Fatalf("Lifetimes = %d, %d; want 1, 1", cr, rs)
	}

	// Fresh dial to the same port, accepted on the ORIGINAL lqd.
	cqd2, _ := cli.Socket()
	if err := cli.Connect(cqd2, c.AddrOf(srv, 80)); err != nil {
		t.Fatalf("dial to the reborn node: %v", err)
	}
	sqd2, err := srv.Accept(lqd)
	if err != nil {
		t.Fatalf("pre-crash listening QD refused to accept: %v", err)
	}
	msg := demi.NewSGA([]byte("reborn"))
	if _, err := cli.BlockingPush(cqd2, msg); err != nil {
		t.Fatal(err)
	}
	comp, err := srv.BlockingPop(sqd2)
	if err != nil || comp.Err != nil {
		t.Fatalf("pop on the reborn stack: %v %v", err, comp.Err)
	}
	if !bytes.Equal(comp.SGA.Bytes(), []byte("reborn")) {
		t.Fatalf("payload corrupted across restart: %q", comp.SGA.Bytes())
	}
}

// Frame conservation at the moment of death: frames sitting in the NIC
// receive rings when the stack dies are flushed back to their pools and
// counted in RxFlushed, so nic.RxFrames == stack.FramesIn (cumulative)
// + ring occupancy + nic.RxFlushed holds across the crash.
func TestCrashReclaimsRingFrames(t *testing.T) {
	c := demi.NewCluster(55)
	srv := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	cli := c.MustSpawn(demi.Catnip, demi.WithHost(2))
	stopCli := cli.Background()
	defer stopCli()
	stopSrv := srv.Background()

	lqd, _ := srv.Socket()
	if err := srv.Bind(lqd, demi.Addr{Port: 80}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(lqd); err != nil {
		t.Fatal(err)
	}
	cqd, _ := cli.Socket()
	if err := cli.Connect(cqd, c.AddrOf(srv, 80)); err != nil {
		t.Fatal(err)
	}
	sqd, err := srv.Accept(lqd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.BlockingPush(cqd, demi.NewSGA([]byte("warm"))); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.BlockingPop(sqd); err != nil {
		t.Fatal(err)
	}

	// Stop the server's poller so the next pushes strand in its rings,
	// exactly where a crash would find them.
	stopSrv()
	for i := 0; i < 8; i++ {
		if _, err := cli.Push(cqd, demi.NewSGA(bytes.Repeat([]byte{byte(i)}, 200))); err != nil {
			t.Fatal(err)
		}
	}
	dev := srv.Catnip.Device()
	occupancy := func() int64 {
		var occ int64
		for q := 0; q < dev.NumRxQueues(); q++ {
			occ += int64(dev.RxOccupancy(q))
		}
		return occ
	}
	deadline := time.Now().Add(2 * time.Second)
	for occupancy() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no frame ever stranded in the server's RX rings")
		}
		c.Switch.Flush()
		dev.QueueDepth(0) // force a wire drain so delivered frames ring
		time.Sleep(time.Millisecond)
	}

	if _, err := srv.Crash(); err != nil {
		t.Fatal(err)
	}
	ds := dev.Stats()
	if ds.RxFlushed == 0 {
		t.Fatal("crash flushed no ring frames despite stranded RX")
	}
	if occ := occupancy(); occ != 0 {
		t.Fatalf("ring occupancy = %d after crash, want 0", occ)
	}
	if st := srv.Catnip.StackStats(); ds.RxFrames != st.FramesIn+ds.RxFlushed {
		t.Fatalf("conservation violated across crash: rx=%d != frames_in=%d + flushed=%d",
			ds.RxFrames, st.FramesIn, ds.RxFlushed)
	}
}
