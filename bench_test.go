package demikernel

// One testing.B benchmark per experiment in the DESIGN.md index
// (E1..E13). The experiment harness (internal/experiments, run via
// cmd/demi-bench) reports deterministic *virtual* latencies from the cost
// model; these benchmarks measure the *real* execution cost of the same
// code paths, so regressions in the simulation itself are visible.

import (
	"fmt"
	"sync"
	"testing"

	"demikernel/internal/apps/echo"
	"demikernel/internal/apps/kv"
	"demikernel/internal/fabric"
	"demikernel/internal/kernel"
	"demikernel/internal/membuf"
	"demikernel/internal/netstack"
	"demikernel/internal/nic"
	"demikernel/internal/offload"
	"demikernel/internal/queue"
	"demikernel/internal/rdma"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
)

// benchEchoRig builds an echo pair over a flavor for RTT benchmarks.
func benchEchoRig(b *testing.B, flavor string, extra Lat) (*echo.Client, func()) {
	b.Helper()
	c := NewCluster(1)
	mk := func(host byte) *Node {
		switch flavor {
		case "catnip":
			return c.MustSpawn(Catnip, WithConfig(NodeConfig{Host: host, PerPacketExtra: extra}))
		case "catnap":
			return c.MustSpawn(Catnap, WithConfig(NodeConfig{Host: host, PerPacketExtra: extra}))
		case "catmint":
			return c.MustSpawn(Catmint, WithHost(host))
		default:
			b.Fatalf("flavor %q", flavor)
			return nil
		}
	}
	srvNode, cliNode := mk(1), mk(2)
	srv := echo.NewServer(srvNode.LibOS)
	if err := srv.Listen(7); err != nil {
		b.Fatal(err)
	}
	stopS := srvNode.Background()
	stopC := cliNode.Background()
	stopServe := make(chan struct{})
	go srv.Run(stopServe)
	cli := echo.NewClient(cliNode.LibOS)
	if err := cli.Connect(c.AddrOf(srvNode, 7)); err != nil {
		b.Fatal(err)
	}
	return cli, func() { close(stopServe); stopC(); stopS() }
}

// BenchmarkE1_DataPath measures echo RTT over the legacy kernel path and
// the kernel-bypass path (Figure 1).
func BenchmarkE1_DataPath(b *testing.B) {
	for _, flavor := range []string{"catnap", "catnip"} {
		for _, size := range []int{64, 4096} {
			b.Run(fmt.Sprintf("%s/%dB", flavor, size), func(b *testing.B) {
				cli, cleanup := benchEchoRig(b, flavor, 0)
				defer cleanup()
				payload := make([]byte, size)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := cli.RTT(payload, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE2_Taxonomy measures the cost of the portable socket control
// path per libOS (Table 1: same API, different devices).
func BenchmarkE2_Taxonomy(b *testing.B) {
	for _, flavor := range []string{"catnap", "catnip", "catmint"} {
		b.Run(flavor, func(b *testing.B) {
			c := NewCluster(1)
			var node *Node
			switch flavor {
			case "catnap":
				node = c.MustSpawn(Catnap, WithHost(1))
			case "catnip":
				node = c.MustSpawn(Catnip, WithHost(1))
			case "catmint":
				node = c.MustSpawn(Catmint, WithHost(1))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qd, err := node.Socket()
				if err != nil {
					b.Fatal(err)
				}
				node.Close(qd)
			}
		})
	}
}

// BenchmarkE3_ZeroCopy measures a 4KB KV GET over the copy path and the
// zero-copy path (§3.2).
func BenchmarkE3_ZeroCopy(b *testing.B) {
	for _, flavor := range []string{"catnap", "catnip"} {
		b.Run(flavor, func(b *testing.B) {
			c := NewCluster(1)
			var srvNode, cliNode *Node
			if flavor == "catnap" {
				srvNode, cliNode = c.MustSpawn(Catnap, WithHost(1)), c.MustSpawn(Catnap, WithHost(2))
			} else {
				srvNode, cliNode = c.MustSpawn(Catnip, WithHost(1)), c.MustSpawn(Catnip, WithHost(2))
			}
			srv := kv.NewServer(srvNode.LibOS, &c.Model)
			if err := srv.Listen(6379); err != nil {
				b.Fatal(err)
			}
			defer srvNode.Background()()
			defer cliNode.Background()()
			stop := make(chan struct{})
			defer close(stop)
			go srv.Run(stop)
			cli := kv.NewClient(cliNode.LibOS)
			if err := cli.Connect(c.AddrOf(srvNode, 6379)); err != nil {
				b.Fatal(err)
			}
			if _, err := cli.Set("k", make([]byte, 4096)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, found, err := cli.Get("k"); err != nil || !found {
					b.Fatalf("found=%v err=%v", found, err)
				}
			}
		})
	}
}

// BenchmarkE4_AtomicUnits compares discovering a complete request via
// stream re-parsing (POSIX) against an atomic queue pop (§3.2).
func BenchmarkE4_AtomicUnits(b *testing.B) {
	payload := sga.New(make([]byte, 1024))
	framed := payload.Marshal()
	b.Run("stream-reassembly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var f sga.Framer
			// The request arrives in 8 fragments; the server re-checks
			// completeness on each.
			frag := len(framed) / 8
			for j := 0; j < 8; j++ {
				hi := (j + 1) * frag
				if j == 7 {
					hi = len(framed)
				}
				f.Feed(framed[j*frag : hi])
				f.HasCompleteFrame()
			}
			if _, ok, _ := f.Next(); !ok {
				b.Fatal("frame lost")
			}
		}
	})
	b.Run("atomic-queue-pop", func(b *testing.B) {
		q := queue.NewMemQueue(0)
		for i := 0; i < b.N; i++ {
			q.Push(payload, 0, func(queue.Completion) {})
			got := false
			q.Pop(func(c queue.Completion) { got = c.Err == nil })
			if !got {
				b.Fatal("pop failed")
			}
		}
	})
}

// BenchmarkE5_Wakeups compares completion delivery: epoll wake-all vs
// qtoken wake-one (§4.4).
func BenchmarkE5_Wakeups(b *testing.B) {
	b.Run("epoll-herd", func(b *testing.B) {
		model := simclock.Datacenter2019()
		k := kernel.New(&model, nil, netstack.IPv4Addr{})
		r, w, _ := k.Pipe()
		ep := k.EpollCreate()
		ep.Add(r)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.WritePipe(w, []byte{1}, 0)
			if fds, _ := ep.TryWait(); len(fds) == 0 {
				b.Fatal("not ready")
			}
			k.ReadPipe(r, 0)
		}
	})
	b.Run("qtoken-wake-one", func(b *testing.B) {
		completer := queue.NewCompleter()
		q := queue.NewMemQueue(0)
		payload := sga.New([]byte{1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qt, done := completer.NewToken()
			q.Pop(done)
			q.Push(payload, 0, func(queue.Completion) {})
			if _, ok, _ := completer.TryWait(qt); !ok {
				b.Fatal("not complete")
			}
		}
	})
}

// BenchmarkE6_PosixUserStack measures the POSIX-emulation tax on a user
// stack (§6).
func BenchmarkE6_PosixUserStack(b *testing.B) {
	model := simclock.Datacenter2019()
	configs := []struct {
		name  string
		extra Lat
	}{
		{"demikernel", 0},
		{"mTCP-style", model.PosixEmulationNS},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			cli, cleanup := benchEchoRig(b, "catnip", cfg.extra)
			defer cleanup()
			payload := make([]byte, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cli.RTT(payload, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7_Memory measures buffer acquisition: explicit per-buffer
// registration vs the libOS slab (§4.5).
func BenchmarkE7_Memory(b *testing.B) {
	model := simclock.Datacenter2019()
	b.Run("explicit-registration", func(b *testing.B) {
		sw := fabric.NewSwitch(&model, 1)
		dev := rdma.New(&model, sw, fabric.MAC{2, 0, 0, 0, 0, 1})
		pd := dev.AllocPD()
		buf := make([]byte, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mr := pd.RegisterMemory(buf)
			mr.Deregister()
		}
	})
	b.Run("libos-slab", func(b *testing.B) {
		mem := membuf.NewManager(&model)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf := mem.Alloc(4096)
			buf.Free()
		}
	})
}

// BenchmarkE8_FilterOffload measures per-frame classification with the
// filter on the host CPU vs on the device (§4.2).
func BenchmarkE8_FilterOffload(b *testing.B) {
	model := simclock.Datacenter2019()
	mkPair := func(install bool) (*nic.Device, *nic.Device) {
		sw := fabric.NewSwitch(&model, 1)
		tx := nic.New(&model, sw, nic.Config{MAC: fabric.MAC{2, 0, 0, 0, 0, 1}})
		rx := nic.New(&model, sw, nic.Config{MAC: fabric.MAC{2, 0, 0, 0, 0, 2}, RingDepth: 4096})
		if install {
			offload.InstallDrop(rx, offload.FilterSpec{
				Frame: func(f []byte) bool { return len(f) > 14 && f[14] == 'K' },
			})
		}
		return tx, rx
	}
	frame := func(k byte) []byte {
		f := append(append([]byte{2, 0, 0, 0, 0, 2}, 2, 0, 0, 0, 0, 1), 0x08, 0x00)
		return append(f, k, 1, 2, 3)
	}
	b.Run("cpu-filter", func(b *testing.B) {
		tx, rx := mkPair(false)
		match := func(f []byte) bool { return len(f) > 14 && f[14] == 'K' }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx.Tx(frame(byte('K'-byte(i%2))), 0)
			for _, fr := range rx.RxBurst(0, 8) {
				_ = match(fr.Data)
			}
		}
	})
	b.Run("device-filter", func(b *testing.B) {
		tx, rx := mkPair(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx.Tx(frame(byte('K'-byte(i%2))), 0)
			rx.RxBurst(0, 8)
		}
	})
}

// BenchmarkE9_Portability runs the identical echo op over all three
// network libOSes (§4.1).
func BenchmarkE9_Portability(b *testing.B) {
	for _, flavor := range []string{"catnap", "catnip", "catmint"} {
		b.Run(flavor, func(b *testing.B) {
			cli, cleanup := benchEchoRig(b, flavor, 0)
			defer cleanup()
			payload := make([]byte, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cli.RTT(payload, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10_SortQueue measures pops through the priority view vs
// plain FIFO (§4.3).
func BenchmarkE10_SortQueue(b *testing.B) {
	item := func(i int) sga.SGA { return sga.New([]byte{byte(i % 7)}) }
	b.Run("fifo", func(b *testing.B) {
		q := queue.NewMemQueue(1 << 20)
		for i := 0; i < b.N; i++ {
			q.Push(item(i), 0, func(queue.Completion) {})
			q.Pop(func(queue.Completion) {})
		}
	})
	b.Run("sorted", func(b *testing.B) {
		base := queue.NewMemQueue(1 << 20)
		s := queue.NewSortQueue(base, func(a, x sga.SGA) bool {
			return a.Segments[0].Buf[0] < x.Segments[0].Buf[0]
		}, 8)
		for i := 0; i < b.N; i++ {
			base.Push(item(i), 0, func(queue.Completion) {})
			s.Pump()
			s.Pop(func(queue.Completion) {})
		}
	})
}

// BenchmarkE11_Framing measures SGA marshal + reassembly throughput
// (§5.2).
func BenchmarkE11_Framing(b *testing.B) {
	s := sga.New(make([]byte, 100), make([]byte, 1000), make([]byte, 16))
	wire := s.Marshal()
	b.SetBytes(int64(len(wire)))
	var f sga.Framer
	for i := 0; i < b.N; i++ {
		f.Feed(wire)
		if _, ok, err := f.Next(); !ok || err != nil {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkE12_Storage measures durable record appends: log layout vs
// kernel FS write+fsync (§5.3).
func BenchmarkE12_Storage(b *testing.B) {
	model := simclock.Datacenter2019()
	rec := make([]byte, 512)
	b.Run("catfish-log", func(b *testing.B) {
		dev := spdk.New(&model, spdk.Config{NumBlocks: 1 << 20})
		store, _, err := spdk.NewStore(dev)
		if err != nil {
			b.Fatal(err)
		}
		f, _, err := store.Open("bench")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kernel-fs", func(b *testing.B) {
		k := kernel.New(&model, nil, netstack.IPv4Addr{})
		k.AttachDisk(spdk.New(&model, spdk.Config{NumBlocks: 1 << 20}))
		fd, _, err := k.OpenFile("bench")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.WriteFile(fd, rec); err != nil {
				b.Fatal(err)
			}
			if _, err := k.Fsync(fd); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE13_RecvBuffers measures a two-sided RDMA send/recv round
// with libOS-style re-posting (§2).
func BenchmarkE13_RecvBuffers(b *testing.B) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 1)
	snd := rdma.New(&model, sw, fabric.MAC{2, 0, 0, 0, 0, 1})
	rcv := rdma.New(&model, sw, fabric.MAC{2, 0, 0, 0, 0, 2})
	rpd := rcv.AllocPD()
	rscq, rrcq := rcv.CreateCQ(), rcv.CreateCQ()
	l, err := rcv.Listen(9, rpd, rscq, rrcq)
	if err != nil {
		b.Fatal(err)
	}
	spd := snd.AllocPD()
	sscq, srcq := snd.CreateCQ(), snd.CreateCQ()
	qp := snd.Connect(rcv.MAC(), 9, spd, sscq, srcq)
	for snd.Poll()+rcv.Poll() > 0 {
	}
	rqp, ok := l.Accept()
	if !ok {
		b.Fatal("no accepted QP")
	}
	recvMR := rpd.RegisterMemory(make([]byte, 4096))
	sendMR := spd.RegisterMemory(make([]byte, 1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rqp.PostRecv(uint64(i), rdma.Sge{MR: recvMR, Off: 0, Len: 4096}); err != nil {
			b.Fatal(err)
		}
		if err := qp.PostSend(uint64(i), rdma.Sge{MR: sendMR, Off: 0, Len: 1024}); err != nil {
			b.Fatal(err)
		}
		for snd.Poll()+rcv.Poll() > 0 {
		}
		if wcs := rrcq.Poll(0); len(wcs) != 1 || wcs[0].Status != rdma.StatusSuccess {
			b.Fatalf("wcs=%v", wcs)
		}
		sscq.Poll(0)
	}
}

// BenchmarkMemQueue measures the raw queue primitive (baseline for all
// of the above).
func BenchmarkMemQueue(b *testing.B) {
	q := queue.NewMemQueue(1024)
	s := sga.New(make([]byte, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(s, 0, func(queue.Completion) {})
		q.Pop(func(queue.Completion) {})
	}
}

// BenchmarkCompleter measures token allocation + completion + wait.
func BenchmarkCompleter(b *testing.B) {
	c := queue.NewCompleter()
	for i := 0; i < b.N; i++ {
		qt, done := c.NewToken()
		done(queue.Completion{Kind: queue.OpPop})
		if _, ok, _ := c.TryWait(qt); !ok {
			b.Fatal("lost completion")
		}
	}
}

// BenchmarkSGAMarshal measures wire encoding alone.
func BenchmarkSGAMarshal(b *testing.B) {
	s := sga.New(make([]byte, 4096))
	b.SetBytes(int64(s.MarshalledSize()))
	buf := make([]byte, 0, s.MarshalledSize())
	for i := 0; i < b.N; i++ {
		buf = s.AppendMarshal(buf[:0])
	}
	_ = buf
}

// BenchmarkMultiShard_KV drives the RSS-sharded KV server at 1/2/4/8
// shards with an aligned client and reports, next to the real execution
// cost per GET, the *virtual* scaling metric the sharded runtime is
// judged by: vkops/s = served ops / the busiest shard's modeled
// single-core busy time (see kv.ShardedServer.BusyVirt). Real wall
// clock cannot show multi-core scaling inside a simulation pinned to
// whatever cores the host has; the virtual curve is deterministic.
// `make bench` persists the same curve via `demi-bench -shards 8` into
// BENCH_multishard.json.
func BenchmarkMultiShard_KV(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			c := NewCluster(1)
			srvNode := c.MustSpawn(Catnip, WithHost(1), WithShards(n)).Sharded
			cliNode := c.MustSpawn(Catnip, WithHost(2))
			server := kv.NewShardedServer(srvNode.Libs, &c.Model, srvNode.Mesh())
			const port = 6379
			if err := server.Listen(port); err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			wg := server.Run(stop)
			stopCli := cliNode.Background()
			defer func() { close(stop); wg.Wait(); stopCli() }()
			client, err := kv.NewShardedClient(cliNode.LibOS, n, func(i int) (QD, error) {
				return c.Router().DialShard(cliNode, srvNode, port, i, uint16(4096*i+31))
			})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()

			const nkeys = 64
			keys := make([]string, nkeys)
			val := make([]byte, 32)
			for i := range keys {
				keys[i] = fmt.Sprintf("bench-%03d", i)
				if _, err := client.Set(keys[i], val); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, found, err := client.Get(keys[i%nkeys]); err != nil || !found {
					b.Fatalf("get: found=%v err=%v", found, err)
				}
			}
			b.StopTimer()
			ops := server.TotalOps()
			var maxBusy, forwards int64
			for i := 0; i < n; i++ {
				if busy := server.BusyVirt(i); busy > maxBusy {
					maxBusy = busy
				}
				forwards += server.StatsOf(i).ForwardedOut
			}
			if forwards != 0 {
				b.Fatalf("aligned benchmark crossed the mesh %d times", forwards)
			}
			if maxBusy > 0 {
				b.ReportMetric(float64(ops)/(float64(maxBusy)/1e9)/1e3, "vkops/s")
			}
		})
	}
}

var benchSink sync.Once // silences unused-import pressure in refactors
