// eventloop: the §4.4 vision, built — "we plan to implement a
// libevent-based Demikernel OS, which would enable applications, like
// memcached, to achieve the benefits of kernel-bypass transparently."
//
// This example is a memcached-shaped server written entirely with
// callbacks against the event loop in internal/sched: the accept handler
// arms a per-connection request loop; each request handler gets the whole
// request in its completion (no extra read call) and pushes the response.
// Exactly one callback runs per completion — there is no thundering herd
// to tame.
package main

import (
	"fmt"
	"log"
	"strings"

	demi "demikernel"
	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sched"
)

func main() {
	cluster := demi.NewCluster(11)
	srvNode := cluster.MustSpawn(demi.Catnip, demi.WithHost(1))
	cliNode := cluster.MustSpawn(demi.Catnip, demi.WithHost(2))
	defer cliNode.Background()()

	// --- server: pure callbacks ---
	cache := map[string]string{}
	lqd, err := srvNode.Socket()
	if err != nil {
		log.Fatal(err)
	}
	srvNode.Bind(lqd, demi.Addr{Port: 11211})
	srvNode.Listen(lqd)

	loop := sched.New(srvNode.LibOS)
	loop.OnAccept(lqd, func(conn core.QD) {
		fmt.Println("server: connection accepted")
		loop.OnPop(conn, true, func(qd core.QD, comp queue.Completion) {
			if comp.Err != nil {
				return
			}
			// Protocol: "set k v" | "get k"
			parts := strings.SplitN(string(comp.SGA.Bytes()), " ", 3)
			var reply string
			switch {
			case parts[0] == "set" && len(parts) == 3:
				cache[parts[1]] = parts[2]
				reply = "STORED"
			case parts[0] == "get" && len(parts) == 2:
				if v, ok := cache[parts[1]]; ok {
					reply = "VALUE " + v
				} else {
					reply = "END"
				}
			default:
				reply = "ERROR"
			}
			loop.Push(qd, demi.NewSGA([]byte(reply)), 0, nil)
		})
	})
	stop := make(chan struct{})
	defer close(stop)
	go loop.Run(stop)

	// --- client ---
	cqd, _ := cliNode.Socket()
	if err := cliNode.Connect(cqd, cluster.AddrOf(srvNode, 11211)); err != nil {
		log.Fatal(err)
	}
	request := func(cmd string) string {
		if _, err := cliNode.BlockingPush(cqd, demi.NewSGA([]byte(cmd))); err != nil {
			log.Fatal(err)
		}
		comp, err := cliNode.BlockingPop(cqd)
		if err != nil {
			log.Fatal(err)
		}
		return string(comp.SGA.Bytes())
	}
	fmt.Println("client: set answer 42     ->", request("set answer 42"))
	fmt.Println("client: get answer        ->", request("get answer"))
	fmt.Println("client: get missing       ->", request("get missing"))
	fmt.Printf("event loop dispatched %d callbacks, all useful\n", loop.Dispatched())
}
