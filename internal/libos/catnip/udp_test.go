package catnip_test

import (
	"errors"
	"testing"

	demi "demikernel"
	"demikernel/internal/core"
)

func TestUDPDatagramQueues(t *testing.T) {
	c, srv, cli, cleanup := pair(t, 91)
	defer cleanup()

	sqd, err := srv.SocketUDP()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind(sqd, demi.Addr{Port: 5353}); err != nil {
		t.Fatal(err)
	}
	// The server "connects back" once it learns the peer; start with
	// the client side.
	cqd, err := cli.SocketUDP()
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Bind(cqd, demi.Addr{Port: 5454}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect(cqd, c.AddrOf(srv, 5353)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Connect(sqd, c.AddrOf(cli, 5454)); err != nil {
		t.Fatal(err)
	}

	// Datagrams are atomic units: segmentation survives.
	msg := demi.NewSGA([]byte("dns"), []byte("query"))
	if _, err := cli.BlockingPush(cqd, msg); err != nil {
		t.Fatal(err)
	}
	comp, err := srv.BlockingPop(sqd)
	if err != nil {
		t.Fatal(err)
	}
	if comp.SGA.NumSegments() != 2 || !comp.SGA.Equal(msg) {
		t.Fatalf("datagram mangled: %v", comp.SGA)
	}
	if comp.Cost == 0 {
		t.Fatal("no virtual cost on datagram path")
	}

	// Reply direction.
	if _, err := srv.BlockingPush(sqd, demi.NewSGA([]byte("answer"))); err != nil {
		t.Fatal(err)
	}
	back, err := cli.BlockingPop(cqd)
	if err != nil {
		t.Fatal(err)
	}
	if string(back.SGA.Bytes()) != "answer" {
		t.Fatalf("reply %q", back.SGA.Bytes())
	}
}

func TestUDPNoListenAccept(t *testing.T) {
	_, srv, _, cleanup := pair(t, 92)
	defer cleanup()
	qd, err := srv.SocketUDP()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(qd); !errors.Is(err, core.ErrNotListening) {
		t.Fatalf("Listen err = %v", err)
	}
	if _, _, err := srv.TryAccept(qd); !errors.Is(err, core.ErrNotListening) {
		t.Fatalf("Accept err = %v", err)
	}
}

func TestUDPPushWithoutPeerFails(t *testing.T) {
	_, srv, _, cleanup := pair(t, 93)
	defer cleanup()
	qd, _ := srv.SocketUDP()
	srv.Bind(qd, demi.Addr{Port: 1000})
	comp, err := srv.BlockingPush(qd, demi.NewSGA([]byte("lost")))
	if err != nil {
		t.Fatal(err)
	}
	if comp.Err == nil {
		t.Fatal("push without a connected peer should fail")
	}
}

func TestUDPOnOtherLibOSesUnsupported(t *testing.T) {
	c := demi.NewCluster(94)
	for _, n := range []*demi.Node{
		c.MustSpawn(demi.Catnap, demi.WithHost(1)),
		c.MustSpawn(demi.Catmint, demi.WithHost(2)),
	} {
		if _, err := n.SocketUDP(); !errors.Is(err, core.ErrNotSupported) {
			t.Fatalf("%s: err = %v", n.Name(), err)
		}
	}
}
