// Live libOS switching: the syscall layer's half of SwitchKind.
//
// A switch moves every socket queue descriptor from one transport to
// another without the application noticing: QDs keep their numbers,
// established TCP connections keep their protocol objects (both
// transports run the same netstack code over the same device — the
// paper's deliberate symmetry between Figure 1's two columns), and the
// per-endpoint soft state (framing buffer, undelivered completions,
// parked poppers, staged TX frames) travels in a PortState. The
// LibrettOS idea in Demikernel terms: the OS *configuration* changes
// at run time while the application's queues stay up.
package core

import (
	"demikernel/internal/netstack"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
)

// PortTx is one staged TX frame carried across a transport switch:
// already-framed bytes plus the accumulated virtual cost and the push
// completion to run once the adopting transport sends it. Sent marks
// frames the old transport already handed to the stack and is carried
// for completeness (its Done has then already run).
type PortTx struct {
	Data []byte
	Cost simclock.Lat
	Done queue.DoneFunc
	Sent bool
}

// PortState is the transportable state of one socket endpoint: the
// protocol objects (owned by the shared netstack, so migration is a
// pointer handoff) and the libOS-side soft state around them.
type PortState struct {
	Bound     Addr
	LocalPort uint16 // client-side fixed source port (0 = ephemeral)
	Listening bool

	Conn     *netstack.TCPConn
	Listener *netstack.TCPListener

	Framer  sga.Framer         // reassembly buffer, moved by value; adopter re-sets the clone fn
	Ready   []queue.Completion // decoded-but-undelivered pops
	Waiters []queue.DoneFunc   // parked poppers, FIFO order
	Tx      []PortTx           // staged, unsent TX frames
}

// PortExporter is implemented by transports whose endpoints can be
// exported for a live switch. Export detaches ep's state (marking the
// old endpoint closed so stale concurrent operations fail with
// queue.ErrClosed, a retriable error) and returns it; ok is false for
// endpoints the transport cannot export (e.g. UDP).
type PortExporter interface {
	Export(ep Endpoint) (PortState, bool)
}

// PortAdopter is implemented by transports that can rebuild a live
// endpoint from an exported PortState.
type PortAdopter interface {
	Adopt(st PortState) (Endpoint, error)
}

// SwapTransport atomically replaces the libOS's transport and migrates
// every socket descriptor through migrate, which maps an old endpoint
// to its replacement on the new transport (nil = leave the descriptor
// in place, e.g. for non-socket queues it is never called on). QD
// numbers are preserved; each migrated descriptor gets a *fresh* qdesc
// so concurrent operations holding the old one keep touching the old
// (now closed) endpoint instead of racing a mutation. Returns the
// number of descriptors migrated.
func (l *LibOS) SwapTransport(newT Transport, migrate func(Endpoint) Endpoint) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tp.Store(&transportCell{t: newT})
	l.completer.Spans().SetName(newT.Name())
	n := 0
	for qd, d := range l.qds {
		if d.kind != qdEndpoint {
			continue
		}
		if nep := migrate(d.ep); nep != nil {
			l.qds[qd] = &qdesc{kind: qdEndpoint, ep: nep}
			n++
		}
	}
	l.qdGen++ // invalidate the Poll snapshot
	return n
}
