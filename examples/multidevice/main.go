// multidevice: the paper's portability claim (§4.1) — one application
// function, written once against the Demikernel API, runs unmodified
// over the kernel libOS, the DPDK libOS, and the RDMA libOS. Only the
// node constructor changes; the application code cannot tell the
// difference (except in latency).
package main

import (
	"fmt"
	"log"

	demi "demikernel"
	"demikernel/internal/apps/echo"
)

// runWorkload is the "application": it never mentions a device.
func runWorkload(cluster *demi.Cluster, srvNode, cliNode *demi.Node) (demi.Lat, error) {
	server := echo.NewServer(srvNode.LibOS)
	server.AppCost = cluster.Model.AppRequestNS
	if err := server.Listen(7); err != nil {
		return 0, err
	}
	defer srvNode.Background()()
	defer cliNode.Background()()
	stop := make(chan struct{})
	defer close(stop)
	go server.Run(stop)

	client := echo.NewClient(cliNode.LibOS)
	if err := client.Connect(cluster.AddrOf(srvNode, 7)); err != nil {
		return 0, err
	}
	var total demi.Lat
	const n = 10
	for i := 0; i < n; i++ {
		cost, err := client.RTT([]byte("portable payload"), 0)
		if err != nil {
			return 0, err
		}
		total += cost
	}
	return total / n, nil
}

func main() {
	type flavor struct {
		name string
		make func(c *demi.Cluster, host byte) *demi.Node
	}
	flavors := []flavor{
		{"catnap (legacy kernel)", func(c *demi.Cluster, h byte) *demi.Node {
			return c.MustSpawn(demi.Catnap, demi.WithHost(h))
		}},
		{"catnip (DPDK-class)", func(c *demi.Cluster, h byte) *demi.Node {
			return c.MustSpawn(demi.Catnip, demi.WithHost(h))
		}},
		{"catmint (RDMA-class)", func(c *demi.Cluster, h byte) *demi.Node {
			return c.MustSpawn(demi.Catmint, demi.WithHost(h))
		}},
	}
	fmt.Println("one application, three library OSes:")
	for _, f := range flavors {
		cluster := demi.NewCluster(9)
		srv := f.make(cluster, 1)
		cli := f.make(cluster, 2)
		mean, err := runWorkload(cluster, srv, cli)
		if err != nil {
			log.Fatalf("%s: %v", f.name, err)
		}
		fmt.Printf("  %-24s mean RTT %v\n", f.name, mean)
	}
}
