package kernel

import (
	"io"

	"demikernel/internal/simclock"
)

// pipe is a classic UNIX pipe: a bounded in-kernel byte stream. The point
// the paper makes in §3.2 is that this abstraction forces applications to
// "operate on streams of data" — a reader can observe an arbitrary prefix
// of a message and must re-assemble and re-inspect it, unlike a
// Demikernel queue whose pop yields a whole element or nothing.
type pipe struct {
	buf      []byte
	capacity int
	wrClosed bool
	// rxCost carries the accumulated virtual cost of the newest bytes.
	rxCost simclock.Lat
}

// pipeCapacity matches the traditional 64 KiB pipe buffer.
const pipeCapacity = 64 * 1024

// Pipe creates a pipe and returns its read and write descriptors.
func (k *Kernel) Pipe() (r FD, w FD, cost simclock.Lat) {
	cost = k.syscall()
	p := &pipe{capacity: pipeCapacity}
	r = k.newFD(&fdEntry{kind: fdPipeRead, pipe: p})
	w = k.newFD(&fdEntry{kind: fdPipeWrite, pipe: p})
	return r, w, cost
}

func (p *pipe) closeWrite() { p.wrClosed = true }

// WritePipe writes bytes into the pipe (syscall + user→kernel copy).
// It returns the number of bytes accepted, which may be short when the
// pipe is full.
func (k *Kernel) WritePipe(fd FD, b []byte, cost simclock.Lat) (int, simclock.Lat, error) {
	cost += k.syscall()
	e, err := k.lookup(fd)
	if err != nil {
		return 0, cost, err
	}
	if e.kind != fdPipeWrite {
		return 0, cost, ErrBadFD
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	p := e.pipe
	space := p.capacity - len(p.buf)
	n := min(len(b), space)
	k.ctr.AddCopy(n)
	cost += k.model.CopyCost(n)
	p.buf = append(p.buf, b[:n]...)
	p.rxCost = cost
	return n, cost, nil
}

// ReadPipe reads up to max bytes. Stream semantics: whatever bytes happen
// to be in the pipe are returned, with no regard for message boundaries;
// an empty pipe returns ErrWouldBlock, and a drained pipe whose writer
// closed returns io.EOF.
func (k *Kernel) ReadPipe(fd FD, max int) ([]byte, simclock.Lat, error) {
	cost := k.syscall()
	e, err := k.lookup(fd)
	if err != nil {
		return nil, cost, err
	}
	if e.kind != fdPipeRead {
		return nil, cost, ErrBadFD
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	p := e.pipe
	if len(p.buf) == 0 {
		if p.wrClosed {
			return nil, cost, io.EOF
		}
		return nil, cost, ErrWouldBlock
	}
	n := len(p.buf)
	if max > 0 && n > max {
		n = max
	}
	out := make([]byte, n)
	copy(out, p.buf)
	p.buf = p.buf[:copy(p.buf, p.buf[n:])]
	k.ctr.AddCopy(n)
	cost += k.model.CopyCost(n) + p.rxCost
	return out, cost, nil
}

// PipeBuffered reports how many bytes are queued (used by readiness).
func (k *Kernel) PipeBuffered(fd FD) int {
	e, err := k.lookup(fd)
	if err != nil || e.pipe == nil {
		return 0
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(e.pipe.buf)
}
