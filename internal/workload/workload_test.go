package workload

import (
	"testing"
	"testing/quick"
)

func TestUniformCoversKeyspace(t *testing.T) {
	u := NewUniformKeys(16, 1)
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		k := u.NextKey()
		if k < 0 || k >= 16 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 16 {
		t.Fatalf("uniform covered %d of 16 keys", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipfKeys(1000, 1.2, 2)
	counts := make([]int, 1000)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.NextKey()]++
	}
	// Hot-key property: the single most popular key takes a clearly
	// disproportionate share versus uniform (which would be 0.1%).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 0.05 {
		t.Fatalf("zipf top key share %.4f, want >= 0.05", float64(max)/n)
	}
}

func TestBimodalShares(t *testing.T) {
	b := NewBimodalSize(64, 8192, 0.9, 3)
	small := 0
	const n = 10000
	for i := 0; i < n; i++ {
		switch b.NextSize() {
		case 64:
			small++
		case 8192:
		default:
			t.Fatal("unexpected size")
		}
	}
	frac := float64(small) / n
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("small fraction %.3f, want ~0.9", frac)
	}
}

func TestGeneratorReadRatio(t *testing.T) {
	g := NewGenerator(NewUniformKeys(10, 4), FixedSize(100), 0.7, 5)
	const n = 10000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.IsRead && op.ValueLen != 0 {
			t.Fatal("read carries a value size")
		}
		if !op.IsRead && op.ValueLen != 100 {
			t.Fatalf("write value len %d", op.ValueLen)
		}
	}
	reads, writes := g.Counts()
	if reads+writes != n {
		t.Fatal("counts do not add up")
	}
	ratio := float64(reads) / n
	if ratio < 0.67 || ratio > 0.73 {
		t.Fatalf("read ratio %.3f, want ~0.7", ratio)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		g1 := YCSBStyleB(100, seed)
		g2 := YCSBStyleB(100, seed)
		for i := 0; i < 50; i++ {
			if g1.Next() != g2.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPresets(t *testing.T) {
	y := YCSBStyleB(50, 1)
	for i := 0; i < 100; i++ {
		op := y.Next()
		if op.Key == "" {
			t.Fatal("empty key")
		}
	}
	u := UniformSmall(50, 1)
	if op := u.Next(); op.Key == "" {
		t.Fatal("empty key")
	}
}
