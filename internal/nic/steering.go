// Queue groups: the device-plane half of multi-tenant NIC sharing.
//
// A real SR-IOV / SIOV NIC partitions its queues among untrusting
// tenants and enforces, in hardware, that (a) a tenant only receives
// frames addressed to resources it owns and (b) a tenant can only
// program flow-steering rules over its own addresses. This file gives
// the simulated device the same contract: a QueueGroup claims a
// contiguous range of receive queues, owns exactly one MAC (+ one IPv4
// address for ARP-broadcast resolution), and may install steering
// rules only inside its SteeringBounds — violations fail at install
// time with ErrSteeringDenied, so the per-frame data path never
// re-validates anything (§3 of the paper: protection is the role the
// OS/control plane keeps; the data path stays kernel-bypass fast).
//
// Classification state is copy-on-write: every mutation (filter or
// group change) compiles an immutable classTable published through an
// atomic pointer, so the RX hot path classifies with zero locks.
package nic

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// ErrSteeringDenied is returned when a steering rule (or a queue
// group's identity) reaches outside the tenant's bound resources.
var ErrSteeringDenied = errors.New("nic: steering denied (outside tenant's bound resources)")

// ErrNoQueues is returned when a queue-group claim exceeds the
// device's remaining unclaimed receive queues.
var ErrNoQueues = errors.New("nic: not enough unclaimed receive queues")

// classTable is the immutable classification snapshot the RX path
// reads. It is rebuilt under Device.mu on every mutation and published
// via Device.class; the data path loads it once per wire drain.
type classTable struct {
	filters   []HWFilter
	byMAC     map[fabric.MAC]*QueueGroup
	byIP      map[[4]byte]*QueueGroup
	owners    []*QueueGroup // queue index -> owning group (nil = unclaimed)
	hasGroups bool
	rssQueues int             // RSS indirection width (0 = all queues)
	pins      map[FlowKey]int // exact-match flow table, consulted before RSS
}

// queueOwner returns the group owning absolute queue qi, or nil.
func (t *classTable) queueOwner(qi int) *QueueGroup {
	if qi < 0 || qi >= len(t.owners) {
		return nil
	}
	return t.owners[qi]
}

// ownerOf resolves the frame's owning group: unicast by destination
// MAC; ARP broadcasts by the ARP target IP (so a tenant still sees the
// ARP requests that resolve *its* address, and only those). Array-keyed
// map lookups — no per-frame allocation.
func (t *classTable) ownerOf(data []byte) *QueueGroup {
	if len(data) < 14 {
		return nil
	}
	var dst fabric.MAC
	copy(dst[:], data[0:6])
	if g := t.byMAC[dst]; g != nil {
		return g
	}
	if dst == fabric.Broadcast && len(data) >= 42 && data[12] == 0x08 && data[13] == 0x06 {
		var ip [4]byte
		copy(ip[:], data[38:42]) // ARP target protocol address
		return t.byIP[ip]
	}
	return nil
}

// publishLocked compiles the master classification state into a fresh
// immutable snapshot and publishes it. Caller holds d.mu.
func (d *Device) publishLocked() {
	t := &classTable{
		filters:   append([]HWFilter(nil), d.filters...),
		hasGroups: len(d.groups) > 0,
		rssQueues: d.rssQueues,
		pins:      d.pins,
	}
	if t.hasGroups {
		t.byMAC = make(map[fabric.MAC]*QueueGroup, len(d.groups))
		t.byIP = make(map[[4]byte]*QueueGroup, len(d.groups))
		t.owners = make([]*QueueGroup, len(d.rx))
		for _, g := range d.groups {
			t.byMAC[g.mac] = g
			if g.ip != ([4]byte{}) {
				t.byIP[g.ip] = g
			}
			for q := g.base; q < g.base+g.n; q++ {
				t.owners[q] = g
			}
		}
	}
	d.class.Store(t)
}

// SteeringBounds is the install-time contract for a group's steering
// rules: which destination IPs and ports rules may bind. Empty IPs
// default to exactly the group's own address; PortLo=PortHi=0 means
// every port. (MACs is carried for symmetry with tenant.Policy; RX
// ownership is already pinned to the group's single MAC.)
type SteeringBounds struct {
	MACs   []fabric.MAC
	IPs    [][4]byte
	PortLo uint16
	PortHi uint16
}

// GroupConfig configures a queue group at claim time.
type GroupConfig struct {
	MAC    fabric.MAC
	IP     [4]byte
	Bounds SteeringBounds

	// TX scheduling: WDRR weight (0 = 1) and optional token-bucket rate
	// limit in bytes/second with TxBurstBytes depth (0 = one quantum).
	TxWeight     int
	TxRateBps    int64
	TxBurstBytes int64
	// TxQueueDepth bounds the group's TX staging ring (0 = 512); a full
	// ring drops (and releases) the frame, counted as a throttle drop.
	TxQueueDepth int
	// Clock supplies time for token-bucket refill (default time.Now).
	Clock func() time.Time
}

// SteeringRule is one tenant-installed flow-steering rule: IPv4 frames
// matching (DstIP, Proto, DstPortLo..DstPortHi) go to the
// group-relative Queue. Zero DstIP means the group's own IP; Proto 0
// matches any transport; DstPortLo=DstPortHi=0 matches any port.
type SteeringRule struct {
	DstIP     [4]byte
	Proto     uint8
	DstPortLo uint16
	DstPortHi uint16
	Queue     int // group-relative receive queue
}

// steerRule is a compiled rule: bounds-checked, queue made absolute.
type steerRule struct {
	dstIP  [4]byte
	proto  uint8
	portLo uint16
	portHi uint16
	queue  int // absolute device queue
}

// match inspects a raw frame: IPv4 without options, destination
// address/proto/port against the rule. Offsets: etherType data[12:14],
// IHL data[14], proto data[23], dst IP data[30:34], dst port data[36:38].
func (r *steerRule) match(data []byte) bool {
	if len(data) < 38 || data[12] != 0x08 || data[13] != 0x00 || data[14] != 0x45 {
		return false
	}
	if data[30] != r.dstIP[0] || data[31] != r.dstIP[1] || data[32] != r.dstIP[2] || data[33] != r.dstIP[3] {
		return false
	}
	if r.proto != 0 && data[23] != r.proto {
		return false
	}
	if r.portLo == 0 && r.portHi == 0 {
		return true
	}
	port := uint16(data[36])<<8 | uint16(data[37])
	return port >= r.portLo && port <= r.portHi
}

// QueueGroup is a tenant's slice of the device: a contiguous range of
// receive queues [base, base+n), one owned MAC/IP, bounded steering
// rules, and a TX queue in the device's WDRR scheduler. It implements
// the same poll-mode surface as Device (MAC / Tx / TxFrame /
// AppendRxBurst / RegisterRegion), so a netstack binds to a group
// exactly as it binds to a whole NIC.
type QueueGroup struct {
	dev    *Device
	name   string
	base   int
	n      int
	mac    fabric.MAC
	ip     [4]byte
	bounds SteeringBounds

	rules atomic.Pointer[[]steerRule]

	tq *txQueue

	rxFrames       atomic.Int64
	rxDropped      atomic.Int64
	rxFlushed      atomic.Int64
	steeringDenied atomic.Int64
}

// NewQueueGroup claims nQueues contiguous receive queues for a tenant.
// Claims are first-come contiguous — the hardware analogue of SR-IOV
// VF queue assignment. It fails with ErrNoQueues when the device has
// too few unclaimed queues, and with ErrSteeringDenied when the
// claimed MAC/IP is already owned by another group or falls outside
// cfg.Bounds.
func (d *Device) NewQueueGroup(name string, nQueues int, cfg GroupConfig) (*QueueGroup, error) {
	if nQueues <= 0 {
		nQueues = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.nextQueue+nQueues > len(d.rx) {
		return nil, fmt.Errorf("%w: group %q wants %d, %d unclaimed", ErrNoQueues, name, nQueues, len(d.rx)-d.nextQueue)
	}
	for _, g := range d.groups {
		if g.mac == cfg.MAC {
			return nil, fmt.Errorf("%w: MAC %v already owned by group %q", ErrSteeringDenied, cfg.MAC, g.name)
		}
		if cfg.IP != ([4]byte{}) && g.ip == cfg.IP {
			return nil, fmt.Errorf("%w: IP %v already owned by group %q", ErrSteeringDenied, cfg.IP, g.name)
		}
	}
	if len(cfg.Bounds.MACs) > 0 && !macIn(cfg.Bounds.MACs, cfg.MAC) {
		return nil, fmt.Errorf("%w: group %q MAC %v outside its bounds", ErrSteeringDenied, name, cfg.MAC)
	}
	if len(cfg.Bounds.IPs) > 0 && cfg.IP != ([4]byte{}) && !ipIn(cfg.Bounds.IPs, cfg.IP) {
		return nil, fmt.Errorf("%w: group %q IP %v outside its bounds", ErrSteeringDenied, name, cfg.IP)
	}
	g := &QueueGroup{
		dev:    d,
		name:   name,
		base:   d.nextQueue,
		n:      nQueues,
		mac:    cfg.MAC,
		ip:     cfg.IP,
		bounds: cfg.Bounds,
	}
	g.tq = d.sched.newQueue(name, cfg.TxWeight, cfg.TxRateBps, cfg.TxBurstBytes, cfg.TxQueueDepth, cfg.Clock)
	d.nextQueue += nQueues
	d.groups = append(d.groups, g)
	d.publishLocked()
	return g, nil
}

func macIn(set []fabric.MAC, m fabric.MAC) bool {
	for _, x := range set {
		if x == m {
			return true
		}
	}
	return false
}

func ipIn(set [][4]byte, ip [4]byte) bool {
	for _, x := range set {
		if x == ip {
			return true
		}
	}
	return false
}

// AddSteering installs a flow-steering rule, validating it against the
// group's bounds at install time: the destination IP must be one the
// tenant owns, the port range must sit inside the tenant's bound range
// (an any-port rule needs unbounded ports), and the target queue must
// be the group's own. A violation counts a steering denial and returns
// a wrapped ErrSteeringDenied; the data path never re-checks.
func (g *QueueGroup) AddSteering(r SteeringRule) error {
	if r.Queue < 0 || r.Queue >= g.n {
		g.steeringDenied.Add(1)
		return fmt.Errorf("%w: queue %d outside group %q's %d queues", ErrSteeringDenied, r.Queue, g.name, g.n)
	}
	dstIP := r.DstIP
	if dstIP == ([4]byte{}) {
		dstIP = g.ip
	}
	allowedIPs := g.bounds.IPs
	if len(allowedIPs) == 0 {
		allowedIPs = [][4]byte{g.ip}
	}
	if !ipIn(allowedIPs, dstIP) {
		g.steeringDenied.Add(1)
		return fmt.Errorf("%w: group %q may not steer IP %v", ErrSteeringDenied, g.name, dstIP)
	}
	boundedPorts := g.bounds.PortLo != 0 || g.bounds.PortHi != 0
	if r.DstPortLo == 0 && r.DstPortHi == 0 {
		if boundedPorts {
			g.steeringDenied.Add(1)
			return fmt.Errorf("%w: group %q may not steer all ports (bound to %d..%d)",
				ErrSteeringDenied, g.name, g.bounds.PortLo, g.bounds.PortHi)
		}
	} else {
		if r.DstPortLo > r.DstPortHi {
			g.steeringDenied.Add(1)
			return fmt.Errorf("%w: inverted port range %d..%d", ErrSteeringDenied, r.DstPortLo, r.DstPortHi)
		}
		if boundedPorts && (r.DstPortLo < g.bounds.PortLo || r.DstPortHi > g.bounds.PortHi) {
			g.steeringDenied.Add(1)
			return fmt.Errorf("%w: group %q ports %d..%d outside bound %d..%d",
				ErrSteeringDenied, g.name, r.DstPortLo, r.DstPortHi, g.bounds.PortLo, g.bounds.PortHi)
		}
	}
	compiled := steerRule{
		dstIP:  dstIP,
		proto:  r.Proto,
		portLo: r.DstPortLo,
		portHi: r.DstPortHi,
		queue:  g.base + r.Queue,
	}
	// Copy-on-write append under the device's mutation lock.
	g.dev.mu.Lock()
	old := g.rules.Load()
	var next []steerRule
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, compiled)
	g.rules.Store(&next)
	g.dev.mu.Unlock()
	return nil
}

// steer places an owned frame on one of the group's queues: ARP frames
// to the group's base queue (the shard-0 convention the sharded libOS
// relies on), then tenant steering rules (first match wins, each
// evaluation charged the offloaded-filter cost), then RSS *within the
// group's range* — so a group of n queues spreads flows exactly as a
// dedicated n-queue device would, and shard-aligned source-port
// selection (RSSQueueFlow) keeps working group-relative.
func (g *QueueGroup) steer(d *Device, f *fabric.Frame) int {
	data := f.Data
	if len(data) >= 14 && data[12] == 0x08 && data[13] == 0x06 {
		return g.base
	}
	if rules := g.rules.Load(); rules != nil {
		for i := range *rules {
			r := &(*rules)[i]
			d.filterEvals.Add(1)
			f.Cost += d.model.OffloadedFilterCost()
			if r.match(data) {
				return r.queue
			}
		}
	}
	if g.n == 1 {
		return g.base
	}
	return g.base + int(rssHash(data)%uint32(g.n))
}

// --- the Device-shaped surface a netstack binds to ---

// MAC returns the group's owned hardware address.
func (g *QueueGroup) MAC() fabric.MAC { return g.mac }

// NumRxQueues returns the group's receive-queue count.
func (g *QueueGroup) NumRxQueues() int { return g.n }

// BaseQueue returns the group's first absolute device queue (exposed
// for observability; tenants address queues group-relative).
func (g *QueueGroup) BaseQueue() int { return g.base }

// Device returns the underlying shared NIC.
func (g *QueueGroup) Device() *Device { return g.dev }

// RegisterRegion implements membuf.RegistrationSink by delegating to
// the shared device (one IOMMU, per-tenant accounting lives in the
// membuf manager's own capacity model).
func (g *QueueGroup) RegisterRegion(id uint64, mem []byte) { g.dev.RegisterRegion(id, mem) }

// Tx transmits one raw frame through the group's scheduled TX queue.
func (g *QueueGroup) Tx(data []byte, cost simclock.Lat) {
	g.TxFrame(fabric.Frame{Data: data, Cost: cost})
}

// TxFrame enqueues one frame on the group's TX queue and pumps the
// scheduler: tenants share the wire by weighted deficit round-robin,
// optionally token-bucket rate-limited, instead of racing unbounded
// into Device.TxFrame. A full TX ring drops (and releases) the frame —
// backpressure lands on the flooding tenant, not the shared link.
func (g *QueueGroup) TxFrame(f fabric.Frame) {
	g.dev.sched.enqueue(g.tq, f)
	g.dev.sched.pump(g.dev)
}

// AppendRxBurst polls the group's relQueue-th queue (group-relative).
// It pumps the TX scheduler first so rate-limited frames queued before
// this poll get a chance to drain as time advances.
func (g *QueueGroup) AppendRxBurst(dst []fabric.Frame, relQueue, max int) []fabric.Frame {
	g.dev.sched.pump(g.dev)
	return g.dev.AppendRxBurst(dst, g.base+relQueue, max)
}

// RxBurst is AppendRxBurst with fresh storage.
func (g *QueueGroup) RxBurst(relQueue, max int) []fabric.Frame {
	return g.AppendRxBurst(nil, relQueue, max)
}

// FlushRings is the group-scoped crash reclaim: it drains the wire
// (classifying frames to their owners), then flushes only this group's
// queues and its pending TX queue, releasing every pooled frame. Other
// tenants' rings are untouched — one tenant's crash must not discard a
// neighbour's frames.
func (g *QueueGroup) FlushRings() int {
	d := g.dev
	d.drainMu.Lock()
	d.drainWireLocked()
	d.drainMu.Unlock()
	n := 0
	for q := g.base; q < g.base+g.n; q++ {
		n += d.flushQueue(q)
	}
	if n > 0 {
		g.rxFlushed.Add(int64(n))
		d.rxFlushed.Add(int64(n))
		telemetry.TraceInstant("nic", "rx-flush", int32(d.port.ID()), int64(n))
	}
	n += d.sched.flushQueue(g.tq)
	return n
}

// GroupStats is a snapshot of one queue group's counters.
type GroupStats struct {
	RxFrames       int64
	RxDropped      int64
	RxFlushed      int64
	TxFrames       int64
	TxBytes        int64
	TxQueued       int64 // frames currently staged in the TX ring
	TxFlushed      int64 // TX frames discarded by crash flush
	ThrottleDrops  int64 // frames dropped at a full TX ring
	SteeringDenied int64 // rule installs refused at the bounds check
}

// Stats returns a snapshot of the group's counters.
func (g *QueueGroup) Stats() GroupStats {
	sent, bytes, queued, flushed, drops := g.tq.stats()
	return GroupStats{
		RxFrames:       g.rxFrames.Load(),
		RxDropped:      g.rxDropped.Load(),
		RxFlushed:      g.rxFlushed.Load(),
		TxFrames:       sent,
		TxBytes:        bytes,
		TxQueued:       queued,
		TxFlushed:      flushed,
		ThrottleDrops:  drops,
		SteeringDenied: g.steeringDenied.Load(),
	}
}

// TxCredits reports the group's instantaneous TX scheduling credit: the
// WDRR deficit and the token-bucket balance, both in bytes. demi-stat's
// -tenants view renders these next to the quota ledger.
func (g *QueueGroup) TxCredits() (deficit, tokens int64) {
	return g.tq.deficitNow(), g.tq.tokensNow()
}

// RegisterTelemetry lifts the group's counters into a telemetry
// registry under prefix (e.g. "tenant.a.nic").
func (g *QueueGroup) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	stat := func(read func(GroupStats) int64) func() int64 {
		return func() int64 { return read(g.Stats()) }
	}
	r.RegisterFunc(prefix+".rx_frames", stat(func(s GroupStats) int64 { return s.RxFrames }))
	r.RegisterFunc(prefix+".rx_dropped", stat(func(s GroupStats) int64 { return s.RxDropped }))
	r.RegisterFunc(prefix+".rx_flushed", stat(func(s GroupStats) int64 { return s.RxFlushed }))
	r.RegisterFunc(prefix+".tx_frames", stat(func(s GroupStats) int64 { return s.TxFrames }))
	r.RegisterFunc(prefix+".tx_bytes", stat(func(s GroupStats) int64 { return s.TxBytes }))
	r.RegisterFunc(prefix+".tx_queued", stat(func(s GroupStats) int64 { return s.TxQueued }))
	r.RegisterFunc(prefix+".throttle_drops", stat(func(s GroupStats) int64 { return s.ThrottleDrops }))
	r.RegisterFunc(prefix+".steering_denied", stat(func(s GroupStats) int64 { return s.SteeringDenied }))
	r.RegisterFunc(prefix+".tx_deficit", func() int64 { return g.tq.deficitNow() })
	r.RegisterFunc(prefix+".tx_tokens", func() int64 { return g.tq.tokensNow() })
}
