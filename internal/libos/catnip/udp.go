package catnip

import (
	"sync"

	"demikernel/internal/core"
	"demikernel/internal/netstack"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
)

// SocketUDP implements core.Transport: a datagram queue endpoint over
// the user-level UDP path. A datagram is already an atomic unit, so the
// SGA framing only preserves segmentation inside each datagram — there
// is no stream reassembly at all.
func (t *Transport) SocketUDP() (core.Endpoint, error) {
	ep := &udpEndpoint{t: t}
	t.mu.Lock()
	t.udps = append(t.udps, ep)
	t.epsDirty = true
	t.mu.Unlock()
	return ep, nil
}

// udpEndpoint is one catnip datagram queue. Connect fixes the peer for
// subsequent pushes (connected-UDP semantics); Listen/Accept are not
// datagram concepts and return ErrNotListening.
type udpEndpoint struct {
	t *Transport

	mu       sync.Mutex
	bound    core.Addr
	peer     core.Addr
	havePeer bool
	sock     *netstack.UDPSock
	ready    []queue.Completion
	waiters  []queue.DoneFunc
	closed   bool
	// dead, when non-nil, is the lifecycle-typed error stamped by a
	// stack crash; cleared when Restart rebinds the socket on the fresh
	// stack.
	dead error
}

// Bind implements core.Endpoint.
func (e *udpEndpoint) Bind(addr core.Addr) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bound = addr
	return e.ensureSockLocked(addr.Port)
}

func (e *udpEndpoint) ensureSockLocked(port uint16) error {
	if e.sock != nil {
		return nil
	}
	u, err := e.t.Stack().OpenUDP(port)
	if err != nil {
		return err
	}
	e.sock = u
	return nil
}

// LocalAddr implements core.Endpoint.
func (e *udpEndpoint) LocalAddr() core.Addr {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bound
}

// Listen implements core.Endpoint; datagram sockets do not listen.
func (e *udpEndpoint) Listen() error { return core.ErrNotListening }

// Accept implements core.Endpoint; datagram sockets do not accept.
func (e *udpEndpoint) Accept() (core.Endpoint, bool, error) {
	return nil, false, core.ErrNotListening
}

// Connect implements core.Endpoint: it fixes the default peer.
func (e *udpEndpoint) Connect(addr core.Addr) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.ensureSockLocked(0); err != nil {
		return err
	}
	e.peer = addr
	e.havePeer = true
	return nil
}

// Connected implements core.Endpoint; connected-UDP is ready instantly.
func (e *udpEndpoint) Connected() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.havePeer
}

// Err implements core.Endpoint; datagram sockets are connectionless, so
// the only terminal failure they can carry is a local stack crash.
func (e *udpEndpoint) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dead
}

// Push implements queue.IoQueue: one SGA becomes one datagram.
func (e *udpEndpoint) Push(s sga.SGA, cost simclock.Lat, done queue.DoneFunc) {
	e.mu.Lock()
	if e.dead != nil {
		dead := e.dead
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPush, Err: dead})
		return
	}
	if e.closed || !e.havePeer || e.sock == nil {
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPush, Err: queue.ErrClosed})
		return
	}
	peer := e.peer
	sock := e.sock
	e.mu.Unlock()
	sock.SendTo(peer.IP, peer.Port, s.Marshal(), cost)
	done(queue.Completion{Kind: queue.OpPush, Cost: cost})
}

// Pop implements queue.IoQueue.
func (e *udpEndpoint) Pop(done queue.DoneFunc) {
	e.mu.Lock()
	if e.dead != nil {
		dead := e.dead
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: dead})
		return
	}
	if e.closed {
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
		return
	}
	if len(e.ready) > 0 {
		c := e.popReadyLocked()
		e.mu.Unlock()
		done(c)
		return
	}
	e.waiters = append(e.waiters, done)
	e.mu.Unlock()
	e.Pump()
}

// Pump implements queue.IoQueue: drain received datagrams into whole
// SGAs.
func (e *udpEndpoint) Pump() int {
	e.mu.Lock()
	sock := e.sock
	closed := e.closed
	e.mu.Unlock()
	if sock == nil || closed {
		return 0
	}
	n := 0
	for {
		d, ok := sock.Recv()
		if !ok {
			break
		}
		// Zero-copy pop: the SGA aliases the datagram's pooled payload;
		// the consumer's SGA.Free recycles it (Unmarshal aliases its
		// input, so no byte is copied between wire and application).
		s, _, err := sga.Unmarshal(d.Payload)
		comp := queue.Completion{Kind: queue.OpPop, Cost: d.Cost}
		if err != nil {
			d.Free()
			comp.Err = err
		} else {
			comp.SGA = s.WithFree(d.Free)
		}
		e.mu.Lock()
		e.ready = append(e.ready, comp)
		e.mu.Unlock()
		n++
	}
	e.serveWaiters()
	return n
}

func (e *udpEndpoint) serveWaiters() {
	for {
		e.mu.Lock()
		if len(e.waiters) == 0 || len(e.ready) == 0 {
			e.mu.Unlock()
			return
		}
		w := e.waiters[0]
		n := copy(e.waiters, e.waiters[1:])
		e.waiters[n] = nil // clear so the closure is not retained
		e.waiters = e.waiters[:n]
		c := e.popReadyLocked()
		e.mu.Unlock()
		w(c)
	}
}

// popReadyLocked dequeues the head completion, preserving slice capacity
// so the steady-state pop path does not reallocate (see the endpoint
// version for rationale).
func (e *udpEndpoint) popReadyLocked() queue.Completion {
	c := e.ready[0]
	n := copy(e.ready, e.ready[1:])
	e.ready[n] = queue.Completion{}
	e.ready = e.ready[:n]
	return c
}

// Close implements queue.IoQueue.
func (e *udpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	ws := e.waiters
	e.waiters = nil
	sock := e.sock
	e.mu.Unlock()
	if sock != nil {
		sock.Close()
	}
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
	}
	return nil
}
