package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	demi "demikernel"
	"demikernel/internal/apps/failover"
	"demikernel/internal/apps/kv"
	"demikernel/internal/metrics"
	"demikernel/internal/simclock"
)

// runE19 measures the two elasticity claims behind the Instance API:
//
//  1. Scaling across a reshard boundary — an elastic node that grows
//     2→4 shards LIVE (keys migrating, RSS re-steered, clients
//     connected) must land on the same virtual scaling curve as a node
//     statically spawned at 4 shards, and client p99 during the
//     migration must stay within the 3x fence of steady state.
//  2. Live libOS switching — promoting a node catnap→catnip must keep
//     the established connection, shed the syscall tax from the very
//     next request, and cost at most ~one steady-state RTT of virtual
//     disturbance ("downtime") at the switch.
func runE19(seed int64) (*Result, error) {
	res := &Result{}
	if err := e19Reshard(seed, res); err != nil {
		return nil, err
	}
	if err := e19Switch(seed, res); err != nil {
		return nil, err
	}
	return res, nil
}

// e19Phase is one measured window of the elastic run: virtual
// throughput over the ops executed in that window only.
type e19Phase struct {
	name        string
	shards      int
	ops         int64
	maxBusyMs   float64
	throughputK float64
	forwards    int64
}

func e19Reshard(seed int64, res *Result) error {
	const (
		port     = 6384
		setsGets = 256
	)
	c := demi.NewCluster(seed)
	srvNode := c.MustSpawn(demi.Catnip, demi.WithHost(1),
		demi.WithShards(2), demi.WithShardCapacity(4)).Sharded
	cliNode := c.MustSpawn(demi.Catnip, demi.WithHost(2))

	server := kv.NewShardedServerElastic(srvNode.Libs, &c.Model, srvNode.Mesh(), 2)
	srvNode.SetResharder(server)
	if err := server.Listen(port); err != nil {
		return err
	}
	stop := make(chan struct{})
	wg := server.Run(stop)
	defer func() { close(stop); wg.Wait() }()
	stopCli := cliNode.Background()
	defer stopCli()

	dial := func(i int) (demi.QD, error) {
		return c.Router().DialShard(cliNode, srvNode, port, i, uint16(2048*i+77))
	}
	cli, err := kv.NewShardedClient(cliNode.LibOS, 2, dial)
	if err != nil {
		return err
	}
	defer cli.Close()

	val := []byte("0123456789abcdef0123456789abcdef")
	var lastOps int64
	lastBusy := make([]int64, server.Size())
	phase := func(name string, n int, collect *[]simclock.Lat) (e19Phase, error) {
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("e19-key-%04d", i%setsGets)
			cost, err := cli.Set(key, val)
			if err != nil {
				return e19Phase{}, fmt.Errorf("%s: set %s: %w", name, key, err)
			}
			if collect != nil {
				*collect = append(*collect, cost)
			}
			if _, _, found, err := cli.Get(key); err != nil || !found {
				return e19Phase{}, fmt.Errorf("%s: get %s: found=%v err=%w", name, key, found, err)
			}
		}
		p := e19Phase{name: name, shards: cli.Shards(), ops: server.TotalOps() - lastOps}
		var maxBusy int64
		for i := 0; i < server.Size(); i++ {
			b := server.BusyVirt(i) - lastBusy[i]
			if b > maxBusy {
				maxBusy = b
			}
			lastBusy[i] += b
			p.forwards += server.StatsOf(i).ForwardedOut
		}
		lastOps += p.ops
		p.maxBusyMs = float64(maxBusy) / 1e6
		if maxBusy > 0 {
			p.throughputK = float64(p.ops) / (float64(maxBusy) / 1e9) / 1e3
		}
		return p, nil
	}

	var steadyLats []simclock.Lat
	p2, err := phase("steady @2", setsGets, &steadyLats)
	if err != nil {
		return err
	}

	// Grow 2→4 live; keep the client on its stale 2-wide layout while
	// the migration runs, sampling per-op virtual cost the whole time.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srvNode.Reshard(ctx, 4) }()
	var duringLats []simclock.Lat
	for i := 0; (!server.Stable() || len(duringLats) < 64) && len(duringLats) < 2048; i++ {
		key := fmt.Sprintf("e19-key-%04d", i%setsGets)
		cost, err := cli.Set(key, val)
		if err != nil {
			return fmt.Errorf("during reshard: set %s: %w", key, err)
		}
		duringLats = append(duringLats, cost)
	}
	if err := <-done; err != nil {
		return fmt.Errorf("reshard 2→4: %w", err)
	}
	pm, err := phase("during+drain", 0, nil)
	if err != nil {
		return err
	}
	pm.name = fmt.Sprintf("migrating (%d ops sampled)", len(duringLats))

	if err := cli.Resize(4, dial); err != nil {
		return err
	}
	p4, err := phase("steady @4 (post-reshard)", setsGets, nil)
	if err != nil {
		return err
	}

	// The static reference: the same workload on a node born at 4.
	static4, err := RunShardScale(seed, 4, setsGets, true)
	if err != nil {
		return fmt.Errorf("static 4-shard reference: %w", err)
	}

	tbl := metrics.NewTable("E19: virtual throughput across a live 2→4 reshard",
		"phase", "client width", "ops", "busiest shard (ms)", "kOps/s (virtual)", "mesh fwds (cum)")
	for _, p := range []e19Phase{p2, pm, p4} {
		tbl.AddRow(p.name, p.shards, p.ops, fmt.Sprintf("%.3f", p.maxBusyMs),
			fmt.Sprintf("%.1f", p.throughputK), p.forwards)
	}
	tbl.AddRow("static @4 (reference)", 4, static4.Ops,
		fmt.Sprintf("%.3f", static4.MaxBusyVirtM), fmt.Sprintf("%.1f", static4.ThroughputK), static4.ForwardedOut)
	res.Tables = append(res.Tables, tbl)

	p99 := func(lats []simclock.Lat) simclock.Lat {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)*99/100]
	}
	sp99, dp99 := p99(steadyLats), p99(duringLats)
	ptbl := metrics.NewTable("E19: client SET p99 (virtual) across the boundary",
		"window", "samples", "p99", "vs steady")
	ptbl.AddRow("steady @2", len(steadyLats), simclock.Lat(sp99).String(), "1.00x")
	ptbl.AddRow("during reshard", len(duringLats), simclock.Lat(dp99).String(),
		fmt.Sprintf("%.2fx", float64(dp99)/float64(sp99)))
	res.Tables = append(res.Tables, ptbl)

	res.check("post-reshard throughput beats pre-reshard", p4.throughputK > p2.throughputK,
		"2 shards %.1f → 4 shards (live-grown) %.1f kOps/s", p2.throughputK, p4.throughputK)
	res.check("live-grown node matches static spawn (>=80%)",
		p4.throughputK >= 0.8*static4.ThroughputK,
		"live-grown %.1f vs static %.1f kOps/s", p4.throughputK, static4.ThroughputK)
	res.check("p99 during reshard within 3x fence", dp99 <= 3*sp99,
		"during %.2fx of steady (%v vs %v)", float64(dp99)/float64(sp99), dp99, sp99)
	var migOut, migIn, drops int64
	for i := 0; i < server.Size(); i++ {
		st := server.StatsOf(i)
		migOut += st.MigratedOut
		migIn += st.MigratedIn
		drops += st.ForwardDrops
	}
	res.check("migrate ledger balanced, nothing dropped", migOut == migIn && migOut > 0 && drops == 0,
		"migrated out=%d in=%d, forward drops=%d", migOut, migIn, drops)
	res.check("generation advanced exactly once", srvNode.Generation() == 1 && server.Active() == 4,
		"gen=%d active=%d", srvNode.Generation(), server.Active())
	return nil
}

func e19Switch(seed int64, res *Result) error {
	const (
		port    = 8085
		samples = rttSamples
	)
	c := demi.NewCluster(seed + 1)
	srv := c.MustSpawn(demi.Catnap, demi.WithHost(1))
	cli := c.MustSpawn(demi.Catnip, demi.WithHost(2))
	srv.WaitTimeout = 5 * time.Millisecond

	stopS := srv.Background()
	defer stopS()
	stopC := cli.Background()
	defer stopC()

	lqd, err := srv.Socket()
	if err != nil {
		return err
	}
	if err := srv.Bind(lqd, demi.Addr{Port: port}); err != nil {
		return err
	}
	if err := srv.Listen(lqd); err != nil {
		return err
	}
	cqd, err := cli.Socket()
	if err != nil {
		return err
	}
	if err := cli.Connect(cqd, c.AddrOf(srv, port)); err != nil {
		return err
	}
	sqd, err := srv.Accept(lqd)
	if err != nil {
		return err
	}

	// The server's echo loop survives both switches on the same QD:
	// an op parked across the swap fails typed (ErrClosed / timeout)
	// and simply retries against the adopted endpoint.
	stopEcho := make(chan struct{})
	echoDone := make(chan struct{})
	go func() {
		defer close(echoDone)
		for {
			select {
			case <-stopEcho:
				return
			default:
			}
			comp, err := srv.BlockingPop(sqd)
			if err != nil || comp.Err != nil {
				if errors.Is(err, demi.ErrWaitTimeout) || errors.Is(comp.Err, demi.ErrWaitTimeout) {
					continue
				}
				if failover.Retriable(err) || failover.Retriable(comp.Err) {
					continue
				}
				return
			}
			if _, err := srv.BlockingPush(sqd, comp.SGA); err != nil && !failover.Retriable(err) {
				return
			}
		}
	}()
	defer func() { close(stopEcho); <-echoDone }()

	payload := make([]byte, 256)
	rtt := func() (simclock.Lat, error) {
		qt, err := cli.PushCost(cqd, demi.NewSGA(payload), c.Model.AppRequestNS)
		if err != nil {
			return 0, err
		}
		if _, err := cli.Wait(qt); err != nil {
			return 0, err
		}
		comp, err := cli.BlockingPop(cqd)
		if err != nil {
			return 0, err
		}
		if comp.Err != nil {
			return 0, comp.Err
		}
		return comp.Cost, nil
	}
	p50 := func(n int) (simclock.Lat, error) {
		var h metrics.Histogram
		for i := 0; i < n; i++ {
			cost, err := rtt()
			if err != nil {
				return 0, err
			}
			h.Record(cost)
		}
		return h.Percentile(50), nil
	}

	kernelP50, err := p50(samples)
	if err != nil {
		return fmt.Errorf("kernel steady: %w", err)
	}
	if err := srv.SwitchKind(demi.Catnip); err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	firstAfterPromote, err := rtt()
	if err != nil {
		return fmt.Errorf("first request after promote: %w", err)
	}
	bypassP50, err := p50(samples)
	if err != nil {
		return fmt.Errorf("bypass steady: %w", err)
	}
	if err := srv.SwitchKind(demi.Catnap); err != nil {
		return fmt.Errorf("demote: %w", err)
	}
	firstAfterDemote, err := rtt()
	if err != nil {
		return fmt.Errorf("first request after demote: %w", err)
	}
	kernelP50Back, err := p50(samples)
	if err != nil {
		return fmt.Errorf("kernel steady after demote: %w", err)
	}

	tbl := metrics.NewTable("E19: live catnap↔catnip switch, one established connection (256 B echo, virtual RTT)",
		"window", "RTT")
	tbl.AddRow("catnap steady p50", kernelP50.String())
	tbl.AddRow("first request after promote", firstAfterPromote.String())
	tbl.AddRow("catnip steady p50", bypassP50.String())
	tbl.AddRow("first request after demote", firstAfterDemote.String())
	tbl.AddRow("catnap steady p50 (back)", kernelP50Back.String())
	res.Tables = append(res.Tables, tbl)

	res.check("connection survives both switches", true,
		"same QDs served %d requests across promote and demote", 3*samples+2)
	res.check("promotion sheds the syscall tax immediately", firstAfterPromote < kernelP50,
		"first bypass request %v < kernel steady %v", firstAfterPromote, kernelP50)
	res.check("switch downtime <= one steady RTT (virtual)",
		firstAfterPromote <= bypassP50+kernelP50 && firstAfterDemote <= 2*kernelP50Back,
		"promote: first %v vs steady %v; demote: first %v vs steady %v",
		firstAfterPromote, bypassP50, firstAfterDemote, kernelP50Back)
	res.check("demotion restores the kernel cost profile", kernelP50Back > bypassP50,
		"kernel %v > bypass %v after the round trip", kernelP50Back, bypassP50)
	return nil
}
