package catnap_test

import (
	"errors"
	"testing"

	demi "demikernel"
	"demikernel/internal/kernel"
)

func pair(t *testing.T, seed int64) (*demi.Cluster, *demi.Node, *demi.Node, func()) {
	t.Helper()
	c := demi.NewCluster(seed)
	srv := c.MustSpawn(demi.Catnap, demi.WithHost(1))
	cli := c.MustSpawn(demi.Catnap, demi.WithHost(2))
	stop1 := srv.Background()
	stop2 := cli.Background()
	return c, srv, cli, func() { stop2(); stop1() }
}

func connect(t *testing.T, c *demi.Cluster, srv, cli *demi.Node, port uint16) (cqd, sqd demi.QD) {
	t.Helper()
	lqd, err := srv.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind(lqd, demi.Addr{Port: port}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(lqd); err != nil {
		t.Fatal(err)
	}
	cqd, err = cli.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect(cqd, c.AddrOf(srv, port)); err != nil {
		t.Fatal(err)
	}
	sqd, err = srv.Accept(lqd)
	if err != nil {
		t.Fatal(err)
	}
	return cqd, sqd
}

func TestLegacyCostsCharged(t *testing.T) {
	c, srv, cli, cleanup := pair(t, 51)
	defer cleanup()
	cqd, sqd := connect(t, c, srv, cli, 80)
	cli.Kernel.ResetCounters()
	srv.Kernel.ResetCounters()

	payload := make([]byte, 4096)
	if _, err := cli.BlockingPush(cqd, demi.NewSGA(payload)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.BlockingPop(sqd); err != nil {
		t.Fatal(err)
	}
	cc := cli.Kernel.Counters()
	if cc.SyscallCrossings == 0 {
		t.Fatal("catnap push must cross the kernel")
	}
	if cc.BytesCopied < 4096 {
		t.Fatalf("catnap push must copy user->kernel: copied %d", cc.BytesCopied)
	}
	sc := srv.Kernel.Counters()
	if sc.BytesCopied < 4096 {
		t.Fatalf("catnap pop must copy kernel->user: copied %d", sc.BytesCopied)
	}
}

func TestSameWireAsBypass(t *testing.T) {
	// A catnap client can talk to a catnip server: the SGA framing over
	// TCP is the shared wire format (the §4.1 portability story at the
	// protocol level).
	c := demi.NewCluster(52)
	srv := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	cli := c.MustSpawn(demi.Catnap, demi.WithHost(2))
	stop1 := srv.Background()
	defer stop1()
	stop2 := cli.Background()
	defer stop2()

	lqd, _ := srv.Socket()
	srv.Bind(lqd, demi.Addr{Port: 80})
	srv.Listen(lqd)
	cqd, _ := cli.Socket()
	if err := cli.Connect(cqd, c.AddrOf(srv, 80)); err != nil {
		t.Fatal(err)
	}
	sqd, err := srv.Accept(lqd)
	if err != nil {
		t.Fatal(err)
	}
	msg := demi.NewSGA([]byte("kernel"), []byte("to"), []byte("bypass"))
	if _, err := cli.BlockingPush(cqd, msg); err != nil {
		t.Fatal(err)
	}
	comp, err := srv.BlockingPop(sqd)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.SGA.Equal(msg) {
		t.Fatal("cross-stack message corrupted")
	}
}

func TestOpenWithoutDisk(t *testing.T) {
	_, srv, _, cleanup := pair(t, 53)
	defer cleanup()
	if _, err := srv.Open("/etc/passwd"); !errors.Is(err, kernel.ErrNoDisk) {
		t.Fatalf("err = %v", err)
	}
}

func TestFileQueuesOverKernelFS(t *testing.T) {
	c, srv, _, cleanup := pair(t, 57)
	defer cleanup()
	srv.Kernel.AttachDisk(c.NewDisk(0))

	qd, err := srv.Open("/var/log/records")
	if err != nil {
		t.Fatal(err)
	}
	srv.Kernel.ResetCounters()
	msg := demi.NewSGA([]byte("hdr"), []byte("body"))
	comp, err := srv.BlockingPush(qd, msg)
	if err != nil || comp.Err != nil {
		t.Fatalf("push: %v %v", err, comp.Err)
	}
	if comp.Cost == 0 {
		t.Fatal("durable write must carry kernel costs")
	}
	got, err := srv.BlockingPop(qd)
	if err != nil || got.Err != nil {
		t.Fatalf("pop: %v %v", err, got.Err)
	}
	if !got.SGA.Equal(msg) {
		t.Fatal("record corrupted through the kernel file path")
	}
	// Legacy prices were paid: syscalls and copies happened.
	ctr := srv.Kernel.Counters()
	if ctr.SyscallCrossings == 0 || ctr.BytesCopied == 0 {
		t.Fatalf("kernel file path paid nothing: %+v", ctr)
	}

	// Restart parity: a second open re-indexes durable records.
	qd2, err := srv.Open("/var/log/records")
	if err != nil {
		t.Fatal(err)
	}
	got2, err := srv.BlockingPop(qd2)
	if err != nil || !got2.SGA.Equal(msg) {
		t.Fatalf("reindex pop: %v", err)
	}
}

func TestFeatures(t *testing.T) {
	_, srv, _, cleanup := pair(t, 54)
	defer cleanup()
	f := srv.Features()
	if f.KernelBypass {
		t.Fatal("catnap must not claim kernel bypass")
	}
}

func TestCloseReleasesKernelFDs(t *testing.T) {
	c, srv, cli, cleanup := pair(t, 55)
	defer cleanup()
	cqd, sqd := connect(t, c, srv, cli, 80)
	if err := cli.Close(cqd); err != nil {
		t.Fatal(err)
	}
	// The peer observes the close as a failed pop.
	comp, err := srv.BlockingPop(sqd)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Err == nil {
		t.Fatal("pop should fail after peer close")
	}
	// Double close of the same descriptor is rejected at the core layer.
	if err := cli.Close(cqd); err == nil {
		t.Fatal("double close succeeded")
	}
}

func TestAllocSGAPlainHeap(t *testing.T) {
	_, srv, _, cleanup := pair(t, 56)
	defer cleanup()
	s := srv.AllocSGA(64)
	if s.Reg != nil {
		t.Fatal("catnap has no device to register with")
	}
	if s.Len() != 64 {
		t.Fatalf("len = %d", s.Len())
	}
}
