package main

// The elastic-resharding dashboard: drive a live 2→4→2 reshard under
// client load and render what the operator-facing gauges saw at each
// generation — kv_gen/kv_active/kv_migrating on the app plane,
// rss_queues/pinned_flows on the NIC steering plane, and the per-shard
// key and migration ledgers. Exits non-zero if the migrate ledger does
// not balance or any key goes missing across the handoffs.

import (
	"context"
	"fmt"
	"time"

	demi "demikernel"
	"demikernel/internal/apps/failover"
	"demikernel/internal/apps/kv"
	"demikernel/internal/metrics"
)

func runReshard(seed int64, ops int) error {
	const (
		port     = 6383
		initial  = 2
		capacity = 4
	)
	c := demi.NewCluster(seed)
	srvNode := c.MustSpawn(demi.Catnip, demi.WithHost(1),
		demi.WithShards(initial), demi.WithShardCapacity(capacity)).Sharded
	cliNode := c.MustSpawn(demi.Catnip, demi.WithHost(2))

	server := kv.NewShardedServerElastic(srvNode.Libs, &c.Model, srvNode.Mesh(), initial)
	srvNode.SetResharder(server)
	if err := server.Listen(port); err != nil {
		return err
	}
	stop := make(chan struct{})
	wg := server.Run(stop)
	defer func() { close(stop); wg.Wait() }()
	stopCli := cliNode.Background()
	defer stopCli()

	dial := func(i int) (demi.QD, error) {
		return c.Router().DialShard(cliNode, srvNode, port, i, uint16(4096*i+23))
	}
	cli, err := kv.NewShardedClient(cliNode.LibOS, initial, dial)
	if err != nil {
		return err
	}
	defer cli.Close()
	cli.EnableFailover(
		failover.Policy{MaxAttempts: 25, Base: time.Millisecond, Max: 20 * time.Millisecond, Jitter: 0.5, Seed: seed},
		func(shard, attempt int) (demi.QD, error) {
			return c.Router().DialShard(cliNode, srvNode, port, shard%srvNode.Size(),
				uint16(4096*shard+31+attempt*17))
		})

	keys := ops
	if keys > 512 {
		keys = 512
	}
	load := func(label string) error {
		for i := 0; i < ops; i++ {
			k := i % keys
			key := fmt.Sprintf("rs-key-%04d", k)
			if _, err := cli.Set(key, []byte(fmt.Sprintf("v%04d", k))); err != nil {
				return fmt.Errorf("%s: set %s: %w", label, key, err)
			}
			if _, _, found, err := cli.Get(key); err != nil || !found {
				return fmt.Errorf("%s: get %s: found=%v err=%w", label, key, found, err)
			}
		}
		return nil
	}

	tbl := metrics.NewTable("Generation timeline (app + steering planes)",
		"phase", "gen", "active", "migrating", "rss queues", "pinned flows", "keys by shard", "mig out", "mig in")
	snap := func(phase string) {
		dev := srvNode.Set.Device()
		var out, in int64
		keysBy := ""
		for i := 0; i < server.Size(); i++ {
			st := server.StatsOf(i)
			out += st.MigratedOut
			in += st.MigratedIn
			if i > 0 {
				keysBy += "/"
			}
			keysBy += fmt.Sprintf("%d", st.Keys)
		}
		mig := 0
		if !server.Stable() {
			mig = 1
		}
		tbl.AddRow(phase, server.Generation(), server.Active(), mig,
			dev.RSSQueues(), dev.PinnedFlows(), keysBy, out, in)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reshard := func(m int) error {
		if err := srvNode.Reshard(ctx, m); err != nil {
			return fmt.Errorf("reshard to %d: %w", m, err)
		}
		return cli.Resize(m, dial)
	}

	snap("steady @2")
	if err := load("warmup"); err != nil {
		return err
	}
	snap("loaded @2")
	if err := reshard(4); err != nil {
		return err
	}
	snap("grown @4")
	if err := load("post-grow"); err != nil {
		return err
	}
	if err := reshard(2); err != nil {
		return err
	}
	snap("shrunk @2")
	if err := load("post-shrink"); err != nil {
		return err
	}
	snap("final @2")

	fmt.Printf("elastic reshard run: %d SET+GET pairs per phase, %d→4→2 shards (capacity %d, seed %d)\n\n",
		ops, initial, capacity, seed)
	fmt.Println(tbl.String())

	// The audits an operator would want scripted: ledger balance and
	// key conservation across both handoffs.
	var out, in int64
	for i := 0; i < server.Size(); i++ {
		st := server.StatsOf(i)
		out += st.MigratedOut
		in += st.MigratedIn
	}
	if out != in {
		return fmt.Errorf("migrate ledger unbalanced: out=%d in=%d", out, in)
	}
	if got := server.Len(); got != keys {
		return fmt.Errorf("store holds %d keys after resharding, want %d", got, keys)
	}
	for i := 2; i < server.Size(); i++ {
		if st := server.StatsOf(i); st.Keys != 0 {
			return fmt.Errorf("retired shard %d still owns %d keys", i, st.Keys)
		}
	}
	fmt.Printf("audit: migrate ledger balanced (%d records), %d keys conserved, retired shards empty\n", out, keys)
	return nil
}
