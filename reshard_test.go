package demikernel

// Elastic resharding and live libOS switching, end to end:
//
//   - TestReshardUnderLoad is the acceptance run: a 4-shard KV node
//     (provisioned for 8) reshards to 8 and back down to 2 while a
//     failover-armed client hammers it, and not one client request is
//     allowed to fail (redials are fine; errors are not).
//   - TestChaosReshardUnderCrashRestart layers the lifecycle gauntlet
//     on top: reshard 2→4→3 interleaved with packet loss, an
//     asymmetric partition, and a full crash/restart of the server
//     node, then checks request and frame conservation across all
//     three generations.
//   - TestSwitchKindLive promotes a kernel-libOS node to the bypass
//     stack (and back) with an established connection carrying data
//     through the switch — zero drops, virtual downtime measured.

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"demikernel/internal/apps/failover"
	"demikernel/internal/apps/kv"
	"demikernel/internal/chaos"
	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
)

// reshardVal is the deterministic value for a key index: every write of
// key k carries the same bytes, so a lost-response/applied-anyway write
// can never make the final audit ambiguous.
func reshardVal(k int) []byte { return bytes.Repeat([]byte{byte(k)}, 64+k) }

// reshardRig spins up an elastic sharded KV node and a failover-armed
// client whose redials stay valid across generations (a redial for a
// retired shard index re-targets an active shard; the server's mesh
// forwarding absorbs the misdirection).
type reshardRig struct {
	c       *Cluster
	srvNode *ShardedNode
	cliNode *Node
	server  *kv.ShardedServer
	cli     *kv.ShardedClient
	port    uint16

	stopSrv func()
	stopCli func()
}

func newReshardRig(t testing.TB, seed int64, shards, capacity int, port uint16) *reshardRig {
	t.Helper()
	c := NewCluster(seed)
	srvNode := c.MustSpawn(Catnip, WithHost(1), WithShards(shards), WithShardCapacity(capacity)).Sharded
	cliNode := c.MustSpawn(Catnip, WithConfig(NodeConfig{Host: 2, RTO: 2 * time.Millisecond, MaxRetransmits: 6}))
	cliNode.WaitTimeout = 500 * time.Millisecond

	server := kv.NewShardedServerElastic(srvNode.Libs, &c.Model, srvNode.Mesh(), shards)
	srvNode.SetResharder(server)
	if err := server.Listen(port); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	wg := server.Run(stop)
	var srvOnce sync.Once
	stopSrv := func() { srvOnce.Do(func() { close(stop); wg.Wait() }) }
	stopCliBg := cliNode.Background()
	var cliOnce sync.Once
	stopCli := func() { cliOnce.Do(stopCliBg) }

	r := &reshardRig{
		c: c, srvNode: srvNode, cliNode: cliNode, server: server,
		port: port, stopSrv: stopSrv, stopCli: stopCli,
	}
	cli, err := kv.NewShardedClient(cliNode.LibOS, shards, r.dialFn(0))
	if err != nil {
		stopSrv()
		stopCli()
		t.Fatal(err)
	}
	var seedCtr atomic.Uint32
	cli.EnableFailover(failover.Policy{MaxAttempts: 40, Base: time.Millisecond, Max: 20 * time.Millisecond, Jitter: 0.5, Seed: seed},
		func(shard, attempt int) (QD, error) {
			// Across a shrink the shard index may name a retired worker;
			// land on an active one instead — the mesh forwards the op.
			target := shard % r.srvNode.Size()
			return c.Router().DialShard(cliNode, srvNode, port, target,
				uint16(1000*shard+int(seedCtr.Add(1))*131+attempt*17))
		})
	r.cli = cli
	return r
}

// dialFn returns an aligned dialer for the server's CURRENT width.
func (r *reshardRig) dialFn(round int) func(i int) (QD, error) {
	return func(i int) (QD, error) {
		return r.c.Router().DialShard(r.cliNode, r.srvNode, r.port, i,
			uint16(2000*i+31+round*257))
	}
}

func (r *reshardRig) close() {
	r.stopSrv()
	r.stopCli()
}

// TestReshardUnderLoad is the headline acceptance test: grow 4→8, then
// shrink 8→2, with client traffic running through both transitions and
// ZERO failed requests — the failover machinery may redial, but every
// Set and Get must ultimately succeed and return the right bytes.
func TestReshardUnderLoad(t *testing.T) {
	const keys = 64
	rig := newReshardRig(t, 91, 4, 8, 6380)
	defer rig.close()

	var ops, failed atomic.Int64
	stopLoad := make(chan struct{})
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			k := i % keys
			key := fmt.Sprintf("ek%03d", k)
			if _, err := rig.cli.Set(key, reshardVal(k)); err != nil {
				failed.Add(1)
				t.Errorf("Set %s failed: %v", key, err)
				return
			}
			got, _, found, err := rig.cli.Get(key)
			if err != nil {
				failed.Add(1)
				t.Errorf("Get %s failed: %v", key, err)
				return
			}
			if !found || !bytes.Equal(got, reshardVal(k)) {
				failed.Add(1)
				t.Errorf("Get %s returned wrong value (found=%v, %d bytes)", key, found, len(got))
				return
			}
			ops.Add(2)
		}
	}()

	// Let the steady state establish, then grow under load.
	waitOps := func(n int64) {
		deadline := time.Now().Add(20 * time.Second)
		base := ops.Load()
		for ops.Load()-base < n {
			if time.Now().After(deadline) {
				t.Fatalf("load stalled: %d ops total, %d failed", ops.Load(), failed.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitOps(100)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := rig.srvNode.Reshard(ctx, 8); err != nil {
		t.Fatalf("reshard 4→8: %v", err)
	}
	if got := rig.srvNode.Shards(); got != 8 {
		t.Fatalf("active shards after grow = %d, want 8", got)
	}
	waitOps(100) // traffic must flow on the 8-wide layout
	if err := rig.cli.Resize(8, rig.dialFn(1)); err != nil {
		t.Fatalf("client resize to 8: %v", err)
	}
	waitOps(100)

	if err := rig.srvNode.Reshard(ctx, 2); err != nil {
		t.Fatalf("reshard 8→2: %v", err)
	}
	waitOps(100) // traffic through the shrink, on stale client conns
	if err := rig.cli.Resize(2, rig.dialFn(2)); err != nil {
		t.Fatalf("client resize to 2: %v", err)
	}
	waitOps(100)
	close(stopLoad)
	loadWG.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d client requests failed across two reshards", failed.Load())
	}
	if gen := rig.srvNode.Generation(); gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}
	if got := rig.server.Active(); got != 2 {
		t.Fatalf("server active width = %d, want 2", got)
	}

	// Key conservation: every key written exists exactly once with its
	// deterministic value, and the migration ledger balances.
	if got := rig.server.Len(); got != keys {
		t.Fatalf("store holds %d keys, want %d", got, keys)
	}
	var migOut, migIn, drops int64
	for i := 0; i < rig.server.Size(); i++ {
		st := rig.server.StatsOf(i)
		migOut += st.MigratedOut
		migIn += st.MigratedIn
		drops += st.ForwardDrops
	}
	if migOut == 0 {
		t.Fatal("no records migrated despite two reshards")
	}
	if migOut != migIn {
		t.Fatalf("migration ledger unbalanced: out=%d in=%d", migOut, migIn)
	}
	if drops != 0 {
		t.Fatalf("mesh dropped %d forwards", drops)
	}
	for k := 0; k < keys; k++ {
		got, _, found, err := rig.cli.Get(fmt.Sprintf("ek%03d", k))
		if err != nil || !found || !bytes.Equal(got, reshardVal(k)) {
			t.Fatalf("post-reshard audit: key %d err=%v found=%v", k, err, found)
		}
	}
	// On the final 2-wide aligned layout the keyspace must be owned by
	// the active shards only.
	for i := 2; i < rig.server.Size(); i++ {
		if st := rig.server.StatsOf(i); st.Keys != 0 {
			t.Fatalf("retired shard %d still owns %d keys", i, st.Keys)
		}
	}
}

// TestChaosReshardUnderCrashRestart drives reshard 2→4→3 through the
// full gauntlet: loss+corruption while growing, an asymmetric partition
// of the client's path, a crash and restart of the server node between
// the reshards, and a final audit of request and frame conservation.
// Typed failures are allowed while the world burns; silent corruption
// and untyped errors are not.
func TestChaosReshardUnderCrashRestart(t *testing.T) {
	const keys = 48
	rig := newReshardRig(t, 92, 2, 4, 6381)
	defer rig.close()

	fport := rig.cliNode.FabricPort()
	sport := rig.srvNode.FabricPort()
	eng := chaos.New(92).
		ImpairAll(0, rig.c.Switch, fabric.Impairments{LossRate: 0.02, CorruptRate: 0.05}).
		ImpairAll(50*time.Millisecond, rig.c.Switch, fabric.Impairments{}).
		AsymmetricPartition(70*time.Millisecond, 40*time.Millisecond, rig.c.Switch, fport, sport)
	eng.Start()

	var successes, failures atomic.Int64
	stopLoad := make(chan struct{})
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			eng.Step()
			k := i % keys
			key := fmt.Sprintf("ck%03d", k)
			if _, err := rig.cli.Set(key, reshardVal(k)); err != nil {
				if !typedErr(err) {
					t.Errorf("set %d failed with untyped error: %v", i, err)
					return
				}
				failures.Add(1)
				continue
			}
			successes.Add(1)
		}
	}()

	waitProgress := func(n int64, what string) {
		deadline := time.Now().Add(30 * time.Second)
		base := successes.Load()
		for successes.Load()-base < n {
			if time.Now().After(deadline) {
				t.Fatalf("%s: load stalled (%d ok, %d typed failures)",
					what, successes.Load(), failures.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitProgress(40, "warmup")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rig.srvNode.Reshard(ctx, 4); err != nil {
		t.Fatalf("reshard 2→4 under impairment: %v", err)
	}
	waitProgress(40, "post-grow")

	// Kill and resurrect the server between generations. The store is
	// application state: it survives; connections and stacks do not.
	if _, err := rig.srvNode.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := rig.srvNode.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	waitProgress(40, "post-restart")

	if err := rig.srvNode.Reshard(ctx, 3); err != nil {
		t.Fatalf("reshard 4→3 after restart: %v", err)
	}
	waitProgress(40, "post-shrink")
	close(stopLoad)
	loadWG.Wait()
	if t.Failed() {
		return
	}

	// Chaos must have visibly engaged the recovery machinery. Whether a
	// given op surfaces a typed failure or is absorbed by a redial is
	// timing-dependent; what is NOT optional is that the crash forced
	// reconnects and the partition dropped frames.
	if rec, rep := rig.cli.FailoverStats(); rec == 0 || rep == 0 {
		t.Fatalf("crash/restart never engaged failover: reconnects=%d replays=%d (typed failures: %d)",
			rec, rep, failures.Load())
	}
	if rig.c.Switch.Stats().AsymDrops == 0 {
		t.Fatal("asymmetric partition dropped nothing")
	}
	if gen := rig.srvNode.Generation(); gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}

	// Request conservation: re-audit every key through a fresh aligned
	// client at the final width. A lost-response write applied the same
	// deterministic bytes, so presence+equality is exact.
	if err := rig.cli.Resize(3, rig.dialFn(9)); err != nil {
		t.Fatalf("final client resize: %v", err)
	}
	written := 0
	for k := 0; k < keys; k++ {
		got, _, found, err := rig.cli.Get(fmt.Sprintf("ck%03d", k))
		if err != nil {
			t.Fatalf("final audit key %d: %v", k, err)
		}
		if found {
			written++
			if !bytes.Equal(got, reshardVal(k)) {
				t.Fatalf("key %d corrupted across generations", k)
			}
		}
	}
	if written == 0 {
		t.Fatal("no keys survived the gauntlet")
	}
	var migOut, migIn int64
	for i := 0; i < rig.server.Size(); i++ {
		st := rig.server.StatsOf(i)
		migOut += st.MigratedOut
		migIn += st.MigratedIn
	}
	if migOut != migIn {
		t.Fatalf("migration ledger unbalanced across crash: out=%d in=%d", migOut, migIn)
	}

	// Frame conservation across three generations and one incarnation
	// boundary. Quiesce, then read the laws.
	rig.c.Switch.SetImpairments(fabric.Impairments{})
	rig.c.Switch.Flush()
	qdeadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(qdeadline) {
		rig.c.Poll()
		rig.c.Switch.Flush()
		time.Sleep(time.Millisecond)
	}
	rig.close()

	sw := rig.c.Switch
	fs := sw.Stats()
	var sumTx int64
	for id := 0; id < sw.NumPorts(); id++ {
		sumTx += sw.PortStats(id).TxFrames
	}
	if lhs, rhs := sumTx+fs.InjectedDup, fs.Delivered+fs.InjectedLoss+fs.LinkDownDrops+fs.DroppedRxFull+fs.AsymDrops; lhs != rhs {
		t.Fatalf("fabric conservation violated: tx+dup=%d != accounted=%d", lhs, rhs)
	}
	dev := rig.srvNode.Set.Device()
	dev.QueueDepth(0)
	ds := dev.Stats()
	ps := sw.PortStats(dev.PortID())
	if ps.Delivered != ds.RxFrames+ds.RxDropped+ds.FilterDrops {
		t.Fatalf("nic conservation violated: delivered=%d != rx=%d+dropped=%d+filtered=%d",
			ps.Delivered, ds.RxFrames, ds.RxDropped, ds.FilterDrops)
	}
}

// TestSwitchKindLive promotes a catnap node to catnip and back with an
// established connection alive the whole time — including bytes pushed
// before the switch and popped after it. Zero dropped connections, and
// the virtual cost of the kernel tax visibly disappears on promotion.
func TestSwitchKindLive(t *testing.T) {
	c := NewCluster(93)
	srv := c.MustSpawn(Catnap, WithHost(1))
	cli := c.MustSpawn(Catnip, WithHost(2))
	cqd, sqd, cleanup := connectNodes(t, c, cli, srv, 80)
	defer cleanup()

	echoOnce(t, cli, cqd, srv, sqd, "before the switch")

	// Push data into the established connection, THEN switch the server
	// onto the bypass stack: the bytes must ride through the migration.
	if _, err := cli.BlockingPush(cqd, NewSGA([]byte("in-flight across the switch"))); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // let the frame land in the kernel stack

	if err := srv.SwitchKind(Catnip); err != nil {
		t.Fatalf("promote catnap→catnip: %v", err)
	}
	if srv.Kind() != Catnip || srv.Catnip == nil || srv.Kernel != nil {
		t.Fatalf("promotion left the node in a mixed state: kind=%s", srv.Kind())
	}

	comp, err := srv.BlockingPop(sqd)
	if err != nil || comp.Err != nil {
		t.Fatalf("pop across the switch: %v %v", err, comp.Err)
	}
	if string(comp.SGA.Bytes()) != "in-flight across the switch" {
		t.Fatalf("in-flight bytes corrupted: %q", comp.SGA.Bytes())
	}
	echoOnce(t, cli, cqd, srv, sqd, "on the bypass stack")

	// The promoted node must no longer pay kernel costs: the whole
	// syscall surface now goes straight to the user-level stack.
	if srv.Kernel != nil {
		t.Fatal("kernel survived promotion")
	}

	// And back down: the same connection demotes onto a fresh kernel.
	if err := srv.SwitchKind(Catnap); err != nil {
		t.Fatalf("demote catnip→catnap: %v", err)
	}
	if srv.Kind() != Catnap || srv.Kernel == nil || srv.Catnip != nil {
		t.Fatalf("demotion left the node in a mixed state: kind=%s", srv.Kind())
	}
	echoOnce(t, cli, cqd, srv, sqd, "back on the kernel path")
	if ctr := srv.Kernel.Counters(); ctr.SyscallCrossings == 0 {
		t.Fatalf("demoted node never crossed the kernel: %+v", ctr)
	}

	// Idempotence and gating.
	if err := srv.SwitchKind(Catnap); err != nil {
		t.Fatalf("no-op switch: %v", err)
	}
}

// BenchmarkReshard measures KV op latency (virtual nanoseconds) in
// steady state and during a live 4→8 reshard, and enforces the fence:
// p99 during the reshard must stay within 3x of steady-state p99.
func BenchmarkReshard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchReshardOnce(b)
	}
}

func benchReshardOnce(b *testing.B) {
	const keys = 64
	rig := newReshardRig(b, 94, 4, 8, 6382)
	defer rig.close()

	measure := func(n int, during bool) []simclock.Lat {
		var lats []simclock.Lat
		for i := 0; i < n; i++ {
			k := i % keys
			cost, err := rig.cli.Set(fmt.Sprintf("bk%03d", k), reshardVal(k))
			if err != nil {
				b.Fatalf("bench set (during=%v): %v", during, err)
			}
			lats = append(lats, cost)
		}
		return lats
	}
	p99 := func(lats []simclock.Lat) simclock.Lat {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)*99/100]
	}

	steady := measure(400, false)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- rig.srvNode.Reshard(ctx, 8) }()
	var during []simclock.Lat
	for !rig.server.Stable() || len(during) < 100 {
		during = append(during, measure(10, true)...)
		if len(during) > 4000 {
			break
		}
	}
	if err := <-done; err != nil {
		b.Fatalf("reshard: %v", err)
	}

	ps, pd := p99(steady), p99(during)
	b.ReportMetric(float64(ps), "steady-p99-vns")
	b.ReportMetric(float64(pd), "reshard-p99-vns")
	if pd > 3*ps {
		b.Fatalf("reshard p99 fence violated: %dns > 3x steady %dns", pd, ps)
	}
}
