package offload

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
)

// The agreement property: the host step and the device step are
// independent decoders of the same on-block format, and a lookup must
// return byte-identical results whichever side runs it — on pristine
// nodes AND on corrupt ones, where "how far into the damage did you
// read" must not leak into the verdict.

func stepsEqual(a, b spdk.Step) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case spdk.StepNext:
		return a.NextLBA == b.NextLBA
	case spdk.StepDone:
		return bytes.Equal(a.Value, b.Value)
	}
	return true
}

// makeLeaf packs a well-formed leaf node.
func makeLeaf(kvs []spdk.KV) []byte {
	node := make([]byte, spdk.BlockSize)
	binary.BigEndian.PutUint32(node[0:4], 0xB7EE1DE5)
	binary.BigEndian.PutUint16(node[4:6], 0)
	binary.BigEndian.PutUint16(node[6:8], uint16(len(kvs)))
	off := 8
	for _, kv := range kvs {
		binary.BigEndian.PutUint16(node[off:off+2], uint16(len(kv.Key)))
		binary.BigEndian.PutUint16(node[off+2:off+4], uint16(len(kv.Val)))
		off += 4
		off += copy(node[off:], kv.Key)
		off += copy(node[off:], kv.Val)
	}
	return node
}

// makeInner packs a well-formed inner node at the given level.
func makeInner(level int, keys [][]byte, children []int) []byte {
	node := make([]byte, spdk.BlockSize)
	binary.BigEndian.PutUint32(node[0:4], 0xB7EE1DE5)
	binary.BigEndian.PutUint16(node[4:6], uint16(level))
	binary.BigEndian.PutUint16(node[6:8], uint16(len(keys)))
	off := 8
	for i, k := range keys {
		binary.BigEndian.PutUint16(node[off:off+2], uint16(len(k)))
		binary.BigEndian.PutUint32(node[off+2:off+6], uint32(children[i]))
		off += 6
		off += copy(node[off:], k)
	}
	return node
}

func randKey(rng *rand.Rand) []byte {
	k := make([]byte, 1+rng.Intn(12))
	rng.Read(k)
	return k
}

// randNode builds a random well-formed node block.
func randNode(rng *rand.Rand) []byte {
	n := 1 + rng.Intn(12)
	seen := map[string]bool{}
	var keys [][]byte
	for len(keys) < n {
		k := randKey(rng)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
	}
	sortKeys(keys)
	if rng.Intn(2) == 0 {
		var kvs []spdk.KV
		for _, k := range keys {
			v := make([]byte, rng.Intn(24))
			rng.Read(v)
			kvs = append(kvs, spdk.KV{Key: k, Val: v})
		}
		return makeLeaf(kvs)
	}
	children := make([]int, len(keys))
	for i := range children {
		children[i] = rng.Intn(1 << 16)
	}
	return makeInner(1+rng.Intn(3), keys, children)
}

func sortKeys(keys [][]byte) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && bytes.Compare(keys[j], keys[j-1]) < 0; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

func checkAgreement(t *testing.T, tag string, key, block []byte) {
	t.Helper()
	dev := spdk.IndexStep(key, block)
	host := hostIndexStep(key, block)
	if !stepsEqual(dev, host) {
		t.Fatalf("%s: device %+v != host %+v (key %x)", tag, dev, host, key)
	}
}

func TestIndexStepAgreementWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		block := randNode(rng)
		// Probe with an absent random key, and with a key present in the
		// node (read back out of the packed bytes so aliasing matches).
		checkAgreement(t, "rand-key", randKey(rng), block)
		nKeys := int(binary.BigEndian.Uint16(block[6:8]))
		level := int(binary.BigEndian.Uint16(block[4:6]))
		pick := rng.Intn(nKeys)
		off := 8
		var key []byte
		for j := 0; j <= pick; j++ {
			klen := int(binary.BigEndian.Uint16(block[off : off+2]))
			if level == 0 {
				vlen := int(binary.BigEndian.Uint16(block[off+2 : off+4]))
				key = block[off+4 : off+4+klen]
				off += 4 + klen + vlen
			} else {
				key = block[off+6 : off+6+klen]
				off += 6 + klen
			}
		}
		checkAgreement(t, "present-key", key, block)
	}
}

func TestIndexStepAgreementCorrupted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4000; i++ {
		block := randNode(rng)
		// Mutate 1..8 random bytes anywhere in the block: headers, entry
		// headers, keys, values, padding.
		for m := 0; m <= rng.Intn(8); m++ {
			block[rng.Intn(len(block))] ^= byte(1 + rng.Intn(255))
		}
		checkAgreement(t, "mutated", randKey(rng), block)
	}
}

func TestIndexStepAgreementGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		block := make([]byte, spdk.BlockSize)
		rng.Read(block)
		if rng.Intn(4) == 0 {
			// Plant the magic so parsing gets past the header.
			binary.BigEndian.PutUint32(block[0:4], 0xB7EE1DE5)
		}
		checkAgreement(t, "garbage", randKey(rng), block)
	}
	// Truncated blocks.
	for i := 0; i < 100; i++ {
		block := make([]byte, rng.Intn(16))
		rng.Read(block)
		checkAgreement(t, "short", randKey(rng), block)
	}
}

// End-to-end: a full traversal over a built index returns byte-identical
// results through the canonical device step and the host decoder.
func TestIndexLookupEndToEndAgreement(t *testing.T) {
	model := simclock.Datacenter2019()
	dev := spdk.New(&model, spdk.Config{})
	var kvs []spdk.KV
	for i := 0; i < 200; i++ {
		kvs = append(kvs, spdk.KV{
			Key: []byte(fmt.Sprintf("user:%04d", i*3)),
			Val: []byte(fmt.Sprintf("profile-%d", i)),
		})
	}
	next := 100
	alloc := func(n int) (int, error) { lba := next; next += n; return lba, nil }
	idx, err := spdk.BuildIndex(dev, alloc, kvs, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec := IndexLookup()
	traverse := func(step func(key, block []byte) spdk.Step, key []byte) ([]byte, bool) {
		lba := idx.Root
		for hops := 0; hops < spdk.MaxHopBudget; hops++ {
			c := dev.Execute(spdk.Command{Op: spdk.OpRead, LBA: lba})
			if c.Err != nil {
				t.Fatal(c.Err)
			}
			switch s := step(key, c.Data); s.Kind {
			case spdk.StepNext:
				lba = s.NextLBA
			case spdk.StepDone:
				return append([]byte(nil), s.Value...), true
			case spdk.StepMiss:
				return nil, false
			default:
				t.Fatalf("corrupt verdict on pristine index at LBA %d", lba)
			}
		}
		t.Fatal("no termination")
		return nil, false
	}
	probe := [][]byte{[]byte("user:0000"), []byte("user:0300"), []byte("user:0001"), []byte("zzz"), []byte("a")}
	for i := 0; i < 200; i++ {
		probe = append(probe, []byte(fmt.Sprintf("user:%04d", i*3)))
	}
	for _, key := range probe {
		dv, dok := traverse(spec.Device.Step, key)
		hv, hok := traverse(spec.Host, key)
		if dok != hok || !bytes.Equal(dv, hv) {
			t.Fatalf("key %q: device (%q,%v) != host (%q,%v)", key, dv, dok, hv, hok)
		}
	}
}
