package spdk

import (
	"errors"
	"fmt"
	"sync/atomic"

	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// This file implements storage pushdown: BPF-style compute in the NVMe
// completion path. The paper's thesis is that the OS should keep control
// of protection while letting applications push logic to the device;
// "BPF for storage" (PAPERS.md) shows the biggest storage win is
// eliminating the per-block host crossing of a multi-hop index lookup.
//
// The mechanism rides the continuation-carrying completion path: a
// lookup submits one read whose continuation runs the installed program
// over the block right where the completion is processed. The program's
// verdict either resubmits the next read — device-internal, no host DMA,
// no surfaced completion — or emits the final value (or a typed error)
// as the single completion that crosses back to the libOS.
//
// The completion path is the protection boundary: programs are validated
// at install time (the sandbox admission check), every per-hop verdict
// is re-validated at run time (LBA range, value bounds), and the hop
// budget guarantees termination no matter what the program does. The
// device — standing in for the OS control plane — never cedes those
// checks to the application, exactly the kernel-retains-control split
// the paper argues for.

// Sandbox limits on pushdown programs and lookups.
const (
	// MaxKeyLen bounds the lookup key a traversal carries device-side.
	MaxKeyLen = 128
	// DefaultMaxHops is the default per-lookup hop budget.
	DefaultMaxHops = 16
	// MaxHopBudget is the hard ceiling a program may request at install
	// time; the admission check rejects anything larger.
	MaxHopBudget = 64
	// MaxValueLen bounds the value a program may emit from a block.
	MaxValueLen = BlockSize
)

// Pushdown errors. All surface as the Err of exactly one completion.
var (
	ErrNotFound     = errors.New("spdk: key not found")
	ErrHopBudget    = errors.New("spdk: pushdown hop budget exhausted")
	ErrBadProg      = errors.New("spdk: pushdown program rejected")
	ErrNoProg       = errors.New("spdk: no pushdown program at handle")
	ErrKeyTooLong   = errors.New("spdk: lookup key exceeds MaxKeyLen")
	ErrCorruptIndex = errors.New("spdk: pushdown program rejected block")
)

// StepKind is a pushdown program's verdict on one block.
type StepKind int

const (
	// StepNext descends: read NextLBA and run the program again.
	StepNext StepKind = iota
	// StepDone ends the traversal with Value as the result.
	StepDone
	// StepMiss ends the traversal: the key is not in the structure.
	StepMiss
	// StepCorrupt ends the traversal: the block failed the program's
	// own validation (bad magic, truncated entry, ...).
	StepCorrupt
)

// Step is one program verdict.
type Step struct {
	Kind    StepKind
	NextLBA int
	// Value is the emitted result for StepDone. It may alias the block
	// buffer; the engine surfaces it before recycling the block.
	Value []byte
}

// Prog is a sandboxed pushdown program: a pure function from (key,
// block) to a verdict. It must not retain the block slice — the engine
// recycles it after the step — and must not block; the admission check
// cannot verify purity (this is a simulation, not a verifier), but the
// engine re-validates every verdict, so a misbehaving program can waste
// its own hop budget and nothing else.
type Prog interface {
	// Name identifies the program in telemetry and errors.
	Name() string
	// Step inspects one block and decides what happens next.
	Step(key, block []byte) Step
}

// PushdownConfig bounds one installed program.
type PushdownConfig struct {
	// MaxHops is the per-lookup read budget (0 = DefaultMaxHops).
	MaxHops int
}

// PushdownStats counts pushdown-engine events.
type PushdownStats struct {
	Installs       int64 // programs admitted
	Lookups        int64 // traversals started
	Hits           int64 // lookups completed with a value
	Misses         int64 // lookups completed key-not-found
	Resubmits      int64 // device-internal reads that never surfaced
	HopsSaved      int64 // host crossings avoided (resubmits of finished lookups)
	BudgetExceeded int64 // lookups aborted by the hop budget
	ResetAborts    int64 // lookups aborted mid-traversal by a controller reset
	CorruptBlocks  int64 // lookups aborted by program block validation
	HostFallbacks  int64 // lookups the libOS ran on the CPU instead
	Inflight       int64 // traversals currently device-side (gauge)
}

// pushdownState is the engine state embedded in Device. Counters are
// atomics: steps run outside the device lock.
type pushdownState struct {
	progs []progSlot // handle = index; nil prog = uninstalled

	installs       atomic.Int64
	lookups        atomic.Int64
	hits           atomic.Int64
	misses         atomic.Int64
	resubmits      atomic.Int64
	hopsSaved      atomic.Int64
	budgetExceeded atomic.Int64
	resetAborts    atomic.Int64
	corruptBlocks  atomic.Int64
	hostFallbacks  atomic.Int64
	inflight       atomic.Int64

	travFree []*traversal
}

type progSlot struct {
	prog Prog
	cfg  PushdownConfig
}

// LookupResult is the single completion a pushdown traversal surfaces.
type LookupResult struct {
	// Value holds the found value. It aliases device memory and is valid
	// only for the duration of the completion callback (the DMA window);
	// copy it out to keep it.
	Value []byte
	// Found distinguishes a clean miss (Err == nil, Found == false) from
	// a hit.
	Found bool
	// Hops is the number of block reads the traversal performed,
	// including the one that failed — the budget is always accounted.
	Hops int
	// Cost is the accumulated virtual device time: per-hop read + program
	// step, plus the final value's DMA to the host.
	Cost simclock.Lat
	// Err is the typed error that ended the traversal, if any.
	Err error
}

// traversal is one in-flight pushdown lookup. Instances recycle through
// a freelist; onRead is bound once so resubmission allocates nothing.
type traversal struct {
	d      *Device
	prog   Prog
	budget int
	key    [MaxKeyLen]byte
	keyLen int
	hops   int
	cost   simclock.Lat
	done   func(LookupResult)
	onRead func(Completion)
}

// InstallPushdown admits a program into the device's pushdown slot table
// and returns its handle. Admission enforces the sandbox bounds the
// device refuses to outsource: a present program and a hop budget within
// MaxHopBudget.
func (d *Device) InstallPushdown(prog Prog, cfg PushdownConfig) (int, error) {
	if prog == nil {
		return 0, fmt.Errorf("%w: nil program", ErrBadProg)
	}
	if cfg.MaxHops == 0 {
		cfg.MaxHops = DefaultMaxHops
	}
	if cfg.MaxHops < 1 || cfg.MaxHops > MaxHopBudget {
		return 0, fmt.Errorf("%w: hop budget %d outside [1, %d]", ErrBadProg, cfg.MaxHops, MaxHopBudget)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pd.progs = append(d.pd.progs, progSlot{prog: prog, cfg: cfg})
	d.pd.installs.Add(1)
	return len(d.pd.progs) - 1, nil
}

// UninstallPushdown removes the program at handle; in-flight traversals
// finish with the program they started with.
func (d *Device) UninstallPushdown(handle int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if handle >= 0 && handle < len(d.pd.progs) {
		d.pd.progs[handle] = progSlot{}
	}
}

// SubmitLookup starts a pushdown traversal: read rootLBA, run the
// program at handle over each completed block, follow its verdicts
// device-side, and deliver exactly one LookupResult to done — the single
// host crossing of the whole lookup. The key is copied; the caller may
// reuse it immediately. done runs from whichever goroutine pumps the
// device, like any completion continuation.
func (d *Device) SubmitLookup(handle, rootLBA int, key []byte, done func(LookupResult)) error {
	if len(key) > MaxKeyLen {
		return fmt.Errorf("%w: %d bytes", ErrKeyTooLong, len(key))
	}
	d.mu.Lock()
	if handle < 0 || handle >= len(d.pd.progs) || d.pd.progs[handle].prog == nil {
		d.mu.Unlock()
		return ErrNoProg
	}
	slot := d.pd.progs[handle]
	t := d.getTraversalLocked()
	t.prog = slot.prog
	t.budget = slot.cfg.MaxHops
	t.keyLen = copy(t.key[:], key)
	t.hops = 0
	t.cost = 0
	t.done = done
	_, err := d.submitLocked(Command{Op: OpRead, LBA: rootLBA}, t.onRead, true)
	if err != nil {
		d.putTraversalLocked(t)
		d.mu.Unlock()
		return err
	}
	d.pd.lookups.Add(1)
	d.pd.inflight.Add(1)
	d.mu.Unlock()
	return nil
}

func (d *Device) getTraversalLocked() *traversal {
	if n := len(d.pd.travFree); n > 0 {
		t := d.pd.travFree[n-1]
		d.pd.travFree = d.pd.travFree[:n-1]
		return t
	}
	t := &traversal{d: d}
	t.onRead = t.step
	return t
}

func (d *Device) putTraversalLocked(t *traversal) {
	t.prog = nil
	t.done = nil
	d.pd.travFree = append(d.pd.travFree, t)
}

// step is the continuation of every read a traversal submits: it runs
// the program over the block in the completion path and acts on the
// verdict.
func (t *traversal) step(c Completion) {
	d := t.d
	t.cost += c.Cost
	if c.Err != nil {
		// The typed error completion: a reset (or injected error) ends
		// the traversal here, hop budget accounted, block already
		// recycled or never allocated.
		d.recycleBlock(c.Data)
		if errors.Is(c.Err, ErrDeviceReset) {
			d.pd.resetAborts.Add(1)
		}
		t.finish(LookupResult{Err: c.Err})
		return
	}
	t.hops++
	// The program runs at the device's offloaded per-element rate.
	t.cost += d.model.OffloadedFilterCost()
	s := t.prog.Step(t.key[:t.keyLen], c.Data)
	switch s.Kind {
	case StepNext:
		d.recycleBlock(c.Data)
		if s.NextLBA < 0 || s.NextLBA >= d.cfg.NumBlocks {
			t.finish(LookupResult{Err: fmt.Errorf("%w: next LBA %d out of range", ErrCorruptIndex, s.NextLBA)})
			return
		}
		if t.hops >= t.budget {
			d.pd.budgetExceeded.Add(1)
			t.finish(LookupResult{Err: fmt.Errorf("%w: %d hops", ErrHopBudget, t.hops)})
			return
		}
		d.pd.resubmits.Add(1)
		if _, err := d.submit(Command{Op: OpRead, LBA: s.NextLBA}, t.onRead, true); err != nil {
			t.finish(LookupResult{Err: err})
		}
	case StepDone:
		if len(s.Value) > MaxValueLen {
			d.recycleBlock(c.Data)
			t.finish(LookupResult{Err: fmt.Errorf("%w: value %d bytes", ErrCorruptIndex, len(s.Value))})
			return
		}
		d.pd.hits.Add(1)
		d.pd.hopsSaved.Add(int64(t.hops - 1))
		// Only the final value DMAs to the host — that is the win.
		t.cost += d.model.DMACost(len(s.Value))
		t.finish(LookupResult{Value: s.Value, Found: true})
		// The value may alias the block; recycle only after the
		// callback consumed it.
		d.recycleBlock(c.Data)
	case StepMiss:
		d.recycleBlock(c.Data)
		d.pd.misses.Add(1)
		d.pd.hopsSaved.Add(int64(t.hops - 1))
		t.finish(LookupResult{})
	default: // StepCorrupt and anything unrecognised
		d.recycleBlock(c.Data)
		d.pd.corruptBlocks.Add(1)
		t.finish(LookupResult{Err: fmt.Errorf("%w: %q at hop %d", ErrCorruptIndex, t.prog.Name(), t.hops)})
	}
}

// finish delivers the traversal's single surfaced completion and
// recycles its state.
func (t *traversal) finish(r LookupResult) {
	r.Hops = t.hops
	r.Cost = t.cost
	d := t.d
	done := t.done
	done(r)
	d.pd.inflight.Add(-1)
	d.mu.Lock()
	d.putTraversalLocked(t)
	d.mu.Unlock()
}

// NoteHostFallback records one lookup the libOS chose to run on the host
// CPU instead of the device ("library OSes ... default to using the CPU
// if necessary"), so the fallback rate is observable next to the
// pushdown counters.
func (d *Device) NoteHostFallback() { d.pd.hostFallbacks.Add(1) }

// PushdownStats returns a snapshot of the pushdown-engine counters.
func (d *Device) PushdownStats() PushdownStats {
	return PushdownStats{
		Installs:       d.pd.installs.Load(),
		Lookups:        d.pd.lookups.Load(),
		Hits:           d.pd.hits.Load(),
		Misses:         d.pd.misses.Load(),
		Resubmits:      d.pd.resubmits.Load(),
		HopsSaved:      d.pd.hopsSaved.Load(),
		BudgetExceeded: d.pd.budgetExceeded.Load(),
		ResetAborts:    d.pd.resetAborts.Load(),
		CorruptBlocks:  d.pd.corruptBlocks.Load(),
		HostFallbacks:  d.pd.hostFallbacks.Load(),
		Inflight:       d.pd.inflight.Load(),
	}
}

// registerPushdownTelemetry lifts the pushdown counters into a registry
// under prefix (RegisterTelemetry appends ".pushdown" for it).
func (d *Device) registerPushdownTelemetry(r *telemetry.Registry, prefix string) {
	r.RegisterFunc(prefix+".installs", d.pd.installs.Load)
	r.RegisterFunc(prefix+".lookups", d.pd.lookups.Load)
	r.RegisterFunc(prefix+".hits", d.pd.hits.Load)
	r.RegisterFunc(prefix+".misses", d.pd.misses.Load)
	r.RegisterFunc(prefix+".resubmits", d.pd.resubmits.Load)
	r.RegisterFunc(prefix+".hops_saved", d.pd.hopsSaved.Load)
	r.RegisterFunc(prefix+".budget_exceeded", d.pd.budgetExceeded.Load)
	r.RegisterFunc(prefix+".reset_aborts", d.pd.resetAborts.Load)
	r.RegisterFunc(prefix+".corrupt_blocks", d.pd.corruptBlocks.Load)
	r.RegisterFunc(prefix+".host_fallbacks", d.pd.hostFallbacks.Load)
	r.RegisterFunc(prefix+".inflight", d.pd.inflight.Load)
}
