package core_test

import (
	"testing"

	demi "demikernel"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
)

// BenchmarkWaitAnyFanIn fences the WaitAny dispatch cost at high fan-in:
// 1024 outstanding pop tokens on a composed (filter-over-memory) queue,
// one completion delivered per iteration. The AnyWaiter subscription
// makes each wait O(n) once plus O(1) per completion; the previous
// implementation rescanned all n tokens with TryWait on every poll
// iteration, so this benchmark regresses hard if that scan ever comes
// back.
func BenchmarkWaitAnyFanIn(b *testing.B) {
	const fanIn = 1024
	n := demi.NewCluster(4242).MustSpawn(demi.Catnip, demi.WithHost(1))

	qmem := n.Queue()
	qf, err := n.Filter(qmem, func(sga.SGA) bool { return true })
	if err != nil {
		b.Fatal(err)
	}

	tokens := make([]queue.QToken, fanIn)
	for i := range tokens {
		qt, err := n.Pop(qf)
		if err != nil {
			b.Fatal(err)
		}
		tokens[i] = qt
	}
	payload := sga.New([]byte("x"))

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptok, err := n.Push(qmem, payload)
		if err != nil {
			b.Fatal(err)
		}
		widx, c, err := n.WaitAny(tokens)
		if err != nil {
			b.Fatal(err)
		}
		c.SGA.Free()
		if _, _, err := n.TryWait(ptok); err != nil {
			b.Fatal(err)
		}
		// Re-arm the consumed pop so fan-in stays constant.
		qt, err := n.Pop(qf)
		if err != nil {
			b.Fatal(err)
		}
		tokens[widx] = qt
	}
}
