// Command demi-stat is the observability dashboard the paper argues a
// kernel-bypass OS still owes its operators (§2: "OS functionality" does
// not stop at the data path). It runs an instrumented E1-style echo
// workload over the catnip libOS and reports, per layer, what the
// telemetry registry, qtoken span tables, and event tracer saw:
//
//   - a before/after diff of every registered counter (fabric, NIC,
//     netstack, membuf, frame pool, completer, sched),
//   - per-queue-descriptor push/pop latency percentiles from the qtoken
//     span tables on both sides of the connection,
//   - optionally (-trace) a chrome://tracing JSON timeline of device and
//     protocol events.
//
// With -chaos the run executes under fabric impairments AND a scheduled
// mid-run crash/restart of the server node (the client rides it out via
// redial-and-replay failover), so the dashboard shows retransmits,
// injected loss, corruption counters, the lifecycle.* crash/restart
// counters, and a timeline of every fired chaos event.
//
// With -selftest demi-stat instead audits counter consistency: it runs
// an impaired echo workload — including a full crash/restart of the
// server halfway through — quiesces, and checks the frame conservation
// laws that must hold if every layer counts honestly, even across a
// stack incarnation boundary:
//
//	fabric: ΣTxFrames + InjectedDup ==
//	        Delivered + InjectedLoss + LinkDownDrops + DroppedRxFull
//	NIC:    port.Delivered == RxFrames + RxDropped + FilterDrops
//	stack:  nic.RxFrames == ΣFramesIn (all incarnations)
//	        + Σ(ring occupancy) + RxFlushed
//
// (RxFlushed counts ring frames the device reclaimed on behalf of a
// crashed stack — the safe-sharing cleanup a kernel used to do when a
// bypass process died.) It exits non-zero if any law is violated;
// `make tier1` runs it.
//
// With -shards N the workload is the RSS-sharded KV server instead of
// the echo pair: the dashboard shows the per-shard datapath (ops, mesh
// traffic, per-stack frames, virtual busy time) and rolls every
// shard.<i>.* counter up into a shard.*.* aggregate, so a skewed
// partition or a chatty mesh is visible at a glance.
//
// With -reshard the workload is an elastic KV node that grows 2→4
// shards and shrinks back to 2 live, under client load: the dashboard
// snapshots the generation gauges (kv_gen / kv_active / kv_migrating),
// the NIC steering state (rss_queues, pinned_flows), and the per-shard
// key and migration ledgers at each generation, so an operator can
// watch ownership hand off — and verify the migrate ledger balances.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
	"time"

	demi "demikernel"
	"demikernel/internal/apps/echo"
	"demikernel/internal/apps/failover"
	"demikernel/internal/apps/kv"
	"demikernel/internal/chaos"
	"demikernel/internal/fabric"
	"demikernel/internal/metrics"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// echoPair is a connected echo client over a served listener. With
// ringBatch > 0 round trips travel the syscall-free SQ/CQ rings,
// ringBatch at a time, instead of the per-op token path.
type echoPair struct {
	client    *echo.Client
	server    *echo.Server
	ringBatch int
}

func (p *echoPair) rtt(payload []byte, appCost simclock.Lat) (simclock.Lat, error) {
	if p.ringBatch > 0 {
		return p.client.RTTBatch(payload, appCost, p.ringBatch)
	}
	return p.client.RTT(payload, appCost)
}

// startEcho brings up the echo server on srvNode:7, backgrounds both
// nodes' pollers, and connects a client from cliNode. With ringBatch >
// 0 both sides attach SQ/CQ ring pairs and the data path goes
// syscall-free. The returned stop functions shut everything down in
// order.
func startEcho(c *demi.Cluster, srvNode, cliNode *demi.Node, ringBatch int) (*echoPair, []func(), error) {
	srv := echo.NewServer(srvNode.LibOS)
	srv.AppCost = c.Model.AppRequestNS
	if err := srv.Listen(7); err != nil {
		return nil, nil, err
	}
	if ringBatch > 0 {
		srv.EnableRing(ringCap)
	}
	stopS := srvNode.Background()
	stopC := cliNode.Background()
	stopServe := make(chan struct{})
	go srv.Run(stopServe)

	cli := echo.NewClient(cliNode.LibOS)
	if err := cli.Connect(c.AddrOf(srvNode, 7)); err != nil {
		stopC()
		stopS()
		close(stopServe)
		return nil, nil, err
	}
	if ringBatch > 0 {
		cli.EnableRing(ringCap)
	}
	stops := []func(){func() { close(stopServe) }, stopC, stopS}
	return &echoPair{client: cli, server: srv, ringBatch: ringBatch}, stops, nil
}

// ringCap is the SQ/CQ capacity demi-stat attaches in -ring mode.
const ringCap = 64

func main() {
	n := flag.Int("n", 2000, "number of echo round trips")
	payload := flag.Int("payload", 64, "echo payload bytes")
	seed := flag.Int64("seed", 42, "deterministic seed")
	chaos := flag.Bool("chaos", false, "run under fabric impairments (loss/dup/corrupt/reorder)")
	tracePath := flag.String("trace", "", "write a chrome://tracing JSON timeline to this path")
	selftest := flag.Bool("selftest", false, "run the counter-consistency audit and exit")
	shards := flag.Int("shards", 0, "run the sharded-KV dashboard over this many catnip shards")
	tenants := flag.Bool("tenants", false, "run the multi-tenant NIC dashboard (victims + a hostile tenant)")
	ringBatch := flag.Int("ring", 0, "run the echo workload over SQ/CQ rings, this many round trips per batch")
	httpView := flag.Bool("http", false, "run the HTTP/1.1 workload dashboard (httpd counters + latency tail)")
	httpRing := flag.Int("httpring", 0, "with -http: serve over SQ/CQ rings of this capacity instead of per-op tokens")
	storageView := flag.Bool("storage", false, "run the storage-pushdown dashboard (crossings/GET, spdk.pushdown.* counters, invariant audit)")
	reshardView := flag.Bool("reshard", false, "run the elastic-resharding dashboard (live 2→4→2 reshard under load, generation + steering gauges)")
	storageDepth := flag.Int("depth", 4, "with -storage: index depth for the lookup workload")
	flag.Parse()

	if *ringBatch > 0 && *chaos {
		fmt.Fprintln(os.Stderr, "demi-stat: -ring and -chaos are mutually exclusive (ring batches carry no failover)")
		os.Exit(2)
	}

	if *selftest {
		if err := runSelftest(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "demi-stat: selftest FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("demi-stat: counter-consistency selftest passed")
		return
	}
	if *shards > 0 {
		if err := runSharded(*seed, *shards, *n); err != nil {
			fmt.Fprintf(os.Stderr, "demi-stat: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *reshardView {
		if err := runReshard(*seed, *n); err != nil {
			fmt.Fprintf(os.Stderr, "demi-stat: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *storageView {
		if err := runStorage(*seed, *n, *storageDepth); err != nil {
			fmt.Fprintf(os.Stderr, "demi-stat: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *httpView {
		if err := runHTTP(*seed, *n, *httpRing); err != nil {
			fmt.Fprintf(os.Stderr, "demi-stat: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *tenants {
		if err := runTenants(*seed, *n); err != nil {
			fmt.Fprintf(os.Stderr, "demi-stat: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := runDashboard(*n, *payload, *seed, *chaos, *tracePath, *ringBatch); err != nil {
		fmt.Fprintf(os.Stderr, "demi-stat: %v\n", err)
		os.Exit(1)
	}
}

// rig is one instrumented catnip echo pair.
type rig struct {
	cluster *demi.Cluster
	server  *demi.Node
	client  *demi.Node
	reg     *telemetry.Registry
	stops   []func()
}

func (r *rig) close() {
	for _, f := range r.stops {
		f()
	}
}

func newRig(seed int64, imp fabric.Impairments, ringBatch int) (*rig, *echoPair, error) {
	c := demi.NewCluster(seed)
	srvNode := c.MustSpawn(demi.Catnip, demi.WithConfig(demi.NodeConfig{Host: 1, RTO: 2 * time.Millisecond}))
	cliNode := c.MustSpawn(demi.Catnip, demi.WithConfig(demi.NodeConfig{Host: 2, RTO: 2 * time.Millisecond}))
	// A silent peer (crashed after ACKing a request) is only detectable
	// through the wait deadline; keep it tight so failover engages fast.
	cliNode.WaitTimeout = 250 * time.Millisecond

	reg := telemetry.NewRegistry()
	c.Switch.RegisterTelemetry(reg, "fabric")
	fabric.DefaultFramePool.RegisterTelemetry(reg, "framepool")
	fabric.RegisterBurstTelemetry(reg, "burst")
	srvNode.RegisterTelemetry(reg, "server")
	cliNode.RegisterTelemetry(reg, "client")

	// Span tables on: every push/pop qtoken on either side is timed.
	srvNode.Spans().SetName("server")
	cliNode.Spans().SetName("client")
	srvNode.Spans().Enable()
	cliNode.Spans().Enable()

	pair, stops, err := startEcho(c, srvNode, cliNode, ringBatch)
	if err != nil {
		return nil, nil, err
	}
	r := &rig{cluster: c, server: srvNode, client: cliNode, reg: reg, stops: stops}
	// Impairments go live only after the connection is up, so the
	// handshake is clean and every injected fault lands on data frames.
	c.Switch.SetImpairments(imp)
	return r, pair, nil
}

func runDashboard(n, payload int, seed int64, underChaos bool, tracePath string, ringBatch int) error {
	var imp fabric.Impairments
	if underChaos {
		imp = fabric.Impairments{LossRate: 0.02, DupRate: 0.01, CorruptRate: 0.01, ReorderRate: 0.02}
	}
	if tracePath != "" {
		telemetry.Trace.Reset()
		telemetry.Trace.Enable()
		defer telemetry.Trace.Disable()
	}

	r, pair, err := newRig(seed, imp, ringBatch)
	if err != nil {
		return err
	}
	defer r.close()

	// Under -chaos the server dies and comes back mid-run; the client's
	// failover policy rides it out, and the engine's fired-event log
	// becomes the lifecycle timeline rendered below. The engine steps on
	// its own goroutine: the workload loop blocks inside failover while
	// the server is down, and the restart must fire regardless.
	var eng *chaos.Engine
	var engDone chan struct{}
	if underChaos {
		pair.client.EnableFailover(failover.Policy{
			MaxAttempts: 60, Base: 2 * time.Millisecond, Max: 40 * time.Millisecond, Jitter: 0.5, Seed: seed,
		})
		eng = chaos.New(seed)
		eng.NodeCrashRestart(30*time.Millisecond, 25*time.Millisecond, "server", r.server)
		engDone = make(chan struct{})
		go func() {
			defer close(engDone)
			eng.Run(60*time.Millisecond, time.Millisecond)
		}()
	}

	before := r.reg.Snapshot()
	buf := make([]byte, payload)
	var rtt metrics.Histogram
	step := 1
	if ringBatch > 0 {
		step = ringBatch
	}
	for i := 0; i < n; i += step {
		cost, err := pair.rtt(buf, r.cluster.Model.AppRequestNS)
		if err != nil {
			return fmt.Errorf("rtt %d: %w", i, err)
		}
		rtt.Record(cost)
	}
	if eng != nil {
		<-engDone
	}
	after := r.reg.Snapshot()

	s := rtt.Summarize()
	if ringBatch > 0 {
		fmt.Printf("echo run: %d RTTs x %dB over catnip rings (seed %d, batch %d)\n", n, payload, seed, ringBatch)
	} else {
		fmt.Printf("echo run: %d RTTs x %dB over catnip (seed %d, chaos=%v)\n", n, payload, seed, underChaos)
	}
	fmt.Printf("virtual RTT: p50=%v p99=%v mean=%v max=%v\n\n", s.P50, s.P99, s.Mean, s.Max)

	if ringBatch > 0 {
		printRings(map[string]*demi.LibOS{"client": r.client.LibOS, "server": r.server.LibOS})
	}

	fmt.Println("== per-layer counters (delta over the run) ==")
	fmt.Print(after.Diff(before).NonZero().String())
	fmt.Println()

	if eng != nil {
		printLifecycle(eng, after)
	}

	fmt.Println(r.client.Spans().Table().String())
	fmt.Println(r.server.Spans().Table().String())

	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := telemetry.Trace.ExportChromeJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s (open in chrome://tracing or ui.perfetto.dev)\n",
			telemetry.Trace.Len(), tracePath)
	}
	return nil
}

// printRings renders per-pair SQ/CQ ring state for each libOS: counters
// plus live occupancy — the operator's view of whether an app is
// keeping up with its completion queue or a poller is falling behind
// its submission queue.
func printRings(libs map[string]*demi.LibOS) {
	tbl := metrics.NewTable("SQ/CQ ring pairs",
		"side", "pair", "cap", "sq occ", "cq occ", "sq posted", "sq drained", "cq posted", "cq harvested", "outstanding")
	for _, side := range []string{"client", "server"} {
		l, ok := libs[side]
		if !ok {
			continue
		}
		for i, p := range l.Rings() {
			cnt := p.CountersSnapshot()
			tbl.AddRow(side, i, p.Cap(), p.SQLen(), p.CQLen(),
				cnt.SQPosted, cnt.SQDrained, cnt.CQPosted, cnt.CQHarvested, cnt.Outstanding)
		}
	}
	fmt.Println(tbl.String())
}

// printLifecycle renders the chaos engine's fired-event timeline plus
// every lifecycle.* counter from the final snapshot — the operator's
// view of who died, when, and how cleanly it came back.
func printLifecycle(eng *chaos.Engine, snap telemetry.Snapshot) {
	fmt.Println("== chaos lifecycle timeline ==")
	for _, ev := range eng.FiredEvents() {
		fmt.Printf("  t=%-10v %s (fired at %v)\n", ev.At, ev.Name, ev.FiredAt.Round(time.Millisecond))
	}
	for _, sm := range snap.Samples {
		if strings.Contains(sm.Name, ".lifecycle.") && sm.Value != 0 {
			fmt.Printf("  %-40s %d\n", sm.Name, sm.Value)
		}
	}
	fmt.Println()
}

// runSelftest runs an impaired echo workload — killing and restarting
// the server halfway — quiesces the world, and verifies the frame
// conservation laws across fabric, NIC, and stack incarnations.
func runSelftest(seed int64) error {
	imp := fabric.Impairments{LossRate: 0.05, DupRate: 0.03, CorruptRate: 0.03, ReorderRate: 0.05}
	r, pair, err := newRig(seed, imp, 0)
	if err != nil {
		return err
	}
	defer r.close()

	// The client must survive the server's death below.
	pair.client.EnableFailover(failover.Policy{
		MaxAttempts: 60, Base: 2 * time.Millisecond, Max: 40 * time.Millisecond, Jitter: 0.5, Seed: seed,
	})

	buf := make([]byte, 64)
	for i := 0; i < 400; i++ {
		if i == 200 {
			// Kill the server mid-workload: rings flush, qtokens abort,
			// the link drops. Then bring it back and let the client's
			// failover redial. The conservation laws below must balance
			// across the incarnation boundary.
			if _, err := r.server.Crash(); err != nil {
				return fmt.Errorf("crash: %w", err)
			}
			time.Sleep(5 * time.Millisecond)
			if err := r.server.Restart(); err != nil {
				return fmt.Errorf("restart: %w", err)
			}
		}
		if _, err := pair.rtt(buf, 0); err != nil {
			return fmt.Errorf("rtt %d: %w", i, err)
		}
	}
	recon, replays := pair.client.FailoverStats()
	if recon == 0 || replays == 0 {
		return fmt.Errorf("failover never engaged across the crash (reconnects=%d replays=%d)", recon, replays)
	}

	// Quiesce: stop injecting faults, release any frame held by the
	// reorder buffer, then pump until every in-flight frame has landed
	// in a counter somewhere (retransmission timers may still fire once;
	// poll across a few RTO periods).
	r.cluster.Switch.SetImpairments(fabric.Impairments{})
	r.cluster.Switch.Flush()
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		r.cluster.Poll()
		r.cluster.Switch.Flush()
		time.Sleep(time.Millisecond)
	}

	sw := r.cluster.Switch
	fs := sw.Stats()
	var sumTx int64
	for id := 0; id < sw.NumPorts(); id++ {
		sumTx += sw.PortStats(id).TxFrames
	}
	// Law 1 — the wire loses nothing silently. Every transmitted frame
	// (plus every injected duplicate) is either delivered or accounted to
	// a named drop reason. (Holds exactly on a 2-port switch, where a
	// flood delivers exactly one copy.)
	lhs := sumTx + fs.InjectedDup
	rhs := fs.Delivered + fs.InjectedLoss + fs.LinkDownDrops + fs.DroppedRxFull
	fmt.Printf("fabric: tx=%d dup=%d | delivered=%d loss=%d linkdown=%d rxfull=%d\n",
		sumTx, fs.InjectedDup, fs.Delivered, fs.InjectedLoss, fs.LinkDownDrops, fs.DroppedRxFull)
	if lhs != rhs {
		return fmt.Errorf("fabric conservation violated: tx+dup=%d != delivered+loss+linkdown+rxfull=%d", lhs, rhs)
	}

	// Laws 2 and 3 — per node: every frame the fabric delivered to the
	// NIC's port is in a device counter, and every frame the device
	// counted as received is either in the stack's FramesIn or still
	// sitting in a receive ring.
	for _, node := range []*demi.Node{r.server, r.client} {
		dev := node.Catnip.Device()
		// Force a wire drain so port-delivered frames land in NIC counters.
		dev.QueueDepth(0)
		ds := dev.Stats()
		ps := sw.PortStats(dev.PortID())
		if ps.Delivered != ds.RxFrames+ds.RxDropped+ds.FilterDrops {
			return fmt.Errorf("nic conservation violated on port %d: delivered=%d != rx=%d+dropped=%d+filtered=%d",
				dev.PortID(), ps.Delivered, ds.RxFrames, ds.RxDropped, ds.FilterDrops)
		}
		node.Poll() // ingest anything the forced drain just ringed
		ds = dev.Stats()
		var occ int64
		for q := 0; q < dev.NumRxQueues(); q++ {
			occ += int64(dev.RxOccupancy(q))
		}
		// Cumulative across incarnations: a crashed-and-restarted stack
		// folds its dead predecessors' counters into StackStats, and the
		// frames the device flushed on the dead stack's behalf are in
		// RxFlushed — both sides of the crash stay on the books.
		st := node.Catnip.StackStats()
		if ds.RxFrames != st.FramesIn+occ+ds.RxFlushed {
			return fmt.Errorf("stack conservation violated on port %d: nic rx=%d != frames_in=%d + ring=%d + flushed=%d",
				dev.PortID(), ds.RxFrames, st.FramesIn, occ, ds.RxFlushed)
		}
		fmt.Printf("node port %d: delivered=%d rx=%d dropped=%d frames_in=%d ring=%d flushed=%d\n",
			dev.PortID(), ps.Delivered, ds.RxFrames, ds.RxDropped, st.FramesIn, occ, ds.RxFlushed)
	}
	return nil
}

// shardMetricRe matches a per-shard metric name, capturing the prefix
// up to ".shard", the shard index, and the metric suffix.
var shardMetricRe = regexp.MustCompile(`^(.*\.shard)\.(\d+)\.(.+)$`)

// aggregateShards rolls every <p>.shard.<i>.<rest> sample up into one
// <p>.shard.*.<rest> sample summed across shards, preserving samples
// that are not per-shard. The result is re-sorted by construction of
// Snapshot renders (stable map-free pass keeps first-seen order, which
// follows the sorted input).
func aggregateShards(s telemetry.Snapshot) telemetry.Snapshot {
	out := telemetry.Snapshot{When: s.When}
	idx := make(map[string]int)
	for _, sm := range s.Samples {
		name := sm.Name
		if m := shardMetricRe.FindStringSubmatch(name); m != nil {
			name = m[1] + ".*." + m[3]
		}
		if i, ok := idx[name]; ok {
			out.Samples[i].Value += sm.Value
			continue
		}
		idx[name] = len(out.Samples)
		out.Samples = append(out.Samples, telemetry.Sample{Name: name, Value: sm.Value})
	}
	return out
}

// runSharded drives an RSS-aligned KV workload over an n-shard catnip
// server and renders the per-shard datapath plus the cross-shard
// aggregate of every shard.<i>.* counter.
func runSharded(seed int64, shards, ops int) error {
	c := demi.NewCluster(seed)
	srvNode := c.MustSpawn(demi.Catnip, demi.WithHost(1), demi.WithShards(shards)).Sharded
	cliNode := c.MustSpawn(demi.Catnip, demi.WithHost(2))

	reg := telemetry.NewRegistry()
	c.Switch.RegisterTelemetry(reg, "fabric")
	srvNode.RegisterTelemetry(reg, "server")
	cliNode.RegisterTelemetry(reg, "client")

	server := kv.NewShardedServer(srvNode.Libs, &c.Model, srvNode.Mesh())
	server.RegisterTelemetry(reg, "server.shard")
	const port = 6379
	if err := server.Listen(port); err != nil {
		return err
	}
	stop := make(chan struct{})
	wg := server.Run(stop)
	defer func() { close(stop); wg.Wait() }()
	stopCli := cliNode.Background()
	defer stopCli()

	cli, err := kv.NewShardedClient(cliNode.LibOS, shards, func(i int) (demi.QD, error) {
		return c.Router().DialShard(cliNode, srvNode, port, i, uint16(4096*i+11))
	})
	if err != nil {
		return err
	}
	defer cli.Close()

	before := reg.Snapshot()
	val := []byte("0123456789abcdef0123456789abcdef")
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("stat-key-%04d", i)
		if _, err := cli.Set(key, val); err != nil {
			return fmt.Errorf("set %s: %w", key, err)
		}
		if _, _, found, err := cli.Get(key); err != nil || !found {
			return fmt.Errorf("get %s: found=%v err=%w", key, found, err)
		}
	}
	after := reg.Snapshot()

	fmt.Printf("sharded KV run: %d SET+GET pairs over %d catnip shards (seed %d)\n\n", ops, shards, seed)

	tbl := metrics.NewTable("Per-shard datapath (cumulative)",
		"shard", "conns", "gets", "sets", "fwd out", "fwd in", "keys", "busy (virt ms)", "frames in", "xs sent", "ring occ")
	var maxBusy int64
	for i := 0; i < shards; i++ {
		s := server.StatsOf(i)
		st := srvNode.Set.Shard(i).Stack().Stats()
		xs := srvNode.Mesh().StatsOf(i)
		if s.BusyVirtNS > maxBusy {
			maxBusy = s.BusyVirtNS
		}
		// Live SQ+CQ occupancy across the shard's attached ring pairs: a
		// nonzero residue after quiesce means an app stopped harvesting.
		ringOcc := 0
		for _, p := range srvNode.Libs[i].Rings() {
			ringOcc += p.SQLen() + p.CQLen()
		}
		tbl.AddRow(i, s.Connections, s.Gets, s.Sets, s.ForwardedOut, s.ForwardedIn, s.Keys,
			fmt.Sprintf("%.3f", float64(s.BusyVirtNS)/1e6), st.FramesIn, xs.Sent, ringOcc)
	}
	fmt.Println(tbl.String())
	if maxBusy > 0 {
		fmt.Printf("virtual throughput (busiest shard gates): %.1f kOps/s\n\n",
			float64(server.TotalOps())/(float64(maxBusy)/1e9)/1e3)
	}

	fmt.Println("== shard.*.* aggregate across shards (delta over the run) ==")
	fmt.Print(aggregateShards(after.Diff(before)).NonZero().String())
	return nil
}
