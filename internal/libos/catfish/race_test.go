//go:build race

package catfish

// raceEnabled gates test assertions that cannot hold under the race
// detector: sync.Pool deliberately drops a fraction of Puts when built
// with -race (to widen the interleaving space), so deterministic
// recycling and zero-alloc fences are only meaningful without it.
const raceEnabled = true
