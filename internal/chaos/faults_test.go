package chaos

import (
	"testing"
	"time"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
)

// fakeNode records lifecycle calls; it stands in for demikernel.Node in
// NodeCrashRestart's schedule.
type fakeNode struct {
	crashes, restarts int
	order             []string
}

func (f *fakeNode) Crash() (int, error) {
	f.crashes++
	f.order = append(f.order, "crash")
	return 3, nil
}

func (f *fakeNode) Restart() error {
	f.restarts++
	f.order = append(f.order, "restart")
	return nil
}

func TestNodeCrashRestartSchedulesBothPhases(t *testing.T) {
	e := New(11)
	n := &fakeNode{}
	e.NodeCrashRestart(0, 3*time.Millisecond, "srv", n)
	e.Run(5*time.Millisecond, time.Millisecond)
	if n.crashes != 1 || n.restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", n.crashes, n.restarts)
	}
	if len(n.order) != 2 || n.order[0] != "crash" || n.order[1] != "restart" {
		t.Fatalf("order = %v", n.order)
	}
	fired := e.Fired()
	if len(fired) != 2 || fired[0] != "node-crash(srv)" || fired[1] != "node-restart(srv)" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestFiredEventsCarryOffsets(t *testing.T) {
	e := New(12)
	e.At(0, "now", func() {})
	e.At(2*time.Millisecond, "later", func() {})
	e.Run(4*time.Millisecond, time.Millisecond)
	evs := e.FiredEvents()
	if len(evs) != 2 {
		t.Fatalf("FiredEvents = %v", evs)
	}
	if evs[0].Name != "now" || evs[0].At != 0 {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Name != "later" || evs[1].At != 2*time.Millisecond {
		t.Fatalf("second event = %+v", evs[1])
	}
	for _, ev := range evs {
		if ev.FiredAt < ev.At {
			t.Fatalf("event %q fired before its offset: %+v", ev.Name, ev)
		}
	}
}

func ethFrame(dst, src fabric.MAC) fabric.Frame {
	data := make([]byte, 0, 18)
	data = append(data, dst[:]...)
	data = append(data, src[:]...)
	data = append(data, 0x08, 0x00, 0xDE, 0xAD)
	return fabric.Frame{Data: data}
}

// The gray failure: A→B blocked, B→A flowing. B still hears A and
// believes the path healthy; A's frames die counted in AsymDrops.
func TestAsymmetricPartitionIsOneWay(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 21)
	macA := fabric.MAC{2, 0, 0, 0, 0, 0xA}
	macB := fabric.MAC{2, 0, 0, 0, 0, 0xB}
	pa := sw.NewPort(0)
	pb := sw.NewPort(0)
	// Teach the switch both MACs so unicast forwarding (not flood) is
	// what the block intercepts.
	pa.Send(ethFrame(macB, macA))
	pb.Poll()
	pb.Send(ethFrame(macA, macB))
	pa.Poll()

	e := New(21)
	e.AsymmetricPartition(0, 3*time.Millisecond, sw, pa.ID(), pb.ID())
	e.Start()
	e.Step() // partition up

	pa.Send(ethFrame(macB, macA)) // A→B: blocked
	if _, ok := pb.Poll(); ok {
		t.Fatal("A→B frame crossed an asymmetric partition")
	}
	pb.Send(ethFrame(macA, macB)) // B→A: flows
	if _, ok := pa.Poll(); !ok {
		t.Fatal("B→A frame dropped by a block on the opposite direction")
	}
	if d := sw.Stats().AsymDrops; d != 1 {
		t.Fatalf("AsymDrops = %d, want 1", d)
	}

	// Heal fires at +3ms; afterwards A→B flows again.
	for !e.Done() {
		e.Step()
		time.Sleep(time.Millisecond)
	}
	pa.Send(ethFrame(macB, macA))
	if _, ok := pb.Poll(); !ok {
		t.Fatal("A→B still blocked after heal")
	}
}

func TestClockSkewFaultSkewsTheClock(t *testing.T) {
	clk := simclock.NewDriftClock()
	e := New(31)
	e.ClockSkew(0, clk, 500, 2*time.Second)
	e.Start()
	e.Step()
	ppm, off := clk.Skew()
	if ppm != 500 || off != 2*time.Second {
		t.Fatalf("Skew after fault = %v, %v", ppm, off)
	}
	if name := e.Fired()[0]; name != "clock-skew(ppm=500,offset=2s)" {
		t.Fatalf("event name = %q", name)
	}
}
