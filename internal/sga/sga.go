// Package sga implements scatter-gather arrays, the atomic unit of I/O in
// the Demikernel queue abstraction (§4.2, §4.3 of the paper).
//
// A scatter-gather array (SGA) is an ordered list of byte segments that is
// pushed into and popped out of Demikernel I/O queues as a single unit: "a
// scatter-gather array pushed into a Demikernel queue always pops out as a
// single element". The package also provides the wire framing a libOS
// inserts when carrying SGAs over a byte-stream transport such as TCP
// (§5.2), including an incremental decoder that tolerates arbitrary
// fragmentation of the underlying stream.
package sga

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Limits on a well-formed SGA. These mirror the fixed bounds a hardware
// descriptor format would impose while staying far above what the
// experiments need.
const (
	// MaxSegments is the maximum number of segments in one SGA.
	MaxSegments = 256
	// MaxSegmentLen is the maximum length of one segment in bytes.
	MaxSegmentLen = 1 << 24
	// MaxTotalLen is the maximum total payload of one SGA in bytes.
	MaxTotalLen = 1 << 26
)

// Errors returned by validation and unmarshalling.
var (
	ErrTooManySegments = errors.New("sga: too many segments")
	ErrSegmentTooLarge = errors.New("sga: segment too large")
	ErrTotalTooLarge   = errors.New("sga: total payload too large")
	ErrShortBuffer     = errors.New("sga: short buffer")
	ErrCorruptFrame    = errors.New("sga: corrupt frame")
)

// Segment is one contiguous run of bytes in a scatter-gather array.
type Segment struct {
	Buf []byte
}

// SGA is a scatter-gather array: the atomic queue element of the
// Demikernel I/O abstraction. The zero value is an empty, valid SGA.
//
// An SGA popped from a libOS queue may own device buffers; Free returns
// them to the owning memory manager. Freeing is idempotent and freeing an
// SGA the application built itself is a no-op.
type SGA struct {
	Segments []Segment
	// Reg is an opaque registration token attached by the libOS memory
	// manager when the SGA's memory is already registered with a
	// kernel-bypass device (§4.5). Transports use it to take the
	// zero-copy path; application code never inspects it.
	Reg  any
	free func()
}

// New builds an SGA over the given segments without copying them.
func New(segs ...[]byte) SGA {
	s := SGA{Segments: make([]Segment, len(segs))}
	for i, b := range segs {
		s.Segments[i] = Segment{Buf: b}
	}
	return s
}

// FromBytes builds a single-segment SGA over b without copying.
func FromBytes(b []byte) SGA { return New(b) }

// WithFree returns a copy of s that invokes fn exactly once when freed.
// Libraries allocating device memory for an SGA use this to attach the
// release of that memory (free-protection is the memory manager's job;
// see package membuf).
func (s SGA) WithFree(fn func()) SGA {
	s.free = fn
	return s
}

// Free releases any libOS-owned buffers behind the SGA. It is safe to call
// on the zero value and safe to call more than once.
func (s *SGA) Free() {
	if s.free != nil {
		fn := s.free
		s.free = nil
		fn()
	}
}

// Len returns the total payload length in bytes.
func (s SGA) Len() int {
	n := 0
	for _, seg := range s.Segments {
		n += len(seg.Buf)
	}
	return n
}

// NumSegments returns the number of segments.
func (s SGA) NumSegments() int { return len(s.Segments) }

// Bytes flattens the SGA into one newly allocated contiguous buffer.
// It is intended for tests and small control-path uses; data-path code
// should iterate segments to stay zero-copy.
func (s SGA) Bytes() []byte {
	out := make([]byte, 0, s.Len())
	for _, seg := range s.Segments {
		out = append(out, seg.Buf...)
	}
	return out
}

// Clone returns a deep copy of the SGA with freshly allocated segments and
// no free hook.
func (s SGA) Clone() SGA {
	c := SGA{Segments: make([]Segment, len(s.Segments))}
	for i, seg := range s.Segments {
		b := make([]byte, len(seg.Buf))
		copy(b, seg.Buf)
		c.Segments[i] = Segment{Buf: b}
	}
	return c
}

// Equal reports whether two SGAs carry the same payload bytes with the
// same segmentation.
func (s SGA) Equal(o SGA) bool {
	if len(s.Segments) != len(o.Segments) {
		return false
	}
	for i := range s.Segments {
		if !bytes.Equal(s.Segments[i].Buf, o.Segments[i].Buf) {
			return false
		}
	}
	return true
}

// EqualBytes reports whether two SGAs carry the same payload bytes,
// ignoring segmentation boundaries.
func (s SGA) EqualBytes(o SGA) bool {
	if s.Len() != o.Len() {
		return false
	}
	return bytes.Equal(s.Bytes(), o.Bytes())
}

// Validate checks the SGA against the package limits.
func (s SGA) Validate() error {
	if len(s.Segments) > MaxSegments {
		return fmt.Errorf("%w: %d > %d", ErrTooManySegments, len(s.Segments), MaxSegments)
	}
	total := 0
	for i, seg := range s.Segments {
		if len(seg.Buf) > MaxSegmentLen {
			return fmt.Errorf("%w: segment %d is %d bytes", ErrSegmentTooLarge, i, len(seg.Buf))
		}
		total += len(seg.Buf)
	}
	if total > MaxTotalLen {
		return fmt.Errorf("%w: %d > %d", ErrTotalTooLarge, total, MaxTotalLen)
	}
	return nil
}

// String summarises the SGA for debugging.
func (s SGA) String() string {
	return fmt.Sprintf("sga{%d segs, %d bytes}", len(s.Segments), s.Len())
}

// Wire framing (§5.2): when a libOS carries SGAs over a byte stream it
// must insert framing so the receiver can reconstruct the scatter-gather
// boundaries. The frame layout is:
//
//	u32  payloadLen  total bytes of all segments
//	u32  numSegments
//	then per segment: u32 segLen, segLen bytes
//
// All integers are big-endian.

// headerLen is the fixed frame header size.
const headerLen = 8

// MarshalledSize returns the number of bytes Marshal will produce.
func (s SGA) MarshalledSize() int {
	return headerLen + 4*len(s.Segments) + s.Len()
}

// AppendMarshal appends the wire encoding of s to dst and returns the
// extended slice.
func (s SGA) AppendMarshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.Len()))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.Segments)))
	for _, seg := range s.Segments {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(seg.Buf)))
		dst = append(dst, seg.Buf...)
	}
	return dst
}

// Marshal returns the wire encoding of s.
func (s SGA) Marshal() []byte {
	return s.AppendMarshal(make([]byte, 0, s.MarshalledSize()))
}

// Unmarshal decodes one framed SGA from the front of b. It returns the
// decoded SGA and the number of bytes consumed. The returned SGA's
// segments alias b. If b does not yet hold a complete frame, Unmarshal
// returns ErrShortBuffer (callers doing stream reassembly should then wait
// for more bytes; see Framer).
func Unmarshal(b []byte) (SGA, int, error) {
	return UnmarshalInto(b, nil)
}

// UnmarshalInto is Unmarshal with caller-provided segment storage: the
// decoded segment headers are appended to segs[:0], so a caller that
// decodes in a loop (Framer) reuses one scratch slice instead of
// allocating per frame. The returned SGA's Segments alias segs's
// backing array (grown if needed) and its Bufs alias b.
func UnmarshalInto(b []byte, segs []Segment) (SGA, int, error) {
	if len(b) < headerLen {
		return SGA{}, 0, ErrShortBuffer
	}
	payloadLen := binary.BigEndian.Uint32(b[0:4])
	numSegs := binary.BigEndian.Uint32(b[4:8])
	if payloadLen > MaxTotalLen {
		return SGA{}, 0, fmt.Errorf("%w: payload %d", ErrCorruptFrame, payloadLen)
	}
	if numSegs > MaxSegments {
		return SGA{}, 0, fmt.Errorf("%w: %d segments", ErrCorruptFrame, numSegs)
	}
	need := headerLen + int(numSegs)*4 + int(payloadLen)
	if len(b) < need {
		return SGA{}, 0, ErrShortBuffer
	}
	segs = segs[:0]
	off := headerLen
	remaining := int(payloadLen)
	for i := 0; i < int(numSegs); i++ {
		segLen := int(binary.BigEndian.Uint32(b[off : off+4]))
		off += 4
		if segLen > remaining || segLen > MaxSegmentLen {
			return SGA{}, 0, fmt.Errorf("%w: segment %d length %d", ErrCorruptFrame, i, segLen)
		}
		segs = append(segs, Segment{Buf: b[off : off+segLen : off+segLen]})
		off += segLen
		remaining -= segLen
	}
	if remaining != 0 {
		return SGA{}, 0, fmt.Errorf("%w: %d unaccounted payload bytes", ErrCorruptFrame, remaining)
	}
	return SGA{Segments: segs}, off, nil
}
