package spdk

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"demikernel/internal/simclock"
)

// This file implements the block-resident sorted index a pushdown lookup
// traverses: a static B-tree bulk-built over raw device blocks, one node
// per block. It is the §5.3 idea taken one step further — not just an
// accelerator-specific *layout*, but one whose traversal can run where
// the data is (pushdown.go) instead of bouncing every node through the
// host.
//
// Node block layout (big-endian), one node per 4 KB block:
//
//	off 0  u32  nodeMagic
//	off 4  u16  level   (0 = leaf)
//	off 6  u16  nKeys
//	off 8  entries, packed:
//	       leaf:  u16 klen, u16 vlen, key, value
//	       inner: u16 klen, u32 childLBA, key
//
// Inner entries are sorted ascending; entry i's key is the smallest key
// of its subtree, so a lookup descends to the last entry whose key is
// <= the target and misses if the target precedes the first entry.
// The index is rebuilt at open time (it is derived state, like a cache);
// only the record log below it is recovered.

// nodeMagic marks every index node block.
const nodeMagic = 0xB7EE1DE5

// indexHdrLen is the fixed node header size.
const indexHdrLen = 8

// Index-build errors.
var (
	ErrIndexEntryTooBig = errors.New("spdk/index: entry exceeds block capacity")
	ErrIndexEmpty       = errors.New("spdk/index: no keys")
)

// KV is one key/value pair fed to BuildIndex.
type KV struct {
	Key, Val []byte
}

// Index describes a built block-resident index.
type Index struct {
	Root    int // root node LBA
	Levels  int // block reads per lookup (root..leaf)
	Depth   int // descents per lookup = Levels - 1
	Fanout  int
	NumKeys int
	// BuildCost is the accumulated virtual device cost of writing the
	// nodes.
	BuildCost simclock.Lat
}

// IndexStep is the canonical lookup step over one node block: the
// reference the device program wraps and the host fallback must agree
// with byte-for-byte (offload.BlockLookupSpec property-tests that).
//
// The whole node is validated — bounds and strictly ascending key order
// — before any verdict is returned, so a block that is corrupt anywhere
// is StepCorrupt everywhere: the device program and the host fallback
// cannot diverge on how far into a damaged block they happened to read.
func IndexStep(key, block []byte) Step {
	if len(block) < indexHdrLen || binary.BigEndian.Uint32(block[0:4]) != nodeMagic {
		return Step{Kind: StepCorrupt}
	}
	level := int(binary.BigEndian.Uint16(block[4:6]))
	nKeys := int(binary.BigEndian.Uint16(block[6:8]))
	if nKeys == 0 {
		return Step{Kind: StepCorrupt}
	}
	off := indexHdrLen
	var prev []byte
	var value []byte
	found := false
	child := -1
	for i := 0; i < nKeys; i++ {
		var k []byte
		if level == 0 {
			if off+4 > len(block) {
				return Step{Kind: StepCorrupt}
			}
			klen := int(binary.BigEndian.Uint16(block[off : off+2]))
			vlen := int(binary.BigEndian.Uint16(block[off+2 : off+4]))
			off += 4
			if off+klen+vlen > len(block) {
				return Step{Kind: StepCorrupt}
			}
			k = block[off : off+klen]
			if bytes.Equal(k, key) {
				found, value = true, block[off+klen:off+klen+vlen]
			}
			off += klen + vlen
		} else {
			if off+6 > len(block) {
				return Step{Kind: StepCorrupt}
			}
			klen := int(binary.BigEndian.Uint16(block[off : off+2]))
			c := int(binary.BigEndian.Uint32(block[off+2 : off+6]))
			off += 6
			if off+klen > len(block) {
				return Step{Kind: StepCorrupt}
			}
			k = block[off : off+klen]
			if bytes.Compare(k, key) <= 0 {
				child = c
			}
			off += klen
		}
		if i > 0 && bytes.Compare(prev, k) >= 0 {
			return Step{Kind: StepCorrupt}
		}
		prev = k
	}
	if level == 0 {
		if found {
			return Step{Kind: StepDone, Value: value}
		}
		return Step{Kind: StepMiss}
	}
	if child < 0 {
		// The target precedes every key in the tree.
		return Step{Kind: StepMiss}
	}
	return Step{Kind: StepNext, NextLBA: child}
}

// IndexProg is the device-side pushdown program over index node blocks.
type IndexProg struct{}

// Name implements Prog.
func (IndexProg) Name() string { return "blockindex" }

// Step implements Prog.
func (IndexProg) Step(key, block []byte) Step { return IndexStep(key, block) }

// BuildIndex bulk-builds a static index over kvs with the given fanout
// (entries per node; 0 = 8). alloc reserves n contiguous raw blocks and
// returns the first LBA — typically (*Store).AllocBlocks, so the index
// lives above the record log on the same namespace. Duplicate keys keep
// the last value.
func BuildIndex(dev *Device, alloc func(n int) (int, error), kvs []KV, fanout int) (*Index, error) {
	if fanout <= 0 {
		fanout = 8
	}
	if fanout > 0xFFFF {
		return nil, fmt.Errorf("spdk/index: fanout %d too large", fanout)
	}
	sorted := append([]KV(nil), kvs...)
	sort.SliceStable(sorted, func(i, j int) bool { return bytes.Compare(sorted[i].Key, sorted[j].Key) < 0 })
	// Dedupe, last value wins.
	uniq := sorted[:0]
	for _, kv := range sorted {
		if len(uniq) > 0 && bytes.Equal(uniq[len(uniq)-1].Key, kv.Key) {
			uniq[len(uniq)-1] = kv
			continue
		}
		uniq = append(uniq, kv)
	}
	if len(uniq) == 0 {
		return nil, ErrIndexEmpty
	}

	idx := &Index{Fanout: fanout, NumKeys: len(uniq)}
	writeNode := func(lba int, node []byte) error {
		c := dev.Execute(Command{Op: OpWrite, LBA: lba, Data: node})
		if c.Err != nil {
			return c.Err
		}
		idx.BuildCost += c.Cost
		return nil
	}

	// sep is one parent-level entry: the subtree's smallest key and its
	// node's LBA.
	type sep struct {
		key []byte
		lba int
	}

	// Leaf level.
	nLeaves := (len(uniq) + fanout - 1) / fanout
	base, err := alloc(nLeaves)
	if err != nil {
		return nil, err
	}
	var level []sep
	node := make([]byte, BlockSize)
	for i := 0; i < nLeaves; i++ {
		part := uniq[i*fanout : min((i+1)*fanout, len(uniq))]
		for b := range node {
			node[b] = 0
		}
		binary.BigEndian.PutUint32(node[0:4], nodeMagic)
		binary.BigEndian.PutUint16(node[4:6], 0)
		binary.BigEndian.PutUint16(node[6:8], uint16(len(part)))
		off := indexHdrLen
		for _, kv := range part {
			if len(kv.Key) > MaxKeyLen || len(kv.Val) > 0xFFFF || off+4+len(kv.Key)+len(kv.Val) > BlockSize {
				return nil, fmt.Errorf("%w: key %d + val %d bytes at offset %d", ErrIndexEntryTooBig, len(kv.Key), len(kv.Val), off)
			}
			binary.BigEndian.PutUint16(node[off:off+2], uint16(len(kv.Key)))
			binary.BigEndian.PutUint16(node[off+2:off+4], uint16(len(kv.Val)))
			off += 4
			off += copy(node[off:], kv.Key)
			off += copy(node[off:], kv.Val)
		}
		if err := writeNode(base+i, node); err != nil {
			return nil, err
		}
		level = append(level, sep{key: part[0].Key, lba: base + i})
	}
	idx.Levels = 1

	// Inner levels, bottom up, until a single root remains.
	for lvl := 1; len(level) > 1; lvl++ {
		nNodes := (len(level) + fanout - 1) / fanout
		base, err := alloc(nNodes)
		if err != nil {
			return nil, err
		}
		var parent []sep
		for i := 0; i < nNodes; i++ {
			part := level[i*fanout : min((i+1)*fanout, len(level))]
			for b := range node {
				node[b] = 0
			}
			binary.BigEndian.PutUint32(node[0:4], nodeMagic)
			binary.BigEndian.PutUint16(node[4:6], uint16(lvl))
			binary.BigEndian.PutUint16(node[6:8], uint16(len(part)))
			off := indexHdrLen
			for _, s := range part {
				if off+6+len(s.key) > BlockSize {
					return nil, fmt.Errorf("%w: separator %d bytes at offset %d", ErrIndexEntryTooBig, len(s.key), off)
				}
				binary.BigEndian.PutUint16(node[off:off+2], uint16(len(s.key)))
				binary.BigEndian.PutUint32(node[off+2:off+6], uint32(s.lba))
				off += 6
				off += copy(node[off:], s.key)
			}
			if err := writeNode(base+i, node); err != nil {
				return nil, err
			}
			parent = append(parent, sep{key: part[0].key, lba: base + i})
		}
		level = parent
		idx.Levels++
	}
	idx.Root = level[0].lba
	idx.Depth = idx.Levels - 1
	return idx, nil
}
