package membuf

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"unsafe"

	"demikernel/internal/simclock"
)

func newTestManager(opts ...Option) *Manager {
	model := simclock.Datacenter2019()
	return NewManager(&model, opts...)
}

// recordingSink records regions it was asked to register.
type recordingSink struct {
	mu      sync.Mutex
	regions map[uint64][]byte
}

func newRecordingSink() *recordingSink {
	return &recordingSink{regions: make(map[uint64][]byte)}
}

func (s *recordingSink) RegisterRegion(id uint64, mem []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.regions[id] = mem
}

func (s *recordingSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.regions)
}

func TestAllocBasics(t *testing.T) {
	m := newTestManager()
	b := m.Alloc(100)
	if len(b.Bytes()) != 100 {
		t.Fatalf("len = %d, want 100", len(b.Bytes()))
	}
	if b.Cap() < 100 {
		t.Fatalf("cap = %d, want >= 100", b.Cap())
	}
	b.Free()
	st := m.Stats()
	if st.Allocs != 1 || st.Recycled != 1 || st.LiveBuffers != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAllocPanicsOnBadSize(t *testing.T) {
	m := newTestManager()
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) should panic")
		}
	}()
	m.Alloc(0)
}

func TestSlabReuse(t *testing.T) {
	m := newTestManager()
	b1 := m.Alloc(64)
	p1 := &b1.Bytes()[0]
	b1.Free()
	b2 := m.Alloc(64)
	p2 := &b2.Bytes()[0]
	if p1 != p2 {
		t.Fatal("freed slab buffer was not reused")
	}
	if m.Stats().Regions != 1 {
		t.Fatalf("regions = %d, want 1", m.Stats().Regions)
	}
}

func TestOversizedAllocation(t *testing.T) {
	m := newTestManager()
	b := m.Alloc(1 << 20) // larger than any class
	if len(b.Bytes()) != 1<<20 {
		t.Fatalf("len = %d", len(b.Bytes()))
	}
	b.Free()
	st := m.Stats()
	if st.Recycled != 0 {
		t.Fatal("oversized buffers must not enter slab free lists")
	}
	if st.LiveBuffers != 0 {
		t.Fatalf("LiveBuffers = %d, want 0", st.LiveBuffers)
	}
}

func TestTransparentRegistration(t *testing.T) {
	m := newTestManager()
	sink := newRecordingSink()
	m.AttachDevice(sink)
	// No regions yet; first alloc creates and registers one.
	m.Alloc(64)
	if sink.count() != 1 {
		t.Fatalf("device saw %d regions, want 1", sink.count())
	}
	// A second device attached later sees existing regions too.
	sink2 := newRecordingSink()
	m.AttachDevice(sink2)
	if sink2.count() != 1 {
		t.Fatalf("late device saw %d regions, want 1", sink2.count())
	}
	st := m.Stats()
	if st.Registrations != 2 {
		t.Fatalf("registrations = %d, want 2", st.Registrations)
	}
	if st.RegistrationCost == 0 {
		t.Fatal("registration cost not charged")
	}
}

func TestRegistrationAmortised(t *testing.T) {
	// Many small allocations from one region must cost one registration,
	// not one per buffer (§4.5: the point of region registration).
	m := newTestManager()
	sink := newRecordingSink()
	m.AttachDevice(sink)
	var bufs []*Buffer
	for i := 0; i < 1000; i++ {
		bufs = append(bufs, m.Alloc(64))
	}
	st := m.Stats()
	if st.Registrations != int64(st.Regions) {
		t.Fatalf("registrations %d != regions %d", st.Registrations, st.Regions)
	}
	if st.Registrations >= 1000 {
		t.Fatalf("registration not amortised: %d registrations for 1000 allocs", st.Registrations)
	}
	for _, b := range bufs {
		b.Free()
	}
}

func TestFreeProtection(t *testing.T) {
	m := newTestManager()
	b := m.Alloc(64)
	b.HoldForIO() // device takes a reference
	b.Free()      // app frees while in flight — must be safe
	if !b.Freed() {
		t.Fatal("Freed() should report true after app free")
	}
	if m.Stats().LiveBuffers != 1 {
		t.Fatal("buffer recycled while device held it")
	}
	if m.Stats().DeferredFrees != 1 {
		t.Fatalf("DeferredFrees = %d, want 1", m.Stats().DeferredFrees)
	}
	// Buffer contents must still be addressable by the "device".
	_ = b.Bytes()[0]
	b.ReleaseFromIO() // device completes
	st := m.Stats()
	if st.LiveBuffers != 0 || st.Recycled != 1 {
		t.Fatalf("after device release: %+v", st)
	}
}

func TestDoubleFreeCounted(t *testing.T) {
	m := newTestManager()
	b := m.Alloc(64)
	b.HoldForIO() // keep a device ref so the slot isn't recycled/reused
	b.Free()
	b.Free()
	b.Free()
	if got := m.Stats().DoubleFrees; got != 2 {
		t.Fatalf("DoubleFrees = %d, want 2", got)
	}
	b.ReleaseFromIO()
}

func TestInFlight(t *testing.T) {
	m := newTestManager()
	b := m.Alloc(64)
	if b.InFlight() {
		t.Fatal("fresh buffer should not be in flight")
	}
	b.HoldForIO()
	if !b.InFlight() {
		t.Fatal("buffer with device ref should be in flight")
	}
	b.ReleaseFromIO()
	if b.InFlight() {
		t.Fatal("buffer should leave flight after device release")
	}
	b.Free()
}

func TestPinnedBytesGrow(t *testing.T) {
	m := newTestManager(WithRegionSize(4096), WithSizeClasses([]int{1024}))
	m.Alloc(1024)
	first := m.Stats().PinnedBytes
	if first != 4096 {
		t.Fatalf("pinned = %d, want 4096", first)
	}
	// Exhaust the region (4 slots) to force another region.
	for i := 0; i < 4; i++ {
		m.Alloc(1024)
	}
	if got := m.Stats().PinnedBytes; got != 8192 {
		t.Fatalf("pinned = %d, want 8192", got)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	m := newTestManager()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				b := m.Alloc(1 + r.Intn(60000))
				if r.Intn(2) == 0 {
					b.HoldForIO()
					b.Free()
					b.ReleaseFromIO()
				} else {
					b.Free()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	st := m.Stats()
	if st.LiveBuffers != 0 {
		t.Fatalf("leaked %d buffers", st.LiveBuffers)
	}
	if st.DoubleFrees != 0 {
		t.Fatalf("unexpected double frees: %d", st.DoubleFrees)
	}
}

// TestPropNoOverlappingBuffers: no two live buffers may share memory.
func TestPropNoOverlappingBuffers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := newTestManager(WithRegionSize(8192))
		type span struct{ lo, hi uintptr }
		var live []span
		for i := 0; i < 50; i++ {
			n := 1 + r.Intn(5000)
			b := m.Alloc(n)
			bs := b.Bytes()
			lo := uintptr(0)
			if len(bs) > 0 {
				lo = addrOf(&bs[0])
			}
			hi := lo + uintptr(len(bs))
			for _, s := range live {
				if lo < s.hi && s.lo < hi {
					return false // overlap
				}
			}
			live = append(live, span{lo, hi})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func addrOf(p *byte) uintptr {
	return uintptr(unsafe.Pointer(p))
}

// --- capacity cap (backpressure) tests ---

func TestCapacityCapExhaustion(t *testing.T) {
	// One 4 KiB region is all the cap allows: allocations succeed until
	// the region is full, then TryAlloc reports typed backpressure.
	m := newTestManager(WithRegionSize(4096), WithSizeClasses([]int{1024}), WithCapacity(4096))
	var bufs []*Buffer
	for {
		b, err := m.TryAlloc(1024)
		if err != nil {
			break
		}
		bufs = append(bufs, b)
	}
	if len(bufs) != 4 {
		t.Fatalf("allocated %d buffers from a 4x1KiB cap, want 4", len(bufs))
	}
	if _, err := m.TryAlloc(1024); err == nil || err != ErrNoMem && !isNoMem(err) {
		t.Fatalf("alloc past cap: %v, want ErrNoMem", err)
	}
	if m.Stats().NoMemFailures == 0 {
		t.Fatal("NoMemFailures never counted")
	}
	// Backpressure clears once the application frees: the pool recycles
	// without pinning new memory.
	bufs[0].Free()
	b, err := m.TryAlloc(1024)
	if err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	b.Free()
	if got := m.Stats().PinnedBytes; got != 4096 {
		t.Fatalf("pinned %d bytes, want exactly the 4096 cap", got)
	}
}

func isNoMem(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == ErrNoMem {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

func TestCapacityCapDoubleFreeDoesNotFreeCapacity(t *testing.T) {
	// A double free must not trick the pool into handing the same slot
	// to two owners under memory pressure.
	m := newTestManager(WithRegionSize(2048), WithSizeClasses([]int{1024}), WithCapacity(2048))
	a, err := m.TryAlloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	a.Free()
	a.Free() // double free: counted, ignored
	if m.Stats().DoubleFrees != 1 {
		t.Fatalf("DoubleFrees = %d, want 1", m.Stats().DoubleFrees)
	}
	b1, err1 := m.TryAlloc(1024)
	b2, err2 := m.TryAlloc(1024)
	if err1 != nil || err2 != nil {
		t.Fatalf("allocs after double free: %v %v", err1, err2)
	}
	if &b1.Bytes()[0] == &b2.Bytes()[0] {
		t.Fatal("double free produced two owners of the same slot")
	}
}

func TestCapacityCapUseAfterFreeProtection(t *testing.T) {
	// Free-protection must hold even at the capacity limit: a buffer
	// freed while the (simulated) device still holds it is deferred, so
	// the slot cannot recycle into a new owner mid-DMA.
	m := newTestManager(WithRegionSize(1024), WithSizeClasses([]int{1024}), WithCapacity(1024))
	b, err := m.TryAlloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	b.HoldForIO()
	b.Free() // deferred: the device still references the memory
	if _, err := m.TryAlloc(1024); err == nil {
		t.Fatal("slot recycled while the device still held it")
	}
	if m.Stats().DeferredFrees != 1 {
		t.Fatalf("DeferredFrees = %d, want 1", m.Stats().DeferredFrees)
	}
	b.ReleaseFromIO() // DMA done: the deferred free completes now
	c, err := m.TryAlloc(1024)
	if err != nil {
		t.Fatalf("alloc after I/O release: %v", err)
	}
	c.Free()
}

func TestCapacityCapConcurrentChurn(t *testing.T) {
	// Hammer a tiny capped pool from many goroutines (run under -race):
	// every goroutine either gets a buffer it exclusively owns or a
	// typed ErrNoMem — never a torn slot.
	m := newTestManager(WithRegionSize(4096), WithSizeClasses([]int{512}), WithCapacity(8192))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				b, err := m.TryAlloc(512)
				if err != nil {
					continue // backpressure: typed, retry later
				}
				// Exclusive ownership: scribble and verify.
				pat := byte(g)<<4 | byte(i&0xF)
				for j := range b.Bytes() {
					b.Bytes()[j] = pat
				}
				if rng.Intn(4) == 0 {
					b.HoldForIO()
					b.ReleaseFromIO()
				}
				for j := range b.Bytes() {
					if b.Bytes()[j] != pat {
						t.Errorf("slot torn: byte %d", j)
						break
					}
				}
				b.Free()
			}
		}(g)
	}
	wg.Wait()
	st := m.Stats()
	if st.PinnedBytes > 8192 {
		t.Fatalf("pinned %d bytes past the 8192 cap", st.PinnedBytes)
	}
	if st.LiveBuffers != 0 {
		t.Fatalf("%d buffers leaked", st.LiveBuffers)
	}
}
