package catnip_test

import (
	"bytes"
	"errors"
	"testing"

	demi "demikernel"
	"demikernel/internal/core"
)

func pair(t *testing.T, seed int64) (*demi.Cluster, *demi.Node, *demi.Node, func()) {
	t.Helper()
	c := demi.NewCluster(seed)
	srv := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	cli := c.MustSpawn(demi.Catnip, demi.WithHost(2))
	stop1 := srv.Background()
	stop2 := cli.Background()
	return c, srv, cli, func() { stop2(); stop1() }
}

func connect(t *testing.T, c *demi.Cluster, srv, cli *demi.Node, port uint16) (cqd, sqd demi.QD) {
	t.Helper()
	lqd, err := srv.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind(lqd, demi.Addr{Port: port}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(lqd); err != nil {
		t.Fatal(err)
	}
	cqd, err = cli.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect(cqd, c.AddrOf(srv, port)); err != nil {
		t.Fatal(err)
	}
	sqd, err = srv.Accept(lqd)
	if err != nil {
		t.Fatal(err)
	}
	return cqd, sqd
}

func TestAcceptOnNonListener(t *testing.T) {
	c, srv, _, cleanup := pair(t, 41)
	defer cleanup()
	_ = c
	qd, _ := srv.Socket()
	if _, _, err := srv.TryAccept(qd); !errors.Is(err, core.ErrNotListening) {
		t.Fatalf("err = %v", err)
	}
}

func TestPushBeforeConnectFails(t *testing.T) {
	_, srv, _, cleanup := pair(t, 42)
	defer cleanup()
	qd, _ := srv.Socket()
	qt, err := srv.Push(qd, demi.NewSGA([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := srv.Wait(qt)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Err == nil {
		t.Fatal("push on unconnected endpoint should fail")
	}
}

func TestLargeSGASegmentedOverMSS(t *testing.T) {
	// A 40 KB SGA crosses dozens of TCP segments; it must pop as one
	// atomic element with its three segments intact.
	c, srv, cli, cleanup := pair(t, 43)
	defer cleanup()
	cqd, sqd := connect(t, c, srv, cli, 80)

	big := bytes.Repeat([]byte{0xEE}, 40_000)
	s := demi.NewSGA([]byte("head"), big, []byte("tail"))
	if _, err := cli.BlockingPush(cqd, s); err != nil {
		t.Fatal(err)
	}
	comp, err := srv.BlockingPop(sqd)
	if err != nil {
		t.Fatal(err)
	}
	if comp.SGA.NumSegments() != 3 || !comp.SGA.Equal(s) {
		t.Fatalf("reassembly failed: %v", comp.SGA)
	}
	if cli.Catnip.Stack().Stats().TCPSegsSent < 20 {
		t.Fatalf("expected many segments, got %d", cli.Catnip.Stack().Stats().TCPSegsSent)
	}
}

func TestPipelinedPushes(t *testing.T) {
	// Many pushes in flight before any pop: FIFO order must hold.
	c, srv, cli, cleanup := pair(t, 44)
	defer cleanup()
	cqd, sqd := connect(t, c, srv, cli, 80)
	const n = 20
	var tokens []demi.QToken
	for i := 0; i < n; i++ {
		qt, err := cli.Push(cqd, demi.NewSGA([]byte{byte(i)}))
		if err != nil {
			t.Fatal(err)
		}
		tokens = append(tokens, qt)
	}
	if _, err := cli.WaitAll(tokens); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		comp, err := srv.BlockingPop(sqd)
		if err != nil {
			t.Fatal(err)
		}
		if comp.SGA.Bytes()[0] != byte(i) {
			t.Fatalf("pop %d returned %d: order broken", i, comp.SGA.Bytes()[0])
		}
	}
}

func TestPopFailsAfterPeerClose(t *testing.T) {
	c, srv, cli, cleanup := pair(t, 45)
	defer cleanup()
	cqd, sqd := connect(t, c, srv, cli, 80)
	qt, err := srv.Pop(sqd)
	if err != nil {
		t.Fatal(err)
	}
	cli.Close(cqd)
	comp, err := srv.Wait(qt)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Err == nil {
		t.Fatal("pop should fail once the peer closed")
	}
}

func TestAllocSGAIsRegistered(t *testing.T) {
	_, srv, _, cleanup := pair(t, 46)
	defer cleanup()
	s := srv.AllocSGA(512)
	if s.Reg == nil {
		t.Fatal("AllocSGA must attach a registration token")
	}
	if srv.Catnip.Device().Stats().Regions == 0 {
		t.Fatal("slab region never registered with the NIC")
	}
	s.Free()
}

func TestFeatures(t *testing.T) {
	_, srv, _, cleanup := pair(t, 47)
	defer cleanup()
	f := srv.Features()
	if !f.KernelBypass || f.HWTransport {
		t.Fatalf("catnip features wrong: %+v", f)
	}
	if len(f.SoftwareSupplied) < 3 {
		t.Fatalf("catnip must supply a full stack in software: %v", f.SoftwareSupplied)
	}
}

func TestBindThenLocalAddr(t *testing.T) {
	_, srv, _, cleanup := pair(t, 48)
	defer cleanup()
	qd, _ := srv.Socket()
	srv.Bind(qd, demi.Addr{Port: 1234})
	// Bind state is observable through Listen succeeding on that port.
	if err := srv.Listen(qd); err != nil {
		t.Fatal(err)
	}
	qd2, _ := srv.Socket()
	srv.Bind(qd2, demi.Addr{Port: 1234})
	if err := srv.Listen(qd2); err == nil {
		t.Fatal("double listen on one port succeeded")
	}
}

func TestEchoManyMessagesStress(t *testing.T) {
	c, srv, cli, cleanup := pair(t, 49)
	defer cleanup()
	cqd, sqd := connect(t, c, srv, cli, 80)
	for i := 0; i < 100; i++ {
		msg := demi.NewSGA([]byte{byte(i)}, bytes.Repeat([]byte{byte(i)}, i*17%900))
		if _, err := cli.BlockingPush(cqd, msg); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		comp, err := srv.BlockingPop(sqd)
		if err != nil {
			t.Fatalf("pop %d: %v", i, err)
		}
		if !comp.SGA.Equal(msg) {
			t.Fatalf("message %d corrupted", i)
		}
		if _, err := srv.BlockingPush(sqd, comp.SGA); err != nil {
			t.Fatalf("echo push %d: %v", i, err)
		}
		back, err := cli.BlockingPop(cqd)
		if err != nil {
			t.Fatalf("echo pop %d: %v", i, err)
		}
		if !back.SGA.Equal(msg) {
			t.Fatalf("echo %d corrupted", i)
		}
	}
}
