package netstack

import (
	"testing"

	"demikernel/internal/fabric"
)

// The regression this guards: the shared neighbor table used to have no
// expiry at all, so a MAC learned from a dead incarnation of a node
// shadowed the reborn one forever (a permanent black hole that only a
// lucky gratuitous-ARP race could clear). Generations make invalidation
// O(1) and total.
func TestNeighborTableGenerationInvalidation(t *testing.T) {
	tbl := NewNeighborTable()
	ip := IPv4Addr{10, 0, 0, 7}
	mac := fabric.MAC{2, 0, 0, 0, 0, 7}

	if _, ok := tbl.Lookup(ip); ok {
		t.Fatal("empty table resolved an IP")
	}
	tbl.Learn(ip, mac)
	if got, ok := tbl.Lookup(ip); !ok || got != mac {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}

	gen := tbl.Generation()
	tbl.InvalidateAll()
	if tbl.Generation() != gen+1 {
		t.Fatalf("generation did not advance: %d -> %d", gen, tbl.Generation())
	}
	if _, ok := tbl.Lookup(ip); ok {
		t.Fatal("stale-generation entry survived InvalidateAll")
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len after invalidation = %d", tbl.Len())
	}

	// Re-learning under the new generation resurrects the mapping.
	mac2 := fabric.MAC{2, 0, 0, 0, 0, 9}
	tbl.Learn(ip, mac2)
	if got, ok := tbl.Lookup(ip); !ok || got != mac2 {
		t.Fatalf("post-invalidation Lookup = %v, %v", got, ok)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len after relearn = %d", tbl.Len())
	}
}
