package netstack

import (
	"sync"

	"demikernel/internal/fabric"
)

// NeighborTable is an IP→MAC resolution table shared by the stacks of a
// sharded libOS. RSS hashes ARP traffic by source MAC, which would strand
// replies on whichever queue the sender's MAC happens to hash to; a
// sharded deployment instead steers ARP to shard 0 with a hardware
// filter (see catnip's sharded mode) and publishes what shard 0 learns
// here, where every sibling stack can read it.
//
// This is deliberately the only cross-shard state in the receive path,
// and it sits on the *miss* path only: each stack caches resolutions in
// its private ARP map, so steady-state packet processing never touches
// the shared table (§3.1: share-nothing on the data path, shared state
// only for rare control-plane work).
//
// Entries are generation-tagged: InvalidateAll bumps the table
// generation, making every entry learned under an older generation
// invisible to Lookup without touching the map. A restarted node calls
// it so a resolution learned from the *dead* incarnation of a stack
// cannot shadow the reborn one — without invalidation the table never
// expires and a stale neighbor black-holes the restarted node until its
// gratuitous ARP happens to win the race.
type NeighborTable struct {
	mu  sync.RWMutex
	m   map[IPv4Addr]neighborEntry
	gen uint64
}

type neighborEntry struct {
	mac fabric.MAC
	gen uint64
}

// NewNeighborTable returns an empty shared neighbor table.
func NewNeighborTable() *NeighborTable {
	return &NeighborTable{m: make(map[IPv4Addr]neighborEntry)}
}

// Learn records (or refreshes) a resolution, stamped with the current
// table generation.
func (t *NeighborTable) Learn(ip IPv4Addr, mac fabric.MAC) {
	t.mu.Lock()
	t.m[ip] = neighborEntry{mac: mac, gen: t.gen}
	t.mu.Unlock()
}

// Lookup returns the MAC for ip, if known under the current generation.
// Entries from before the last InvalidateAll are treated as misses.
func (t *NeighborTable) Lookup(ip IPv4Addr) (fabric.MAC, bool) {
	t.mu.RLock()
	e, ok := t.m[ip]
	gen := t.gen
	t.mu.RUnlock()
	if !ok || e.gen != gen {
		return fabric.MAC{}, false
	}
	return e.mac, true
}

// InvalidateAll advances the table generation, logically expiring every
// current entry in O(1). Stale map slots are overwritten by the next
// Learn for their IP.
func (t *NeighborTable) InvalidateAll() {
	t.mu.Lock()
	t.gen++
	t.mu.Unlock()
}

// Generation returns the current table generation (the number of
// InvalidateAll calls so far).
func (t *NeighborTable) Generation() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gen
}

// Len reports how many live (current-generation) resolutions the table
// holds.
func (t *NeighborTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, e := range t.m {
		if e.gen == t.gen {
			n++
		}
	}
	return n
}
