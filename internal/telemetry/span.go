package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"demikernel/internal/metrics"
	"demikernel/internal/simclock"
)

// This file implements per-qtoken operation spans: every queue operation
// is timestamped at four stages of its life —
//
//	issue   : the application called Push/Pop (a qtoken was allocated)
//	submit  : the libOS handed the operation to the device-side queue
//	done    : the completion arrived in the token table
//	consume : the application collected the completion (Wait/TryWait/
//	          event-loop dispatch)
//
// — and the record is attributed to the operation's queue descriptor.
// The latency fed into the per-queue histograms is the operation's
// accumulated *virtual* (simclock) cost, so the distributions line up
// with every other number the reproduction reports; the wall-clock stage
// stamps feed the event tracer timeline and the stage-delay averages
// (where completions sit before an event loop picks them up).
//
// The storage actually stamped per token lives inside the completer's
// token state (a small sidecar allocated only while spans are enabled),
// so the disabled hot path pays one atomic load and zero allocations.

// Span op kinds; values mirror queue.OpKind (which this package cannot
// import without a cycle).
const (
	SpanPush = 0
	SpanPop  = 1
)

// SpanRecord is one finished operation span, handed to a SpanTable by
// the completer at consume time. All *NS fields are wall-clock
// nanoseconds; zero means the stage was never stamped (e.g. spans were
// enabled mid-flight, or the op completed inline before submit).
type SpanRecord struct {
	QD   int32 // owning queue descriptor; -1 when unattributed
	Kind int   // SpanPush or SpanPop
	Err  bool  // the operation completed with an error

	IssueNS   int64
	SubmitNS  int64
	DoneNS    int64
	ConsumeNS int64

	// VirtCost is the operation's accumulated virtual latency.
	VirtCost simclock.Lat
}

// queueKey identifies one per-queue, per-kind latency series.
type queueKey struct {
	qd   int32
	kind int
}

type queueLat struct {
	hist   metrics.Histogram // virtual cost per completed op
	errs   int64
	waitNS int64 // total done→consume wall delay
	opNS   int64 // total submit→done wall delay
	n      int64
}

// SpanTable aggregates operation spans for one completer (one libOS).
// Recording is gated on an atomic enable flag; when disabled every entry
// point returns after a single atomic load.
type SpanTable struct {
	enabled atomic.Bool

	mu     sync.Mutex
	name   string
	queues map[queueKey]*queueLat
}

// NewSpanTable returns a disabled span table labelled name (the label
// becomes the tracer category for this table's span events).
func NewSpanTable(name string) *SpanTable {
	return &SpanTable{name: name, queues: make(map[queueKey]*queueLat)}
}

// SetName relabels the table (core.LibOS names it after its transport).
func (t *SpanTable) SetName(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.name = name
}

// Name returns the table's label.
func (t *SpanTable) Name() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.name
}

// Enable turns span recording on.
func (t *SpanTable) Enable() { t.enabled.Store(true) }

// Disable turns span recording off. Aggregates survive for reporting.
func (t *SpanTable) Disable() { t.enabled.Store(false) }

// Enabled reports whether spans are being recorded. It is the hot-path
// gate: one atomic load.
func (t *SpanTable) Enabled() bool { return t.enabled.Load() }

// Record folds one finished span into the per-queue aggregates and, when
// the process tracer is live, emits the matching timeline events.
func (t *SpanTable) Record(r SpanRecord) {
	if !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	name := t.name
	k := queueKey{r.QD, r.Kind}
	q := t.queues[k]
	if q == nil {
		q = &queueLat{}
		t.queues[k] = q
	}
	q.n++
	if r.Err {
		q.errs++
	} else {
		q.hist.Record(r.VirtCost)
	}
	if r.DoneNS > 0 && r.ConsumeNS >= r.DoneNS {
		q.waitNS += r.ConsumeNS - r.DoneNS
	}
	start := r.SubmitNS
	if start == 0 {
		start = r.IssueNS
	}
	if start > 0 && r.DoneNS >= start {
		q.opNS += r.DoneNS - start
	}
	t.mu.Unlock()

	if Trace.Enabled() && start > 0 && r.DoneNS >= start {
		opName := "push"
		if r.Kind == SpanPop {
			opName = "pop"
		}
		Trace.Span(name, opName, r.QD, start, r.DoneNS-start, int64(r.VirtCost))
	}
}

// QueueSummary digests one queue's latency series.
type QueueSummary struct {
	QD   int32
	Kind int // SpanPush or SpanPop
	// Ops counts finished operations (including errors); Errs the subset
	// that completed with an error.
	Ops  int64
	Errs int64
	// Virtual-latency digest of the successful operations.
	Lat metrics.Summary
	// AvgOpWallNS is the mean wall-clock submit→done delay;
	// AvgConsumeWallNS the mean done→consume delay (how long completions
	// waited to be collected).
	AvgOpWallNS      int64
	AvgConsumeWallNS int64
}

// KindString names a span kind.
func KindString(kind int) string {
	if kind == SpanPop {
		return "pop"
	}
	return "push"
}

// Summaries returns one digest per (queue, kind) series, sorted by queue
// descriptor then kind, so reports are deterministic.
func (t *SpanTable) Summaries() []QueueSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]QueueSummary, 0, len(t.queues))
	for k, q := range t.queues {
		s := QueueSummary{QD: k.qd, Kind: k.kind, Ops: q.n, Errs: q.errs, Lat: q.hist.Summarize()}
		if q.n > 0 {
			s.AvgOpWallNS = q.opNS / q.n
			s.AvgConsumeWallNS = q.waitNS / q.n
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].QD != out[j].QD {
			return out[i].QD < out[j].QD
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Table renders the per-queue latency summaries as a metrics table
// (demi-stat's dashboard body).
func (t *SpanTable) Table() *metrics.Table {
	tbl := metrics.NewTable("per-queue operation latency ("+t.Name()+")",
		"qd", "op", "ops", "errs", "p50", "p99", "mean", "max")
	for _, s := range t.Summaries() {
		tbl.AddRow(s.QD, KindString(s.Kind), s.Ops, s.Errs, s.Lat.P50, s.Lat.P99, s.Lat.Mean, s.Lat.Max)
	}
	return tbl
}

// Reset drops all aggregates (recording state unchanged).
func (t *SpanTable) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.queues = make(map[queueKey]*queueLat)
}
