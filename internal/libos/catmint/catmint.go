// Package catmint is the RDMA library OS: it implements the Demikernel
// queue abstraction over the simulated RDMA verbs device (internal/rdma).
//
// Where catnip must supply an entire network stack, an RDMA NIC already
// provides reliable, message-oriented transport in hardware (Table 1,
// middle column); what it does NOT provide is exactly what the paper
// calls out in §2: "applications must still supply OS buffer management
// and flow control. Applications have to register memory before using it
// for I/O, and receivers must allocate enough buffers of the right size
// for senders." catmint supplies those pieces:
//
//   - a registered buffer pool (arena MRs carved into fixed slots), so
//     applications never register memory and registration cost is
//     amortised per arena, not per message (§4.5);
//
//   - receive-buffer management: a configurable number of receives is
//     kept posted on every queue pair, eliminating the paper's
//     too-few-buffers failure mode (RNR) that raw verbs applications
//     must handle themselves (the E13 experiment quantifies this).
//
// Pushes from SGAs allocated via AllocSGA travel zero-copy (the device
// gathers directly from registered memory); pushes from unregistered
// application memory are staged into a pool slot with the staging copy
// charged, which is what a real libOS would have to do.
package catmint

import (
	"errors"
	"fmt"
	"sync"

	"demikernel/internal/core"
	"demikernel/internal/fabric"
	"demikernel/internal/queue"
	"demikernel/internal/rdma"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
)

// SlotSize is the fixed message buffer size: the largest framed SGA one
// push may carry over catmint. It is deliberately larger than a power-of-
// two payload so 16 KiB application messages fit with framing overhead.
const SlotSize = 32 * 1024

// slotsPerArena slots are carved from each registered arena MR.
const slotsPerArena = 64

// DefaultPostedRecvs is how many receives the libOS keeps posted per
// queue pair.
const DefaultPostedRecvs = 32

// readyByte is the one-byte connection-ready marker the accepting side
// sends after posting its receives (framed SGAs are always >= 8 bytes,
// so it cannot collide with data).
const readyByte = 0xA5

// ErrMessageTooBig is returned when a framed SGA exceeds SlotSize.
var ErrMessageTooBig = errors.New("catmint: message exceeds slot size")

// Config tunes the transport.
type Config struct {
	MAC fabric.MAC
	// PostedRecvs overrides DefaultPostedRecvs (experiments lower it to
	// reproduce the RNR failure mode).
	PostedRecvs int
}

// Transport is the catmint libOS transport.
type Transport struct {
	model *simclock.CostModel
	dev   *rdma.Device
	pd    *rdma.PD
	scq   *rdma.CQ
	rcq   *rdma.CQ
	cfg   Config

	mu       sync.Mutex
	pool     []*slot // free slots
	arenas   int
	byQPN    map[uint32]*endpoint
	pending  map[uint64]*pendingOp // wrID -> op
	nextWRID uint64
	eps      []*endpoint
	// stats
	stagedCopies int64
	zeroCopyTx   int64
}

type slot struct {
	mr  *rdma.MR
	off int
}

func (s *slot) bytes() []byte { return s.mr.Bytes()[s.off : s.off+SlotSize] }

type pendingOp struct {
	kind queue.OpKind
	ep   *endpoint
	slot *slot
	done queue.DoneFunc
	cost simclock.Lat
	// onWC, when set, routes the raw completion to a one-sided
	// operation (see remote.go) instead of the queue machinery.
	onWC   func(rdma.WC)
	isRead bool
}

// New attaches a catmint instance to the fabric switch.
func New(model *simclock.CostModel, sw *fabric.Switch, cfg Config) *Transport {
	if cfg.PostedRecvs <= 0 {
		cfg.PostedRecvs = DefaultPostedRecvs
	}
	dev := rdma.New(model, sw, cfg.MAC)
	t := &Transport{
		model:   model,
		dev:     dev,
		pd:      dev.AllocPD(),
		cfg:     cfg,
		byQPN:   make(map[uint32]*endpoint),
		pending: make(map[uint64]*pendingOp),
	}
	t.scq = dev.CreateCQ()
	t.rcq = dev.CreateCQ()
	return t
}

// Name implements core.Transport.
func (t *Transport) Name() string { return "catmint" }

// Features implements core.Transport.
func (t *Transport) Features() core.Features {
	return core.Features{
		KernelBypass: true,
		HWTransport:  true,
		SoftwareSupplied: []string{
			"buffer management (posted receives)", "memory registration pooling",
			"sga framing", "flow control",
		},
	}
}

// Device exposes the RDMA device (for stats in experiments).
func (t *Transport) Device() *rdma.Device { return t.dev }

// StagedCopies reports pushes that had to stage unregistered memory.
func (t *Transport) StagedCopies() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stagedCopies
}

// ZeroCopyTx reports pushes that went out directly from registered
// memory.
func (t *Transport) ZeroCopyTx() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.zeroCopyTx
}

// allocSlot pops a free slot, registering a new arena when the pool is
// dry (one registration per arena: the §4.5 amortisation).
func (t *Transport) allocSlot() *slot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.allocSlotLocked()
}

func (t *Transport) allocSlotLocked() *slot {
	if len(t.pool) == 0 {
		arena := make([]byte, SlotSize*slotsPerArena)
		mr := t.pd.RegisterMemory(arena)
		t.arenas++
		for i := 0; i < slotsPerArena; i++ {
			t.pool = append(t.pool, &slot{mr: mr, off: i * SlotSize})
		}
	}
	s := t.pool[len(t.pool)-1]
	t.pool = t.pool[:len(t.pool)-1]
	return s
}

func (t *Transport) freeSlot(s *slot) {
	t.mu.Lock()
	t.pool = append(t.pool, s)
	t.mu.Unlock()
}

// Arenas returns how many arena registrations have been performed.
func (t *Transport) Arenas() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.arenas
}

// AllocSGA implements core.Transport: the returned single-segment SGA
// lives in a registered pool slot, so pushes of it are zero-copy.
func (t *Transport) AllocSGA(n int) sga.SGA {
	if n > SlotSize {
		// Oversized allocations fall back to heap memory (staged at
		// push time).
		return sga.New(make([]byte, n))
	}
	sl := t.allocSlot()
	s := sga.New(sl.bytes()[:n]).WithFree(func() { t.freeSlot(sl) })
	s.Reg = sl
	return s
}

// SocketUDP implements core.Transport; this libOS has no datagram path.
func (t *Transport) SocketUDP() (core.Endpoint, error) {
	return nil, core.ErrNotSupported
}

// Open implements core.Transport; catmint has no storage path.
func (t *Transport) Open(string) (queue.IoQueue, error) {
	return nil, core.ErrNotSupported
}

// Socket implements core.Transport.
func (t *Transport) Socket() (core.Endpoint, error) {
	ep := &endpoint{t: t}
	t.mu.Lock()
	t.eps = append(t.eps, ep)
	t.mu.Unlock()
	return ep, nil
}

// Poll implements core.Transport: pump the device, stage inbound
// connections, and route completions.
func (t *Transport) Poll() int {
	n := t.dev.Poll()

	// Stage inbound connections eagerly: the libOS (not the
	// application) posts the receive window and signals readiness, so a
	// peer that connects and immediately pushes never hits RNR — the
	// buffer-management burden §2 describes, carried by the libOS.
	t.mu.Lock()
	eps := append([]*endpoint(nil), t.eps...)
	t.mu.Unlock()
	for _, ep := range eps {
		n += ep.stageAccepts()
	}

	for _, wc := range t.rcq.Poll(0) {
		n++
		t.handleRecv(wc)
	}
	for _, wc := range t.scq.Poll(0) {
		n++
		t.handleSendComp(wc)
	}
	t.mu.Lock()
	eps = append(eps[:0], t.eps...)
	t.mu.Unlock()
	for _, ep := range eps {
		ep.serveWaiters()
	}
	return n
}

func (t *Transport) handleRecv(wc rdma.WC) {
	t.mu.Lock()
	op, ok := t.pending[wc.WRID]
	if ok {
		delete(t.pending, wc.WRID)
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	ep := op.ep
	// Keep the configured number of receives posted.
	ep.postRecv()
	if wc.Status != rdma.StatusSuccess {
		t.freeSlot(op.slot)
		ep.deliver(queue.Completion{Kind: queue.OpPop, Err: fmt.Errorf("catmint: recv failed: %v", wc.Status)})
		return
	}
	data := op.slot.bytes()[:wc.Len]
	if wc.Len == 1 && data[0] == readyByte {
		t.freeSlot(op.slot)
		ep.markReady()
		return
	}
	s, _, err := sga.Unmarshal(data)
	if err != nil {
		t.freeSlot(op.slot)
		ep.deliver(queue.Completion{Kind: queue.OpPop, Err: err})
		return
	}
	sl := op.slot
	s = s.WithFree(func() { t.freeSlot(sl) })
	ep.deliver(queue.Completion{Kind: queue.OpPop, SGA: s, Cost: wc.Cost})
}

func (t *Transport) handleSendComp(wc rdma.WC) {
	t.mu.Lock()
	op, ok := t.pending[wc.WRID]
	if ok {
		delete(t.pending, wc.WRID)
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	if op.onWC != nil {
		// One-sided operation: the callback may need the slot's bytes
		// (reads), so it runs before the slot recycles.
		op.onWC(wc)
		if op.slot != nil {
			t.freeSlot(op.slot)
		}
		return
	}
	if op.slot != nil {
		t.freeSlot(op.slot)
	}
	if op.done == nil {
		return // fire-and-forget (the ready marker)
	}
	c := queue.Completion{Kind: queue.OpPush, Cost: op.cost + wc.Cost}
	if wc.Status != rdma.StatusSuccess {
		c.Err = fmt.Errorf("catmint: send failed: %v", wc.Status)
	}
	op.done(c)
}

func (t *Transport) newWRID(op *pendingOp) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextWRID++
	t.pending[t.nextWRID] = op
	return t.nextWRID
}

func (t *Transport) adopt(ep *endpoint, qpn uint32) {
	t.mu.Lock()
	t.eps = append(t.eps, ep)
	t.byQPN[qpn] = ep
	t.mu.Unlock()
}

// endpoint is one catmint socket queue over an RDMA queue pair.
type endpoint struct {
	t *Transport

	mu       sync.Mutex
	bound    core.Addr
	listener *rdma.Listener
	qp       *rdma.QP
	ready    []queue.Completion
	waiters  []queue.DoneFunc
	acceptQ  []*endpoint // staged inbound connections (listeners only)
	isReady  bool        // connection fully usable (ready marker seen / sent)
	accepted bool
	closed   bool
}

// Bind implements core.Endpoint.
func (e *endpoint) Bind(addr core.Addr) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bound = addr
	return nil
}

// LocalAddr implements core.Endpoint.
func (e *endpoint) LocalAddr() core.Addr {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bound
}

// Listen implements core.Endpoint.
func (e *endpoint) Listen() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	l, err := e.t.dev.Listen(e.bound.Port, e.t.pd, e.t.scq, e.t.rcq)
	if err != nil {
		return err
	}
	e.listener = l
	return nil
}

// stageAccepts drains the device-level backlog into fully initialised
// endpoints (receive window posted, ready marker sent). Called from
// Transport.Poll so staging never waits for the application.
func (e *endpoint) stageAccepts() int {
	e.mu.Lock()
	l := e.listener
	e.mu.Unlock()
	if l == nil {
		return 0
	}
	n := 0
	for {
		qp, ok := l.Accept()
		if !ok {
			return n
		}
		child := &endpoint{t: e.t, qp: qp, isReady: true, accepted: true}
		e.t.adopt(child, qp.Num())
		for i := 0; i < e.t.cfg.PostedRecvs; i++ {
			child.postRecv()
		}
		child.sendReadyMarker()
		e.mu.Lock()
		e.acceptQ = append(e.acceptQ, child)
		e.mu.Unlock()
		n++
	}
}

// Accept implements core.Endpoint: it pops one staged connection.
func (e *endpoint) Accept() (core.Endpoint, bool, error) {
	e.mu.Lock()
	l := e.listener
	e.mu.Unlock()
	if l == nil {
		return nil, false, core.ErrNotListening
	}
	e.stageAccepts()
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.acceptQ) == 0 {
		return nil, false, nil
	}
	child := e.acceptQ[0]
	e.acceptQ = e.acceptQ[1:]
	return child, true, nil
}

// Connect implements core.Endpoint: the receive window is posted before
// the connection request leaves, so the peer can never hit RNR on the
// handshake.
func (e *endpoint) Connect(addr core.Addr) error {
	qp := e.t.dev.Connect(addr.MAC, addr.Port, e.t.pd, e.t.scq, e.t.rcq)
	e.mu.Lock()
	e.qp = qp
	e.mu.Unlock()
	e.t.adopt(e, qp.Num())
	for i := 0; i < e.t.cfg.PostedRecvs; i++ {
		e.postRecv()
	}
	return nil
}

// Connected implements core.Endpoint.
func (e *endpoint) Connected() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.isReady && e.qp != nil && e.qp.Connected()
}

func (e *endpoint) markReady() {
	e.mu.Lock()
	e.isReady = true
	e.mu.Unlock()
}

func (e *endpoint) sendReadyMarker() {
	sl := e.t.allocSlot()
	sl.bytes()[0] = readyByte
	wrID := e.t.newWRID(&pendingOp{kind: queue.OpPush, ep: e, slot: sl})
	e.qp.PostSend(wrID, rdma.Sge{MR: sl.mr, Off: sl.off, Len: 1})
}

// postRecv posts one pool slot as a receive buffer.
func (e *endpoint) postRecv() {
	e.mu.Lock()
	qp := e.qp
	closed := e.closed
	e.mu.Unlock()
	if qp == nil || closed {
		return
	}
	sl := e.t.allocSlot()
	wrID := e.t.newWRID(&pendingOp{kind: queue.OpPop, ep: e, slot: sl})
	if err := qp.PostRecv(wrID, rdma.Sge{MR: sl.mr, Off: sl.off, Len: SlotSize}); err != nil {
		e.t.freeSlot(sl)
	}
}

// Push implements queue.IoQueue.
func (e *endpoint) Push(s sga.SGA, cost simclock.Lat, done queue.DoneFunc) {
	e.mu.Lock()
	qp := e.qp
	closed := e.closed
	e.mu.Unlock()
	if closed || qp == nil {
		done(queue.Completion{Kind: queue.OpPush, Err: queue.ErrClosed})
		return
	}
	size := s.MarshalledSize()
	if size > SlotSize {
		done(queue.Completion{Kind: queue.OpPush, Err: ErrMessageTooBig})
		return
	}
	sl := e.t.allocSlot()
	buf := s.AppendMarshal(sl.bytes()[:0])

	// Zero-copy accounting: if every segment came from the registered
	// pool the device gathers in place; otherwise the staging into the
	// slot is a real copy and is charged.
	if registered(s) {
		e.t.mu.Lock()
		e.t.zeroCopyTx++
		e.t.mu.Unlock()
	} else {
		e.t.mu.Lock()
		e.t.stagedCopies++
		e.t.mu.Unlock()
		cost += e.t.model.CopyCost(s.Len())
	}

	wrID := e.t.newWRID(&pendingOp{kind: queue.OpPush, ep: e, slot: sl, done: done, cost: cost})
	if err := qp.PostSend(wrID, rdma.Sge{MR: sl.mr, Off: sl.off, Len: len(buf)}); err != nil {
		e.t.mu.Lock()
		delete(e.t.pending, wrID)
		e.t.mu.Unlock()
		e.t.freeSlot(sl)
		done(queue.Completion{Kind: queue.OpPush, Err: err})
	}
}

// registered reports whether every segment of s lives in pool memory.
func registered(s sga.SGA) bool {
	if s.Reg == nil {
		return false
	}
	_, ok := s.Reg.(*slot)
	return ok
}

// Pop implements queue.IoQueue.
func (e *endpoint) Pop(done queue.DoneFunc) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
		return
	}
	if len(e.ready) > 0 {
		c := e.ready[0]
		e.ready = e.ready[1:]
		e.mu.Unlock()
		done(c)
		return
	}
	e.waiters = append(e.waiters, done)
	e.mu.Unlock()
}

func (e *endpoint) deliver(c queue.Completion) {
	e.mu.Lock()
	e.ready = append(e.ready, c)
	e.mu.Unlock()
	e.serveWaiters()
}

func (e *endpoint) serveWaiters() {
	for {
		e.mu.Lock()
		if len(e.waiters) == 0 || len(e.ready) == 0 {
			e.mu.Unlock()
			return
		}
		w := e.waiters[0]
		e.waiters = e.waiters[1:]
		c := e.ready[0]
		e.ready = e.ready[1:]
		e.mu.Unlock()
		w(c)
	}
}

// Pump implements queue.IoQueue; completion routing happens centrally in
// Transport.Poll.
func (e *endpoint) Pump() int { return 0 }

// Close implements queue.IoQueue.
func (e *endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	ws := e.waiters
	e.waiters = nil
	e.mu.Unlock()
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
	}
	return nil
}
