package catfish

import (
	"sync"
	"sync/atomic"

	"demikernel/internal/offload"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
)

// This file wires storage pushdown into the Demikernel queue
// abstraction: a LookupQueue is a PushPop-style IoQueue face over a
// block-resident index. Push submits one GET (the pushed SGA is the
// key); Pop returns the value — so a whole depth-N traversal is exactly
// one app↔libOS round trip. Legacy per-record access (fileQueue) is
// untouched.
//
// Two modes, one offload.BlockLookupSpec:
//
//   - Pushdown: the spec's device program runs in the NVMe completion
//     path; intermediate hops resubmit device-side and only the final
//     value (or one typed error) crosses back. One device crossing per
//     GET, whatever the depth.
//   - Host fallback: the spec's CPU step runs in the libOS over each
//     surfaced block — today's status quo, one device round trip per
//     hop. Same results, byte for byte; the property test holds both
//     sides to that.
//
// Lookups are not retried on transient device errors: unlike a blob
// append, a half-done traversal has no idempotent tail to re-run, so a
// mid-traversal controller reset surfaces as one typed error completion
// (hop budget accounted by the device) and the application re-pushes.

// LookupConfig configures OpenLookup.
type LookupConfig struct {
	// Pushdown installs the spec's device program and runs lookups in
	// the completion path; false runs the spec's host step per block.
	Pushdown bool
	// MaxHops bounds the traversal (0 = spdk.DefaultMaxHops).
	MaxHops int
}

// LookupStats counts one queue's crossings.
type LookupStats struct {
	// Lookups is the number of GETs started.
	Lookups int64
	// Crossings counts device→host completion round trips: 1 per GET
	// with pushdown, one per hop without.
	Crossings int64
	// FallbackHops counts host-mode per-block round trips.
	FallbackHops int64
}

// BuildIndex bulk-builds a block-resident sorted index over the store's
// raw-block region (spdk.BuildIndex over Store.AllocBlocks), retrying
// transient device failures like any other storage op.
func (t *Transport) BuildIndex(kvs []spdk.KV, fanout int) (*spdk.Index, error) {
	var idx *spdk.Index
	_, err := t.retry(func() (simclock.Lat, error) {
		var e error
		idx, e = spdk.BuildIndex(t.dev, t.store.AllocBlocks, kvs, fanout)
		if idx != nil {
			return idx.BuildCost, e
		}
		return 0, e
	})
	return idx, err
}

// OpenLookup opens a PushPop lookup face over idx using spec. With
// cfg.Pushdown the spec's device program is installed into the device's
// pushdown slot table; otherwise every lookup runs the spec's host step
// per surfaced block.
func (t *Transport) OpenLookup(idx *spdk.Index, spec offload.BlockLookupSpec, cfg LookupConfig) (*LookupQueue, error) {
	if cfg.MaxHops == 0 {
		cfg.MaxHops = spdk.DefaultMaxHops
	}
	q := &LookupQueue{t: t, idx: idx, spec: spec, cfg: cfg, handle: -1}
	q.onResult = q.deliver
	if cfg.Pushdown {
		h, err := spec.Install(t.dev, spdk.PushdownConfig{MaxHops: cfg.MaxHops})
		if err != nil {
			return nil, err
		}
		q.handle = h
	}
	t.mu.Lock()
	t.lqs = append(t.lqs, q)
	t.mu.Unlock()
	return q, nil
}

// LookupQueue is the IoQueue face over one index. Push stages a GET
// keyed by the pushed SGA's payload; Pop completes with the value (free
// the popped SGA when done — it is pool-backed), spdk.ErrNotFound on a
// clean miss, or the typed error that ended the traversal.
type LookupQueue struct {
	t      *Transport
	idx    *spdk.Index
	spec   offload.BlockLookupSpec
	cfg    LookupConfig
	handle int

	onResult func(spdk.LookupResult)

	lookups      atomic.Int64
	crossings    atomic.Int64
	fallbackHops atomic.Int64

	mu      sync.Mutex
	results []lookupRes
	rhead   int
	waiters []queue.DoneFunc
	closed  bool
	// ready mirrors (results available && waiters waiting) for the
	// lock-free NeedsPump pre-screen.
	ready atomic.Bool
}

type lookupRes struct {
	s    sga.SGA
	err  error
	cost simclock.Lat
}

// Stats returns the queue's crossing counters.
func (q *LookupQueue) Stats() LookupStats {
	return LookupStats{
		Lookups:      q.lookups.Load(),
		Crossings:    q.crossings.Load(),
		FallbackHops: q.fallbackHops.Load(),
	}
}

// Push implements queue.IoQueue: it submits one lookup for the key
// carried by s. The key SGA is consumed (freed) once the request is
// staged; the push completion means "request accepted", and the result
// arrives on a Pop.
func (q *LookupQueue) Push(s sga.SGA, cost simclock.Lat, done queue.DoneFunc) {
	q.mu.Lock()
	closed := q.closed
	q.mu.Unlock()
	if closed {
		done(queue.Completion{Kind: queue.OpPush, Err: queue.ErrClosed})
		return
	}
	var key []byte
	if len(s.Segments) == 1 {
		key = s.Segments[0].Buf
	} else {
		key = s.Bytes()
	}
	q.lookups.Add(1)
	if q.handle >= 0 {
		// SubmitLookup copies the key before returning, so the SGA can
		// be freed immediately; the single surfaced completion lands in
		// deliver from whichever goroutine pumps the device.
		if err := q.t.dev.SubmitLookup(q.handle, q.idx.Root, key, q.onResult); err != nil {
			q.deliver(spdk.LookupResult{Err: err})
		}
		s.Free()
		done(queue.Completion{Kind: queue.OpPush, Cost: cost})
		return
	}
	q.t.dev.NoteHostFallback()
	r := q.hostLookup(key)
	s.Free()
	done(queue.Completion{Kind: queue.OpPush, Cost: cost})
	q.deliver(r)
}

// hostLookup is the CPU fallback: the same traversal the device program
// performs, but every block surfaces to the host — one device round
// trip (submit→complete→consume) and one host filter step per hop.
func (q *LookupQueue) hostLookup(key []byte) spdk.LookupResult {
	var r spdk.LookupResult
	lba := q.idx.Root
	for {
		if r.Hops >= q.cfg.MaxHops {
			r.Err = spdk.ErrHopBudget
			return r
		}
		q.crossings.Add(1)
		q.fallbackHops.Add(1)
		c := q.t.dev.Execute(spdk.Command{Op: spdk.OpRead, LBA: lba})
		r.Cost += c.Cost
		if c.Err != nil {
			r.Err = c.Err
			return r
		}
		r.Hops++
		r.Cost += q.t.model.FilterNS // the step runs at host rate
		s := q.spec.Host(key, c.Data)
		switch s.Kind {
		case spdk.StepNext:
			if s.NextLBA < 0 || s.NextLBA >= q.t.dev.NumBlocks() {
				r.Err = spdk.ErrCorruptIndex
				return r
			}
			lba = s.NextLBA
		case spdk.StepDone:
			r.Value = s.Value
			r.Found = true
			return r
		case spdk.StepMiss:
			return r
		default:
			r.Err = spdk.ErrCorruptIndex
			return r
		}
	}
}

// deliver stages one finished lookup as a Pop-able result. For hits the
// value is copied into a pooled buffer (spdk.LookupResult.Value is only
// valid during this callback); the popping application frees it.
func (q *LookupQueue) deliver(r spdk.LookupResult) {
	res := lookupRes{cost: r.Cost}
	switch {
	case r.Err != nil:
		res.err = r.Err
	case !r.Found:
		res.err = spdk.ErrNotFound
	default:
		b := q.t.pool.Get(len(r.Value))
		copy(b.Bytes(), r.Value)
		res.s = b.SGA()
	}
	if q.handle >= 0 {
		// The one device→host crossing of a pushdown GET.
		q.crossings.Add(1)
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		res.s.Free()
		return
	}
	q.results = append(q.results, res)
	q.ready.Store(len(q.waiters) > 0)
	q.mu.Unlock()
	q.Pump()
}

// Pop implements queue.IoQueue.
func (q *LookupQueue) Pop(done queue.DoneFunc) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
		return
	}
	q.waiters = append(q.waiters, done)
	q.ready.Store(q.rhead < len(q.results))
	q.mu.Unlock()
	q.Pump()
}

// Pump implements queue.IoQueue: serve waiters from finished lookups,
// FIFO both sides.
func (q *LookupQueue) Pump() int {
	n := 0
	for {
		q.mu.Lock()
		if q.closed || len(q.waiters) == 0 || q.rhead >= len(q.results) {
			q.ready.Store(false)
			q.mu.Unlock()
			return n
		}
		w := q.waiters[0]
		// Shift in place so the backing array (and its capacity) is
		// reused instead of creeping forward and reallocating.
		copy(q.waiters, q.waiters[1:])
		q.waiters[len(q.waiters)-1] = nil
		q.waiters = q.waiters[:len(q.waiters)-1]
		res := q.results[q.rhead]
		q.results[q.rhead] = lookupRes{}
		q.rhead++
		if q.rhead == len(q.results) {
			// Fully drained: rewind, reusing the backing array.
			q.results = q.results[:0]
			q.rhead = 0
		}
		q.mu.Unlock()
		w(queue.Completion{Kind: queue.OpPop, SGA: res.s, Err: res.err, Cost: res.cost})
		n++
	}
}

// NeedsPump implements core.NeedsPumper: idle poll ticks skip the queue
// unless a result is waiting for a waiter.
func (q *LookupQueue) NeedsPump() bool { return q.ready.Load() }

// Close implements queue.IoQueue.
func (q *LookupQueue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	ws := q.waiters
	q.waiters = nil
	rs := q.results[q.rhead:]
	q.results = nil
	q.rhead = 0
	q.mu.Unlock()
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
	}
	for i := range rs {
		rs[i].s.Free()
	}
	if q.handle >= 0 {
		q.t.dev.UninstallPushdown(q.handle)
	}
	return nil
}
