package simclock

import (
	"sync"
	"time"
)

// DriftClock is a virtual wall clock with injectable skew, the per-node
// clock of the chaos engine's ClockSkew fault. A kernel-bypass stack
// keeps its own protocol timers (RTO, keepalive) in userspace, trusting
// whatever clock the process sees; nothing below it disciplines that
// clock. DriftClock models the consequence: Now() returns real time
// scaled by a drift rate (parts-per-million) plus a step offset, so a
// node can run fast (timers fire early → spurious retransmits), slow
// (dead-peer detection is late), or jump.
//
// The zero DriftClock is a valid undrifted clock. All methods are safe
// for concurrent use; Now is a mutex-guarded few-ns read, acceptable on
// the timer path (it is consulted once per Poll tick, not per frame).
type DriftClock struct {
	mu     sync.Mutex
	base   time.Time     // real instant the current segment started
	virt   time.Time     // virtual instant at base
	ppm    float64       // drift rate, parts per million
	offset time.Duration // step offset applied on top of drift
}

// NewDriftClock returns an undrifted clock (Now == time.Now until skew
// is injected).
func NewDriftClock() *DriftClock { return &DriftClock{} }

// Now returns the clock's current virtual time.
func (c *DriftClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nowLocked(time.Now())
}

func (c *DriftClock) nowLocked(real time.Time) time.Time {
	if c.base.IsZero() {
		// Undrifted and never skewed: identity.
		if c.ppm == 0 && c.offset == 0 {
			return real
		}
		c.base = real
		c.virt = real
	}
	elapsed := real.Sub(c.base)
	scaled := elapsed + time.Duration(float64(elapsed)*c.ppm/1e6)
	return c.virt.Add(scaled + c.offset)
}

// SetSkew replaces the clock's drift rate (ppm, parts per million; 1e6
// doubles the clock's speed) and step offset. The current virtual time
// is preserved across the change — skew alters the slope from now on,
// it does not rewind history (a monotonic-ish clock, as Go's own
// runtime clock is).
func (c *DriftClock) SetSkew(ppm float64, offset time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	real := time.Now()
	// Re-base: fold accumulated drift into virt, then start the new
	// slope from here. The old offset is folded in too; the new offset
	// applies fresh.
	cur := c.nowLocked(real)
	c.base = real
	c.virt = cur.Add(-c.offset) // keep pre-offset continuity; offset re-applies below
	c.ppm = ppm
	c.offset = offset
}

// Skew reports the current drift rate and step offset.
func (c *DriftClock) Skew() (ppm float64, offset time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ppm, c.offset
}
