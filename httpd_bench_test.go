package demikernel

// BenchmarkHTTP_* measures the httpd server on the same manually-pumped
// single-goroutine rigs the hot-path suite uses — no Run goroutine, no
// Background pollers — so ns/op and allocs/op are deterministic. Two
// data paths share one rig shape: the legacy per-op token path (one
// push + one pop token per GET) and the SQ/CQ ring path (a batch of
// push+pop SQEs per sweep). TestHotPathAllocsHTTPRingServe is the
// 0-alloc fence over the ring serve loop: steady-state HTTP — parse,
// route, range resolution, pooled response build, ring harvest — must
// not malloc.

import (
	"fmt"
	"testing"

	"demikernel/internal/apps/httpd"
	"demikernel/internal/queue"
	"demikernel/internal/uring"
	"demikernel/internal/workload"
)

const httpBenchPort = 8080

// httpBenchRig is a connected httpd server/client pair pumped only by
// the calling goroutine: the server's Step and both libOS Polls run
// inline, never in the background.
type httpBenchRig struct {
	cli    *LibOS
	srvLib *LibOS
	srv    *httpd.Server
	cqd    QD
	req    SGA // prebuilt "GET /obj/00000 HTTP/1.1" request, reused

	ring *uring.Pair // client ring (ring rig only)
	sq   []uring.SQE
	cq   []uring.CQE

	cleanup func()
}

func newHTTPBenchRig(tb testing.TB, ringCap int) *httpBenchRig {
	tb.Helper()
	c := NewCluster(7)
	srvNode := c.MustSpawn(Catnip, WithHost(1))
	cliNode := c.MustSpawn(Catnip, WithHost(2))

	objs := workload.HTTPObjects(4, workload.FixedSize(64), 7)
	tree := httpd.NewTree()
	for _, o := range objs {
		tree.Add(o.Path, o.Body)
	}
	srv := httpd.NewServer(srvNode.LibOS, tree)
	if err := srv.Listen(httpBenchPort); err != nil {
		tb.Fatal(err)
	}
	if ringCap > 0 {
		srv.EnableRing(ringCap)
	}

	cqd, err := cliNode.Socket()
	if err != nil {
		tb.Fatal(err)
	}
	// The TCP handshake needs both sides progressing; background-pump
	// the server during setup only.
	stop := srvNode.Background()
	if err := cliNode.Connect(cqd, c.AddrOf(srvNode, httpBenchPort)); err != nil {
		stop()
		tb.Fatal(err)
	}
	stop()

	r := &httpBenchRig{
		cli:    cliNode.LibOS,
		srvLib: srvNode.LibOS,
		srv:    srv,
		cqd:    cqd,
		req:    NewSGA([]byte("GET " + workload.HTTPObjectPath(0) + " HTTP/1.1\r\n\r\n")),
		cleanup: func() {
			cliNode.Close(cqd)
		},
	}
	if ringCap > 0 {
		r.ring = cliNode.AttachRing(ringCap)
		r.sq = make([]uring.SQE, 0, 2*ringCap)
		r.cq = make([]uring.CQE, ringCap)
	}
	// Let the server accept the connection.
	for i := 0; r.srv.Conns() == 0; i++ {
		r.cli.Poll()
		r.srvLib.Poll()
		r.srv.Step()
		if i > 1_000_000 {
			tb.Fatal("httpd bench rig: accept made no progress")
		}
	}
	return r
}

// pump advances both sides one sweep: client TX, server RX+serve,
// server TX, client RX.
func (r *httpBenchRig) pump() {
	r.cli.Poll()
	r.srvLib.Poll()
	r.srv.Step()
	r.srvLib.Poll()
	r.cli.Poll()
}

// getOnce performs one GET over the per-op token path: arm the client
// pop, push the prebuilt request, pump until both complete, free the
// response.
func (r *httpBenchRig) getOnce(tb testing.TB) {
	pqt, err := r.cli.Pop(r.cqd)
	if err != nil {
		tb.Fatal(err)
	}
	qt, err := r.cli.Push(r.cqd, r.req)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; ; i++ {
		if c, ok, werr := r.cli.TryWait(pqt); werr != nil {
			tb.Fatal(werr)
		} else if ok {
			if c.Err != nil {
				tb.Fatal(c.Err)
			}
			c.SGA.Free()
			break
		}
		r.pump()
		if i > 1_000_000 {
			tb.Fatal("per-op GET made no progress")
		}
	}
	if _, ok, err := r.cli.TryWait(qt); err != nil || !ok {
		tb.Fatalf("request push not complete: ok=%v err=%v", ok, err)
	}
}

// getBatch performs `batch` pipelined GETs over the ring path: 2*batch
// SQEs posted up front, pump-and-harvest until every response pop CQE
// lands, freeing each response SGA.
func (r *httpBenchRig) getBatch(tb testing.TB, batch int) {
	sq := r.sq[:0]
	for i := 0; i < batch; i++ {
		sq = append(sq,
			uring.SQE{Op: queue.OpPush, QD: int32(r.cqd), Tag: uint64(i)<<1 | 1, SGA: r.req},
			uring.SQE{Op: queue.OpPop, QD: int32(r.cqd), Tag: uint64(i) << 1})
	}
	want := 2 * batch
	got := 0
	for it := 0; got < want || len(sq) > 0; it++ {
		if len(sq) > 0 {
			n, err := r.cli.SubmitBatch(r.ring, sq)
			if err != nil {
				tb.Fatal(err)
			}
			sq = sq[n:]
		}
		r.pump()
		n := r.cli.HarvestCQ(r.ring, r.cq)
		for i := 0; i < n; i++ {
			c := &r.cq[i]
			if c.Err != nil {
				tb.Fatal(c.Err)
			}
			if c.Tag&1 == 0 { // response pop
				c.SGA.Free()
			}
			got++
			*c = uring.CQE{}
		}
		if it > 1_000_000 {
			tb.Fatal("ring GET batch made no progress")
		}
	}
}

// BenchmarkHTTP_PerOp is one GET per iteration over per-op tokens: two
// libOS calls plus token waits per request.
func BenchmarkHTTP_PerOp(b *testing.B) {
	r := newHTTPBenchRig(b, 0)
	defer r.cleanup()
	r.getOnce(b) // warm pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.getOnce(b)
	}
}

// BenchmarkHTTP_RingBatch is `batch` pipelined GETs per iteration over
// the SQ/CQ rings; ns/op divided by the batch size gives per-request
// cost, which falls as the batch amortizes the transport sweeps.
func BenchmarkHTTP_RingBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			r := newHTTPBenchRig(b, 256)
			defer r.cleanup()
			r.getBatch(b, batch) // warm pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.getBatch(b, batch)
			}
		})
	}
}

// TestHotPathAllocsHTTPRingServe fences the steady-state ring serve
// loop at zero heap allocations: after warmup, a full batch of GETs —
// request parse, route lookup, pooled response build, ring
// submit/harvest on both sides — must not malloc.
func TestHotPathAllocsHTTPRingServe(t *testing.T) {
	r := newHTTPBenchRig(t, 256)
	defer r.cleanup()
	for i := 0; i < 50; i++ {
		r.getBatch(t, 8)
	}
	if allocs := testing.AllocsPerRun(100, func() { r.getBatch(t, 8) }); allocs != 0 {
		t.Fatalf("ring HTTP serve loop allocates: %.1f allocs/run (want 0)", allocs)
	}
}
