package catnap

import (
	"encoding/binary"
	"sync"

	"demikernel/internal/kernel"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
)

// This file gives catnap the same file-queue API catfish offers, but over
// the legacy kernel file path: every push is a write+fsync through the
// page cache and journal, every pop reads back through a syscall and a
// copy. It exists so one application's storage code also runs unmodified
// on the kernel libOS — paying Figure 1's legacy prices, which is exactly
// what experiment E12 measures.
//
// Records are framed SGAs, length-prefixed in the file:
//
//	u32 recLen, recLen bytes (the SGA wire encoding)

// OpenFileQueue returns a file queue over the kernel file system. A disk
// must be attached to the kernel (kernel.AttachDisk).
func (t *Transport) OpenFileQueue(path string) (queue.IoQueue, error) {
	fd, _, err := t.k.OpenFile(path)
	if err != nil {
		return nil, err
	}
	fq := &fileQueue{t: t, fd: fd}
	// Index any records already durable in the file (restart path).
	if err := fq.reindex(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.fqs = append(t.fqs, fq)
	t.mu.Unlock()
	return fq, nil
}

type fileQueue struct {
	t  *Transport
	fd kernel.FD

	mu      sync.Mutex
	offsets []int // byte offset of each record's length prefix
	size    int   // bytes indexed so far
	cursor  int
	waiters []queue.DoneFunc
	closed  bool
}

// reindex scans the file for record boundaries.
func (q *fileQueue) reindex() error {
	size, err := q.t.k.FileSize(q.fd)
	if err != nil {
		return err
	}
	off := 0
	for off+4 <= size {
		hdr, _, err := q.t.k.ReadFile(q.fd, off, 4)
		if err != nil {
			return err
		}
		recLen := int(binary.BigEndian.Uint32(hdr))
		if off+4+recLen > size {
			break
		}
		q.offsets = append(q.offsets, off)
		off += 4 + recLen
	}
	q.size = off
	return nil
}

// Push implements queue.IoQueue: write + fsync, with the legacy costs
// charged by the kernel.
func (q *fileQueue) Push(s sga.SGA, cost simclock.Lat, done queue.DoneFunc) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPush, Err: queue.ErrClosed})
		return
	}
	rec := s.Marshal()
	buf := binary.BigEndian.AppendUint32(make([]byte, 0, 4+len(rec)), uint32(len(rec)))
	buf = append(buf, rec...)
	start := q.size
	wCost, err := q.t.k.WriteFile(q.fd, buf)
	if err != nil {
		q.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPush, Err: err})
		return
	}
	sCost, err := q.t.k.Fsync(q.fd)
	if err != nil {
		q.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPush, Err: err})
		return
	}
	q.offsets = append(q.offsets, start)
	q.size += len(buf)
	q.mu.Unlock()
	done(queue.Completion{Kind: queue.OpPush, Cost: cost + wCost + sCost})
	q.Pump()
}

// Pop implements queue.IoQueue.
func (q *fileQueue) Pop(done queue.DoneFunc) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
		return
	}
	q.waiters = append(q.waiters, done)
	q.mu.Unlock()
	q.Pump()
}

// Pump implements queue.IoQueue.
func (q *fileQueue) Pump() int {
	n := 0
	for {
		q.mu.Lock()
		if q.closed || len(q.waiters) == 0 || q.cursor >= len(q.offsets) {
			q.mu.Unlock()
			return n
		}
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		off := q.offsets[q.cursor]
		q.cursor++
		q.mu.Unlock()

		hdr, c1, err := q.t.k.ReadFile(q.fd, off, 4)
		if err != nil {
			w(queue.Completion{Kind: queue.OpPop, Err: err})
			continue
		}
		recLen := int(binary.BigEndian.Uint32(hdr))
		rec, c2, err := q.t.k.ReadFile(q.fd, off+4, recLen)
		if err != nil {
			w(queue.Completion{Kind: queue.OpPop, Err: err})
			continue
		}
		s, _, err := sga.Unmarshal(rec)
		if err != nil {
			w(queue.Completion{Kind: queue.OpPop, Err: err})
			continue
		}
		w(queue.Completion{Kind: queue.OpPop, SGA: s, Cost: c1 + c2})
		n++
	}
}

// Close implements queue.IoQueue.
func (q *fileQueue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	ws := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	q.t.k.Close(q.fd)
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
	}
	return nil
}
