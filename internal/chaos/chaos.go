// Package chaos is a deterministic, seeded fault-schedule engine for the
// simulated kernel-bypass fabric and devices.
//
// The paper's thesis is that kernel-bypass devices ship with none of the
// operating system's safety net; the libOSes in this repository supply
// that net (retransmission budgets, QP reconnects, device-reset retries,
// memory backpressure). This package exists to *attack* the net on a
// schedule and observe that applications see typed errors and recover —
// never hangs, never silent corruption.
//
// An Engine holds a list of time-targeted events (offsets relative to
// Start). Each event fires exactly once, in offset order, when Step or
// Run observes that its offset has elapsed. Faults are plain closures, so
// any knob is schedulable; typed helpers cover the common ones:
//
//   - link down / up / flap on one switch port (partitions),
//   - per-port or global frame impairments (loss, duplication,
//     reordering, corruption),
//   - NVMe controller resets and injected media error rates,
//   - node crash/restart (modeled as the node's links going down and the
//     application ceasing to poll — see the root chaos tests).
//
// Everything random (which byte a corruption flips, which command an
// error rate fails) is driven by seeded generators, so a chaos run is
// reproducible from its seed and schedule alone.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
)

// Event is one scheduled fault injection.
type Event struct {
	At     time.Duration // offset from Start at which to fire
	Name   string        // human-readable label, recorded in Fired
	Inject func()        // the fault; runs exactly once
}

// FiredEvent records one event that has fired: its name, the offset it
// was scheduled for, and the offset at which the engine actually
// observed it due (>= At; the gap is polling-loop slack). demi-stat's
// -chaos view renders these as a lifecycle timeline.
type FiredEvent struct {
	Name    string
	At      time.Duration // scheduled offset
	FiredAt time.Duration // observed offset when Step fired it
}

// Lifecycle is the crash/restart surface of a node, as seen by the
// engine. demikernel.Node and demikernel.ShardedNode both satisfy it;
// the indirection keeps this package free of a dependency on the root
// package. Crash returns how many pending operations it aborted.
type Lifecycle interface {
	Crash() (int, error)
	Restart() error
}

// Engine schedules and fires fault events. It is safe for concurrent
// use; Step may be called from a polling loop while another goroutine
// inspects Fired.
type Engine struct {
	seed int64

	mu      sync.Mutex
	rng     *rand.Rand
	events  []Event
	started bool
	start   time.Time
	next    int
	fired   []string
	firedEv []FiredEvent
}

// New returns an engine whose random choices derive from seed.
func New(seed int64) *Engine {
	return &Engine{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the engine's seed (for logging a reproducible run).
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's seeded random source. Schedules use it to
// derive fault parameters (which port, how long an outage) so the whole
// scenario replays from one seed.
func (e *Engine) Rand() *rand.Rand {
	return e.rng
}

// At schedules inject to fire once the given offset from Start has
// elapsed. It returns the engine for chaining. Scheduling after Start is
// allowed as long as the offset is still in the future of the already
// fired prefix.
func (e *Engine) At(at time.Duration, name string, inject func()) *Engine {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events = append(e.events, Event{At: at, Name: name, Inject: inject})
	// Keep events sorted by offset; stable so equal offsets fire in
	// scheduling order.
	sort.SliceStable(e.events[e.next:], func(i, j int) bool {
		return e.events[e.next+i].At < e.events[e.next+j].At
	})
	return e
}

// Start records the schedule's time zero. Run calls it implicitly.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.started {
		e.started = true
		e.start = time.Now()
	}
}

// Step fires every event whose offset has elapsed and returns how many
// fired. It is cheap enough to call from a tight polling loop.
func (e *Engine) Step() int {
	e.mu.Lock()
	if !e.started {
		e.started = true
		e.start = time.Now()
	}
	elapsed := time.Since(e.start)
	var due []Event
	for e.next < len(e.events) && e.events[e.next].At <= elapsed {
		due = append(due, e.events[e.next])
		e.fired = append(e.fired, e.events[e.next].Name)
		e.firedEv = append(e.firedEv, FiredEvent{
			Name:    e.events[e.next].Name,
			At:      e.events[e.next].At,
			FiredAt: elapsed,
		})
		e.next++
	}
	e.mu.Unlock()
	for _, ev := range due {
		ev.Inject()
	}
	return len(due)
}

// Done reports whether every scheduled event has fired.
func (e *Engine) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.next >= len(e.events)
}

// Fired returns the names of fired events in firing order.
func (e *Engine) Fired() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.fired...)
}

// FiredEvents returns the fired events with their scheduled and observed
// offsets, in firing order — the raw material for a chaos timeline.
func (e *Engine) FiredEvents() []FiredEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]FiredEvent(nil), e.firedEv...)
}

// Run starts the schedule and steps it every tick until total has
// elapsed and all events fired. It blocks the calling goroutine; tests
// usually run it alongside Background pollers.
func (e *Engine) Run(total, tick time.Duration) {
	if tick <= 0 {
		tick = time.Millisecond
	}
	e.Start()
	deadline := time.Now().Add(total)
	for {
		e.Step()
		if time.Now().After(deadline) && e.Done() {
			return
		}
		time.Sleep(tick)
	}
}

// --- typed helpers: fabric faults ---

// LinkDown schedules taking one switch port's link down: frames to and
// from the port drop (counted in LinkDownDrops) — a partition of that
// node from the fabric.
func (e *Engine) LinkDown(at time.Duration, sw *fabric.Switch, port int) *Engine {
	return e.At(at, fmt.Sprintf("link-down(port=%d)", port), func() {
		sw.SetLinkState(port, false)
	})
}

// LinkUp schedules healing one switch port's link.
func (e *Engine) LinkUp(at time.Duration, sw *fabric.Switch, port int) *Engine {
	return e.At(at, fmt.Sprintf("link-up(port=%d)", port), func() {
		sw.SetLinkState(port, true)
	})
}

// LinkFlap schedules a down-then-up pulse on one port.
func (e *Engine) LinkFlap(at, downFor time.Duration, sw *fabric.Switch, port int) *Engine {
	e.LinkDown(at, sw, port)
	return e.LinkUp(at+downFor, sw, port)
}

// Impair schedules replacing one port's impairments (loss, duplication,
// reordering, corruption, delay). Zero Impairments heals the port.
func (e *Engine) Impair(at time.Duration, sw *fabric.Switch, port int, imp fabric.Impairments) *Engine {
	return e.At(at, fmt.Sprintf("impair(port=%d,%+v)", port, imp), func() {
		sw.SetPortImpairments(port, imp)
	})
}

// ImpairAll schedules replacing the switch-wide impairments applied to
// every frame regardless of port. Zero Impairments heals the fabric.
func (e *Engine) ImpairAll(at time.Duration, sw *fabric.Switch, imp fabric.Impairments) *Engine {
	return e.At(at, fmt.Sprintf("impair-all(%+v)", imp), func() {
		sw.SetImpairments(imp)
	})
}

// --- typed helpers: storage faults ---

// ControllerReset schedules a spontaneous NVMe controller reset:
// in-flight commands abort with spdk.ErrDeviceReset and the next downFor
// commands fail while the controller re-initialises. Media survives.
func (e *Engine) ControllerReset(at time.Duration, dev *spdk.Device, downFor int) *Engine {
	return e.At(at, fmt.Sprintf("nvme-reset(downFor=%d)", downFor), func() {
		dev.ControllerReset(downFor)
	})
}

// IOErrorRate schedules arming (or with rate 0, disarming) seeded random
// command failures on the NVMe device. The generator seed derives from
// the engine seed, keeping the run reproducible.
func (e *Engine) IOErrorRate(at time.Duration, dev *spdk.Device, rate float64) *Engine {
	seed := e.seed ^ 0x10E44A7E // decorrelate from other engine draws
	return e.At(at, fmt.Sprintf("nvme-errors(rate=%g)", rate), func() {
		dev.SetErrorRate(rate, seed)
	})
}

// --- typed helpers: node lifecycle faults ---

// NodeCrashRestart schedules a whole-node death and rebirth: at `at` the
// node crashes (its links drop, its stack dies in place, every pending
// qtoken completes with the typed crash error — no FIN, no RST, nothing
// on the wire), and at `at+downFor` it restarts on the same device, MAC,
// and IP with listeners re-armed. This is the paper's §3 scenario made
// schedulable: with kernel bypass all protocol state lives in the dying
// process, so the blast radius is exactly what Crash aborts plus what
// peers discover through their own retransmission budgets.
func (e *Engine) NodeCrashRestart(at, downFor time.Duration, name string, n Lifecycle) *Engine {
	e.At(at, fmt.Sprintf("node-crash(%s)", name), func() {
		n.Crash() //nolint:errcheck // abort count is observable via telemetry
	})
	return e.At(at+downFor, fmt.Sprintf("node-restart(%s)", name), func() {
		n.Restart() //nolint:errcheck // Restart on a live node is a no-op error
	})
}

// HostileTenantFaults bundles the misbehaviours of one tenant sharing a
// NIC with victims — the paper's protection scenario turned adversarial.
// Flood should saturate the tenant's TX path (the WDRR scheduler and the
// tenant's rate limit must contain it); Leak should acquire pooled
// frames and never release them (the tenant's quota ledger must absorb
// it); Node is the tenant node, crashed mid-rampage so device-side
// reclamation is exercised with maximum state outstanding.
type HostileTenantFaults struct {
	Flood func() // saturate the tenant's own TX path
	Leak  func() // acquire pooled frames and withhold Release
	Node  Lifecycle
}

// HostileTenant schedules the full rampage of one co-located tenant:
// flood at `at`, leak at `at+stagger`, crash mid-burst at `at+2*stagger`
// (reclaiming the leaked quota device-side), and — when downFor > 0 —
// restart at `at+2*stagger+downFor`. Victim tenants on the same NIC
// must ride it out behind their queue groups, TX weights, and quotas;
// the hostile-tenant soak test asserts exactly that.
func (e *Engine) HostileTenant(at, stagger, downFor time.Duration, name string, h HostileTenantFaults) *Engine {
	if h.Flood != nil {
		e.At(at, fmt.Sprintf("hostile-flood(%s)", name), h.Flood)
	}
	if h.Leak != nil {
		e.At(at+stagger, fmt.Sprintf("hostile-leak(%s)", name), h.Leak)
	}
	e.At(at+2*stagger, fmt.Sprintf("hostile-crash(%s)", name), func() {
		h.Node.Crash() //nolint:errcheck // reclamation is observable via the ledger
	})
	if downFor > 0 {
		e.At(at+2*stagger+downFor, fmt.Sprintf("hostile-restart(%s)", name), func() {
			h.Node.Restart() //nolint:errcheck // Restart on a live node is a no-op error
		})
	}
	return e
}

// AsymmetricPartition schedules a one-way fabric break: frames from port
// `from` to port `to` are silently dropped (counted in AsymDrops) while
// the reverse direction keeps flowing — the gray failure that defeats
// naive liveness checks, because `to` still hears `from` and believes
// the path healthy. If healAfter > 0 the partition heals at
// at+healAfter; otherwise it persists until healed by another event.
func (e *Engine) AsymmetricPartition(at, healAfter time.Duration, sw *fabric.Switch, from, to int) *Engine {
	e.At(at, fmt.Sprintf("asym-partition(%d->%d)", from, to), func() {
		sw.SetOneWayBlock(from, to, true)
	})
	if healAfter > 0 {
		e.At(at+healAfter, fmt.Sprintf("asym-heal(%d->%d)", from, to), func() {
			sw.SetOneWayBlock(from, to, false)
		})
	}
	return e
}

// ClockSkew schedules skewing one node's virtual wall clock: from `at`
// on, the clock runs fast or slow by ppm parts-per-million and jumps by
// offset. Every protocol timer on the node (RTO backoff, dead-peer
// budgets) reads this clock, so positive ppm fires timers early
// (spurious retransmits) and negative ppm late (slow failure detection).
// Schedule a second ClockSkew with (0, 0) to discipline the clock again;
// virtual time stays continuous across the change.
func (e *Engine) ClockSkew(at time.Duration, clock *simclock.DriftClock, ppm float64, offset time.Duration) *Engine {
	return e.At(at, fmt.Sprintf("clock-skew(ppm=%g,offset=%s)", ppm, offset), func() {
		clock.SetSkew(ppm, offset)
	})
}
