package spdk

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"demikernel/internal/simclock"
)

func newDev(cfg Config) *Device {
	model := simclock.Datacenter2019()
	return New(&model, cfg)
}

func block(fill byte) []byte {
	b := make([]byte, BlockSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestWriteReadBlock(t *testing.T) {
	d := newDev(Config{})
	w := d.Execute(Command{Op: OpWrite, LBA: 7, Data: block('x')})
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	if w.Cost == 0 {
		t.Fatal("write cost not charged")
	}
	r := d.Execute(Command{Op: OpRead, LBA: 7})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !bytes.Equal(r.Data, block('x')) {
		t.Fatal("read back wrong data")
	}
	if r.Cost >= w.Cost {
		t.Fatalf("NVMe read (%v) should be cheaper than write (%v)", r.Cost, w.Cost)
	}
}

func TestReadUnwrittenBlockIsZero(t *testing.T) {
	d := newDev(Config{})
	r := d.Execute(Command{Op: OpRead, LBA: 3})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !bytes.Equal(r.Data, make([]byte, BlockSize)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestLBABoundsChecked(t *testing.T) {
	d := newDev(Config{NumBlocks: 8})
	if c := d.Execute(Command{Op: OpRead, LBA: 8}); !errors.Is(c.Err, ErrOutOfRange) {
		t.Fatalf("err = %v", c.Err)
	}
	if c := d.Execute(Command{Op: OpWrite, LBA: -1, Data: block(0)}); !errors.Is(c.Err, ErrOutOfRange) {
		t.Fatalf("err = %v", c.Err)
	}
	if d.Stats().Errors != 2 {
		t.Fatalf("Errors = %d", d.Stats().Errors)
	}
}

func TestWriteWrongLengthRejected(t *testing.T) {
	d := newDev(Config{})
	if _, err := d.Submit(Command{Op: OpWrite, LBA: 0, Data: []byte("short")}); !errors.Is(err, ErrBadLength) {
		t.Fatalf("err = %v", err)
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	d := newDev(Config{QueueDepth: 4})
	for i := 0; i < 4; i++ {
		if _, err := d.Submit(Command{Op: OpRead, LBA: i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Submit(Command{Op: OpRead, LBA: 5}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v", err)
	}
	if got := d.Poll(0); len(got) != 4 {
		t.Fatalf("completions = %d", len(got))
	}
	// Queue drained: submissions flow again.
	if _, err := d.Submit(Command{Op: OpRead, LBA: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitCopiesWriteBuffer(t *testing.T) {
	d := newDev(Config{})
	buf := block('a')
	if _, err := d.Submit(Command{Op: OpWrite, LBA: 0, Data: buf}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'Z' // caller reuses its buffer before completion
	d.Poll(0)
	r := d.Execute(Command{Op: OpRead, LBA: 0})
	if r.Data[0] != 'a' {
		t.Fatal("device did not capture write data at submission")
	}
}

func TestAsyncCompletionOrder(t *testing.T) {
	d := newDev(Config{})
	var ids []uint64
	for i := 0; i < 5; i++ {
		id, err := d.Submit(Command{Op: OpWrite, LBA: i, Data: block(byte(i))})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	comps := d.Poll(0)
	if len(comps) != 5 {
		t.Fatalf("completions = %d", len(comps))
	}
	for i, c := range comps {
		if c.ID != ids[i] || c.Err != nil {
			t.Fatalf("completion %d: %+v", i, c)
		}
	}
}

func TestReset(t *testing.T) {
	d := newDev(Config{})
	d.Execute(Command{Op: OpWrite, LBA: 0, Data: block('x')})
	d.Submit(Command{Op: OpRead, LBA: 0})
	d.Reset()
	comps := d.Poll(0)
	found := false
	for _, c := range comps {
		if errors.Is(c.Err, ErrDeviceReset) {
			found = true
		}
	}
	if !found {
		t.Fatal("in-flight command not failed by reset")
	}
	r := d.Execute(Command{Op: OpRead, LBA: 0})
	if !bytes.Equal(r.Data, make([]byte, BlockSize)) {
		t.Fatal("storage survived reset")
	}
}

func TestFlushCompletes(t *testing.T) {
	d := newDev(Config{})
	c := d.Execute(Command{Op: OpFlush})
	if c.Err != nil || c.Op != OpFlush {
		t.Fatalf("%+v", c)
	}
	if d.Stats().Flushes != 1 {
		t.Fatal("flush not counted")
	}
}

// --- blob store ---

func TestBlobAppendRead(t *testing.T) {
	d := newDev(Config{})
	s, _, err := NewStore(d)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := s.Open("queue-1")
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("first"), []byte("second record"), make([]byte, 9000)}
	rand.New(rand.NewSource(9)).Read(recs[2])
	for _, r := range recs {
		if _, err := f.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if f.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d", f.NumRecords())
	}
	for i, want := range recs {
		got, cost, err := f.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d mismatch", i)
		}
		if cost == 0 {
			t.Fatal("read cost not charged")
		}
	}
	if _, _, err := f.Read(3); !errors.Is(err, ErrNoSuchRecord) {
		t.Fatalf("err = %v", err)
	}
}

func TestBlobMultipleFiles(t *testing.T) {
	d := newDev(Config{})
	s, _, _ := NewStore(d)
	fa, _, _ := s.Open("a")
	fb, _, _ := s.Open("b")
	fa.Append([]byte("for a"))
	fb.Append([]byte("for b"))
	fa.Append([]byte("a again"))
	ga, _, _ := fa.Read(1)
	gb, _, _ := fb.Read(0)
	if string(ga) != "a again" || string(gb) != "for b" {
		t.Fatalf("cross-file interleave broken: %q %q", ga, gb)
	}
	if len(s.Files()) != 2 {
		t.Fatalf("Files = %v", s.Files())
	}
}

func TestBlobOpenIdempotent(t *testing.T) {
	d := newDev(Config{})
	s, _, _ := NewStore(d)
	f1, _, _ := s.Open("same")
	f2, _, _ := s.Open("same")
	if f1 != f2 {
		t.Fatal("Open created a duplicate file")
	}
	if _, ok := s.Lookup("same"); !ok {
		t.Fatal("Lookup missed existing file")
	}
	if _, ok := s.Lookup("other"); ok {
		t.Fatal("Lookup invented a file")
	}
}

func TestBlobRecovery(t *testing.T) {
	d := newDev(Config{})
	s, _, _ := NewStore(d)
	f, _, _ := s.Open("persist")
	f.Append([]byte("one"))
	f.Append([]byte("two"))
	g, _, _ := s.Open("other")
	g.Append([]byte("three"))

	// Re-open the same device: the log must rebuild the full index.
	s2, _, err := NewStore(d)
	if err != nil {
		t.Fatal(err)
	}
	f2, ok := s2.Lookup("persist")
	if !ok {
		t.Fatal("file lost across recovery")
	}
	if f2.NumRecords() != 2 {
		t.Fatalf("records after recovery = %d", f2.NumRecords())
	}
	got, _, err := f2.Read(1)
	if err != nil || string(got) != "two" {
		t.Fatalf("got %q err %v", got, err)
	}
	g2, ok := s2.Lookup("other")
	if !ok || g2.NumRecords() != 1 {
		t.Fatal("second file lost across recovery")
	}
	// Appends continue after recovery without clobbering.
	if _, err := f2.Append([]byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = f2.Read(2)
	if string(got) != "post-recovery" {
		t.Fatalf("got %q", got)
	}
	got, _, _ = g2.Read(0)
	if string(got) != "three" {
		t.Fatalf("append after recovery clobbered other file: %q", got)
	}
}

func TestBlobLogFull(t *testing.T) {
	d := newDev(Config{NumBlocks: 2})
	s, _, _ := NewStore(d)
	f, _, err := s.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(make([]byte, 3*BlockSize)); !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestPropBlobRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := newDev(Config{})
		s, _, _ := NewStore(d)
		nFiles := 1 + r.Intn(3)
		files := make([]*File, nFiles)
		var want [][][]byte
		for i := range files {
			files[i], _, _ = s.Open(fmt.Sprintf("f%d", i))
			want = append(want, nil)
		}
		for i := 0; i < 30; i++ {
			fi := r.Intn(nFiles)
			rec := make([]byte, r.Intn(2000))
			r.Read(rec)
			if _, err := files[fi].Append(rec); err != nil {
				return false
			}
			want[fi] = append(want[fi], rec)
		}
		// Verify via a fresh recovery.
		s2, _, err := NewStore(d)
		if err != nil {
			return false
		}
		for i := range files {
			f2, ok := s2.Lookup(fmt.Sprintf("f%d", i))
			if !ok || f2.NumRecords() != len(want[i]) {
				return false
			}
			for j, w := range want[i] {
				got, _, err := f2.Read(j)
				if err != nil || !bytes.Equal(got, w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
