// The unified Instance API: one handle over every node shape the
// cluster can spawn — single-libOS nodes and sharded runtimes alike —
// plus the two live-reconfiguration verbs this layer exists for:
//
//   - Reshard(ctx, m): elastic repartition of a sharded catnip runtime
//     from its current active width to m, live under load. The device
//     plane re-steers RSS and pins surviving flows (catnip.Resteer),
//     the application plane (registered via SetResharder) migrates its
//     keyspace over the mesh with generation-tagged ownership, and
//     clients ride through on failover redials.
//
//   - SwitchKind(k): live migration of the node between the kernel
//     libOS (catnap) and the bypass libOS (catnip) — the LibrettOS
//     idea in Demikernel terms. Both transports drive the SAME
//     netstack over the SAME device, so established TCP connections
//     and armed listeners move as pointer handoffs; only the
//     per-packet cost profile and the syscall surface change.
package demikernel

import (
	"context"
	"fmt"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/kernel"
	"demikernel/internal/libos/catnap"
	"demikernel/internal/libos/catnip"
	"demikernel/internal/telemetry"
)

// Instance is the unified surface of a spawned node: polling, chaos
// lifecycle, topology introspection, and live reconfiguration. Both
// *Node (which Spawn returns) and *ShardedNode satisfy it, so rigs that
// orchestrate mixed fleets hold one type.
type Instance interface {
	// Poll pumps the instance's data path once.
	Poll() int
	// Background starts the instance's polling goroutines.
	Background() (stop func())
	// Crash kills the instance as a process death would; Restart
	// reconstitutes it on the same device, MAC, and IP.
	Crash() (int, error)
	Restart() error
	Crashed() bool
	// FabricPort is the switch port of the instance's NIC (-1 if none).
	FabricPort() int
	// Kind reports the library OS currently backing the instance.
	Kind() Kind
	// Shards reports the ACTIVE shard width (1 for unsharded nodes).
	Shards() int
	// Generation counts completed reshards.
	Generation() uint64
	// Reshard repartitions a sharded runtime to m active shards.
	Reshard(ctx context.Context, m int) error
	// SwitchKind migrates the node onto another library OS live.
	SwitchKind(k Kind) error
	// RegisterTelemetry lifts the instance's vertical into a registry.
	RegisterTelemetry(r *telemetry.Registry, prefix string)
}

var (
	_ Instance = (*Node)(nil)
	_ Instance = (*ShardedNode)(nil)
)

// Resharder is the application-plane hook Reshard drives: the app
// (e.g. kv.ShardedServer) repartitions its own state when the shard
// width changes. BeginReshard publishes the new generation; Stable
// reports the handoff drained.
type Resharder interface {
	BeginReshard(m int) error
	Stable() bool
}

// SetResharder registers the application-plane participant of this
// node's reshards. Without one, Reshard only re-steers the device plane.
func (n *Node) SetResharder(r Resharder) { n.resharder = r }

// Kind reports the library OS currently backing the node. It changes
// when SwitchKind succeeds.
func (n *Node) Kind() Kind { return n.kind }

// Shards reports the node's active shard width (1 when unsharded).
func (n *Node) Shards() int {
	if n.Sharded != nil {
		return n.Sharded.Set.Size()
	}
	return 1
}

// Generation counts this node's completed reshards.
func (n *Node) Generation() uint64 { return n.gen.Load() }

// Reshard repartitions the sharded catnip runtime to m active shards,
// live under load: the application plane (SetResharder) starts its
// generation-tagged keyspace handoff, the device plane pins surviving
// flows and flips the RSS width, and the call blocks until the handoff
// drains or ctx expires. m may grow or shrink the active set anywhere
// within the provisioned capacity (WithShardCapacity). Unsharded and
// tenant nodes return ErrNotSupported.
func (n *Node) Reshard(ctx context.Context, m int) error {
	if n.Sharded == nil {
		return fmt.Errorf("demikernel: Reshard on an unsharded node: %w", core.ErrNotSupported)
	}
	if n.Tenant != nil {
		return fmt.Errorf("demikernel: Reshard on a tenant node: %w", core.ErrNotSupported)
	}
	set := n.Sharded.Set
	if m < 1 || m > set.Capacity() {
		return fmt.Errorf("demikernel: reshard to %d shards outside [1,%d]", m, set.Capacity())
	}
	// Application plane first: by the time RSS lands a flow on a newly
	// activated shard, the keyspace routing already knows the new
	// generation and forwards misplaced requests.
	if r := n.resharder; r != nil {
		if err := r.BeginReshard(m); err != nil {
			return err
		}
	}
	if err := set.Resteer(m); err != nil {
		return err
	}
	n.gen.Add(1)
	if r := n.resharder; r != nil {
		for !r.Stable() {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(100 * time.Microsecond):
			}
		}
	}
	return nil
}

// SwitchKind migrates the node onto another library OS without dropping
// established connections: both catnap and catnip drive the same
// netstack object over the same simulated device, so the TCP state
// machines, listener backlogs, and timers stay in place while the
// transport above them is swapped and the per-packet cost profile flips
// between the kernel and bypass columns of the cost model. Queue
// descriptors keep their numbers; parked pops and staged pushes travel
// with them. A gratuitous ARP announces the (unchanged) binding, as a
// real migration would. Supported between Catnap and Catnip on
// unsharded, non-tenant nodes; everything else is ErrNotSupported.
func (n *Node) SwitchKind(k Kind) error {
	if k == n.kind {
		return nil
	}
	if n.Sharded != nil {
		return fmt.Errorf("demikernel: SwitchKind on a sharded node: %w", core.ErrNotSupported)
	}
	if n.Tenant != nil {
		return fmt.Errorf("demikernel: SwitchKind on a tenant node: %w", core.ErrNotSupported)
	}
	switch {
	case n.kind == Catnap && k == Catnip:
		return n.promoteToCatnip()
	case n.kind == Catnip && k == Catnap:
		return n.demoteToCatnap()
	}
	return fmt.Errorf("demikernel: SwitchKind %s→%s: %w", n.kind, k, core.ErrNotSupported)
}

// promoteToCatnip moves a catnap node onto the bypass path: the kernel's
// stack and device are adopted wholesale by a fresh catnip transport,
// every socket FD is detached from the kernel and rebuilt as a catnip
// endpoint, and the stack's per-packet tax drops to the user-level
// profile.
func (n *Node) promoteToCatnip() error {
	c := n.cluster
	kern := n.Kernel
	dev, stack := kern.Device(), kern.Stack()
	nt := catnip.NewOnStack(&c.Model, dev, catnip.Config{
		MAC:            n.MAC,
		IP:             n.IP,
		PerPacketExtra: n.cfg.PerPacketExtra,
		MemCapacity:    n.cfg.MemCapacity,
		RxReadyCap:     n.cfg.RxReadyCap,
	}, stack)
	if err := n.swapOnto(nt); err != nil {
		return err
	}
	stack.SetPerPacketExtra(n.cfg.PerPacketExtra)
	n.Catnip, n.Kernel = nt, nil
	n.kind = Catnip
	stack.AnnounceARP()
	return nil
}

// demoteToCatnap moves a catnip node back under kernel management: a
// fresh kernel adopts the running stack and device, socket state is
// wrapped in file descriptors, and the per-packet tax rises to the
// kernel profile.
func (n *Node) demoteToCatnap() error {
	c := n.cluster
	old := n.Catnip
	if old.HasUDP() {
		return fmt.Errorf("demikernel: SwitchKind with open UDP sockets: %w", core.ErrNotSupported)
	}
	dev, stack := old.Device(), old.Stack()
	kern := kernel.NewOnStack(&c.Model, dev, stack)
	nt := catnap.New(&c.Model, kern)
	if err := n.swapOnto(nt); err != nil {
		return err
	}
	stack.SetPerPacketExtra(kernel.KernelPerPacketExtra(&c.Model) + n.cfg.PerPacketExtra)
	n.Kernel, n.Catnip = kern, nil
	n.kind = Catnap
	stack.AnnounceARP()
	return nil
}

// swapOnto migrates every socket descriptor from the node's current
// transport onto nt via the Export/Adopt pair, then installs nt as the
// libOS transport. In-flight qtokens need no quiescing: undelivered
// completions and parked waiters travel inside each PortState, and
// operations racing the swap observe the old endpoint closed-in-place
// and fail with the retriable queue.ErrClosed.
func (n *Node) swapOnto(nt core.Transport) error {
	exp, ok := n.LibOS.Transport().(core.PortExporter)
	if !ok {
		return fmt.Errorf("demikernel: %s cannot export endpoints: %w", n.kind, core.ErrNotSupported)
	}
	ad, ok := nt.(core.PortAdopter)
	if !ok {
		return fmt.Errorf("demikernel: %s cannot adopt endpoints: %w", nt.Name(), core.ErrNotSupported)
	}
	n.LibOS.SwapTransport(nt, func(old core.Endpoint) core.Endpoint {
		st, ok := exp.Export(old)
		if !ok {
			return nil
		}
		ne, err := ad.Adopt(st)
		if err != nil {
			return nil
		}
		return ne
	})
	return nil
}

// --- ShardedNode's Instance surface (delegating to its Node) ---

// Kind reports the library OS backing the sharded runtime (Catnip).
func (n *ShardedNode) Kind() Kind { return Catnip }

// Shards reports the ACTIVE shard width.
func (n *ShardedNode) Shards() int { return n.Set.Size() }

// Capacity reports the provisioned shard width (WithShardCapacity).
func (n *ShardedNode) Capacity() int { return n.Set.Capacity() }

// Generation counts completed reshards.
func (n *ShardedNode) Generation() uint64 { return n.node.gen.Load() }

// Reshard repartitions the runtime to m active shards. See Node.Reshard.
func (n *ShardedNode) Reshard(ctx context.Context, m int) error { return n.node.Reshard(ctx, m) }

// SetResharder registers the application-plane reshard participant.
func (n *ShardedNode) SetResharder(r Resharder) { n.node.SetResharder(r) }

// SwitchKind is not supported on sharded runtimes.
func (n *ShardedNode) SwitchKind(k Kind) error {
	return fmt.Errorf("demikernel: SwitchKind on a sharded node: %w", core.ErrNotSupported)
}

// --- Router ---

// Router resolves client connections onto the shards of a sharded peer,
// correctly across reshard generations: every placement decision reads
// the server's CURRENT active width, so a client that routes through it
// after a reshard lands on live shards only.
type Router struct {
	c *Cluster
}

// Router returns the cluster's shard-aware dialing surface. It replaces
// the removed Cluster.DialToShard / catnip.SourcePortFor pair as the
// public API: those placed flows against a fixed shard count, which a
// reshard silently invalidates.
func (c *Cluster) Router() *Router { return &Router{c: c} }

// SourcePort searches the ephemeral range for a client source port
// whose flow lands on shard target of srv under srv's current
// generation. seed staggers the search start so concurrent dialers
// pick distinct ports.
func (r *Router) SourcePort(client *Node, srv *ShardedNode, port uint16, target int, seed uint16) uint16 {
	return catnip.SourcePortFor(client.IP, srv.IP, port, srv.Shards(), target, seed)
}

// DialShard connects a plain catnip client node to one specific shard
// of a sharded peer, computing the source port against the server's
// current active width. The caller must keep the server side polling
// (Background) for the handshake to complete. target must name an
// active shard.
func (r *Router) DialShard(client *Node, srv *ShardedNode, port uint16, target int, seed uint16) (QD, error) {
	if target < 0 || target >= srv.Shards() {
		return core.InvalidQD, fmt.Errorf("demikernel: dial to shard %d of %d active", target, srv.Shards())
	}
	sp := r.SourcePort(client, srv, port, target, seed)
	ep, err := client.Catnip.SocketFrom(sp)
	if err != nil {
		return core.InvalidQD, err
	}
	qd := client.LibOS.AdoptEndpoint(ep)
	if err := client.LibOS.Connect(qd, Addr{IP: srv.IP, MAC: srv.MAC, Port: port}); err != nil {
		client.LibOS.Close(qd)
		return core.InvalidQD, err
	}
	return qd, nil
}
