package fabric

import (
	"strings"
	"testing"
)

// countingAcct is a test accountant with a byte cap.
type countingAcct struct {
	cap     int64
	held    int64
	charges int
	credits int
}

func (a *countingAcct) ChargeFrame(n int) bool {
	if a.cap > 0 && a.held+int64(n) > a.cap {
		return false
	}
	a.held += int64(n)
	a.charges++
	return true
}

func (a *countingAcct) CreditFrame(n int) {
	a.held -= int64(n)
	a.credits++
}

func TestFramePoolAccounting(t *testing.T) {
	p := NewFramePool()
	acct := &countingAcct{cap: 4096}
	p.SetOwner("tenant-a", acct)

	// 2048-byte class: two fit, the third is refused.
	b1 := p.Get(1500)
	b2 := p.Get(1500)
	if b1 == nil || b2 == nil {
		t.Fatal("in-quota Get returned nil")
	}
	if b3 := p.Get(1500); b3 != nil {
		t.Fatal("over-quota Get succeeded")
	}
	if p.Stats().QuotaDenied != 1 {
		t.Fatalf("QuotaDenied = %d, want 1", p.Stats().QuotaDenied)
	}
	// Charges are class-rounded: 1500 pins a 2048-byte class slot.
	if acct.held != 4096 {
		t.Fatalf("held = %d, want 4096 (class-rounded)", acct.held)
	}
	b1.Release()
	if acct.held != 2048 {
		t.Fatalf("held = %d after release, want 2048", acct.held)
	}
	// Freed quota is immediately allocatable again.
	if b := p.Get(1500); b == nil {
		t.Fatal("Get refused after quota freed")
	} else {
		b.Release()
	}
	b2.Release()
	if acct.held != 0 {
		t.Fatalf("held = %d after all releases, want 0", acct.held)
	}
}

func TestFramePoolAccountsOversized(t *testing.T) {
	p := NewFramePool()
	acct := &countingAcct{}
	p.SetOwner("tenant-a", acct)
	// Oversized buffers (beyond the largest class) are heap-backed and
	// never recycled, but they still pin tenant memory and must be
	// charged and credited like everything else.
	b := p.Get(1 << 20)
	if b == nil {
		t.Fatal("oversized Get refused without a cap")
	}
	if acct.held != 1<<20 {
		t.Fatalf("held = %d, want %d", acct.held, 1<<20)
	}
	b.Release()
	if acct.held != 0 || acct.credits != 1 {
		t.Fatalf("held=%d credits=%d after oversized release", acct.held, acct.credits)
	}
}

func TestFramePoolUnownedNeverDenies(t *testing.T) {
	p := NewFramePool()
	for i := 0; i < 64; i++ {
		b := p.Get(2048)
		if b == nil {
			t.Fatal("accountant-less pool returned nil")
		}
		b.Release()
	}
	if p.Stats().QuotaDenied != 0 {
		t.Fatal("accountant-less pool counted denials")
	}
}

// mustPanicWith runs f and asserts it panics with a message containing
// every needle — the owner-tag fence: violations name the offender.
func mustPanicWith(t *testing.T, f func(), needles ...string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		for _, n := range needles {
			if !strings.Contains(msg, n) {
				t.Fatalf("panic %q does not name %q", msg, n)
			}
		}
	}()
	f()
}

func TestDoubleReleaseNamesOwner(t *testing.T) {
	p := NewFramePool()
	p.SetOwner("hostile", nil)
	// Oversized buffer: its final release does not recycle into a
	// sync.Pool, so the double release deterministically underflows the
	// same FrameBuf rather than racing a recycled one.
	b := p.Get(1 << 20)
	b.Release()
	mustPanicWith(t, b.Release, "double release", "hostile")
}

func TestIllegalRetainNamesOwner(t *testing.T) {
	p := NewFramePool()
	p.SetOwner("hostile", nil)
	b := p.Get(1 << 20)
	b.Release()
	mustPanicWith(t, b.Retain, "Retain on released", "hostile")
}

func TestDoubleReleaseUnownedStillPanics(t *testing.T) {
	p := NewFramePool()
	b := p.Get(1 << 20)
	b.Release()
	mustPanicWith(t, b.Release, "double release")
}
