package netstack

// Regression tests for the slow-client stall bugs surfaced by the HTTP
// workload: a receiver that drains late must (a) announce the reopened
// window instead of leaving the sender to discover it via RTO, (b)
// deliver out-of-order segments parked while the reassembly buffer was
// full, and (c) a sender whose window-update ACK was lost must probe the
// zero window instead of deadlocking. Each test fails deterministically
// when its fix in tcp.go is reverted.

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// TestTCPWindowReopenNoRetransmit: the sender fills the receiver's tiny
// window and stalls with nothing in flight; the application then drains.
// RecvAppend must emit the window-update ACK itself — the transfer has to
// complete with zero retransmissions (before the fix, every reopen cost
// one RTO-driven retransmit).
func TestTCPWindowReopenNoRetransmit(t *testing.T) {
	// RTO is set far above the test's runtime so an RTO-based recovery
	// cannot masquerade as success: without the window-update ACK the
	// transfer stalls until the retransmit fires and the stat trips.
	w := newWorld(t, Config{MSS: 512, RTO: 500 * time.Millisecond},
		Config{MSS: 512, RxWindow: 1024, RTO: 500 * time.Millisecond})
	c, srv := dialPair(t, w, 8000)
	msg := make([]byte, 8_000)
	rand.New(rand.NewSource(11)).Read(msg)
	sent := 0
	// Fill the window without draining: the sender must stall around the
	// 1024-byte advertised window with everything it sent ACKed.
	for i := 0; i < 50; i++ {
		if sent < len(msg) {
			n, err := c.Send(msg[sent:], 0)
			if err != nil {
				t.Fatal(err)
			}
			sent += n
		}
		w.pump()
	}
	if !srv.Readable() {
		t.Fatal("receiver buffered nothing; stall never engaged")
	}
	// Drain-and-refill: every RecvAppend that reopens the window must
	// unblock the sender by itself.
	var got []byte
	w.pumpUntil(t, func() bool {
		if sent < len(msg) {
			n, _ := c.Send(msg[sent:], 0)
			sent += n
		}
		b, _, err := srv.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b...)
		return len(got) == len(msg)
	}, 10*time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatal("stream corrupted across window reopens")
	}
	if rt, frt := w.a.Stats().Retransmits, w.a.Stats().FastRetransmits; rt != 0 || frt != 0 {
		t.Fatalf("window reopens recovered via retransmission (rto=%d fast=%d), want window-update ACKs", rt, frt)
	}
}

// TestTCPRecvRedrainsOutOfOrder: an out-of-order segment parked because
// the reassembly buffer had no room (space < len(payload) in
// drainOutOfOrderLocked) must be delivered when the application drains —
// not held until the sender retransmits it. Segments are injected
// directly into the connection so no retransmission can ever repair a
// miss: before the fix the parked bytes are simply never delivered.
func TestTCPRecvRedrainsOutOfOrder(t *testing.T) {
	w := newWorld(t, Config{MSS: 512}, Config{MSS: 512, RxWindow: 1024})
	_, srv := dialPair(t, w, 8000)

	full := make([]byte, 1536)
	rand.New(rand.NewSource(12)).Read(full)
	base := srv.rcvNxt
	inject := func(off, n int) {
		w.b.mu.Lock()
		srv.handleSegmentLocked(tcpSegment{
			srcPort: srv.key.remotePort,
			dstPort: srv.key.localPort,
			seq:     base + uint32(off),
			ack:     srv.sndNxt,
			flags:   flagACK | flagPSH,
			window:  0xffff,
			payload: full[off : off+n],
		}, 0)
		w.b.mu.Unlock()
	}
	inject(0, 768)    // in-order: rcvBuf holds 768, space 256
	inject(1024, 512) // future segment: stashed in ooo
	inject(768, 256)  // fills the gap exactly; rcvBuf full (1024)
	// The stashed segment cannot drain yet: space (0) < payload (512).
	if len(srv.ooo) != 1 {
		t.Fatalf("ooo stash = %d segments, want 1 parked", len(srv.ooo))
	}

	got, _, err := srv.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1024 {
		t.Fatalf("first drain returned %d bytes, want 1024", len(got))
	}
	// The drain freed 1024 bytes of window; the parked segment must have
	// moved into rcvBuf during the same call.
	if len(srv.ooo) != 0 {
		t.Fatal("out-of-order segment still parked after the app drained")
	}
	rest, _, err := srv.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, rest...)
	if !bytes.Equal(got, full) {
		t.Fatalf("reassembled %d bytes, corrupt or short (want %d)", len(got), len(full))
	}
}

// TestTCPZeroWindowProbeRecoversLostUpdate: the sender goes fully ACKed
// against a zero window, the receiver's window-update ACK is lost on a
// down link, and the application then queues more data. Nothing is in
// flight, so only a persist-timer probe can discover the reopened
// window; before the fix the connection deadlocks silently.
func TestTCPZeroWindowProbeRecoversLostUpdate(t *testing.T) {
	w := newWorld(t, Config{MSS: 512, RTO: 5 * time.Millisecond},
		Config{MSS: 512, RxWindow: 1024, RTO: 5 * time.Millisecond})
	c, srv := dialPair(t, w, 8000)
	msg := make([]byte, 1536)
	rand.New(rand.NewSource(13)).Read(msg)

	// Phase 1: fill the receiver's window exactly. Everything sent is
	// ACKed (final ACK advertises window 0), so the sender's sndBuf
	// empties and its retransmission timer is cleared — the quiescent
	// state with no recovery traffic in flight.
	if n, err := c.Send(msg[:1024], 0); err != nil || n != 1024 {
		t.Fatalf("Send = %d, %v", n, err)
	}
	w.pumpUntil(t, func() bool {
		w.b.mu.Lock()
		filled := len(srv.rcvBuf) == 1024
		w.b.mu.Unlock()
		w.a.mu.Lock()
		drained := len(c.sndBuf) == 0 && c.peerWnd == 0
		w.a.mu.Unlock()
		return filled && drained
	}, 5*time.Second)

	// Phase 2: cut the receiver's link and drain the application. The
	// window-update ACK the drain emits dies on the wire.
	w.sw.SetLinkState(w.devB.PortID(), false)
	got, _, err := srv.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1024 {
		t.Fatalf("drained %d bytes, want 1024", len(got))
	}
	w.pump() // flush the doomed ACK into the down link
	w.sw.SetLinkState(w.devB.PortID(), true)
	if w.sw.Stats().LinkDownDrops == 0 {
		t.Fatal("window update was not dropped; the lost-ACK scenario never engaged")
	}

	// Phase 3: more data. The sender still believes the window is zero;
	// with nothing in flight only the zero-window probe can save it.
	if _, err := c.Send(msg[1024:], 0); err != nil {
		t.Fatal(err)
	}
	w.pumpUntil(t, func() bool {
		b, _, err := srv.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b...)
		return len(got) == len(msg)
	}, 5*time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatal("stream corrupted across the zero-window probe")
	}
	if w.a.Stats().Retransmits == 0 {
		t.Fatal("no probe recorded; recovery happened some other way")
	}
}

// TestTCPSendPartialWriteResume pins the Send/SendBuffered short-write
// contract: a full send buffer yields (n < len(b), nil) — never an error,
// never silent truncation — and a caller-side resume loop completes the
// transfer. The steady-state chunk loop is also fenced to stay
// allocation-free, so the resume path is safe inside zero-alloc servers.
func TestTCPSendPartialWriteResume(t *testing.T) {
	w := newWorld(t, Config{MSS: 1400}, Config{MSS: 1400})
	c, srv := dialPair(t, w, 8000)

	// 300 KiB against the 256 KiB sndBufMax: the first Send must come up
	// short with a nil error.
	msg := make([]byte, 300*1024)
	rand.New(rand.NewSource(14)).Read(msg)
	n, err := c.Send(msg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n == len(msg) {
		t.Fatalf("Send accepted %d bytes past sndBufMax", n)
	}
	if n != sndBufMax {
		t.Fatalf("short write accepted %d, want %d", n, sndBufMax)
	}
	// A second Send against the still-full buffer is the documented
	// (0, nil) backpressure signal.
	if n2, err := c.Send(msg[n:], 0); err != nil || n2 != 0 {
		t.Fatalf("Send on full buffer = (%d, %v), want (0, nil)", n2, err)
	}
	sent := n
	got := make([]byte, 0, len(msg))
	w.pumpUntil(t, func() bool {
		if sent < len(msg) {
			nn, err := c.Send(msg[sent:], 0)
			if err != nil {
				t.Fatal(err)
			}
			sent += nn
		}
		b, _, err := srv.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b...)
		return len(got) == len(msg)
	}, 20*time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatal("resume loop corrupted the stream")
	}

	// Alloc fence: one chunk sent, pumped, and drained per run with all
	// buffers warm must not allocate (pooled frames, reused scratch).
	chunk := msg[:512]
	scratch := make([]byte, 0, 4096)
	roundTrip := func() {
		nn, err := c.Send(chunk, 0)
		if err != nil {
			t.Fatal(err)
		}
		rcvd := 0
		for rcvd < nn {
			w.pump()
			b, _, err := srv.RecvAppend(scratch[:0], 0)
			if err != nil {
				t.Fatal(err)
			}
			rcvd += len(b)
		}
	}
	roundTrip() // warm pools and scratch
	if allocs := testing.AllocsPerRun(50, roundTrip); allocs > 0 {
		t.Errorf("steady-state partial-write loop allocates %.1f/op, want 0", allocs)
	}
}
