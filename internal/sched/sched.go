// Package sched implements the event-scheduling integration sketched in
// §4.4 of the paper: "we envision Demikernel libOSes being tightly
// integrated with existing scheduling libraries ... we plan to implement
// a libevent-based Demikernel OS, which would enable applications, like
// memcached, to achieve the benefits of kernel-bypass transparently."
//
// EventLoop is that libevent-shaped adapter: applications register
// callbacks for accepts and pops, and the loop turns qtoken completions
// into callback invocations. Because each qtoken is unique to one
// operation, dispatch needs no readiness scans and no wasted wakeups —
// the completion already carries the data (§4.4's two fixes to epoll).
package sched

import (
	"sync"

	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
)

// PopHandler receives one completed pop.
type PopHandler func(qd core.QD, comp queue.Completion)

// PushHandler receives one completed push.
type PushHandler func(qd core.QD, comp queue.Completion)

// AcceptHandler receives one accepted connection descriptor.
type AcceptHandler func(conn core.QD)

// EventLoop multiplexes Demikernel completions into callbacks.
// All methods are safe for concurrent use; callbacks run on the loop's
// ticking goroutine.
type EventLoop struct {
	lib *core.LibOS

	mu        sync.Mutex
	pops      map[queue.QToken]popReg
	pushes    map[queue.QToken]pushReg
	acceptors map[core.QD]AcceptHandler
	stopped   bool

	dispatched int64
}

type popReg struct {
	qd      core.QD
	handler PopHandler
	rearm   bool
}

type pushReg struct {
	qd      core.QD
	handler PushHandler
}

// New creates an event loop over lib.
func New(lib *core.LibOS) *EventLoop {
	return &EventLoop{
		lib:       lib,
		pops:      make(map[queue.QToken]popReg),
		pushes:    make(map[queue.QToken]pushReg),
		acceptors: make(map[core.QD]AcceptHandler),
	}
}

// OnAccept registers a callback for every connection accepted on the
// listening descriptor.
func (el *EventLoop) OnAccept(lqd core.QD, h AcceptHandler) {
	el.mu.Lock()
	defer el.mu.Unlock()
	el.acceptors[lqd] = h
}

// OnPop arms one pop on qd and invokes h with its completion. When rearm
// is true the loop immediately arms the next pop on the same descriptor
// after each successful completion — the shape of a request loop.
func (el *EventLoop) OnPop(qd core.QD, rearm bool, h PopHandler) error {
	qt, err := el.lib.Pop(qd)
	if err != nil {
		return err
	}
	el.mu.Lock()
	el.pops[qt] = popReg{qd: qd, handler: h, rearm: rearm}
	el.mu.Unlock()
	return nil
}

// Push submits s on qd and invokes h (which may be nil) on completion.
func (el *EventLoop) Push(qd core.QD, s sga.SGA, cost simclock.Lat, h PushHandler) error {
	qt, err := el.lib.PushCost(qd, s, cost)
	if err != nil {
		return err
	}
	el.mu.Lock()
	el.pushes[qt] = pushReg{qd: qd, handler: h}
	el.mu.Unlock()
	return nil
}

// Dispatched returns the number of callbacks invoked so far.
func (el *EventLoop) Dispatched() int64 {
	el.mu.Lock()
	defer el.mu.Unlock()
	return el.dispatched
}

// Tick runs one loop iteration: poll the libOS, accept pending
// connections, and dispatch every completed token. It returns the number
// of callbacks invoked.
func (el *EventLoop) Tick() int {
	el.lib.Poll()
	n := el.dispatchAccepts()
	n += el.dispatchPops()
	n += el.dispatchPushes()
	return n
}

func (el *EventLoop) dispatchAccepts() int {
	el.mu.Lock()
	type acc struct {
		lqd core.QD
		h   AcceptHandler
	}
	var accs []acc
	for lqd, h := range el.acceptors {
		accs = append(accs, acc{lqd, h})
	}
	el.mu.Unlock()

	n := 0
	for _, a := range accs {
		for {
			conn, ok, err := el.lib.TryAccept(a.lqd)
			if err != nil || !ok {
				break
			}
			a.h(conn)
			el.mu.Lock()
			el.dispatched++
			el.mu.Unlock()
			n++
		}
	}
	return n
}

func (el *EventLoop) dispatchPops() int {
	el.mu.Lock()
	tokens := make([]queue.QToken, 0, len(el.pops))
	for qt := range el.pops {
		tokens = append(tokens, qt)
	}
	el.mu.Unlock()

	n := 0
	for _, qt := range tokens {
		comp, ok, err := el.lib.TryWait(qt)
		if err != nil || !ok {
			continue
		}
		el.mu.Lock()
		reg, found := el.pops[qt]
		delete(el.pops, qt)
		el.dispatched++
		el.mu.Unlock()
		if !found {
			continue
		}
		reg.handler(reg.qd, comp)
		n++
		if reg.rearm && comp.Err == nil {
			el.OnPop(reg.qd, true, reg.handler)
		}
	}
	return n
}

func (el *EventLoop) dispatchPushes() int {
	el.mu.Lock()
	tokens := make([]queue.QToken, 0, len(el.pushes))
	for qt := range el.pushes {
		tokens = append(tokens, qt)
	}
	el.mu.Unlock()

	n := 0
	for _, qt := range tokens {
		comp, ok, err := el.lib.TryWait(qt)
		if err != nil || !ok {
			continue
		}
		el.mu.Lock()
		reg, found := el.pushes[qt]
		delete(el.pushes, qt)
		el.dispatched++
		el.mu.Unlock()
		if found && reg.handler != nil {
			reg.handler(reg.qd, comp)
		}
		n++
	}
	return n
}

// Run ticks until stop closes.
func (el *EventLoop) Run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		el.Tick()
	}
}

// Pending reports armed-but-incomplete operations (for tests).
func (el *EventLoop) Pending() int {
	el.mu.Lock()
	defer el.mu.Unlock()
	return len(el.pops) + len(el.pushes)
}
