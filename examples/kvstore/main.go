// kvstore: the paper's running example — a Redis-like key-value store
// whose values travel and are stored zero-copy (§4.5). Run it over the
// kernel-bypass libOS (default) or the legacy kernel libOS to see the
// §3.2 copy/syscall overheads appear:
//
//	go run ./examples/kvstore            # catnip (kernel-bypass)
//	go run ./examples/kvstore -posix     # catnap (legacy kernel path)
package main

import (
	"flag"
	"fmt"
	"log"

	demi "demikernel"
	"demikernel/internal/apps/kv"
)

func main() {
	posix := flag.Bool("posix", false, "run over the legacy kernel libOS (catnap)")
	flag.Parse()

	cluster := demi.NewCluster(7)
	var srvNode, cliNode *demi.Node
	if *posix {
		srvNode = cluster.MustSpawn(demi.Catnap, demi.WithHost(1))
		cliNode = cluster.MustSpawn(demi.Catnap, demi.WithHost(2))
	} else {
		srvNode = cluster.MustSpawn(demi.Catnip, demi.WithHost(1))
		cliNode = cluster.MustSpawn(demi.Catnip, demi.WithHost(2))
	}

	server := kv.NewServer(srvNode.LibOS, &cluster.Model)
	if err := server.Listen(6379); err != nil {
		log.Fatal(err)
	}
	defer srvNode.Background()()
	defer cliNode.Background()()
	stop := make(chan struct{})
	defer close(stop)
	go server.Run(stop)

	client := kv.NewClient(cliNode.LibOS)
	if err := client.Connect(cluster.AddrOf(srvNode, 6379)); err != nil {
		log.Fatal(err)
	}

	// A 4KB value: the size the paper uses for its copy-overhead claim.
	value := make([]byte, 4096)
	for i := range value {
		value[i] = byte(i)
	}
	setCost, err := client.Set("user:1000", value)
	if err != nil {
		log.Fatal(err)
	}
	got, getCost, found, err := client.Get("user:1000")
	if err != nil || !found {
		log.Fatalf("get: found=%v err=%v", found, err)
	}
	fmt.Printf("libOS=%s  SET 4KB: %v   GET 4KB: %v   (value intact: %v)\n",
		srvNode.Name(), setCost, getCost, len(got) == len(value))

	if *posix {
		ctr := cliNode.Kernel.Counters()
		fmt.Printf("legacy path paid: %d syscall crossings, %d bytes copied\n",
			ctr.SyscallCrossings, ctr.BytesCopied)
	} else {
		fmt.Println("kernel-bypass path: 0 syscalls, 0 charged payload copies")
	}
}
