// Package membuf implements the Demikernel libOS memory manager (§4.5).
//
// Kernel-bypass devices require memory registration before DMA, and
// zero-copy I/O requires that buffers are not recycled while a device is
// still using them. The paper's design makes both transparent:
//
//   - Transparent registration: the libOS registers whole memory regions
//     with every attached kernel-bypass device and allocates application
//     buffers out of those regions, so applications never call a
//     registration API and registration cost is amortised over a region
//     rather than paid per buffer.
//
//   - Free-protection: "applications can free buffers while they are in
//     use by a device, but the libOS will not deallocate the buffer until
//     the device completes its I/O." Buffers are reference counted;
//     devices hold a reference for the duration of an I/O.
//
// The package charges virtual registration costs through the simclock
// cost model and exposes counters so experiments can observe pinned
// memory, registration counts, and deferred frees.
package membuf

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// ErrNoMem is returned by TryAlloc when the optional capacity cap is
// reached: all registered memory is pinned by live buffers. Transports
// surface it through push completions, turning pool exhaustion into
// visible backpressure instead of unbounded region growth.
var ErrNoMem = errors.New("membuf: registered-memory capacity exhausted")

// RegistrationSink is implemented by simulated kernel-bypass devices that
// need to learn about DMA-able memory regions (IOMMU programming, rkey
// issue, ...). The manager calls RegisterRegion once per (device, region)
// pair.
type RegistrationSink interface {
	RegisterRegion(id uint64, mem []byte)
}

// DefaultRegionSize is the size of each slab region the manager carves
// buffers from. One registration covers a whole region.
const DefaultRegionSize = 256 * 1024

// defaultClasses are the allocation size classes.
var defaultClasses = []int{64, 256, 1024, 4096, 16384, 65536}

// Stats describes the manager's observable behaviour.
type Stats struct {
	Regions          int          // regions created
	PinnedBytes      int64        // total bytes pinned (all regions)
	Registrations    int64        // device registrations performed
	RegistrationCost simclock.Lat // total virtual registration cost
	Allocs           int64        // buffers handed to the application
	Recycled         int64        // buffers returned to free lists
	DeferredFrees    int64        // frees deferred by free-protection
	DoubleFrees      int64        // application double-free attempts
	LiveBuffers      int64        // currently outstanding buffers
	NoMemFailures    int64        // TryAllocs rejected by the capacity cap
}

// Manager is a region-based slab allocator with transparent device
// registration. It is safe for concurrent use.
type Manager struct {
	model      *simclock.CostModel
	regionSize int
	classes    []int
	capacity   int64 // max pinned bytes; 0 = unbounded

	mu      sync.Mutex
	devices []RegistrationSink
	regions []*region
	free    map[int][]*Buffer // size class -> free buffers
	nextID  uint64
	stats   Stats
}

type region struct {
	id  uint64
	mem []byte
}

// Option configures a Manager.
type Option func(*Manager)

// WithRegionSize overrides the slab region size.
func WithRegionSize(n int) Option {
	return func(m *Manager) { m.regionSize = n }
}

// WithSizeClasses overrides the allocation size classes. Classes must be
// ascending; the largest class bounds the largest slab allocation.
func WithSizeClasses(classes []int) Option {
	return func(m *Manager) {
		cs := append([]int(nil), classes...)
		sort.Ints(cs)
		m.classes = cs
	}
}

// WithCapacity caps the total bytes of pinned (registered) memory the
// manager may create. When a TryAlloc would need a new region past the
// cap, it fails with ErrNoMem — the backpressure signal. Zero means
// unbounded (the pre-cap behaviour).
func WithCapacity(maxBytes int64) Option {
	return func(m *Manager) { m.capacity = maxBytes }
}

// NewManager returns a memory manager charging costs against model.
func NewManager(model *simclock.CostModel, opts ...Option) *Manager {
	m := &Manager{
		model:      model,
		regionSize: DefaultRegionSize,
		classes:    defaultClasses,
		free:       make(map[int][]*Buffer),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// AttachDevice registers every existing region with dev and arranges for
// future regions to be registered as they are created. This is the
// control-path moment where the libOS makes "all application memory
// available to I/O devices" (§3.1).
func (m *Manager) AttachDevice(dev RegistrationSink) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.devices = append(m.devices, dev)
	for _, r := range m.regions {
		m.registerLocked(dev, r)
	}
}

func (m *Manager) registerLocked(dev RegistrationSink, r *region) {
	dev.RegisterRegion(r.id, r.mem)
	m.stats.Registrations++
	m.stats.RegistrationCost += m.model.RegistrationNS
}

// sizeClass returns the smallest class >= n, or n itself when it exceeds
// the largest class (such buffers get a dedicated region).
func (m *Manager) sizeClass(n int) (int, bool) {
	for _, c := range m.classes {
		if n <= c {
			return c, true
		}
	}
	return n, false
}

// Alloc returns a buffer of at least n usable bytes from registered
// memory. Alloc never returns nil; it panics on non-positive sizes, which
// indicate a caller bug, and on capacity exhaustion when a cap was
// configured — callers that want backpressure instead use TryAlloc.
func (m *Manager) Alloc(n int) *Buffer {
	b, err := m.TryAlloc(n)
	if err != nil {
		panic(fmt.Sprintf("membuf: Alloc(%d): %v (use TryAlloc with WithCapacity)", n, err))
	}
	return b
}

// TryAlloc returns a buffer of at least n usable bytes from registered
// memory, or ErrNoMem when the configured capacity cap leaves no room
// for a new region. It panics on non-positive sizes, which indicate a
// caller bug.
func (m *Manager) TryAlloc(n int) (*Buffer, error) {
	if n <= 0 {
		panic(fmt.Sprintf("membuf: TryAlloc(%d)", n))
	}
	class, slabbed := m.sizeClass(n)

	m.mu.Lock()
	defer m.mu.Unlock()

	if slabbed {
		if list := m.free[class]; len(list) == 0 {
			if err := m.carveRegionLocked(class); err != nil {
				m.stats.NoMemFailures++
				return nil, err
			}
		}
		list := m.free[class]
		b := list[len(list)-1]
		m.free[class] = list[:len(list)-1]
		b.reset(n)
		m.stats.Allocs++
		m.stats.LiveBuffers++
		return b, nil
	}

	// Oversized allocation: dedicated region, not recycled through a
	// free list (it is returned whole on final release).
	r, err := m.newRegionLocked(n)
	if err != nil {
		m.stats.NoMemFailures++
		return nil, err
	}
	b := &Buffer{mgr: m, class: class, data: r.mem[:n], full: r.mem}
	b.refs.Store(1)
	m.stats.Allocs++
	m.stats.LiveBuffers++
	return b, nil
}

// carveRegionLocked creates a region and slices it into free buffers of
// the given class.
func (m *Manager) carveRegionLocked(class int) error {
	size := m.regionSize
	if size < class {
		size = class
	}
	r, err := m.newRegionLocked(size)
	if err != nil {
		return err
	}
	for off := 0; off+class <= len(r.mem); off += class {
		full := r.mem[off : off+class : off+class]
		b := &Buffer{mgr: m, class: class, data: full, full: full}
		m.free[class] = append(m.free[class], b)
	}
	return nil
}

func (m *Manager) newRegionLocked(size int) (*region, error) {
	if m.capacity > 0 && m.stats.PinnedBytes+int64(size) > m.capacity {
		return nil, fmt.Errorf("%w: pinned %d + region %d > cap %d",
			ErrNoMem, m.stats.PinnedBytes, size, m.capacity)
	}
	m.nextID++
	r := &region{id: m.nextID, mem: make([]byte, size)}
	m.regions = append(m.regions, r)
	m.stats.Regions++
	m.stats.PinnedBytes += int64(size)
	for _, dev := range m.devices {
		m.registerLocked(dev, r)
	}
	return r, nil
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// RegisterTelemetry lifts the manager's counters into a telemetry
// registry under prefix (e.g. "membuf"). Sample funcs snapshot Stats()
// at read time.
func (m *Manager) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	stat := func(read func(Stats) int64) func() int64 {
		return func() int64 { return read(m.Stats()) }
	}
	r.RegisterFunc(prefix+".regions", stat(func(s Stats) int64 { return int64(s.Regions) }))
	r.RegisterFunc(prefix+".pinned_bytes", stat(func(s Stats) int64 { return s.PinnedBytes }))
	r.RegisterFunc(prefix+".registrations", stat(func(s Stats) int64 { return s.Registrations }))
	r.RegisterFunc(prefix+".allocs", stat(func(s Stats) int64 { return s.Allocs }))
	r.RegisterFunc(prefix+".recycled", stat(func(s Stats) int64 { return s.Recycled }))
	r.RegisterFunc(prefix+".deferred_frees", stat(func(s Stats) int64 { return s.DeferredFrees }))
	r.RegisterFunc(prefix+".double_frees", stat(func(s Stats) int64 { return s.DoubleFrees }))
	r.RegisterFunc(prefix+".live_buffers", stat(func(s Stats) int64 { return s.LiveBuffers }))
	r.RegisterFunc(prefix+".nomem_failures", stat(func(s Stats) int64 { return s.NoMemFailures }))
}

func (m *Manager) recycle(b *Buffer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.LiveBuffers--
	_, slabbed := m.sizeClass(b.class)
	if slabbed {
		m.stats.Recycled++
		m.free[b.class] = append(m.free[b.class], b)
	}
	// Oversized dedicated regions are simply dropped; the simulated pin
	// stays accounted, mirroring how pinned regions are rarely returned.
}

func (m *Manager) noteDeferredFree() {
	m.mu.Lock()
	m.stats.DeferredFrees++
	m.mu.Unlock()
}

func (m *Manager) noteDoubleFree() {
	m.mu.Lock()
	m.stats.DoubleFrees++
	m.mu.Unlock()
}

// Buffer is a reference-counted, device-registered byte buffer.
//
// The application owns one reference from Alloc and drops it with Free.
// Devices (or queue implementations acting for them) bracket each I/O with
// HoldForIO / ReleaseFromIO. The storage is recycled only when every
// reference is gone, implementing the paper's free-protection.
type Buffer struct {
	mgr   *Manager
	class int
	data  []byte // current allocation view (len = requested size)
	full  []byte // full capacity backing slice
	refs  atomic.Int32
	freed atomic.Bool
}

func (b *Buffer) reset(n int) {
	b.data = b.full[:n]
	b.refs.Store(1)
	b.freed.Store(false)
}

// Bytes returns the buffer's usable bytes. The slice is valid until the
// final reference is released.
func (b *Buffer) Bytes() []byte { return b.data }

// Cap returns the full capacity of the underlying slab slot.
func (b *Buffer) Cap() int { return len(b.full) }

// HoldForIO takes a device reference for the duration of an I/O
// (free-protection, §4.5). It must be paired with ReleaseFromIO.
func (b *Buffer) HoldForIO() {
	if b.refs.Add(1) <= 1 {
		panic("membuf: HoldForIO on released buffer")
	}
}

// ReleaseFromIO drops a device reference taken by HoldForIO. If the
// application already freed the buffer, the storage is recycled now.
func (b *Buffer) ReleaseFromIO() {
	b.release()
}

// Free drops the application's reference. If a device still holds the
// buffer, deallocation is deferred until the device completes — the
// application never coordinates with the device itself. Double frees are
// counted and otherwise ignored.
func (b *Buffer) Free() {
	if b.freed.Swap(true) {
		b.mgr.noteDoubleFree()
		return
	}
	if b.refs.Load() > 1 {
		// Device still holds it; free-protection defers the release.
		b.mgr.noteDeferredFree()
	}
	b.release()
}

// InFlight reports whether any device reference is outstanding.
func (b *Buffer) InFlight() bool { return b.refs.Load() > 1 }

// Freed reports whether the application has called Free.
func (b *Buffer) Freed() bool { return b.freed.Load() }

func (b *Buffer) release() {
	n := b.refs.Add(-1)
	switch {
	case n == 0:
		b.mgr.recycle(b)
	case n < 0:
		panic("membuf: reference count underflow")
	}
}
