package nic

import (
	"testing"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
)

// ipv4TCPFrame builds a frame FlowKeyOf can parse: version/IHL 0x45,
// proto TCP, real addresses and ports at their wire offsets.
func ipv4TCPFrame(dst, src fabric.MAC, srcIP, dstIP [4]byte, srcPort, dstPort uint16) []byte {
	f := ipv4Frame(dst, src, srcIP, dstIP, srcPort, dstPort)
	f[14] = 0x45
	f[23] = 6
	return f
}

func TestSetRSSQueuesNarrowsSpread(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 7)
	a := New(&model, sw, Config{MAC: macA})
	b := New(&model, sw, Config{MAC: macB, RxQueues: 8})
	if err := b.SetRSSQueues(2); err != nil {
		t.Fatal(err)
	}
	srcIP := [4]byte{10, 0, 0, 1}
	dstIP := [4]byte{10, 0, 0, 2}
	for p := uint16(2000); p < 2256; p++ {
		a.Tx(ipv4TCPFrame(macB, macA, srcIP, dstIP, p, 80), 0)
	}
	got := 0
	for q := 0; q < 2; q++ {
		got += len(b.RxBurst(q, 512))
	}
	if got != 256 {
		t.Fatalf("queues [0,2) received %d of 256 frames with RSS width 2", got)
	}
	for q := 2; q < 8; q++ {
		if n := b.RxOccupancy(q); n != 0 {
			t.Fatalf("queue %d received %d frames despite RSS width 2", q, n)
		}
	}
	if err := b.SetRSSQueues(9); err == nil {
		t.Fatal("SetRSSQueues(9) on an 8-queue device must fail")
	}
	if b.RSSQueues() != 2 {
		t.Fatalf("RSSQueues() = %d, want 2", b.RSSQueues())
	}
}

func TestFlowPinsOverrideRSS(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 7)
	a := New(&model, sw, Config{MAC: macA})
	b := New(&model, sw, Config{MAC: macB, RxQueues: 8})
	srcIP := [4]byte{10, 0, 0, 1}
	dstIP := [4]byte{10, 0, 0, 2}
	frame := ipv4TCPFrame(macB, macA, srcIP, dstIP, 5555, 80)
	key, ok := FlowKeyOf(frame)
	if !ok {
		t.Fatal("FlowKeyOf failed on a well-formed IPv4/TCP frame")
	}
	if key.RemotePort != 5555 || key.LocalPort != 80 || key.RemoteIP != srcIP {
		t.Fatalf("FlowKeyOf = %+v", key)
	}
	natural := RSSQueueFlow(srcIP, dstIP, 5555, 80, 8)
	pinTo := (natural + 3) % 8
	b.SetFlowPins(map[FlowKey]int{key: pinTo})
	a.Tx(frame, 0)
	if got := len(b.RxBurst(pinTo, 8)); got != 1 {
		t.Fatalf("pinned flow did not land on queue %d", pinTo)
	}
	// A different flow still follows RSS.
	other := ipv4TCPFrame(macB, macA, srcIP, dstIP, 5556, 80)
	a.Tx(other, 0)
	oq := RSSQueueFlow(srcIP, dstIP, 5556, 80, 8)
	if got := len(b.RxBurst(oq, 8)); got != 1 {
		t.Fatalf("unpinned flow did not follow RSS to queue %d", oq)
	}
	// Clearing the table restores pure RSS for the pinned flow.
	b.SetFlowPins(nil)
	if b.PinnedFlows() != 0 {
		t.Fatalf("PinnedFlows() = %d after clear", b.PinnedFlows())
	}
	a.Tx(frame, 0)
	if got := len(b.RxBurst(natural, 8)); got != 1 {
		t.Fatal("flow did not revert to RSS after pin clear")
	}
}
