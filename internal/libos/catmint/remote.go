package catmint

import (
	"errors"

	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/rdma"
	"demikernel/internal/simclock"
)

// The paper's data path covers "reading and writing to storage devices,
// networking devices and remote memory" (§4.1). This file supplies the
// remote-memory piece over the RDMA device's one-sided verbs: an
// application exposes a Window of registered memory, hands its
// (rkey, length) to a peer over a normal queue message, and the peer
// reads and writes that memory with no receiver-side software at all —
// the defining property of one-sided RDMA.

// ErrNotCatmint is returned when a one-sided handle is requested for an
// endpoint that does not belong to this transport.
var ErrNotCatmint = errors.New("catmint: endpoint is not a catmint queue")

// Window is a region of local memory exposed for one-sided peer access.
type Window struct {
	mr  *rdma.MR
	buf []byte
}

// ExposeMemory registers n bytes and returns the window. The returned
// window's RKey travels to peers inside ordinary queue messages.
func (t *Transport) ExposeMemory(n int) *Window {
	buf := make([]byte, n)
	return &Window{mr: t.pd.RegisterMemory(buf), buf: buf}
}

// RKey returns the key a peer needs for one-sided access.
func (w *Window) RKey() uint32 { return w.mr.RKey() }

// Len returns the window length.
func (w *Window) Len() int { return len(w.buf) }

// Bytes exposes the window's memory. One-sided peer writes appear here
// with no local software involvement.
func (w *Window) Bytes() []byte { return w.buf }

// Revoke deregisters the window; subsequent peer access fails with a
// remote-access error.
func (w *Window) Revoke() { w.mr.Deregister() }

// OneSided is a handle for issuing one-sided operations over an
// established catmint connection.
type OneSided struct {
	t  *Transport
	ep *endpoint
}

// OneSided returns the one-sided handle for a connected catmint endpoint
// (as returned by the transport's Socket/Accept path through the core
// layer).
func (t *Transport) OneSided(ep core.Endpoint) (*OneSided, error) {
	ce, ok := ep.(*endpoint)
	if !ok {
		return nil, ErrNotCatmint
	}
	return &OneSided{t: t, ep: ce}, nil
}

// WriteResult reports completion of a one-sided write.
type WriteResult struct {
	Err  error
	Cost simclock.Lat
}

// Write copies data into the peer window (rkey, roff) with no peer
// software on the path. done is invoked from the transport's Poll.
func (o *OneSided) Write(data []byte, rkey uint32, roff int, done func(WriteResult)) error {
	o.ep.mu.Lock()
	qp := o.ep.qp
	closed := o.ep.closed
	o.ep.mu.Unlock()
	if qp == nil || closed {
		return queue.ErrClosed
	}
	if len(data) > SlotSize {
		return ErrMessageTooBig
	}
	sl := o.t.allocSlot()
	copy(sl.bytes(), data)
	wrID := o.t.newWRID(&pendingOp{
		kind: queue.OpPush,
		ep:   o.ep,
		slot: sl,
		onWC: func(wc rdma.WC) {
			r := WriteResult{Cost: wc.Cost}
			if wc.Status != rdma.StatusSuccess {
				r.Err = errors.New("catmint: one-sided write failed: " + wc.Status.String())
			}
			done(r)
		},
	})
	if err := qp.PostWrite(wrID, rdma.Sge{MR: sl.mr, Off: sl.off, Len: len(data)}, rkey, roff); err != nil {
		o.t.mu.Lock()
		delete(o.t.pending, wrID)
		o.t.mu.Unlock()
		o.t.freeSlot(sl)
		return err
	}
	return nil
}

// ReadResult reports completion of a one-sided read.
type ReadResult struct {
	Data []byte
	Err  error
	Cost simclock.Lat
}

// Read fetches n bytes from the peer window (rkey, roff) with no peer
// software on the path.
func (o *OneSided) Read(n int, rkey uint32, roff int, done func(ReadResult)) error {
	o.ep.mu.Lock()
	qp := o.ep.qp
	closed := o.ep.closed
	o.ep.mu.Unlock()
	if qp == nil || closed {
		return queue.ErrClosed
	}
	if n > SlotSize {
		return ErrMessageTooBig
	}
	sl := o.t.allocSlot()
	t := o.t
	wrID := t.newWRID(&pendingOp{
		kind:   queue.OpPop,
		ep:     o.ep,
		slot:   sl,
		isRead: true,
		onWC: func(wc rdma.WC) {
			r := ReadResult{Cost: wc.Cost}
			if wc.Status != rdma.StatusSuccess {
				r.Err = errors.New("catmint: one-sided read failed: " + wc.Status.String())
			} else {
				r.Data = append([]byte(nil), sl.bytes()[:wc.Len]...)
			}
			done(r)
		},
	})
	if err := qp.PostRead(wrID, rdma.Sge{MR: sl.mr, Off: sl.off, Len: n}, rkey, roff, n); err != nil {
		t.mu.Lock()
		delete(t.pending, wrID)
		t.mu.Unlock()
		t.freeSlot(sl)
		return err
	}
	return nil
}
