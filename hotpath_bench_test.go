package demikernel

// BenchmarkHotPath* is the zero-alloc regression suite for the pooled,
// batched data path. Unlike the E1..E13 experiment benchmarks, every
// rig here is single-goroutine and manually pumped — no Background()
// pollers — so allocs/op and B/op are deterministic and `make bench`
// can diff them against the committed BENCH_hotpath.json baseline.

import (
	"fmt"
	"testing"

	"demikernel/internal/queue"
	"demikernel/internal/sched"
)

// hotPathPair builds a connected catnip echo pair whose data path is
// pumped only by the calling goroutine. Background polling is used for
// the connection handshake (setup only) and stopped before returning.
func hotPathPair(tb testing.TB) (cli, srv *LibOS, cqd, sqd QD, cleanup func()) {
	tb.Helper()
	c := NewCluster(1)
	srvNode := c.MustSpawn(Catnip, WithHost(1))
	cliNode := c.MustSpawn(Catnip, WithHost(2))

	lqd, err := srvNode.Socket()
	if err != nil {
		tb.Fatal(err)
	}
	addr := c.AddrOf(srvNode, 7)
	if err := srvNode.Bind(lqd, addr); err != nil {
		tb.Fatal(err)
	}
	if err := srvNode.Listen(lqd); err != nil {
		tb.Fatal(err)
	}

	cqd, err = cliNode.Socket()
	if err != nil {
		tb.Fatal(err)
	}
	// Handshake needs both sides progressing; pump the server from a
	// helper goroutine during setup only.
	stop := srvNode.Background()
	if err := cliNode.Connect(cqd, addr); err != nil {
		stop()
		tb.Fatal(err)
	}
	sqd, err = srvNode.Accept(lqd)
	if err != nil {
		stop()
		tb.Fatal(err)
	}
	stop()
	return cliNode.LibOS, srvNode.LibOS, cqd, sqd, func() {
		cliNode.Close(cqd)
		srvNode.Close(sqd)
		srvNode.Close(lqd)
	}
}

// pumpWait drives both libOSes until qt completes on l.
func pumpWait(tb testing.TB, l, peer *LibOS, qt QToken) Completion {
	tb.Helper()
	for i := 0; ; i++ {
		c, ok, err := l.TryWait(qt)
		if err != nil {
			tb.Fatal(err)
		}
		if ok {
			return c
		}
		l.Poll()
		peer.Poll()
		if i > 1_000_000 {
			tb.Fatal("hot-path pump made no progress")
		}
	}
}

// echoRTT performs one full request/response cycle on the manual rig:
// client push → server pop → server push (echo) → client pop, freeing
// both popped SGAs so pooled payload storage recycles.
func echoRTT(tb testing.TB, cli, srv *LibOS, cqd, sqd QD, payload SGA) {
	tb.Helper()
	sqt, err := srv.Pop(sqd)
	if err != nil {
		tb.Fatal(err)
	}
	cqt, err := cli.Push(cqd, payload)
	if err != nil {
		tb.Fatal(err)
	}
	req := pumpWait(tb, srv, cli, sqt)
	if req.Err != nil {
		tb.Fatal(req.Err)
	}
	pumpWait(tb, cli, srv, cqt)

	cqt2, err := cli.Pop(cqd)
	if err != nil {
		tb.Fatal(err)
	}
	sqt2, err := srv.Push(sqd, req.SGA)
	if err != nil {
		tb.Fatal(err)
	}
	resp := pumpWait(tb, cli, srv, cqt2)
	if resp.Err != nil {
		tb.Fatal(resp.Err)
	}
	pumpWait(tb, srv, cli, sqt2)
	req.SGA.Free()
	resp.SGA.Free()
}

// BenchmarkHotPath_EchoRTT measures the full manually-pumped echo
// round trip: the end-to-end pooled data path (framing, staging,
// netstack TX assembly, burst RX, framer clone, completion dispatch).
func BenchmarkHotPath_EchoRTT(b *testing.B) {
	for _, size := range []int{64, 1024, 4096} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			cli, srv, cqd, sqd, cleanup := hotPathPair(b)
			defer cleanup()
			payload := NewSGA(make([]byte, size))
			echoRTT(b, cli, srv, cqd, sqd, payload) // warm pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				echoRTT(b, cli, srv, cqd, sqd, payload)
			}
		})
	}
}

// BenchmarkHotPath_PollIdle measures LibOS.Poll with connected-but-idle
// descriptors: the cached poll list should make an idle poll O(n) map-free
// and alloc-free.
func BenchmarkHotPath_PollIdle(b *testing.B) {
	cli, srv, _, _, cleanup := hotPathPair(b)
	defer cleanup()
	_ = srv
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cli.Poll()
	}
}

// BenchmarkHotPath_Completer measures one token round trip through the
// sharded completer: NewToken → complete → TryWait.
func BenchmarkHotPath_Completer(b *testing.B) {
	comp := queue.NewCompleter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qt, done := comp.NewToken()
		done(queue.Completion{Kind: queue.OpPop})
		if _, ok, err := comp.TryWait(qt); !ok || err != nil {
			b.Fatal("token did not complete")
		}
	}
}

// BenchmarkHotPath_EventLoopTick measures an idle EventLoop tick over a
// connected pair: ready-list dispatch means an idle tick does no
// per-token probing.
func BenchmarkHotPath_EventLoopTick(b *testing.B) {
	cli, _, _, _, cleanup := hotPathPair(b)
	defer cleanup()
	el := sched.New(cli)
	el.Tick()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el.Tick()
	}
}
