package demikernel

// Spawn API tests: the unified construction surface must honor its
// options, reject nonsense kinds and kind/option mismatches with errors
// (not panics), and every spawned shape must carry the full Instance
// surface (the per-kind constructors are gone; Spawn is the only door).

import (
	"errors"
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/telemetry"
)

func TestSpawnHonorsOptions(t *testing.T) {
	c := NewCluster(71)
	reg := telemetry.NewRegistry()
	n := c.MustSpawn(Catnip,
		WithConfig(NodeConfig{RTO: 3 * time.Millisecond, MaxRetransmits: 2}),
		WithHost(7), // later WithHost wins over WithConfig's Host
		WithTelemetry(reg),
		WithLifecycle(),
	)
	if n.Catnip == nil || n.Sharded != nil {
		t.Fatalf("spawned the wrong shape: %+v", n)
	}
	if n.IP != c.ip(7) || n.MAC != c.mac(7) {
		t.Fatalf("WithHost lost to WithConfig: ip=%v mac=%v", n.IP, n.MAC)
	}
	if n.Clock == nil {
		t.Fatal("WithLifecycle attached no drift clock")
	}
	if len(reg.Snapshot().Samples) == 0 {
		t.Fatal("WithTelemetry registered nothing")
	}

	sharded := c.MustSpawn(Catnip, WithHost(8), WithShards(4))
	if sharded.Sharded == nil || sharded.Sharded.Size() != 4 {
		t.Fatalf("WithShards(4) produced %+v", sharded.Sharded)
	}
	if sharded.Catnip != sharded.Sharded.Set.Shard(0) {
		t.Fatal("sharded node's Catnip is not shard 0")
	}
}

func TestSpawnRejectsBadRequests(t *testing.T) {
	c := NewCluster(72)
	if _, err := c.Spawn(Kind("catzilla"), WithHost(1)); err == nil {
		t.Fatal("unknown kind spawned")
	}
	if _, err := c.Spawn(Catmint, WithHost(1), WithShards(2)); !errors.Is(err, core.ErrNotSupported) {
		t.Fatalf("WithShards on catmint = %v, want ErrNotSupported", err)
	}
}

// Every spawned shape satisfies Instance, reports its kind and shard
// width, and carries the lifecycle surface.
func TestSpawnShapesSatisfyInstance(t *testing.T) {
	c := NewCluster(73)

	nip := c.MustSpawn(Catnip, WithConfig(NodeConfig{Host: 1}))
	if nip.Catnip == nil || nip.IP != c.ip(1) {
		t.Fatalf("catnip shape: %+v", nip)
	}
	nap := c.MustSpawn(Catnap, WithConfig(NodeConfig{Host: 2}))
	if nap.Kernel == nil {
		t.Fatal("catnap spawned no kernel")
	}
	mint := c.MustSpawn(Catmint, WithConfig(NodeConfig{Host: 3}))
	if mint.Catmint == nil {
		t.Fatal("catmint spawned no RDMA transport")
	}
	fish, err := c.Spawn(Catfish, WithBlocks(64))
	if err != nil || fish.Catfish == nil {
		t.Fatalf("catfish: %v %+v", err, fish)
	}
	sharded := c.MustSpawn(Catnip, WithHost(4), WithShards(2)).Sharded
	if sharded == nil || sharded.Size() != 2 {
		t.Fatalf("sharded shape: %+v", sharded)
	}

	// The unified Instance surface reports each shape faithfully.
	for _, tc := range []struct {
		inst   Instance
		kind   Kind
		shards int
	}{
		{nip, Catnip, 1},
		{nap, Catnap, 1},
		{mint, Catmint, 1},
		{fish, Catfish, 1},
		{sharded, Catnip, 2},
	} {
		if tc.inst.Kind() != tc.kind || tc.inst.Shards() != tc.shards {
			t.Fatalf("Instance reports kind=%s shards=%d, want %s/%d",
				tc.inst.Kind(), tc.inst.Shards(), tc.kind, tc.shards)
		}
		if tc.inst.Generation() != 0 {
			t.Fatalf("fresh instance at generation %d", tc.inst.Generation())
		}
	}

	// Reshard is gated to sharded runtimes, SwitchKind to Catnap/Catnip.
	if err := nip.Reshard(t.Context(), 2); !errors.Is(err, core.ErrNotSupported) {
		t.Fatalf("Reshard on unsharded node = %v, want ErrNotSupported", err)
	}
	if err := sharded.SwitchKind(Catnap); !errors.Is(err, core.ErrNotSupported) {
		t.Fatalf("SwitchKind on sharded node = %v, want ErrNotSupported", err)
	}
	if err := mint.SwitchKind(Catnip); !errors.Is(err, core.ErrNotSupported) {
		t.Fatalf("SwitchKind catmint→catnip = %v, want ErrNotSupported", err)
	}

	// A spawned node still has the full lifecycle surface.
	if _, err := nip.Crash(); err != nil {
		t.Fatalf("Crash on spawned node: %v", err)
	}
	if err := nip.Restart(); err != nil {
		t.Fatalf("Restart on spawned node: %v", err)
	}
}
