package experiments

import (
	"testing"
)

// TestAllExperimentsReproduceShapes runs every experiment in the index
// and asserts every shape check — this is the reproduction gate: if a
// code change breaks a paper claim's shape, this test fails.
func TestAllExperimentsReproduceShapes(t *testing.T) {
	for _, exp := range All {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			res, err := exp.Run(42)
			if err != nil {
				t.Fatalf("%s (%s) failed to run: %v", exp.ID, exp.Title, err)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", exp.ID)
			}
			if len(res.Checks) == 0 {
				t.Fatalf("%s asserted nothing", exp.ID)
			}
			for _, c := range res.Checks {
				if !c.OK {
					t.Errorf("%s shape check failed: %s (%s)", exp.ID, c.Name, c.Detail)
				}
			}
			for _, tbl := range res.Tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("%s table %q is empty", exp.ID, tbl.Title)
				}
				t.Logf("\n%s", tbl.String())
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 should not exist")
	}
	// IDs must be unique and sequential with the DESIGN.md index.
	seen := map[string]bool{}
	for _, e := range All {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Source == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("%s missing metadata", e.ID)
		}
	}
	if len(All) != 21 {
		t.Fatalf("experiment count = %d, want 19 paper experiments + 2 ablations", len(All))
	}
}

// TestExperimentsDeterministic: same seed, same tables (E1 spot check).
func TestExperimentsDeterministic(t *testing.T) {
	e, _ := ByID("E3")
	r1, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tables[0].String() != r2.Tables[0].String() {
		t.Fatalf("E3 not deterministic:\n%s\nvs\n%s", r1.Tables[0], r2.Tables[0])
	}
}
