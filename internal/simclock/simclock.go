// Package simclock provides the virtual cost model that underlies every
// experiment in this reproduction.
//
// The paper's quantitative claims are architectural: a kernel crossing
// costs on the order of hundreds of nanoseconds, copying a 4 KB page costs
// about a microsecond on a 4 GHz CPU, a Redis-style request costs about
// two microseconds of application compute. None of those costs can be
// measured faithfully inside a Go simulation of the hardware, so instead
// every simulated component *charges* an explicit, documented cost for the
// work it models. Experiments report these charged (virtual) latencies,
// which makes results deterministic and lets the comparison shapes in the
// paper be checked bit-for-bit.
//
// Costs are expressed in virtual nanoseconds. A request accumulates cost
// as it moves through components (see Lat); the final accumulated value is
// the simulated end-to-end latency of that request.
package simclock

import "fmt"

// Lat is a virtual latency in nanoseconds. It is accumulated along a
// request path: each simulated component adds the cost of the work it
// models.
type Lat int64

// Add returns l extended by d virtual nanoseconds.
func (l Lat) Add(d Lat) Lat { return l + d }

// Micros reports the latency in microseconds as a float.
func (l Lat) Micros() float64 { return float64(l) / 1000.0 }

// String formats the latency in a human unit.
func (l Lat) String() string {
	switch {
	case l >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(l)/1e6)
	case l >= 1_000:
		return fmt.Sprintf("%.2fµs", float64(l)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(l))
	}
}

// CostModel holds every charged cost in the simulation. All values are in
// virtual nanoseconds (or virtual nanoseconds per byte where noted). The
// model is deliberately explicit: every experiment's outcome can be traced
// to these constants, and a different hardware generation is a different
// CostModel value, not a code change.
type CostModel struct {
	// SyscallNS is the cost of one user/kernel boundary round trip
	// (trap, register save/restore, return). Charged once per syscall
	// by the simulated legacy kernel; never charged on a kernel-bypass
	// data path.
	SyscallNS Lat

	// CopyPerByteNS is the per-byte cost of a CPU memcpy between
	// buffers. The paper calibrates this: "copying a 4k page takes 1µs
	// on a 4Ghz CPU", i.e. ~0.244 ns/byte.
	CopyPerByteNS float64

	// DMAPerByteNS is the per-byte cost of device DMA to or from host
	// memory. DMA is cheaper than a CPU copy and does not occupy the
	// CPU, but it is not free.
	DMAPerByteNS float64

	// WireDelayNS is the one-way propagation plus switching delay of
	// the datacenter network between two servers.
	WireDelayNS Lat

	// NICProcessNS is the per-packet processing cost inside the NIC
	// hardware (parse, DMA setup, descriptor update).
	NICProcessNS Lat

	// KernelNetStackNS is the per-packet cost of the in-kernel network
	// stack (skb handling, netfilter, socket demux). Charged by the
	// legacy kernel path only.
	KernelNetStackNS Lat

	// UserNetStackNS is the per-packet cost of a lean user-level stack
	// doing the same protocol work without the kernel's generality.
	UserNetStackNS Lat

	// PosixEmulationNS is the extra per-operation cost of preserving
	// POSIX semantics in a user-level stack (mTCP/F-stack style:
	// descriptor table emulation, event batching, stream buffering).
	// Section 6 observes such stacks can be slower than the kernel.
	PosixEmulationNS Lat

	// NVMeReadNS / NVMeWriteNS are the device-side latencies of one
	// NVMe read/write command, excluding DMA per-byte cost.
	NVMeReadNS  Lat
	NVMeWriteNS Lat

	// PageCacheNS is the kernel page-cache lookup/insert cost charged
	// per file I/O on the legacy path.
	PageCacheNS Lat

	// RDMAOpNS is the NIC-side cost of one RDMA verb (send, recv
	// completion, or one-sided op), excluding wire and DMA costs.
	RDMAOpNS Lat

	// RegistrationNS is the control-path cost of registering one memory
	// region with a device (pinning, IOMMU programming). Expensive;
	// the libOS amortises it over whole regions (§4.5).
	RegistrationNS Lat

	// WakeupNS is the cost of waking a blocked thread (scheduler,
	// context switch). Charged per thread actually woken, which is how
	// epoll's thundering herd becomes visible (§4.4).
	WakeupNS Lat

	// AppRequestNS is the application compute per request for the
	// Redis-style workload: "Redis spends about 2µs on each read
	// request".
	AppRequestNS Lat

	// FilterNS / MapNS are the per-element CPU costs of running a queue
	// filter or map function on the host; devices run them at
	// OffloadFactor of the cost (§4.2).
	FilterNS Lat
	MapNS    Lat

	// OffloadFactor scales FilterNS/MapNS when the function runs on the
	// device instead of the CPU. The device computes more slowly per
	// element near memory (§3.3) but the host CPU spends nothing.
	OffloadFactor float64
}

// Datacenter2019 returns the cost model calibrated to the paper's own
// numbers and to contemporary (2019) datacenter hardware measurements.
func Datacenter2019() CostModel {
	return CostModel{
		SyscallNS:        500,   // getpid-class crossing w/ KPTI era mitigations
		CopyPerByteNS:    0.244, // 1 µs per 4 KB page (paper, §3.2)
		DMAPerByteNS:     0.05,  // ~20 GB/s effective DMA engine
		WireDelayNS:      1000,  // one-way ToR switch hop
		NICProcessNS:     300,   // per-packet NIC pipeline
		KernelNetStackNS: 2400,  // per-packet kernel TCP/IP work
		UserNetStackNS:   600,   // lean user-level stack per packet
		PosixEmulationNS: 2600,  // mTCP-style POSIX preservation tax
		NVMeReadNS:       8000,  // enterprise NVMe read
		NVMeWriteNS:      12000, // enterprise NVMe write (post-buffer)
		PageCacheNS:      400,   // page-cache hit management
		RDMAOpNS:         900,   // verb issue + completion
		RegistrationNS:   40000, // pin + IOMMU program per region
		WakeupNS:         1500,  // futex wake + context switch
		AppRequestNS:     2000,  // Redis request compute (paper, §3.2)
		FilterNS:         80,    // per-element predicate on CPU
		MapNS:            150,   // per-element transform on CPU
		OffloadFactor:    1.6,   // device computes ~1.6x slower/element
	}
}

// CopyCost returns the virtual cost of copying n bytes with the CPU.
func (m *CostModel) CopyCost(n int) Lat { return Lat(float64(n) * m.CopyPerByteNS) }

// DMACost returns the virtual cost of moving n bytes by device DMA.
func (m *CostModel) DMACost(n int) Lat { return Lat(float64(n) * m.DMAPerByteNS) }

// OffloadedFilterCost returns the per-element cost of a filter run on the
// device rather than the host CPU.
func (m *CostModel) OffloadedFilterCost() Lat {
	return Lat(float64(m.FilterNS) * m.OffloadFactor)
}

// OffloadedMapCost returns the per-element cost of a map run on the device.
func (m *CostModel) OffloadedMapCost() Lat {
	return Lat(float64(m.MapNS) * m.OffloadFactor)
}

// Counters tracks observable data-path events so tests and experiments can
// verify architectural properties (e.g. "the bypass path performs zero
// kernel crossings", "the zero-copy path copies zero payload bytes").
// All methods are safe for concurrent use only when each counter instance
// is confined to one goroutine or externally synchronised; the simulation
// components that share a Counters value guard it with their own locks.
type Counters struct {
	SyscallCrossings int64 // user/kernel boundary round trips
	BytesCopied      int64 // payload bytes moved by CPU memcpy
	BytesDMA         int64 // payload bytes moved by device DMA
	Packets          int64 // packets processed
	Wakeups          int64 // threads woken
	WastedWakeups    int64 // threads woken with no work available
	Registrations    int64 // device memory registrations performed
}

// AddSyscall records one syscall crossing.
func (c *Counters) AddSyscall() { c.SyscallCrossings++ }

// AddCopy records a CPU copy of n payload bytes.
func (c *Counters) AddCopy(n int) { c.BytesCopied += int64(n) }

// AddDMA records a DMA transfer of n payload bytes.
func (c *Counters) AddDMA(n int) { c.BytesDMA += int64(n) }

// Reset zeroes every counter.
func (c *Counters) Reset() { *c = Counters{} }
