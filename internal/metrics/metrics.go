// Package metrics provides the measurement plumbing for the experiment
// harness: latency histograms over virtual (simclock) latencies,
// percentile summaries, and plain-text/markdown table rendering for
// EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"demikernel/internal/simclock"
)

// Histogram records latency samples. It keeps exact samples (experiments
// record thousands, not billions, of points), so percentiles are exact.
// It is not safe for concurrent use; experiments record from one
// goroutine.
type Histogram struct {
	samples []int64
	sorted  bool
}

// Record adds one sample.
func (h *Histogram) Record(l simclock.Lat) {
	h.samples = append(h.samples, int64(l))
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

func (h *Histogram) sortSamples() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile using the nearest-rank method:
// the smallest sample such that at least p% of samples are <= it. The
// contract is explicit about the edges: p is clamped to [0, 100], p <= 0
// returns the minimum sample, p = 100 the maximum, and an empty
// histogram returns 0.
func (h *Histogram) Percentile(p float64) simclock.Lat {
	if len(h.samples) == 0 {
		return 0
	}
	if p < 0 || math.IsNaN(p) {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	h.sortSamples()
	rank := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return simclock.Lat(h.samples[rank])
}

// Mean returns the arithmetic mean, rounded half-up to the nearest
// virtual nanosecond (the old integer division truncated, so a mean of
// 1.5ns reported as 1ns and every summary read slightly fast).
func (h *Histogram) Mean() simclock.Lat {
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range h.samples {
		sum += float64(s)
	}
	return simclock.Lat(math.Round(sum / float64(len(h.samples))))
}

// Min returns the smallest sample.
func (h *Histogram) Min() simclock.Lat {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	return simclock.Lat(h.samples[0])
}

// Max returns the largest sample.
func (h *Histogram) Max() simclock.Lat {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	return simclock.Lat(h.samples[len(h.samples)-1])
}

// Summary is a fixed percentile digest of a histogram.
type Summary struct {
	Count          int
	Mean, P50, P99 simclock.Lat
	Min, Max       simclock.Lat
}

// Summarize digests the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// Table is a simple experiment-result table rendered as aligned text or
// markdown.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, hd := range t.Headers {
		widths[i] = len(hd)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Note)
	}
	return b.String()
}

// Ratio formats a/b as "N.NNx", guarding division by zero.
func Ratio(a, b simclock.Lat) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}
