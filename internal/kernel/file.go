package kernel

import (
	"errors"
	"fmt"

	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
)

// This file simulates the legacy kernel file path of §5.3: a
// general-purpose file system with a page cache, user/kernel copies on
// every read and write, and journaling write amplification on fsync.
// The storage libOS (catfish) instead uses the accelerator-specific
// log-structured layout in package spdk directly.

// Errors returned by file calls.
var (
	ErrNoDisk   = errors.New("kernel: no disk attached")
	ErrDiskFull = errors.New("kernel: disk full")
)

// journalFactor is the write amplification charged by the journaling file
// system on flush: each dirty page is written once to the journal and
// once in place.
const journalFactor = 2

type file struct {
	name string
	size int
	// blocks maps file page index -> device LBA.
	blocks []int
}

type fileSystem struct {
	model *simclock.CostModel
	disk  *spdk.Device
	files map[string]*file
	// pageCache maps LBA -> cached block.
	pageCache map[int][]byte
	dirty     map[int]bool
	nextLBA   int
}

func newFileSystem(model *simclock.CostModel) *fileSystem {
	return &fileSystem{
		model:     model,
		files:     make(map[string]*file),
		pageCache: make(map[int][]byte),
		dirty:     make(map[int]bool),
	}
}

// AttachDisk gives the kernel a block device for its file system.
func (k *Kernel) AttachDisk(dev *spdk.Device) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.fs.disk = dev
}

// OpenFile opens (or creates) a file and returns its descriptor.
func (k *Kernel) OpenFile(name string) (FD, simclock.Lat, error) {
	cost := k.syscall()
	k.mu.Lock()
	if k.fs.disk == nil {
		k.mu.Unlock()
		return -1, cost, ErrNoDisk
	}
	f, ok := k.fs.files[name]
	if !ok {
		f = &file{name: name}
		k.fs.files[name] = f
	}
	k.mu.Unlock()
	return k.newFD(&fdEntry{kind: fdFile, file: f}), cost, nil
}

// WriteFile appends data to the file through the page cache. The payload
// is copied user→kernel and dirtied pages are charged page-cache
// management cost; no device I/O happens until Fsync.
func (k *Kernel) WriteFile(fd FD, data []byte) (simclock.Lat, error) {
	cost := k.syscall()
	e, err := k.lookup(fd)
	if err != nil {
		return cost, err
	}
	if e.kind != fdFile {
		return cost, ErrBadFD
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	fs := k.fs
	f := e.file
	k.ctr.AddCopy(len(data))
	cost += k.model.CopyCost(len(data))
	for len(data) > 0 {
		page := f.size / spdk.BlockSize
		pageOff := f.size % spdk.BlockSize
		if page >= len(f.blocks) {
			if fs.nextLBA >= fs.disk.NumBlocks() {
				return cost, ErrDiskFull
			}
			f.blocks = append(f.blocks, fs.nextLBA)
			fs.nextLBA++
		}
		lba := f.blocks[page]
		blk, ok := fs.pageCache[lba]
		if !ok {
			blk = make([]byte, spdk.BlockSize)
			fs.pageCache[lba] = blk
		}
		cost += k.model.PageCacheNS
		n := copy(blk[pageOff:], data)
		data = data[n:]
		f.size += n
		fs.dirty[lba] = true
	}
	return cost, nil
}

// Fsync flushes the file's dirty pages with journaling write
// amplification.
func (k *Kernel) Fsync(fd FD) (simclock.Lat, error) {
	cost := k.syscall()
	e, err := k.lookup(fd)
	if err != nil {
		return cost, err
	}
	if e.kind != fdFile {
		return cost, ErrBadFD
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	fs := k.fs
	for _, lba := range e.file.blocks {
		if !fs.dirty[lba] {
			continue
		}
		delete(fs.dirty, lba)
		for j := 0; j < journalFactor; j++ {
			c := fs.disk.Execute(spdk.Command{Op: spdk.OpWrite, LBA: lba, Data: fs.pageCache[lba]})
			if c.Err != nil {
				return cost, c.Err
			}
			cost += c.Cost
		}
	}
	c := fs.disk.Execute(spdk.Command{Op: spdk.OpFlush})
	cost += c.Cost
	return cost, c.Err
}

// ReadFile reads n bytes at off, through the page cache, with the
// kernel→user copy charged.
func (k *Kernel) ReadFile(fd FD, off, n int) ([]byte, simclock.Lat, error) {
	cost := k.syscall()
	e, err := k.lookup(fd)
	if err != nil {
		return nil, cost, err
	}
	if e.kind != fdFile {
		return nil, cost, ErrBadFD
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	fs := k.fs
	f := e.file
	if off < 0 || off > f.size {
		return nil, cost, fmt.Errorf("kernel: read offset %d beyond size %d", off, f.size)
	}
	if off+n > f.size {
		n = f.size - off
	}
	out := make([]byte, 0, n)
	for n > 0 {
		page := off / spdk.BlockSize
		pageOff := off % spdk.BlockSize
		lba := f.blocks[page]
		blk, ok := fs.pageCache[lba]
		cost += k.model.PageCacheNS
		if !ok {
			c := fs.disk.Execute(spdk.Command{Op: spdk.OpRead, LBA: lba})
			if c.Err != nil {
				return nil, cost, c.Err
			}
			cost += c.Cost
			blk = c.Data
			fs.pageCache[lba] = blk
		}
		take := min(n, spdk.BlockSize-pageOff)
		out = append(out, blk[pageOff:pageOff+take]...)
		off += take
		n -= take
	}
	k.ctr.AddCopy(len(out))
	cost += k.model.CopyCost(len(out))
	return out, cost, nil
}

// FileSize returns the current size of the file.
func (k *Kernel) FileSize(fd FD) (int, error) {
	e, err := k.lookup(fd)
	if err != nil {
		return 0, err
	}
	if e.kind != fdFile {
		return 0, ErrBadFD
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return e.file.size, nil
}

// DropCaches empties the page cache (dirty pages are discarded), so cold
// read paths can be measured.
func (k *Kernel) DropCaches() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.fs.pageCache = make(map[int][]byte)
	k.fs.dirty = make(map[int]bool)
}
