package demikernel

// Span attribution under chaos: the per-qtoken telemetry must keep its
// books straight while the fault-injection engine is actively attacking
// the fabric. Every operation the application issues has to land in the
// span table under the right queue descriptor and op kind — successes in
// the latency histogram, typed failures in the error column — and the
// process tracer must capture the stack's failure instants on the same
// timeline. Observability that only works on the happy path is exactly
// the "ships without the OS safety net" failure mode the paper warns
// about.

import (
	"testing"
	"time"

	"demikernel/internal/chaos"
	"demikernel/internal/fabric"
	"demikernel/internal/telemetry"
)

func TestSpanAttributionUnderChaos(t *testing.T) {
	c := NewCluster(777)
	srv := c.MustSpawn(Catnip, WithHost(1))
	cli := c.MustSpawn(Catnip, WithConfig(NodeConfig{Host: 2, RTO: 2 * time.Millisecond, MaxRetransmits: 4}))
	cli.WaitTimeout = 200 * time.Millisecond

	cqd, lqd, sqd, cleanup := chaosConnect(t, c, cli, srv, 7)
	defer cleanup()

	// Turn the lights on AFTER connect so the span table holds exactly
	// the echo traffic, and reset the process tracer so this test owns
	// its contents.
	cli.Spans().SetName("chaos-client")
	cli.Spans().Enable()
	defer cli.Spans().Disable()
	srv.Spans().Enable()
	defer srv.Spans().Disable()
	telemetry.Trace.Reset()
	telemetry.Trace.Enable()
	defer telemetry.Trace.Disable()

	// Loss + corruption for the first stretch, then a hard flap of the
	// client's link, then quiet. The schedule guarantees both retransmits
	// (loss window) and typed give-ups (flap window).
	eng := chaos.New(777).
		ImpairAll(0, c.Switch, fabric.Impairments{LossRate: 0.05, CorruptRate: 0.05}).
		ImpairAll(40*time.Millisecond, c.Switch, fabric.Impairments{}).
		LinkFlap(60*time.Millisecond, 30*time.Millisecond, c.Switch, cli.FabricPort())
	eng.Start()

	var okOps, failedOps int
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; !eng.Done() || okOps < 50; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("no steady state: ok=%d failed=%d", okOps, failedOps)
		}
		eng.Step()
		payload := []byte("span-attribution-probe")
		comp, err := cli.BlockingPush(cqd, NewSGA(payload))
		if err == nil && comp.Err == nil {
			// Round trip: server pops and echoes, client pops.
			scomp, serr := srv.BlockingPop(sqd)
			if serr == nil && scomp.Err == nil {
				if _, perr := srv.BlockingPush(sqd, scomp.SGA); perr != nil {
					t.Fatalf("server echo push: %v", perr)
				}
				if back, berr := cli.BlockingPop(cqd); berr == nil && back.Err == nil {
					okOps++
					continue
				}
			}
		}
		failedOps++
		// A catnip connection is terminal after give-up: redial and have
		// the server accept the replacement so the echo loop can resume.
		nqd, err := cli.Socket()
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Connect(nqd, c.AddrOf(srv, 7)); err != nil {
			time.Sleep(time.Millisecond)
			continue
		}
		cqd = nqd
		if nsqd, err := srv.Accept(lqd); err == nil {
			sqd = nsqd
		}
	}

	// Post-heal, open a SECOND connection and run traffic over it, so the
	// span table provably separates queues: its ops must appear under a
	// fresh descriptor, not smear into the first connection's series.
	qd2, err := cli.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect(qd2, c.AddrOf(srv, 7)); err != nil {
		t.Fatalf("post-heal connect: %v", err)
	}
	sqd2, err := srv.Accept(lqd)
	if err != nil {
		t.Fatalf("post-heal accept: %v", err)
	}
	for i := 0; i < 10; i++ {
		echoOnce(t, cli, qd2, srv, sqd2, "second-queue-probe")
	}

	// --- Attribution checks ---------------------------------------------

	sums := cli.Spans().Summaries()
	if len(sums) == 0 {
		t.Fatal("client span table is empty after the run")
	}
	perKind := map[int]int64{}
	perKindErrs := map[int]int64{}
	seenQDs := map[int32]bool{}
	for _, s := range sums {
		if s.Kind != telemetry.SpanPush && s.Kind != telemetry.SpanPop {
			t.Fatalf("summary with unknown kind %d: %+v", s.Kind, s)
		}
		if s.Ops <= 0 {
			t.Fatalf("summary with zero ops survived aggregation: %+v", s)
		}
		if s.Errs > s.Ops {
			t.Fatalf("errs %d > ops %d for qd %d %s", s.Errs, s.Ops, s.QD, telemetry.KindString(s.Kind))
		}
		// Successful ops must have populated the virtual-latency digest.
		if succ := s.Ops - s.Errs; succ > 0 {
			if int64(s.Lat.Count) != succ {
				t.Fatalf("qd %d %s: histogram holds %d samples, want %d successes",
					s.QD, telemetry.KindString(s.Kind), s.Lat.Count, succ)
			}
			if s.Lat.P99 < s.Lat.P50 || s.Lat.Max < s.Lat.P99 {
				t.Fatalf("qd %d %s: degenerate latency digest %+v", s.QD, telemetry.KindString(s.Kind), s.Lat)
			}
			// Pops carry the op's virtual delivery cost; a zero pop
			// latency would mean the cost model never charged the wire.
			// (Pushes legitimately read 0: plain Push carries no
			// app-compute cost — see core.PushCost.)
			if s.Kind == telemetry.SpanPop && s.Lat.P50 <= 0 {
				t.Fatalf("qd %d pop: zero virtual latency %+v", s.QD, s.Lat)
			}
		} else if s.Lat.Count != 0 {
			t.Fatalf("qd %d %s: all ops failed but histogram has %d samples",
				s.QD, telemetry.KindString(s.Kind), s.Lat.Count)
		}
		perKind[s.Kind] += s.Ops
		perKindErrs[s.Kind] += s.Errs
		seenQDs[s.QD] = true
	}
	if perKind[telemetry.SpanPush] == 0 || perKind[telemetry.SpanPop] == 0 {
		t.Fatalf("span table missing an op kind: %+v", perKind)
	}
	// Conservation: every consumed client op — success or typed failure —
	// is in the table exactly once.
	totalOps := perKind[telemetry.SpanPush] + perKind[telemetry.SpanPop]
	if totalOps < int64(okOps)*2 {
		t.Fatalf("span table holds %d client ops, but the app consumed at least %d", totalOps, okOps*2)
	}
	// The chaos schedule must be visible in the error column: the flap
	// forces at least one typed failure, and it must be attributed to a
	// specific queue, not dropped on the floor.
	if failedOps > 0 && perKindErrs[telemetry.SpanPush]+perKindErrs[telemetry.SpanPop] == 0 {
		t.Fatalf("%d app-visible failures but the span table recorded zero errors", failedOps)
	}
	// The two connections must appear under their own descriptors (no
	// cross-queue smearing), and the second queue's series must be clean:
	// it only ever carried post-heal traffic.
	if !seenQDs[int32(qd2)] {
		t.Fatalf("second connection (qd %d) missing from span table: %v", qd2, seenQDs)
	}
	if len(seenQDs) < 2 {
		t.Fatalf("spans only mention qds %v, want the chaos and post-heal queues separately", seenQDs)
	}
	for _, s := range sums {
		if s.QD == int32(qd2) && s.Errs != 0 {
			t.Fatalf("post-heal queue %d accumulated %d errors: attribution smeared across queues",
				qd2, s.Errs)
		}
	}

	// The server side kept its own books.
	if len(srv.Spans().Summaries()) == 0 {
		t.Fatal("server span table is empty after the run")
	}

	// --- Tracer checks ---------------------------------------------------

	// The netstack emits instants at retransmit/give-up; the span table
	// emits op timeline events. Both must be on the ring.
	var qtokenSpans, stackInstants int
	for _, e := range telemetry.Trace.Events() {
		switch {
		case e.Kind == telemetry.KindSpan && e.Cat == "chaos-client":
			qtokenSpans++
			if e.Dur < 0 {
				t.Fatalf("negative span duration in trace: %+v", e)
			}
		case e.Kind == telemetry.KindInstant && e.Cat == "netstack":
			stackInstants++
		}
	}
	if qtokenSpans == 0 {
		t.Fatal("no qtoken spans reached the process tracer")
	}
	if stackInstants == 0 {
		t.Fatal("loss + a link flap produced no netstack instants (retransmit/give-up) in the trace")
	}

	// The fault schedule actually bit.
	if st := c.Switch.Stats(); st.InjectedLoss == 0 && st.InjectedCorrupt == 0 {
		t.Fatal("impairment window injected nothing")
	}
	if c.Switch.PortStats(cli.FabricPort()).LinkDownDrops == 0 {
		t.Fatal("link flap dropped nothing")
	}
}
