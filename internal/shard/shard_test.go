package shard

import (
	"runtime"
	"sync"
	"testing"

	"demikernel/internal/telemetry"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 8; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push succeeded on full ring")
	}
	for i := 0; i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
}

func TestRingRoundsCapacity(t *testing.T) {
	r := NewRing[int](5)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want next pow2 8", r.Cap())
	}
	if NewRing[int](0).Cap() != 2 {
		t.Fatal("minimum capacity should be 2")
	}
}

// TestRingSPSCStress pushes values through the ring from one producer
// goroutine to one consumer goroutine. Run with -race this is the fence
// for the lock-free ordering: the tail store must publish the element
// write, the head store must publish the slot reuse. Spin loops yield so
// the test also completes promptly on a single-CPU machine.
func TestRingSPSCStress(t *testing.T) {
	const total = 100_000
	r := NewRing[int](64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		next := 0
		for next < total {
			v, ok := r.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v != next {
				t.Errorf("out of order: got %d want %d", v, next)
				return
			}
			next++
		}
	}()
	for i := 0; i < total; i++ {
		for !r.Push(i) {
			runtime.Gosched()
		}
	}
	<-done
}

func TestGroupMesh(t *testing.T) {
	g := NewGroup(4, 8)
	if g.Size() != 4 {
		t.Fatalf("Size = %d", g.Size())
	}
	if g.Send(1, 1, Msg{}) {
		t.Fatal("self-send must be rejected")
	}
	if !g.Send(0, 2, Msg{Op: OpForward, Seq: 7, Payload: "hello"}) {
		t.Fatal("send failed")
	}
	if !g.Send(1, 2, Msg{Op: OpControl, Seq: 8}) {
		t.Fatal("send failed")
	}
	if g.PendingTo(2) != 2 {
		t.Fatalf("PendingTo = %d, want 2", g.PendingTo(2))
	}
	msgs := g.Recv(2, nil, 0)
	if len(msgs) != 2 {
		t.Fatalf("Recv got %d msgs, want 2", len(msgs))
	}
	// Messages carry their origin.
	if msgs[0].From != 0 || msgs[0].Op != OpForward || msgs[0].Seq != 7 || msgs[0].Payload != "hello" {
		t.Fatalf("msg 0 = %+v", msgs[0])
	}
	if msgs[1].From != 1 || msgs[1].Op != OpControl {
		t.Fatalf("msg 1 = %+v", msgs[1])
	}
	if s := g.StatsOf(0); s.Sent != 1 {
		t.Fatalf("shard 0 stats = %+v", s)
	}
	if s := g.StatsOf(2); s.Received != 2 {
		t.Fatalf("shard 2 stats = %+v", s)
	}
}

func TestGroupBackpressure(t *testing.T) {
	g := NewGroup(2, 2)
	for i := 0; i < 2; i++ {
		if !g.Send(0, 1, Msg{Seq: uint64(i)}) {
			t.Fatalf("send %d should fit", i)
		}
	}
	if g.Send(0, 1, Msg{Seq: 99}) {
		t.Fatal("send should fail when the edge ring is full")
	}
	if s := g.StatsOf(0); s.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped)
	}
}

// TestGroupRecvMax verifies the bounded drain: a worker can cap how many
// cross-shard messages it absorbs per tick.
func TestGroupRecvMax(t *testing.T) {
	g := NewGroup(2, 16)
	for i := 0; i < 6; i++ {
		g.Send(0, 1, Msg{Seq: uint64(i)})
	}
	first := g.Recv(1, nil, 4)
	if len(first) != 4 {
		t.Fatalf("bounded Recv got %d, want 4", len(first))
	}
	rest := g.Recv(1, first[:0], 0)
	if len(rest) != 2 {
		t.Fatalf("drain got %d, want 2", len(rest))
	}
}

// TestGroupConcurrentMesh runs all n workers concurrently, each sending
// to every peer and draining its own inbound edges — the -race fence for
// the SPSC discipline under full mesh load.
func TestGroupConcurrentMesh(t *testing.T) {
	const n = 4
	const perEdge = 5000
	g := NewGroup(n, 128)
	var wg sync.WaitGroup
	recvCounts := make([]int, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sent := make([]int, n)
			remainingSends := perEdge * (n - 1)
			var inbox []Msg
			for recvCounts[w] < perEdge*(n-1) || remainingSends > 0 {
				progressed := false
				for to := 0; to < n; to++ {
					if to == w || sent[to] >= perEdge {
						continue
					}
					if g.Send(w, to, Msg{Seq: uint64(sent[to])}) {
						sent[to]++
						remainingSends--
						progressed = true
					}
				}
				inbox = g.Recv(w, inbox[:0], 0)
				recvCounts[w] += len(inbox)
				if !progressed && len(inbox) == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < n; w++ {
		if recvCounts[w] != perEdge*(n-1) {
			t.Fatalf("worker %d received %d, want %d", w, recvCounts[w], perEdge*(n-1))
		}
	}
}

func TestGroupTelemetry(t *testing.T) {
	g := NewGroup(2, 8)
	g.Send(0, 1, Msg{})
	reg := telemetry.NewRegistry()
	g.RegisterTelemetry(reg, "shard")
	snap := reg.Snapshot()
	want := map[string]int64{
		"shard.0.xs_sent":     1,
		"shard.1.xs_pending":  1,
		"shard.1.xs_received": 0,
	}
	for name, val := range want {
		got, ok := snap.Get(name)
		if !ok || got != val {
			t.Fatalf("%s = %d (present=%v), want %d", name, got, ok, val)
		}
	}
}
