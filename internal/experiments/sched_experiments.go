package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"demikernel/internal/kernel"
	"demikernel/internal/metrics"
	"demikernel/internal/netstack"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
)

// runE4 reproduces the §3.2 stream-vs-atomic-unit claim. A large request
// trickles into connection A fragment by fragment while connection B has
// a complete request ready. The POSIX server must wake, read, and
// re-parse A on every fragment and discover the request is incomplete;
// the Demikernel server's pop on A simply does not complete until the
// whole element is there, so it does no work at all for partial data.
func runE4(seed int64) (*Result, error) {
	res := &Result{}
	model := simclock.Datacenter2019()
	const fragments = 16
	bigRequest := bytes.Repeat([]byte{0xAA}, fragments*64)

	// --- POSIX stream server over kernel pipes ---
	k := kernel.New(&model, nil, netstack.IPv4Addr{})
	rA, wA, _ := k.Pipe()
	rB, wB, _ := k.Pipe()
	framed := sga.New(bigRequest).Marshal()
	frag := len(framed) / fragments

	// B's complete request is ready before the trickle starts.
	k.WritePipe(wB, sga.New([]byte("ready-request")).Marshal(), 0)

	var streamCost simclock.Lat
	wastedInspections := 0
	served := 0
	var framerA, framerB sga.Framer
	k.ResetCounters()
	for i := 0; i < fragments; i++ {
		lo, hi := i*frag, (i+1)*frag
		if i == fragments-1 {
			hi = len(framed)
		}
		k.WritePipe(wA, framed[lo:hi], 0)

		// Level-triggered readiness says A has data; the server must
		// read and re-parse to learn the request is still incomplete.
		data, cost, err := k.ReadPipe(rA, 0)
		if err != nil {
			return nil, err
		}
		streamCost += cost
		framerA.Feed(data)
		if !framerA.HasCompleteFrame() {
			wastedInspections++
		} else {
			served++
		}
		// Meanwhile B's ready request gets serviced only inside this
		// same loop, behind the wasted work.
		if i == 0 {
			data, cost, err := k.ReadPipe(rB, 0)
			if err != nil {
				return nil, err
			}
			streamCost += cost
			framerB.Feed(data)
			if framerB.HasCompleteFrame() {
				served++
			}
		}
	}
	streamSyscalls := k.Counters().SyscallCrossings

	// --- Demikernel queue server ---
	qA := queue.NewMemQueue(0)
	qB := queue.NewMemQueue(0)
	completer := queue.NewCompleter()
	tokA, doneA := completer.NewToken()
	tokB, doneB := completer.NewToken()
	qA.Pop(doneA)
	qB.Pop(doneB)
	qB.Push(sga.New([]byte("ready-request")), 0, func(queue.Completion) {})

	queueWasted := 0
	queueServed := 0
	var queueCost simclock.Lat
	// The trickle: the producer assembles the atomic unit and pushes it
	// once complete — partial data never becomes visible.
	for i := 0; i < fragments; i++ {
		// wait_any-style check: has anything completed?
		if c, ok, _ := completer.TryWait(tokB); ok {
			queueServed++
			queueCost += c.Cost
		}
		if _, ok, _ := completer.TryWait(tokA); ok {
			queueServed++
		} else if i > 0 {
			// Checking a token is free of syscalls and parsing; it is
			// not a wasted inspection, but count it for symmetry.
			_ = i
		}
	}
	qA.Push(sga.New(bigRequest), 0, func(queue.Completion) {})
	if _, ok, _ := completer.TryWait(tokA); ok {
		queueServed++
	}

	tbl := metrics.NewTable("E4: serving one ready request while a large request trickles in",
		"abstraction", "wasted inspections", "requests served", "syscalls", "virtual cost of waste")
	tbl.AddRow("POSIX pipe/stream", wastedInspections, served, streamSyscalls, streamCost)
	tbl.AddRow("demikernel queue", queueWasted, queueServed, 0, simclock.Lat(0))
	tbl.Note = fmt.Sprintf("%d-fragment request; stream server re-parses on every fragment", fragments)
	res.Tables = append(res.Tables, tbl)

	res.check("stream server wastes one inspection per fragment",
		wastedInspections == fragments-1, "wasted = %d, fragments = %d", wastedInspections, fragments)
	res.check("queue server wastes none", queueWasted == 0, "atomic units: pop completes only when whole")
	res.check("both serve the ready request and the big request",
		served == 2 && queueServed == 2, "stream=%d queue=%d", served, queueServed)
	return res, nil
}

// runE5 reproduces the §4.4 wakeup claim with real blocked threads:
// epoll wakes the whole herd per event; qtoken wait wakes exactly one.
func runE5(seed int64) (*Result, error) {
	res := &Result{}
	model := simclock.Datacenter2019()
	const nWaiters = 8
	const nEvents = 25

	// --- epoll herd ---
	k := kernel.New(&model, nil, netstack.IPv4Addr{})
	r, w, _ := k.Pipe()
	ep := k.EpollCreate()
	ep.Add(r)
	k.ResetCounters()

	var wg sync.WaitGroup
	var mu sync.Mutex
	won := 0
	for i := 0; i < nWaiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				fds, _, ok := ep.Wait()
				if !ok {
					return
				}
				if len(fds) > 0 {
					k.ReadPipe(r, 0) // consume
					mu.Lock()
					won++
					mu.Unlock()
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the herd block
	for i := 0; i < nEvents; i++ {
		k.WritePipe(w, []byte("evt"), 0)
		ep.MarkReady(r)
		deadline := time.Now().Add(time.Second)
		for {
			mu.Lock()
			done := won > i
			mu.Unlock()
			if done || time.Now().After(deadline) {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		time.Sleep(2 * time.Millisecond) // let losers re-block
	}
	ep.Close()
	wg.Wait()
	ctr := k.Counters()

	// --- qtoken waiters: each thread waits its own token ---
	completer := queue.NewCompleter()
	q := queue.NewMemQueue(0)
	var qwg sync.WaitGroup
	qWon := 0
	var qmu sync.Mutex
	tokens := make(chan queue.QToken, nEvents)
	for i := 0; i < nEvents; i++ {
		qt, done := completer.NewToken()
		q.Pop(done)
		tokens <- qt
	}
	close(tokens)
	for i := 0; i < nWaiters; i++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for qt := range tokens {
				ch, err := completer.WaitChan(qt)
				if err != nil {
					return
				}
				<-ch
				qmu.Lock()
				qWon++
				qmu.Unlock()
			}
		}()
	}
	for i := 0; i < nEvents; i++ {
		q.Push(sga.New([]byte("evt")), 0, func(queue.Completion) {})
	}
	qwg.Wait()

	epollWakeups := ctr.Wakeups
	epollWasted := ctr.WastedWakeups
	queueWakeups := completer.Wakeups()

	tbl := metrics.NewTable("E5: thread wakeups for one completion each",
		"mechanism", "events", "wakeups", "wasted wakeups", "wakeup cost")
	tbl.AddRow("epoll (wake-all)", nEvents, epollWakeups, epollWasted,
		simclock.Lat(epollWakeups)*model.WakeupNS)
	tbl.AddRow("qtoken wait (wake-one)", nEvents, queueWakeups, 0,
		simclock.Lat(queueWakeups)*model.WakeupNS)
	tbl.Note = fmt.Sprintf("%d waiter threads in both setups", nWaiters)
	res.Tables = append(res.Tables, tbl)

	res.check("epoll wakes more threads than events (herd)",
		epollWakeups > int64(nEvents), "wakeups=%d events=%d", epollWakeups, nEvents)
	res.check("epoll wastes wakeups", epollWasted > 0, "wasted=%d", epollWasted)
	res.check("qtoken wait wakes exactly one per completion",
		queueWakeups == int64(nEvents), "wakeups=%d events=%d", queueWakeups, nEvents)
	res.check("all events consumed by both", qWon == nEvents && won == nEvents,
		"epoll won=%d, queue won=%d", won, qWon)
	return res, nil
}

// runE10 reproduces the §4.3 sort-queue claim: high-priority elements
// pop first from a sorted view of a backlogged queue.
func runE10(seed int64) (*Result, error) {
	res := &Result{}
	const nItems = 200
	const highEvery = 10 // 10% of items are high priority

	mkItem := func(i int) sga.SGA {
		prio := byte(1)
		if i%highEvery == 0 {
			prio = 0
		}
		return sga.New([]byte{prio}, []byte(fmt.Sprintf("%04d", i)))
	}
	servicePositions := func(popOrder []sga.SGA) (highMean, lowMean float64) {
		var hSum, hN, lSum, lN float64
		for pos, s := range popOrder {
			if s.Segments[0].Buf[0] == 0 {
				hSum += float64(pos)
				hN++
			} else {
				lSum += float64(pos)
				lN++
			}
		}
		return hSum / hN, lSum / lN
	}

	// FIFO baseline.
	fifo := queue.NewMemQueue(nItems)
	for i := 0; i < nItems; i++ {
		fifo.Push(mkItem(i), 0, func(queue.Completion) {})
	}
	var fifoOrder []sga.SGA
	for i := 0; i < nItems; i++ {
		done := make(chan queue.Completion, 1)
		fifo.Pop(func(c queue.Completion) { done <- c })
		c := <-done
		fifoOrder = append(fifoOrder, c.SGA)
	}

	// Sorted view: priority byte ascending (0 = highest priority).
	base := queue.NewMemQueue(nItems)
	sorted := queue.NewSortQueue(base, func(a, b sga.SGA) bool {
		return a.Segments[0].Buf[0] < b.Segments[0].Buf[0]
	}, 64)
	for i := 0; i < nItems; i++ {
		base.Push(mkItem(i), 0, func(queue.Completion) {})
	}
	var sortedOrder []sga.SGA
	for i := 0; i < nItems; i++ {
		sorted.Pump()
		done := make(chan queue.Completion, 1)
		sorted.Pop(func(c queue.Completion) { done <- c })
		sorted.Pump()
		c := <-done
		if c.Err != nil {
			return nil, c.Err
		}
		sortedOrder = append(sortedOrder, c.SGA)
	}

	fifoHigh, fifoLow := servicePositions(fifoOrder)
	sortHigh, sortLow := servicePositions(sortedOrder)

	tbl := metrics.NewTable("E10: mean service position of high-priority requests under backlog",
		"queue", "high-prio mean pos", "low-prio mean pos", "high-prio speedup")
	tbl.AddRow("FIFO", fifoHigh, fifoLow, "1.00x")
	tbl.AddRow("sort queue", sortHigh, sortLow, fmt.Sprintf("%.2fx", fifoHigh/sortHigh))
	tbl.Note = fmt.Sprintf("%d items, %d%% high priority, prefetch window 64", nItems, 100/highEvery)
	res.Tables = append(res.Tables, tbl)

	res.check("sort queue serves high priority much earlier",
		sortHigh < fifoHigh/2, "sorted %.1f vs fifo %.1f", sortHigh, fifoHigh)
	res.check("low priority is not starved (all served)",
		len(sortedOrder) == nItems, "served %d", len(sortedOrder))
	return res, nil
}
