package metrics

import (
	"math"
	"testing"

	"demikernel/internal/simclock"
)

// TestPercentileEdges pins the documented nearest-rank contract at its
// edges: p is clamped to [0, 100], p <= 0 returns the minimum sample,
// p = 100 the maximum, and an empty histogram returns 0. (Percentile
// used to accept out-of-range p silently, with rank arithmetic deciding
// the answer by accident.)
func TestPercentileEdges(t *testing.T) {
	fill := func(vals ...int64) *Histogram {
		var h Histogram
		for _, v := range vals {
			h.Record(simclock.Lat(v))
		}
		return &h
	}
	cases := []struct {
		name string
		h    *Histogram
		p    float64
		want simclock.Lat
	}{
		{"empty p50", fill(), 50, 0},
		{"empty p0", fill(), 0, 0},
		{"empty p100", fill(), 100, 0},
		{"single p0", fill(42), 0, 42},
		{"single p50", fill(42), 50, 42},
		{"single p100", fill(42), 100, 42},
		{"p0 is min", fill(5, 1, 9), 0, 1},
		{"p100 is max", fill(5, 1, 9), 100, 9},
		{"p negative clamps to min", fill(5, 1, 9), -10, 1},
		{"p above 100 clamps to max", fill(5, 1, 9), 250, 9},
		{"p NaN clamps to min", fill(5, 1, 9), math.NaN(), 1},
		// Nearest-rank on 1..10: p50 -> 5th smallest, p99 -> 10th.
		{"nearest rank p50", fill(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 50, 5},
		{"nearest rank p99", fill(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 99, 10},
		{"nearest rank p10", fill(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 10, 1},
	}
	for _, tc := range cases {
		if got := tc.h.Percentile(tc.p); got != tc.want {
			t.Errorf("%s: Percentile(%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
}

// TestMeanRounding pins the round-half-up mean. The old implementation
// used integer division, so a true mean of 1.5 reported as 1 and every
// summary read slightly fast.
func TestMeanRounding(t *testing.T) {
	cases := []struct {
		name string
		vals []int64
		want simclock.Lat
	}{
		{"empty", nil, 0},
		{"single", []int64{7}, 7},
		{"exact", []int64{2, 4}, 3},
		{"half rounds up", []int64{1, 2}, 2},       // 1.5 -> 2 (was 1)
		{"just below half", []int64{1, 1, 2}, 1},   // 1.33 -> 1
		{"just above half", []int64{1, 2, 2}, 2},   // 1.67 -> 2
		{"large values", []int64{999, 1000}, 1000}, // 999.5 -> 1000
	}
	for _, tc := range cases {
		var h Histogram
		for _, v := range tc.vals {
			h.Record(simclock.Lat(v))
		}
		if got := h.Mean(); got != tc.want {
			t.Errorf("%s: Mean(%v) = %v, want %v", tc.name, tc.vals, got, tc.want)
		}
	}
}

// TestSummarizeEmptyAndSingle: digests at the degenerate sizes.
func TestSummarizeEmptyAndSingle(t *testing.T) {
	var empty Histogram
	if s := empty.Summarize(); s != (Summary{}) {
		t.Fatalf("empty Summarize = %+v, want zero", s)
	}
	var one Histogram
	one.Record(9)
	s := one.Summarize()
	if s.Count != 1 || s.Mean != 9 || s.P50 != 9 || s.P99 != 9 || s.Min != 9 || s.Max != 9 {
		t.Fatalf("single-sample Summarize = %+v", s)
	}
}
