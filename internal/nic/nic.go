// Package nic simulates a DPDK-class kernel-bypass NIC (Table 1, left
// column of the paper): raw descriptor rings, burst polling, RSS receive
// steering, and a small hardware filter table for offloaded queue filters
// (§4.2, §4.3).
//
// The device deliberately provides *no* OS functionality: no protocol
// stack, no buffer management beyond its rings, no sockets. "To use
// kernel-bypass accelerators in this category, applications must supply
// their own I/O stack" — that stack is package netstack, and the libOS
// that ties them together is internal/libos/catnip.
package nic

import (
	"fmt"
	"hash/fnv"
	"sync"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// Config describes a simulated NIC.
type Config struct {
	MAC       fabric.MAC
	RxQueues  int // number of receive queues (RSS spreads across them)
	RingDepth int // descriptor ring depth per queue
}

// Stats counts device events.
type Stats struct {
	TxFrames    int64
	RxFrames    int64
	RxDropped   int64 // descriptor ring full
	FilterDrops int64 // frames dropped by a hardware filter
	FilterEvals int64 // hardware filter evaluations
	DMABytes    int64
	Regions     int64 // memory regions registered via membuf
}

// FilterAction tells the device what to do with a frame matching a
// hardware filter.
type FilterAction int

const (
	// ActionSteer steers matching frames to a specific receive queue.
	ActionSteer FilterAction = iota
	// ActionDrop drops matching frames in hardware.
	ActionDrop
)

// HWFilter is one entry in the device's filter table. Match inspects the
// raw frame. Running in "hardware" costs the device the offloaded filter
// cost per evaluation but zero host CPU (§4.2: "library OSes always
// implement filters directly on supported devices but default to using
// the CPU if necessary").
type HWFilter struct {
	Match  func(frame []byte) bool
	Action FilterAction
	Queue  int
}

// Device is a simulated kernel-bypass NIC attached to a fabric switch.
// All methods are safe for concurrent use.
type Device struct {
	model *simclock.CostModel
	cfg   Config
	port  *fabric.Port

	mu      sync.Mutex
	rx      []*ring
	filters []HWFilter
	stats   Stats
}

// New creates a NIC with cfg attached to sw. It announces its MAC to the
// switch immediately (as link-up traffic would) so unicast delivery works
// from the first frame.
func New(model *simclock.CostModel, sw *fabric.Switch, cfg Config) *Device {
	if cfg.RxQueues <= 0 {
		cfg.RxQueues = 1
	}
	if cfg.RingDepth <= 0 {
		cfg.RingDepth = 512
	}
	// The wire-side buffer is deeper than the descriptor rings so that
	// overflow manifests where it does on real hardware: as RxDropped at
	// the device ring, not as silent loss in the fabric.
	portDepth := cfg.RingDepth * cfg.RxQueues * 4
	if portDepth < 4096 {
		portDepth = 4096
	}
	d := &Device{
		model: model,
		cfg:   cfg,
		port:  sw.NewPort(portDepth),
	}
	d.rx = make([]*ring, cfg.RxQueues)
	for i := range d.rx {
		d.rx[i] = newRing(cfg.RingDepth)
	}
	return d
}

// MAC returns the device's hardware address.
func (d *Device) MAC() fabric.MAC { return d.cfg.MAC }

// PortID returns the fabric port this NIC is attached to, the handle
// chaos schedules use to target the device's link.
func (d *Device) PortID() int { return d.port.ID() }

// NumRxQueues returns the configured receive-queue count.
func (d *Device) NumRxQueues() int { return d.cfg.RxQueues }

// RegisterRegion implements membuf.RegistrationSink: the device records
// that a DMA-able region exists. (A real NIC would program its IOMMU
// mapping here.)
func (d *Device) RegisterRegion(id uint64, mem []byte) {
	d.mu.Lock()
	d.stats.Regions++
	d.mu.Unlock()
}

// Tx transmits one raw Ethernet frame carrying prior accumulated cost.
// The device charges its per-packet processing plus DMA of the payload.
func (d *Device) Tx(data []byte, cost simclock.Lat) {
	d.TxFrame(fabric.Frame{Data: data, Cost: cost})
}

// TxFrame transmits one frame, pooled backing buffer and all. Ownership
// of f.Buf transfers to the fabric (and onward to the receiver); the
// caller must not touch f.Data after the call.
func (d *Device) TxFrame(f fabric.Frame) {
	d.mu.Lock()
	d.stats.TxFrames++
	d.stats.DMABytes += int64(len(f.Data))
	d.mu.Unlock()
	f.Cost += d.model.NICProcessNS + d.model.DMACost(len(f.Data))
	d.port.Send(f)
}

// TxBurst transmits a batch of frames, as DPDK's tx_burst would.
func (d *Device) TxBurst(frames []fabric.Frame) {
	for _, f := range frames {
		d.TxFrame(f)
	}
}

// RxBurst polls up to max frames from the given receive queue, as DPDK's
// rx_burst would. It first drains the wire into the device's rings,
// applying hardware filters and RSS steering.
func (d *Device) RxBurst(queue, max int) []fabric.Frame {
	return d.AppendRxBurst(nil, queue, max)
}

// AppendRxBurst is RxBurst with caller-provided storage: frames are
// appended to dst (which may be a recycled slice with len 0), so a
// steady-state poll loop runs without allocating the burst slice.
// Ownership of each frame's pooled buffer (Frame.Buf) passes to the
// caller, who must Release every frame once ingested.
func (d *Device) AppendRxBurst(dst []fabric.Frame, queue, max int) []fabric.Frame {
	if queue < 0 || queue >= len(d.rx) {
		panic(fmt.Sprintf("nic: RxBurst on queue %d of %d", queue, len(d.rx)))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drainWireLocked()
	start := len(dst)
	for len(dst)-start < max {
		f, ok := d.rx[queue].pop()
		if !ok {
			break
		}
		dst = append(dst, f)
	}
	if n := len(dst) - start; n > 0 {
		fabric.RecordBurstSize(n)
	}
	return dst
}

// drainWireLocked moves frames from the fabric port into receive rings.
func (d *Device) drainWireLocked() {
	for {
		f, ok := d.port.Poll()
		if !ok {
			return
		}
		// Hardware receive processing + DMA into host memory.
		f.Cost += d.model.NICProcessNS + d.model.DMACost(len(f.Data))
		d.stats.DMABytes += int64(len(f.Data))

		q, drop := d.classifyLocked(&f)
		if drop {
			d.stats.FilterDrops++
			f.Release()
			continue
		}
		if d.rx[q].push(f) {
			d.stats.RxFrames++
		} else {
			d.stats.RxDropped++
			telemetry.TraceInstant("nic", "rx-ring-drop", int32(q), int64(len(f.Data)))
			f.Release()
		}
	}
}

// classifyLocked runs the hardware filter table, then RSS.
func (d *Device) classifyLocked(f *fabric.Frame) (queue int, drop bool) {
	for _, flt := range d.filters {
		d.stats.FilterEvals++
		f.Cost += d.model.OffloadedFilterCost()
		if flt.Match(f.Data) {
			if flt.Action == ActionDrop {
				return 0, true
			}
			return flt.Queue % len(d.rx), false
		}
	}
	return d.rss(f.Data), false
}

// AddFilter installs a hardware filter and returns its table index.
// Filters run in installation order; the first match wins.
func (d *Device) AddFilter(f HWFilter) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.filters = append(d.filters, f)
	return len(d.filters) - 1
}

// ClearFilters removes all hardware filters.
func (d *Device) ClearFilters() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.filters = nil
}

// rss hashes the flow identity of a frame onto a receive queue. For IPv4
// frames it hashes the source/destination addresses and the first four
// bytes of the transport header (ports); otherwise it hashes the source
// MAC. This stands in for a Toeplitz hash: the property that matters is a
// stable flow→queue mapping.
func (d *Device) rss(data []byte) int {
	h := fnv.New32a()
	const ethHdr = 14
	if len(data) >= ethHdr+24 && data[12] == 0x08 && data[13] == 0x00 {
		h.Write(data[ethHdr+12 : ethHdr+20]) // src+dst IPv4
		h.Write(data[ethHdr+20 : ethHdr+24]) // ports
	} else {
		h.Write(data[6:12])
	}
	return int(h.Sum32()) % len(d.rx)
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// QueueDepth reports the current occupancy of a receive queue, after
// draining the wire. Useful in tests and the steering experiment.
func (d *Device) QueueDepth(queue int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drainWireLocked()
	return d.rx[queue].len()
}

// RxOccupancy reports the current occupancy of a receive queue WITHOUT
// draining the wire first. Telemetry gauges use this: a metrics sample
// must observe the device, not perturb it (QueueDepth's drain would move
// frames from the fabric into the rings as a side effect of being read).
func (d *Device) RxOccupancy(queue int) int {
	if queue < 0 || queue >= len(d.rx) {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rx[queue].len()
}

// RegisterTelemetry lifts the device counters into a telemetry registry
// under prefix (e.g. "nic"). Counter sample funcs snapshot Stats() at
// read time; per-queue occupancy gauges use the non-draining
// RxOccupancy so sampling never mutates device state.
func (d *Device) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	stat := func(read func(Stats) int64) func() int64 {
		return func() int64 { return read(d.Stats()) }
	}
	r.RegisterFunc(prefix+".tx_frames", stat(func(s Stats) int64 { return s.TxFrames }))
	r.RegisterFunc(prefix+".rx_frames", stat(func(s Stats) int64 { return s.RxFrames }))
	r.RegisterFunc(prefix+".rx_dropped", stat(func(s Stats) int64 { return s.RxDropped }))
	r.RegisterFunc(prefix+".filter_drops", stat(func(s Stats) int64 { return s.FilterDrops }))
	r.RegisterFunc(prefix+".filter_evals", stat(func(s Stats) int64 { return s.FilterEvals }))
	r.RegisterFunc(prefix+".dma_bytes", stat(func(s Stats) int64 { return s.DMABytes }))
	r.RegisterFunc(prefix+".regions", stat(func(s Stats) int64 { return s.Regions }))
	for q := 0; q < d.cfg.RxQueues; q++ {
		q := q
		r.RegisterFunc(fmt.Sprintf("%s.rxq%d.occupancy", prefix, q), func() int64 {
			return int64(d.RxOccupancy(q))
		})
	}
}
