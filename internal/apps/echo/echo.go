// Package echo implements the echo server/client used by the latency
// experiments: the server pops each atomic element and pushes it straight
// back; the client measures the accumulated virtual cost of the full
// round trip. Like the KV store, it is written against the Demikernel
// API only, so it runs unmodified over every libOS.
package echo

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"demikernel/internal/apps/failover"
	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/uring"
)

// Server echoes every popped element back on its connection.
type Server struct {
	lib *core.LibOS
	// AppCost is charged per echoed request (models server compute).
	AppCost simclock.Lat

	mu     sync.Mutex
	lqd    core.QD
	conns  map[core.QD]queue.QToken
	echoed int64

	// Ring-path state (nil until EnableRing; see ring.go).
	ring     *uring.Pair
	sqes     []uring.SQE
	cqes     []uring.CQE
	inflight map[core.QD][]sga.SGA
}

// NewServer creates an echo server on lib.
func NewServer(lib *core.LibOS) *Server {
	return &Server{lib: lib, conns: make(map[core.QD]queue.QToken)}
}

// Listen binds the server to port.
func (s *Server) Listen(port uint16) error {
	qd, err := s.lib.Socket()
	if err != nil {
		return err
	}
	if err := s.lib.Bind(qd, core.Addr{Port: port}); err != nil {
		return err
	}
	if err := s.lib.Listen(qd); err != nil {
		return err
	}
	s.lqd = qd
	return nil
}

// Echoed returns the number of requests echoed so far.
func (s *Server) Echoed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.echoed
}

// Step runs one non-blocking iteration and returns requests served.
// After EnableRing it travels the syscall-free ring path instead of the
// per-op token path.
func (s *Server) Step() int {
	if s.ring != nil {
		return s.stepRing()
	}
	for {
		conn, ok, err := s.lib.TryAccept(s.lqd)
		if err != nil || !ok {
			break
		}
		if qt, err := s.lib.Pop(conn); err == nil {
			s.mu.Lock()
			s.conns[conn] = qt
			s.mu.Unlock()
		}
	}
	s.mu.Lock()
	type armed struct {
		conn core.QD
		qt   queue.QToken
	}
	pending := make([]armed, 0, len(s.conns))
	for conn, qt := range s.conns {
		pending = append(pending, armed{conn, qt})
	}
	s.mu.Unlock()

	served := 0
	for _, p := range pending {
		comp, ok, err := s.lib.TryWait(p.qt)
		if err != nil || !ok {
			continue
		}
		if comp.Err != nil {
			s.mu.Lock()
			delete(s.conns, p.conn)
			s.mu.Unlock()
			s.lib.Close(p.conn)
			continue
		}
		if qt, err := s.lib.PushCost(p.conn, comp.SGA, comp.Cost+s.AppCost); err == nil {
			s.lib.Wait(qt)
		}
		// The push staged its own copy; the popped SGA's pooled clone
		// must recycle, or each request stays charged against the
		// serving tenant's frame quota forever.
		comp.SGA.Free()
		served++
		s.mu.Lock()
		s.echoed++
		s.mu.Unlock()
		if qt, err := s.lib.Pop(p.conn); err == nil {
			s.mu.Lock()
			s.conns[p.conn] = qt
			s.mu.Unlock()
		} else {
			s.mu.Lock()
			delete(s.conns, p.conn)
			s.mu.Unlock()
		}
	}
	return served
}

// Run pumps Step until stop closes.
func (s *Server) Run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if s.Step() == 0 {
			s.lib.Poll()
		}
		runtime.Gosched()
	}
}

// Client measures echo round trips. With EnableFailover it redials the
// saved address and replays the echo when the peer dies mid-flight
// (echo is trivially idempotent).
type Client struct {
	lib  *core.LibOS
	qd   core.QD
	addr core.Addr
	pol  *failover.Policy

	reconnects atomic.Int64
	replays    atomic.Int64

	// Ring-path state (nil until EnableRing; see ring.go).
	ring    *uring.Pair
	rsqes   []uring.SQE
	rcqes   []uring.CQE
	ringReq sga.SGA
	ringGen uint64
}

// NewClient creates an echo client on lib.
func NewClient(lib *core.LibOS) *Client {
	return &Client{lib: lib}
}

// EnableFailover arms redial-and-replay with pol.
func (c *Client) EnableFailover(pol failover.Policy) { c.pol = &pol }

// FailoverStats reports redials and replays performed so far.
func (c *Client) FailoverStats() (reconnects, replays int64) {
	return c.reconnects.Load(), c.replays.Load()
}

// Connect dials the echo server and remembers the address for redials.
func (c *Client) Connect(addr core.Addr) error {
	qd, err := c.lib.Socket()
	if err != nil {
		return err
	}
	if err := c.lib.Connect(qd, addr); err != nil {
		return err
	}
	c.qd = qd
	c.addr = addr
	return nil
}

// RTT sends payload and returns the virtual cost accumulated by the
// response — the simulated round-trip latency. Under an armed failover
// policy a dead peer triggers backoff, redial, and replay.
func (c *Client) RTT(payload []byte, appCost simclock.Lat) (simclock.Lat, error) {
	cost, err := c.rtt(payload, appCost)
	if err == nil || c.pol == nil || !failover.Retriable(err) {
		return cost, err
	}
	bo := failover.NewBackoff(*c.pol)
	for {
		d, ok := bo.Next()
		if !ok {
			return 0, err
		}
		time.Sleep(d)
		if rerr := c.redial(); rerr != nil {
			if failover.Retriable(rerr) {
				err = rerr
				continue
			}
			return 0, rerr
		}
		c.reconnects.Add(1)
		c.replays.Add(1)
		cost, err = c.rtt(payload, appCost)
		if err == nil || !failover.Retriable(err) {
			return cost, err
		}
	}
}

func (c *Client) rtt(payload []byte, appCost simclock.Lat) (simclock.Lat, error) {
	qt, err := c.lib.PushCost(c.qd, sga.New(payload), appCost)
	if err != nil {
		return 0, err
	}
	pushComp, err := c.lib.Wait(qt)
	if err != nil {
		return 0, err
	}
	if pushComp.Err != nil {
		return 0, pushComp.Err
	}
	comp, err := c.lib.BlockingPop(c.qd)
	if err != nil {
		return 0, err
	}
	if comp.Err != nil {
		return 0, comp.Err
	}
	defer comp.SGA.Free()
	return comp.Cost, nil
}

// redial abandons the dead connection and dials the saved address anew.
// Dial-first, close-second: a failed redial must leave the old (dead
// but valid) QD in place so subsequent errors stay typed and retriable.
func (c *Client) redial() error {
	qd, err := c.lib.Socket()
	if err != nil {
		return err
	}
	if err := c.lib.Connect(qd, c.addr); err != nil {
		c.lib.Close(qd) //nolint:errcheck
		return err
	}
	c.lib.Close(c.qd) //nolint:errcheck // the old QD is already dead
	c.qd = qd
	return nil
}

// QD exposes the client's connection descriptor so experiments can push
// raw SGAs over the established connection.
func (c *Client) QD() core.QD { return c.qd }

// Close shuts the client connection.
func (c *Client) Close() error { return c.lib.Close(c.qd) }
