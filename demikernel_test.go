package demikernel

import (
	"errors"
	"fmt"
	"testing"

	"demikernel/internal/queue"
	"demikernel/internal/sga"
)

// echoOnce drives one full request/response over an established pair of
// queue descriptors.
func echoOnce(t *testing.T, cli *Node, cqd QD, srv *Node, sqd QD, payload string) {
	t.Helper()
	if _, err := cli.BlockingPush(cqd, NewSGA([]byte(payload))); err != nil {
		t.Fatalf("push: %v", err)
	}
	comp, err := srv.BlockingPop(sqd)
	if err != nil {
		t.Fatalf("server pop: %v", err)
	}
	if string(comp.SGA.Bytes()) != payload {
		t.Fatalf("server got %q, want %q", comp.SGA.Bytes(), payload)
	}
	if _, err := srv.BlockingPush(sqd, comp.SGA); err != nil {
		t.Fatalf("server push: %v", err)
	}
	back, err := cli.BlockingPop(cqd)
	if err != nil {
		t.Fatalf("client pop: %v", err)
	}
	if string(back.SGA.Bytes()) != payload {
		t.Fatalf("client got %q, want %q", back.SGA.Bytes(), payload)
	}
}

// connectNodes builds a connected client/server pair over any two nodes.
func connectNodes(t *testing.T, cluster *Cluster, cli, srv *Node, port uint16) (cqd, sqd QD, cleanup func()) {
	t.Helper()
	stopS := srv.Background()
	stopC := cli.Background()

	lqd, err := srv.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind(lqd, Addr{Port: port}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(lqd); err != nil {
		t.Fatal(err)
	}
	cqd, err = cli.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect(cqd, cluster.AddrOf(srv, port)); err != nil {
		t.Fatalf("connect: %v", err)
	}
	sqd, err = srv.Accept(lqd)
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	return cqd, sqd, func() { stopC(); stopS() }
}

func TestEchoOverCatnip(t *testing.T) {
	c := NewCluster(1)
	srv := c.MustSpawn(Catnip, WithHost(1))
	cli := c.MustSpawn(Catnip, WithHost(2))
	cqd, sqd, cleanup := connectNodes(t, c, cli, srv, 80)
	defer cleanup()
	echoOnce(t, cli, cqd, srv, sqd, "dpdk-class path")
}

func TestEchoOverCatnap(t *testing.T) {
	c := NewCluster(2)
	srv := c.MustSpawn(Catnap, WithHost(1))
	cli := c.MustSpawn(Catnap, WithHost(2))
	cqd, sqd, cleanup := connectNodes(t, c, cli, srv, 80)
	defer cleanup()
	echoOnce(t, cli, cqd, srv, sqd, "kernel path")
	// catnap paid legacy costs: syscalls and copies happened.
	ctr := cli.Kernel.Counters()
	if ctr.SyscallCrossings == 0 || ctr.BytesCopied == 0 {
		t.Fatalf("catnap should cross the kernel and copy: %+v", ctr)
	}
}

func TestEchoOverCatmint(t *testing.T) {
	c := NewCluster(3)
	srv := c.MustSpawn(Catmint, WithHost(1))
	cli := c.MustSpawn(Catmint, WithHost(2))
	cqd, sqd, cleanup := connectNodes(t, c, cli, srv, 7)
	defer cleanup()
	echoOnce(t, cli, cqd, srv, sqd, "rdma path")
}

func TestCrossLibOSInterop(t *testing.T) {
	// The wire format (TCP + SGA framing) is shared between the kernel
	// and DPDK libOSes, so a catnap client talks to a catnip server:
	// the paper's portability story, across stacks.
	c := NewCluster(4)
	srv := c.MustSpawn(Catnip, WithHost(1))
	cli := c.MustSpawn(Catnap, WithHost(2))
	cqd, sqd, cleanup := connectNodes(t, c, cli, srv, 80)
	defer cleanup()
	echoOnce(t, cli, cqd, srv, sqd, "cross-libOS")
}

func TestMultiSegmentSGAPreserved(t *testing.T) {
	c := NewCluster(5)
	srv := c.MustSpawn(Catnip, WithHost(1))
	cli := c.MustSpawn(Catnip, WithHost(2))
	cqd, sqd, cleanup := connectNodes(t, c, cli, srv, 80)
	defer cleanup()

	s := NewSGA([]byte("GET "), []byte("key:42"), []byte(" END"))
	if _, err := cli.BlockingPush(cqd, s); err != nil {
		t.Fatal(err)
	}
	comp, err := srv.BlockingPop(sqd)
	if err != nil {
		t.Fatal(err)
	}
	// "A scatter-gather array pushed into a Demikernel queue always
	// pops out as a single element" — including its segmentation.
	if comp.SGA.NumSegments() != 3 {
		t.Fatalf("segments = %d, want 3", comp.SGA.NumSegments())
	}
	if !comp.SGA.Equal(s) {
		t.Fatalf("got %v, want %v", comp.SGA, s)
	}
}

func TestWaitAnyAcrossConnections(t *testing.T) {
	c := NewCluster(6)
	srv := c.MustSpawn(Catnip, WithHost(1))
	cli := c.MustSpawn(Catnip, WithHost(2))
	stopS := srv.Background()
	stopC := cli.Background()
	defer stopC()
	defer stopS()

	lqd, _ := srv.Socket()
	srv.Bind(lqd, Addr{Port: 80})
	srv.Listen(lqd)

	const n = 3
	cqds := make([]QD, n)
	sqds := make([]QD, n)
	for i := 0; i < n; i++ {
		cqd, err := cli.Socket()
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Connect(cqd, c.AddrOf(srv, 80)); err != nil {
			t.Fatal(err)
		}
		cqds[i] = cqd
		sqd, err := srv.Accept(lqd)
		if err != nil {
			t.Fatal(err)
		}
		sqds[i] = sqd
	}
	// The server waits on one pop token per connection.
	tokens := make([]QToken, n)
	for i, sqd := range sqds {
		qt, err := srv.Pop(sqd)
		if err != nil {
			t.Fatal(err)
		}
		tokens[i] = qt
	}
	// Client 1 (only) sends.
	if _, err := cli.BlockingPush(cqds[1], NewSGA([]byte("from-1"))); err != nil {
		t.Fatal(err)
	}
	idx, comp, err := srv.WaitAny(tokens)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("WaitAny idx = %d, want 1", idx)
	}
	if string(comp.SGA.Bytes()) != "from-1" {
		t.Fatalf("payload %q", comp.SGA.Bytes())
	}
}

func TestWaitAllMemoryQueues(t *testing.T) {
	c := NewCluster(7)
	n := c.MustSpawn(Catnip, WithHost(1))
	q1 := n.Queue()
	q2 := n.Queue()
	t1, _ := n.Push(q1, NewSGA([]byte("a")))
	t2, _ := n.Push(q2, NewSGA([]byte("b")))
	p1, _ := n.Pop(q1)
	p2, _ := n.Pop(q2)
	comps, err := n.WaitAll([]QToken{t1, t2, p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if string(comps[2].SGA.Bytes()) != "a" || string(comps[3].SGA.Bytes()) != "b" {
		t.Fatalf("pops: %q %q", comps[2].SGA.Bytes(), comps[3].SGA.Bytes())
	}
}

func TestComposedQueueSyscalls(t *testing.T) {
	c := NewCluster(8)
	n := c.MustSpawn(Catnip, WithHost(1))
	base := n.Queue()
	fqd, err := n.Filter(base, func(s SGA) bool { return s.Len() > 3 })
	if err != nil {
		t.Fatal(err)
	}
	mqd, err := n.Map(fqd, func(s SGA) SGA {
		return NewSGA(append([]byte(">"), s.Bytes()...))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"ab", "abcd", "x", "longer"} {
		if _, err := n.BlockingPush(base, NewSGA([]byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{">abcd", ">longer"} {
		comp, err := n.BlockingPop(mqd)
		if err != nil {
			t.Fatal(err)
		}
		if string(comp.SGA.Bytes()) != want {
			t.Fatalf("got %q, want %q", comp.SGA.Bytes(), want)
		}
	}
}

func TestSortQueueSyscall(t *testing.T) {
	c := NewCluster(9)
	n := c.MustSpawn(Catnip, WithHost(1))
	base := n.Queue()
	sqd, err := n.Sort(base, func(a, b SGA) bool { return a.Bytes()[0] < b.Bytes()[0] })
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []byte{9, 2, 7, 1} {
		if _, err := n.BlockingPush(base, NewSGA([]byte{p})); err != nil {
			t.Fatal(err)
		}
	}
	n.Poll() // prefetch into the sorted view
	var got []byte
	for i := 0; i < 4; i++ {
		comp, err := n.BlockingPop(sqd)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, comp.SGA.Bytes()[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("not priority ordered: %v", got)
		}
	}
}

func TestQConnectForwarding(t *testing.T) {
	c := NewCluster(10)
	n := c.MustSpawn(Catnip, WithHost(1))
	in := n.Queue()
	out := n.Queue()
	if err := n.QConnect(in, out); err != nil {
		t.Fatal(err)
	}
	if _, err := n.BlockingPush(in, NewSGA([]byte("through"))); err != nil {
		t.Fatal(err)
	}
	comp, err := n.BlockingPop(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(comp.SGA.Bytes()) != "through" {
		t.Fatalf("got %q", comp.SGA.Bytes())
	}
}

func TestCatfishFileQueues(t *testing.T) {
	c := NewCluster(11)
	node, err := c.Spawn(Catfish, WithBlocks(0))
	if err != nil {
		t.Fatal(err)
	}
	qd, err := node.Open("/logs/requests")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s := NewSGA([]byte(fmt.Sprintf("record-%d", i)))
		if _, err := node.BlockingPush(qd, s); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		comp, err := node.BlockingPop(qd)
		if err != nil {
			t.Fatal(err)
		}
		if string(comp.SGA.Bytes()) != fmt.Sprintf("record-%d", i) {
			t.Fatalf("record %d = %q", i, comp.SGA.Bytes())
		}
	}
}

func TestCatfishDurability(t *testing.T) {
	c := NewCluster(12)
	disk := c.NewDisk(0)
	node1, err := c.Spawn(Catfish, WithDisk(disk))
	if err != nil {
		t.Fatal(err)
	}
	qd, _ := node1.Open("/wal")
	node1.BlockingPush(qd, NewSGA([]byte("survives"), []byte(" restarts")))

	// "Restart": a fresh libOS over the same device recovers the log.
	node2, err := c.Spawn(Catfish, WithDisk(disk))
	if err != nil {
		t.Fatal(err)
	}
	qd2, err := node2.Open("/wal")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := node2.BlockingPop(qd2)
	if err != nil {
		t.Fatal(err)
	}
	if string(comp.SGA.Bytes()) != "survives restarts" {
		t.Fatalf("got %q", comp.SGA.Bytes())
	}
	if comp.SGA.NumSegments() != 2 {
		t.Fatalf("segmentation lost across restart: %d", comp.SGA.NumSegments())
	}
}

func TestFeaturesTaxonomy(t *testing.T) {
	c := NewCluster(13)
	catnipNode := c.MustSpawn(Catnip, WithHost(1))
	catnapNode := c.MustSpawn(Catnap, WithHost(2))
	catmintNode := c.MustSpawn(Catmint, WithHost(3))
	if !catnipNode.Features().KernelBypass {
		t.Fatal("catnip must be kernel-bypass")
	}
	if catnapNode.Features().KernelBypass {
		t.Fatal("catnap must not claim kernel bypass")
	}
	if !catmintNode.Features().HWTransport {
		t.Fatal("catmint's device provides a hardware transport")
	}
	// The DPDK libOS must supply strictly more software than the RDMA
	// libOS (Table 1: RDMA adds OS features in hardware).
	if len(catnipNode.Features().SoftwareSupplied) <= len(catmintNode.Features().SoftwareSupplied)-1 {
		t.Fatalf("catnip supplies %v, catmint %v",
			catnipNode.Features().SoftwareSupplied, catmintNode.Features().SoftwareSupplied)
	}
}

func TestBadDescriptorsRejected(t *testing.T) {
	c := NewCluster(14)
	n := c.MustSpawn(Catnip, WithHost(1))
	if _, err := n.Push(QD(999), NewSGA([]byte("x"))); !errors.Is(err, ErrBadQD) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.Pop(QD(999)); !errors.Is(err, ErrBadQD) {
		t.Fatalf("err = %v", err)
	}
	if err := n.Close(QD(999)); !errors.Is(err, ErrBadQD) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.Open("/nope"); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("catnip Open err = %v", err)
	}
}

func TestWaitChanExactlyOneWaiter(t *testing.T) {
	c := NewCluster(15)
	n := c.MustSpawn(Catnip, WithHost(1))
	q := n.Queue()
	qt, err := n.Pop(q)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := n.WaitChan(qt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.WaitChan(qt); !errors.Is(err, queue.ErrTokenClaimed) {
		t.Fatalf("second waiter err = %v", err)
	}
	if _, err := n.Push(q, NewSGA([]byte("wake"))); err != nil {
		t.Fatal(err)
	}
	comp := <-ch
	if string(comp.SGA.Bytes()) != "wake" {
		t.Fatalf("got %q", comp.SGA.Bytes())
	}
}

func TestAllocSGAFreeProtection(t *testing.T) {
	c := NewCluster(16)
	n := c.MustSpawn(Catnip, WithHost(1))
	s := n.AllocSGA(128)
	if s.Len() != 128 {
		t.Fatalf("len = %d", s.Len())
	}
	stats := n.Catnip.Memory().Stats()
	if stats.Allocs != 1 {
		t.Fatalf("allocs = %d", stats.Allocs)
	}
	s.Free()
	if got := n.Catnip.Memory().Stats().LiveBuffers; got != 0 {
		t.Fatalf("live buffers = %d", got)
	}
}

func TestPropagatedCostsOverCatnip(t *testing.T) {
	c := NewCluster(17)
	srv := c.MustSpawn(Catnip, WithHost(1))
	cli := c.MustSpawn(Catnip, WithHost(2))
	cqd, sqd, cleanup := connectNodes(t, c, cli, srv, 80)
	defer cleanup()

	appCost := c.Model.AppRequestNS
	qt, err := cli.PushCost(cqd, NewSGA(make([]byte, 64)), appCost)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Wait(qt); err != nil {
		t.Fatal(err)
	}
	comp, err := srv.BlockingPop(sqd)
	if err != nil {
		t.Fatal(err)
	}
	// End-to-end virtual latency must include app compute, user stack,
	// NIC, and wire — i.e. strictly more than the app cost alone.
	if comp.Cost <= appCost {
		t.Fatalf("cost %v did not accumulate the path", comp.Cost)
	}
}

var _ = sga.SGA{} // keep the import for the documented example types
