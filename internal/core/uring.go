package core

// Syscall-free submission (the paper's end state: the OS control plane
// out of the data path entirely). An application thread that has
// attached a ring pair posts SQEs and harvests CQEs through lock-free
// shared-memory rings; the libOS drains the SQ in bursts inside Poll —
// which is what sched.EventLoop.Tick pumps — so in steady state an
// operation crosses app→libOS→app with zero calls into the libOS, zero
// completer-map touches, and zero allocations. The legacy per-op
// Push/Pop/Wait path stays intact as the slow/compat path (catnap keeps
// it, modeling the kernel crossing), so the bypass-vs-kernel comparison
// the paper makes stays measurable.

import (
	"runtime"
	"time"

	"demikernel/internal/queue"
	"demikernel/internal/telemetry"
	"demikernel/internal/uring"
)

// ringDrainBurst bounds how many SQEs one Poll drains from one ring per
// DrainSQ call (the burst loops until the SQ is empty regardless).
const ringDrainBurst = 64

// ringEntry is one attached ring pair plus the drain-side scratch. The
// mutex makes concurrent Polls skip, not block, a ring another poller
// is already draining (TryLock), so scratch needs no further guarding.
type ringEntry struct {
	p       *uring.Pair
	scratch []uring.SQE
	busy    chan struct{} // 1-slot token; TryLock without sync.Mutex spin
}

// AttachRing creates an SQ/CQ ring pair of the given capacity serviced
// by this libOS's Poll loop and returns it. The pair inherits the
// libOS's span table, so issue→complete attribution keeps working when
// operations travel the ring instead of the completer map. One
// application thread owns the returned pair's app side.
func (l *LibOS) AttachRing(capacity int) *uring.Pair {
	p := uring.NewPair(capacity)
	p.SetSpans(l.completer.Spans())
	burst := ringDrainBurst
	if c := p.Cap(); c < burst {
		burst = c
	}
	e := &ringEntry{p: p, scratch: make([]uring.SQE, burst), busy: make(chan struct{}, 1)}
	l.mu.Lock()
	old := l.rings.Load()
	var next []*ringEntry
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, e)
	l.rings.Store(&next)
	l.mu.Unlock()
	return p
}

// Rings returns the attached ring pairs (telemetry and stat tools).
func (l *LibOS) Rings() []*uring.Pair {
	rl := l.rings.Load()
	if rl == nil {
		return nil
	}
	out := make([]*uring.Pair, len(*rl))
	for i, e := range *rl {
		out[i] = e.p
	}
	return out
}

// drainRings is Poll's ring hook: drain every attached SQ in bursts and
// issue the operations against the descriptor table with slab-backed
// DoneFuncs. Returns the number of operations issued.
func (l *LibOS) drainRings() int {
	rl := l.rings.Load()
	if rl == nil {
		return 0
	}
	n := 0
	for _, e := range *rl {
		n += l.drainRing(e)
	}
	return n
}

func (l *LibOS) drainRing(e *ringEntry) int {
	select {
	case e.busy <- struct{}{}: // claimed
	default:
		return 0 // another poller is draining this ring
	}
	defer func() { <-e.busy }()
	total := 0
	// Memoize the last QD resolved: batches overwhelmingly target one
	// descriptor, so the common case resolves the table lock once per
	// burst, not once per op. Queues exposing the batched face get their
	// operations staged without per-op pumping — the transport poll that
	// follows drainRings pays TX segmentation once for the whole burst.
	var (
		lastQD QD = InvalidQD
		lastIQ queue.IoQueue
		lastBQ queue.BatchIoQueue
	)
	for {
		n := e.p.DrainSQ(e.scratch)
		if n == 0 {
			return total
		}
		total += n
		for i := 0; i < n; i++ {
			sqe := e.scratch[i]
			e.scratch[i] = uring.SQE{} // drop payload refs
			done := e.p.Arm(sqe)
			if QD(sqe.QD) != lastQD {
				d, err := l.get(QD(sqe.QD))
				if err != nil {
					done(queue.Completion{Kind: sqe.Op, Err: err})
					continue
				}
				lastQD = QD(sqe.QD)
				lastIQ = d.ioq()
				lastBQ, _ = lastIQ.(queue.BatchIoQueue)
			}
			switch sqe.Op {
			case queue.OpPush:
				if lastBQ != nil {
					lastBQ.PushBatched(sqe.SGA, sqe.Cost, done)
				} else {
					lastIQ.Push(sqe.SGA, sqe.Cost, done)
				}
			case queue.OpPop:
				if lastBQ != nil {
					lastBQ.PopBatched(done)
				} else {
					lastIQ.Pop(done)
				}
			default:
				done(queue.Completion{Kind: sqe.Op, Err: ErrNotSupported})
			}
		}
	}
}

// SubmitBatch posts a batch of SQEs to an attached ring pair and
// returns how many were accepted (a prefix of es; zero means the ring
// is full — harvest first). After a crash flush it reports the typed
// reset error instead.
func (l *LibOS) SubmitBatch(p *uring.Pair, es []uring.SQE) (int, error) {
	n := p.SubmitN(es)
	if n == 0 {
		if err := p.ResetErr(); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// HarvestCQ pops up to len(dst) completions from an attached ring
// without polling — the non-blocking harvest half of the ring path,
// dispatching by user tag straight off the CQ with no token-map scan.
func (l *LibOS) HarvestCQ(p *uring.Pair, dst []uring.CQE) int {
	return p.Harvest(dst)
}

// WaitAnyRing polls the data path until at least one completion can be
// harvested from p, fills dst, and returns the count. It replaces
// WaitAny for ring-path applications: completions arrive tagged, so
// there is no token slice to rescan. After a crash flush, pending
// operations surface as CQEs carrying the typed reset error; once the
// ring is both reset and empty the reset error itself is returned.
func (l *LibOS) WaitAnyRing(p *uring.Pair, dst []uring.CQE, deadline time.Time) (int, error) {
	dl, budget := l.deadlineFor(deadline)
	for {
		if n := p.Harvest(dst); n > 0 {
			return n, nil
		}
		if err := p.ResetErr(); err != nil {
			if p.Outstanding() == 0 {
				return 0, err
			}
			// Outstanding ops will surface as reset CQEs; keep draining.
		}
		if time.Now().After(dl) {
			return 0, timeoutErr("wait-any-ring", budget)
		}
		l.Poll()
		runtime.Gosched()
	}
}

// registerRingTelemetry publishes the uring.* counter family as
// read-time closures that sum across every attached pair, so rings
// attached *after* telemetry registration are still counted (pairs
// attach lazily, when an app opts into the ring path).
func (l *LibOS) registerRingTelemetry(r *telemetry.Registry, prefix string) {
	sum := func(pick func(uring.Counters) int64) func() int64 {
		return func() int64 {
			var total int64
			rl := l.rings.Load()
			if rl == nil {
				return 0
			}
			for _, e := range *rl {
				total += pick(e.p.CountersSnapshot())
			}
			return total
		}
	}
	r.RegisterFunc(prefix+".pairs", func() int64 {
		if rl := l.rings.Load(); rl != nil {
			return int64(len(*rl))
		}
		return 0
	})
	r.RegisterFunc(prefix+".sq_posted", sum(func(c uring.Counters) int64 { return c.SQPosted }))
	r.RegisterFunc(prefix+".sq_drained", sum(func(c uring.Counters) int64 { return c.SQDrained }))
	r.RegisterFunc(prefix+".cq_posted", sum(func(c uring.Counters) int64 { return c.CQPosted }))
	r.RegisterFunc(prefix+".cq_harvested", sum(func(c uring.Counters) int64 { return c.CQHarvested }))
	r.RegisterFunc(prefix+".sq_full_spins", sum(func(c uring.Counters) int64 { return c.SQFullSpins }))
	r.RegisterFunc(prefix+".cq_overflow", sum(func(c uring.Counters) int64 { return c.CQOverflow }))
	r.RegisterFunc(prefix+".sq_flushed", sum(func(c uring.Counters) int64 { return c.SQFlushed }))
	r.RegisterFunc(prefix+".cq_flushed", sum(func(c uring.Counters) int64 { return c.CQFlushed }))
	r.RegisterFunc(prefix+".sq_occupancy", sum(func(c uring.Counters) int64 { return c.SQOccupancy }))
	r.RegisterFunc(prefix+".cq_occupancy", sum(func(c uring.Counters) int64 { return c.CQOccupancy }))
	r.RegisterFunc(prefix+".outstanding", sum(func(c uring.Counters) int64 { return c.Outstanding }))
	for i, name := range uring.BatchBucketNames() {
		i := i
		r.RegisterFunc(prefix+".drain_batch."+name, sum(func(c uring.Counters) int64 { return c.DrainBatch[i] }))
	}
}

// FlushRings resets every attached ring pair with err: posted-but-
// undrained SQEs convert to error CQEs, unharvested CQEs are rewritten
// at harvest, and new submissions are refused. Node.Crash calls this
// with ErrLocalReset after the transport kills in-flight operations, so
// every pending ring op resolves to exactly one typed-error CQE. It
// returns the total flushed from each side (per-ring flush counters are
// kept by the pairs themselves).
func (l *LibOS) FlushRings(err error) (flushedSQ, flushedCQ int) {
	rl := l.rings.Load()
	if rl == nil {
		return 0, 0
	}
	for _, e := range *rl {
		fs, fc := e.p.Reset(err)
		flushedSQ += fs
		flushedCQ += fc
	}
	return flushedSQ, flushedCQ
}
