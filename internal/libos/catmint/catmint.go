// Package catmint is the RDMA library OS: it implements the Demikernel
// queue abstraction over the simulated RDMA verbs device (internal/rdma).
//
// Where catnip must supply an entire network stack, an RDMA NIC already
// provides reliable, message-oriented transport in hardware (Table 1,
// middle column); what it does NOT provide is exactly what the paper
// calls out in §2: "applications must still supply OS buffer management
// and flow control. Applications have to register memory before using it
// for I/O, and receivers must allocate enough buffers of the right size
// for senders." catmint supplies those pieces:
//
//   - a registered buffer pool (arena MRs carved into fixed slots), so
//     applications never register memory and registration cost is
//     amortised per arena, not per message (§4.5);
//
//   - receive-buffer management: a configurable number of receives is
//     kept posted on every queue pair, eliminating the paper's
//     too-few-buffers failure mode (RNR) that raw verbs applications
//     must handle themselves (the E13 experiment quantifies this).
//
// Pushes from SGAs allocated via AllocSGA travel zero-copy (the device
// gathers directly from registered memory); pushes from unregistered
// application memory are staged into a pool slot with the staging copy
// charged, which is what a real libOS would have to do.
package catmint

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/fabric"
	"demikernel/internal/queue"
	"demikernel/internal/rdma"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// SlotSize is the fixed message buffer size: the largest framed SGA one
// push may carry over catmint. It is deliberately larger than a power-of-
// two payload so 16 KiB application messages fit with framing overhead.
const SlotSize = 32 * 1024

// slotsPerArena slots are carved from each registered arena MR.
const slotsPerArena = 64

// DefaultPostedRecvs is how many receives the libOS keeps posted per
// queue pair.
const DefaultPostedRecvs = 32

// readyByte is the one-byte connection-ready marker the accepting side
// sends after posting its receives (framed SGAs are always >= 8 bytes,
// so it cannot collide with data).
const readyByte = 0xA5

// ErrMessageTooBig is returned when a framed SGA exceeds SlotSize.
var ErrMessageTooBig = errors.New("catmint: message exceeds slot size")

// Failure-path errors (all surfaced through qtoken completions, never by
// hanging a Wait):
var (
	// ErrQPBroken is carried by completions whose work requests were
	// flushed when the queue pair errored. The endpoint may still
	// recover: the dialing side tears the QP down and redials with
	// exponential backoff.
	ErrQPBroken = errors.New("catmint: queue pair errored")
	// ErrOpTimeout is the dead-peer detector: an operation stayed
	// inflight past OpTimeout, so the peer (or the path to it) is gone.
	ErrOpTimeout = errors.New("catmint: operation timed out (dead peer)")
	// ErrPeerDead is terminal: the reconnect budget is exhausted and the
	// endpoint will not recover.
	ErrPeerDead = errors.New("catmint: peer unreachable (reconnect budget exhausted)")
	// ErrReconnecting rejects pushes while a redial is in progress;
	// callers retry after the endpoint reports Connected again.
	ErrReconnecting = errors.New("catmint: reconnect in progress")
)

// Reconnect policy defaults.
const (
	// DefaultOpTimeout bounds how long a send-side work request may stay
	// inflight before the libOS declares the peer dead. Healthy
	// completions take microseconds of polling; two seconds only ever
	// expires when the peer stopped answering.
	DefaultOpTimeout = 2 * time.Second
	// DefaultMaxReconnects bounds redial attempts per outage.
	DefaultMaxReconnects = 6
	// DefaultReconnectBackoff is the first redial delay; it doubles on
	// every failed attempt.
	DefaultReconnectBackoff = 2 * time.Millisecond
)

// Config tunes the transport.
type Config struct {
	MAC fabric.MAC
	// PostedRecvs overrides DefaultPostedRecvs (experiments lower it to
	// reproduce the RNR failure mode).
	PostedRecvs int
	// OpTimeout overrides DefaultOpTimeout (chaos tests shorten it so
	// dead peers are detected quickly). Negative disables the detector.
	OpTimeout time.Duration
	// MaxReconnects overrides DefaultMaxReconnects.
	MaxReconnects int
	// ReconnectBackoff overrides DefaultReconnectBackoff.
	ReconnectBackoff time.Duration
}

// Transport is the catmint libOS transport.
type Transport struct {
	model *simclock.CostModel
	dev   *rdma.Device
	pd    *rdma.PD
	scq   *rdma.CQ
	rcq   *rdma.CQ
	cfg   Config

	mu       sync.Mutex
	pool     []*slot // free slots
	arenas   int
	byQPN    map[uint32]*endpoint
	pending  map[uint64]*pendingOp // wrID -> op
	nextWRID uint64
	eps      []*endpoint
	// epsSnap caches the endpoint list for Poll; rebuilt (as a fresh
	// slice, safe against a concurrent Poll still iterating the old
	// one) only when an endpoint is added.
	epsSnap  []*endpoint
	epsDirty bool
	// stats
	stagedCopies int64
	zeroCopyTx   int64
	reconnects   int64
	opTimeouts   int64
}

type slot struct {
	mr  *rdma.MR
	off int
}

func (s *slot) bytes() []byte { return s.mr.Bytes()[s.off : s.off+SlotSize] }

type pendingOp struct {
	kind queue.OpKind
	ep   *endpoint
	slot *slot
	done queue.DoneFunc
	cost simclock.Lat
	// onWC, when set, routes the raw completion to a one-sided
	// operation (see remote.go) instead of the queue machinery.
	onWC   func(rdma.WC)
	isRead bool
	// deadline, when non-zero, is the dead-peer detector: Transport.Poll
	// expires the op with ErrOpTimeout once the deadline passes. Only
	// send-side ops carry deadlines; posted receives legitimately sit
	// idle forever.
	deadline time.Time
}

// New attaches a catmint instance to the fabric switch.
func New(model *simclock.CostModel, sw *fabric.Switch, cfg Config) *Transport {
	if cfg.PostedRecvs <= 0 {
		cfg.PostedRecvs = DefaultPostedRecvs
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = DefaultOpTimeout
	}
	if cfg.MaxReconnects <= 0 {
		cfg.MaxReconnects = DefaultMaxReconnects
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = DefaultReconnectBackoff
	}
	dev := rdma.New(model, sw, cfg.MAC)
	t := &Transport{
		model:   model,
		dev:     dev,
		pd:      dev.AllocPD(),
		cfg:     cfg,
		byQPN:   make(map[uint32]*endpoint),
		pending: make(map[uint64]*pendingOp),
	}
	t.scq = dev.CreateCQ()
	t.rcq = dev.CreateCQ()
	return t
}

// Name implements core.Transport.
func (t *Transport) Name() string { return "catmint" }

// Features implements core.Transport.
func (t *Transport) Features() core.Features {
	return core.Features{
		KernelBypass: true,
		HWTransport:  true,
		SoftwareSupplied: []string{
			"buffer management (posted receives)", "memory registration pooling",
			"sga framing", "flow control",
		},
	}
}

// Device exposes the RDMA device (for stats in experiments).
func (t *Transport) Device() *rdma.Device { return t.dev }

// StagedCopies reports pushes that had to stage unregistered memory.
func (t *Transport) StagedCopies() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stagedCopies
}

// ZeroCopyTx reports pushes that went out directly from registered
// memory.
func (t *Transport) ZeroCopyTx() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.zeroCopyTx
}

// Reconnects reports how many QP redials the transport has performed.
func (t *Transport) Reconnects() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reconnects
}

// OpTimeouts reports operations expired by the dead-peer detector.
func (t *Transport) OpTimeouts() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.opTimeouts
}

// RegisterTelemetry lifts the transport's counters — its own libOS-layer
// stats plus the RDMA device's — into a telemetry registry under prefix.
func (t *Transport) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	t.dev.RegisterTelemetry(r, prefix+".rnic")
	r.RegisterFunc(prefix+".staged_copies", t.StagedCopies)
	r.RegisterFunc(prefix+".zero_copy_tx", t.ZeroCopyTx)
	r.RegisterFunc(prefix+".reconnects", t.Reconnects)
	r.RegisterFunc(prefix+".op_timeouts", t.OpTimeouts)
	r.RegisterFunc(prefix+".arenas", func() int64 { return int64(t.Arenas()) })
}

// allocSlot pops a free slot, registering a new arena when the pool is
// dry (one registration per arena: the §4.5 amortisation).
func (t *Transport) allocSlot() *slot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.allocSlotLocked()
}

func (t *Transport) allocSlotLocked() *slot {
	if len(t.pool) == 0 {
		arena := make([]byte, SlotSize*slotsPerArena)
		mr := t.pd.RegisterMemory(arena)
		t.arenas++
		for i := 0; i < slotsPerArena; i++ {
			t.pool = append(t.pool, &slot{mr: mr, off: i * SlotSize})
		}
	}
	s := t.pool[len(t.pool)-1]
	t.pool = t.pool[:len(t.pool)-1]
	return s
}

func (t *Transport) freeSlot(s *slot) {
	t.mu.Lock()
	t.pool = append(t.pool, s)
	t.mu.Unlock()
}

// Arenas returns how many arena registrations have been performed.
func (t *Transport) Arenas() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.arenas
}

// AllocSGA implements core.Transport: the returned single-segment SGA
// lives in a registered pool slot, so pushes of it are zero-copy.
func (t *Transport) AllocSGA(n int) sga.SGA {
	if n > SlotSize {
		// Oversized allocations fall back to heap memory (staged at
		// push time).
		return sga.New(make([]byte, n))
	}
	sl := t.allocSlot()
	s := sga.New(sl.bytes()[:n]).WithFree(func() { t.freeSlot(sl) })
	s.Reg = sl
	return s
}

// SocketUDP implements core.Transport; this libOS has no datagram path.
func (t *Transport) SocketUDP() (core.Endpoint, error) {
	return nil, core.ErrNotSupported
}

// Open implements core.Transport; catmint has no storage path.
func (t *Transport) Open(string) (queue.IoQueue, error) {
	return nil, core.ErrNotSupported
}

// Socket implements core.Transport.
func (t *Transport) Socket() (core.Endpoint, error) {
	ep := &endpoint{t: t}
	t.mu.Lock()
	t.eps = append(t.eps, ep)
	t.epsDirty = true
	t.mu.Unlock()
	return ep, nil
}

// pollSnapshot returns the cached endpoint list, rebuilding it only
// when the set changed, so steady-state polling does not allocate.
func (t *Transport) pollSnapshot() []*endpoint {
	t.mu.Lock()
	if t.epsDirty {
		t.epsSnap = append(make([]*endpoint, 0, len(t.eps)), t.eps...)
		t.epsDirty = false
	}
	eps := t.epsSnap
	t.mu.Unlock()
	return eps
}

// Poll implements core.Transport: pump the device, stage inbound
// connections, and route completions.
func (t *Transport) Poll() int {
	n := t.dev.Poll()

	// Stage inbound connections eagerly: the libOS (not the
	// application) posts the receive window and signals readiness, so a
	// peer that connects and immediately pushes never hits RNR — the
	// buffer-management burden §2 describes, carried by the libOS.
	eps := t.pollSnapshot()
	for _, ep := range eps {
		n += ep.stageAccepts()
	}

	for _, wc := range t.rcq.Poll(0) {
		n++
		t.handleRecv(wc)
	}
	for _, wc := range t.scq.Poll(0) {
		n++
		t.handleSendComp(wc)
	}

	// Failure handling: expire dead-peer ops, then drive per-endpoint
	// recovery (teardown + redial with backoff).
	n += t.checkDeadlines()
	eps = t.pollSnapshot() // accepts above may have adopted endpoints
	for _, ep := range eps {
		n += ep.checkQP()
	}

	for _, ep := range eps {
		ep.serveWaiters()
	}
	return n
}

// checkDeadlines is the dead-peer detector: any send-side work request
// inflight past its deadline completes with ErrOpTimeout and breaks its
// queue pair, which starts the reconnect machinery. A peer behind a
// downed link never NAKs, so without this the op would hang forever.
func (t *Transport) checkDeadlines() int {
	now := time.Now()
	t.mu.Lock()
	var expired []*pendingOp
	for id, op := range t.pending {
		if !op.deadline.IsZero() && now.After(op.deadline) {
			delete(t.pending, id)
			expired = append(expired, op)
		}
	}
	t.opTimeouts += int64(len(expired))
	t.mu.Unlock()
	for _, op := range expired {
		if op.slot != nil {
			t.freeSlot(op.slot)
		}
		if op.onWC != nil {
			op.onWC(rdma.WC{Status: rdma.StatusQPError})
		} else if op.done != nil {
			op.done(queue.Completion{Kind: op.kind, Err: ErrOpTimeout})
		}
		if op.ep != nil {
			op.ep.breakQP()
		}
	}
	return len(expired)
}

func (t *Transport) handleRecv(wc rdma.WC) {
	t.mu.Lock()
	op, ok := t.pending[wc.WRID]
	if ok {
		delete(t.pending, wc.WRID)
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	ep := op.ep
	if wc.Status != rdma.StatusSuccess {
		// Flushed or failed receive: recycle the slot and record one
		// typed error for the endpoint instead of queueing an error
		// completion per posted buffer (a QP error flushes the whole
		// receive window at once).
		t.freeSlot(op.slot)
		err := error(ErrQPBroken)
		if wc.Status != rdma.StatusQPError {
			err = fmt.Errorf("catmint: recv failed: %v", wc.Status)
		}
		ep.recvError(err)
		return
	}
	// Keep the configured number of receives posted.
	ep.postRecv()
	data := op.slot.bytes()[:wc.Len]
	if wc.Len == 1 && data[0] == readyByte {
		t.freeSlot(op.slot)
		ep.markReady()
		return
	}
	s, _, err := sga.Unmarshal(data)
	if err != nil {
		t.freeSlot(op.slot)
		ep.deliver(queue.Completion{Kind: queue.OpPop, Err: err})
		return
	}
	sl := op.slot
	s = s.WithFree(func() { t.freeSlot(sl) })
	ep.deliver(queue.Completion{Kind: queue.OpPop, SGA: s, Cost: wc.Cost})
}

func (t *Transport) handleSendComp(wc rdma.WC) {
	t.mu.Lock()
	op, ok := t.pending[wc.WRID]
	if ok {
		delete(t.pending, wc.WRID)
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	if op.onWC != nil {
		// One-sided operation: the callback may need the slot's bytes
		// (reads), so it runs before the slot recycles.
		op.onWC(wc)
		if op.slot != nil {
			t.freeSlot(op.slot)
		}
		return
	}
	if op.slot != nil {
		t.freeSlot(op.slot)
	}
	if op.done == nil {
		return // fire-and-forget (the ready marker)
	}
	c := queue.Completion{Kind: queue.OpPush, Cost: op.cost + wc.Cost}
	switch wc.Status {
	case rdma.StatusSuccess:
	case rdma.StatusQPError:
		c.Err = ErrQPBroken // typed: caller may retry after reconnect
	default:
		c.Err = fmt.Errorf("catmint: send failed: %v", wc.Status)
	}
	op.done(c)
}

func (t *Transport) newWRID(op *pendingOp) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Send-side work requests get a dead-peer deadline; posted receives
	// (kind OpPop without a one-sided callback) wait indefinitely.
	if t.cfg.OpTimeout > 0 && (op.kind == queue.OpPush || op.onWC != nil) {
		op.deadline = time.Now().Add(t.cfg.OpTimeout)
	}
	t.nextWRID++
	t.pending[t.nextWRID] = op
	return t.nextWRID
}

func (t *Transport) adopt(ep *endpoint, qpn uint32) {
	t.mu.Lock()
	t.eps = append(t.eps, ep)
	t.epsDirty = true
	t.byQPN[qpn] = ep
	t.mu.Unlock()
}

// endpoint is one catmint socket queue over an RDMA queue pair.
type endpoint struct {
	t *Transport

	mu       sync.Mutex
	bound    core.Addr
	listener *rdma.Listener
	qp       *rdma.QP
	ready    []queue.Completion
	waiters  []queue.DoneFunc
	acceptQ  []*endpoint // staged inbound connections (listeners only)
	isReady  bool        // connection fully usable (ready marker seen / sent)
	accepted bool
	closed   bool

	// Failure / recovery state.
	remote       core.Addr // peer address (dialing side only)
	dialer       bool      // this side called Connect and may redial
	reconnecting bool      // old QP torn down, redial pending or inflight
	redialAt     time.Time // earliest time the next redial may fire
	attempts     int       // redials since the last healthy connection
	epErr        error     // terminal failure; nil while healthy/recovering
	popErr       error     // one-shot error for the next pop (QP flush)
}

// Bind implements core.Endpoint.
func (e *endpoint) Bind(addr core.Addr) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bound = addr
	return nil
}

// LocalAddr implements core.Endpoint.
func (e *endpoint) LocalAddr() core.Addr {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bound
}

// Listen implements core.Endpoint.
func (e *endpoint) Listen() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	l, err := e.t.dev.Listen(e.bound.Port, e.t.pd, e.t.scq, e.t.rcq)
	if err != nil {
		return err
	}
	e.listener = l
	return nil
}

// stageAccepts drains the device-level backlog into fully initialised
// endpoints (receive window posted, ready marker sent). Called from
// Transport.Poll so staging never waits for the application.
func (e *endpoint) stageAccepts() int {
	e.mu.Lock()
	l := e.listener
	e.mu.Unlock()
	if l == nil {
		return 0
	}
	n := 0
	for {
		qp, ok := l.Accept()
		if !ok {
			return n
		}
		child := &endpoint{t: e.t, qp: qp, isReady: true, accepted: true}
		e.t.adopt(child, qp.Num())
		for i := 0; i < e.t.cfg.PostedRecvs; i++ {
			child.postRecv()
		}
		child.sendReadyMarker()
		e.mu.Lock()
		e.acceptQ = append(e.acceptQ, child)
		e.mu.Unlock()
		n++
	}
}

// Accept implements core.Endpoint: it pops one staged connection.
func (e *endpoint) Accept() (core.Endpoint, bool, error) {
	e.mu.Lock()
	l := e.listener
	e.mu.Unlock()
	if l == nil {
		return nil, false, core.ErrNotListening
	}
	e.stageAccepts()
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.acceptQ) == 0 {
		return nil, false, nil
	}
	child := e.acceptQ[0]
	e.acceptQ = e.acceptQ[1:]
	return child, true, nil
}

// Connect implements core.Endpoint: the receive window is posted before
// the connection request leaves, so the peer can never hit RNR on the
// handshake.
func (e *endpoint) Connect(addr core.Addr) error {
	qp := e.t.dev.Connect(addr.MAC, addr.Port, e.t.pd, e.t.scq, e.t.rcq)
	e.mu.Lock()
	e.qp = qp
	e.remote = addr
	e.dialer = true
	e.mu.Unlock()
	e.t.adopt(e, qp.Num())
	for i := 0; i < e.t.cfg.PostedRecvs; i++ {
		e.postRecv()
	}
	return nil
}

// Connected implements core.Endpoint.
func (e *endpoint) Connected() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.isReady && e.qp != nil && e.qp.Connected()
}

// Err implements core.Endpoint: non-nil once the endpoint has failed for
// good (reconnect budget exhausted, or a server-side QP died — only the
// dialing side knows the address to redial).
func (e *endpoint) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epErr
}

func (e *endpoint) markReady() {
	e.mu.Lock()
	e.isReady = true
	e.attempts = 0 // healthy again: reset the reconnect budget
	e.reconnecting = false
	e.popErr = nil // errors of the dead incarnation die with it
	e.mu.Unlock()
}

// breakQP tears the endpoint's queue pair down after a failure and arms
// the redial timer (dialing side) or records the terminal error (server
// side). Safe to call repeatedly.
func (e *endpoint) breakQP() {
	e.mu.Lock()
	qp := e.qp
	if qp == nil || e.closed || e.reconnecting || e.epErr != nil {
		e.mu.Unlock()
		return
	}
	e.qp = nil
	e.isReady = false
	// The broken incarnation's undelivered data dies with it: a response
	// whose request already failed must not be served to a later pop
	// (classic off-by-one desync). Slots recycle; the stream restarts
	// clean after the redial.
	stale := e.ready
	e.ready = nil
	e.popErr = nil
	if e.dialer {
		e.reconnecting = true
		backoff := e.t.cfg.ReconnectBackoff << e.attempts
		e.redialAt = time.Now().Add(backoff)
	} else {
		// The accepting side cannot redial (the dialer owns the
		// address); the connection is gone for good. The application's
		// accept loop will pick up the replacement connection.
		e.epErr = ErrQPBroken
	}
	e.mu.Unlock()
	for _, c := range stale {
		c.SGA.Free()
	}
	qp.Destroy() // flushes remaining WRs; completions surface via CQs
	if err := e.Err(); err != nil {
		e.failWaiters(err)
	} else {
		e.failWaiters(ErrReconnecting)
	}
}

// checkQP drives failure detection and recovery for one endpoint from
// Transport.Poll: notice errored QPs, and fire pending redials once
// their backoff expires.
func (e *endpoint) checkQP() int {
	e.mu.Lock()
	qp := e.qp
	closed := e.closed
	reconnecting := e.reconnecting
	redialAt := e.redialAt
	e.mu.Unlock()
	if closed {
		return 0
	}
	if !reconnecting && qp != nil && qp.Errored() {
		e.breakQP()
		return 1
	}
	if !reconnecting || time.Now().Before(redialAt) {
		return 0
	}
	return e.redial()
}

// redial dials a replacement QP, or gives up with ErrPeerDead once the
// attempt budget is spent. The endpoint counts attempts from the moment
// the redial fires; success is only declared when the peer's ready
// marker arrives (markReady), which also resets the budget.
func (e *endpoint) redial() int {
	e.mu.Lock()
	if e.closed || e.epErr != nil || !e.reconnecting {
		e.mu.Unlock()
		return 0
	}
	if e.attempts >= e.t.cfg.MaxReconnects {
		e.epErr = ErrPeerDead
		e.reconnecting = false
		e.mu.Unlock()
		e.failWaiters(ErrPeerDead)
		return 0
	}
	e.attempts++
	attempt := e.attempts
	remote := e.remote
	old := e.qp
	e.qp = nil
	e.mu.Unlock()
	if old != nil {
		old.Destroy() // previous redial attempt died too
	}

	qp := e.t.dev.Connect(remote.MAC, remote.Port, e.t.pd, e.t.scq, e.t.rcq)
	e.mu.Lock()
	e.qp = qp
	// Arm the next backoff now: if this attempt dies too, checkQP
	// redials after the (doubled) delay without extra bookkeeping.
	e.redialAt = time.Now().Add(e.t.cfg.ReconnectBackoff << attempt)
	e.mu.Unlock()
	e.t.mu.Lock()
	e.t.reconnects++
	e.t.byQPN[qp.Num()] = e
	e.t.mu.Unlock()
	for i := 0; i < e.t.cfg.PostedRecvs; i++ {
		e.postRecv()
	}
	return 1
}

// recvError records a flushed/failed receive: waiting pops fail now;
// otherwise one error completion is held for the next pop so a single QP
// flush does not flood the ready queue.
func (e *endpoint) recvError(err error) {
	e.mu.Lock()
	ws := e.waiters
	e.waiters = nil
	if len(ws) == 0 {
		e.popErr = err
	}
	e.mu.Unlock()
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: err})
	}
}

func (e *endpoint) failWaiters(err error) {
	e.mu.Lock()
	ws := e.waiters
	e.waiters = nil
	e.mu.Unlock()
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: err})
	}
}

func (e *endpoint) sendReadyMarker() {
	sl := e.t.allocSlot()
	sl.bytes()[0] = readyByte
	wrID := e.t.newWRID(&pendingOp{kind: queue.OpPush, ep: e, slot: sl})
	e.qp.PostSend(wrID, rdma.Sge{MR: sl.mr, Off: sl.off, Len: 1})
}

// postRecv posts one pool slot as a receive buffer.
func (e *endpoint) postRecv() {
	e.mu.Lock()
	qp := e.qp
	closed := e.closed
	e.mu.Unlock()
	if qp == nil || closed || qp.Errored() {
		return
	}
	sl := e.t.allocSlot()
	wrID := e.t.newWRID(&pendingOp{kind: queue.OpPop, ep: e, slot: sl})
	if err := qp.PostRecv(wrID, rdma.Sge{MR: sl.mr, Off: sl.off, Len: SlotSize}); err != nil {
		e.t.freeSlot(sl)
	}
}

// Push implements queue.IoQueue.
func (e *endpoint) Push(s sga.SGA, cost simclock.Lat, done queue.DoneFunc) {
	e.mu.Lock()
	qp := e.qp
	closed := e.closed
	epErr := e.epErr
	reconnecting := e.reconnecting
	e.mu.Unlock()
	switch {
	case closed:
		done(queue.Completion{Kind: queue.OpPush, Err: queue.ErrClosed})
		return
	case epErr != nil:
		done(queue.Completion{Kind: queue.OpPush, Err: epErr})
		return
	case reconnecting:
		done(queue.Completion{Kind: queue.OpPush, Err: ErrReconnecting})
		return
	case qp == nil:
		done(queue.Completion{Kind: queue.OpPush, Err: queue.ErrClosed})
		return
	}
	size := s.MarshalledSize()
	if size > SlotSize {
		done(queue.Completion{Kind: queue.OpPush, Err: ErrMessageTooBig})
		return
	}
	sl := e.t.allocSlot()
	buf := s.AppendMarshal(sl.bytes()[:0])

	// Zero-copy accounting: if every segment came from the registered
	// pool the device gathers in place; otherwise the staging into the
	// slot is a real copy and is charged.
	if registered(s) {
		e.t.mu.Lock()
		e.t.zeroCopyTx++
		e.t.mu.Unlock()
	} else {
		e.t.mu.Lock()
		e.t.stagedCopies++
		e.t.mu.Unlock()
		cost += e.t.model.CopyCost(s.Len())
	}

	wrID := e.t.newWRID(&pendingOp{kind: queue.OpPush, ep: e, slot: sl, done: done, cost: cost})
	if err := qp.PostSend(wrID, rdma.Sge{MR: sl.mr, Off: sl.off, Len: len(buf)}); err != nil {
		e.t.mu.Lock()
		delete(e.t.pending, wrID)
		e.t.mu.Unlock()
		e.t.freeSlot(sl)
		done(queue.Completion{Kind: queue.OpPush, Err: err})
	}
}

// registered reports whether every segment of s lives in pool memory.
func registered(s sga.SGA) bool {
	if s.Reg == nil {
		return false
	}
	_, ok := s.Reg.(*slot)
	return ok
}

// Pop implements queue.IoQueue.
func (e *endpoint) Pop(done queue.DoneFunc) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
		return
	}
	if len(e.ready) > 0 {
		c := e.ready[0]
		e.ready = e.ready[1:]
		e.mu.Unlock()
		done(c)
		return
	}
	if e.popErr != nil {
		err := e.popErr
		e.popErr = nil
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: err})
		return
	}
	if e.epErr != nil {
		err := e.epErr
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: err})
		return
	}
	if e.reconnecting {
		// No QP exists while the redial is in flight, so nothing can
		// arrive: fail fast rather than queue a waiter that would
		// outlive the outage and steal the first post-heal delivery.
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: ErrReconnecting})
		return
	}
	e.waiters = append(e.waiters, done)
	e.mu.Unlock()
}

func (e *endpoint) deliver(c queue.Completion) {
	e.mu.Lock()
	e.ready = append(e.ready, c)
	e.mu.Unlock()
	e.serveWaiters()
}

func (e *endpoint) serveWaiters() {
	for {
		e.mu.Lock()
		if len(e.waiters) == 0 || len(e.ready) == 0 {
			e.mu.Unlock()
			return
		}
		w := e.waiters[0]
		e.waiters = e.waiters[1:]
		c := e.ready[0]
		e.ready = e.ready[1:]
		e.mu.Unlock()
		w(c)
	}
}

// Pump implements queue.IoQueue; completion routing happens centrally in
// Transport.Poll.
func (e *endpoint) Pump() int { return 0 }

// Close implements queue.IoQueue.
func (e *endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	ws := e.waiters
	e.waiters = nil
	e.mu.Unlock()
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
	}
	return nil
}
