package experiments

import (
	"fmt"

	demi "demikernel"
	"demikernel/internal/apps/echo"
	"demikernel/internal/apps/kv"
	"demikernel/internal/metrics"
	"demikernel/internal/simclock"
)

// The ablations probe the design choices DESIGN.md calls out: is the
// bypass win really about syscalls alone, and how sensitive is the
// zero-copy argument to memory bandwidth? They are not paper figures;
// they stress the *reasons* behind the paper's claims.

// echoOverModel builds an echo rig over a custom cost model and measures
// round trips.
func echoOverModel(flavor string, seed int64, model simclock.CostModel, size, n int) (*metrics.Histogram, error) {
	c := demi.NewClusterWithModel(seed, model)
	srvNode, err := newNodeOn(c, flavor, demi.NodeConfig{Host: 1})
	if err != nil {
		return nil, err
	}
	cliNode, err := newNodeOn(c, flavor, demi.NodeConfig{Host: 2})
	if err != nil {
		return nil, err
	}
	srv := echo.NewServer(srvNode.LibOS)
	srv.AppCost = c.Model.AppRequestNS
	if err := srv.Listen(7); err != nil {
		return nil, err
	}
	stopS := srvNode.Background()
	defer stopS()
	stopC := cliNode.Background()
	defer stopC()
	stopServe := make(chan struct{})
	defer close(stopServe)
	go srv.Run(stopServe)

	cli := echo.NewClient(cliNode.LibOS)
	if err := cli.Connect(c.AddrOf(srvNode, 7)); err != nil {
		return nil, err
	}
	payload := make([]byte, size)
	var h metrics.Histogram
	for i := 0; i < n; i++ {
		cost, err := cli.RTT(payload, c.Model.AppRequestNS)
		if err != nil {
			return nil, err
		}
		h.Record(cost)
	}
	return &h, nil
}

func newNodeOn(c *demi.Cluster, flavor string, cfg demi.NodeConfig) (*demi.Node, error) {
	switch flavor {
	case "catnip":
		return c.MustSpawn(demi.Catnip, demi.WithConfig(cfg)), nil
	case "catnap":
		return c.MustSpawn(demi.Catnap, demi.WithConfig(cfg)), nil
	case "catmint":
		return c.MustSpawn(demi.Catmint, demi.WithConfig(cfg)), nil
	default:
		return nil, fmt.Errorf("unknown libOS flavor %q", flavor)
	}
}

// runA1 ablates the syscall cost: if syscalls were free, would the
// kernel path catch up? The paper argues no — "the kernel's I/O
// abstraction is as much a barrier to performance as the kernel itself"
// (§3.2): the copies, the heavier stack, and the POSIX semantics remain.
func runA1(seed int64) (*Result, error) {
	res := &Result{}
	tbl := metrics.NewTable("A1: 4KB echo RTT as the syscall price varies",
		"syscall cost", "kernel p50", "bypass p50", "kernel/bypass")
	var ratioAtZero, ratioAtFull float64
	for _, syscallNS := range []simclock.Lat{0, 250, 500, 1000, 2000} {
		model := simclock.Datacenter2019()
		model.SyscallNS = syscallNS
		kh, err := echoOverModel("catnap", seed, model, 4096, rttSamples)
		if err != nil {
			return nil, err
		}
		bh, err := echoOverModel("catnip", seed, model, 4096, rttSamples)
		if err != nil {
			return nil, err
		}
		ratio := float64(kh.Percentile(50)) / float64(bh.Percentile(50))
		if syscallNS == 0 {
			ratioAtZero = ratio
		}
		if syscallNS == 500 {
			ratioAtFull = ratio
		}
		tbl.AddRow(syscallNS, kh.Percentile(50), bh.Percentile(50), fmt.Sprintf("%.2fx", ratio))
	}
	res.Tables = append(res.Tables, tbl)

	res.check("kernel path stays slower even with free syscalls (§3.2: the abstraction is the barrier)",
		ratioAtZero > 1.2, "ratio at syscall=0 is %.2f", ratioAtZero)
	res.check("syscall price widens the gap", ratioAtFull > ratioAtZero,
		"ratio grows from %.2f to %.2f", ratioAtZero, ratioAtFull)
	return res, nil
}

// runA2 ablates the copy cost (memory bandwidth): the zero-copy
// advantage must scale with the price of a byte.
func runA2(seed int64) (*Result, error) {
	res := &Result{}
	tbl := metrics.NewTable("A2: 4KB KV GET as the copy price varies",
		"copy ns/B", "copy-path p50", "zero-copy p50", "delta")
	var deltas []simclock.Lat
	for _, perByte := range []float64{0.06, 0.244, 0.5, 1.0} {
		model := simclock.Datacenter2019()
		model.CopyPerByteNS = perByte

		var p50s [2]simclock.Lat
		for i, flavor := range []string{"catnap", "catnip"} {
			c := demi.NewClusterWithModel(seed, model)
			srvNode, err := newNodeOn(c, flavor, demi.NodeConfig{Host: 1})
			if err != nil {
				return nil, err
			}
			cliNode, err := newNodeOn(c, flavor, demi.NodeConfig{Host: 2})
			if err != nil {
				return nil, err
			}
			srv := kv.NewServer(srvNode.LibOS, &c.Model)
			if err := srv.Listen(6379); err != nil {
				return nil, err
			}
			stopS := srvNode.Background()
			stopC := cliNode.Background()
			stopServe := make(chan struct{})
			go srv.Run(stopServe)
			cli := kv.NewClient(cliNode.LibOS)
			if err := cli.Connect(c.AddrOf(srvNode, 6379)); err != nil {
				return nil, err
			}
			if _, err := cli.Set("k", make([]byte, 4096)); err != nil {
				return nil, err
			}
			var h metrics.Histogram
			for j := 0; j < rttSamples; j++ {
				_, cost, found, err := cli.Get("k")
				if err != nil || !found {
					return nil, fmt.Errorf("get: %v found=%v", err, found)
				}
				h.Record(cost)
			}
			close(stopServe)
			stopC()
			stopS()
			p50s[i] = h.Percentile(50)
		}
		delta := p50s[0] - p50s[1]
		deltas = append(deltas, delta)
		tbl.AddRow(fmt.Sprintf("%.3f", perByte), p50s[0], p50s[1], delta)
	}
	res.Tables = append(res.Tables, tbl)

	monotonic := true
	for i := 1; i < len(deltas); i++ {
		if deltas[i] <= deltas[i-1] {
			monotonic = false
		}
	}
	res.check("zero-copy advantage grows with copy price", monotonic,
		"deltas: %v", deltas)
	res.check("advantage persists even at DDR5-class bandwidth",
		deltas[0] > 0, "delta at 0.06 ns/B = %v", deltas[0])
	return res, nil
}
