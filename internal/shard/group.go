package shard

import (
	"fmt"
	"sync/atomic"

	"demikernel/internal/telemetry"
)

// Op tags a cross-shard message with its purpose.
type Op int

// Cross-shard message kinds.
const (
	// OpForward carries a request that RSS delivered to a shard which
	// does not own the key: the receiving shard executes it and answers
	// with OpReply. Rare by construction (clients that align their
	// source ports with the keyspace partition never trigger it).
	OpForward Op = iota
	// OpReply answers an OpForward.
	OpReply
	// OpControl carries a control-plane request (stats, drain, config).
	OpControl
	// OpMigrate ships one key/value record to its owner under a new
	// keyspace generation during an elastic reshard. Because each edge
	// is a FIFO SPSC ring, a migrate record enqueued before any later
	// forward on the same (old-owner → new-owner) edge is consumed
	// first — the ordering the reshard handoff's correctness rests on.
	OpMigrate
)

// Msg is one cross-shard message. Payload stays opaque to the mesh; Seq
// lets the sender match replies to forwards.
type Msg struct {
	From    int
	Op      Op
	Seq     uint64
	Payload any
}

// workerStats holds one shard's mesh counters, padded so two shards'
// counters never share a cache line.
type workerStats struct {
	sent     atomic.Int64
	received atomic.Int64
	dropped  atomic.Int64         // sends rejected because the target ring was full
	_        [cacheLine - 24]byte //nolint:unused // pad
}

// Group is an any-to-any mesh of SPSC rings connecting n shard workers:
// one dedicated bounded ring per ordered (from, to) pair, so every edge
// has exactly one producer and one consumer and no send or receive ever
// takes a lock. With n shards the mesh is n² rings; n is small (a shard
// per core) so the footprint is trivial, and the payoff is that the
// *only* shared cache lines between two steady-state shards are the
// head/tail words of rings they actually exchange messages on.
type Group struct {
	n     int
	rings [][]*Ring[Msg] // rings[from][to]; rings[i][i] is nil
	stats []*workerStats
}

// NewGroup builds a mesh for n workers with per-edge ring capacity cap
// (0 means 256).
func NewGroup(n, cap int) *Group {
	if n <= 0 {
		panic("shard: group size must be positive")
	}
	if cap <= 0 {
		cap = 256
	}
	g := &Group{
		n:     n,
		rings: make([][]*Ring[Msg], n),
		stats: make([]*workerStats, n),
	}
	for i := 0; i < n; i++ {
		g.rings[i] = make([]*Ring[Msg], n)
		g.stats[i] = &workerStats{}
		for j := 0; j < n; j++ {
			if i != j {
				g.rings[i][j] = NewRing[Msg](cap)
			}
		}
	}
	return g
}

// Size returns the number of workers in the mesh.
func (g *Group) Size() int { return g.n }

// Send enqueues m on the (from→to) edge. It reports false when the edge
// ring is full (bounded backpressure) or when from == to (a shard does
// not message itself). Only worker `from` may call Send with that index.
func (g *Group) Send(from, to int, m Msg) bool {
	if from == to {
		return false
	}
	m.From = from
	if !g.rings[from][to].Push(m) {
		g.stats[from].dropped.Add(1)
		return false
	}
	g.stats[from].sent.Add(1)
	return true
}

// Recv drains every inbound edge of worker `to`, appending at most max
// messages (0 = no limit) to dst. Only worker `to` may call it — it is
// the single consumer of all its inbound rings. Edges are drained
// round-robin-by-origin so one chatty peer cannot starve the rest.
func (g *Group) Recv(to int, dst []Msg, max int) []Msg {
	for from := 0; from < g.n; from++ {
		if from == to {
			continue
		}
		r := g.rings[from][to]
		for {
			if max > 0 && len(dst) >= max {
				return dst
			}
			m, ok := r.Pop()
			if !ok {
				break
			}
			g.stats[to].received.Add(1)
			dst = append(dst, m)
		}
	}
	return dst
}

// PendingTo reports the total occupancy of worker to's inbound edges —
// the cheap "is there cross-shard work?" check an idle worker makes
// before committing to a drain.
func (g *Group) PendingTo(to int) int {
	n := 0
	for from := 0; from < g.n; from++ {
		if from != to {
			n += g.rings[from][to].Len()
		}
	}
	return n
}

// Stats is a snapshot of one worker's mesh counters.
type Stats struct {
	Sent     int64
	Received int64
	Dropped  int64
}

// StatsOf snapshots worker i's counters.
func (g *Group) StatsOf(i int) Stats {
	s := g.stats[i]
	return Stats{
		Sent:     s.sent.Load(),
		Received: s.received.Load(),
		Dropped:  s.dropped.Load(),
	}
}

// RegisterTelemetry lifts per-worker mesh counters into a telemetry
// registry as shard.<i>.xs_sent / xs_received / xs_dropped / xs_pending
// under the given prefix (conventionally "shard").
func (g *Group) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	for i := 0; i < g.n; i++ {
		i := i
		p := fmt.Sprintf("%s.%d", prefix, i)
		r.RegisterFunc(p+".xs_sent", g.stats[i].sent.Load)
		r.RegisterFunc(p+".xs_received", g.stats[i].received.Load)
		r.RegisterFunc(p+".xs_dropped", g.stats[i].dropped.Load)
		r.RegisterFunc(p+".xs_pending", func() int64 { return int64(g.PendingTo(i)) })
	}
}
