// Package sched implements the event-scheduling integration sketched in
// §4.4 of the paper: "we envision Demikernel libOSes being tightly
// integrated with existing scheduling libraries ... we plan to implement
// a libevent-based Demikernel OS, which would enable applications, like
// memcached, to achieve the benefits of kernel-bypass transparently."
//
// EventLoop is that libevent-shaped adapter: applications register
// callbacks for accepts and pops, and the loop turns qtoken completions
// into callback invocations. Because each qtoken is unique to one
// operation, dispatch needs no readiness scans and no wasted wakeups —
// the completion already carries the data (§4.4's two fixes to epoll).
//
// Dispatch is ready-list driven: the loop subscribes to the completer's
// ready list (queue.Completer.EnableReadyList) and each Tick drains only
// the tokens that actually completed — O(ready) work — instead of
// probing every armed token with TryWait, which made Tick O(pending)
// and serialized it on the completer lock. One EventLoop per libOS is
// the supported shape (they share the libOS completer).
package sched

import (
	"sync"
	"sync/atomic"

	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// PopHandler receives one completed pop.
type PopHandler func(qd core.QD, comp queue.Completion)

// PushHandler receives one completed push.
type PushHandler func(qd core.QD, comp queue.Completion)

// AcceptHandler receives one accepted connection descriptor.
type AcceptHandler func(conn core.QD)

// EventLoop multiplexes Demikernel completions into callbacks.
// All methods are safe for concurrent use; callbacks run on the loop's
// ticking goroutine.
type EventLoop struct {
	lib *core.LibOS

	mu        sync.Mutex
	pops      map[queue.QToken]popReg
	pushes    map[queue.QToken]pushReg
	acceptors map[core.QD]AcceptHandler
	// accSnap caches the acceptor list for Tick; rebuilt (as a fresh
	// slice) only when OnAccept changes the set.
	accSnap  []acceptorEntry
	accDirty bool

	// tickMu serializes Tick so the ready-token scratch and leftover
	// carry-over buffers can be reused allocation-free across ticks.
	tickMu   sync.Mutex
	scratch  []queue.QToken
	leftover []queue.QToken

	dispatched atomic.Int64
}

type acceptorEntry struct {
	lqd core.QD
	h   AcceptHandler
}

type popReg struct {
	qd      core.QD
	handler PopHandler
	rearm   bool
}

type pushReg struct {
	qd      core.QD
	handler PushHandler
}

// New creates an event loop over lib and subscribes it to the libOS
// completer's ready list.
func New(lib *core.LibOS) *EventLoop {
	lib.Completer().EnableReadyList()
	return &EventLoop{
		lib:       lib,
		pops:      make(map[queue.QToken]popReg),
		pushes:    make(map[queue.QToken]pushReg),
		acceptors: make(map[core.QD]AcceptHandler),
	}
}

// OnAccept registers a callback for every connection accepted on the
// listening descriptor.
func (el *EventLoop) OnAccept(lqd core.QD, h AcceptHandler) {
	el.mu.Lock()
	defer el.mu.Unlock()
	el.acceptors[lqd] = h
	el.accDirty = true
}

// OnPop arms one pop on qd and invokes h with its completion. When rearm
// is true the loop immediately arms the next pop on the same descriptor
// after each successful completion — the shape of a request loop.
func (el *EventLoop) OnPop(qd core.QD, rearm bool, h PopHandler) error {
	qt, err := el.lib.Pop(qd)
	if err != nil {
		return err
	}
	el.mu.Lock()
	el.pops[qt] = popReg{qd: qd, handler: h, rearm: rearm}
	el.mu.Unlock()
	return nil
}

// Push submits s on qd and invokes h (which may be nil) on completion.
func (el *EventLoop) Push(qd core.QD, s sga.SGA, cost simclock.Lat, h PushHandler) error {
	qt, err := el.lib.PushCost(qd, s, cost)
	if err != nil {
		return err
	}
	el.mu.Lock()
	el.pushes[qt] = pushReg{qd: qd, handler: h}
	el.mu.Unlock()
	return nil
}

// Dispatched returns the number of callbacks invoked so far. Lock-free:
// the counter is atomic so observability never contends with dispatch.
func (el *EventLoop) Dispatched() int64 { return el.dispatched.Load() }

// RegisterTelemetry lifts the loop's counters into a telemetry registry
// under prefix (e.g. "sched"): total callbacks dispatched and the
// current armed-but-incomplete registration depth.
func (el *EventLoop) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	r.RegisterFunc(prefix+".dispatched", el.Dispatched)
	r.RegisterFunc(prefix+".pending", func() int64 { return int64(el.Pending()) })
}

// Tick runs one loop iteration: poll the libOS, accept pending
// connections, and dispatch every completed token from the ready list.
// It returns the number of callbacks invoked.
func (el *EventLoop) Tick() int {
	el.tickMu.Lock()
	defer el.tickMu.Unlock()
	el.lib.Poll()
	n := el.dispatchAccepts()
	n += el.dispatchReady()
	return n
}

func (el *EventLoop) dispatchAccepts() int {
	el.mu.Lock()
	if el.accDirty {
		snap := make([]acceptorEntry, 0, len(el.acceptors))
		for lqd, h := range el.acceptors {
			snap = append(snap, acceptorEntry{lqd, h})
		}
		el.accSnap = snap
		el.accDirty = false
	}
	accs := el.accSnap
	el.mu.Unlock()

	n := 0
	for _, a := range accs {
		for {
			conn, ok, err := el.lib.TryAccept(a.lqd)
			if err != nil || !ok {
				break
			}
			a.h(conn)
			el.dispatched.Add(1)
			n++
		}
	}
	return n
}

// dispatchReady drains the completer's ready list and dispatches every
// token the loop has a registration for. Tokens completed for direct
// waiters (lib.Wait / TryWait callers) surface here too; they are
// dropped once the waiter consumes them. A token that completed inline
// inside OnPop/Push before its registration landed is carried over to
// the next tick (leftover) instead of being lost.
func (el *EventLoop) dispatchReady() int {
	comp := el.lib.Completer()
	el.scratch = append(el.scratch[:0], el.leftover...)
	el.leftover = el.leftover[:0]
	el.scratch = comp.TakeReady(el.scratch)

	n := 0
	for _, qt := range el.scratch {
		el.mu.Lock()
		popR, isPop := el.pops[qt]
		var pushR pushReg
		isPush := false
		if !isPop {
			pushR, isPush = el.pushes[qt]
		}
		el.mu.Unlock()

		if !isPop && !isPush {
			// Not registered with the loop. Either a direct waiter's
			// token (consumed or about to be — once it leaves the
			// table, drop it) or an OnPop/Push racing with this tick
			// whose registration lands in a moment (still in the
			// table — retry next tick).
			if _, exists := comp.Done(qt); exists {
				el.leftover = append(el.leftover, qt)
			}
			continue
		}

		c, ok, err := comp.TryWait(qt)
		if err != nil {
			// Consumed behind our back; forget the registration.
			el.mu.Lock()
			delete(el.pops, qt)
			delete(el.pushes, qt)
			el.mu.Unlock()
			continue
		}
		if !ok {
			// Ready but no completion yet should not happen; be safe.
			el.leftover = append(el.leftover, qt)
			continue
		}
		el.mu.Lock()
		delete(el.pops, qt)
		delete(el.pushes, qt)
		el.mu.Unlock()
		el.dispatched.Add(1)
		if isPop {
			popR.handler(popR.qd, c)
			n++
			if popR.rearm && c.Err == nil {
				el.OnPop(popR.qd, true, popR.handler)
			}
		} else {
			if pushR.handler != nil {
				pushR.handler(pushR.qd, c)
			}
			n++
		}
	}
	return n
}

// Run ticks until stop closes.
func (el *EventLoop) Run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		el.Tick()
	}
}

// Pending reports armed-but-incomplete operations (for tests).
func (el *EventLoop) Pending() int {
	el.mu.Lock()
	defer el.mu.Unlock()
	return len(el.pops) + len(el.pushes)
}
