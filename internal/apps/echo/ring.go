package echo

import (
	"errors"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/uring"
)

// Ring mode: the echo server and client post operations through an
// SQ/CQ ring pair instead of calling Push/Pop/Wait per op. Completions
// dispatch by user tag straight off the CQ — no completer map, no token
// slice — and the steady-state path allocates nothing.

// ErrRingDisabled is returned by ring-path calls before EnableRing.
var ErrRingDisabled = errors.New("echo: ring mode not enabled")

// ringPopDepth is how many pops the server keeps armed per connection.
// One would serialize a pipelined client to one request per poll; a
// window of pops is the server's per-connection pipeline depth.
const ringPopDepth = 8

// Server-side tags encode the connection QD and the operation kind in
// the low bit, so one harvest loop serves every connection with no map
// lookup on the tag itself.
func popTag(conn core.QD) uint64  { return uint64(conn) << 1 }
func pushTag(conn core.QD) uint64 { return uint64(conn)<<1 | 1 }

// EnableRing switches the server's data path onto an SQ/CQ ring pair of
// the given capacity attached to its libOS. Call once, before serving.
func (s *Server) EnableRing(capacity int) {
	s.ring = s.lib.AttachRing(capacity)
	s.sqes = make([]uring.SQE, 0, s.ring.Cap())
	s.cqes = make([]uring.CQE, s.ring.Cap())
	s.inflight = make(map[core.QD][]sga.SGA)
}

// Ring returns the server's ring pair (telemetry registration), nil
// before EnableRing.
func (s *Server) Ring() *uring.Pair { return s.ring }

// stepRing is Step over the ring path: accept → submit pops, harvest →
// echo back with a push + re-armed pop, all batched through the rings.
func (s *Server) stepRing() int {
	for {
		conn, ok, err := s.lib.TryAccept(s.lqd)
		if err != nil || !ok {
			break
		}
		depth := ringPopDepth
		if c := s.ring.Cap() / 4; c < depth {
			depth = max(c, 1)
		}
		for i := 0; i < depth; i++ {
			s.sqes = append(s.sqes, uring.SQE{Op: queue.OpPop, QD: int32(conn), Tag: popTag(conn)})
		}
	}
	s.flushSQ()

	served := 0
	n := s.lib.HarvestCQ(s.ring, s.cqes)
	for i := 0; i < n; i++ {
		c := &s.cqes[i]
		conn := core.QD(c.Tag >> 1)
		isPush := c.Tag&1 == 1
		if c.Err != nil {
			// Connection failed (or the node crashed): release anything
			// queued behind it and drop the descriptor.
			for _, held := range s.inflight[conn] {
				held.Free()
			}
			delete(s.inflight, conn)
			s.lib.Close(conn) //nolint:errcheck // may already be gone
			*c = uring.CQE{}
			continue
		}
		if isPush {
			// Echo delivered: the transport no longer references the
			// popped payload, so it recycles now. Pushes complete FIFO
			// per connection, so the head is always the right buffer.
			if held := s.inflight[conn]; len(held) > 0 {
				held[0].Free()
				held[0] = sga.SGA{}
				s.inflight[conn] = held[1:]
				if len(held) == 1 {
					// Reset to the backing array's start so the per-conn
					// queue reuses storage instead of creeping forward.
					s.inflight[conn] = held[:0]
				}
			}
			*c = uring.CQE{}
			continue
		}
		// Request arrived: echo it back and re-arm the pop. The popped
		// SGA stays alive (inflight) until its push completes.
		s.inflight[conn] = append(s.inflight[conn], c.SGA)
		s.sqes = append(s.sqes,
			uring.SQE{Op: queue.OpPush, QD: int32(conn), Tag: pushTag(conn), SGA: c.SGA, Cost: c.Cost + s.AppCost},
			uring.SQE{Op: queue.OpPop, QD: int32(conn), Tag: popTag(conn)})
		served++
		*c = uring.CQE{}
	}
	if served > 0 {
		s.mu.Lock()
		s.echoed += int64(served)
		s.mu.Unlock()
	}
	s.flushSQ()
	return served
}

// flushSQ submits whatever is staged, keeping the unaccepted suffix
// staged for the next step (ring full = backpressure, never a drop).
func (s *Server) flushSQ() {
	if len(s.sqes) == 0 {
		return
	}
	n, err := s.lib.SubmitBatch(s.ring, s.sqes)
	if err != nil {
		// Pair reset underneath us (node crash): drop the staged ops;
		// their conns are dead and will surface as reset CQEs anyway.
		s.sqes = s.sqes[:0]
		return
	}
	s.sqes = s.sqes[:copy(s.sqes, s.sqes[n:])]
}

// EnableRing switches the client onto an SQ/CQ ring pair of the given
// capacity. Ring-path round trips are issued with RTTBatch; the legacy
// RTT keeps working (and keeps its failover loop) alongside.
func (c *Client) EnableRing(capacity int) {
	c.ring = c.lib.AttachRing(capacity)
	c.rsqes = make([]uring.SQE, 0, c.ring.Cap())
	c.rcqes = make([]uring.CQE, c.ring.Cap())
}

// Ring returns the client's ring pair (nil before EnableRing).
func (c *Client) Ring() *uring.Pair { return c.ring }

// RTTBatch issues batch pipelined echo round trips through the ring —
// batch pushes and batch pops posted up front, completions harvested as
// they land — and returns the mean virtual round-trip cost. batch == 1
// degenerates to a single syscall-free RTT. The steady-state path is
// allocation-free: the request SGA is rebuilt only when payload
// changes, and all staging slices are reused.
func (c *Client) RTTBatch(payload []byte, appCost simclock.Lat, batch int) (simclock.Lat, error) {
	if c.ring == nil {
		return 0, ErrRingDisabled
	}
	if batch < 1 || 2*batch > c.ring.Cap() {
		return 0, errors.New("echo: batch out of range for ring capacity")
	}
	if !sameBytes(c.ringReq.Segments, payload) {
		c.ringReq = sga.New(payload)
	}
	c.ringGen++
	gen := c.ringGen << 32

	sq := c.rsqes[:0]
	for i := 0; i < batch; i++ {
		sq = append(sq,
			uring.SQE{Op: queue.OpPush, QD: int32(c.qd), Tag: gen | uint64(i)<<1 | 1, SGA: c.ringReq, Cost: appCost},
			uring.SQE{Op: queue.OpPop, QD: int32(c.qd), Tag: gen | uint64(i)<<1})
	}
	want := len(sq)
	got, pops := 0, 0
	var total simclock.Lat
	var firstErr error
	for got < want {
		if len(sq) > 0 {
			n, err := c.lib.SubmitBatch(c.ring, sq)
			if err != nil {
				return 0, err
			}
			sq = sq[n:]
		}
		n, err := c.lib.WaitAnyRing(c.ring, c.rcqes, time.Time{})
		if err != nil {
			return 0, err
		}
		for i := 0; i < n; i++ {
			cq := &c.rcqes[i]
			if cq.Tag&^uint64(0xffffffff) != gen {
				cq.SGA.Free() // straggler from an abandoned earlier batch
				*cq = uring.CQE{}
				continue
			}
			got++
			if cq.Err != nil {
				if firstErr == nil {
					firstErr = cq.Err
				}
			} else if cq.Kind == queue.OpPop {
				total += cq.Cost
				pops++
				cq.SGA.Free()
			}
			*cq = uring.CQE{}
		}
	}
	c.rsqes = c.rsqes[:0]
	if firstErr != nil {
		return 0, firstErr
	}
	return total / simclock.Lat(pops), nil
}

// sameBytes reports whether segs is exactly one segment aliasing b, so
// repeated RTTBatch calls with the same payload skip rebuilding the SGA.
func sameBytes(segs []sga.Segment, b []byte) bool {
	if len(segs) != 1 || len(segs[0].Buf) != len(b) {
		return false
	}
	return len(b) == 0 || &segs[0].Buf[0] == &b[0]
}
