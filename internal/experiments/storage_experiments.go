package experiments

import (
	"bytes"
	"fmt"

	demi "demikernel"
	"demikernel/internal/kernel"
	"demikernel/internal/metrics"
	"demikernel/internal/netstack"
	"demikernel/internal/simclock"
)

// runE12 reproduces §5.3: the accelerator-specific log-structured layout
// against the legacy kernel file path (page cache + journaling) on the
// same device class.
func runE12(seed int64) (*Result, error) {
	res := &Result{}
	const nRecords = 32
	sizes := []int{512, 4096, 16384}

	tbl := metrics.NewTable("E12: per-record durable write cost, log layout vs kernel FS",
		"record bytes", "catfish write p50", "kernel FS write p50", "kernel/catfish",
		"catfish dev writes", "kernel dev writes")

	type outcome struct {
		catfishP50, kernelP50 simclock.Lat
		catfishW, kernelW     int64
	}
	outcomes := map[int]outcome{}

	for _, size := range sizes {
		payload := bytes.Repeat([]byte{0xCD}, size)

		// Demikernel storage libOS: push = durable append to the log.
		c := demi.NewCluster(seed)
		node, err := c.Spawn(demi.Catfish, demi.WithBlocks(1 << 16))
		if err != nil {
			return nil, err
		}
		qd, err := node.Open("/bench/records")
		if err != nil {
			return nil, err
		}
		var cfH metrics.Histogram
		for i := 0; i < nRecords; i++ {
			comp, err := node.BlockingPush(qd, demi.NewSGA(payload))
			if err != nil {
				return nil, err
			}
			cfH.Record(comp.Cost)
		}
		catfishWrites := node.Catfish.Device().Stats().Writes

		// Kernel file path: write + fsync per record through the page
		// cache and journal.
		model := c.Model
		k := kernel.New(&model, nil, netstack.IPv4Addr{})
		disk := c.NewDisk(1 << 16)
		k.AttachDisk(disk)
		fd, _, err := k.OpenFile("/bench/records")
		if err != nil {
			return nil, err
		}
		var kH metrics.Histogram
		for i := 0; i < nRecords; i++ {
			wCost, err := k.WriteFile(fd, payload)
			if err != nil {
				return nil, err
			}
			sCost, err := k.Fsync(fd)
			if err != nil {
				return nil, err
			}
			kH.Record(wCost + sCost)
		}
		kernelWrites := disk.Stats().Writes

		o := outcome{
			catfishP50: cfH.Percentile(50),
			kernelP50:  kH.Percentile(50),
			catfishW:   catfishWrites,
			kernelW:    kernelWrites,
		}
		outcomes[size] = o
		tbl.AddRow(size, o.catfishP50, o.kernelP50, metrics.Ratio(o.kernelP50, o.catfishP50),
			o.catfishW, o.kernelW)
	}
	res.Tables = append(res.Tables, tbl)

	// Read-back verification: records survive and read through both
	// paths.
	c := demi.NewCluster(seed + 1)
	node, err := c.Spawn(demi.Catfish, demi.WithBlocks(1 << 16))
	if err != nil {
		return nil, err
	}
	qd, _ := node.Open("/verify")
	want := []byte("verified-record")
	node.BlockingPush(qd, demi.NewSGA(want))
	comp, err := node.BlockingPop(qd)
	if err != nil {
		return nil, err
	}
	readOK := bytes.Equal(comp.SGA.Bytes(), want)

	for _, size := range sizes {
		o := outcomes[size]
		res.check(fmt.Sprintf("log layout cheaper at %dB", size),
			o.catfishP50 < o.kernelP50, "catfish %v vs kernel %v", o.catfishP50, o.kernelP50)
	}
	res.check("journaling write amplification visible",
		outcomes[4096].kernelW >= 2*nRecords, "kernel device writes=%d for %d records",
		outcomes[4096].kernelW, nRecords)
	res.check("records read back intact", readOK, "payload verified")
	return res, nil
}
