package demikernel

// BenchmarkStoragePushdown* is the storage-pushdown regression suite:
// depth-N GETs through the catfish lookup face with the step function
// either pushed into the NVMe completion path or run on the host CPU.
// Like BenchmarkHotPath*, every rig is single-goroutine and manually
// pumped so allocs/op are deterministic; `make bench` writes the result
// stream to BENCH_storage.json.
//
// Two fences run inside the benchmark bodies (b.Fatalf on violation):
//
//   - at depth >= 4, pushdown must cross the device boundary at least
//     3x less often than the host traversal;
//   - the steady-state pushdown GET allocates nothing.

import (
	"fmt"
	"testing"

	"demikernel/internal/libos/catfish"
	"demikernel/internal/offload"
	"demikernel/internal/queue"
	"demikernel/internal/spdk"
)

// storageRig is a catfish transport with a depth-N index and an open
// lookup face.
type storageRig struct {
	tr   *catfish.Transport
	q    *catfish.LookupQueue
	idx  *spdk.Index
	keys [][]byte
}

func newStorageRig(tb testing.TB, depth int, pushdown bool) *storageRig {
	tb.Helper()
	c := NewCluster(9)
	node, err := c.Spawn(Catfish, WithBlocks(0))
	if err != nil {
		tb.Fatal(err)
	}
	tr := node.Catfish
	n := 1 << (depth + 1) // fanout 2: 2^(depth+1) keys build depth N
	var pairs []spdk.KV
	var keys [][]byte
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		pairs = append(pairs, spdk.KV{Key: k, Val: []byte(fmt.Sprintf("value-%d", i))})
		keys = append(keys, k)
	}
	idx, err := tr.BuildIndex(pairs, 2)
	if err != nil {
		tb.Fatal(err)
	}
	if idx.Depth != depth {
		tb.Fatalf("index depth = %d, want %d", idx.Depth, depth)
	}
	q, err := tr.OpenLookup(idx, offload.IndexLookup(), catfish.LookupConfig{Pushdown: pushdown})
	if err != nil {
		tb.Fatal(err)
	}
	return &storageRig{tr: tr, q: q, idx: idx, keys: keys}
}

// get runs one Push+Pop GET round trip; prealloc'd done funcs keep the
// measurement loop allocation-free.
func (r *storageRig) get(tb testing.TB, key []byte, popDone queue.DoneFunc) {
	s := r.tr.AllocSGA(len(key))
	copy(s.Segments[0].Buf, key)
	r.q.Push(s, 0, benchPushDone)
	r.q.Pop(popDone)
	for i := 0; benchPopPending; i++ {
		r.tr.Poll()
		if i > 1_000_000 {
			tb.Fatal("GET made no progress")
		}
	}
}

var (
	benchPushDone   = func(queue.Completion) {}
	benchPopPending bool
)

func benchStorageGet(b *testing.B, depth int, pushdown bool) {
	rig := newStorageRig(b, depth, pushdown)
	var res queue.Completion
	popDone := queue.DoneFunc(func(c queue.Completion) { res = c; benchPopPending = false })
	get := func(i int) {
		benchPopPending = true
		rig.get(b, rig.keys[i%len(rig.keys)], popDone)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		res.SGA.Free()
	}
	get(0) // warm every pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		get(i)
	}
	b.StopTimer()

	st := rig.q.Stats()
	crossPerGet := float64(st.Crossings) / float64(st.Lookups)
	b.ReportMetric(crossPerGet, "crossings/GET")
	b.ReportMetric(float64(rig.idx.Levels), "hops/GET")

	// Crossing fence: pushdown is exactly 1 per GET; the host path pays
	// one per hop. At depth >= 4 that is a >= 5x gap — fence at 3x.
	if pushdown {
		if crossPerGet != 1 {
			b.Fatalf("pushdown crossings/GET = %.2f, want exactly 1", crossPerGet)
		}
		if depth >= 4 {
			hostPerGet := float64(depth + 1)
			if hostPerGet < 3*crossPerGet {
				b.Fatalf("crossing fence: host %.1f vs pushdown %.1f is below 3x", hostPerGet, crossPerGet)
			}
		}
	} else if crossPerGet != float64(depth+1) {
		b.Fatalf("host crossings/GET = %.2f, want %d", crossPerGet, depth+1)
	}
	if inflight := rig.tr.Device().PushdownStats().Inflight; inflight != 0 {
		b.Fatalf("leaked %d traversals", inflight)
	}
	if out := rig.tr.Pool().Outstanding(); out != 0 {
		b.Fatalf("leaked %d pooled buffers", out)
	}

	// Zero-alloc fence for the steady-state pushdown GET.
	if pushdown {
		if avg := testing.AllocsPerRun(100, func() { get(1) }); avg != 0 {
			b.Fatalf("steady-state GET allocates %v/op, want 0", avg)
		}
	}
}

func BenchmarkStoragePushdown(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth%d/pushdown", depth), func(b *testing.B) {
			benchStorageGet(b, depth, true)
		})
		b.Run(fmt.Sprintf("depth%d/host", depth), func(b *testing.B) {
			benchStorageGet(b, depth, false)
		})
	}
}

// BenchmarkStoragePushdownAppend measures the legacy record-append path
// with pooled staging SGAs, guarding the satellite change (AllocSGA is
// pool-backed now) against regressions.
func BenchmarkStoragePushdownAppend(b *testing.B) {
	c := NewCluster(9)
	node, err := c.Spawn(Catfish, WithBlocks(0))
	if err != nil {
		b.Fatal(err)
	}
	tr := node.Catfish
	fq, err := tr.Open("/bench/log")
	if err != nil {
		b.Fatal(err)
	}
	var pushErr error
	done := queue.DoneFunc(func(cpl queue.Completion) { pushErr = cpl.Err })
	payload := []byte("benchmark-record-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.AllocSGA(len(payload))
		copy(s.Segments[0].Buf, payload)
		fq.Push(s, 0, done)
		if pushErr != nil {
			b.Fatal(pushErr)
		}
	}
	b.StopTimer()
	if out := tr.Pool().Outstanding(); out != 0 {
		b.Fatalf("leaked %d pooled buffers", out)
	}
}
