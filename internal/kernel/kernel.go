// Package kernel simulates the legacy operating-system path of Figure 1
// (left): every I/O crosses the user/kernel boundary, payloads are copied
// between user and kernel buffers, the in-kernel network stack charges its
// heavier per-packet cost, epoll wakes every waiting thread, pipes expose
// stream (not atomic-unit) semantics, and file I/O runs through a page
// cache with journaling write amplification.
//
// The package exists to be the baseline each experiment compares the
// Demikernel path against. Its network stack is the same protocol code as
// the kernel-bypass path (package netstack) — deliberately, so the only
// differences measured are the architectural ones the paper talks about:
// syscall crossings, copies, POSIX semantics, and scheduling behaviour.
package kernel

import (
	"errors"
	"fmt"
	"sync"

	"demikernel/internal/netstack"
	"demikernel/internal/nic"
	"demikernel/internal/simclock"
)

// Errors returned by kernel calls.
var (
	ErrBadFD      = errors.New("kernel: bad file descriptor")
	ErrWouldBlock = errors.New("kernel: operation would block")
	ErrClosed     = errors.New("kernel: descriptor closed")
)

// FD is a file descriptor.
type FD int

// fdKind discriminates descriptor types.
type fdKind int

const (
	fdTCPListener fdKind = iota
	fdTCPConn
	fdPipeRead
	fdPipeWrite
	fdFile
	fdUDP
)

type fdEntry struct {
	kind     fdKind
	listener *netstack.TCPListener
	conn     *netstack.TCPConn
	udp      *netstack.UDPSock
	pipe     *pipe
	file     *file
	closed   bool
}

// Kernel is one simulated legacy-OS instance on a host. Its network stack
// is attached to the same fabric as the kernel-bypass devices, so kernel
// and Demikernel paths are measured over an identical wire.
type Kernel struct {
	model *simclock.CostModel
	dev   *nic.Device

	mu     sync.Mutex
	stack  *netstack.Stack
	fds    map[FD]*fdEntry
	next   FD
	ctr    simclock.Counters
	fs     *fileSystem
	epolls []*Epoll
}

// New creates a kernel whose in-kernel network stack runs over dev.
// Pass a nil device for hosts that only exercise pipes and files.
func New(model *simclock.CostModel, dev *nic.Device, ip netstack.IPv4Addr) *Kernel {
	k := &Kernel{
		model: model,
		dev:   dev,
		fds:   make(map[FD]*fdEntry),
		next:  3, // 0..2 are where stdio would be
		fs:    newFileSystem(model),
	}
	if dev != nil {
		// The kernel network stack does the same protocol work as the
		// user-level stack plus the kernel's extra per-packet overhead
		// (skb management, netfilter, socket lookup, softirq).
		k.stack = netstack.New(model, dev, netstack.Config{
			IP:             ip,
			PerPacketExtra: model.KernelNetStackNS - model.UserNetStackNS,
		})
	}
	return k
}

// NewOnStack creates a kernel that adopts an already-running network
// stack instead of building a fresh one — the demotion half of live
// libOS switching: the same protocol state (established connections,
// listeners, timers) moves under kernel management, and the caller
// flips the stack's per-packet cost to the kernel profile via
// KernelPerPacketExtra.
func NewOnStack(model *simclock.CostModel, dev *nic.Device, stack *netstack.Stack) *Kernel {
	return &Kernel{
		model: model,
		dev:   dev,
		stack: stack,
		fds:   make(map[FD]*fdEntry),
		next:  3,
		fs:    newFileSystem(model),
	}
}

// KernelPerPacketExtra is the per-packet tax the in-kernel stack pays
// on top of the user-level protocol work (skb management, netfilter,
// socket lookup, softirq).
func KernelPerPacketExtra(model *simclock.CostModel) simclock.Lat {
	return model.KernelNetStackNS - model.UserNetStackNS
}

// Stack exposes the kernel's network stack for test plumbing.
func (k *Kernel) Stack() *netstack.Stack { return k.stack }

// Device exposes the NIC the kernel's stack drives (nil for hosts that
// only exercise pipes and files).
func (k *Kernel) Device() *nic.Device { return k.dev }

// Poll pumps the kernel's network stack (the simulation stand-in for
// softirq processing). It does not charge syscall costs: this is kernel
// work, not an application call.
func (k *Kernel) Poll() int {
	if k.stack == nil {
		return 0
	}
	n := k.stack.Poll()
	k.deliverEvents()
	return n
}

// Counters returns a snapshot of the kernel's observable cost counters.
func (k *Kernel) Counters() simclock.Counters {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.ctr
}

// ResetCounters zeroes the counters between experiment phases.
func (k *Kernel) ResetCounters() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.ctr.Reset()
}

// syscall charges one user/kernel crossing.
func (k *Kernel) syscall() simclock.Lat {
	k.mu.Lock()
	k.ctr.AddSyscall()
	k.mu.Unlock()
	return k.model.SyscallNS
}

// copyBytes charges a CPU copy of n payload bytes across the boundary.
func (k *Kernel) copyBytes(n int) simclock.Lat {
	k.mu.Lock()
	k.ctr.AddCopy(n)
	k.mu.Unlock()
	return k.model.CopyCost(n)
}

func (k *Kernel) newFD(e *fdEntry) FD {
	k.mu.Lock()
	defer k.mu.Unlock()
	fd := k.next
	k.next++
	k.fds[fd] = e
	return fd
}

func (k *Kernel) lookup(fd FD) (*fdEntry, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	e, ok := k.fds[fd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	if e.closed {
		return nil, fmt.Errorf("%w: %d", ErrClosed, fd)
	}
	return e, nil
}

// Close releases a descriptor.
func (k *Kernel) Close(fd FD) (simclock.Lat, error) {
	cost := k.syscall()
	e, err := k.lookup(fd)
	if err != nil {
		return cost, err
	}
	k.mu.Lock()
	e.closed = true
	delete(k.fds, fd)
	k.mu.Unlock()
	switch e.kind {
	case fdTCPConn:
		e.conn.Close()
	case fdTCPListener:
		e.listener.Close()
	case fdUDP:
		e.udp.Close()
	case fdPipeWrite:
		e.pipe.closeWrite()
	}
	return cost, nil
}

// --- sockets ---

// Listen creates a listening TCP socket bound to port.
func (k *Kernel) Listen(port uint16) (FD, simclock.Lat, error) {
	cost := k.syscall() * 3 // socket+bind+listen
	l, err := k.stack.ListenTCP(port)
	if err != nil {
		return -1, cost, err
	}
	return k.newFD(&fdEntry{kind: fdTCPListener, listener: l}), cost, nil
}

// Accept pops one established connection; ErrWouldBlock when none is
// ready.
func (k *Kernel) Accept(fd FD) (FD, simclock.Lat, error) {
	cost := k.syscall()
	e, err := k.lookup(fd)
	if err != nil {
		return -1, cost, err
	}
	if e.kind != fdTCPListener {
		return -1, cost, ErrBadFD
	}
	conn, ok := e.listener.Accept()
	if !ok {
		return -1, cost, ErrWouldBlock
	}
	return k.newFD(&fdEntry{kind: fdTCPConn, conn: conn}), cost, nil
}

// Connect starts a TCP connection; poll Connected until it establishes.
func (k *Kernel) Connect(ip netstack.IPv4Addr, port uint16) (FD, simclock.Lat, error) {
	cost := k.syscall() * 2 // socket+connect
	c, err := k.stack.DialTCP(ip, port)
	if err != nil {
		return -1, cost, err
	}
	return k.newFD(&fdEntry{kind: fdTCPConn, conn: c}), cost, nil
}

// Connected reports whether a connecting socket has established.
func (k *Kernel) Connected(fd FD) bool {
	e, err := k.lookup(fd)
	if err != nil || e.kind != fdTCPConn {
		return false
	}
	return e.conn.Established()
}

// Send writes bytes on a TCP socket. POSIX semantics: the payload is
// copied from the user buffer into kernel socket buffers, and the call
// crosses the kernel boundary. Returns bytes accepted.
func (k *Kernel) Send(fd FD, b []byte, cost simclock.Lat) (int, simclock.Lat, error) {
	cost += k.syscall()
	e, err := k.lookup(fd)
	if err != nil {
		return 0, cost, err
	}
	if e.kind != fdTCPConn {
		return 0, cost, ErrBadFD
	}
	cost += k.copyBytes(len(b))
	n, err := e.conn.Send(b, cost)
	return n, cost, err
}

// Recv reads up to max bytes from a TCP socket, copying them from kernel
// buffers into a fresh user buffer. Stream semantics: it returns whatever
// contiguous bytes are available, regardless of message boundaries.
func (k *Kernel) Recv(fd FD, max int) ([]byte, simclock.Lat, error) {
	cost := k.syscall()
	e, err := k.lookup(fd)
	if err != nil {
		return nil, cost, err
	}
	if e.kind != fdTCPConn {
		return nil, cost, ErrBadFD
	}
	data, rxCost, err := e.conn.Recv(max)
	if err != nil {
		return nil, cost, err
	}
	if len(data) == 0 {
		return nil, cost, ErrWouldBlock
	}
	cost += rxCost + k.copyBytes(len(data))
	// netstack already allocated a fresh slice; the charged copy above
	// is the user<->kernel copy the bypass path avoids.
	return data, cost, nil
}
