package httpd

// Ring mode: the server posts pops and pushes through a syscall-free
// SQ/CQ ring pair instead of per-op tokens, mirroring the echo server's
// ring path but with HTTP semantics layered on: a window of PopDepth
// armed pops per connection (the pipeline depth), a FIFO of pooled
// response descriptors held until their push CQEs land, backlog-based
// pause/resume for stalled readers, and half-close/Connection: close
// teardown driven entirely off the completion stream. The steady-state
// serve loop allocates nothing.

import (
	"errors"

	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/uring"
)

// Tags encode the connection QD and the operation kind in the low bit,
// so one harvest loop dispatches every connection without a token map.
func popTag(conn core.QD) uint64  { return uint64(conn) << 1 }
func pushTag(conn core.QD) uint64 { return uint64(conn)<<1 | 1 }

// EnableRing switches the server's data path onto an SQ/CQ ring pair of
// the given capacity attached to its libOS. Call before serving — and
// call again after a node crash+restart: rings die with their stack
// incarnation, so the server needs a fresh pair to resume the ring
// path (pending ops on the old pair have already resolved to typed
// reset CQEs and torn their connections down).
func (s *Server) EnableRing(capacity int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ring = s.lib.AttachRing(capacity)
	s.sqes = make([]uring.SQE, 0, s.ring.Cap())
	s.cqes = make([]uring.CQE, s.ring.Cap())
}

// Ring returns the server's ring pair (telemetry), nil before
// EnableRing.
func (s *Server) Ring() *uring.Pair {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring
}

// stepRingLocked is Step over the ring path: accept → arm pop windows,
// harvest → parse/respond/re-arm, all batched through the rings.
// Caller holds s.mu.
func (s *Server) stepRingLocked() int {
	for {
		qd, ok, err := s.lib.TryAccept(s.lqd)
		if err != nil || !ok {
			break
		}
		c := &conn{qd: qd, last: s.now()}
		s.conns[qd] = c
		s.accepted.Add(1)
		s.armPops(c)
	}
	s.flushSQ()

	served := 0
	n := s.lib.HarvestCQ(s.ring, s.cqes)
	for i := 0; i < n; i++ {
		cq := &s.cqes[i]
		qd := core.QD(cq.Tag >> 1)
		isPush := cq.Tag&1 == 1
		c, live := s.conns[qd]
		if !live {
			// Connection already torn down (reset CQEs from its armed
			// pops, or stragglers): release any payload and move on.
			cq.SGA.Free()
			*cq = uring.CQE{}
			continue
		}
		if cq.Err != nil {
			if !isPush {
				c.pops--
			}
			s.ringOpFailed(c, isPush, cq.Err)
			*cq = uring.CQE{}
			continue
		}
		if isPush {
			// Response delivered: the transport no longer references
			// the header buffer. Pushes complete FIFO per connection,
			// so the head descriptor is always the one retiring.
			if k := len(c.inflight); k > 0 {
				s.putResp(c.inflight[0])
				m := copy(c.inflight, c.inflight[1:])
				c.inflight[m] = nil
				c.inflight = c.inflight[:m]
			}
			if c.closing && len(c.inflight) == 0 {
				s.closeConn(c)
			} else {
				s.armPops(c)
			}
			*cq = uring.CQE{}
			continue
		}
		c.pops--
		c.last = s.now()
		if c.closing {
			cq.SGA.Free() // data after close: discard
		} else {
			served += s.serveSGA(c, cq.SGA, cq.Cost)
			if c.closing && len(c.inflight) == 0 {
				s.closeConn(c)
			} else {
				s.armPops(c)
			}
		}
		*cq = uring.CQE{}
	}
	s.flushSQ()
	s.reapIdle()
	return served
}

// ringOpFailed handles an errored CQE for a live connection. A pop
// failing with the typed ErrClosed while responses are still in flight
// is the half-close case: the client sent FIN but still receives, so
// the server finishes flushing before tearing down.
func (s *Server) ringOpFailed(c *conn, isPush bool, err error) {
	if !isPush && errors.Is(err, queue.ErrClosed) && len(c.inflight) > 0 {
		if !c.closing {
			s.halfClosed.Add(1)
			c.closing = true
		}
		return
	}
	s.closeConn(c)
}

// submitRing stages one response push; rb joins the connection's
// in-flight FIFO until its push CQE retires it.
func (s *Server) submitRing(c *conn, rb *respBuf, g sga.SGA, cost simclock.Lat) {
	s.sqes = append(s.sqes, uring.SQE{
		Op: queue.OpPush, QD: int32(c.qd), Tag: pushTag(c.qd), SGA: g, Cost: cost,
	})
	c.inflight = append(c.inflight, rb)
}

// armPops tops the connection's armed-pop window up to PopDepth, unless
// the response backlog says the reader is not keeping up — then the
// window stays closed (paused) until the backlog half-drains, which is
// what turns a stalled client into TCP backpressure instead of
// unbounded buffering.
func (s *Server) armPops(c *conn) {
	if c.closing {
		return
	}
	if c.paused {
		if len(c.inflight) > s.MaxConnBacklog/2 {
			return
		}
		c.paused = false
	}
	if len(c.inflight) >= s.MaxConnBacklog {
		c.paused = true
		s.pauses.Add(1)
		return
	}
	depth := s.PopDepth
	if quarter := s.ring.Cap() / 4; quarter < depth {
		depth = quarter
		if depth < 1 {
			depth = 1
		}
	}
	for c.pops < depth {
		s.sqes = append(s.sqes, uring.SQE{Op: queue.OpPop, QD: int32(c.qd), Tag: popTag(c.qd)})
		c.pops++
	}
}

// flushSQ submits whatever is staged, keeping the unaccepted suffix
// staged for the next step (ring full = backpressure, never a drop).
func (s *Server) flushSQ() {
	if len(s.sqes) == 0 {
		return
	}
	n, err := s.lib.SubmitBatch(s.ring, s.sqes)
	if err != nil {
		// Pair reset underneath us (node crash): drop the staged ops;
		// their conns are dead and will surface as reset CQEs anyway.
		s.sqes = s.sqes[:0]
		return
	}
	s.sqes = s.sqes[:copy(s.sqes, s.sqes[n:])]
}
