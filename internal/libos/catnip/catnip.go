// Package catnip is the DPDK library OS: it implements the Demikernel
// queue abstraction over a raw kernel-bypass NIC (internal/nic), which —
// being a DPDK-class device — supplies nothing beyond descriptor rings.
// Everything else the paper lists as missing OS functionality is supplied
// here in user space: the TCP/IP stack (internal/netstack), buffer
// management (internal/membuf), and the scatter-gather framing that
// preserves atomic queue elements over a byte stream (§5.2).
//
// The name follows the open-source Demikernel convention (catnip is its
// DPDK libOS).
package catnip

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/fabric"
	"demikernel/internal/membuf"
	"demikernel/internal/netstack"
	"demikernel/internal/nic"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// Transport is the catnip libOS transport.
type Transport struct {
	model *simclock.CostModel
	dev   *nic.Device
	// group, when non-nil, is the tenant queue group this transport is
	// bound to: a slice of a shared NIC instead of a whole device. port
	// is whichever of the two the stack actually drives — the data path
	// is identical either way (netstack.Device is satisfied by both).
	group *nic.QueueGroup
	port  netstack.Device
	// stackp holds the live netstack instance. It is an atomic pointer
	// because Restart swaps in a fresh stack while pollers may be
	// loading it; everything protocol-level lives behind it.
	stackp atomic.Pointer[netstack.Stack]
	mem    *membuf.Manager
	// pool supplies pop-path payload buffers. Standalone transports use
	// the process-wide default; sharded transports get a private pool so
	// the steady-state buffer recycle path never crosses shard cache
	// lines.
	pool *fabric.FramePool
	// clonePool recycles pop-SGA headers (segment slice + free closure)
	// so pooledCloneSGA allocates nothing in steady state; see cloneHdr.
	clonePool sync.Pool

	// Rebuild parameters, saved so Restart can construct a fresh stack
	// bound to the same device, queue, and shared neighbor table.
	cfg     Config
	rxQueue int
	neigh   *netstack.NeighborTable

	// crashed gates the whole data path: Poll checks it with ONE atomic
	// load and returns immediately while the transport is down. That
	// load is the entire steady-state cost of the lifecycle subsystem
	// when no fault is active.
	crashed atomic.Bool

	// prevStats accumulates the counters of dead stack incarnations so
	// StackStats (and telemetry) stay cumulative across crash/restart —
	// without it the frame-conservation selftest would see NIC counters
	// keep climbing while stack counters reset to zero.
	statsMu   sync.Mutex
	prevStats netstack.Stats
	crashes   int64 // completed Crash calls (lifecycle telemetry)
	restarts  int64 // completed Restart calls

	// rxStalls counts drain parks under RxReadyCap: each increment is
	// one transition of an endpoint into the "reader too slow, stop
	// draining" state. The operator's signal that clients are stalling.
	rxStalls atomic.Int64

	mu   sync.Mutex
	eps  []*endpoint
	udps []*udpEndpoint
	// Cached Poll snapshots, rebuilt (as fresh slices, so a concurrent
	// Poll iterating the previous snapshot is unaffected) only when an
	// endpoint is added. Steady-state polling allocates nothing.
	epsSnap  []*endpoint
	udpsSnap []*udpEndpoint
	epsDirty bool
}

// Config tunes the transport.
type Config struct {
	MAC fabric.MAC
	IP  netstack.IPv4Addr
	// PerPacketExtra is added to every packet's processing cost. Zero
	// for plain catnip; the E6 experiment sets it to the POSIX
	// emulation tax to model an mTCP-style stack.
	PerPacketExtra simclock.Lat
	// MemCapacity caps the bytes of pinned (device-registered) memory
	// the libOS may create. When staging a push would exceed it the
	// push completes with membuf.ErrNoMem — visible backpressure
	// instead of unbounded pinning. Zero means unbounded.
	MemCapacity int64
	// RTO overrides the stack's initial TCP retransmission timeout
	// (chaos tests shorten it so give-ups land inside the fault
	// window). Zero keeps the netstack default.
	RTO time.Duration
	// MaxRetransmits overrides the stack's consecutive-retransmit cap
	// before a connection gives up. Zero keeps the netstack default.
	MaxRetransmits int
	// Clock, when non-nil, replaces time.Now as the stack's timer clock.
	// The lifecycle facade plugs a simclock.DriftClock in here so the
	// chaos engine can skew this node's notion of time.
	Clock func() time.Time
	// PoolFactory, when non-nil, supplies the frame pool each transport
	// (or shard) allocates from. The multi-tenant facade passes a
	// factory that tags the pool with the tenant's ID and wires its
	// quota ledger in as the pool accountant.
	PoolFactory func() *fabric.FramePool
	// RxReadyCap bounds how many popped-but-unharvested completions an
	// endpoint buffers before its receive drain parks. Past the cap,
	// stream bytes stay in the TCP receive buffer, the advertised
	// window shrinks toward zero, and the peer's sender stalls — so a
	// slow or stalled reader exerts end-to-end flow control instead of
	// growing an unbounded ready list. Zero means unbounded (the
	// historical behavior).
	RxReadyCap int
}

// newPool makes one transport-private frame pool per the config.
func (cfg Config) newPool() *fabric.FramePool {
	if cfg.PoolFactory != nil {
		return cfg.PoolFactory()
	}
	return fabric.NewFramePool()
}

// New attaches a catnip instance (NIC + user stack + memory manager) to
// the fabric switch.
func New(model *simclock.CostModel, sw *fabric.Switch, cfg Config) *Transport {
	dev := nic.New(model, sw, nic.Config{MAC: cfg.MAC})
	pool := fabric.DefaultFramePool
	if cfg.PoolFactory != nil {
		pool = cfg.PoolFactory()
	}
	return newOnDevice(model, dev, cfg, 0, pool, nil)
}

// NewOnGroup builds a transport bound to a tenant's queue group on a
// shared NIC: the stack transmits through the group's scheduled TX
// queue, polls the group's first receive queue, and registers staging
// memory through the group. Everything above the device binding is
// identical to a whole-NIC transport.
func NewOnGroup(model *simclock.CostModel, grp *nic.QueueGroup, cfg Config) *Transport {
	return newOnPort(model, grp.Device(), grp, cfg, 0, cfg.newPool(), nil)
}

// newOnDevice builds a transport over an existing device, polling the
// given RX queue and allocating pop buffers from pool. It is the shared
// constructor between New (one transport owning the whole device) and
// NewSharded (N transports, one per RSS queue, over one device).
func newOnDevice(model *simclock.CostModel, dev *nic.Device, cfg Config,
	rxQueue int, pool *fabric.FramePool, neigh *netstack.NeighborTable) *Transport {
	return newOnPort(model, dev, nil, cfg, rxQueue, pool, neigh)
}

// newOnPort is the constructor behind every transport shape: group nil
// means the transport owns (a queue of) the whole device; non-nil means
// it owns a queue of the tenant's slice.
func newOnPort(model *simclock.CostModel, dev *nic.Device, group *nic.QueueGroup, cfg Config,
	rxQueue int, pool *fabric.FramePool, neigh *netstack.NeighborTable) *Transport {
	var port netstack.Device = dev
	var sink membuf.RegistrationSink = dev
	if group != nil {
		port = group
		sink = group
	}
	stack := buildStack(model, port, cfg, rxQueue, pool, neigh)
	var opts []membuf.Option
	if cfg.MemCapacity > 0 {
		opts = append(opts, membuf.WithCapacity(cfg.MemCapacity))
	}
	mem := membuf.NewManager(model, opts...)
	mem.AttachDevice(sink) // transparent registration (§4.5)
	t := &Transport{model: model, dev: dev, group: group, port: port, mem: mem, pool: pool,
		cfg: cfg, rxQueue: rxQueue, neigh: neigh}
	t.stackp.Store(stack)
	return t
}

// buildStack constructs the netstack instance for a transport; Restart
// uses it to give a crashed transport a fresh stack on the same device.
func buildStack(model *simclock.CostModel, dev netstack.Device, cfg Config,
	rxQueue int, pool *fabric.FramePool, neigh *netstack.NeighborTable) *netstack.Stack {
	return netstack.New(model, dev, netstack.Config{
		IP:             cfg.IP,
		PerPacketExtra: cfg.PerPacketExtra,
		RTO:            cfg.RTO,
		MaxRetransmits: cfg.MaxRetransmits,
		RxQueue:        rxQueue,
		Pool:           pool,
		Neighbors:      neigh,
		Clock:          cfg.Clock,
	})
}

// Name implements core.Transport.
func (t *Transport) Name() string { return "catnip" }

// Features implements core.Transport: DPDK-class devices give only
// kernel bypass; the libOS supplies the whole stack (Table 1).
func (t *Transport) Features() core.Features {
	return core.Features{
		KernelBypass: true,
		HWOffloads:   true, // the simulated NIC has a filter table
		SoftwareSupplied: []string{
			"ethernet/arp", "ipv4", "tcp (retransmit, congestion control, flow control)",
			"buffer management", "sga framing",
		},
	}
}

// Device exposes the underlying NIC (for hardware filter offload).
func (t *Transport) Device() *nic.Device { return t.dev }

// Group exposes the tenant queue group the transport is bound to, or
// nil when it owns the whole device.
func (t *Transport) Group() *nic.QueueGroup { return t.group }

// Pool exposes the transport's frame pool (for tests and the chaos
// engine's hostile-tenant leak fault, which hoards frames from it).
func (t *Transport) Pool() *fabric.FramePool { return t.pool }

// FlushRx reclaims frames parked in the transport's receive rings: the
// whole device's rings for a dedicated NIC, or only the tenant's own
// queue range on a shared one (a tenant crash must never discard a
// neighbour's frames). Returns the number of frames released.
func (t *Transport) FlushRx() int {
	if t.group != nil {
		return t.group.FlushRings()
	}
	return t.dev.FlushRings()
}

// Stack exposes the current user-level network stack (for stats). After
// a Restart this is the fresh incarnation; see StackStats for counters
// cumulative across incarnations.
func (t *Transport) Stack() *netstack.Stack { return t.stackp.Load() }

// StackStats returns the stack counters summed across every incarnation
// of this transport: the live stack plus everything folded in at each
// Crash. Conservation laws are stated against these.
func (t *Transport) StackStats() netstack.Stats {
	t.statsMu.Lock()
	prev := t.prevStats
	t.statsMu.Unlock()
	return prev.Add(t.Stack().Stats())
}

// Memory exposes the libOS memory manager (for stats).
func (t *Transport) Memory() *membuf.Manager { return t.mem }

// RegisterTelemetry lifts the transport's whole vertical — NIC, user
// stack, and memory manager — into a telemetry registry under prefix,
// plus the lifecycle counters under prefix.lifecycle.*. Netstack
// counters are registered through StackStats so they survive restarts.
func (t *Transport) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	if t.group != nil {
		// Tenant transport: the NIC-level view is the tenant's own queue
		// group, not the shared device (whose counters mix every tenant).
		t.group.RegisterTelemetry(r, prefix+".nic")
	} else {
		t.dev.RegisterTelemetry(r, prefix+".nic")
	}
	netstack.RegisterStatsTelemetry(r, prefix+".netstack", t.StackStats)
	t.mem.RegisterTelemetry(r, prefix+".membuf")
	t.RegisterLifecycleTelemetry(r, prefix+".lifecycle")
	r.RegisterFunc(prefix+".rx_ready_stalls", t.rxStalls.Load)
}

// RxStalls reports how many times an endpoint's receive drain parked on
// a full ready list (see Config.RxReadyCap).
func (t *Transport) RxStalls() int64 { return t.rxStalls.Load() }

// RegisterLifecycleTelemetry registers just the crash/restart counters
// under prefix (prefix.crashes, prefix.restarts).
func (t *Transport) RegisterLifecycleTelemetry(r *telemetry.Registry, prefix string) {
	r.RegisterFunc(prefix+".crashes", func() int64 {
		t.statsMu.Lock()
		defer t.statsMu.Unlock()
		return t.crashes
	})
	r.RegisterFunc(prefix+".restarts", func() int64 {
		t.statsMu.Lock()
		defer t.statsMu.Unlock()
		return t.restarts
	})
}

// AllocSGA implements core.Transport: buffers come from device-registered
// slab regions and free back into them. When a configured memory cap is
// exhausted the allocation falls back to unregistered heap memory; the
// later push then reports ErrNoMem backpressure from its staging step.
func (t *Transport) AllocSGA(n int) sga.SGA {
	buf, err := t.mem.TryAlloc(n)
	if err != nil {
		return sga.New(make([]byte, n))
	}
	s := sga.New(buf.Bytes()).WithFree(buf.Free)
	s.Reg = buf
	return s
}

// Open implements core.Transport; catnip has no storage path.
func (t *Transport) Open(string) (queue.IoQueue, error) {
	return nil, core.ErrNotSupported
}

// cloneHdr is the recycled header of one pooled pop SGA: the segment
// storage (inline up to 8 segments, covering every app in this repo)
// and the Free closure are allocated once and then cycle through
// clonePool, so after pooledCloneSGA's first few calls the steady-state
// pop path performs zero allocations — payload bytes recycle through
// the frame pool, headers through clonePool, and nothing reaches the
// garbage collector.
type cloneHdr struct {
	t      *Transport
	fb     *fabric.FrameBuf // nil when the clone fell back to heap bytes
	inline [8]sga.Segment
	free   func()
}

// pooledCloneSGA deep-copies a decoded SGA (which aliases the framer's
// reassembly buffer) into a single pooled frame buffer, sub-sliced per
// segment. The SGA's Free hook releases the buffer back to the pool and
// the header back to clonePool, so the steady-state pop path recycles
// instead of allocating. Applications that never Free simply leak both
// to the GC — safe, just unpooled. The pool is the transport's own, so
// in a sharded deployment pop buffers recycle within one shard.
func (t *Transport) pooledCloneSGA(s sga.SGA) sga.SGA {
	fb := t.pool.Get(s.Len())
	var buf []byte
	if fb != nil {
		buf = fb.Bytes()
	} else {
		// Tenant frame quota exhausted: fall back to an unpooled heap
		// clone. The pop still succeeds — the over-quota tenant loses
		// recycling, not correctness — and the GC reclaims the copy.
		buf = make([]byte, s.Len())
	}
	h, _ := t.clonePool.Get().(*cloneHdr)
	if h == nil {
		h = &cloneHdr{t: t}
		h.free = func() {
			if h.fb != nil {
				h.fb.Release()
				h.fb = nil
			}
			h.inline = [8]sga.Segment{} // drop payload refs before pooling
			h.t.clonePool.Put(h)
		}
	}
	h.fb = fb
	segs := h.inline[:0]
	if len(s.Segments) > len(h.inline) {
		// Over the inline capacity (rare: MaxSegments-wide SGAs); take
		// a one-off slice and let the GC have it.
		segs = make([]sga.Segment, 0, len(s.Segments))
	}
	off := 0
	for _, seg := range s.Segments {
		n := copy(buf[off:], seg.Buf)
		segs = append(segs, sga.Segment{Buf: buf[off : off+n : off+n]})
		off += n
	}
	return sga.SGA{Segments: segs}.WithFree(h.free)
}

// Socket implements core.Transport.
func (t *Transport) Socket() (core.Endpoint, error) {
	ep := &endpoint{t: t}
	ep.framer.SetClone(t.pooledCloneSGA)
	t.mu.Lock()
	t.eps = append(t.eps, ep)
	t.epsDirty = true
	t.mu.Unlock()
	return ep, nil
}

// SocketFrom is Socket with a fixed local source port: when the endpoint
// later Connects, the stack dials from that port instead of an ephemeral
// one. A sharded client uses it with nic.RSSQueueFlow to pick a source
// port whose RSS hash lands the flow on a chosen server shard — the
// client-side half of the paper's §3.1 flow-to-core partitioning.
func (t *Transport) SocketFrom(localPort uint16) (core.Endpoint, error) {
	ep, err := t.Socket()
	if err != nil {
		return nil, err
	}
	ep.(*endpoint).localPort = localPort
	return ep, nil
}

// wrapConnErr types a netstack terminal error with the core lifecycle
// sentinel, preserving the original for errors.Is: exhausted retransmit
// budgets, SYN timeouts, and peer RSTs all mean "the peer is dead" to
// the application driving failover, while crash-injected errors are
// already typed. Healthy (nil) errors pass through without allocating.
func wrapConnErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, core.ErrPeerDead) || errors.Is(err, core.ErrLocalReset) {
		return err // already lifecycle-typed
	}
	if errors.Is(err, netstack.ErrMaxRetransmits) ||
		errors.Is(err, netstack.ErrConnectTimeout) ||
		errors.Is(err, netstack.ErrConnClosed) {
		return fmt.Errorf("%w: %w", core.ErrPeerDead, err)
	}
	return err
}

// errCrashed is the terminal error injected into every connection and
// qtoken pending when the local stack is crashed. One value for all
// victims: the crash path allocates nothing per operation.
var errCrashed = fmt.Errorf("catnip: stack crashed: %w", core.ErrLocalReset)

// Poll implements core.Transport: it pumps the user stack and every
// endpoint's framing/dispatch machinery. While the transport is crashed
// the whole body is skipped behind one atomic load — the only cost the
// lifecycle subsystem adds to a healthy data path.
func (t *Transport) Poll() int {
	if t.crashed.Load() {
		return 0
	}
	n := t.Stack().Poll()
	t.mu.Lock()
	if t.epsDirty {
		t.epsSnap = append(make([]*endpoint, 0, len(t.eps)), t.eps...)
		t.udpsSnap = append(make([]*udpEndpoint, 0, len(t.udps)), t.udps...)
		t.epsDirty = false
	}
	eps, udps := t.epsSnap, t.udpsSnap
	t.mu.Unlock()
	for _, ep := range eps {
		// Armed-queue skip: quiet established connections answer a few
		// atomic loads instead of paying flushTx+drainRx lock traffic.
		// This is what keeps per-tick poll cost flat as the number of
		// idle connections grows (§3.1).
		if !ep.NeedsPump() {
			continue
		}
		n += ep.Pump()
	}
	for _, ep := range udps {
		n += ep.Pump()
	}
	return n
}

func (t *Transport) adopt(ep *endpoint) {
	t.mu.Lock()
	t.eps = append(t.eps, ep)
	t.epsDirty = true
	t.mu.Unlock()
}

// endpoint is one catnip socket queue: a TCP connection (or listener)
// carrying framed SGAs.
type endpoint struct {
	t *Transport

	// Lock-free pump pre-screen state (see NeedsPump): connp mirrors
	// conn, and the counters mirror len(txq)/len(ready)/len(waiters).
	// All are written under mu but read without it.
	connp     atomic.Pointer[netstack.TCPConn]
	txPending atomic.Int32
	readyLen  atomic.Int32
	waiterLen atomic.Int32
	// rxStalled is set while drainRx is parked on a full ready list
	// (RxReadyCap). NeedsPump uses it to resume the drain once the app
	// has harvested the backlog down to half the cap.
	rxStalled atomic.Bool

	mu    sync.Mutex
	bound core.Addr
	// localPort, when nonzero, fixes the source port Connect dials from
	// (set by SocketFrom for shard-targeted flows).
	localPort uint16
	listener  *netstack.TCPListener
	conn      *netstack.TCPConn
	framer    sga.Framer
	ready     []queue.Completion
	waiters   []queue.DoneFunc
	// txq holds marshaled frames not yet fully accepted by the TCP send
	// buffer.
	txq    []txFrame
	closed bool
	// dead, when non-nil, is the lifecycle-typed terminal error stamped
	// on this endpoint by a stack crash: every subsequent operation
	// fails with it immediately. Listener endpoints are exempt — they
	// are re-armed on Restart instead.
	dead error
	// rxScratch is the reused receive-copy buffer drainRx hands to
	// RecvAppend; the framer copies out of it, so one buffer per
	// endpoint suffices and the steady-state pop path never allocates
	// for stream bytes.
	rxScratch []byte
}

type txFrame struct {
	data []byte
	buf  *membuf.Buffer // registered staging buffer backing data
	cost simclock.Lat
	done queue.DoneFunc
	sent int
}

// Bind implements core.Endpoint.
func (e *endpoint) Bind(addr core.Addr) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bound = addr
	return nil
}

// LocalAddr implements core.Endpoint.
func (e *endpoint) LocalAddr() core.Addr {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bound
}

// Listen implements core.Endpoint.
func (e *endpoint) Listen() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	l, err := e.t.Stack().ListenTCP(e.bound.Port)
	if err != nil {
		return err
	}
	e.listener = l
	return nil
}

// Accept implements core.Endpoint.
func (e *endpoint) Accept() (core.Endpoint, bool, error) {
	e.mu.Lock()
	l := e.listener
	e.mu.Unlock()
	if l == nil {
		return nil, false, core.ErrNotListening
	}
	conn, ok := l.Accept()
	if !ok {
		return nil, false, nil
	}
	child := &endpoint{t: e.t, conn: conn}
	child.connp.Store(conn)
	child.framer.SetClone(e.t.pooledCloneSGA)
	e.t.adopt(child)
	return child, true, nil
}

// Connect implements core.Endpoint.
func (e *endpoint) Connect(addr core.Addr) error {
	e.mu.Lock()
	localPort := e.localPort
	dead := e.dead
	e.mu.Unlock()
	if dead != nil {
		return dead
	}
	conn, err := e.t.Stack().DialTCPFrom(localPort, addr.IP, addr.Port)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.conn = conn
	e.mu.Unlock()
	e.connp.Store(conn)
	return nil
}

// Connected implements core.Endpoint.
func (e *endpoint) Connected() bool {
	e.mu.Lock()
	conn := e.conn
	e.mu.Unlock()
	return conn != nil && conn.Established()
}

// Err implements core.Endpoint: it surfaces a terminal failure detected
// by the user-level TCP stack (dead peer after the retransmission budget
// is spent, or a connect that never completed). Healthy endpoints return
// nil.
func (e *endpoint) Err() error {
	e.mu.Lock()
	conn := e.conn
	dead := e.dead
	e.mu.Unlock()
	if dead != nil {
		return dead
	}
	if conn == nil {
		return nil
	}
	return wrapConnErr(conn.Err())
}

// Push implements queue.IoQueue: the SGA is framed and handed to the TCP
// send path; the completion fires when the transport has accepted every
// byte. No payload copy is charged — the device DMAs from the framed
// buffer (§3.2's zero-copy path).
func (e *endpoint) Push(s sga.SGA, cost simclock.Lat, done queue.DoneFunc) {
	e.mu.Lock()
	if e.dead != nil {
		dead := e.dead
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPush, Err: dead})
		return
	}
	if e.closed || e.conn == nil {
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPush, Err: queue.ErrClosed})
		return
	}
	e.mu.Unlock()
	// Stage the framed SGA in device-registered memory (the NIC DMAs
	// from it). Under a configured memory cap, exhaustion surfaces here
	// as an ErrNoMem push completion — backpressure, not a panic.
	buf, err := e.t.mem.TryAlloc(s.MarshalledSize())
	if err != nil {
		done(queue.Completion{Kind: queue.OpPush, Err: err})
		return
	}
	data := s.AppendMarshal(buf.Bytes()[:0])
	e.mu.Lock()
	if e.dead != nil || e.closed || e.conn == nil {
		err := queue.ErrClosed
		if e.dead != nil {
			err = e.dead
		}
		e.mu.Unlock()
		buf.Free()
		done(queue.Completion{Kind: queue.OpPush, Err: err})
		return
	}
	e.txq = append(e.txq, txFrame{data: data, buf: buf, cost: cost, done: done})
	e.txPending.Store(int32(len(e.txq)))
	e.mu.Unlock()
	e.Pump()
}

// PushBatched implements queue.BatchIoQueue: Push without the trailing
// Pump. The SQ drain path stages a whole burst of pushes this way, then
// the transport poll that follows flushes them through one coalesced
// flushTx — MSS-sized segments instead of one small segment per push.
func (e *endpoint) PushBatched(s sga.SGA, cost simclock.Lat, done queue.DoneFunc) {
	e.mu.Lock()
	if e.dead != nil {
		dead := e.dead
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPush, Err: dead})
		return
	}
	if e.closed || e.conn == nil {
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPush, Err: queue.ErrClosed})
		return
	}
	e.mu.Unlock()
	buf, err := e.t.mem.TryAlloc(s.MarshalledSize())
	if err != nil {
		done(queue.Completion{Kind: queue.OpPush, Err: err})
		return
	}
	data := s.AppendMarshal(buf.Bytes()[:0])
	e.mu.Lock()
	if e.dead != nil || e.closed || e.conn == nil {
		err := queue.ErrClosed
		if e.dead != nil {
			err = e.dead
		}
		e.mu.Unlock()
		buf.Free()
		done(queue.Completion{Kind: queue.OpPush, Err: err})
		return
	}
	e.txq = append(e.txq, txFrame{data: data, buf: buf, cost: cost, done: done})
	e.txPending.Store(int32(len(e.txq)))
	e.mu.Unlock()
}

// Pop implements queue.IoQueue.
func (e *endpoint) Pop(done queue.DoneFunc) {
	e.mu.Lock()
	if e.dead != nil && len(e.ready) == 0 {
		dead := e.dead
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: dead})
		return
	}
	if e.closed {
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
		return
	}
	if len(e.ready) > 0 {
		c := e.popReadyLocked()
		e.mu.Unlock()
		done(c)
		return
	}
	e.waiters = append(e.waiters, done)
	e.waiterLen.Store(int32(len(e.waiters)))
	e.mu.Unlock()
	e.Pump()
}

// PopBatched implements queue.BatchIoQueue: Pop without the trailing
// Pump; the burst issuer's follow-up poll serves it.
func (e *endpoint) PopBatched(done queue.DoneFunc) {
	e.mu.Lock()
	if e.dead != nil && len(e.ready) == 0 {
		dead := e.dead
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: dead})
		return
	}
	if e.closed {
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
		return
	}
	if len(e.ready) > 0 {
		c := e.popReadyLocked()
		e.mu.Unlock()
		done(c)
		return
	}
	e.waiters = append(e.waiters, done)
	e.waiterLen.Store(int32(len(e.waiters)))
	e.mu.Unlock()
}

// NeedsPump implements core.NeedsPumper with a handful of atomic loads
// and no locks: an endpoint needs pumping only when it has unsent tx
// frames or a registered pop waiter that could be served (buffered
// completions, or stream bytes/FIN/terminal error pending in the TCP
// receive buffer — all three folded into conn.ReadyHint). With neither,
// no qtoken is outstanding on this endpoint, so Pump would observably do
// nothing: idle established connections — the common case in a server
// with many quiet clients — are skipped by the poll loop without even
// touching their locks.
func (e *endpoint) NeedsPump() bool {
	conn := e.connp.Load()
	if conn == nil {
		return false // listener or unconnected socket: stack-driven
	}
	if e.txPending.Load() > 0 {
		return true
	}
	if e.rxStalled.Load() && e.readyLen.Load() <= int32(e.t.cfg.RxReadyCap/2) {
		// Parked drain with the backlog half-harvested: pump to refill
		// the ready list and re-open the advertised window (hysteresis
		// keeps a merely-slow reader from thrashing stall/resume).
		return true
	}
	if w := e.waiterLen.Load(); w > 0 {
		return e.readyLen.Load() > 0 || conn.ReadyHint()
	}
	return false
}

// Pump implements queue.IoQueue: it flushes pending frames into the TCP
// send buffer and drains received bytes through the framer into whole
// SGAs.
func (e *endpoint) Pump() int {
	e.mu.Lock()
	conn := e.conn
	e.mu.Unlock()
	if conn == nil {
		return 0
	}
	n := 0
	n += e.flushTx(conn)
	n += e.drainRx(conn)
	if err := conn.Err(); err != nil {
		// The stack declared the connection dead (max retransmits /
		// connect timeout). Every outstanding qtoken must complete with
		// the typed error rather than hang until the Wait deadline.
		e.failAll(wrapConnErr(err))
	}
	e.serveWaiters()
	return n
}

// txDone is a completed (or failed) tx frame recorded under e.mu and
// fired after it is released, so a burst of completed pushes costs one
// lock round trip instead of one per frame.
type txDone struct {
	done queue.DoneFunc
	buf  *membuf.Buffer
	cost simclock.Lat
	err  error
}

func (e *endpoint) flushTx(conn *netstack.TCPConn) int {
	// Completed frames collect on the stack and fire after the single
	// unlock below; 32 slots covers the largest ring drain burst without
	// spilling to the heap.
	var firedArr [32]txDone
	fired := firedArr[:0]
	e.mu.Lock()
	n := 0
	for len(e.txq) > 0 {
		f := &e.txq[0]
		// Buffered send: the whole staged burst coalesces into MSS-sized
		// segments at the single FlushSend below, so 32 small pushes cost
		// ~2 segments of per-segment work, not 32.
		sent, err := conn.SendBuffered(f.data[f.sent:], f.cost)
		if err != nil {
			fired = append(fired, txDone{done: f.done, buf: f.buf, err: wrapConnErr(err)})
			e.popTxqLocked()
			continue
		}
		f.sent += sent
		n += sent
		if f.sent < len(f.data) {
			break // TCP send buffer full; retry on a later pump
		}
		fired = append(fired, txDone{done: f.done, buf: f.buf, cost: f.cost})
		e.popTxqLocked()
	}
	if n > 0 {
		conn.FlushSend()
	}
	e.mu.Unlock()
	for i := range fired {
		d := &fired[i]
		if d.buf != nil {
			d.buf.Free() // TCP copied the bytes; staging slot recycles
		}
		if d.err != nil {
			d.done(queue.Completion{Kind: queue.OpPush, Err: d.err})
		} else {
			d.done(queue.Completion{Kind: queue.OpPush, Cost: d.cost})
		}
		*d = txDone{}
	}
	return n
}

// popTxqLocked dequeues the head tx frame, preserving slice capacity
// (see popReadyLocked).
func (e *endpoint) popTxqLocked() {
	n := copy(e.txq, e.txq[1:])
	e.txq[n] = txFrame{} // clear so data/buf/done are not retained
	e.txq = e.txq[:n]
	e.txPending.Store(int32(n))
}

func (e *endpoint) drainRx(conn *netstack.TCPConn) int {
	// Hold e.mu across the whole drain: RecvAppend fills the endpoint's
	// reused scratch buffer and the framer copies out of it, so the
	// steady-state receive path allocates nothing — and two concurrent
	// pumps can no longer interleave their stream bytes into the framer
	// out of order. Lock order (e.mu → stack.mu) matches flushTx.
	n := 0
	var failErr error
	readyCap := e.t.cfg.RxReadyCap
	e.mu.Lock()
	for {
		if readyCap > 0 && len(e.ready) >= readyCap {
			// Reader too slow: park the drain with the bytes still in
			// the TCP receive buffer. The stack's shrinking advertised
			// window now pushes the stall back to the peer's sender —
			// flow control end to end instead of an unbounded backlog.
			if !e.rxStalled.Swap(true) {
				e.t.rxStalls.Add(1)
			}
			e.readyLen.Store(int32(len(e.ready)))
			e.mu.Unlock()
			return n
		}
		b, cost, err := conn.RecvAppend(e.rxScratch[:0], 0)
		if cap(b) > cap(e.rxScratch) {
			e.rxScratch = b[:0] // keep the grown scratch for reuse
		}
		if err == io.EOF {
			failErr = queue.ErrClosed
			break
		}
		if err != nil || len(b) == 0 {
			break
		}
		e.framer.Feed(b)
		for {
			s, ok, ferr := e.framer.Next()
			if ferr != nil {
				failErr = ferr
				break
			}
			if !ok {
				break
			}
			e.ready = append(e.ready, queue.Completion{Kind: queue.OpPop, SGA: s, Cost: cost})
			n++
		}
		if failErr != nil {
			break
		}
	}
	e.rxStalled.Store(false)
	readyLeft := len(e.ready)
	e.readyLen.Store(int32(readyLeft))
	e.mu.Unlock()
	if failErr != nil && readyLeft == 0 {
		// Fail waiters only once every buffered completion has been
		// handed out: an EOF that lands in the same drain as the final
		// request bytes must not reorder itself ahead of them. The
		// condition is persistent (RecvAppend keeps returning it), so a
		// later pump delivers it once the ready list drains dry.
		e.failWaiters(failErr)
	}
	return n
}

func (e *endpoint) serveWaiters() {
	for {
		e.mu.Lock()
		if len(e.waiters) == 0 || len(e.ready) == 0 {
			e.mu.Unlock()
			return
		}
		w := e.waiters[0]
		n := copy(e.waiters, e.waiters[1:])
		e.waiters[n] = nil // clear so the closure is not retained
		e.waiters = e.waiters[:n]
		e.waiterLen.Store(int32(n))
		c := e.popReadyLocked()
		e.mu.Unlock()
		w(c)
	}
}

// popReadyLocked dequeues the head completion with a shift-copy so the
// slice keeps its capacity across pops — the `[1:]` reslice would force
// append to reallocate every producer/consumer cycle.
func (e *endpoint) popReadyLocked() queue.Completion {
	c := e.ready[0]
	n := copy(e.ready, e.ready[1:])
	e.ready[n] = queue.Completion{} // clear so the SGA is not retained
	e.ready = e.ready[:n]
	e.readyLen.Store(int32(n))
	return c
}

// failAll fails every queued pop waiter and every pending push with err:
// the dead-peer path. Unsent tx frames can never be delivered once the
// stack has given up, so their pushes fail too.
func (e *endpoint) failAll(err error) {
	e.mu.Lock()
	ws := e.waiters
	e.waiters = nil
	e.waiterLen.Store(0)
	txq := e.txq
	e.txq = nil
	e.txPending.Store(0)
	e.mu.Unlock()
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: err})
	}
	for _, f := range txq {
		if f.buf != nil {
			f.buf.Free()
		}
		f.done(queue.Completion{Kind: queue.OpPush, Err: err})
	}
}

func (e *endpoint) failWaiters(err error) {
	e.mu.Lock()
	ws := e.waiters
	e.waiters = nil
	e.waiterLen.Store(0)
	e.mu.Unlock()
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: err})
	}
}

// Close implements queue.IoQueue.
func (e *endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conn, l := e.conn, e.listener
	e.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if l != nil {
		l.Close()
	}
	e.failWaiters(queue.ErrClosed)
	return nil
}
