package netstack

import "demikernel/internal/simclock"

// Flow is the exported identity of one live TCP connection, the tuple
// the stack demultiplexes on and the device can pin with an
// exact-match steering rule. Resharding uses it to keep established
// flows landing on the queue whose shard owns the connection while new
// flows hash over the changed RSS width.
type Flow struct {
	LocalPort  uint16
	RemoteIP   IPv4Addr
	RemotePort uint16
}

// EstablishedFlows snapshots the flow tuples of every connection that
// is not fully closed — including handshakes in flight, whose SYN/ACK
// exchange must keep reaching this stack across a reshard just as much
// as an established conversation.
func (s *Stack) EstablishedFlows() []Flow {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Flow, 0, len(s.conns))
	for k, c := range s.conns {
		if c.state == stateClosed {
			continue
		}
		out = append(out, Flow{LocalPort: k.localPort, RemoteIP: k.remoteIP, RemotePort: k.remotePort})
	}
	return out
}

// SetPerPacketExtra rebinds the stack's additional per-packet
// processing cost. Live libOS switching uses this: the same stack
// object keeps all its connection state while the per-packet tax flips
// between the kernel path's syscall-laden profile and the bypass
// path's zero extra (LibrettOS-style network server vs. direct mode).
func (s *Stack) SetPerPacketExtra(extra simclock.Lat) {
	s.mu.Lock()
	s.cfg.PerPacketExtra = extra
	s.mu.Unlock()
}

// PerPacketExtra reports the current additional per-packet cost.
func (s *Stack) PerPacketExtra() simclock.Lat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.PerPacketExtra
}
