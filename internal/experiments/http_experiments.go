package experiments

// E17 — a real web workload on the bypass path. An HTTP/1.1 server
// runs directly on catnip queues (no sockets, no kernel TCP) over both
// submission disciplines — per-op tokens and SQ/CQ rings — serving a
// Zipf-popular cached object tree to keep-alive clients. The virtual
// service-latency CCDF must match across the two paths (the data path
// underneath is identical; the rings only remove call overhead that
// virtual time does not charge). Then the part the paper's §2 "OS
// functionality" argument is really about: a client that stops reading.
// The libOS's bounded rx ready list must park (rx_ready_stalls), the
// TCP advertised window must close against the server, the server must
// pause the connection's pipeline instead of buffering without bound —
// and when the reader resumes, window-update ACKs and the zero-window
// persist probe must reopen the flow so every response is delivered.
// Before those fixes this scenario deadlocked; the recovery check is
// the regression fence.

import (
	"bytes"
	"fmt"
	"time"

	demi "demikernel"
	"demikernel/internal/apps/httpd"
	"demikernel/internal/metrics"
	"demikernel/internal/workload"
)

const e17Port = 8080

// httpRig is a served httpd server plus one connected keep-alive
// client, background-polled on both sides.
type httpRig struct {
	cluster *demi.Cluster
	cliNode *demi.Node
	srv     *httpd.Server
	cli     *httpd.Client
	stops   []func()
}

func (r *httpRig) close() {
	for _, f := range r.stops {
		f()
	}
}

func newHTTPRig(seed int64, tree *httpd.Tree, ringCap int, cliCfg demi.NodeConfig) (*httpRig, error) {
	c := demi.NewCluster(seed)
	srvNode, err := newNode(c, "catnip", demi.NodeConfig{Host: 1})
	if err != nil {
		return nil, err
	}
	if cliCfg.Host == 0 {
		cliCfg.Host = 2
	}
	cliNode, err := newNode(c, "catnip", cliCfg)
	if err != nil {
		return nil, err
	}
	cliNode.WaitTimeout = 10 * time.Second
	srv := httpd.NewServer(srvNode.LibOS, tree)
	srv.EnableLatency()
	if err := srv.Listen(e17Port); err != nil {
		return nil, err
	}
	if ringCap > 0 {
		srv.EnableRing(ringCap)
	}
	stopS := srvNode.Background()
	stopC := cliNode.Background()
	stopServe := make(chan struct{})
	go srv.Run(stopServe)

	cli := httpd.NewClient(cliNode.LibOS)
	if err := cli.Connect(c.AddrOf(srvNode, e17Port)); err != nil {
		return nil, err
	}
	return &httpRig{
		cluster: c,
		cliNode: cliNode,
		srv:     srv,
		cli:     cli,
		stops:   []func(){func() { close(stopServe) }, stopC, stopS},
	}, nil
}

func runE17(seed int64) (*Result, error) {
	const reqs = 512
	res := &Result{}

	// Part 1 — the same Zipf-popular GET stream over both submission
	// disciplines; the server-side virtual service-latency CCDF must
	// match (the rings change the submission machinery, not the work).
	prod := workload.NewHTTPProduction(64, 1e6, seed)
	tree := httpd.NewTree()
	for _, o := range prod.Objects {
		tree.Add(o.Path, o.Body)
	}
	tbl := metrics.NewTable("HTTP GET service latency (virtual): per-op tokens vs SQ/CQ rings",
		"path", "requests", "p50", "p99", "p99.9", "max")
	var p50s [2]int64
	for i, ringCap := range []int{0, 64} {
		r, err := newHTTPRig(seed, tree, ringCap, demi.NodeConfig{})
		if err != nil {
			return nil, err
		}
		paths := workload.NewPathSet(len(prod.Objects), workload.NewZipfKeys(len(prod.Objects), 1.2, seed+2))
		for k := 0; k < reqs; k++ {
			resp, err := r.cli.Get(paths.Next())
			if err != nil {
				r.close()
				return nil, err
			}
			if resp.Status != 200 {
				r.close()
				return nil, fmt.Errorf("E17: status %d", resp.Status)
			}
		}
		name := "per-op"
		if ringCap > 0 {
			name = "ring"
		}
		served := r.srv.Stats().Requests
		h := r.srv.RouteHistogram("obj")
		tbl.AddRow(name, served, h.Percentile(50), h.Percentile(99), h.Percentile(99.9), h.Max())
		p50s[i] = int64(h.Percentile(50))
		res.check(name+" path serves every request", served == reqs,
			"served %d of %d", served, reqs)
		r.close()
	}
	res.Tables = append(res.Tables, tbl)
	res.check("ring CCDF tracks per-op (identical data path under both)",
		p50s[1] <= p50s[0]*11/10 && p50s[0] <= p50s[1]*11/10,
		"p50 per-op %dns vs ring %dns", p50s[0], p50s[1])

	// Part 2 — the slow client. 160 pipelined 8KiB GETs with the reader
	// frozen: the responses must fill the client's TCP receive window
	// and the server's send buffer until the server pauses the
	// connection's pipeline (backlog_pauses) — bounded buffering, not
	// OOM. Then the reader resumes slowly: the bounded rx ready list
	// parks (rx_ready_stalls), and the window-update ACK + zero-window
	// persist probe machinery must reopen the flow until every response
	// is delivered intact. This is the scenario that used to deadlock.
	const slowReqs = 160
	objs := workload.HTTPObjects(4, workload.FixedSize(8192), seed)
	slowTree := httpd.NewTree()
	for _, o := range objs {
		slowTree.Add(o.Path, o.Body)
	}
	r, err := newHTTPRig(seed+1, slowTree, 0, demi.NodeConfig{Host: 2, RxReadyCap: 4})
	if err != nil {
		return nil, err
	}
	defer r.close()
	for i := 0; i < slowReqs; i++ {
		if err := r.cli.SendRequest(workload.HTTPObjectPath(i%len(objs)), false); err != nil {
			return nil, fmt.Errorf("E17 slow client send: %w", err)
		}
	}
	// Frozen phase: wait (bounded) for the backpressure to reach the
	// server and pause the connection.
	deadline := time.Now().Add(10 * time.Second)
	for r.srv.Stats().Backlogs == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	paused := r.srv.Stats().Backlogs
	res.check("frozen reader pauses the server pipeline (bounded buffering)",
		paused >= 1, "backlog_pauses=%d", paused)

	// Resumed phase: drain everything, verifying bodies.
	bad := 0
	for i := 0; i < slowReqs; i++ {
		resp, err := r.cli.ReadResponse()
		if err != nil {
			return nil, fmt.Errorf("E17 slow client recovery stalled at %d/%d: %w", i, slowReqs, err)
		}
		if resp.Status != 200 || !bytes.Equal(resp.Body, objs[i%len(objs)].Body) {
			bad++
		}
	}
	stalls := r.cliNode.Catnip.RxStalls()
	res.check("slow reader parks the bounded rx ready list", stalls >= 1,
		"rx_ready_stalls=%d", stalls)
	res.check("flow reopens after the stall: every response delivered intact",
		bad == 0, "%d/%d responses OK (window-update ACK + persist probe)", slowReqs-bad, slowReqs)
	return res, nil
}
