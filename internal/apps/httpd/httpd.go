// Package httpd implements an HTTP/1.1 web server directly on
// Demikernel queues — the "real application" the paper keeps insisting
// a kernel-bypass OS must still be able to host (§2, §6): not an echo
// toy, but keep-alive connection management, pipelining, ranged reads
// from a cached object tree, slow-client backpressure, and per-route
// telemetry. It is written against the Demikernel API only (queues,
// SGAs, qtokens, and — after EnableRing — the syscall-free SQ/CQ
// rings), so it runs unmodified over every libOS.
//
// Requests and responses travel as framed SGAs over the byte stream: a
// client pushes the raw request bytes as one SGA; the server parses in
// place (zero-copy — the path never leaves the popped buffer), builds a
// response whose body segment aliases the immutable object tree, and
// pushes header + body as one two-segment SGA. Steady-state serving
// allocates nothing: headers come from a free list, responses reuse
// pooled descriptors, and the parser works in place.
package httpd

import (
	"errors"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/metrics"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
	"demikernel/internal/uring"
)

// Tree is the in-memory cached object store the server serves from. It
// is populated before serving starts and immutable afterwards, so
// response bodies alias it without copies or reference counting.
type Tree struct {
	objs  map[string][]byte
	total int64
}

// NewTree creates an empty object tree.
func NewTree() *Tree { return &Tree{objs: make(map[string][]byte)} }

// Add stores body under path. Call before serving starts.
func (t *Tree) Add(path string, body []byte) {
	if old, ok := t.objs[path]; ok {
		t.total -= int64(len(old))
	}
	t.objs[path] = body
	t.total += int64(len(body))
}

// Lookup returns the object at path. The []byte(path) conversion in the
// map index does not allocate.
func (t *Tree) Lookup(path []byte) ([]byte, bool) {
	b, ok := t.objs[string(path)]
	return b, ok
}

// Len returns the number of objects.
func (t *Tree) Len() int { return len(t.objs) }

// Bytes returns the total stored body bytes.
func (t *Tree) Bytes() int64 { return t.total }

// Defaults for the server's tunables.
const (
	// defaultBacklog is the per-connection cap on responses in flight
	// toward a client. A stalled reader hits it quickly; the server
	// then stops popping that connection's requests (application-level
	// backpressure) instead of buffering unbounded responses.
	defaultBacklog = 32
	// defaultPopDepth is how many pops the ring-mode server keeps armed
	// per connection — the per-connection pipeline window.
	defaultPopDepth = 8
)

// respBuf is one pooled in-flight response: the header bytes plus the
// segment array backing the pushed SGA. Both must stay alive until the
// transport reports the push complete, then the whole descriptor
// recycles through the server's free list.
type respBuf struct {
	hdr  []byte
	segs [2]sga.Segment
	nseg int
}

// push is one outstanding legacy-path response awaiting completion.
type push struct {
	qt queue.QToken
	rb *respBuf
}

// conn is the server's per-connection state.
type conn struct {
	qd core.QD
	// pending buffers a request head split across pops (slow path; the
	// fast path parses the popped segment in place).
	pending []byte
	last    time.Time // last request activity, for idle reaping
	closing bool      // close once in-flight responses flush
	paused  bool      // backlog full: stop popping requests

	// Legacy-path state.
	popQT    queue.QToken
	popArmed bool
	pushes   []push

	// Ring-path state.
	inflight []*respBuf // header FIFO awaiting push CQEs
	pops     int        // armed pop SQEs
}

// Server serves a Tree over HTTP/1.1 on Demikernel queues.
type Server struct {
	lib  *core.LibOS
	tree *Tree

	// AppCost is the virtual compute charged per request served.
	AppCost simclock.Lat
	// IdleTimeout reaps connections with no request activity for this
	// long (0 disables reaping).
	IdleTimeout time.Duration
	// Now is the reap clock (injectable for tests); nil means time.Now.
	Now func() time.Time
	// MaxConnBacklog overrides defaultBacklog (set before serving).
	MaxConnBacklog int
	// PopDepth overrides defaultPopDepth for ring mode (set before
	// EnableRing).
	PopDepth int

	mu       sync.Mutex
	lqd      core.QD
	conns    map[core.QD]*conn
	scan     []*conn // reused Step iteration scratch
	lastReap time.Time

	respFree []*respBuf

	// Counters (atomics: Step is single-threaded, readers are not).
	requests   atomic.Int64
	heads      atomic.Int64
	r200       atomic.Int64
	r206       atomic.Int64
	r400       atomic.Int64
	r404       atomic.Int64
	r416       atomic.Int64
	bytesOut   atomic.Int64
	accepted   atomic.Int64
	closed     atomic.Int64
	idleReaped atomic.Int64
	halfClosed atomic.Int64
	pauses     atomic.Int64

	// Per-route latency histograms (opt-in; see EnableLatency).
	latMu  sync.Mutex
	lat    map[string]*metrics.Histogram
	latOn  atomic.Bool
	routes []string // registration order, for stable tables

	// Ring-path state (nil until EnableRing; see ring.go).
	ring *uring.Pair
	sqes []uring.SQE
	cqes []uring.CQE
}

// NewServer creates a server for tree on lib.
func NewServer(lib *core.LibOS, tree *Tree) *Server {
	return &Server{
		lib:            lib,
		tree:           tree,
		conns:          make(map[core.QD]*conn),
		MaxConnBacklog: defaultBacklog,
		PopDepth:       defaultPopDepth,
	}
}

// Listen binds the server to port.
func (s *Server) Listen(port uint16) error {
	qd, err := s.lib.Socket()
	if err != nil {
		return err
	}
	if err := s.lib.Bind(qd, core.Addr{Port: port}); err != nil {
		return err
	}
	if err := s.lib.Listen(qd); err != nil {
		return err
	}
	s.lqd = qd
	return nil
}

func (s *Server) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// Step runs one non-blocking server iteration and returns requests
// served. After EnableRing it travels the syscall-free ring path.
func (s *Server) Step() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ring != nil {
		return s.stepRingLocked()
	}
	s.acceptLegacy()

	s.scan = s.scan[:0]
	for _, c := range s.conns {
		s.scan = append(s.scan, c)
	}
	served := 0
	for _, c := range s.scan {
		if _, live := s.conns[c.qd]; !live {
			continue // closed by an earlier iteration
		}
		s.pumpPushes(c)
		if _, live := s.conns[c.qd]; !live {
			continue
		}
		if c.popArmed {
			comp, ok, err := s.lib.TryWait(c.popQT)
			if err != nil {
				s.closeConn(c)
				continue
			}
			if ok {
				c.popArmed = false
				if comp.Err != nil {
					s.popFailed(c, comp.Err)
					continue
				}
				c.last = s.now()
				if c.closing {
					comp.SGA.Free() // data after close: discard
				} else {
					served += s.serveSGA(c, comp.SGA, comp.Cost)
				}
			}
		}
		if _, live := s.conns[c.qd]; !live {
			continue
		}
		if c.closing {
			if len(c.pushes) == 0 {
				s.closeConn(c)
			}
			continue
		}
		if !c.popArmed && !c.paused {
			if qt, err := s.lib.Pop(c.qd); err == nil {
				c.popQT, c.popArmed = qt, true
			} else {
				s.closeConn(c)
			}
		}
	}
	s.reapIdle()
	return served
}

// acceptLegacy drains the accept queue and arms the first pop per
// connection.
func (s *Server) acceptLegacy() {
	for {
		qd, ok, err := s.lib.TryAccept(s.lqd)
		if err != nil || !ok {
			return
		}
		c := &conn{qd: qd, last: s.now()}
		if qt, err := s.lib.Pop(qd); err == nil {
			c.popQT, c.popArmed = qt, true
		}
		s.conns[qd] = c
		s.accepted.Add(1)
	}
}

// pumpPushes retires completed response pushes in FIFO order, recycling
// their header buffers, and unpauses the connection once the backlog
// has half-drained.
func (s *Server) pumpPushes(c *conn) {
	for len(c.pushes) > 0 {
		comp, ok, err := s.lib.TryWait(c.pushes[0].qt)
		if !ok && err == nil {
			break
		}
		if err == nil {
			err = comp.Err
		}
		rb := c.pushes[0].rb
		n := copy(c.pushes, c.pushes[1:])
		c.pushes[n] = push{}
		c.pushes = c.pushes[:n]
		s.putResp(rb)
		if err != nil {
			s.closeConn(c)
			return
		}
	}
	if c.paused && len(c.pushes) <= s.MaxConnBacklog/2 {
		c.paused = false
	}
}

// popFailed handles a failed pop. A typed ErrClosed with responses
// still in flight is the half-close case — the client sent FIN but can
// still receive, so the server flushes what it owes before closing.
func (s *Server) popFailed(c *conn, err error) {
	if errors.Is(err, queue.ErrClosed) && len(c.pushes) > 0 {
		s.halfClosed.Add(1)
		c.closing = true
		return
	}
	s.closeConn(c)
}

// closeConn tears the connection down, releasing any queued response
// descriptors.
func (s *Server) closeConn(c *conn) {
	if _, ok := s.conns[c.qd]; !ok {
		return
	}
	delete(s.conns, c.qd)
	for i := range c.pushes {
		s.putResp(c.pushes[i].rb)
		c.pushes[i] = push{}
	}
	c.pushes = c.pushes[:0]
	for i, rb := range c.inflight {
		s.putResp(rb)
		c.inflight[i] = nil
	}
	c.inflight = c.inflight[:0]
	s.lib.Close(c.qd) //nolint:errcheck // may already be gone
	if c.popArmed {
		// Consume the completion Close just failed so the token does
		// not linger in the completer map across a long soak.
		if comp, ok, _ := s.lib.TryWait(c.popQT); ok && comp.Err == nil {
			comp.SGA.Free()
		}
		c.popArmed = false
	}
	s.closed.Add(1)
}

// reapIdle closes connections with no request activity for IdleTimeout,
// scanning at most every IdleTimeout/4 so reaping stays off the hot
// path.
func (s *Server) reapIdle() {
	if s.IdleTimeout <= 0 {
		return
	}
	now := s.now()
	if now.Sub(s.lastReap) < s.IdleTimeout/4 {
		return
	}
	s.lastReap = now
	s.scan = s.scan[:0]
	for _, c := range s.conns {
		if !c.closing && len(c.pushes) == 0 && len(c.inflight) == 0 &&
			now.Sub(c.last) >= s.IdleTimeout {
			s.scan = append(s.scan, c)
		}
	}
	for _, c := range s.scan {
		s.closeConn(c)
		s.idleReaped.Add(1)
	}
	s.scan = s.scan[:0]
}

// serveSGA parses every complete request in the popped SGA and responds
// to each. The single-segment no-leftover case — the overwhelmingly
// common one — parses the popped buffer in place; split or multi-
// segment requests fall back to the per-connection pending buffer.
func (s *Server) serveSGA(c *conn, g sga.SGA, cost simclock.Lat) int {
	served := 0
	if len(c.pending) == 0 && len(g.Segments) == 1 {
		buf := g.Segments[0].Buf
		n := s.parseAndServe(c, buf, cost, &served)
		if n < len(buf) && !c.closing {
			c.pending = append(c.pending[:0], buf[n:]...)
		}
	} else {
		for _, seg := range g.Segments {
			c.pending = append(c.pending, seg.Buf...)
		}
		n := s.parseAndServe(c, c.pending, cost, &served)
		c.pending = c.pending[:copy(c.pending, c.pending[n:])]
	}
	g.Free()
	return served
}

// parseAndServe consumes requests from buf until it is exhausted, a
// request is incomplete, or the connection is closing.
func (s *Server) parseAndServe(c *conn, buf []byte, cost simclock.Lat, served *int) int {
	consumed := 0
	for consumed < len(buf) && !c.closing {
		req, n, err := parseRequest(buf[consumed:])
		if err != nil {
			// Unsalvageable head: answer 400 and drop the rest of the
			// stream — there is no trustworthy request boundary left.
			s.respondBad(c, cost)
			c.closing = true
			return len(buf)
		}
		if n == 0 {
			break
		}
		consumed += n
		s.respond(c, req, cost)
		*served++
		if req.close {
			c.closing = true
		}
	}
	return consumed
}

// respond builds and submits the response for one parsed request.
func (s *Server) respond(c *conn, req request, cost simclock.Lat) {
	rb := s.getResp()
	g := s.buildResponse(rb, req)
	if s.latOn.Load() {
		s.recordLatency(req.path, cost+s.AppCost)
	}
	s.submit(c, rb, g, cost+s.AppCost)
}

// respondBad answers a malformed request with a close-marked 400.
func (s *Server) respondBad(c *conn, cost simclock.Lat) {
	rb := s.getResp()
	g := s.buildStatus(rb, status400, badReqBody, true)
	s.requests.Add(1)
	s.r400.Add(1)
	s.submit(c, rb, g, cost+s.AppCost)
}

// submit hands a built response to the active data path. The respBuf
// stays alive until the push completes (legacy TryWait or ring CQE).
func (s *Server) submit(c *conn, rb *respBuf, g sga.SGA, cost simclock.Lat) {
	if s.ring != nil {
		s.submitRing(c, rb, g, cost)
		return
	}
	qt, err := s.lib.PushCost(c.qd, g, cost)
	if err != nil {
		s.putResp(rb)
		s.closeConn(c)
		return
	}
	c.pushes = append(c.pushes, push{qt: qt, rb: rb})
	if len(c.pushes) >= s.MaxConnBacklog && !c.paused {
		c.paused = true
		s.pauses.Add(1)
	}
}

// Canned status lines and bodies.
const (
	status200 = "HTTP/1.1 200 OK\r\n"
	status206 = "HTTP/1.1 206 Partial Content\r\n"
	status400 = "HTTP/1.1 400 Bad Request\r\n"
	status404 = "HTTP/1.1 404 Not Found\r\n"
	status416 = "HTTP/1.1 416 Range Not Satisfiable\r\n"
)

var (
	notFoundBody = []byte("404 not found\n")
	badReqBody   = []byte("400 bad request\n")
)

// buildResponse resolves req against the tree and fills rb. The body
// segment aliases the tree (or a canned error body); only the header
// bytes are written, into rb's pooled buffer.
func (s *Server) buildResponse(rb *respBuf, req request) sga.SGA {
	s.requests.Add(1)
	if req.head {
		s.heads.Add(1)
	}
	body, ok := s.tree.Lookup(req.path)
	if !ok {
		s.r404.Add(1)
		return s.buildStatus(rb, status404, notFoundBody, req.close)
	}
	total := int64(len(body))
	if req.rngKind != rangeNone {
		from, to, satisfiable := resolveRange(req, total)
		if !satisfiable {
			s.r416.Add(1)
			return s.build416(rb, total, req.close)
		}
		s.r206.Add(1)
		return s.build206(rb, body[from:to+1], from, to, total, req)
	}
	s.r200.Add(1)
	rb.hdr = append(rb.hdr, status200...)
	rb.hdr = appendCommon(rb.hdr, int64(len(body)), req.close)
	return s.finish(rb, body, req.head)
}

// resolveRange maps a parsed Range header onto [from, to] inclusive.
func resolveRange(req request, total int64) (from, to int64, ok bool) {
	switch req.rngKind {
	case rangeFromTo:
		from, to = req.rngFrom, req.rngTo
		if to >= total {
			to = total - 1
		}
	case rangeFrom:
		from, to = req.rngFrom, total-1
	case rangeSuffix:
		if req.rngTo <= 0 {
			return 0, 0, false
		}
		from, to = total-req.rngTo, total-1
		if from < 0 {
			from = 0
		}
	}
	if from >= total || from > to {
		return 0, 0, false
	}
	return from, to, true
}

func (s *Server) build206(rb *respBuf, part []byte, from, to, total int64, req request) sga.SGA {
	rb.hdr = append(rb.hdr, status206...)
	rb.hdr = append(rb.hdr, "Content-Range: bytes "...)
	rb.hdr = strconv.AppendInt(rb.hdr, from, 10)
	rb.hdr = append(rb.hdr, '-')
	rb.hdr = strconv.AppendInt(rb.hdr, to, 10)
	rb.hdr = append(rb.hdr, '/')
	rb.hdr = strconv.AppendInt(rb.hdr, total, 10)
	rb.hdr = append(rb.hdr, '\r', '\n')
	rb.hdr = appendCommon(rb.hdr, int64(len(part)), req.close)
	return s.finish(rb, part, req.head)
}

func (s *Server) build416(rb *respBuf, total int64, close bool) sga.SGA {
	rb.hdr = append(rb.hdr, status416...)
	rb.hdr = append(rb.hdr, "Content-Range: bytes */"...)
	rb.hdr = strconv.AppendInt(rb.hdr, total, 10)
	rb.hdr = append(rb.hdr, '\r', '\n')
	rb.hdr = appendCommon(rb.hdr, 0, close)
	return s.finish(rb, nil, false)
}

// buildStatus builds a canned-body response (404/400).
func (s *Server) buildStatus(rb *respBuf, status string, body []byte, close bool) sga.SGA {
	rb.hdr = append(rb.hdr, status...)
	rb.hdr = appendCommon(rb.hdr, int64(len(body)), close)
	return s.finish(rb, body, false)
}

// appendCommon writes the headers every response carries. Keep-alive is
// HTTP/1.1's default and is left implicit; only close is announced.
func appendCommon(hdr []byte, contentLen int64, close bool) []byte {
	hdr = append(hdr, "Server: demi-httpd\r\nContent-Length: "...)
	hdr = strconv.AppendInt(hdr, contentLen, 10)
	hdr = append(hdr, '\r', '\n')
	if close {
		hdr = append(hdr, "Connection: close\r\n"...)
	}
	return append(hdr, '\r', '\n')
}

// finish assembles the response SGA over rb's segments and counts the
// outbound bytes. HEAD responses carry the full headers and no body.
func (s *Server) finish(rb *respBuf, body []byte, head bool) sga.SGA {
	rb.segs[0] = sga.Segment{Buf: rb.hdr}
	rb.nseg = 1
	n := int64(len(rb.hdr))
	if !head && len(body) > 0 {
		rb.segs[1] = sga.Segment{Buf: body}
		rb.nseg = 2
		n += int64(len(body))
	}
	s.bytesOut.Add(n)
	return sga.SGA{Segments: rb.segs[:rb.nseg]}
}

// getResp takes a response descriptor from the free list.
func (s *Server) getResp() *respBuf {
	if n := len(s.respFree); n > 0 {
		rb := s.respFree[n-1]
		s.respFree[n-1] = nil
		s.respFree = s.respFree[:n-1]
		return rb
	}
	return &respBuf{hdr: make([]byte, 0, 160)}
}

// putResp recycles a response descriptor once the transport no longer
// references it.
func (s *Server) putResp(rb *respBuf) {
	if rb == nil {
		return
	}
	rb.hdr = rb.hdr[:0]
	rb.segs = [2]sga.Segment{}
	rb.nseg = 0
	s.respFree = append(s.respFree, rb)
}

// Run pumps Step until stop closes.
func (s *Server) Run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if s.Step() == 0 {
			s.lib.Poll()
		}
		runtime.Gosched()
	}
}

// Conns returns the live connection count.
func (s *Server) Conns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	Requests, Heads                  int64
	R200, R206, R400, R404, R416     int64
	BytesOut                         int64
	ConnsAccepted, ConnsClosed       int64
	IdleReaped, HalfCloses, Backlogs int64
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:      s.requests.Load(),
		Heads:         s.heads.Load(),
		R200:          s.r200.Load(),
		R206:          s.r206.Load(),
		R400:          s.r400.Load(),
		R404:          s.r404.Load(),
		R416:          s.r416.Load(),
		BytesOut:      s.bytesOut.Load(),
		ConnsAccepted: s.accepted.Load(),
		ConnsClosed:   s.closed.Load(),
		IdleReaped:    s.idleReaped.Load(),
		HalfCloses:    s.halfClosed.Load(),
		Backlogs:      s.pauses.Load(),
	}
}

// RegisterTelemetry lifts the httpd.* counter family into a registry.
func (s *Server) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	r.RegisterFunc(prefix+".requests", s.requests.Load)
	r.RegisterFunc(prefix+".heads", s.heads.Load)
	r.RegisterFunc(prefix+".resp_200", s.r200.Load)
	r.RegisterFunc(prefix+".resp_206", s.r206.Load)
	r.RegisterFunc(prefix+".resp_400", s.r400.Load)
	r.RegisterFunc(prefix+".resp_404", s.r404.Load)
	r.RegisterFunc(prefix+".resp_416", s.r416.Load)
	r.RegisterFunc(prefix+".bytes_out", s.bytesOut.Load)
	r.RegisterFunc(prefix+".conns_accepted", s.accepted.Load)
	r.RegisterFunc(prefix+".conns_closed", s.closed.Load)
	r.RegisterFunc(prefix+".idle_reaped", s.idleReaped.Load)
	r.RegisterFunc(prefix+".half_closes", s.halfClosed.Load)
	r.RegisterFunc(prefix+".backlog_pauses", s.pauses.Load)
}

// EnableLatency turns on per-route service-latency histograms (the
// virtual cost each request accumulated through the stack plus
// AppCost). Off by default: recording appends samples, which is not
// allocation-free.
func (s *Server) EnableLatency() {
	s.latMu.Lock()
	if s.lat == nil {
		s.lat = make(map[string]*metrics.Histogram)
	}
	s.latMu.Unlock()
	s.latOn.Store(true)
}

func (s *Server) recordLatency(path []byte, cost simclock.Lat) {
	route := routeOf(path)
	s.latMu.Lock()
	h, ok := s.lat[string(route)]
	if !ok {
		h = &metrics.Histogram{}
		s.lat[string(route)] = h
		s.routes = append(s.routes, string(route))
	}
	h.Record(cost)
	s.latMu.Unlock()
}

// RouteHistogram returns the latency histogram for route (nil if the
// route has not been seen or latency is disabled).
func (s *Server) RouteHistogram(route string) *metrics.Histogram {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	return s.lat[route]
}

// LatencyTable renders per-route latency percentiles, first-seen order.
func (s *Server) LatencyTable() *metrics.Table {
	tbl := metrics.NewTable("httpd per-route service latency (virtual)",
		"route", "requests", "p50", "p99", "p99.9", "max")
	s.latMu.Lock()
	defer s.latMu.Unlock()
	for _, route := range s.routes {
		h := s.lat[route]
		tbl.AddRow(route, h.Count(), h.Percentile(50), h.Percentile(99),
			h.Percentile(99.9), h.Max())
	}
	return tbl
}
