package spdk

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// hostTraverse walks the index on the host, one Execute per node — the
// reference traversal the pushdown engine must match.
func hostTraverse(t *testing.T, d *Device, idx *Index, key []byte) ([]byte, int, bool) {
	t.Helper()
	lba := idx.Root
	for hops := 1; hops <= MaxHopBudget; hops++ {
		c := d.Execute(Command{Op: OpRead, LBA: lba})
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		switch s := IndexStep(key, c.Data); s.Kind {
		case StepNext:
			lba = s.NextLBA
		case StepDone:
			return s.Value, hops, true
		case StepMiss:
			return nil, hops, false
		default:
			t.Fatalf("corrupt verdict at LBA %d", lba)
		}
	}
	t.Fatal("traversal did not terminate")
	return nil, 0, false
}

func TestIndexBuildShapes(t *testing.T) {
	d := newDev(Config{})
	for _, tc := range []struct {
		keys, fanout, levels int
	}{
		{1, 2, 1},   // single leaf is its own root
		{2, 2, 1},   // still one leaf
		{3, 2, 2},   // two leaves, one root
		{8, 2, 3},   // 4 leaves, 2 inner, root
		{16, 2, 4},  // full depth-3 binary shape
		{64, 8, 2},  // 8 leaves at fanout 8
		{100, 8, 3}, // 13 leaves, 2 inner, root
	} {
		var kvs []KV
		for i := 0; i < tc.keys; i++ {
			kvs = append(kvs, KV{Key: []byte(fmt.Sprintf("k%05d", i)), Val: []byte(fmt.Sprintf("v%d", i))})
		}
		idx, err := BuildIndex(d, seqAlloc(1000), kvs, tc.fanout)
		if err != nil {
			t.Fatal(err)
		}
		if idx.Levels != tc.levels || idx.Depth != tc.levels-1 {
			t.Fatalf("%d keys fanout %d: levels = %d, want %d", tc.keys, tc.fanout, idx.Levels, tc.levels)
		}
		if idx.NumKeys != tc.keys || idx.BuildCost == 0 {
			t.Fatalf("NumKeys = %d BuildCost = %v", idx.NumKeys, idx.BuildCost)
		}
		// Every key resolves in exactly Levels hops.
		for i := 0; i < tc.keys; i++ {
			v, hops, ok := hostTraverse(t, d, idx, []byte(fmt.Sprintf("k%05d", i)))
			if !ok || !bytes.Equal(v, []byte(fmt.Sprintf("v%d", i))) {
				t.Fatalf("%d keys: key %d -> %q ok=%v", tc.keys, i, v, ok)
			}
			if hops != idx.Levels {
				t.Fatalf("%d keys: key %d took %d hops, want %d", tc.keys, i, hops, idx.Levels)
			}
		}
		// Misses on both flanks and in between.
		for _, miss := range []string{"a", "k00000x", "z"} {
			if _, _, ok := hostTraverse(t, d, idx, []byte(miss)); ok {
				t.Fatalf("ghost hit for %q", miss)
			}
		}
	}
}

func TestIndexDuplicateKeysLastWins(t *testing.T) {
	d := newDev(Config{})
	kvs := []KV{
		{Key: []byte("a"), Val: []byte("old")},
		{Key: []byte("b"), Val: []byte("b1")},
		{Key: []byte("a"), Val: []byte("new")},
	}
	idx, err := BuildIndex(d, seqAlloc(500), kvs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumKeys != 2 {
		t.Fatalf("NumKeys = %d, want 2 after dedupe", idx.NumKeys)
	}
	v, _, ok := hostTraverse(t, d, idx, []byte("a"))
	if !ok || string(v) != "new" {
		t.Fatalf("a -> %q ok=%v, want the last value", v, ok)
	}
}

func TestIndexBuildRejects(t *testing.T) {
	d := newDev(Config{})
	if _, err := BuildIndex(d, seqAlloc(0), nil, 2); !errors.Is(err, ErrIndexEmpty) {
		t.Fatalf("empty: err = %v", err)
	}
	big := KV{Key: bytes.Repeat([]byte("k"), 10), Val: make([]byte, BlockSize)}
	if _, err := BuildIndex(d, seqAlloc(0), []KV{big}, 1); !errors.Is(err, ErrIndexEntryTooBig) {
		t.Fatalf("oversized entry: err = %v", err)
	}
	long := KV{Key: make([]byte, MaxKeyLen+1), Val: []byte("v")}
	if _, err := BuildIndex(d, seqAlloc(0), []KV{long}, 1); !errors.Is(err, ErrIndexEntryTooBig) {
		t.Fatalf("long key: err = %v", err)
	}
	allocFail := func(n int) (int, error) { return 0, ErrLogFull }
	if _, err := BuildIndex(d, allocFail, []KV{{Key: []byte("k"), Val: []byte("v")}}, 2); !errors.Is(err, ErrLogFull) {
		t.Fatalf("alloc failure: err = %v", err)
	}
}

func TestIndexStepRejectsDamage(t *testing.T) {
	d := newDev(Config{})
	idx, _ := buildTestIndex(t, d, 1)
	c := d.Execute(Command{Op: OpRead, LBA: idx.Root})
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	good := append([]byte(nil), c.Data...)
	if s := IndexStep([]byte("key-0000"), good); s.Kind == StepCorrupt {
		t.Fatal("pristine node rejected")
	}
	// Damage every byte of the header region in turn; magic, level, or
	// entry-count corruption must never pass.
	for off := 0; off < 4; off++ {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xFF
		if s := IndexStep([]byte("key-0000"), bad); s.Kind != StepCorrupt {
			t.Fatalf("bad magic byte %d accepted: kind %d", off, s.Kind)
		}
	}
	// Truncated block.
	if s := IndexStep([]byte("key-0000"), good[:4]); s.Kind != StepCorrupt {
		t.Fatal("truncated block accepted")
	}
	// Entry count beyond the packed data walks off the block.
	bad := append([]byte(nil), good...)
	bad[6], bad[7] = 0xFF, 0xFF
	if s := IndexStep([]byte("key-0000"), bad); s.Kind != StepCorrupt {
		t.Fatal("inflated nKeys accepted")
	}
}
