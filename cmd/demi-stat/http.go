package main

// The -http view: run the httpd workload — an HTTP/1.1 server directly
// on catnip queues serving a Zipf-popular object tree to keep-alive
// clients, a fraction of them deliberately slow readers — and render
// what the telemetry saw: the httpd.* counter diff, the full stack
// counter diff underneath it, the per-route service-latency table, and
// the p50..p99.9 tail CCDF the paper's head-of-line arguments are
// about. The slow readers must show up as rx_ready_stalls (the bounded
// ready list parking, turning reader stalls into TCP backpressure)
// rather than as unbounded buffering.

import (
	"fmt"
	"time"

	demi "demikernel"
	"demikernel/internal/apps/httpd"
	"demikernel/internal/metrics"
	"demikernel/internal/telemetry"
	"demikernel/internal/workload"
)

const httpStatPort = 8080

func runHTTP(seed int64, n int, ringCap int) error {
	c := demi.NewCluster(seed)
	srvNode := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	cliNode := c.MustSpawn(demi.Catnip, demi.WithConfig(demi.NodeConfig{
		Host: 2, RxReadyCap: 4,
	}))
	cliNode.WaitTimeout = 5 * time.Second

	prod := workload.NewHTTPProduction(64, 1e6, seed)
	tree := httpd.NewTree()
	for _, o := range prod.Objects {
		tree.Add(o.Path, o.Body)
	}

	reg := telemetry.NewRegistry()
	srvNode.RegisterTelemetry(reg, "srv")
	cliNode.RegisterTelemetry(reg, "cli")

	srv := httpd.NewServer(srvNode.LibOS, tree)
	srv.EnableLatency()
	srv.RegisterTelemetry(reg, "httpd")
	if err := srv.Listen(httpStatPort); err != nil {
		return err
	}
	mode := "per-op tokens"
	if ringCap > 0 {
		srv.EnableRing(ringCap)
		mode = fmt.Sprintf("SQ/CQ rings (cap %d)", ringCap)
	}
	stop := make(chan struct{})
	defer close(stop)
	go srv.Run(stop)
	stopCli := cliNode.Background()
	defer stopCli()

	cl := httpd.NewClient(cliNode.LibOS)
	if err := cl.Connect(c.AddrOf(srvNode, httpStatPort)); err != nil {
		return err
	}

	before := reg.Snapshot()
	pending, stallLeft := 0, 0
	drain := func() error {
		for pending > 0 {
			resp, err := cl.ReadResponse()
			if err != nil {
				return err
			}
			if resp.Status != 200 {
				return fmt.Errorf("unexpected status %d", resp.Status)
			}
			pending--
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if err := cl.SendRequest(prod.Paths.Next(), false); err != nil {
			return err
		}
		pending++
		if stallLeft == 0 {
			stallLeft = prod.Stalls.NextStall()
		} else {
			stallLeft--
		}
		if stallLeft == 0 || pending >= 16 {
			if pending > 1 {
				// This lane stalled: it is a genuinely slow reader, so
				// give the unharvested responses time to pile into the
				// TCP receive buffer before the burst drain — that is
				// what parks the bounded ready list.
				time.Sleep(2 * time.Millisecond)
			}
			if err := drain(); err != nil {
				return err
			}
		}
	}
	if err := drain(); err != nil {
		return err
	}
	after := reg.Snapshot()

	fmt.Printf("demi-stat -http: %d keep-alive GETs over %s, Zipf(1.2) over %d objects, slow-read episodes\n\n",
		n, mode, len(prod.Objects))
	fmt.Print(after.Diff(before).NonZero().String())
	fmt.Println()
	fmt.Println(srv.LatencyTable().String())
	if h := srv.RouteHistogram("obj"); h != nil && h.Count() > 0 {
		tail := metrics.NewTable("/obj service-latency tail (virtual)",
			"p50", "p90", "p99", "p99.9", "max")
		tail.AddRow(h.Percentile(50), h.Percentile(90), h.Percentile(99),
			h.Percentile(99.9), h.Max())
		fmt.Println(tail.String())
	}

	if got := srv.Stats().Requests; got != int64(n) {
		return fmt.Errorf("served %d of %d requests", got, n)
	}
	if stalls := cliNode.Catnip.RxStalls(); stalls < 1 {
		return fmt.Errorf("slow readers never parked the bounded ready list (rx_ready_stalls=%d)", stalls)
	}
	return nil
}
