package queue

import (
	"sync"
	"testing"
	"time"

	"demikernel/internal/simclock"
)

// TestCompleterReadyListEnableOrder is the regression test for the
// enable-order gap: a completion that arrives BEFORE EnableReadyList
// used to be invisible to the ready list forever — an event loop that
// attached to an already-running libOS silently missed it. Now the
// enable sweeps done-but-unconsumed tokens in.
func TestCompleterReadyListEnableOrder(t *testing.T) {
	c := NewCompleter()
	qt, done := c.NewToken()
	// Complete FIRST...
	done(Completion{Kind: OpPop, Cost: simclock.Lat(7)})
	// ...enable SECOND.
	c.EnableReadyList()

	ready := c.TakeReady(nil)
	if len(ready) != 1 || ready[0] != qt {
		t.Fatalf("ready = %v, want [%v]: pre-enable completion lost", ready, qt)
	}
	comp, ok, err := c.TryWait(qt)
	if err != nil || !ok {
		t.Fatalf("TryWait after sweep: ok=%v err=%v", ok, err)
	}
	if comp.Cost != 7 {
		t.Fatalf("Cost = %v, want 7", comp.Cost)
	}
}

// TestCompleterReadyListNoDoublePublish checks the sweep and a racing
// completion publish each token exactly once: tokens completed before
// enable, after enable, and concurrently with enable must each appear
// exactly one time in the ready list.
func TestCompleterReadyListNoDoublePublish(t *testing.T) {
	c := NewCompleter()
	const n = 200
	tokens := make([]QToken, n)
	dones := make([]DoneFunc, n)
	for i := range tokens {
		tokens[i], dones[i] = c.NewToken()
	}
	// First half completes before enable.
	for i := 0; i < n/2; i++ {
		dones[i](Completion{Kind: OpPush})
	}
	// Second half completes concurrently with the enable sweep.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := n / 2; i < n; i++ {
			dones[i](Completion{Kind: OpPush})
		}
	}()
	c.EnableReadyList()
	wg.Wait()

	seen := make(map[QToken]int)
	for _, qt := range c.TakeReady(nil) {
		seen[qt]++
	}
	// A racing completion may land after the sweep and before TakeReady;
	// drain once more for stragglers.
	for _, qt := range c.TakeReady(nil) {
		seen[qt]++
	}
	if len(seen) != n {
		t.Fatalf("ready list has %d distinct tokens, want %d", len(seen), n)
	}
	for qt, k := range seen {
		if k != 1 {
			t.Fatalf("token %v published %d times, want exactly once", qt, k)
		}
	}
}

// TestCompleterReadyListSkipsClaimedTokens: a token with a blocking
// waiter subscribed must not be swept into the ready list — the waiter's
// channel is its sole delivery path.
func TestCompleterReadyListSkipsClaimedTokens(t *testing.T) {
	c := NewCompleter()
	qt, done := c.NewToken()
	ch, err := c.WaitChan(qt)
	if err != nil {
		t.Fatal(err)
	}
	done(Completion{Kind: OpPop})
	c.EnableReadyList()
	if ready := c.TakeReady(nil); len(ready) != 0 {
		t.Fatalf("ready = %v, want empty: claimed token swept", ready)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("waiter channel never delivered")
	}
}

// TestCompleterChannelHandoffRaceStress exercises the complete()→WaitChan
// handoff that happens outside the shard lock, under -race: many tokens,
// each with one concurrent completer and one concurrent subscriber, in
// both orders. Every waiter must receive exactly one completion.
func TestCompleterChannelHandoffRaceStress(t *testing.T) {
	c := NewCompleter()
	const n = 2000
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		qt, done := c.NewToken()
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			done(Completion{Kind: OpPop, Cost: simclock.Lat(i)})
		}(i)
		go func() {
			defer wg.Done()
			// Subscribe, retrying the only legal race (claimed tokens
			// cannot happen here; unknown cannot happen because the
			// token is consumed only through this channel).
			ch, err := c.WaitChan(qt)
			if err != nil {
				t.Errorf("WaitChan: %v", err)
				return
			}
			select {
			case <-ch:
			case <-time.After(5 * time.Second):
				t.Error("completion never delivered")
			}
		}()
	}
	wg.Wait()
	if out := c.Outstanding(); out != 0 {
		t.Fatalf("Outstanding = %d after all handoffs, want 0", out)
	}
	if w := c.Wakeups(); w != n {
		t.Fatalf("Wakeups = %d, want %d (exactly one per token)", w, n)
	}
}

// TestCompleterSpanStamps checks qtoken span plumbing end to end at the
// completer level: issue/submit/complete/consume produce one summary per
// (qd, op) with the op's virtual cost in the histogram.
func TestCompleterSpanStamps(t *testing.T) {
	c := NewCompleter()
	c.Spans().Enable()
	defer c.Spans().Disable()

	qt, done := c.NewTokenFor(3)
	c.MarkSubmit(qt)
	done(Completion{Kind: OpPop, Cost: simclock.Lat(123)})
	if _, ok, err := c.TryWait(qt); !ok || err != nil {
		t.Fatalf("TryWait: ok=%v err=%v", ok, err)
	}

	sums := c.Spans().Summaries()
	if len(sums) != 1 {
		t.Fatalf("got %d summaries, want 1: %+v", len(sums), sums)
	}
	s := sums[0]
	if s.QD != 3 || s.Kind != int(OpPop) || s.Ops != 1 || s.Errs != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Lat.P50 != 123 {
		t.Fatalf("span latency P50 = %v, want 123 (virtual cost)", s.Lat.P50)
	}
}

// TestCompleterSpansDisabledNoSidecar: with spans off, tokens must not
// allocate stamp sidecars (the hot path depends on it).
func TestCompleterSpansDisabledNoSidecar(t *testing.T) {
	c := NewCompleter()
	qt, done := c.NewTokenFor(1)
	c.MarkSubmit(qt) // must be a cheap no-op
	done(Completion{Kind: OpPush})
	if _, ok, err := c.TryWait(qt); !ok || err != nil {
		t.Fatalf("TryWait: ok=%v err=%v", ok, err)
	}
	if sums := c.Spans().Summaries(); len(sums) != 0 {
		t.Fatalf("spans recorded while disabled: %+v", sums)
	}
}
