package spdk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"demikernel/internal/simclock"
)

// This file implements the accelerator-specific storage layout the paper
// sketches in §5.3: because each Demikernel libOS serves a single
// application, it need not pay for a general-purpose UNIX file system; a
// log-structured record store is enough and much cheaper.
//
// On-device layout: an append-only log of records packed across blocks.
//
//	record := magic(4) fileID(4) len(4) crc32(4) payload(len)
//
// fileID 0 is reserved for file-creation records whose payload is the
// file name; data records reference the fileID assigned at creation.
// Recovery is a single forward scan that stops at the first invalid
// record.

// recordMagic marks the start of every record.
const recordMagic = 0xDEB10B05

// recordHdrLen is the fixed record header size.
const recordHdrLen = 16

// Errors returned by the blob store.
var (
	ErrNoSuchFile   = errors.New("spdk/blob: no such file")
	ErrNoSuchRecord = errors.New("spdk/blob: record index out of range")
	ErrLogFull      = errors.New("spdk/blob: log full")
)

type recordRef struct {
	off int // byte offset of the payload in the log
	len int
}

// File is one named record stream in a Store.
type File struct {
	store *Store
	id    uint32
	name  string
	recs  []recordRef
}

// Store is a log-structured record store over one device namespace.
// It is safe for concurrent use.
type Store struct {
	dev *Device

	mu     sync.Mutex
	tail   int // next free byte offset in the log
	byName map[string]*File
	byID   map[uint32]*File
	nextID uint32
	// tailBlk caches the partially written tail block so appends are
	// read-modify-write-free.
	tailBlk []byte
	// hiBlk is the lowest LBA handed out to raw-block allocations
	// (AllocBlocks): the log grows up from 0, raw blocks grow down from
	// the top. Raw allocations are derived state (the block index is
	// rebuilt at open), so recovery resets hiBlk to the namespace top.
	hiBlk int
}

// NewStore opens (and recovers) the store on dev. A fresh device yields an
// empty store; a device carrying a previous log is scanned and its files
// and records re-indexed.
func NewStore(dev *Device) (*Store, simclock.Lat, error) {
	s := &Store{
		dev:     dev,
		byName:  make(map[string]*File),
		byID:    make(map[uint32]*File),
		tailBlk: make([]byte, BlockSize),
	}
	cost, err := s.recover()
	return s, cost, err
}

// recover scans the log forward, rebuilding the index. A device error
// mid-scan (controller reset, injected media error) is returned rather
// than silently treated as the end of the log — a truncated recovery
// would orphan durable records — so the caller can retry; each attempt
// starts from a clean slate.
func (s *Store) recover() (simclock.Lat, error) {
	s.byName = make(map[string]*File)
	s.byID = make(map[uint32]*File)
	s.nextID = 0
	s.hiBlk = s.dev.NumBlocks()
	var cost simclock.Lat
	off := 0
	for {
		hdr, c, err := s.readBytes(off, recordHdrLen)
		cost += c
		if errors.Is(err, ErrOutOfRange) {
			break // ran off the namespace: log ends here
		}
		if err != nil {
			return cost, err // device error: the scan must be retried
		}
		if binary.BigEndian.Uint32(hdr[0:4]) != recordMagic {
			break
		}
		fileID := binary.BigEndian.Uint32(hdr[4:8])
		plen := int(binary.BigEndian.Uint32(hdr[8:12]))
		wantCRC := binary.BigEndian.Uint32(hdr[12:16])
		payload, c2, err := s.readBytes(off+recordHdrLen, plen)
		cost += c2
		if err != nil && !errors.Is(err, ErrOutOfRange) {
			return cost, err
		}
		if err != nil || crc32.ChecksumIEEE(payload) != wantCRC {
			break // torn or corrupt record: the log ends before it
		}
		if fileID == 0 {
			s.indexCreate(string(payload))
		} else if f, ok := s.byID[fileID]; ok {
			f.recs = append(f.recs, recordRef{off: off + recordHdrLen, len: plen})
		}
		off += recordHdrLen + plen
	}
	s.tail = off
	// Prime the tail block cache.
	blk := off / BlockSize
	if blk < s.dev.NumBlocks() {
		c := s.dev.Execute(Command{Op: OpRead, LBA: blk})
		cost += c.Cost
		if c.Err != nil {
			return cost, c.Err
		}
		copy(s.tailBlk, c.Data)
	}
	return cost, nil
}

// AllocBlocks reserves n contiguous raw blocks from the top of the
// namespace, below any previous reservation, and returns the first LBA.
// The record log and raw allocations share the namespace from opposite
// ends; ErrLogFull when they would meet. Reservations are not persisted:
// they hold derived state (the block-resident index) that is rebuilt at
// open time.
func (s *Store) AllocBlocks(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("spdk/blob: bad allocation size %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	lo := s.hiBlk - n
	if lo*BlockSize < s.tail {
		return 0, ErrLogFull
	}
	s.hiBlk = lo
	return lo, nil
}

func (s *Store) indexCreate(name string) *File {
	s.nextID++
	f := &File{store: s, id: s.nextID, name: name}
	s.byName[name] = f
	s.byID[f.id] = f
	return f
}

// Open returns the named file, creating it (with a durable creation
// record) if needed. The returned cost covers any device writes.
func (s *Store) Open(name string) (*File, simclock.Lat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.byName[name]; ok {
		return f, 0, nil
	}
	cost, err := s.appendLocked(0, []byte(name))
	if err != nil {
		return nil, cost, err
	}
	return s.indexCreate(name), cost, nil
}

// Lookup returns an existing file without creating it.
func (s *Store) Lookup(name string) (*File, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.byName[name]
	return f, ok
}

// Files returns the names of all files.
func (s *Store) Files() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byName))
	for name := range s.byName {
		out = append(out, name)
	}
	return out
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// NumRecords returns the number of records appended to the file.
func (f *File) NumRecords() int {
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	return len(f.recs)
}

// Append durably appends one record and returns the charged device cost.
func (f *File) Append(payload []byte) (simclock.Lat, error) {
	s := f.store
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.tail + recordHdrLen
	cost, err := s.appendLocked(f.id, payload)
	if err != nil {
		return cost, err
	}
	f.recs = append(f.recs, recordRef{off: start, len: len(payload)})
	return cost, nil
}

// Read returns record i of the file.
func (f *File) Read(i int) ([]byte, simclock.Lat, error) {
	s := f.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(f.recs) {
		return nil, 0, fmt.Errorf("%w: %d of %d", ErrNoSuchRecord, i, len(f.recs))
	}
	ref := f.recs[i]
	data, cost, err := s.readBytes(ref.off, ref.len)
	return data, cost, err
}

// appendLocked writes one record at the tail.
func (s *Store) appendLocked(fileID uint32, payload []byte) (simclock.Lat, error) {
	rec := make([]byte, 0, recordHdrLen+len(payload))
	rec = binary.BigEndian.AppendUint32(rec, recordMagic)
	rec = binary.BigEndian.AppendUint32(rec, fileID)
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)

	if s.tail+len(rec) > s.hiBlk*BlockSize {
		// The log may not grow into the raw-block region (AllocBlocks).
		return 0, ErrLogFull
	}

	// Work on a scratch copy of the tail block and commit it (and the
	// tail offset) only after every device write succeeded. A failed
	// write — injected error, controller reset — therefore leaves the
	// in-memory state untouched, and retrying the append rewrites the
	// same byte range idempotently.
	var cost simclock.Lat
	off := s.tail
	tb := append([]byte(nil), s.tailBlk...)
	for len(rec) > 0 {
		blk := off / BlockSize
		blkOff := off % BlockSize
		n := copy(tb[blkOff:], rec)
		c := s.dev.Execute(Command{Op: OpWrite, LBA: blk, Data: tb})
		if c.Err != nil {
			return cost, c.Err
		}
		cost += c.Cost
		rec = rec[n:]
		off += n
		if off%BlockSize == 0 {
			// Moved past a block boundary: fresh tail block.
			for i := range tb {
				tb[i] = 0
			}
		}
	}
	s.tail = off
	copy(s.tailBlk, tb)
	return cost, nil
}

// readBytes reads an arbitrary byte range through block reads.
func (s *Store) readBytes(off, n int) ([]byte, simclock.Lat, error) {
	if n < 0 || off < 0 || off+n > s.dev.NumBlocks()*BlockSize {
		return nil, 0, ErrOutOfRange
	}
	out := make([]byte, 0, n)
	var cost simclock.Lat
	for n > 0 {
		blk := off / BlockSize
		blkOff := off % BlockSize
		c := s.dev.Execute(Command{Op: OpRead, LBA: blk})
		if c.Err != nil {
			return nil, cost, c.Err
		}
		cost += c.Cost
		take := min(n, BlockSize-blkOff)
		out = append(out, c.Data[blkOff:blkOff+take]...)
		off += take
		n -= take
	}
	return out, cost, nil
}
