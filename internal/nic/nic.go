// Package nic simulates a DPDK-class kernel-bypass NIC (Table 1, left
// column of the paper): raw descriptor rings, burst polling, RSS receive
// steering, and a small hardware filter table for offloaded queue filters
// (§4.2, §4.3).
//
// The device deliberately provides *no* OS functionality: no protocol
// stack, no buffer management beyond its rings, no sockets. "To use
// kernel-bypass accelerators in this category, applications must supply
// their own I/O stack" — that stack is package netstack, and the libOS
// that ties them together is internal/libos/catnip.
//
// Locking is partitioned so that N shard workers can poll N receive
// queues concurrently without contending on a device-wide lock: each
// receive ring has its own (cache-line padded) mutex, the wire drain is
// guarded by a separate TryLock'd mutex so exactly one poller moves
// frames from the fabric into the rings while the rest go straight to
// their own ring, and the counters are atomics.
package nic

import (
	"fmt"
	"sync"
	"sync/atomic"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// Config describes a simulated NIC.
type Config struct {
	MAC       fabric.MAC
	RxQueues  int // number of receive queues (RSS spreads across them)
	RingDepth int // descriptor ring depth per queue
}

// Stats counts device events.
type Stats struct {
	TxFrames    int64
	RxFrames    int64
	RxDropped   int64 // descriptor ring full
	FilterDrops int64 // frames dropped by a hardware filter
	FilterEvals int64 // hardware filter evaluations
	SteerDrops  int64 // frames owned by no tenant queue group (multi-tenant NICs)
	DMABytes    int64
	Regions     int64 // memory regions registered via membuf
	RxFlushed   int64 // ring frames discarded by FlushRings (node crash)
}

// FilterAction tells the device what to do with a frame matching a
// hardware filter.
type FilterAction int

const (
	// ActionSteer steers matching frames to a specific receive queue.
	ActionSteer FilterAction = iota
	// ActionDrop drops matching frames in hardware.
	ActionDrop
)

// HWFilter is one entry in the device's filter table. Match inspects the
// raw frame. Running in "hardware" costs the device the offloaded filter
// cost per evaluation but zero host CPU (§4.2: "library OSes always
// implement filters directly on supported devices but default to using
// the CPU if necessary").
type HWFilter struct {
	Match  func(frame []byte) bool
	Action FilterAction
	Queue  int
}

// rxQueue is one receive ring plus its own lock, padded out to a cache
// line so two shards hammering adjacent queues never share a line for
// the lock word (classic false sharing; §3.1's "never share state across
// cores" applies to the metadata too).
type rxQueue struct {
	mu   sync.Mutex
	ring *ring
	_    [64 - 16]byte //nolint:unused // false-sharing pad
}

// Device is a simulated kernel-bypass NIC attached to a fabric switch.
// All methods are safe for concurrent use; per-queue RxBurst calls from
// distinct goroutines proceed in parallel.
type Device struct {
	model *simclock.CostModel
	cfg   Config
	port  *fabric.Port

	// drainMu serialises moving frames from the fabric port into the
	// receive rings. Pollers TryLock it: whoever wins drains for
	// everyone, the rest skip straight to popping their own ring.
	drainMu sync.Mutex

	// mu guards classification-plane *mutations* only: the master
	// filter list, the queue-group set, and group steering rules. The
	// RX data path never takes it — every mutation compiles a fresh
	// immutable classTable and publishes it through the class pointer
	// (copy-on-write), so steady-state classification is a single
	// atomic load. This replaces the former filterMu.RLock-per-frame:
	// an RLock is a shared-cacheline RMW on every received frame, which
	// is exactly the cross-core traffic a multi-queue NIC exists to
	// avoid.
	mu        sync.Mutex
	filters   []HWFilter // master copy; snapshot lives in class
	groups    []*QueueGroup
	nextQueue int             // next unclaimed rx queue index (groups claim ranges)
	rssQueues int             // RSS indirection width (0 = all queues); see flowpin.go
	pins      map[FlowKey]int // exact-match flow pins; see flowpin.go

	class atomic.Pointer[classTable]

	rx []*rxQueue

	sched *txScheduler

	txFrames    atomic.Int64
	rxFrames    atomic.Int64
	rxDropped   atomic.Int64
	filterDrops atomic.Int64
	filterEvals atomic.Int64
	steerDrops  atomic.Int64
	dmaBytes    atomic.Int64
	regions     atomic.Int64
	rxFlushed   atomic.Int64
}

// New creates a NIC with cfg attached to sw. It announces its MAC to the
// switch immediately (as link-up traffic would) so unicast delivery works
// from the first frame.
func New(model *simclock.CostModel, sw *fabric.Switch, cfg Config) *Device {
	if cfg.RxQueues <= 0 {
		cfg.RxQueues = 1
	}
	if cfg.RingDepth <= 0 {
		cfg.RingDepth = 512
	}
	// The wire-side buffer is deeper than the descriptor rings so that
	// overflow manifests where it does on real hardware: as RxDropped at
	// the device ring, not as silent loss in the fabric.
	portDepth := cfg.RingDepth * cfg.RxQueues * 4
	if portDepth < 4096 {
		portDepth = 4096
	}
	d := &Device{
		model: model,
		cfg:   cfg,
		port:  sw.NewPort(portDepth),
	}
	d.rx = make([]*rxQueue, cfg.RxQueues)
	for i := range d.rx {
		d.rx[i] = &rxQueue{ring: newRing(cfg.RingDepth)}
	}
	d.sched = newTxScheduler()
	d.class.Store(&classTable{})
	return d
}

// MAC returns the device's hardware address.
func (d *Device) MAC() fabric.MAC { return d.cfg.MAC }

// PortID returns the fabric port this NIC is attached to, the handle
// chaos schedules use to target the device's link.
func (d *Device) PortID() int { return d.port.ID() }

// NumRxQueues returns the configured receive-queue count.
func (d *Device) NumRxQueues() int { return d.cfg.RxQueues }

// RegisterRegion implements membuf.RegistrationSink: the device records
// that a DMA-able region exists. (A real NIC would program its IOMMU
// mapping here.)
func (d *Device) RegisterRegion(id uint64, mem []byte) {
	d.regions.Add(1)
}

// Tx transmits one raw Ethernet frame carrying prior accumulated cost.
// The device charges its per-packet processing plus DMA of the payload.
func (d *Device) Tx(data []byte, cost simclock.Lat) {
	d.TxFrame(fabric.Frame{Data: data, Cost: cost})
}

// TxFrame transmits one frame, pooled backing buffer and all. Ownership
// of f.Buf transfers to the fabric (and onward to the receiver); the
// caller must not touch f.Data after the call. The TX path is lock-free
// on the device: counters are atomics and the fabric port does its own
// synchronisation, so shards transmit concurrently without rendezvous.
func (d *Device) TxFrame(f fabric.Frame) {
	d.txFrames.Add(1)
	d.dmaBytes.Add(int64(len(f.Data)))
	f.Cost += d.model.NICProcessNS + d.model.DMACost(len(f.Data))
	d.port.Send(f)
}

// TxBurst transmits a batch of frames, as DPDK's tx_burst would.
func (d *Device) TxBurst(frames []fabric.Frame) {
	for _, f := range frames {
		d.TxFrame(f)
	}
}

// RxBurst polls up to max frames from the given receive queue, as DPDK's
// rx_burst would. It first drains the wire into the device's rings,
// applying hardware filters and RSS steering.
func (d *Device) RxBurst(queue, max int) []fabric.Frame {
	return d.AppendRxBurst(nil, queue, max)
}

// AppendRxBurst is RxBurst with caller-provided storage: frames are
// appended to dst (which may be a recycled slice with len 0), so a
// steady-state poll loop runs without allocating the burst slice.
// Ownership of each frame's pooled buffer (Frame.Buf) passes to the
// caller, who must Release every frame once ingested.
//
// Concurrent calls on different queues do not serialise against each
// other: one caller at a time performs the wire drain (TryLock), and
// each queue's ring has its own lock.
func (d *Device) AppendRxBurst(dst []fabric.Frame, queue, max int) []fabric.Frame {
	if queue < 0 || queue >= len(d.rx) {
		panic(fmt.Sprintf("nic: RxBurst on queue %d of %d", queue, len(d.rx)))
	}
	if d.drainMu.TryLock() {
		d.drainWireLocked()
		d.drainMu.Unlock()
	}
	q := d.rx[queue]
	q.mu.Lock()
	start := len(dst)
	for len(dst)-start < max {
		f, ok := q.ring.pop()
		if !ok {
			break
		}
		dst = append(dst, f)
	}
	q.mu.Unlock()
	if n := len(dst) - start; n > 0 {
		fabric.RecordBurstSize(n)
	}
	return dst
}

// drainWireLocked moves frames from the fabric port into receive rings.
// Caller holds drainMu. The classification table is loaded once per
// drain — zero locks however many frames arrive; a table mutation
// racing the drain applies from the next drain on, exactly as a real
// NIC applies filter-table writes asynchronously to its RX pipeline.
func (d *Device) drainWireLocked() {
	t := d.class.Load()
	for {
		f, ok := d.port.Poll()
		if !ok {
			return
		}
		// Hardware receive processing + DMA into host memory.
		f.Cost += d.model.NICProcessNS + d.model.DMACost(len(f.Data))
		d.dmaBytes.Add(int64(len(f.Data)))

		qi, verdict := d.classify(t, &f)
		switch verdict {
		case classDropFilter:
			d.filterDrops.Add(1)
			f.Release()
			continue
		case classDropUnowned:
			d.steerDrops.Add(1)
			telemetry.TraceInstant("nic", "steer-drop", int32(d.port.ID()), int64(len(f.Data)))
			f.Release()
			continue
		}
		g := t.queueOwner(qi)
		q := d.rx[qi]
		q.mu.Lock()
		pushed := q.ring.push(f)
		q.mu.Unlock()
		if pushed {
			d.rxFrames.Add(1)
			if g != nil {
				g.rxFrames.Add(1)
			}
		} else {
			d.rxDropped.Add(1)
			if g != nil {
				g.rxDropped.Add(1)
			}
			telemetry.TraceInstant("nic", "rx-ring-drop", int32(qi), int64(len(f.Data)))
			f.Release()
		}
	}
}

// classification verdicts.
type classVerdict int8

const (
	classOK          classVerdict = iota
	classDropFilter               // dropped by a hardware filter
	classDropUnowned              // no tenant queue group owns the frame
)

// classify steers one frame using the immutable snapshot t: device-wide
// hardware filters first (first match wins), then — on a multi-tenant
// device — queue-group ownership (dst MAC, or ARP target IP for
// broadcasts) and the owning group's steering rules, and finally RSS.
// On a device with queue groups a frame owned by nobody is dropped:
// isolation means no tenant's ring is a dumping ground for stray
// traffic.
func (d *Device) classify(t *classTable, f *fabric.Frame) (queue int, verdict classVerdict) {
	for i := range t.filters {
		flt := &t.filters[i]
		d.filterEvals.Add(1)
		f.Cost += d.model.OffloadedFilterCost()
		if flt.Match(f.Data) {
			if flt.Action == ActionDrop {
				return 0, classDropFilter
			}
			return flt.Queue % len(d.rx), classOK
		}
	}
	if t.hasGroups {
		g := t.ownerOf(f.Data)
		if g == nil {
			return 0, classDropUnowned
		}
		return g.steer(d, f), classOK
	}
	if len(t.pins) > 0 {
		if k, ok := FlowKeyOf(f.Data); ok {
			d.filterEvals.Add(1)
			f.Cost += d.model.OffloadedFilterCost()
			if q, pinned := t.pins[k]; pinned {
				return q, classOK
			}
		}
	}
	return d.rss(t, f.Data), classOK
}

// AddFilter installs a hardware filter and returns its table index.
// Filters run in installation order; the first match wins. The update
// is copy-on-write: a fresh classification snapshot is compiled and
// published atomically, so concurrent RX bursts never block on it.
func (d *Device) AddFilter(f HWFilter) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.filters = append(d.filters, f)
	d.publishLocked()
	return len(d.filters) - 1
}

// ClearFilters removes all device-wide hardware filters (group steering
// rules are per-group state and unaffected).
func (d *Device) ClearFilters() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.filters = nil
	d.publishLocked()
}

// FNV-1a constants for the inline flow hash below.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// RSSHashFlow is the device's RSS hash as a pure function of the flow
// 4-tuple: FNV-1a over the 12 bytes (srcIP, dstIP, srcPort, dstPort) in
// on-the-wire order, exactly as rss() reads them out of an IPv4 frame.
// It stands in for a Toeplitz hash; the properties that matter are a
// stable flow→queue mapping and that software (a sharded libOS choosing
// a source port so the *reply* lands on a particular worker's queue —
// §3.1's share-nothing partitioning) can compute the same mapping the
// hardware applies.
func RSSHashFlow(srcIP, dstIP [4]byte, srcPort, dstPort uint16) uint32 {
	h := uint32(fnvOffset32)
	hashByte := func(b byte) {
		h ^= uint32(b)
		h *= fnvPrime32
	}
	hashByte(srcIP[0])
	hashByte(srcIP[1])
	hashByte(srcIP[2])
	hashByte(srcIP[3])
	hashByte(dstIP[0])
	hashByte(dstIP[1])
	hashByte(dstIP[2])
	hashByte(dstIP[3])
	hashByte(byte(srcPort >> 8))
	hashByte(byte(srcPort))
	hashByte(byte(dstPort >> 8))
	hashByte(byte(dstPort))
	return h
}

// RSSQueueFlow maps a flow 4-tuple onto one of queues receive queues,
// matching the device's classify() steering bit-for-bit.
func RSSQueueFlow(srcIP, dstIP [4]byte, srcPort, dstPort uint16, queues int) int {
	if queues <= 1 {
		return 0
	}
	return int(RSSHashFlow(srcIP, dstIP, srcPort, dstPort) % uint32(queues))
}

// rss hashes the flow identity of a frame onto a receive queue. For IPv4
// frames it hashes the source/destination addresses and the first four
// bytes of the transport header (ports); otherwise it hashes the source
// MAC. This stands in for a Toeplitz hash: the property that matters is a
// stable flow→queue mapping.
//
// The hash is inlined FNV-1a rather than hash/fnv: the stdlib hasher is
// an interface value that escapes, which would put one heap allocation
// on every received frame. The reduction is an unsigned modulo —
// int(h.Sum32()) % n, the previous form, yields a negative index on
// 32-bit ints for half the hash space.
func (d *Device) rss(t *classTable, data []byte) int {
	w := t.rssQueues
	if w <= 0 || w > len(d.rx) {
		w = len(d.rx)
	}
	return int(rssHash(data) % uint32(w))
}

// rssHash is the raw flow hash rss() reduces: queue groups reduce the
// same hash modulo their own queue count, so a group of n queues sees
// the same flow→queue spreading a dedicated n-queue device would.
func rssHash(data []byte) uint32 {
	h := uint32(fnvOffset32)
	const ethHdr = 14
	if len(data) >= ethHdr+24 && data[12] == 0x08 && data[13] == 0x00 {
		for _, b := range data[ethHdr+12 : ethHdr+24] { // src+dst IPv4, ports
			h ^= uint32(b)
			h *= fnvPrime32
		}
	} else {
		for _, b := range data[6:12] { // src MAC
			h ^= uint32(b)
			h *= fnvPrime32
		}
	}
	return h
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		TxFrames:    d.txFrames.Load(),
		RxFrames:    d.rxFrames.Load(),
		RxDropped:   d.rxDropped.Load(),
		FilterDrops: d.filterDrops.Load(),
		FilterEvals: d.filterEvals.Load(),
		SteerDrops:  d.steerDrops.Load(),
		DMABytes:    d.dmaBytes.Load(),
		Regions:     d.regions.Load(),
		RxFlushed:   d.rxFlushed.Load(),
	}
}

// FlushRings empties every receive ring, releasing pooled frames back to
// their pools, and returns the number of frames discarded. It first
// performs a normal wire drain so frames already delivered by the fabric
// are classified and counted as RxFrames, then flushes the rings,
// counting each discarded frame in RxFlushed — the device-side half of a
// node crash: when a kernel-bypass application dies, the frames its
// stack never ingested must still be reclaimed, or the pool leaks (§3:
// the OS can no longer clean up after the dead process; here the
// simulated device model does it on the stack's behalf at Crash time).
//
// The stack-level conservation law picks up the new bucket:
//
//	nic.RxFrames == Σ stack.FramesIn + Σ ring occupancy + nic.RxFlushed
func (d *Device) FlushRings() int {
	d.drainMu.Lock()
	d.drainWireLocked()
	d.drainMu.Unlock()
	t := d.class.Load()
	n := 0
	for qi := range d.rx {
		if flushed := d.flushQueue(qi); flushed > 0 {
			if g := t.queueOwner(qi); g != nil {
				g.rxFlushed.Add(int64(flushed))
			}
			n += flushed
		}
	}
	if n > 0 {
		d.rxFlushed.Add(int64(n))
		telemetry.TraceInstant("nic", "rx-flush", int32(d.port.ID()), int64(n))
	}
	return n
}

// flushQueue empties one receive ring, releasing pooled frames, and
// returns the count discarded. Callers account rxFlushed.
func (d *Device) flushQueue(qi int) int {
	q := d.rx[qi]
	n := 0
	q.mu.Lock()
	for {
		f, ok := q.ring.pop()
		if !ok {
			break
		}
		f.Release()
		n++
	}
	q.mu.Unlock()
	return n
}

// QueueDepth reports the current occupancy of a receive queue, after
// draining the wire. Useful in tests and the steering experiment.
func (d *Device) QueueDepth(queue int) int {
	d.drainMu.Lock()
	d.drainWireLocked()
	d.drainMu.Unlock()
	return d.RxOccupancy(queue)
}

// RxOccupancy reports the current occupancy of a receive queue WITHOUT
// draining the wire first. Telemetry gauges use this: a metrics sample
// must observe the device, not perturb it (QueueDepth's drain would move
// frames from the fabric into the rings as a side effect of being read).
func (d *Device) RxOccupancy(queue int) int {
	if queue < 0 || queue >= len(d.rx) {
		return 0
	}
	q := d.rx[queue]
	q.mu.Lock()
	n := q.ring.len()
	q.mu.Unlock()
	return n
}

// RegisterTelemetry lifts the device counters into a telemetry registry
// under prefix (e.g. "nic"). Counter sample funcs snapshot Stats() at
// read time; per-queue occupancy gauges use the non-draining
// RxOccupancy so sampling never mutates device state.
func (d *Device) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	stat := func(read func(Stats) int64) func() int64 {
		return func() int64 { return read(d.Stats()) }
	}
	r.RegisterFunc(prefix+".tx_frames", stat(func(s Stats) int64 { return s.TxFrames }))
	r.RegisterFunc(prefix+".rx_frames", stat(func(s Stats) int64 { return s.RxFrames }))
	r.RegisterFunc(prefix+".rx_dropped", stat(func(s Stats) int64 { return s.RxDropped }))
	r.RegisterFunc(prefix+".filter_drops", stat(func(s Stats) int64 { return s.FilterDrops }))
	r.RegisterFunc(prefix+".filter_evals", stat(func(s Stats) int64 { return s.FilterEvals }))
	r.RegisterFunc(prefix+".steer_drops", stat(func(s Stats) int64 { return s.SteerDrops }))
	r.RegisterFunc(prefix+".dma_bytes", stat(func(s Stats) int64 { return s.DMABytes }))
	r.RegisterFunc(prefix+".regions", stat(func(s Stats) int64 { return s.Regions }))
	r.RegisterFunc(prefix+".rx_flushed", stat(func(s Stats) int64 { return s.RxFlushed }))
	r.RegisterFunc(prefix+".rss_queues", func() int64 { return int64(d.RSSQueues()) })
	r.RegisterFunc(prefix+".pinned_flows", func() int64 { return int64(d.PinnedFlows()) })
	for q := 0; q < d.cfg.RxQueues; q++ {
		q := q
		r.RegisterFunc(fmt.Sprintf("%s.rxq%d.occupancy", prefix, q), func() int64 {
			return int64(d.RxOccupancy(q))
		})
	}
}
