// Package spdk simulates an SPDK-class kernel-bypass NVMe device (Table 1,
// left column of the paper, storage side): a namespace of fixed-size
// blocks accessed through asynchronous submission/completion queue pairs,
// with device latencies charged from the cost model.
//
// Like its network sibling (package nic), the device offers no OS
// functionality: no file system, no page cache, no naming. The
// accelerator-specific log-structured layout the paper sketches in §5.3
// lives on top, in blob.go, and the storage libOS (internal/libos/catfish)
// exposes it through Demikernel file queues.
package spdk

import (
	"errors"
	"fmt"
	"sync"

	"demikernel/internal/simclock"
)

// BlockSize is the device's logical block size.
const BlockSize = 4096

// Op is an NVMe command opcode.
type Op int

// Command opcodes.
const (
	OpRead Op = iota
	OpWrite
	OpFlush
)

// Errors returned by Submit and surfaced in completions.
var (
	ErrQueueFull   = errors.New("spdk: submission queue full")
	ErrOutOfRange  = errors.New("spdk: LBA out of range")
	ErrBadLength   = errors.New("spdk: data length must equal one block")
	ErrDeviceReset = errors.New("spdk: device was reset")
)

// Command is one submission-queue entry.
type Command struct {
	Op  Op
	LBA int
	// Data holds exactly BlockSize bytes for writes; unused for reads
	// and flushes.
	Data []byte
}

// Completion is one completion-queue entry.
type Completion struct {
	ID   uint64
	Op   Op
	LBA  int
	Err  error
	Data []byte // block contents for reads
	Cost simclock.Lat
}

// Config describes a device.
type Config struct {
	NumBlocks  int // namespace capacity in blocks (default 16384)
	QueueDepth int // submission queue depth (default 256)
}

// Stats counts device events.
type Stats struct {
	Reads      int64
	Writes     int64
	Flushes    int64
	QueueFulls int64
	Errors     int64
	DMABytes   int64
}

// Device is a simulated NVMe namespace with one SQ/CQ pair. All methods
// are safe for concurrent use.
type Device struct {
	model *simclock.CostModel
	cfg   Config

	mu     sync.Mutex
	blocks map[int][]byte
	sq     []sqe
	cq     []Completion
	nextID uint64
	stats  Stats
}

type sqe struct {
	id  uint64
	cmd Command
}

// New creates a device.
func New(model *simclock.CostModel, cfg Config) *Device {
	if cfg.NumBlocks <= 0 {
		cfg.NumBlocks = 16384
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	return &Device{model: model, cfg: cfg, blocks: make(map[int][]byte)}
}

// NumBlocks returns the namespace capacity in blocks.
func (d *Device) NumBlocks() int { return d.cfg.NumBlocks }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Submit enqueues a command and returns its completion ID. It fails fast
// with ErrQueueFull when the submission queue is at depth, as a polled
// NVMe driver would observe.
func (d *Device) Submit(cmd Command) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.sq) >= d.cfg.QueueDepth {
		d.stats.QueueFulls++
		return 0, ErrQueueFull
	}
	if cmd.Op == OpWrite && len(cmd.Data) != BlockSize {
		return 0, fmt.Errorf("%w: %d", ErrBadLength, len(cmd.Data))
	}
	d.nextID++
	id := d.nextID
	e := sqe{id: id, cmd: cmd}
	if cmd.Op == OpWrite {
		// The device DMAs the buffer at submission; keep a copy so the
		// caller may reuse its buffer immediately (completion-side
		// free-protection is the libOS's job, not the device's).
		e.cmd.Data = append([]byte(nil), cmd.Data...)
	}
	d.sq = append(d.sq, e)
	return id, nil
}

// Poll processes pending submissions and returns up to max completions
// (0 means all).
func (d *Device) Poll(max int) []Completion {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.processLocked()
	n := len(d.cq)
	if max > 0 && n > max {
		n = max
	}
	out := make([]Completion, n)
	copy(out, d.cq)
	d.cq = d.cq[:copy(d.cq, d.cq[n:])]
	return out
}

func (d *Device) processLocked() {
	for _, e := range d.sq {
		c := Completion{ID: e.id, Op: e.cmd.Op, LBA: e.cmd.LBA}
		switch e.cmd.Op {
		case OpRead:
			if e.cmd.LBA < 0 || e.cmd.LBA >= d.cfg.NumBlocks {
				c.Err = ErrOutOfRange
			} else {
				d.stats.Reads++
				d.stats.DMABytes += BlockSize
				blk, ok := d.blocks[e.cmd.LBA]
				data := make([]byte, BlockSize)
				if ok {
					copy(data, blk)
				}
				c.Data = data
				c.Cost = d.model.NVMeReadNS + d.model.DMACost(BlockSize)
			}
		case OpWrite:
			if e.cmd.LBA < 0 || e.cmd.LBA >= d.cfg.NumBlocks {
				c.Err = ErrOutOfRange
			} else {
				d.stats.Writes++
				d.stats.DMABytes += BlockSize
				d.blocks[e.cmd.LBA] = e.cmd.Data
				c.Cost = d.model.NVMeWriteNS + d.model.DMACost(BlockSize)
			}
		case OpFlush:
			d.stats.Flushes++
			c.Cost = d.model.NVMeWriteNS
		}
		if c.Err != nil {
			d.stats.Errors++
		}
		d.cq = append(d.cq, c)
	}
	d.sq = d.sq[:0]
}

// Execute submits cmd and polls until its completion arrives, returning
// it. It is the synchronous convenience used by the blob layer; other
// completions that surface first are queued back in order.
func (d *Device) Execute(cmd Command) Completion {
	id, err := d.Submit(cmd)
	if err != nil {
		return Completion{Op: cmd.Op, LBA: cmd.LBA, Err: err}
	}
	for {
		d.mu.Lock()
		d.processLocked()
		for i, c := range d.cq {
			if c.ID == id {
				d.cq = append(d.cq[:i], d.cq[i+1:]...)
				d.mu.Unlock()
				return c
			}
		}
		d.mu.Unlock()
	}
}

// Reset clears queues and storage, as a controller reset would.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, e := range d.sq {
		d.cq = append(d.cq, Completion{ID: e.id, Op: e.cmd.Op, LBA: e.cmd.LBA, Err: ErrDeviceReset})
	}
	d.sq = d.sq[:0]
	d.blocks = make(map[int][]byte)
}
