GO ?= go

.PHONY: all tier1 vet build test race chaos bench report clean

all: tier1

## tier1: the gate every PR must keep green — vet, build, full test
## suite, then a short -race pass over the concurrency-heavy packages
## (the chaos engine, the user TCP stack, the pinned-memory allocator).
tier1: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/chaos/ ./internal/netstack/ ./internal/membuf/

## chaos: just the fault-injection suite (root soak tests + engine).
chaos:
	$(GO) test -run 'TestChaos' -count=1 ./...

bench:
	$(GO) test -bench=. -benchmem .

## report: regenerate EXPERIMENTS.md's measured tables.
report:
	$(GO) run ./cmd/demi-bench -md EXPERIMENTS.md

clean:
	$(GO) clean ./...
