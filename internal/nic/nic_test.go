package nic

import (
	"testing"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
)

var (
	macA = fabric.MAC{0x02, 0, 0, 0, 0, 0xA}
	macB = fabric.MAC{0x02, 0, 0, 0, 0, 0xB}
)

func ethFrame(dst, src fabric.MAC, payload string) []byte {
	data := make([]byte, 0, 14+len(payload))
	data = append(data, dst[:]...)
	data = append(data, src[:]...)
	data = append(data, 0x08, 0x00)
	data = append(data, payload...)
	return data
}

func pair(t *testing.T) (*Device, *Device, *fabric.Switch) {
	t.Helper()
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 7)
	a := New(&model, sw, Config{MAC: macA})
	b := New(&model, sw, Config{MAC: macB})
	return a, b, sw
}

func TestTxRx(t *testing.T) {
	a, b, _ := pair(t)
	a.Tx(ethFrame(macB, macA, "ping"), 0)
	got := b.RxBurst(0, 8)
	if len(got) != 1 {
		t.Fatalf("RxBurst returned %d frames, want 1", len(got))
	}
	if string(got[0].Data[14:]) != "ping" {
		t.Fatalf("payload = %q", got[0].Data[14:])
	}
	if got[0].Cost == 0 {
		t.Fatal("no virtual cost accumulated on the rx path")
	}
	if a.Stats().TxFrames != 1 || b.Stats().RxFrames != 1 {
		t.Fatalf("stats: tx=%+v rx=%+v", a.Stats(), b.Stats())
	}
}

func TestRxBurstMax(t *testing.T) {
	a, b, _ := pair(t)
	for i := 0; i < 10; i++ {
		a.Tx(ethFrame(macB, macA, "x"), 0)
	}
	first := b.RxBurst(0, 4)
	if len(first) != 4 {
		t.Fatalf("burst = %d, want 4", len(first))
	}
	rest := b.RxBurst(0, 100)
	if len(rest) != 6 {
		t.Fatalf("rest = %d, want 6", len(rest))
	}
}

func TestRingOverflow(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 7)
	a := New(&model, sw, Config{MAC: macA})
	b := New(&model, sw, Config{MAC: macB, RingDepth: 4})
	for i := 0; i < 20; i++ {
		a.Tx(ethFrame(macB, macA, "burst"), 0)
	}
	got := b.RxBurst(0, 100)
	if len(got) != 4 {
		t.Fatalf("got %d frames, want ring depth 4", len(got))
	}
	if b.Stats().RxDropped != 16 {
		t.Fatalf("RxDropped = %d, want 16", b.Stats().RxDropped)
	}
}

func TestHardwareDropFilter(t *testing.T) {
	a, b, _ := pair(t)
	b.AddFilter(HWFilter{
		Match:  func(f []byte) bool { return len(f) > 14 && f[14] == 'D' },
		Action: ActionDrop,
	})
	a.Tx(ethFrame(macB, macA, "Drop me"), 0)
	a.Tx(ethFrame(macB, macA, "keep me"), 0)
	got := b.RxBurst(0, 8)
	if len(got) != 1 || string(got[0].Data[14:]) != "keep me" {
		t.Fatalf("filter failed: %d frames", len(got))
	}
	st := b.Stats()
	if st.FilterDrops != 1 {
		t.Fatalf("FilterDrops = %d, want 1", st.FilterDrops)
	}
	if st.FilterEvals != 2 {
		t.Fatalf("FilterEvals = %d, want 2", st.FilterEvals)
	}
}

func TestSteeringFilter(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 7)
	a := New(&model, sw, Config{MAC: macA})
	b := New(&model, sw, Config{MAC: macB, RxQueues: 4})
	b.AddFilter(HWFilter{
		Match:  func(f []byte) bool { return len(f) > 14 && f[14] == 'K' },
		Action: ActionSteer,
		Queue:  3,
	})
	a.Tx(ethFrame(macB, macA, "K:steer me"), 0)
	got := b.RxBurst(3, 8)
	if len(got) != 1 {
		t.Fatalf("steered queue got %d frames, want 1", len(got))
	}
}

func TestFilterClears(t *testing.T) {
	a, b, _ := pair(t)
	b.AddFilter(HWFilter{Match: func([]byte) bool { return true }, Action: ActionDrop})
	b.ClearFilters()
	a.Tx(ethFrame(macB, macA, "survives"), 0)
	if got := b.RxBurst(0, 8); len(got) != 1 {
		t.Fatalf("frame did not survive after ClearFilters: %d", len(got))
	}
}

func TestRSSStableFlowMapping(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 7)
	b := New(&model, sw, Config{MAC: macB, RxQueues: 4})
	// An IPv4-ish frame: eth header + 20B IPv4 + 4B ports.
	mk := func(srcIP byte) []byte {
		f := ethFrame(macB, macA, "")
		ip := make([]byte, 24)
		ip[12] = srcIP // src addr first byte
		return append(f, ip...)
	}
	q1 := b.rss(b.class.Load(), mk(1))
	for i := 0; i < 10; i++ {
		if b.rss(b.class.Load(), mk(1)) != q1 {
			t.Fatal("RSS mapping unstable for identical flow")
		}
	}
	// Different flows should spread across queues (at least two distinct).
	seen := map[int]bool{}
	for ip := byte(0); ip < 32; ip++ {
		seen[b.rss(b.class.Load(), mk(ip))] = true
	}
	if len(seen) < 2 {
		t.Fatalf("RSS used %d queues for 32 flows", len(seen))
	}
}

// ipv4Frame builds a minimal eth+IPv4+ports frame for a flow 4-tuple,
// laid out exactly as the device's RSS classifier reads it.
func ipv4Frame(dst, src fabric.MAC, srcIP, dstIP [4]byte, srcPort, dstPort uint16) []byte {
	f := make([]byte, 0, 14+24)
	f = append(f, dst[:]...)
	f = append(f, src[:]...)
	f = append(f, 0x08, 0x00)
	ip := make([]byte, 24)
	copy(ip[12:16], srcIP[:])
	copy(ip[16:20], dstIP[:])
	ip[20] = byte(srcPort >> 8)
	ip[21] = byte(srcPort)
	ip[22] = byte(dstPort >> 8)
	ip[23] = byte(dstPort)
	return append(f, ip...)
}

// TestRSSDistribution checks that the RSS hash spreads a realistic flow
// population (one server ip:port, many client ephemeral ports) evenly
// across the queues: every queue must land within ±50% of its fair
// share. This is the regression fence for the classifier skew audit —
// the old int(h.Sum32()) % n reduction could go negative on 32-bit ints
// and the per-frame hash allocation hid behind an interface.
func TestRSSDistribution(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 7)
	for _, queues := range []int{2, 4, 8} {
		d := New(&model, sw, Config{MAC: macB, RxQueues: queues})
		srcIP := [4]byte{10, 0, 0, 1}
		dstIP := [4]byte{10, 0, 0, 2}
		const flows = 4096
		counts := make([]int, queues)
		for p := 0; p < flows; p++ {
			f := ipv4Frame(macB, macA, srcIP, dstIP, uint16(20000+p), 7777)
			counts[d.rss(d.class.Load(), f)]++
		}
		fair := flows / queues
		for q, n := range counts {
			if n < fair/2 || n > fair*2 {
				t.Fatalf("queues=%d: queue %d got %d of %d flows (fair share %d): skewed RSS",
					queues, q, n, flows, fair)
			}
		}
	}
}

// TestRSSQueueFlowMatchesDevice verifies that the exported pure mapping
// (what a sharded libOS uses to pick source ports) agrees bit-for-bit
// with where the device actually steers the frame.
func TestRSSQueueFlowMatchesDevice(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 7)
	d := New(&model, sw, Config{MAC: macB, RxQueues: 8})
	srcIP := [4]byte{192, 168, 1, 10}
	dstIP := [4]byte{192, 168, 1, 20}
	for p := uint16(1000); p < 1512; p++ {
		f := ipv4Frame(macB, macA, srcIP, dstIP, p, 9999)
		want := RSSQueueFlow(srcIP, dstIP, p, 9999, 8)
		if got := d.rss(d.class.Load(), f); got != want {
			t.Fatalf("port %d: device steers to queue %d, RSSQueueFlow says %d", p, got, want)
		}
	}
	// Single queue always maps to 0.
	if RSSQueueFlow(srcIP, dstIP, 1, 2, 1) != 0 {
		t.Fatal("RSSQueueFlow with 1 queue must return 0")
	}
}

// TestConcurrentQueuePolling exercises the per-ring locking: four
// goroutines each poll their own queue while a fifth transmits. Run
// under -race this is the fence for the shard-concurrency restructure.
func TestConcurrentQueuePolling(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 7)
	a := New(&model, sw, Config{MAC: macA})
	b := New(&model, sw, Config{MAC: macB, RxQueues: 4})

	const frames = 2048
	done := make(chan int, 4)
	for q := 0; q < 4; q++ {
		go func(q int) {
			got := 0
			var burst []fabric.Frame
			for i := 0; i < 100000 && got < frames; i++ {
				burst = b.AppendRxBurst(burst[:0], q, 64)
				for _, f := range burst {
					got++
					f.Release()
				}
			}
			done <- got
		}(q)
	}
	srcIP := [4]byte{10, 0, 0, 1}
	dstIP := [4]byte{10, 0, 0, 2}
	for i := 0; i < frames; i++ {
		// Slow the producer slightly relative to ring capacity by
		// spreading ports; drops are fine, conservation is checked below.
		a.Tx(ipv4Frame(macB, macA, srcIP, dstIP, uint16(i), 7777), 0)
	}
	total := 0
	for q := 0; q < 4; q++ {
		total += <-done
	}
	st := b.Stats()
	if int64(total) != st.RxFrames-int64(b.RxOccupancy(0)+b.RxOccupancy(1)+b.RxOccupancy(2)+b.RxOccupancy(3)) {
		t.Fatalf("conservation: polled %d, device says RxFrames=%d RxDropped=%d", total, st.RxFrames, st.RxDropped)
	}
	if st.RxFrames+st.RxDropped != frames {
		t.Fatalf("RxFrames(%d)+RxDropped(%d) != %d transmitted", st.RxFrames, st.RxDropped, frames)
	}
}

func TestRegisterRegionCounts(t *testing.T) {
	a, _, _ := pair(t)
	a.RegisterRegion(1, make([]byte, 64))
	a.RegisterRegion(2, make([]byte, 64))
	if a.Stats().Regions != 2 {
		t.Fatalf("Regions = %d, want 2", a.Stats().Regions)
	}
}

func TestQueueDepth(t *testing.T) {
	a, b, _ := pair(t)
	for i := 0; i < 3; i++ {
		a.Tx(ethFrame(macB, macA, "d"), 0)
	}
	if d := b.QueueDepth(0); d != 3 {
		t.Fatalf("QueueDepth = %d, want 3", d)
	}
}

func TestRingWraparound(t *testing.T) {
	r := newRing(4)
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			if !r.push(fabric.Frame{Data: []byte{byte(round), byte(i)}}) {
				t.Fatal("push failed below capacity")
			}
		}
		for i := 0; i < 3; i++ {
			f, ok := r.pop()
			if !ok {
				t.Fatal("pop failed")
			}
			if f.Data[0] != byte(round) || f.Data[1] != byte(i) {
				t.Fatalf("wraparound corrupted order: %v", f.Data)
			}
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}
