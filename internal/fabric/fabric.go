// Package fabric simulates the datacenter network that connects the
// simulated kernel-bypass NICs: a learning Ethernet switch with per-link
// propagation delay and configurable fault injection (loss, duplication,
// reordering).
//
// The fabric transports raw Ethernet frames as byte slices, exactly as a
// physical wire would; all structure above the Ethernet header is the
// business of the network stacks built on top (package netstack). Each
// frame also carries an accumulated virtual-latency cost (see package
// simclock) so end-to-end simulated latency can be reported
// deterministically.
package fabric

import (
	"fmt"
	"math/rand"
	"sync"

	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in the usual colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// MinFrameLen is the smallest frame the fabric will carry: a full
// Ethernet header (two MACs and an EtherType).
const MinFrameLen = 14

// Frame is one Ethernet frame in flight, with its accumulated virtual
// cost. Data holds the full frame starting at the destination MAC.
type Frame struct {
	Data []byte
	Cost simclock.Lat
	// Buf, when non-nil, is the pooled buffer backing Data. Ownership
	// travels with the frame: whoever holds the frame last (the
	// receiving stack after ingest, or the fabric/NIC at a drop point)
	// calls Release exactly once. Heap-backed frames leave it nil.
	Buf *FrameBuf
}

// Release returns the frame's pooled backing buffer (if any) to its
// pool and clears the reference. It is safe on heap-backed frames and
// safe to call twice on the same Frame value (the second call is a
// no-op) — but NOT on two copies of the same value; ownership is
// single-holder by contract.
func (f *Frame) Release() {
	if f.Buf != nil {
		b := f.Buf
		f.Buf = nil
		f.Data = nil
		b.Release()
	}
}

// DstMAC returns the destination address of a well-formed frame.
func (f Frame) DstMAC() MAC { var m MAC; copy(m[:], f.Data[0:6]); return m }

// SrcMAC returns the source address of a well-formed frame.
func (f Frame) SrcMAC() MAC { var m MAC; copy(m[:], f.Data[6:12]); return m }

// Impairments configures fault injection on a switch. Rates are
// probabilities in [0,1]; injection draws from a deterministic seeded
// source so experiments are reproducible.
type Impairments struct {
	LossRate    float64
	DupRate     float64
	ReorderRate float64 // probability a frame is held and swapped with the next
	// CorruptRate flips a payload byte past the Ethernet header. The
	// frame still routes (MACs are untouched); the damage must be caught
	// by the integrity checks of the stack above (IPv4/TCP/UDP
	// checksums, the RDMA ICRC, the blob-store CRC).
	CorruptRate float64
	ExtraDelay  simclock.Lat
}

// merge returns the combination of two impairment configurations: rates
// compose as independent fault sources, delays add.
func (a Impairments) merge(b Impairments) Impairments {
	return Impairments{
		LossRate:    1 - (1-a.LossRate)*(1-b.LossRate),
		DupRate:     1 - (1-a.DupRate)*(1-b.DupRate),
		ReorderRate: 1 - (1-a.ReorderRate)*(1-b.ReorderRate),
		CorruptRate: 1 - (1-a.CorruptRate)*(1-b.CorruptRate),
		ExtraDelay:  a.ExtraDelay + b.ExtraDelay,
	}
}

// Stats counts fabric-level events.
type Stats struct {
	Delivered       int64
	Flooded         int64
	DroppedRxFull   int64
	InjectedLoss    int64
	InjectedDup     int64
	InjectedReorder int64
	InjectedCorrupt int64
	LinkDownDrops   int64
	// AsymDrops counts frames dropped by a one-way (asymmetric) block:
	// the direction of a partition where A still reaches B but B's
	// replies die on the wire (SetOneWayBlock). Zero unless a schedule
	// injects an asymmetric partition.
	AsymDrops int64
}

// PortStats counts per-port fabric events, so experiments can verify that
// a fault schedule actually fired on the link it targeted.
type PortStats struct {
	TxFrames        int64 // frames the port attempted to send
	Delivered       int64 // frames delivered into the port's rx ring
	InjectedLoss    int64 // tx frames dropped by this port's impairments
	InjectedCorrupt int64 // tx frames corrupted by this port's impairments
	LinkDownDrops   int64 // frames dropped because this link was down
	AsymDrops       int64 // tx frames dropped by a one-way block out of this port
}

// Switch is a learning Ethernet switch. Ports attach with NewPort; frames
// sent on one port are delivered to the port that owns the destination
// MAC, or flooded when the destination is unknown or broadcast.
//
// Switch is safe for concurrent use.
type Switch struct {
	model *simclock.CostModel

	mu     sync.Mutex
	ports  []*Port
	macTab map[MAC]*Port
	imp    Impairments
	rng    *rand.Rand
	held   *heldFrame // one-slot reorder buffer
	stats  Stats
	// oneWay holds directional blocks: oneWay[{from,to}] drops frames
	// transmitted by port `from` whose destination MAC resolves to port
	// `to`. Nil (the common case) costs one nil-map check per forward.
	oneWay map[[2]int]bool
}

type heldFrame struct {
	frame Frame
	from  *Port
}

// NewSwitch returns a switch charging wire costs from model, with fault
// injection driven by seed.
func NewSwitch(model *simclock.CostModel, seed int64) *Switch {
	return &Switch{
		model:  model,
		macTab: make(map[MAC]*Port),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// SetImpairments replaces the switch-global fault-injection
// configuration. Per-port impairments (SetPortImpairments) compose on
// top of it.
func (s *Switch) SetImpairments(imp Impairments) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.imp = imp
}

// SetPortImpairments replaces the fault-injection configuration of one
// port (by port ID). Per-port rates compose with the switch-global rates
// as independent fault sources and apply to frames the port transmits.
func (s *Switch) SetPortImpairments(id int, imp Impairments) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.portLocked(id); p != nil {
		p.imp = imp
	}
}

// SetLinkState administratively raises (up=true) or cuts (up=false) the
// link behind one port. While a link is down, frames sent from the port
// and frames destined to it are dropped and counted in LinkDownDrops —
// the fabric-level model of a cable pull or a partitioned peer.
func (s *Switch) SetLinkState(id int, up bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.portLocked(id); p != nil {
		p.down = !up
	}
}

// SetOneWayBlock installs (blocked=true) or clears (blocked=false) a
// directional drop: frames transmitted by port `from` whose destination
// resolves to port `to` die on the wire, counted in AsymDrops. The
// reverse direction is untouched — this is the asymmetric partition of
// the chaos schedule, where A's requests still reach B but B's replies
// never come home. Flood copies honor the block too.
func (s *Switch) SetOneWayBlock(from, to int, blocked bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if blocked {
		if s.oneWay == nil {
			s.oneWay = make(map[[2]int]bool)
		}
		s.oneWay[[2]int{from, to}] = true
		return
	}
	delete(s.oneWay, [2]int{from, to})
	if len(s.oneWay) == 0 {
		s.oneWay = nil
	}
}

// blockedLocked reports whether the from→to direction is blocked.
func (s *Switch) blockedLocked(from, to *Port) bool {
	if s.oneWay == nil || from == nil || to == nil {
		return false
	}
	return s.oneWay[[2]int{from.id, to.id}]
}

// LinkUp reports the administrative link state of a port.
func (s *Switch) LinkUp(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.portLocked(id)
	return p != nil && !p.down
}

func (s *Switch) portLocked(id int) *Port {
	if id < 0 || id >= len(s.ports) {
		return nil
	}
	return s.ports[id]
}

// NumPorts returns the number of attached ports.
func (s *Switch) NumPorts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ports)
}

// Stats returns a snapshot of the switch counters.
func (s *Switch) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// PortStats returns a snapshot of one port's counters.
func (s *Switch) PortStats(id int) PortStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.portLocked(id); p != nil {
		return p.stats
	}
	return PortStats{}
}

// DefaultPortRing is the default depth of a port's receive ring.
const DefaultPortRing = 1024

// Port is one attachment point on the switch. A simulated NIC owns a port
// and polls frames from it.
type Port struct {
	sw    *Switch
	id    int
	rx    chan Frame
	imp   Impairments // per-port fault injection (guarded by sw.mu)
	down  bool        // administrative link state (guarded by sw.mu)
	stats PortStats   // guarded by sw.mu
}

// ID returns the port's index on its switch, the handle fault schedules
// target links by.
func (p *Port) ID() int { return p.id }

// NewPort attaches a new port with the given receive-ring depth (0 means
// DefaultPortRing).
func (s *Switch) NewPort(ringDepth int) *Port {
	if ringDepth <= 0 {
		ringDepth = DefaultPortRing
	}
	p := &Port{sw: s, rx: make(chan Frame, ringDepth)}
	s.mu.Lock()
	p.id = len(s.ports)
	s.ports = append(s.ports, p)
	s.mu.Unlock()
	return p
}

// Send transmits a frame into the fabric. Short frames are dropped, as a
// physical switch would drop runts.
func (p *Port) Send(f Frame) {
	if len(f.Data) < MinFrameLen {
		f.Release()
		return
	}
	s := p.sw
	s.mu.Lock()
	defer s.mu.Unlock()

	p.stats.TxFrames++

	// Learn the source address (even across a down link: the MAC table
	// models state the switch learned before the cut).
	s.macTab[f.SrcMAC()] = p

	// A cut link transmits nothing.
	if p.down {
		s.stats.LinkDownDrops++
		p.stats.LinkDownDrops++
		telemetry.TraceInstant("fabric", "link-down-drop", int32(p.id), int64(len(f.Data)))
		f.Release()
		return
	}

	// Fault injection: the port's own impairments compose with the
	// switch-global ones.
	imp := s.imp.merge(p.imp)
	if imp.LossRate > 0 && s.rng.Float64() < imp.LossRate {
		s.stats.InjectedLoss++
		p.stats.InjectedLoss++
		telemetry.TraceInstant("fabric", "loss", int32(p.id), int64(len(f.Data)))
		f.Release()
		return
	}
	if imp.CorruptRate > 0 && s.rng.Float64() < imp.CorruptRate {
		f = s.corruptLocked(f, p)
	}
	frames := []Frame{f}
	if imp.DupRate > 0 && s.rng.Float64() < imp.DupRate {
		s.stats.InjectedDup++
		dup := f
		dup.Data = append([]byte(nil), f.Data...)
		dup.Buf = nil // the copy is heap-backed; ownership of Buf stays with f
		frames = append(frames, dup)
	}
	if imp.ReorderRate > 0 {
		if s.held != nil {
			// Deliver the new frame first, then the held one.
			heldF, heldFrom := s.held.frame, s.held.from
			s.held = nil
			for _, fr := range frames {
				s.forwardLocked(fr, p)
			}
			s.forwardLocked(heldF, heldFrom)
			return
		}
		if s.rng.Float64() < imp.ReorderRate {
			s.stats.InjectedReorder++
			s.held = &heldFrame{frame: f, from: p}
			// The hold slot stores exactly one frame: an injected
			// duplicate still goes out now, only the original is held.
			// (Holding the whole batch used to leak the duplicate — it
			// was neither forwarded nor counted as dropped, a gap the
			// demi-stat conservation selftest catches.)
			for _, fr := range frames[1:] {
				s.forwardLocked(fr, p)
			}
			return
		}
	}
	for _, fr := range frames {
		s.forwardLocked(fr, p)
	}
}

// corruptLocked returns a copy of f with one byte past the Ethernet
// header flipped — the wire-level bit error a schedule injects. The copy
// keeps the sender's buffer intact, as real corruption happens on the
// wire, not in host memory.
func (s *Switch) corruptLocked(f Frame, p *Port) Frame {
	s.stats.InjectedCorrupt++
	p.stats.InjectedCorrupt++
	telemetry.TraceInstant("fabric", "corrupt", int32(p.id), int64(len(f.Data)))
	data := append([]byte(nil), f.Data...)
	if len(data) > MinFrameLen {
		i := MinFrameLen + s.rng.Intn(len(data)-MinFrameLen)
		data[i] ^= 0xFF
	}
	// The damaged copy is heap-backed; the sender's pooled buffer (if
	// any) is done the moment the wire mangles the bits.
	f.Release()
	f.Data = data
	return f
}

// Flush delivers any frame held by the reorder buffer. Tests and quiesce
// paths call it so a trailing held frame is not lost.
func (s *Switch) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.held != nil {
		h := s.held
		s.held = nil
		s.forwardLocked(h.frame, h.from)
	}
}

func (s *Switch) forwardLocked(f Frame, from *Port) {
	f.Cost += s.model.WireDelayNS + s.imp.ExtraDelay + from.imp.ExtraDelay
	dst := f.DstMAC()
	if !dst.IsBroadcast() {
		if out, ok := s.macTab[dst]; ok {
			if s.blockedLocked(from, out) {
				s.stats.AsymDrops++
				from.stats.AsymDrops++
				telemetry.TraceInstant("fabric", "asym-drop", int32(from.id), int64(len(f.Data)))
				f.Release()
				return
			}
			s.deliverLocked(out, f)
			return
		}
	}
	// Broadcast or unknown destination: flood. Every delivered copy is
	// heap-backed; the original (possibly pooled) frame is consumed here.
	s.stats.Flooded++
	for _, out := range s.ports {
		if out == from {
			continue
		}
		if s.blockedLocked(from, out) {
			s.stats.AsymDrops++
			from.stats.AsymDrops++
			continue
		}
		df := f
		df.Data = append([]byte(nil), f.Data...)
		df.Buf = nil
		s.deliverLocked(out, df)
	}
	f.Release()
}

func (s *Switch) deliverLocked(out *Port, f Frame) {
	if out.down {
		// The destination's link is cut: the frame dies on the wire.
		s.stats.LinkDownDrops++
		out.stats.LinkDownDrops++
		f.Release()
		return
	}
	select {
	case out.rx <- f:
		s.stats.Delivered++
		out.stats.Delivered++
	default:
		s.stats.DroppedRxFull++
		telemetry.TraceInstant("fabric", "rx-full-drop", int32(out.id), int64(len(f.Data)))
		f.Release()
	}
}

// RegisterTelemetry lifts the switch's global counters (and one
// link-state gauge per port) into a telemetry registry under prefix.
// The samples read the same mutex-guarded stats Stats() reports, taken
// at snapshot time.
func (s *Switch) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	stat := func(read func(Stats) int64) func() int64 {
		return func() int64 { return read(s.Stats()) }
	}
	r.RegisterFunc(prefix+".delivered", stat(func(st Stats) int64 { return st.Delivered }))
	r.RegisterFunc(prefix+".flooded", stat(func(st Stats) int64 { return st.Flooded }))
	r.RegisterFunc(prefix+".dropped_rx_full", stat(func(st Stats) int64 { return st.DroppedRxFull }))
	r.RegisterFunc(prefix+".injected_loss", stat(func(st Stats) int64 { return st.InjectedLoss }))
	r.RegisterFunc(prefix+".injected_dup", stat(func(st Stats) int64 { return st.InjectedDup }))
	r.RegisterFunc(prefix+".injected_reorder", stat(func(st Stats) int64 { return st.InjectedReorder }))
	r.RegisterFunc(prefix+".injected_corrupt", stat(func(st Stats) int64 { return st.InjectedCorrupt }))
	r.RegisterFunc(prefix+".link_down_drops", stat(func(st Stats) int64 { return st.LinkDownDrops }))
	r.RegisterFunc(prefix+".asym_drops", stat(func(st Stats) int64 { return st.AsymDrops }))
	r.RegisterFunc(prefix+".ports", func() int64 { return int64(s.NumPorts()) })
}

// Poll returns the next received frame without blocking.
func (p *Port) Poll() (Frame, bool) {
	select {
	case f := <-p.rx:
		return f, true
	default:
		return Frame{}, false
	}
}

// Recv returns the port's receive channel for event-driven consumers.
func (p *Port) Recv() <-chan Frame { return p.rx }
