package demikernel

// TestHTTPProductionSoak is the chaos + slow-client soak behind `make
// httpsoak`: a production-shaped HTTP workload (Zipf-popular paths over
// a bimodal object tree, keep-alive connections with churn, a fraction
// of deliberately slow readers) against a 2-shard catnip server — one
// shard on the legacy per-op path, one on the syscall-free rings — with
// a full node crash/restart in the middle. Every response must come
// back 200 with the right body, the slow readers must drive the bounded
// ready list into its parked state (rx_ready_stalls), and the server's
// counters must account for every request across the incarnation
// boundary.

import (
	"bytes"
	"testing"
	"time"

	"demikernel/internal/apps/httpd"
	"demikernel/internal/workload"
)

// soakClient is one keep-alive connection plus its in-order expectation
// queue (HTTP/1.1 responses come back in request order).
type soakClient struct {
	cl        *httpd.Client
	shard     int
	pending   []string // paths awaiting responses
	stallLeft int      // requests left in the current stall episode
}

func TestHTTPProductionSoak(t *testing.T) {
	const (
		port     = 8080
		nshards  = 2
		nclients = 4
		perHalf  = 300 // requests per soak half, across all clients
	)
	c := NewCluster(91)
	srvNode := c.MustSpawn(Catnip, WithHost(1), WithShards(nshards))
	cliNode := c.MustSpawn(Catnip, WithConfig(NodeConfig{
		Host: 2, RxReadyCap: 4, RTO: 2 * time.Millisecond, MaxRetransmits: 8,
	}))
	cliNode.WaitTimeout = 5 * time.Second
	sh := srvNode.Sharded

	prod := workload.NewHTTPProduction(64, 1e6, 91)
	bodies := make(map[string][]byte, len(prod.Objects))
	tree := httpd.NewTree()
	for _, o := range prod.Objects {
		tree.Add(o.Path, o.Body)
		bodies[o.Path] = o.Body
	}

	// One server per shard; shard 1 serves over the SQ/CQ rings.
	servers := make([]*httpd.Server, nshards)
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < nshards; i++ {
		servers[i] = httpd.NewServer(sh.Libs[i], tree)
		if err := servers[i].Listen(port); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			servers[i].EnableRing(64)
		}
		go servers[i].Run(stop)
	}

	// Seeds stride by 8 so no two dials resolve to the same source port
	// (SourcePortFor scans forward from the seed; with 2 shards it moves
	// at most a step or two).
	var seedCtr uint16
	dial := func(shard int) *httpd.Client {
		t.Helper()
		seedCtr += 8
		qd, err := c.Router().DialShard(cliNode, sh, port, shard, seedCtr)
		if err != nil {
			t.Fatalf("dial shard %d: %v", shard, err)
		}
		cl := httpd.NewClient(cliNode.LibOS)
		cl.Adopt(qd, c.AddrOf(srvNode, port))
		return cl
	}

	clients := make([]*soakClient, nclients)
	for i := range clients {
		clients[i] = &soakClient{cl: dial(i % nshards), shard: i % nshards}
	}

	drain := func(sc *soakClient) {
		t.Helper()
		for len(sc.pending) > 0 {
			resp, err := sc.cl.ReadResponse()
			if err != nil {
				t.Fatalf("soak read (shard %d): %v", sc.shard, err)
			}
			want := bodies[sc.pending[0]]
			sc.pending = sc.pending[1:]
			if resp.Status != 200 || !bytes.Equal(resp.Body, want) {
				t.Fatalf("soak response (shard %d): status=%d len=%d want=%d",
					sc.shard, resp.Status, len(resp.Body), len(want))
			}
		}
	}

	issued := 0
	half := func() {
		for n := 0; n < perHalf; n++ {
			sc := clients[n%nclients]
			path := prod.Paths.Next()
			if err := sc.cl.SendRequest(path, false); err != nil {
				t.Fatalf("soak send (shard %d): %v", sc.shard, err)
			}
			sc.pending = append(sc.pending, path)
			issued++

			// The stall schedule turns this connection into a slow
			// reader for a stretch of requests: responses pile up
			// unread (bounded at 16) before a burst drain. Everyone
			// else reads synchronously, so the soak cannot deadlock on
			// its own pauses.
			if sc.stallLeft == 0 {
				sc.stallLeft = prod.Stalls.NextStall()
			} else {
				sc.stallLeft--
			}
			if sc.stallLeft == 0 || len(sc.pending) >= 16 {
				drain(sc)
				// Connection churn: retire a quiesced connection and
				// redial (RSS decides the new shard).
				if prod.Churn.ShouldClose() {
					sc.cl.Close() //nolint:errcheck
					sc.cl = dial(sc.shard)
				}
			}
		}
		for _, sc := range clients {
			drain(sc)
		}
	}

	half()

	// Mid-soak node death: every client connection dies with the stack.
	// The soak resumes against the restarted incarnation — the legacy
	// shard self-heals, the ring shard gets a fresh ring pair.
	if _, err := srvNode.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := srvNode.Restart(); err != nil {
		t.Fatal(err)
	}
	servers[1].EnableRing(64)
	for i, sc := range clients {
		sc.cl.Close() //nolint:errcheck // the old QD is already dead
		clients[i].cl = dial(sc.shard)
		clients[i].pending = clients[i].pending[:0]
	}

	half()

	if got := int(cliNode.Catnip.RxStalls()); got < 1 {
		t.Fatalf("slow readers never parked the bounded ready list (rx_ready_stalls=%d)", got)
	}
	var served, halfCloses int64
	for _, s := range servers {
		st := s.Stats()
		served += st.Requests
		halfCloses += st.HalfCloses
	}
	if served != int64(issued) {
		t.Fatalf("servers account for %d requests, issued %d", served, issued)
	}
	if halfCloses != 0 {
		t.Fatalf("unexpected half-closes during soak: %d", halfCloses)
	}
}
