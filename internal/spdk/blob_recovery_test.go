package spdk

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Recovery-path coverage: torn tails, mid-log corruption, and scans
// racing controller resets. The invariant under test is the one New's
// callers rely on: recovery either reports the exact durable prefix of
// the log or returns an error — it never silently truncates.

// corruptByte flips one byte on media, bypassing the store.
func corruptByte(t *testing.T, d *Device, off int) {
	t.Helper()
	lba := off / BlockSize
	c := d.Execute(Command{Op: OpRead, LBA: lba})
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	blk := append([]byte(nil), c.Data...)
	blk[off%BlockSize] ^= 0xFF
	if c := d.Execute(Command{Op: OpWrite, LBA: lba, Data: blk}); c.Err != nil {
		t.Fatal(c.Err)
	}
}

// seedLog writes n records of the form "rec-i" and returns their byte
// offsets (payload start) in the log.
func seedLog(t *testing.T, d *Device, n int) []int {
	t.Helper()
	s, _, err := NewStore(d)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := s.Open("data")
	if err != nil {
		t.Fatal(err)
	}
	offs := make([]int, n)
	for i := 0; i < n; i++ {
		s.mu.Lock()
		offs[i] = s.tail + recordHdrLen
		s.mu.Unlock()
		if _, err := f.Append([]byte(fmt.Sprintf("rec-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return offs
}

func reopen(t *testing.T, d *Device) *Store {
	t.Helper()
	s, _, err := NewStore(d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRecords(t *testing.T, s *Store, name string, want int) *File {
	t.Helper()
	f, ok := s.Lookup(name)
	if !ok {
		t.Fatalf("file %q lost in recovery", name)
	}
	if got := f.NumRecords(); got != want {
		t.Fatalf("recovered %d records, want %d", got, want)
	}
	return f
}

func TestRecoveryTornTailRecord(t *testing.T) {
	d := newDev(Config{})
	seedLog(t, d, 5)
	// Simulate a torn append: a valid header claiming a payload that was
	// never fully written (CRC of the real payload, data still zero).
	s := reopen(t, d)
	s.mu.Lock()
	tail := s.tail
	s.mu.Unlock()
	hdr := make([]byte, recordHdrLen)
	binary.BigEndian.PutUint32(hdr[0:4], recordMagic)
	binary.BigEndian.PutUint32(hdr[4:8], 1)
	binary.BigEndian.PutUint32(hdr[8:12], 64)
	binary.BigEndian.PutUint32(hdr[12:16], 0xDEADBEEF)
	blk := d.Execute(Command{Op: OpRead, LBA: tail / BlockSize})
	if blk.Err != nil {
		t.Fatal(blk.Err)
	}
	nb := append([]byte(nil), blk.Data...)
	copy(nb[tail%BlockSize:], hdr)
	if c := d.Execute(Command{Op: OpWrite, LBA: tail / BlockSize, Data: nb}); c.Err != nil {
		t.Fatal(c.Err)
	}

	s2 := reopen(t, d)
	f := mustRecords(t, s2, "data", 5)
	rec, _, err := f.Read(4)
	if err != nil || !bytes.Equal(rec, []byte("rec-004")) {
		t.Fatalf("last good record: %q, %v", rec, err)
	}
	// The torn record is dead: the next append overwrites it and the log
	// stays consistent across another reopen.
	f2, _, err := s2.Open("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Append([]byte("after-tear")); err != nil {
		t.Fatal(err)
	}
	f3 := mustRecords(t, reopen(t, d), "data", 6)
	rec, _, err = f3.Read(5)
	if err != nil || !bytes.Equal(rec, []byte("after-tear")) {
		t.Fatalf("post-tear append: %q, %v", rec, err)
	}
}

func TestRecoveryCRCMismatchMidLog(t *testing.T) {
	d := newDev(Config{})
	offs := seedLog(t, d, 8)
	// Corrupt one payload byte of record 3: the scan must stop before it,
	// keeping records 0..2 and orphaning 3..7 — never resurrecting a
	// record whose checksum fails.
	corruptByte(t, d, offs[3])
	s := reopen(t, d)
	f := mustRecords(t, s, "data", 3)
	for i := 0; i < 3; i++ {
		rec, _, err := f.Read(i)
		if err != nil || !bytes.Equal(rec, []byte(fmt.Sprintf("rec-%03d", i))) {
			t.Fatalf("record %d: %q, %v", i, rec, err)
		}
	}
}

func TestRecoveryCorruptHeaderMagic(t *testing.T) {
	d := newDev(Config{})
	offs := seedLog(t, d, 4)
	corruptByte(t, d, offs[2]-recordHdrLen) // smash record 2's magic
	mustRecords(t, reopen(t, d), "data", 2)
}

func TestRecoveryReturnsDeviceErrors(t *testing.T) {
	d := newDev(Config{})
	seedLog(t, d, 4)
	// A controller reset that outlasts the scan: every read fails, and
	// NewStore must surface the error instead of treating it as log end.
	d.ControllerReset(1 << 20)
	if _, _, err := NewStore(d); !errors.Is(err, ErrDeviceReset) {
		t.Fatalf("err = %v, want ErrDeviceReset", err)
	}
}

func TestRecoveryUnderChaosResets(t *testing.T) {
	d := newDev(Config{})
	seedLog(t, d, 50)

	// Concurrent controller resets while opens run. Each attempt either
	// fails with a typed transient error or recovers the full 50 records:
	// a partially scanned (silently truncated) store is the one forbidden
	// outcome.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.ControllerReset(3)
			}
		}
	}()

	recovered := 0
	for i := 0; i < 200; i++ {
		s, _, err := NewStore(d)
		if err != nil {
			if !errors.Is(err, ErrDeviceReset) && !errors.Is(err, ErrIO) {
				t.Errorf("attempt %d: unexpected error %v", i, err)
			}
			continue
		}
		recovered++
		f, ok := s.Lookup("data")
		if !ok {
			t.Fatalf("attempt %d: clean recovery lost the file", i)
		}
		if got := f.NumRecords(); got != 50 {
			t.Fatalf("attempt %d: silent truncation to %d records", i, got)
		}
	}
	close(stop)
	wg.Wait()
	if recovered == 0 {
		t.Skip("no attempt recovered cleanly under this interleaving")
	}
}

func TestRecoveryWithInjectedIOErrors(t *testing.T) {
	d := newDev(Config{})
	seedLog(t, d, 30)
	// Each scan performs ~60 block reads; 2% per-command failure makes
	// both clean and failed scans likely across 100 attempts.
	d.SetErrorRate(0.02, 7)
	defer d.SetErrorRate(0, 0)
	sawError, sawClean := false, false
	for i := 0; i < 100; i++ {
		s, _, err := NewStore(d)
		if err != nil {
			if !errors.Is(err, ErrIO) {
				t.Fatalf("attempt %d: err = %v, want ErrIO", i, err)
			}
			sawError = true
			continue
		}
		sawClean = true
		mustRecords(t, s, "data", 30)
	}
	if !sawError || !sawClean {
		t.Fatalf("error/clean mix not exercised: sawError=%v sawClean=%v", sawError, sawClean)
	}
}

func TestAllocBlocksCollidesWithLog(t *testing.T) {
	d := newDev(Config{NumBlocks: 8})
	s, _, err := NewStore(d)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := s.AllocBlocks(4)
	if err != nil || lo != 4 {
		t.Fatalf("first alloc: lo=%d err=%v", lo, err)
	}
	lo, err = s.AllocBlocks(3)
	if err != nil || lo != 1 {
		t.Fatalf("second alloc: lo=%d err=%v", lo, err)
	}
	if _, err := s.AllocBlocks(2); !errors.Is(err, ErrLogFull) {
		t.Fatalf("overcommit: err = %v", err)
	}
	// The log may not grow into reserved blocks either: one block is
	// left, and a record spilling past it must fail.
	f, _, err := s.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(make([]byte, 2*BlockSize)); !errors.Is(err, ErrLogFull) {
		t.Fatalf("append into reservation: err = %v", err)
	}
	// Reservations are derived state: a reopen frees them.
	s2 := reopen(t, d)
	if lo, err := s2.AllocBlocks(7); err != nil || lo != 1 {
		t.Fatalf("post-reopen alloc: lo=%d err=%v", lo, err)
	}
}
