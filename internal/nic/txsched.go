// TX scheduling for multi-tenant NIC sharing: weighted deficit round-
// robin (WDRR) across per-tenant TX queues, with an optional token-
// bucket rate limit per queue. A kernel-bypass NIC's transmit path is
// the other half of the protection problem (§3, §7): with tenants
// racing raw tx_burst calls, one flooder owns the wire. Real NICs
// answer with hardware TX scheduling (e.g. per-VF rate limiters and
// weighted arbitration among queue pairs); this is the simulated
// equivalent, sitting between QueueGroup.TxFrame and Device.TxFrame.
//
// Backpressure shape matters: a full per-tenant staging ring drops the
// *flooding tenant's* frame (counted as a throttle drop, the frame
// released back to its pool) rather than stalling the shared link —
// one tenant's burst must cost that tenant, not its neighbours.
package nic

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"demikernel/internal/fabric"
)

const (
	// txQuantum is the DRR quantum: bytes of credit one weight unit
	// earns per scheduling round.
	txQuantum = 2048
	// txPumpBudget bounds the bytes one pump call may push to the
	// device, so WDRR ratios are observable per call instead of one
	// queue draining completely before the next is considered.
	txPumpBudget = 64 * 1024
	// txDefaultDepth is the default per-tenant TX staging ring depth.
	txDefaultDepth = 512
)

// txScheduler multiplexes per-tenant TX queues onto the device.
type txScheduler struct {
	mu     sync.Mutex
	queues []*txQueue
	rr     int // round-robin start position
}

func newTxScheduler() *txScheduler { return &txScheduler{} }

// txQueue is one tenant's TX staging ring plus its WDRR/rate state.
// Ring, deficit, and token state are guarded by the scheduler's mu;
// counters are atomics so stats reads never contend with the pump.
type txQueue struct {
	s     *txScheduler
	name  string
	ring  []fabric.Frame
	depth int

	weight  int64
	deficit int64

	rate    float64 // bytes/second; 0 = unlimited
	burst   float64 // token bucket depth in bytes
	tokens  float64
	last    time.Time
	started bool
	clock   func() time.Time

	drops      atomic.Int64 // throttle drops at a full ring
	sentFrames atomic.Int64
	sentBytes  atomic.Int64
	txFlushed  atomic.Int64
}

// newQueue registers a TX queue with the given WDRR weight (0 = 1),
// rate limit (0 = unlimited), burst (0 = one quantum), and staging
// depth (0 = default).
func (s *txScheduler) newQueue(name string, weight int, rateBps, burstBytes int64, depth int, clock func() time.Time) *txQueue {
	if weight <= 0 {
		weight = 1
	}
	if depth <= 0 {
		depth = txDefaultDepth
	}
	if clock == nil {
		clock = time.Now
	}
	burst := float64(burstBytes)
	if burst <= 0 {
		burst = txQuantum
	}
	q := &txQueue{
		s:      s,
		name:   name,
		depth:  depth,
		weight: int64(weight),
		rate:   float64(rateBps),
		burst:  burst,
		clock:  clock,
	}
	s.mu.Lock()
	s.queues = append(s.queues, q)
	s.mu.Unlock()
	return q
}

// enqueue stages a frame on q. A full ring drops (and releases) the
// frame and counts a throttle drop — the flooding tenant is throttled,
// the shared link is not.
func (s *txScheduler) enqueue(q *txQueue, f fabric.Frame) {
	s.mu.Lock()
	if len(q.ring) >= q.depth {
		s.mu.Unlock()
		q.drops.Add(1)
		f.Release()
		return
	}
	q.ring = append(q.ring, f)
	s.mu.Unlock()
}

// pump runs WDRR rounds, transmitting through the device until the
// per-call byte budget is spent or no queue can make progress (empty,
// out of deficit, or token-throttled). Device counters and simulated
// per-frame costs are charged at the actual send, inside d.TxFrame.
func (s *txScheduler) pump(d *Device) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queues) == 0 {
		return
	}
	budget := int64(txPumpBudget)
	for budget > 0 {
		progressed := false
		for i := 0; i < len(s.queues) && budget > 0; i++ {
			q := s.queues[(s.rr+i)%len(s.queues)]
			if len(q.ring) == 0 {
				q.deficit = 0
				continue
			}
			q.refillTokens()
			// Earn this round's credit, capped so a token-throttled
			// queue cannot bank unbounded deficit and later burst past
			// its weight share. The cap stretches to the head frame so
			// an oversized frame still eventually sends.
			q.deficit += q.weight * txQuantum
			maxDeficit := q.weight * txQuantum
			if head := int64(len(q.ring[0].Data)); maxDeficit < head {
				maxDeficit = head
			}
			if q.deficit > maxDeficit {
				q.deficit = maxDeficit
			}
			for len(q.ring) > 0 && budget > 0 {
				f := q.ring[0]
				size := int64(len(f.Data))
				if size > q.deficit {
					break
				}
				if q.rate > 0 && q.tokens < float64(size) {
					break
				}
				copy(q.ring, q.ring[1:])
				q.ring[len(q.ring)-1] = fabric.Frame{}
				q.ring = q.ring[:len(q.ring)-1]
				q.deficit -= size
				if q.rate > 0 {
					q.tokens -= float64(size)
				}
				budget -= size
				q.sentFrames.Add(1)
				q.sentBytes.Add(size)
				d.TxFrame(f)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	s.rr = (s.rr + 1) % len(s.queues)
}

// refillTokens advances the token bucket to the clock's now. Caller
// holds s.mu.
func (q *txQueue) refillTokens() {
	if q.rate <= 0 {
		return
	}
	now := q.clock()
	if !q.started {
		q.started = true
		q.last = now
		q.tokens = q.burst
		return
	}
	if el := now.Sub(q.last).Seconds(); el > 0 {
		q.tokens = math.Min(q.burst, q.tokens+q.rate*el)
		q.last = now
	}
}

// flushQueue releases every staged frame on q (crash reclaim) and
// returns the count discarded.
func (s *txScheduler) flushQueue(q *txQueue) int {
	s.mu.Lock()
	staged := q.ring
	q.ring = nil
	q.deficit = 0
	s.mu.Unlock()
	for _, f := range staged {
		f.Release()
	}
	if n := len(staged); n > 0 {
		q.txFlushed.Add(int64(n))
		return n
	}
	return 0
}

// stats snapshots the queue's counters.
func (q *txQueue) stats() (sentFrames, sentBytes, queued, flushed, drops int64) {
	q.s.mu.Lock()
	queued = int64(len(q.ring))
	q.s.mu.Unlock()
	return q.sentFrames.Load(), q.sentBytes.Load(), queued, q.txFlushed.Load(), q.drops.Load()
}

// deficitNow reports the queue's current DRR deficit (telemetry gauge).
func (q *txQueue) deficitNow() int64 {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	return q.deficit
}

// tokensNow reports the queue's current token balance (telemetry gauge).
func (q *txQueue) tokensNow() int64 {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	return int64(q.tokens)
}
