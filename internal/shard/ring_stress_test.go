package shard

import (
	"runtime"
	"testing"
)

// TestRingPushNPopNBasics exercises the batch operations single-threaded
// around the full and empty boundaries, where the cached peer indices
// must refresh instead of reporting a stale full/empty verdict.
func TestRingPushNPopNBasics(t *testing.T) {
	r := NewRing[int](8)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}

	// Fill past the cached view: a fresh ring accepts exactly Cap.
	in := make([]int, 12)
	for i := range in {
		in[i] = i
	}
	if n := r.PushN(in); n != 8 {
		t.Fatalf("PushN on empty ring accepted %d, want 8", n)
	}
	if n := r.PushN(in); n != 0 {
		t.Fatalf("PushN on full ring accepted %d, want 0", n)
	}

	// Drain two, then the producer's cached head must refresh so the
	// freed slots are visible.
	dst := make([]int, 2)
	if n := r.PopN(dst); n != 2 || dst[0] != 0 || dst[1] != 1 {
		t.Fatalf("PopN = %d (%v), want 2 ([0 1])", n, dst)
	}
	if n := r.PushN(in[:5]); n != 2 {
		t.Fatalf("PushN after partial drain accepted %d, want 2", n)
	}

	// Drain everything; order must be FIFO across the wrap.
	out := make([]int, 16)
	n := r.PopN(out)
	if n != 8 {
		t.Fatalf("PopN drained %d, want 8", n)
	}
	want := []int{2, 3, 4, 5, 6, 7, 0, 1}
	for i, v := range want {
		if out[i] != v {
			t.Fatalf("out[%d] = %d, want %d (out=%v)", i, out[i], v, out[:n])
		}
	}
	if n := r.PopN(out); n != 0 {
		t.Fatalf("PopN on empty ring delivered %d, want 0", n)
	}
}

// TestRingMixedSingleAndBatch interleaves Push/Pop with PushN/PopN so the
// cached indices are exercised by both granularities on the same ring.
func TestRingMixedSingleAndBatch(t *testing.T) {
	r := NewRing[int](4)
	if !r.Push(1) || !r.Push(2) {
		t.Fatal("single pushes refused on empty ring")
	}
	if n := r.PushN([]int{3, 4, 5}); n != 2 {
		t.Fatalf("PushN accepted %d, want 2", n)
	}
	if v, ok := r.Pop(); !ok || v != 1 {
		t.Fatalf("Pop = %d,%v want 1,true", v, ok)
	}
	dst := make([]int, 4)
	if n := r.PopN(dst); n != 3 || dst[0] != 2 || dst[1] != 3 || dst[2] != 4 {
		t.Fatalf("PopN = %d (%v), want 3 ([2 3 4])", n, dst[:n])
	}
}

// TestRingSPSCStressBatch is the -race stress for the batch path: one
// producer thread pushing with mixed batch sizes against one consumer
// thread popping with mixed batch sizes, on a tiny ring so both sides
// spend most of the run bouncing off the full/empty boundaries (where
// the cached peer index must refresh) and wrap the index space many
// times. The consumer asserts the values arrive as an exact FIFO
// sequence: any lost, duplicated, or reordered element fails the run,
// and the race detector checks the memory ordering claims.
func TestRingSPSCStressBatch(t *testing.T) {
	const total = 50_000
	r := NewRing[uint64](8) // tiny: maximizes boundary churn and wraps

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]uint64, 7)
		next := uint64(0)
		for next < total {
			// Vary batch size 1..7; occasionally use the single-element
			// path so both code paths interleave on one ring.
			bs := int(next%7) + 1
			if next%13 == 0 {
				if r.Push(next) {
					next++
				} else {
					runtime.Gosched() // full: let the consumer drain
				}
				continue
			}
			if next+uint64(bs) > total {
				bs = int(total - next)
			}
			for i := 0; i < bs; i++ {
				buf[i] = next + uint64(i)
			}
			pushed := r.PushN(buf[:bs])
			next += uint64(pushed)
			if pushed == 0 {
				runtime.Gosched()
			}
		}
	}()

	buf := make([]uint64, 5)
	want := uint64(0)
	for want < total {
		if want%11 == 0 {
			if v, ok := r.Pop(); ok {
				if v != want {
					t.Fatalf("popped %d, want %d", v, want)
				}
				want++
			} else {
				runtime.Gosched() // empty: let the producer refill
			}
			continue
		}
		n := r.PopN(buf[:int(want%5)+1])
		for i := 0; i < n; i++ {
			if buf[i] != want {
				t.Fatalf("popped %d, want %d", buf[i], want)
			}
			want++
		}
		if n == 0 {
			runtime.Gosched()
		}
	}
	<-done
	if v, ok := r.Pop(); ok {
		t.Fatalf("ring not empty after stress: got %d", v)
	}
}
