package netstack

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"demikernel/internal/fabric"
)

// TestPropTCPDeliversExactStreamUnderImpairment is the package's core
// property: whatever combination of loss, reordering, and duplication
// the fabric injects, and however the sender chops its writes, the
// receiver observes exactly the sent byte stream.
func TestPropTCPDeliversExactStreamUnderImpairment(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := newWorld(t, Config{MSS: 300 + r.Intn(900), RTO: 5 * time.Millisecond},
			Config{MSS: 512, RTO: 5 * time.Millisecond, RxWindow: 4096 + r.Intn(60000)})
		c, srv := dialPair(t, w, 8000)
		w.sw.SetImpairments(fabric.Impairments{
			LossRate:    r.Float64() * 0.15,
			ReorderRate: r.Float64() * 0.2,
			DupRate:     r.Float64() * 0.2,
		})
		msg := make([]byte, 2000+r.Intn(20000))
		r.Read(msg)

		var got []byte
		sent := 0
		deadline := time.Now().Add(8 * time.Second)
		for len(got) < len(msg) {
			if time.Now().After(deadline) {
				return false
			}
			if sent < len(msg) {
				// Random-size writes model arbitrary app chunking.
				chunk := 1 + r.Intn(4000)
				if sent+chunk > len(msg) {
					chunk = len(msg) - sent
				}
				n, err := c.Send(msg[sent:sent+chunk], 0)
				if err != nil {
					return false
				}
				sent += n
			}
			w.pump()
			b, _, err := srv.Recv(0)
			if err != nil {
				return false
			}
			got = append(got, b...)
			time.Sleep(200 * time.Microsecond)
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b   uint32
		lt, le bool
	}{
		{0, 1, true, true},
		{1, 0, false, false},
		{5, 5, false, true},
		{0xFFFFFFFF, 0, true, true},          // wraparound
		{0, 0xFFFFFFFF, false, false},        // wraparound reverse
		{0x7FFFFFFF, 0x80000000, true, true}, // midpoint
		{0xFFFFFF00, 0x00000100, true, true}, // cross-zero window
	}
	for _, c := range cases {
		if seqLT(c.a, c.b) != c.lt {
			t.Errorf("seqLT(%#x, %#x) = %v, want %v", c.a, c.b, !c.lt, c.lt)
		}
		if seqLEQ(c.a, c.b) != c.le {
			t.Errorf("seqLEQ(%#x, %#x) = %v, want %v", c.a, c.b, !c.le, c.le)
		}
	}
}

func TestPropChecksumDetectsSingleBitFlips(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		seg := tcpSegment{
			srcPort: uint16(r.Intn(65536)),
			dstPort: uint16(r.Intn(65536)),
			seq:     r.Uint32(),
			ack:     r.Uint32(),
			flags:   flagACK,
			window:  uint16(r.Intn(65536)),
			payload: make([]byte, 1+r.Intn(200)),
		}
		r.Read(seg.payload)
		b := seg.marshal(nil, ipA, ipB)
		if _, ok := parseTCP(b, ipA, ipB); !ok {
			return false // valid segment must parse
		}
		// Flip one random bit: the checksum must catch it.
		bit := r.Intn(len(b) * 8)
		b[bit/8] ^= 1 << (bit % 8)
		_, ok := parseTCP(b, ipA, ipB)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	d := udpDatagram{srcPort: 7, dstPort: 8, payload: []byte("datagram body")}
	b := d.marshal(nil, ipA, ipB)
	if _, ok := parseUDP(b, ipA, ipB); !ok {
		t.Fatal("valid datagram rejected")
	}
	b[10] ^= 0x01
	if _, ok := parseUDP(b, ipA, ipB); ok {
		t.Fatal("corrupt datagram accepted")
	}
}
