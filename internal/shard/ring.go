// Package shard provides the cross-shard communication fabric for a
// sharded (share-nothing) libOS: bounded lock-free single-producer/
// single-consumer rings and an any-to-any mesh of them (Group).
//
// The paper's §3.1 argument — and the reason this package exists — is
// that kernel-bypass datapaths scale by *not* sharing: RSS steers each
// flow to one queue, one worker owns that queue's netstack, connections,
// and buffers, and nothing on the per-packet path crosses cores. What
// remains is the rare traffic between workers (control-plane ops, accept
// redistribution, forwarding a request that landed on the wrong shard),
// and that traffic must not reintroduce locks. An SPSC ring needs no
// CAS, no lock, and no shared cache line between its two ends beyond the
// head/tail indices — which are padded apart here.
package shard

import "sync/atomic"

// cacheLine is the assumed coherence granule. The pads below keep the
// producer-owned and consumer-owned index words on distinct lines so the
// two sides of a ring never write-share.
const cacheLine = 64

// Ring is a bounded lock-free SPSC ring. Exactly one goroutine may call
// Push/PushN (the producer) and exactly one may call Pop/PopN (the
// consumer); the Group mesh enforces this by dedicating one ring per
// (from, to) pair.
//
// Each side keeps a private snapshot of the peer's index (cachedTail on
// the consumer line, cachedHead on the producer line) and refreshes it
// from the shared atomic only when the snapshot says the ring looks
// full/empty. In steady state a push or pop therefore touches no
// cache line the peer writes — the cross-core coherence traffic is one
// refresh per wraparound's worth of elements, not one per element.
type Ring[T any] struct {
	buf  []T
	mask uint64
	_    [cacheLine]byte //nolint:unused // pad
	head atomic.Uint64   // next slot to pop; written only by the consumer
	// cachedTail is the consumer's private snapshot of tail; it shares
	// the consumer's line, never the producer's.
	cachedTail uint64
	_          [cacheLine - 16]byte //nolint:unused // pad
	tail       atomic.Uint64        // next slot to push; written only by the producer
	// cachedHead is the producer's private snapshot of head.
	cachedHead uint64
	_          [cacheLine - 16]byte //nolint:unused // pad
}

// NewRing returns an SPSC ring holding up to capacity elements
// (rounded up to a power of two, minimum 2).
func NewRing[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Push appends v; it reports false when the ring is full (bounded:
// backpressure is the caller's problem, the ring never blocks or grows).
// Producer-side only.
func (r *Ring[T]) Push(v T) bool {
	tail := r.tail.Load()
	if tail-r.cachedHead > r.mask {
		r.cachedHead = r.head.Load()
		if tail-r.cachedHead > r.mask {
			return false // full
		}
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1) // release: the element write happens-before
	return true
}

// PushN appends as many elements of vs as fit and returns how many it
// accepted (a prefix of vs). One release store publishes the whole
// batch, so the consumer sees it at the cost of a single fence.
// Producer-side only.
func (r *Ring[T]) PushN(vs []T) int {
	tail := r.tail.Load()
	free := r.mask + 1 - (tail - r.cachedHead)
	if uint64(len(vs)) > free {
		r.cachedHead = r.head.Load()
		free = r.mask + 1 - (tail - r.cachedHead)
	}
	n := len(vs)
	if uint64(n) > free {
		n = int(free)
	}
	for i := 0; i < n; i++ {
		r.buf[(tail+uint64(i))&r.mask] = vs[i]
	}
	if n > 0 {
		r.tail.Store(tail + uint64(n))
	}
	return n
}

// Pop removes and returns the oldest element. Consumer-side only.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	head := r.head.Load()
	if head == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if head == r.cachedTail {
			return zero, false // empty
		}
	}
	v := r.buf[head&r.mask]
	r.buf[head&r.mask] = zero // drop the reference for GC
	r.head.Store(head + 1)
	return v, true
}

// PopN removes up to len(dst) oldest elements into dst and returns how
// many it delivered. Like PushN, the whole batch retires with one
// release store of head. Consumer-side only.
func (r *Ring[T]) PopN(dst []T) int {
	var zero T
	head := r.head.Load()
	avail := r.cachedTail - head
	if uint64(len(dst)) > avail {
		r.cachedTail = r.tail.Load()
		avail = r.cachedTail - head
	}
	n := len(dst)
	if uint64(n) > avail {
		n = int(avail)
	}
	for i := 0; i < n; i++ {
		idx := (head + uint64(i)) & r.mask
		dst[i] = r.buf[idx]
		r.buf[idx] = zero // drop the reference for GC
	}
	if n > 0 {
		r.head.Store(head + uint64(n))
	}
	return n
}

// Len reports the current occupancy (approximate under concurrency).
func (r *Ring[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Cap reports the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }
