// Package catnap is the kernel library OS: it implements the Demikernel
// queue abstraction over ordinary (simulated) kernel sockets. It exists
// for portability and development, just like the open-source Demikernel's
// catnap: the same application binary that runs over catnip (DPDK) or
// catmint (RDMA) runs here — paying the legacy costs of Figure 1's left
// side: a syscall crossing and a payload copy per I/O, and the in-kernel
// network stack per packet.
package catnap

import (
	"errors"
	"io"
	"sync"

	"demikernel/internal/core"
	"demikernel/internal/kernel"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// Transport is the catnap libOS transport.
type Transport struct {
	model *simclock.CostModel
	k     *kernel.Kernel

	mu  sync.Mutex
	eps []*endpoint
	fqs []*fileQueue
}

// New wraps an existing simulated kernel. The kernel carries the NIC and
// in-kernel stack; see kernel.New.
func New(model *simclock.CostModel, k *kernel.Kernel) *Transport {
	return &Transport{model: model, k: k}
}

// Name implements core.Transport.
func (t *Transport) Name() string { return "catnap" }

// Features implements core.Transport: no kernel bypass at all — the
// kernel supplies everything, at kernel prices.
func (t *Transport) Features() core.Features {
	return core.Features{
		KernelBypass:     false,
		SoftwareSupplied: []string{"sga framing"},
	}
}

// Kernel exposes the underlying kernel (for counters in experiments).
func (t *Transport) Kernel() *kernel.Kernel { return t.k }

// RegisterTelemetry lifts the kernel's simclock counters and the
// in-kernel stack's counters into a telemetry registry under prefix.
func (t *Transport) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	t.k.Stack().RegisterTelemetry(r, prefix+".netstack")
	ctr := func(read func(simclock.Counters) int64) func() int64 {
		return func() int64 { return read(t.k.Counters()) }
	}
	r.RegisterFunc(prefix+".kernel.syscall_crossings", ctr(func(c simclock.Counters) int64 { return c.SyscallCrossings }))
	r.RegisterFunc(prefix+".kernel.bytes_copied", ctr(func(c simclock.Counters) int64 { return c.BytesCopied }))
	r.RegisterFunc(prefix+".kernel.bytes_dma", ctr(func(c simclock.Counters) int64 { return c.BytesDMA }))
	r.RegisterFunc(prefix+".kernel.packets", ctr(func(c simclock.Counters) int64 { return c.Packets }))
	r.RegisterFunc(prefix+".kernel.wakeups", ctr(func(c simclock.Counters) int64 { return c.Wakeups }))
	r.RegisterFunc(prefix+".kernel.wasted_wakeups", ctr(func(c simclock.Counters) int64 { return c.WastedWakeups }))
}

// AllocSGA implements core.Transport: plain heap memory; there is no
// device to register with.
func (t *Transport) AllocSGA(n int) sga.SGA {
	return sga.New(make([]byte, n))
}

// SocketUDP implements core.Transport; this libOS has no datagram path.
func (t *Transport) SocketUDP() (core.Endpoint, error) {
	return nil, core.ErrNotSupported
}

// Open implements core.Transport: file queues over the legacy kernel
// file system (page cache, journaling, syscalls, copies). Requires a
// disk attached to the kernel; see file.go.
func (t *Transport) Open(path string) (queue.IoQueue, error) {
	return t.OpenFileQueue(path)
}

// Socket implements core.Transport.
func (t *Transport) Socket() (core.Endpoint, error) {
	ep := &endpoint{t: t, fd: -1}
	t.mu.Lock()
	t.eps = append(t.eps, ep)
	t.mu.Unlock()
	return ep, nil
}

// Poll implements core.Transport.
func (t *Transport) Poll() int {
	n := t.k.Poll()
	t.mu.Lock()
	eps := append([]*endpoint(nil), t.eps...)
	t.mu.Unlock()
	for _, ep := range eps {
		n += ep.Pump()
	}
	t.mu.Lock()
	fqs := append([]*fileQueue(nil), t.fqs...)
	t.mu.Unlock()
	for _, fq := range fqs {
		n += fq.Pump()
	}
	return n
}

func (t *Transport) adopt(ep *endpoint) {
	t.mu.Lock()
	t.eps = append(t.eps, ep)
	t.mu.Unlock()
}

// endpoint is one catnap socket queue over a kernel TCP socket.
type endpoint struct {
	t *Transport

	mu        sync.Mutex
	bound     core.Addr
	fd        kernel.FD // connection fd, -1 until connected/accepted
	listenFD  kernel.FD
	listening bool
	framer    sga.Framer
	ready     []queue.Completion
	waiters   []queue.DoneFunc
	txq       []txFrame
	closed    bool
}

type txFrame struct {
	data []byte
	cost simclock.Lat
	done queue.DoneFunc
	sent int
}

// Bind implements core.Endpoint.
func (e *endpoint) Bind(addr core.Addr) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bound = addr
	return nil
}

// LocalAddr implements core.Endpoint.
func (e *endpoint) LocalAddr() core.Addr {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bound
}

// Listen implements core.Endpoint.
func (e *endpoint) Listen() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	fd, _, err := e.t.k.Listen(e.bound.Port)
	if err != nil {
		return err
	}
	e.listenFD = fd
	e.listening = true
	return nil
}

// Accept implements core.Endpoint.
func (e *endpoint) Accept() (core.Endpoint, bool, error) {
	e.mu.Lock()
	if !e.listening {
		e.mu.Unlock()
		return nil, false, core.ErrNotListening
	}
	lfd := e.listenFD
	e.mu.Unlock()
	fd, _, err := e.t.k.Accept(lfd)
	if errors.Is(err, kernel.ErrWouldBlock) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	child := &endpoint{t: e.t, fd: fd}
	e.t.adopt(child)
	return child, true, nil
}

// Connect implements core.Endpoint.
func (e *endpoint) Connect(addr core.Addr) error {
	fd, _, err := e.t.k.Connect(addr.IP, addr.Port)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.fd = fd
	e.mu.Unlock()
	return nil
}

// Connected implements core.Endpoint.
func (e *endpoint) Connected() bool {
	e.mu.Lock()
	fd := e.fd
	e.mu.Unlock()
	return fd >= 0 && e.t.k.Connected(fd)
}

// Err implements core.Endpoint. The in-kernel stack owns failure
// detection for catnap sockets and reports errors through syscall
// results, so the endpoint itself never carries a terminal error.
func (e *endpoint) Err() error { return nil }

// Push implements queue.IoQueue. Unlike catnip, every pushed byte pays
// the syscall and user→kernel copy inside kernel.Send.
func (e *endpoint) Push(s sga.SGA, cost simclock.Lat, done queue.DoneFunc) {
	e.mu.Lock()
	if e.closed || e.fd < 0 {
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPush, Err: queue.ErrClosed})
		return
	}
	e.txq = append(e.txq, txFrame{data: s.Marshal(), cost: cost, done: done})
	e.mu.Unlock()
	e.Pump()
}

// Pop implements queue.IoQueue.
func (e *endpoint) Pop(done queue.DoneFunc) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
		return
	}
	if len(e.ready) > 0 {
		c := e.ready[0]
		e.ready = e.ready[1:]
		e.mu.Unlock()
		done(c)
		return
	}
	e.waiters = append(e.waiters, done)
	e.mu.Unlock()
	e.Pump()
}

// Pump implements queue.IoQueue.
func (e *endpoint) Pump() int {
	e.mu.Lock()
	fd := e.fd
	closed := e.closed
	e.mu.Unlock()
	if fd < 0 || closed {
		return 0
	}
	n := e.flushTx(fd) + e.drainRx(fd)
	e.serveWaiters()
	return n
}

func (e *endpoint) flushTx(fd kernel.FD) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for len(e.txq) > 0 {
		f := &e.txq[0]
		sent, cost, err := e.t.k.Send(fd, f.data[f.sent:], f.cost)
		if err != nil {
			done := f.done
			e.txq = e.txq[1:]
			e.mu.Unlock()
			done(queue.Completion{Kind: queue.OpPush, Err: err})
			e.mu.Lock()
			continue
		}
		f.sent += sent
		f.cost = cost
		n += sent
		if f.sent < len(f.data) {
			break
		}
		done := f.done
		e.txq = e.txq[1:]
		e.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPush, Cost: cost})
		e.mu.Lock()
	}
	return n
}

func (e *endpoint) drainRx(fd kernel.FD) int {
	n := 0
	for {
		b, cost, err := e.t.k.Recv(fd, 0)
		if errors.Is(err, io.EOF) {
			e.failWaiters(queue.ErrClosed)
			return n
		}
		if err != nil || len(b) == 0 {
			return n
		}
		e.mu.Lock()
		e.framer.Feed(b)
		for {
			s, ok, ferr := e.framer.Next()
			if ferr != nil {
				e.mu.Unlock()
				e.failWaiters(ferr)
				return n
			}
			if !ok {
				break
			}
			e.ready = append(e.ready, queue.Completion{Kind: queue.OpPop, SGA: s, Cost: cost})
			n++
		}
		e.mu.Unlock()
	}
}

func (e *endpoint) serveWaiters() {
	for {
		e.mu.Lock()
		if len(e.waiters) == 0 || len(e.ready) == 0 {
			e.mu.Unlock()
			return
		}
		w := e.waiters[0]
		e.waiters = e.waiters[1:]
		c := e.ready[0]
		e.ready = e.ready[1:]
		e.mu.Unlock()
		w(c)
	}
}

func (e *endpoint) failWaiters(err error) {
	e.mu.Lock()
	ws := e.waiters
	e.waiters = nil
	e.mu.Unlock()
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: err})
	}
}

// Close implements queue.IoQueue.
func (e *endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	fd, lfd, listening := e.fd, e.listenFD, e.listening
	e.mu.Unlock()
	if fd >= 0 {
		e.t.k.Close(fd)
	}
	if listening {
		e.t.k.Close(lfd)
	}
	e.failWaiters(queue.ErrClosed)
	return nil
}
