package tenant

import (
	"errors"
	"sync"
	"testing"
)

func TestLedgerCharges(t *testing.T) {
	l := NewLedger(10_000, 4)
	for i := 0; i < 4; i++ {
		if !l.ChargeFrame(2048) {
			t.Fatalf("charge %d refused under quota", i)
		}
	}
	if l.ChargeFrame(128) {
		t.Fatal("frame-count cap not enforced")
	}
	if l.Denials() != 1 {
		t.Fatalf("denials = %d, want 1", l.Denials())
	}
	l.CreditFrame(2048)
	if !l.ChargeFrame(1024) {
		t.Fatal("charge refused after credit freed a slot")
	}
	f, b := l.Outstanding()
	if f != 4 || b != 3*2048+1024 {
		t.Fatalf("outstanding = %d frames / %d bytes", f, b)
	}
}

func TestLedgerByteCap(t *testing.T) {
	l := NewLedger(4096, 0)
	if !l.ChargeFrame(4096) {
		t.Fatal("exact-cap charge refused")
	}
	if l.ChargeFrame(1) {
		t.Fatal("byte cap not enforced")
	}
	// The refused charge must not leave a phantom frame behind.
	if f, _ := l.Outstanding(); f != 1 {
		t.Fatalf("outstanding frames = %d after refused charge, want 1", f)
	}
}

func TestLedgerReclaimClampsLateCredits(t *testing.T) {
	l := NewLedger(0, 0)
	for i := 0; i < 5; i++ {
		l.ChargeFrame(512)
	}
	frames, bytes := l.Reclaim()
	if frames != 5 || bytes != 5*512 {
		t.Fatalf("reclaimed %d/%d, want 5/2560", frames, bytes)
	}
	if f, b := l.Outstanding(); f != 0 || b != 0 {
		t.Fatalf("outstanding %d/%d after reclaim, want 0/0", f, b)
	}
	// A straggler release arriving after the crash reclaim must clamp,
	// not go negative (a negative balance would mask a later leak).
	l.CreditFrame(512)
	if f, b := l.Outstanding(); f != 0 || b != 0 {
		t.Fatalf("late credit drove ledger negative: %d/%d", f, b)
	}
	if c, rf, _ := l.Reclaims(); c != 1 || rf != 5 {
		t.Fatalf("reclaim counters = %d/%d, want 1/5", c, rf)
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger(0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if l.ChargeFrame(128) {
					l.CreditFrame(128)
				}
			}
		}()
	}
	wg.Wait()
	if f, b := l.Outstanding(); f != 0 || b != 0 {
		t.Fatalf("outstanding %d/%d after balanced concurrent traffic", f, b)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a, err := r.Register("a", Policy{FrameQuotaBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("a", Policy{}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate register: err = %v, want ErrDuplicate", err)
	}
	if _, err := r.Register("b", Policy{}); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get("a")
	if !ok || got != a {
		t.Fatal("Get(a) did not return the registered tenant")
	}
	list := r.List()
	if len(list) != 2 || list[0].ID != "a" || list[1].ID != "b" {
		t.Fatalf("List() = %v, want registration order a,b", list)
	}
}
