// Package demikernel is a Go reproduction of the Demikernel, the
// library-OS architecture for kernel-bypass datacenter servers proposed
// in "I'm Not Dead Yet! The Role of the Operating System in a
// Kernel-Bypass Era" (Zhang et al., HotOS 2019).
//
// The Demikernel abstracts kernel-bypass I/O devices as I/O queues whose
// atomic element is a scatter-gather array. Applications push and pop
// whole elements, receive qtokens for outstanding operations, and collect
// completions with Wait, WaitAny, and WaitAll. Device differences are
// hidden behind library OSes: the same application runs unmodified over a
// simulated kernel socket path (catnap), a simulated DPDK NIC with a
// user-level TCP stack (catnip), a simulated RDMA NIC (catmint), and a
// simulated SPDK NVMe device (catfish).
//
// Because the real hardware is simulated, every device and protocol cost
// is charged explicitly from a documented cost model (package
// internal/simclock), making experiments deterministic. See DESIGN.md for
// the full substitution table and EXPERIMENTS.md for the reproduced
// results.
//
// # Quick start
//
//	cluster := demikernel.NewCluster(1)
//	server := cluster.MustSpawn(demikernel.Catnip, demikernel.WithHost(1))
//	client := cluster.MustSpawn(demikernel.Catnip, demikernel.WithHost(2))
//
//	// Server: socket / bind / listen / accept — Figure 3's control path.
//	sqd, _ := server.Socket()
//	server.Bind(sqd, demikernel.Addr{Port: 80})
//	server.Listen(sqd)
//
//	// Client connects and pushes one atomic element.
//	cqd, _ := client.Socket()
//	go client.Connect(cqd, cluster.AddrOf(server, 80))
//	conn, _ := server.Accept(sqd)
//	qt, _ := client.Push(cqd, demikernel.NewSGA([]byte("hi")))
//	client.Wait(qt)
//
//	// Server pops the whole element — never a fragment.
//	comp, _ := server.BlockingPop(conn)
package demikernel

import (
	"fmt"
	"sync/atomic"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/fabric"
	"demikernel/internal/kernel"
	"demikernel/internal/libos/catfish"
	"demikernel/internal/libos/catmint"
	"demikernel/internal/libos/catnap"
	"demikernel/internal/libos/catnip"
	"demikernel/internal/netstack"
	"demikernel/internal/nic"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/shard"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
	"demikernel/internal/telemetry"
	"demikernel/internal/tenant"
)

// Re-exported core types: the Demikernel system-call surface (Figure 3).
type (
	// LibOS is one Demikernel library-OS instance.
	LibOS = core.LibOS
	// QD is a queue descriptor.
	QD = core.QD
	// Addr names a network endpoint.
	Addr = core.Addr
	// Features is the Table 1 hardware/software feature split.
	Features = core.Features
	// QToken identifies one outstanding queue operation.
	QToken = queue.QToken
	// Completion is the result of one queue operation.
	Completion = queue.Completion
	// SGA is a scatter-gather array, the atomic queue element.
	SGA = sga.SGA
	// CostModel is the virtual cost model behind all simulated devices.
	CostModel = simclock.CostModel
	// Lat is a virtual latency in nanoseconds.
	Lat = simclock.Lat
	// TenantID names one tenant sharing a NIC (see WithTenant).
	TenantID = tenant.ID
	// TenantPolicy is a tenant's resource contract: frame/memory quotas,
	// TX weight and rate limit, and steering bounds (see WithTenant).
	TenantPolicy = tenant.Policy
)

// Re-exported errors.
var (
	ErrBadQD        = core.ErrBadQD
	ErrNotSupported = core.ErrNotSupported
	ErrTimeout      = core.ErrTimeout
	// ErrWaitTimeout is the sentinel wrapped by every Wait/Accept/Connect
	// deadline error; match it with errors.Is.
	ErrWaitTimeout = core.ErrWaitTimeout
	// ErrPeerDead is the typed verdict that a connection's remote libOS
	// is gone (crash, exhausted retransmit budget, RST). Failover
	// clients match it with errors.Is and redial.
	ErrPeerDead = core.ErrPeerDead
	// ErrLocalReset is the typed error every qtoken pending at
	// Node.Crash time completes with: the local stack died underneath
	// the operation.
	ErrLocalReset = core.ErrLocalReset
)

// NewSGA builds a scatter-gather array over the given segments without
// copying them.
func NewSGA(segs ...[]byte) SGA { return sga.New(segs...) }

// Cluster is a simulated rack: one fabric switch plus the cost model, to
// which nodes running different library OSes attach. It exists so that
// examples and experiments can build multi-host worlds in a few lines.
type Cluster struct {
	Model  CostModel
	Switch *fabric.Switch

	nodes        []*Node
	shardedNodes []*ShardedNode

	// Multi-tenant plane, created lazily by the first WithTenant spawn:
	// one shared NIC whose queue groups partition among tenants, and the
	// registry fixing each tenant's resource contract at bind time.
	tenants   *tenant.Registry
	sharedNIC *nic.Device
}

// Node binds a LibOS to its simulated host identity on the cluster.
// Sharded catnip nodes are Nodes too: LibOS is shard 0's syscall
// surface and Sharded carries the full shard set, so the lifecycle
// methods (Crash, Restart) and the polling helpers work uniformly over
// both shapes.
type Node struct {
	*LibOS
	MAC fabric.MAC
	IP  netstack.IPv4Addr

	// Kernel is non-nil on catnap nodes (for counters).
	Kernel *kernel.Kernel
	// Catnip is non-nil on catnip nodes (for device/stack access). On a
	// sharded node it is shard 0's transport.
	Catnip *catnip.Transport
	// Catmint is non-nil on catmint nodes.
	Catmint *catmint.Transport
	// Catfish is non-nil on catfish nodes.
	Catfish *catfish.Transport
	// Sharded is non-nil when the node was spawned with WithShards: the
	// N-shard catnip runtime behind this host identity.
	Sharded *ShardedNode
	// Clock is non-nil when the node was spawned WithLifecycle: the
	// node's private virtual wall clock, skewable by the chaos engine's
	// ClockSkew fault (every protocol timer on this node reads it).
	Clock *simclock.DriftClock
	// Tenant is non-nil when the node was spawned WithTenant: its
	// identity, policy, and frame-quota ledger on the shared NIC.
	Tenant *tenant.Tenant

	cluster   *Cluster
	host      byte
	kind      Kind
	cfg       NodeConfig // spawn-time knobs, kept for SwitchKind rebuilds
	gen       atomic.Uint64
	resharder Resharder
}

// NodeConfig identifies a host within a cluster.
type NodeConfig struct {
	// Host is a small integer naming the host; it determines the
	// node's MAC (02:00:00:00:00:<host>) and IP (10.0.0.<host>).
	Host byte
	// PerPacketExtra adds processing cost to every packet on this
	// node's stack (used to model mTCP-style POSIX emulation, §6).
	PerPacketExtra Lat
	// PostedRecvs overrides the RDMA receive window (catmint only).
	PostedRecvs int

	// MemCapacity caps the catnip node's pinned-memory bytes; staging a
	// push beyond it fails with membuf.ErrNoMem (catnip only, 0 =
	// unbounded).
	MemCapacity int64
	// RTO overrides the user TCP stack's initial retransmission timeout
	// (catnip only; chaos tests shorten it).
	RTO time.Duration
	// MaxRetransmits overrides the TCP give-up budget (catnip only).
	MaxRetransmits int
	// RxReadyCap bounds buffered-but-unharvested pop completions per
	// endpoint; past it the receive drain parks and the TCP advertised
	// window closes toward the peer, so a slow reader stalls its sender
	// instead of growing an unbounded backlog (catnip only, 0 =
	// unbounded).
	RxReadyCap int

	// OpTimeout bounds how long an RDMA operation may stay in flight
	// before the peer is declared dead (catmint only; negative
	// disables).
	OpTimeout time.Duration
	// MaxReconnects bounds QP redial attempts after a QP error
	// (catmint only).
	MaxReconnects int
	// ReconnectBackoff is the first QP redial delay; it doubles per
	// attempt (catmint only).
	ReconnectBackoff time.Duration
}

// NewCluster creates a cluster with deterministic fault injection seeded
// by seed.
func NewCluster(seed int64) *Cluster {
	return NewClusterWithModel(seed, simclock.Datacenter2019())
}

// NewClusterWithModel creates a cluster charging costs from a custom cost
// model — the hook the ablation experiments use to sweep individual cost
// parameters (syscall price, copy bandwidth, ...).
func NewClusterWithModel(seed int64, model CostModel) *Cluster {
	c := &Cluster{Model: model}
	c.Switch = fabric.NewSwitch(&c.Model, seed)
	return c
}

func (c *Cluster) mac(host byte) fabric.MAC {
	return fabric.MAC{0x02, 0, 0, 0, 0, host}
}

func (c *Cluster) ip(host byte) netstack.IPv4Addr {
	return netstack.IP(10, 0, 0, host)
}

func (c *Cluster) newKernelNIC(host byte) *nic.Device {
	return nic.New(&c.Model, c.Switch, nic.Config{MAC: c.mac(host)})
}

// Kind names a library OS a Cluster can spawn. The same application
// code runs over every kind (§4.1); the kind decides which simulated
// device the node's queues are backed by.
type Kind string

// The four library OSes of the paper's Figure 2.
const (
	// Catnip is the DPDK-class kind: kernel-bypass NIC + user TCP stack.
	Catnip Kind = "catnip"
	// Catnap is the legacy kind: same wire, kernel socket costs.
	Catnap Kind = "catnap"
	// Catmint is the RDMA kind.
	Catmint Kind = "catmint"
	// Catfish is the storage kind (simulated SPDK NVMe).
	Catfish Kind = "catfish"
)

// spawnSpec accumulates functional options for Spawn.
type spawnSpec struct {
	cfg       NodeConfig
	hostSet   bool
	shards    int
	capacity  int
	reg       *telemetry.Registry
	prefix    string
	lifecycle bool
	blocks    int
	disk      *spdk.Device

	hasTenant    bool
	tenantID     tenant.ID
	tenantPolicy tenant.Policy
}

// SpawnOption configures one Spawn call.
type SpawnOption func(*spawnSpec)

// WithHost names the node's host identity (MAC 02:00:00:00:00:<h>, IP
// 10.0.0.<h>). It overrides any Host carried by WithConfig.
func WithHost(h byte) SpawnOption {
	return func(s *spawnSpec) { s.cfg.Host = h; s.hostSet = true }
}

// WithConfig carries the long tail of per-node knobs (RTO, retransmit
// budgets, RDMA windows, memory caps...). A later WithHost still wins
// for the host identity.
func WithConfig(cfg NodeConfig) SpawnOption {
	return func(s *spawnSpec) {
		host, set := s.cfg.Host, s.hostSet
		s.cfg = cfg
		if set {
			s.cfg.Host = host
		}
	}
}

// WithShards spawns the catnip node as an n-shard share-nothing runtime
// (one RSS queue, netstack, completer, and frame pool per shard). The
// returned Node's LibOS is shard 0; Node.Sharded carries the full set.
// Only meaningful for the Catnip kind.
func WithShards(n int) SpawnOption {
	return func(s *spawnSpec) { s.shards = n }
}

// WithShardCapacity provisions headroom for elastic resharding: the
// device gets cap receive queues and cap full shard verticals, but only
// WithShards(n) of them are active at spawn. Reshard can then move the
// active width anywhere in [1, cap] live. cap below the shard count is
// ignored. Only meaningful with WithShards on a non-tenant Catnip node.
func WithShardCapacity(cap int) SpawnOption {
	return func(s *spawnSpec) { s.capacity = cap }
}

// WithTelemetry registers the node's whole vertical (NIC, stack(s),
// membuf, lifecycle counters) in reg under "host<N>" as it is spawned.
func WithTelemetry(reg *telemetry.Registry) SpawnOption {
	return func(s *spawnSpec) { s.reg = reg }
}

// WithTelemetryPrefix overrides the registration prefix used by
// WithTelemetry.
func WithTelemetryPrefix(prefix string) SpawnOption {
	return func(s *spawnSpec) { s.prefix = prefix }
}

// WithLifecycle gives the node a private skewable virtual wall clock
// (Node.Clock) that every protocol timer on the node reads — the hook
// the chaos engine's ClockSkew fault drives. Crash and Restart work on
// every catnip node regardless; WithLifecycle only adds the clock.
func WithLifecycle() SpawnOption {
	return func(s *spawnSpec) { s.lifecycle = true }
}

// WithTenant spawns the catnip node as one tenant of the cluster's
// shared NIC instead of giving it a dedicated device — the paper's §3/§7
// protection scenario: untrusting applications on one kernel-bypass
// NIC, isolated by the control plane, not by trust.
//
// At spawn time the tenant is registered under id with pol fixed for
// its lifetime, a queue group on the shared NIC is claimed (one queue
// per shard), the tenant's frame pools are tagged with its ID and
// charged against its quota ledger, and its TX path joins the NIC's
// weighted-deficit-round-robin scheduler. Zero-valued policy fields
// mean unbounded/default; empty steering bounds default to exactly the
// node's own MAC/IP. Only meaningful for the Catnip kind.
func WithTenant(id string, pol TenantPolicy) SpawnOption {
	return func(s *spawnSpec) {
		s.hasTenant = true
		s.tenantID = tenant.ID(id)
		s.tenantPolicy = pol
	}
}

// WithBlocks sets the capacity (in blocks) of the fresh NVMe namespace
// a Catfish node is spawned over (0 = default).
func WithBlocks(n int) SpawnOption {
	return func(s *spawnSpec) { s.blocks = n }
}

// WithDisk spawns the Catfish node over an existing device, recovering
// any log it carries (restart scenarios). Overrides WithBlocks.
func WithDisk(dev *spdk.Device) SpawnOption {
	return func(s *spawnSpec) { s.disk = dev }
}

// Spawn attaches a node running the given library OS to the cluster —
// the one construction surface behind which every per-kind constructor
// now lives. Typical calls:
//
//	srv, _ := c.Spawn(demikernel.Catnip, demikernel.WithHost(1))
//	kv8, _ := c.Spawn(demikernel.Catnip, demikernel.WithHost(1), demikernel.WithShards(8))
//	old, _ := c.Spawn(demikernel.Catnap, demikernel.WithHost(3))
//	dsk, _ := c.Spawn(demikernel.Catfish, demikernel.WithBlocks(1<<16))
//
// Spawn fails only for an unknown kind, an option that the kind cannot
// honor, or a catfish device whose log cannot be recovered.
func (c *Cluster) Spawn(kind Kind, opts ...SpawnOption) (*Node, error) {
	var sp spawnSpec
	for _, o := range opts {
		o(&sp)
	}
	if sp.shards > 0 && kind != Catnip {
		return nil, fmt.Errorf("demikernel: WithShards is %w for %s nodes", core.ErrNotSupported, kind)
	}
	if sp.hasTenant && kind != Catnip {
		return nil, fmt.Errorf("demikernel: WithTenant on %s nodes: %w", kind, core.ErrNotSupported)
	}
	cfg := sp.cfg
	n := &Node{
		MAC:     c.mac(cfg.Host),
		IP:      c.ip(cfg.Host),
		cluster: c,
		host:    cfg.Host,
	}
	var clock func() time.Time
	if sp.lifecycle {
		n.Clock = simclock.NewDriftClock()
		clock = n.Clock.Now
	}
	switch kind {
	case Catnip:
		ccfg := catnip.Config{
			MAC:            c.mac(cfg.Host),
			IP:             c.ip(cfg.Host),
			PerPacketExtra: cfg.PerPacketExtra,
			MemCapacity:    cfg.MemCapacity,
			RTO:            cfg.RTO,
			MaxRetransmits: cfg.MaxRetransmits,
			RxReadyCap:     cfg.RxReadyCap,
			Clock:          clock,
		}
		var grp *nic.QueueGroup
		if sp.hasTenant {
			ten, g, err := c.spawnTenant(&sp, n, clock)
			if err != nil {
				return nil, err
			}
			n.Tenant, grp = ten, g
			if ccfg.MemCapacity == 0 {
				ccfg.MemCapacity = ten.Policy.MemBytes
			}
			// Every frame pool this tenant's shards create is tagged with
			// the tenant ID (so misuse panics name the culprit) and
			// charged against the tenant's ledger (so a leak exhausts the
			// leaker, not the device).
			id, ledger := string(ten.ID), ten.Ledger
			ccfg.PoolFactory = func() *fabric.FramePool {
				p := fabric.NewFramePool()
				p.SetOwner(id, ledger)
				return p
			}
		}
		if sp.shards > 0 {
			var set *catnip.ShardSet
			switch {
			case grp != nil:
				if sp.capacity > sp.shards {
					return nil, fmt.Errorf("demikernel: WithShardCapacity on a tenant node: %w", core.ErrNotSupported)
				}
				set = catnip.NewShardedOn(&c.Model, grp, ccfg, sp.shards)
			case sp.capacity > sp.shards:
				set = catnip.NewShardedElastic(&c.Model, c.Switch, ccfg, sp.shards, sp.capacity)
			default:
				set = catnip.NewSharded(&c.Model, c.Switch, ccfg, sp.shards)
			}
			sn := &ShardedNode{Set: set, MAC: n.MAC, IP: n.IP, Clock: n.Clock, cluster: c}
			for i := 0; i < set.Capacity(); i++ {
				sn.Libs = append(sn.Libs, core.New(set.Shard(i), &c.Model))
			}
			n.Sharded = sn
			n.LibOS = sn.Libs[0]
			n.Catnip = set.Shard(0)
			sn.node = n
			c.shardedNodes = append(c.shardedNodes, sn)
		} else {
			var t *catnip.Transport
			if grp != nil {
				t = catnip.NewOnGroup(&c.Model, grp, ccfg)
			} else {
				t = catnip.New(&c.Model, c.Switch, ccfg)
			}
			n.LibOS = core.New(t, &c.Model)
			n.Catnip = t
			c.nodes = append(c.nodes, n)
		}
	case Catnap:
		dev := c.newKernelNIC(cfg.Host)
		k := kernel.New(&c.Model, dev, c.ip(cfg.Host))
		n.LibOS = core.New(catnap.New(&c.Model, k), &c.Model)
		n.Kernel = k
		c.nodes = append(c.nodes, n)
	case Catmint:
		t := catmint.New(&c.Model, c.Switch, catmint.Config{
			MAC:              c.mac(cfg.Host),
			PostedRecvs:      cfg.PostedRecvs,
			OpTimeout:        cfg.OpTimeout,
			MaxReconnects:    cfg.MaxReconnects,
			ReconnectBackoff: cfg.ReconnectBackoff,
		})
		n.LibOS = core.New(t, &c.Model)
		n.Catmint = t
		c.nodes = append(c.nodes, n)
	case Catfish:
		dev := sp.disk
		if dev == nil {
			dev = spdk.New(&c.Model, spdk.Config{NumBlocks: sp.blocks})
		}
		t, err := catfish.New(&c.Model, dev)
		if err != nil {
			return nil, err
		}
		n.LibOS = core.New(t, &c.Model)
		n.Catfish = t
		n.MAC, n.IP = fabric.MAC{}, netstack.IPv4Addr{}
		c.nodes = append(c.nodes, n)
	default:
		return nil, fmt.Errorf("demikernel: unknown libOS kind %q", kind)
	}
	n.kind = kind
	n.cfg = cfg
	if sp.reg != nil {
		prefix := sp.prefix
		if prefix == "" {
			prefix = fmt.Sprintf("host%d", cfg.Host)
		}
		n.RegisterTelemetry(sp.reg, prefix)
	}
	return n, nil
}

// Tenants returns the cluster's tenant registry, creating it on first
// use. Every WithTenant spawn registers here; `demi-stat -tenants`
// reads quota occupancy from the same ledgers.
func (c *Cluster) Tenants() *tenant.Registry {
	if c.tenants == nil {
		c.tenants = tenant.NewRegistry()
	}
	return c.tenants
}

// SharedNIC returns the cluster's one multi-tenant NIC, creating it on
// first use: a 32-queue device on the fabric from which WithTenant
// spawns claim contiguous queue groups. Its MAC is a device identity
// only — tenants answer on their own MACs via group ownership.
func (c *Cluster) SharedNIC() *nic.Device {
	if c.sharedNIC == nil {
		c.sharedNIC = nic.New(&c.Model, c.Switch, nic.Config{
			MAC:      fabric.MAC{0x02, 0, 0, 0, 0xff, 0},
			RxQueues: 32,
		})
	}
	return c.sharedNIC
}

// spawnTenant registers the tenant identity and claims its queue group
// on the shared NIC — the bind-time half of isolation: every check that
// could cost per-frame (steering bounds, quota tagging, TX weight) is
// fixed here, before the first packet.
func (c *Cluster) spawnTenant(sp *spawnSpec, n *Node, clock func() time.Time) (*tenant.Tenant, *nic.QueueGroup, error) {
	pol := sp.tenantPolicy
	// An empty steering bound means "exactly yourself": the node's own
	// MAC and IP, all ports. Wider bounds must be granted explicitly.
	if len(pol.MACs) == 0 {
		pol.MACs = []fabric.MAC{n.MAC}
	}
	if len(pol.IPs) == 0 {
		pol.IPs = [][4]byte{[4]byte(n.IP)}
	}
	ten, err := c.Tenants().Register(sp.tenantID, pol)
	if err != nil {
		return nil, nil, fmt.Errorf("demikernel: spawn tenant %q: %w", sp.tenantID, err)
	}
	queues := sp.shards
	if queues <= 0 {
		queues = 1
	}
	grp, err := c.SharedNIC().NewQueueGroup(string(sp.tenantID), queues, nic.GroupConfig{
		MAC: n.MAC,
		IP:  [4]byte(n.IP),
		Bounds: nic.SteeringBounds{
			MACs:   pol.MACs,
			IPs:    pol.IPs,
			PortLo: pol.PortLo,
			PortHi: pol.PortHi,
		},
		TxWeight:     pol.TxWeight,
		TxRateBps:    pol.TxRateBps,
		TxBurstBytes: pol.TxBurstBytes,
		Clock:        clock,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("demikernel: spawn tenant %q: %w", sp.tenantID, err)
	}
	return ten, grp, nil
}

// MustSpawn is Spawn, panicking on error — for tests, examples, and
// other rigs where a failed spawn is programmer error.
func (c *Cluster) MustSpawn(kind Kind, opts ...SpawnOption) *Node {
	n, err := c.Spawn(kind, opts...)
	if err != nil {
		panic(err)
	}
	return n
}

// RegisterTelemetry lifts the node's whole vertical into a registry
// under prefix, whatever the node's kind or shard shape.
func (n *Node) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	if n.Sharded != nil {
		n.Sharded.RegisterTelemetry(r, prefix)
		return
	}
	n.LibOS.RegisterTelemetry(r, prefix)
}

// ShardedNode is an N-shard catnip host: one NIC (with N RSS receive
// queues), one MAC, one IP — and N fully independent libOS shards, each
// owning one queue, one netstack, one memory manager, and one frame
// pool. Libs[i] is shard i's complete Demikernel syscall surface; the
// Mesh carries the rare cross-shard traffic.
type ShardedNode struct {
	Set  *catnip.ShardSet
	Libs []*LibOS
	MAC  fabric.MAC
	IP   netstack.IPv4Addr
	// Clock is non-nil when spawned WithLifecycle: the node-wide
	// skewable clock every shard's protocol timers read.
	Clock *simclock.DriftClock

	cluster *Cluster
	node    *Node
}

// Node returns the unified Node wrapper for this sharded host (LibOS =
// shard 0), the handle Spawn hands out.
func (n *ShardedNode) Node() *Node { return n.node }

// Size returns the ACTIVE shard count (equal to the provisioned count
// unless the node was spawned WithShardCapacity and resharded).
func (n *ShardedNode) Size() int { return n.Set.Size() }

// Mesh returns the cross-shard SPSC message mesh.
func (n *ShardedNode) Mesh() *shard.Group { return n.Set.Mesh() }

// Poll pumps every shard's data path once.
func (n *ShardedNode) Poll() int {
	total := 0
	for _, l := range n.Libs {
		total += l.Poll()
	}
	return total
}

// Background starts one polling goroutine per shard (a deployment pins
// one per core) and returns a function stopping them all.
func (n *ShardedNode) Background() (stop func()) {
	stops := make([]func(), 0, len(n.Libs))
	for _, l := range n.Libs {
		stops = append(stops, l.Background())
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// FabricPort returns the switch port of the sharded node's NIC (for
// chaos schedules).
func (n *ShardedNode) FabricPort() int { return n.Set.Device().PortID() }

// RegisterTelemetry lifts the whole sharded vertical into a registry:
// the shared NIC under prefix.nic, each shard's stack/membuf/completer
// under prefix.shard.<i>.*, and the mesh counters as
// prefix.shard.<i>.xs_*.
func (n *ShardedNode) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	n.Set.RegisterTelemetry(r, prefix)
	for i, l := range n.Libs {
		l.Completer().RegisterTelemetry(r, fmt.Sprintf("%s.shard.%d.completer", prefix, i))
	}
}

// FabricPort returns the switch port ID the node's NIC is attached to
// (catnip and catmint nodes only; -1 otherwise). Chaos schedules use it
// to target link faults at one host.
func (n *Node) FabricPort() int {
	switch {
	case n.Catnip != nil:
		return n.Catnip.Device().PortID()
	case n.Catmint != nil:
		return n.Catmint.Device().PortID()
	}
	return -1
}

// Poll pumps the node's data path once — every shard of a sharded node,
// the single libOS otherwise.
func (n *Node) Poll() int {
	if n.Sharded != nil {
		return n.Sharded.Poll()
	}
	return n.LibOS.Poll()
}

// Background starts the node's polling goroutines (one per shard) and
// returns a function stopping them all.
func (n *Node) Background() (stop func()) {
	if n.Sharded != nil {
		return n.Sharded.Background()
	}
	return n.LibOS.Background()
}

// Crash kills the node the way a process death does (§3: with kernel
// bypass, the TCP state machine, the pinned buffers, and the pending
// qtokens all live in the dying process — so all of them die here):
//
//   - the node's fabric link goes down, so the wire stops delivering to
//     the corpse (frames already in flight are dropped at the switch,
//     counted as LinkDownDrops);
//   - the stack (every shard's, on a sharded node) is shut down in
//     place: connections become terminal, listener backlogs die, pooled
//     buffers held by reassembly and datagram queues are released;
//   - every pending qtoken completes immediately with a typed error
//     satisfying errors.Is(err, ErrLocalReset) — nothing hangs;
//   - the NIC receive rings are flushed, releasing frames the dead
//     stack never ingested back to their pools (counted in the nic
//     rx_flushed telemetry bucket, which the frame-conservation
//     selftest folds into its law).
//
// Crash returns the number of qtokens aborted plus ring frames
// reclaimed. It is idempotent and supported on catnip nodes (sharded or
// not); other kinds return ErrNotSupported.
func (n *Node) Crash() (int, error) {
	if n.Catnip == nil {
		return 0, fmt.Errorf("demikernel: Crash is %w on this node kind", core.ErrNotSupported)
	}
	if n.Tenant == nil {
		// A tenant node shares its NIC — and therefore its fabric link —
		// with other tenants, so the link must stay up; only a dedicated
		// device's link dies with its owner.
		n.cluster.Switch.SetLinkState(n.FabricPort(), false)
	}
	var aborted int
	if n.Sharded != nil {
		aborted = n.Sharded.Set.Crash()
		// Flush submission rings after the transports die: in-flight ring
		// ops have already posted their typed-error CQEs, so the flush
		// only converts posted-but-undrained SQEs (and rewrites anything
		// unharvested at harvest time) — each pending op resolves to
		// exactly one ErrLocalReset CQE.
		for _, l := range n.Sharded.Libs {
			fs, fc := l.FlushRings(core.ErrLocalReset)
			aborted += fs + fc
		}
	} else {
		aborted = n.Catnip.Crash()
		aborted += n.Catnip.FlushRx()
		fs, fc := n.LibOS.FlushRings(core.ErrLocalReset)
		aborted += fs + fc
	}
	if n.Tenant != nil {
		// Device-side reclamation of the dead tenant's quota: whatever
		// frame bytes the corpse still held (leaked, queued, in flight)
		// return to the ledger so the NIC's memory is whole again.
		n.Tenant.Ledger.Reclaim()
	}
	return aborted, nil
}

// Restart reconstitutes a crashed node on the same device, MAC, and IP:
// the fabric link comes back up, every shard gets a fresh netstack,
// shared neighbor entries learned by the dead incarnation are
// generation-invalidated, the application's listening queues are
// re-armed on the fresh stack (LibrettOS-style dynamic re-binding — no
// application restart), and a gratuitous ARP announces the reborn node.
// Established connections stay dead: peers must redial, exactly like
// clients of a restarted server in the real world.
func (n *Node) Restart() error {
	if n.Catnip == nil {
		return fmt.Errorf("demikernel: Restart is %w on this node kind", core.ErrNotSupported)
	}
	if n.Tenant == nil {
		n.cluster.Switch.SetLinkState(n.FabricPort(), true)
	}
	if n.Sharded != nil {
		return n.Sharded.Set.Restart()
	}
	return n.Catnip.Restart()
}

// Crashed reports whether the node is currently down.
func (n *Node) Crashed() bool {
	return n.Catnip != nil && n.Catnip.Crashed()
}

// Crash crashes the sharded host — all shards at once, plus link
// detach and ring reclamation. See Node.Crash for the semantics.
func (n *ShardedNode) Crash() (int, error) { return n.node.Crash() }

// Restart reconstitutes the crashed sharded host. See Node.Restart.
func (n *ShardedNode) Restart() error { return n.node.Restart() }

// Crashed reports whether the sharded host is currently down.
func (n *ShardedNode) Crashed() bool { return n.Set.Crashed() }

// AddrOf returns the address of node's port, usable from any libOS.
func (c *Cluster) AddrOf(n *Node, port uint16) Addr {
	return Addr{IP: n.IP, MAC: n.MAC, Port: port}
}

// Poll pumps every node's data path once (tests and single-threaded
// drivers use it instead of per-node polling).
func (c *Cluster) Poll() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Poll()
	}
	for _, n := range c.shardedNodes {
		total += n.Poll()
	}
	return total
}

// NewDisk creates a standalone simulated NVMe device on this cluster's
// cost model (for kernel-file-system baselines and restarts).
func (c *Cluster) NewDisk(numBlocks int) *spdk.Device {
	return spdk.New(&c.Model, spdk.Config{NumBlocks: numBlocks})
}

// String summarises the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{%d nodes}", len(c.nodes))
}
