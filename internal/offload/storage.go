package offload

import (
	"bytes"
	"encoding/binary"

	"demikernel/internal/spdk"
)

// This file extends the FilterSpec model from NIC frames to storage
// blocks (§4.2's offload story applied to the paper's storage column):
// one lookup/filter function expressed at both levels. The device level
// is a pushdown program that runs in the NVMe completion path; the host
// level is the CPU fallback the libOS uses when no program is installed
// ("library OSes always implement filters directly on supported devices
// but default to using the CPU if necessary").
//
// The two levels are independent implementations of the same on-block
// format, and they must agree on every block — well-formed or corrupt —
// because a lookup must return byte-identical results whichever side
// runs it. storage_test.go property-tests exactly that.

// BlockLookupSpec is one block-structure lookup expressed at both
// levels.
type BlockLookupSpec struct {
	Name string
	// Host is the CPU implementation: one step of the traversal over a
	// block the device surfaced to the host.
	Host func(key, block []byte) spdk.Step
	// Device is the implementation lowered into the device's completion
	// path.
	Device spdk.Prog
}

// Install admits the spec's device program into dev's pushdown slot
// table, returning the handle for SubmitLookup.
func (s BlockLookupSpec) Install(dev *spdk.Device, cfg spdk.PushdownConfig) (int, error) {
	return dev.InstallPushdown(s.Device, cfg)
}

// IndexLookup returns the spec for the block-resident sorted index
// (spdk.BuildIndex). The device side wraps the canonical spdk.IndexStep;
// the host side is this package's own decoder — binary search over a
// validated entry table, written separately so the agreement property
// test has two real implementations to compare.
func IndexLookup() BlockLookupSpec {
	return BlockLookupSpec{
		Name:   "blockindex",
		Host:   hostIndexStep,
		Device: spdk.IndexProg{},
	}
}

// hostIndexStep is the host-CPU lookup step over one index node block.
// Same verdict contract as spdk.IndexStep: any malformed block is
// StepCorrupt; inner nodes descend to the last entry <= key; leaves
// match exactly.
func hostIndexStep(key, block []byte) spdk.Step {
	entries, level, ok := parseIndexNode(block)
	if !ok {
		return spdk.Step{Kind: spdk.StepCorrupt}
	}
	// Binary search: first entry with key > target.
	hi := sort_Search(len(entries), func(i int) bool {
		return bytes.Compare(entries[i].key, key) > 0
	})
	if level == 0 {
		if hi > 0 && bytes.Equal(entries[hi-1].key, key) {
			return spdk.Step{Kind: spdk.StepDone, Value: entries[hi-1].val}
		}
		return spdk.Step{Kind: spdk.StepMiss}
	}
	if hi == 0 {
		return spdk.Step{Kind: spdk.StepMiss}
	}
	return spdk.Step{Kind: spdk.StepNext, NextLBA: entries[hi-1].child}
}

type indexEntry struct {
	key   []byte
	val   []byte
	child int
}

// parseIndexNode validates and decodes one node block into an entry
// table. The validation rules — bounds and strictly ascending key order
// — mirror spdk.IndexStep's exactly; the agreement property depends on
// it.
func parseIndexNode(block []byte) (entries []indexEntry, level int, ok bool) {
	const hdr = 8
	if len(block) < hdr || binary.BigEndian.Uint32(block[0:4]) != 0xB7EE1DE5 {
		return nil, 0, false
	}
	level = int(binary.BigEndian.Uint16(block[4:6]))
	nKeys := int(binary.BigEndian.Uint16(block[6:8]))
	if nKeys == 0 {
		return nil, 0, false
	}
	off := hdr
	for i := 0; i < nKeys; i++ {
		var e indexEntry
		if level == 0 {
			if off+4 > len(block) {
				return nil, 0, false
			}
			klen := int(binary.BigEndian.Uint16(block[off : off+2]))
			vlen := int(binary.BigEndian.Uint16(block[off+2 : off+4]))
			off += 4
			if off+klen+vlen > len(block) {
				return nil, 0, false
			}
			e = indexEntry{key: block[off : off+klen], val: block[off+klen : off+klen+vlen]}
			off += klen + vlen
		} else {
			if off+6 > len(block) {
				return nil, 0, false
			}
			klen := int(binary.BigEndian.Uint16(block[off : off+2]))
			child := int(binary.BigEndian.Uint32(block[off+2 : off+6]))
			off += 6
			if off+klen > len(block) {
				return nil, 0, false
			}
			e = indexEntry{key: block[off : off+klen], child: child}
			off += klen
		}
		if i > 0 && bytes.Compare(entries[i-1].key, e.key) >= 0 {
			return nil, 0, false
		}
		entries = append(entries, e)
	}
	return entries, level, true
}

// sort_Search is sort.Search without importing sort into the hot-ish
// path (and without allocating).
func sort_Search(n int, f func(int) bool) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if !f(mid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
