package main

// The -tenants view: the operator's dashboard for a multi-tenant NIC.
// Three tenants share one device — two victims serving echo traffic and
// one hostile tenant that floods its TX path, leaks pooled frames
// against its quota, and is crashed mid-run. The table shows, per
// tenant, what the isolation layer knew and did: quota occupancy and
// denials, TX scheduling credits (WDRR deficit + token-bucket balance),
// throttle drops from the rate cap, and steering-install rejections —
// plus the victims' tail latency before and during the rampage, which
// is the number the whole mechanism exists to protect.

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	demi "demikernel"
	"demikernel/internal/chaos"
	"demikernel/internal/metrics"
	"demikernel/internal/nic"
	"demikernel/internal/tenant"
)

// tenantRow pairs a tenant's registry entry with its queue group.
type tenantRow struct {
	ten *tenant.Tenant
	grp *nic.QueueGroup
}

func runTenants(seed int64, ops int) error {
	c := demi.NewCluster(seed)

	vicA := c.MustSpawn(demi.Catnip, demi.WithHost(1), demi.WithTenant("vic-a", demi.TenantPolicy{
		TxWeight: 2, FrameQuotaBytes: 8 << 20,
	}))
	vicB := c.MustSpawn(demi.Catnip, demi.WithHost(2), demi.WithTenant("vic-b", demi.TenantPolicy{
		TxWeight: 2, FrameQuotaBytes: 8 << 20,
	}))
	mal := c.MustSpawn(demi.Catnip, demi.WithHost(3), demi.WithTenant("mal", demi.TenantPolicy{
		TxWeight: 1, FrameQuotaBytes: 2 << 20, TxRateBps: 4 << 20, TxBurstBytes: 64 << 10,
	}))
	cliA := c.MustSpawn(demi.Catnip, demi.WithHost(4))
	cliB := c.MustSpawn(demi.Catnip, demi.WithHost(5))
	sinkNode := c.MustSpawn(demi.Catnip, demi.WithHost(6))

	rows := []tenantRow{
		{vicA.Tenant, vicA.Catnip.Group()},
		{vicB.Tenant, vicB.Catnip.Group()},
		{mal.Tenant, mal.Catnip.Group()},
	}

	pairA, stopsA, err := startEcho(c, vicA, cliA, 0)
	if err != nil {
		return err
	}
	pairB, stopsB, err := startEcho(c, vicB, cliB, 0)
	if err != nil {
		return err
	}
	for _, stops := range [][]func(){stopsA, stopsB} {
		for _, f := range stops {
			defer f()
		}
	}
	defer mal.Background()()
	defer sinkNode.Background()()

	// The hostile rampage, on the same schedule shape the soak test
	// uses: flood toward the bystander sink, leak pooled frames, crash.
	floodStop := make(chan struct{})
	var floodWG sync.WaitGroup
	flood := func() {
		fqd, err := mal.SocketUDP()
		if err != nil {
			return
		}
		if err := mal.Bind(fqd, demi.Addr{Port: 7777}); err != nil {
			return
		}
		if err := mal.Connect(fqd, c.AddrOf(sinkNode, 9)); err != nil {
			return
		}
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			for {
				select {
				case <-floodStop:
					return
				default:
				}
				ok := true
				for j := 0; j < 32; j++ {
					if _, err := mal.BlockingPush(fqd, demi.NewSGA(bytes.Repeat([]byte{0xAB}, 1024))); err != nil {
						ok = false
						break
					}
				}
				if !ok {
					time.Sleep(100 * time.Microsecond)
					continue
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	leak := func() {
		for i := 0; i < 400; i++ {
			mal.Catnip.Pool().Get(1500) // acquired, never released
		}
	}

	// Quiet third, then the rampage overlaps the rest of the run.
	buf := make([]byte, 64)
	var quietA, quietB, hotA, hotB metrics.Histogram
	step := func(ha, hb *metrics.Histogram) error {
		la, err := pairA.rtt(buf, 0)
		if err != nil {
			return fmt.Errorf("victim A rtt: %w", err)
		}
		lb, err := pairB.rtt(buf, 0)
		if err != nil {
			return fmt.Errorf("victim B rtt: %w", err)
		}
		ha.Record(la)
		hb.Record(lb)
		return nil
	}
	for i := 0; i < ops/3; i++ {
		if err := step(&quietA, &quietB); err != nil {
			return err
		}
	}
	eng := chaos.New(seed).HostileTenant(0, 20*time.Millisecond, 0, "mal", chaos.HostileTenantFaults{
		Flood: flood, Leak: leak, Node: mal,
	})
	eng.Start()
	for i := ops / 3; i < ops || !eng.Done(); i++ {
		eng.Step()
		if err := step(&hotA, &hotB); err != nil {
			return err
		}
	}
	close(floodStop)
	floodWG.Wait()

	fmt.Printf("multi-tenant NIC run: %d echo RTTs per victim, hostile tenant flooding/leaking/crashing mid-run (seed %d)\n\n", ops, seed)
	qa, qb := quietA.Summarize(), quietB.Summarize()
	ha, hb := hotA.Summarize(), hotB.Summarize()
	fmt.Printf("victim vic-a virtual RTT: quiet p50=%v p99=%v | under attack p50=%v p99=%v\n", qa.P50, qa.P99, ha.P50, ha.P99)
	fmt.Printf("victim vic-b virtual RTT: quiet p50=%v p99=%v | under attack p50=%v p99=%v\n\n", qb.P50, qb.P99, hb.P50, hb.P99)

	tbl := metrics.NewTable("Per-tenant isolation plane",
		"tenant", "weight", "quota out (f/B)", "denials", "reclaims",
		"rx", "tx", "tx bytes", "deficit", "tokens", "thr drops", "steer denied")
	for _, row := range rows {
		framesOut, bytesOut := row.ten.Ledger.Outstanding()
		reclaims, _, _ := row.ten.Ledger.Reclaims()
		gs := row.grp.Stats()
		deficit, tokens := row.grp.TxCredits()
		tbl.AddRow(string(row.ten.ID), row.ten.Policy.TxWeight,
			fmt.Sprintf("%d/%d", framesOut, bytesOut),
			row.ten.Ledger.Denials(), reclaims,
			gs.RxFrames, gs.TxFrames, gs.TxBytes, deficit, tokens,
			gs.ThrottleDrops, gs.SteeringDenied)
	}
	fmt.Println(tbl.String())

	ds := c.SharedNIC().Stats()
	fmt.Printf("shared NIC: rx=%d dropped=%d filter_drops=%d steer_drops=%d (frames addressed to no tenant)\n\n",
		ds.RxFrames, ds.RxDropped, ds.FilterDrops, ds.SteerDrops)

	fmt.Println("== chaos lifecycle timeline ==")
	for _, ev := range eng.FiredEvents() {
		fmt.Printf("  t=%-10v %s (fired at %v)\n", ev.At, ev.Name, ev.FiredAt.Round(time.Millisecond))
	}

	// The view doubles as a smoke: the rampage must have been contained.
	if mf, mb := mal.Tenant.Ledger.Outstanding(); mf != 0 || mb != 0 {
		return fmt.Errorf("hostile quota not reclaimed after crash: %d frames / %d bytes", mf, mb)
	}
	if mal.Catnip.Group().Stats().ThrottleDrops == 0 {
		return fmt.Errorf("hostile flood never hit its rate cap")
	}
	return nil
}
