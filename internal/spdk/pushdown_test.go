package spdk

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"demikernel/internal/telemetry"
)

// seqAlloc returns a block allocator handing out ascending LBAs from
// base, for index builds that bypass the blob store.
func seqAlloc(base int) func(n int) (int, error) {
	next := base
	return func(n int) (int, error) {
		lba := next
		next += n
		return lba, nil
	}
}

// buildTestIndex builds an index with enough keys for the given depth at
// fanout 2 and returns it with the key set. Key i maps to value
// "val-i".
func buildTestIndex(t testing.TB, d *Device, depth int) (*Index, [][]byte) {
	t.Helper()
	n := 1 << (depth + 1) // 2^(depth+1) keys at fanout 2
	var kvs []KV
	var keys [][]byte
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		kvs = append(kvs, KV{Key: k, Val: []byte(fmt.Sprintf("val-%d", i))})
		keys = append(keys, k)
	}
	idx, err := BuildIndex(d, seqAlloc(100), kvs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Depth != depth {
		t.Fatalf("Depth = %d, want %d (levels %d)", idx.Depth, depth, idx.Levels)
	}
	return idx, keys
}

// runLookup drives one pushdown lookup to completion.
func runLookup(t testing.TB, d *Device, handle, root int, key []byte) LookupResult {
	t.Helper()
	var r LookupResult
	got := false
	err := d.SubmitLookup(handle, root, key, func(res LookupResult) {
		// Value aliases device memory: copy before the callback returns.
		res.Value = append([]byte(nil), res.Value...)
		r = res
		got = true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !got; i++ {
		d.Pump()
		if i > 1000 {
			t.Fatal("lookup never completed")
		}
	}
	return r
}

func TestPushdownLookupDepth3(t *testing.T) {
	d := newDev(Config{})
	idx, keys := buildTestIndex(t, d, 3)
	h, err := d.InstallPushdown(IndexProg{}, PushdownConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		r := runLookup(t, d, h, idx.Root, k)
		if r.Err != nil {
			t.Fatalf("key %q: %v", k, r.Err)
		}
		if !r.Found || !bytes.Equal(r.Value, []byte(fmt.Sprintf("val-%d", i))) {
			t.Fatalf("key %q: found=%v value=%q", k, r.Found, r.Value)
		}
		if r.Hops != idx.Levels {
			t.Fatalf("key %q: hops = %d, want %d", k, r.Hops, idx.Levels)
		}
		if r.Cost == 0 {
			t.Fatal("no cost accounted")
		}
	}
	st := d.PushdownStats()
	n := int64(len(keys))
	if st.Lookups != n || st.Hits != n {
		t.Fatalf("lookups/hits = %d/%d, want %d", st.Lookups, st.Hits, n)
	}
	// Each depth-3 lookup resubmits 3 device-internal reads that never
	// surface: those are the saved host crossings.
	if want := n * int64(idx.Depth); st.Resubmits != want || st.HopsSaved != want {
		t.Fatalf("resubmits/hopsSaved = %d/%d, want %d", st.Resubmits, st.HopsSaved, want)
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d after all lookups done", st.Inflight)
	}
	// No host DMA for internal hops: only the device's own reads.
	if got := d.Stats().DMABytes; got != 0 {
		// BuildIndex wrote nodes (DMA), so compare against write traffic only.
		writes := d.Stats().Writes * BlockSize
		if got != writes {
			t.Fatalf("DMABytes = %d, want only the %d build-write bytes", got, writes)
		}
	}
}

func TestPushdownMiss(t *testing.T) {
	d := newDev(Config{})
	idx, _ := buildTestIndex(t, d, 2)
	h, _ := d.InstallPushdown(IndexProg{}, PushdownConfig{})
	r := runLookup(t, d, h, idx.Root, []byte("key-9999~nope"))
	if r.Err != nil || r.Found {
		t.Fatalf("miss: err=%v found=%v", r.Err, r.Found)
	}
	// A key below the whole tree misses at the root in one hop.
	r = runLookup(t, d, h, idx.Root, []byte("aaa"))
	if r.Err != nil || r.Found || r.Hops != 1 {
		t.Fatalf("below-range miss: err=%v found=%v hops=%d", r.Err, r.Found, r.Hops)
	}
	if st := d.PushdownStats(); st.Misses != 2 || st.Inflight != 0 {
		t.Fatalf("misses/inflight = %d/%d", st.Misses, st.Inflight)
	}
}

// loopProg descends forever: every block points back at itself.
type loopProg struct{ lba int }

func (p loopProg) Name() string          { return "loop" }
func (p loopProg) Step(_, _ []byte) Step { return Step{Kind: StepNext, NextLBA: p.lba} }

func TestPushdownHopBudgetTerminates(t *testing.T) {
	d := newDev(Config{})
	h, err := d.InstallPushdown(loopProg{lba: 5}, PushdownConfig{MaxHops: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := runLookup(t, d, h, 5, []byte("k"))
	if !errors.Is(r.Err, ErrHopBudget) {
		t.Fatalf("err = %v, want ErrHopBudget", r.Err)
	}
	if r.Hops != 4 {
		t.Fatalf("hops = %d, want the full budget 4", r.Hops)
	}
	if st := d.PushdownStats(); st.BudgetExceeded != 1 || st.Inflight != 0 {
		t.Fatalf("budgetExceeded/inflight = %d/%d", st.BudgetExceeded, st.Inflight)
	}
}

func TestPushdownInstallValidation(t *testing.T) {
	d := newDev(Config{})
	if _, err := d.InstallPushdown(nil, PushdownConfig{}); !errors.Is(err, ErrBadProg) {
		t.Fatalf("nil prog: err = %v", err)
	}
	if _, err := d.InstallPushdown(IndexProg{}, PushdownConfig{MaxHops: MaxHopBudget + 1}); !errors.Is(err, ErrBadProg) {
		t.Fatalf("over-budget: err = %v", err)
	}
	if err := d.SubmitLookup(0, 0, []byte("k"), func(LookupResult) {}); !errors.Is(err, ErrNoProg) {
		t.Fatalf("no prog installed: err = %v", err)
	}
	h, _ := d.InstallPushdown(IndexProg{}, PushdownConfig{})
	long := make([]byte, MaxKeyLen+1)
	if err := d.SubmitLookup(h, 0, long, func(LookupResult) {}); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("long key: err = %v", err)
	}
	d.UninstallPushdown(h)
	if err := d.SubmitLookup(h, 0, []byte("k"), func(LookupResult) {}); !errors.Is(err, ErrNoProg) {
		t.Fatalf("uninstalled: err = %v", err)
	}
}

func TestPushdownCorruptBlock(t *testing.T) {
	d := newDev(Config{})
	// Block 3 is not an index node (zeroes: bad magic).
	h, _ := d.InstallPushdown(IndexProg{}, PushdownConfig{})
	r := runLookup(t, d, h, 3, []byte("k"))
	if !errors.Is(r.Err, ErrCorruptIndex) {
		t.Fatalf("err = %v, want ErrCorruptIndex", r.Err)
	}
	if st := d.PushdownStats(); st.CorruptBlocks != 1 || st.Inflight != 0 {
		t.Fatalf("corruptBlocks/inflight = %d/%d", st.CorruptBlocks, st.Inflight)
	}
}

// wildProg emits out-of-range verdicts to probe the runtime re-checks.
type wildProg struct{ s Step }

func (p wildProg) Name() string          { return "wild" }
func (p wildProg) Step(_, _ []byte) Step { return p.s }

func TestPushdownRuntimeValidation(t *testing.T) {
	d := newDev(Config{NumBlocks: 64})
	// Next LBA outside the namespace: rejected in the completion path.
	h, _ := d.InstallPushdown(wildProg{s: Step{Kind: StepNext, NextLBA: 64}}, PushdownConfig{})
	if r := runLookup(t, d, h, 0, []byte("k")); !errors.Is(r.Err, ErrCorruptIndex) {
		t.Fatalf("wild next: err = %v", r.Err)
	}
	// Oversized value: rejected.
	h2, _ := d.InstallPushdown(wildProg{s: Step{Kind: StepDone, Value: make([]byte, MaxValueLen+1)}}, PushdownConfig{})
	if r := runLookup(t, d, h2, 0, []byte("k")); !errors.Is(r.Err, ErrCorruptIndex) {
		t.Fatalf("wild value: err = %v", r.Err)
	}
	if st := d.PushdownStats(); st.Inflight != 0 {
		t.Fatalf("inflight = %d", st.Inflight)
	}
}

func TestPushdownResetMidTraversal(t *testing.T) {
	d := newDev(Config{})
	idx, keys := buildTestIndex(t, d, 3)
	h, _ := d.InstallPushdown(IndexProg{}, PushdownConfig{})

	var results []LookupResult
	if err := d.SubmitLookup(h, idx.Root, keys[0], func(r LookupResult) {
		results = append(results, r)
	}); err != nil {
		t.Fatal(err)
	}
	// Advance exactly two hops, then reset while the third read is queued.
	d.Pump()
	d.Pump()
	if st := d.PushdownStats(); st.Inflight != 1 {
		t.Fatalf("inflight = %d mid-traversal", st.Inflight)
	}
	d.ControllerReset(0)
	if len(results) != 1 {
		t.Fatalf("surfaced %d completions, want exactly 1", len(results))
	}
	r := results[0]
	if !errors.Is(r.Err, ErrDeviceReset) {
		t.Fatalf("err = %v, want ErrDeviceReset", r.Err)
	}
	if r.Hops != 2 {
		t.Fatalf("hops = %d, want the 2 completed before the abort", r.Hops)
	}
	st := d.PushdownStats()
	if st.ResetAborts != 1 || st.Inflight != 0 {
		t.Fatalf("resetAborts/inflight = %d/%d", st.ResetAborts, st.Inflight)
	}
	// Further pumping surfaces nothing more.
	for i := 0; i < 10; i++ {
		d.Pump()
	}
	if len(results) != 1 {
		t.Fatalf("late extra completion: %d", len(results))
	}
	// The device recovers: the same lookup succeeds afterwards.
	if r := runLookup(t, d, h, idx.Root, keys[0]); r.Err != nil || !r.Found {
		t.Fatalf("post-reset lookup: err=%v found=%v", r.Err, r.Found)
	}
}

// Satellite: Poll must reuse the CQ backing array — zero allocations per
// submit+poll cycle in the steady state.
func TestPollSteadyStateAllocFree(t *testing.T) {
	d := newDev(Config{})
	// Warm the ring.
	for i := 0; i < 4; i++ {
		if _, err := d.Submit(Command{Op: OpFlush}); err != nil {
			t.Fatal(err)
		}
		d.Poll(0)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := d.Submit(Command{Op: OpFlush}); err != nil {
			t.Fatal(err)
		}
		if cs := d.Poll(0); len(cs) != 1 {
			t.Fatalf("polled %d completions", len(cs))
		}
	})
	if avg != 0 {
		t.Fatalf("submit+poll allocates %v/op in steady state, want 0", avg)
	}
}

// Satellite: Execute must not scan or re-queue foreign CQ completions —
// entries queued for Poll survive an interleaved Execute untouched.
func TestExecuteLeavesForeignCompletionsAlone(t *testing.T) {
	d := newDev(Config{})
	id, err := d.Submit(Command{Op: OpFlush})
	if err != nil {
		t.Fatal(err)
	}
	// Execute drives the device to completion; the plain submission's
	// completion must still be waiting in the CQ afterwards.
	if c := d.Execute(Command{Op: OpWrite, LBA: 1, Data: block('e')}); c.Err != nil {
		t.Fatal(c.Err)
	}
	cs := d.Poll(0)
	if len(cs) != 1 || cs[0].ID != id {
		t.Fatalf("Poll = %+v, want the foreign flush completion %d", cs, id)
	}
}

// Execute itself is allocation-free in the steady state (pooled wait
// state, continuation-carried completion).
func TestExecuteSteadyStateAllocFree(t *testing.T) {
	d := newDev(Config{})
	d.Execute(Command{Op: OpFlush}) // warm the exec-state pool
	avg := testing.AllocsPerRun(100, func() {
		if c := d.Execute(Command{Op: OpFlush}); c.Err != nil {
			t.Fatal(c.Err)
		}
	})
	if avg != 0 {
		t.Fatalf("Execute allocates %v/op in steady state, want 0", avg)
	}
}

// The full device-side GET is allocation-free once warm: pooled
// traversals, pooled staging blocks, reused continuation batches.
func TestPushdownLookupSteadyStateAllocFree(t *testing.T) {
	d := newDev(Config{})
	idx, keys := buildTestIndex(t, d, 2)
	h, _ := d.InstallPushdown(IndexProg{}, PushdownConfig{})
	var r LookupResult
	got := false
	done := func(res LookupResult) { r = res; got = true }
	run := func() {
		got = false
		if err := d.SubmitLookup(h, idx.Root, keys[1], done); err != nil {
			t.Fatal(err)
		}
		for !got {
			d.Pump()
		}
		if r.Err != nil || !r.Found {
			t.Fatalf("err=%v found=%v", r.Err, r.Found)
		}
	}
	run() // warm pools
	avg := testing.AllocsPerRun(100, run)
	if avg != 0 {
		t.Fatalf("pushdown GET allocates %v/op in steady state, want 0", avg)
	}
}

func TestPushdownTelemetry(t *testing.T) {
	d := newDev(Config{})
	idx, keys := buildTestIndex(t, d, 2)
	h, _ := d.InstallPushdown(IndexProg{}, PushdownConfig{})
	runLookup(t, d, h, idx.Root, keys[0])

	reg := telemetry.NewRegistry()
	d.RegisterTelemetry(reg, "nvme")
	snap := make(map[string]int64)
	for _, s := range reg.Snapshot().Samples {
		snap[s.Name] = s.Value
	}
	for _, key := range []string{
		"nvme.pushdown.installs", "nvme.pushdown.lookups", "nvme.pushdown.hits",
		"nvme.pushdown.resubmits", "nvme.pushdown.hops_saved", "nvme.pushdown.inflight",
	} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("telemetry key %q missing", key)
		}
	}
	if snap["nvme.pushdown.lookups"] != 1 || snap["nvme.pushdown.hits"] != 1 {
		t.Fatalf("lookups/hits = %d/%d", snap["nvme.pushdown.lookups"], snap["nvme.pushdown.hits"])
	}
	if snap["nvme.pushdown.hops_saved"] != int64(idx.Depth) {
		t.Fatalf("hops_saved = %d, want %d", snap["nvme.pushdown.hops_saved"], idx.Depth)
	}
}
