package nic

import (
	"testing"
	"time"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
	"demikernel/internal/tenant"
)

// schedRig builds a device whose TX lands on a sink NIC, so scheduled
// frames have somewhere to go.
func schedRig(t *testing.T) *Device {
	t.Helper()
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 7)
	d := New(&model, sw, Config{MAC: fabric.MAC{0x02, 0xff, 0, 0, 0, 0}, RxQueues: 8})
	New(&model, sw, Config{MAC: macT3}) // sink
	return d
}

func payload(n int) []byte {
	data := make([]byte, n)
	copy(data[0:6], macT3[:])
	return data
}

// TestWDRRWeights stages equal backlogs on three queues weighted 4:2:1
// and checks one pump's budget is split proportionally.
func TestWDRRWeights(t *testing.T) {
	d := schedRig(t)
	s := d.sched
	weights := []int{4, 2, 1}
	qs := make([]*txQueue, len(weights))
	for i, w := range weights {
		qs[i] = s.newQueue("q", w, 0, 0, 1024, nil)
	}
	const frameSize = 1000
	for _, q := range qs {
		for i := 0; i < 600; i++ {
			s.enqueue(q, fabric.Frame{Data: payload(frameSize)})
		}
	}
	s.pump(d)
	sent := make([]int64, len(qs))
	var total int64
	for i, q := range qs {
		sent[i], _, _, _, _ = q.stats()
		total += sent[i]
	}
	if total*frameSize < txPumpBudget-frameSize {
		t.Fatalf("pump under-used its budget: sent %d bytes of %d", total*frameSize, txPumpBudget)
	}
	// Within one frame-per-round tolerance, shares track the weights.
	for i := range qs {
		share := float64(sent[i]) / float64(total)
		want := float64(weights[i]) / 7.0
		if share < want*0.8 || share > want*1.2 {
			t.Fatalf("queue %d (weight %d): share %.2f, want ~%.2f (sent %v)",
				i, weights[i], share, want, sent)
		}
	}
}

// TestTokenBucketRate drives a rate-limited queue with a fake clock:
// the burst drains immediately, then sends track elapsed virtual time.
func TestTokenBucketRate(t *testing.T) {
	d := schedRig(t)
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	q := d.sched.newQueue("limited", 1, 1000 /* B/s */, 1000 /* burst */, 1024, clock)
	for i := 0; i < 50; i++ {
		d.sched.enqueue(q, fabric.Frame{Data: payload(100)})
	}
	d.sched.pump(d)
	if sent, _, _, _, _ := q.stats(); sent != 10 {
		t.Fatalf("sent %d frames at t0, want 10 (the 1000B burst)", sent)
	}
	now = now.Add(500 * time.Millisecond) // 500 more bytes of tokens
	d.sched.pump(d)
	if sent, _, _, _, _ := q.stats(); sent != 15 {
		t.Fatalf("sent %d frames after 0.5s, want 15", sent)
	}
	now = now.Add(10 * time.Second) // refill clamps at the burst depth
	d.sched.pump(d)
	if sent, _, _, _, _ := q.stats(); sent != 25 {
		t.Fatalf("sent %d frames after long idle, want 25 (burst-clamped)", sent)
	}
}

// TestThrottleDropsRelease fences the backpressure contract: a full TX
// ring drops the flooder's own frames and releases them back to the
// pool (the tenant ledger returns to zero), and a crash flush releases
// whatever was staged.
func TestThrottleDropsRelease(t *testing.T) {
	d := schedRig(t)
	// Rate so slow nothing drains: burst 1 byte, 1 B/s.
	q := d.sched.newQueue("stuck", 1, 1, 1, 4, func() time.Time { return time.Unix(0, 0) })
	pool := fabric.NewFramePool()
	ledger := tenant.NewLedger(0, 0)
	pool.SetOwner("flooder", ledger)
	for i := 0; i < 10; i++ {
		fb := pool.Get(100)
		d.sched.enqueue(q, fabric.Frame{Data: fb.Bytes(), Buf: fb})
	}
	_, _, queued, _, drops := q.stats()
	if queued != 4 || drops != 6 {
		t.Fatalf("queued=%d drops=%d, want 4/6", queued, drops)
	}
	if f, _ := ledger.Outstanding(); f != 4 {
		t.Fatalf("ledger holds %d frames, want 4 (drops must release)", f)
	}
	if n := d.sched.flushQueue(q); n != 4 {
		t.Fatalf("flush released %d, want 4", n)
	}
	if f, b := ledger.Outstanding(); f != 0 || b != 0 {
		t.Fatalf("ledger %d frames / %d bytes after flush, want 0/0", f, b)
	}
}

// TestGroupTxPath sends through the full QueueGroup TX surface and
// checks device counters account scheduled sends at the actual transmit.
func TestGroupTxPath(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 7)
	d := New(&model, sw, Config{MAC: fabric.MAC{0x02, 0xff, 0, 0, 0, 0}, RxQueues: 4})
	sink := New(&model, sw, Config{MAC: macT3})
	g, err := d.NewQueueGroup("t1", 2, GroupConfig{MAC: macT1, IP: ipT1, TxWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		g.Tx(ethFrame(macT3, macT1, "via-group"), 0)
	}
	if got := len(sink.RxBurst(0, 64)) + len(sink.RxBurst(0, 64)); got != 8 {
		t.Fatalf("sink received %d frames, want 8", got)
	}
	if d.Stats().TxFrames != 8 {
		t.Fatalf("device TxFrames = %d, want 8", d.Stats().TxFrames)
	}
	gs := g.Stats()
	if gs.TxFrames != 8 || gs.TxQueued != 0 {
		t.Fatalf("group stats %+v, want 8 sent, 0 queued", gs)
	}
}
