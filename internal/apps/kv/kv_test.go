package kv

import (
	"bytes"
	"testing"

	demi "demikernel"
	"demikernel/internal/sga"
)

// harness builds a connected client/server pair over the given libOS
// flavour; the same test body runs over all of them (§4.1 portability).
type harness struct {
	cluster *demi.Cluster
	server  *Server
	client  *Client
	stop    []func()
}

func newHarness(t *testing.T, flavor string, seed int64) *harness {
	t.Helper()
	c := demi.NewCluster(seed)
	mk := func(host byte) *demi.Node {
		switch flavor {
		case "catnip":
			return c.MustSpawn(demi.Catnip, demi.WithHost(host))
		case "catnap":
			return c.MustSpawn(demi.Catnap, demi.WithHost(host))
		case "catmint":
			return c.MustSpawn(demi.Catmint, demi.WithHost(host))
		default:
			t.Fatalf("unknown flavor %q", flavor)
			return nil
		}
	}
	srvNode := mk(1)
	cliNode := mk(2)

	srv := NewServer(srvNode.LibOS, &c.Model)
	if err := srv.Listen(6379); err != nil {
		t.Fatal(err)
	}
	stopSrvPoll := srvNode.Background()
	stopCliPoll := cliNode.Background()
	stopServe := make(chan struct{})
	go srv.Run(stopServe)

	cli := NewClient(cliNode.LibOS)
	if err := cli.Connect(c.AddrOf(srvNode, 6379)); err != nil {
		t.Fatal(err)
	}
	return &harness{
		cluster: c,
		server:  srv,
		client:  cli,
		stop: []func(){
			func() { close(stopServe) },
			stopCliPoll,
			stopSrvPoll,
		},
	}
}

func (h *harness) close() {
	for _, f := range h.stop {
		f()
	}
}

func testBasicOps(t *testing.T, flavor string, seed int64) {
	h := newHarness(t, flavor, seed)
	defer h.close()
	cli := h.client

	// Missing key.
	if _, _, found, err := cli.Get("nope"); err != nil || found {
		t.Fatalf("get missing: found=%v err=%v", found, err)
	}
	// Set then get.
	if _, err := cli.Set("k1", []byte("value-1")); err != nil {
		t.Fatal(err)
	}
	val, _, found, err := cli.Get("k1")
	if err != nil || !found {
		t.Fatalf("get: found=%v err=%v", found, err)
	}
	if string(val) != "value-1" {
		t.Fatalf("val = %q", val)
	}
	// Overwrite.
	if _, err := cli.Set("k1", []byte("value-2")); err != nil {
		t.Fatal(err)
	}
	val, _, _, _ = cli.Get("k1")
	if string(val) != "value-2" {
		t.Fatalf("overwritten val = %q", val)
	}
	// Delete.
	if found, err := cli.Del("k1"); err != nil || !found {
		t.Fatalf("del: found=%v err=%v", found, err)
	}
	if found, _ := cli.Del("k1"); found {
		t.Fatal("double delete reported found")
	}
	if _, _, found, _ := cli.Get("k1"); found {
		t.Fatal("deleted key still readable")
	}

	st := h.server.Stats()
	if st.Sets != 2 || st.Gets != 4 || st.Dels != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKVOverCatnip(t *testing.T)  { testBasicOps(t, "catnip", 21) }
func TestKVOverCatnap(t *testing.T)  { testBasicOps(t, "catnap", 22) }
func TestKVOverCatmint(t *testing.T) { testBasicOps(t, "catmint", 23) }

func TestKVLargeValues(t *testing.T) {
	h := newHarness(t, "catnip", 24)
	defer h.close()
	val := bytes.Repeat([]byte{0xAB}, 8000)
	if _, err := h.client.Set("big", val); err != nil {
		t.Fatal(err)
	}
	got, _, found, err := h.client.Get("big")
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("large value corrupted")
	}
}

func TestKVManyKeys(t *testing.T) {
	h := newHarness(t, "catnip", 25)
	defer h.close()
	for i := 0; i < 50; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := h.client.Set(key, []byte{byte(i)}); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if h.server.Len() != 50 {
		t.Fatalf("stored keys = %d", h.server.Len())
	}
	for i := 0; i < 50; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i/26))
		val, _, found, err := h.client.Get(key)
		if err != nil || !found || val[0] != byte(i) {
			t.Fatalf("get %q: %v %v %v", key, val, found, err)
		}
	}
}

func TestApplyMalformedRequests(t *testing.T) {
	c := demi.NewCluster(26)
	node := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	srv := NewServer(node.LibOS, &c.Model)

	resp, retain := srv.Apply(sga.New([]byte("GET"))) // missing key
	if retain || string(resp.Segments[0].Buf) != StatusError {
		t.Fatalf("resp = %v", resp)
	}
	resp, _ = srv.Apply(sga.New([]byte("SET"), []byte("k"))) // missing value
	if string(resp.Segments[0].Buf) != StatusError {
		t.Fatalf("resp = %v", resp)
	}
	resp, _ = srv.Apply(sga.New([]byte("WAT"), []byte("k")))
	if string(resp.Segments[0].Buf) != StatusError {
		t.Fatalf("resp = %v", resp)
	}
	if srv.Stats().BadRequests != 3 {
		t.Fatalf("BadRequests = %d", srv.Stats().BadRequests)
	}
}

func TestApplyZeroCopySetRetains(t *testing.T) {
	// The SET request's value segment must be stored by reference: the
	// paper's pointer-swap discipline, not a copy.
	c := demi.NewCluster(27)
	node := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	srv := NewServer(node.LibOS, &c.Model)

	val := []byte("owned-by-store")
	req := sga.New([]byte(OpSet), []byte("k"), val)
	resp, retain := srv.Apply(req)
	if !retain {
		t.Fatal("SET must retain the request SGA")
	}
	if string(resp.Segments[0].Buf) != StatusOK {
		t.Fatalf("resp = %v", resp)
	}
	getResp, retain2 := srv.Apply(sga.New([]byte(OpGet), []byte("k")))
	if retain2 {
		t.Fatal("GET must not retain")
	}
	// Mutating the original buffer must be visible through GET: proof
	// the store aliases rather than copies.
	val[0] = 'X'
	if getResp.Segments[1].Buf[0] != 'X' {
		t.Fatal("store copied the value instead of retaining the buffer")
	}
}

func TestSetOverwriteFreesOldBuffer(t *testing.T) {
	c := demi.NewCluster(28)
	node := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	srv := NewServer(node.LibOS, &c.Model)

	freed := 0
	old := sga.New([]byte(OpSet), []byte("k"), []byte("old")).WithFree(func() { freed++ })
	srv.Apply(old)
	srv.Apply(sga.New([]byte(OpSet), []byte("k"), []byte("new")))
	if freed != 1 {
		t.Fatalf("old buffer freed %d times, want 1 (free-protection handoff)", freed)
	}
	resp, _ := srv.Apply(sga.New([]byte(OpGet), []byte("k")))
	if string(resp.Segments[1].Buf) != "new" {
		t.Fatalf("value = %q", resp.Segments[1].Buf)
	}
}
