package kv

import (
	"demikernel/internal/libos/catfish"
	"demikernel/internal/offload"
	"demikernel/internal/queue"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
)

// DurableStore is the storage-backed read path of the KV example: a
// static dataset bulk-loaded into a block-resident sorted index on the
// catfish libOS, served through its PushPop lookup face. With pushdown
// enabled, a GET of any index depth is exactly one app↔libOS crossing —
// the traversal runs in the NVMe completion path; without it, the same
// lookup surfaces every node block to the host (one crossing per hop).
// Results are byte-identical either way.
type DurableStore struct {
	t   *catfish.Transport
	idx *spdk.Index
	lq  *catfish.LookupQueue
}

// DurableConfig configures Load.
type DurableConfig struct {
	// Pushdown runs lookups in the device completion path.
	Pushdown bool
	// Fanout is the index node fanout (0 = spdk default). Small fanouts
	// make deep trees from small datasets, which the depth experiments
	// exploit.
	Fanout int
	// MaxHops bounds a traversal (0 = spdk.DefaultMaxHops).
	MaxHops int
}

// Load bulk-builds the index over pairs and opens the lookup face.
func Load(t *catfish.Transport, pairs []spdk.KV, cfg DurableConfig) (*DurableStore, error) {
	idx, err := t.BuildIndex(pairs, cfg.Fanout)
	if err != nil {
		return nil, err
	}
	lq, err := t.OpenLookup(idx, offload.IndexLookup(), catfish.LookupConfig{
		Pushdown: cfg.Pushdown,
		MaxHops:  cfg.MaxHops,
	})
	if err != nil {
		return nil, err
	}
	return &DurableStore{t: t, idx: idx, lq: lq}, nil
}

// Index exposes the built index (depth, levels, build cost).
func (d *DurableStore) Index() *spdk.Index { return d.idx }

// Queue exposes the underlying lookup face, e.g. to adopt it into a
// LibOS instance and drive it with real qtokens.
func (d *DurableStore) Queue() *catfish.LookupQueue { return d.lq }

// Get performs one lookup: a Push of the key and a Pop of the value —
// the full Demikernel round trip an application would make. The
// returned value is a fresh copy owned by the caller; the pooled result
// buffer is released before Get returns. A clean miss reports
// found=false with a nil error.
func (d *DurableStore) Get(key []byte) (val []byte, cost simclock.Lat, found bool, err error) {
	ks := d.t.AllocSGA(len(key))
	copy(ks.Segments[0].Buf, key)
	var pushErr error
	d.lq.Push(ks, 0, func(c queue.Completion) {
		pushErr = c.Err
		cost += c.Cost
	})
	if pushErr != nil {
		return nil, cost, false, pushErr
	}
	var res queue.Completion
	got := false
	d.lq.Pop(func(c queue.Completion) {
		res = c
		got = true
	})
	for !got {
		if d.t.Poll() == 0 {
			// Nothing moved: the in-flight traversal advances one hop per
			// device pump, so keep polling.
			continue
		}
	}
	cost += res.Cost
	if res.Err != nil {
		if res.Err == spdk.ErrNotFound {
			return nil, cost, false, nil
		}
		return nil, cost, false, res.Err
	}
	val = append([]byte(nil), res.SGA.Bytes()...)
	res.SGA.Free()
	return val, cost, true, nil
}

// Close closes the lookup face (uninstalling any pushdown program).
func (d *DurableStore) Close() error { return d.lq.Close() }
