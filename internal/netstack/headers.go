// Package netstack implements the user-level network stack a DPDK-class
// kernel-bypass device forces the application (here: the libOS) to
// supply: Ethernet framing, ARP, IPv4, UDP, and a full TCP with
// retransmission, flow control, and congestion control (§2, §5.1 of the
// paper: "while DPDK requires an entire networking stack, ...").
//
// The stack is poll-driven to match the Demikernel data-path model: the
// libOS pumps Stack.Poll from its wait loop; no internal goroutines or
// locks sit on the per-packet path beyond the stack's own mutex.
package netstack

import (
	"encoding/binary"
	"fmt"

	"demikernel/internal/fabric"
)

// IPv4Addr is an IPv4 address.
type IPv4Addr [4]byte

// String formats the address in dotted quad notation.
func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IP builds an IPv4Addr from four octets.
func IP(a, b, c, d byte) IPv4Addr { return IPv4Addr{a, b, c, d} }

// EtherType values used by the stack.
const (
	etherTypeIPv4 = 0x0800
	etherTypeARP  = 0x0806
)

// IP protocol numbers.
const (
	protoTCP = 6
	protoUDP = 17
)

// Header sizes.
const (
	ethHdrLen  = 14
	arpLen     = 28
	ipv4HdrLen = 20
	udpHdrLen  = 8
	tcpHdrLen  = 20
)

// appendEth appends an Ethernet header.
func appendEth(dst []byte, dstMAC, srcMAC fabric.MAC, etherType uint16) []byte {
	dst = append(dst, dstMAC[:]...)
	dst = append(dst, srcMAC[:]...)
	return binary.BigEndian.AppendUint16(dst, etherType)
}

// arpPacket is a parsed ARP packet.
type arpPacket struct {
	op       uint16 // 1 request, 2 reply
	senderHW fabric.MAC
	senderIP IPv4Addr
	targetHW fabric.MAC
	targetIP IPv4Addr
}

const (
	arpOpRequest = 1
	arpOpReply   = 2
)

func (p arpPacket) marshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, 1)      // htype ethernet
	dst = binary.BigEndian.AppendUint16(dst, 0x0800) // ptype IPv4
	dst = append(dst, 6, 4)
	dst = binary.BigEndian.AppendUint16(dst, p.op)
	dst = append(dst, p.senderHW[:]...)
	dst = append(dst, p.senderIP[:]...)
	dst = append(dst, p.targetHW[:]...)
	dst = append(dst, p.targetIP[:]...)
	return dst
}

func parseARP(b []byte) (arpPacket, bool) {
	if len(b) < arpLen {
		return arpPacket{}, false
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || binary.BigEndian.Uint16(b[2:4]) != 0x0800 {
		return arpPacket{}, false
	}
	var p arpPacket
	p.op = binary.BigEndian.Uint16(b[6:8])
	copy(p.senderHW[:], b[8:14])
	copy(p.senderIP[:], b[14:18])
	copy(p.targetHW[:], b[18:24])
	copy(p.targetIP[:], b[24:28])
	return p, true
}

// ipv4Header is a parsed IPv4 header (no options).
type ipv4Header struct {
	totalLen uint16
	id       uint16
	ttl      uint8
	proto    uint8
	src, dst IPv4Addr
}

func (h ipv4Header) marshal(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, 0x45, 0) // version+IHL, TOS
	dst = binary.BigEndian.AppendUint16(dst, h.totalLen)
	dst = binary.BigEndian.AppendUint16(dst, h.id)
	dst = binary.BigEndian.AppendUint16(dst, 0) // flags+frag
	dst = append(dst, h.ttl, h.proto, 0, 0)     // checksum placeholder
	dst = append(dst, h.src[:]...)
	dst = append(dst, h.dst[:]...)
	cs := checksum(dst[start:start+ipv4HdrLen], 0)
	binary.BigEndian.PutUint16(dst[start+10:start+12], cs)
	return dst
}

func parseIPv4(b []byte) (ipv4Header, []byte, bool) {
	if len(b) < ipv4HdrLen {
		return ipv4Header{}, nil, false
	}
	if b[0] != 0x45 {
		return ipv4Header{}, nil, false // options unsupported
	}
	if checksum(b[:ipv4HdrLen], 0) != 0 {
		return ipv4Header{}, nil, false
	}
	var h ipv4Header
	h.totalLen = binary.BigEndian.Uint16(b[2:4])
	h.id = binary.BigEndian.Uint16(b[4:6])
	h.ttl = b[8]
	h.proto = b[9]
	copy(h.src[:], b[12:16])
	copy(h.dst[:], b[16:20])
	if int(h.totalLen) > len(b) || int(h.totalLen) < ipv4HdrLen {
		return ipv4Header{}, nil, false
	}
	return h, b[ipv4HdrLen:h.totalLen], true
}

// TCP flags.
const (
	flagFIN = 1 << 0
	flagSYN = 1 << 1
	flagRST = 1 << 2
	flagPSH = 1 << 3
	flagACK = 1 << 4
)

// tcpSegment is a parsed TCP segment.
type tcpSegment struct {
	srcPort, dstPort uint16
	seq, ack         uint32
	flags            uint8
	window           uint16
	payload          []byte
}

func (s tcpSegment) marshal(dst []byte, srcIP, dstIP IPv4Addr) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, s.srcPort)
	dst = binary.BigEndian.AppendUint16(dst, s.dstPort)
	dst = binary.BigEndian.AppendUint32(dst, s.seq)
	dst = binary.BigEndian.AppendUint32(dst, s.ack)
	dst = append(dst, 5<<4, s.flags) // data offset 5 words
	dst = binary.BigEndian.AppendUint16(dst, s.window)
	dst = append(dst, 0, 0, 0, 0) // checksum + urgent
	dst = append(dst, s.payload...)
	cs := transportChecksum(srcIP, dstIP, protoTCP, dst[start:])
	binary.BigEndian.PutUint16(dst[start+16:start+18], cs)
	return dst
}

func parseTCP(b []byte, srcIP, dstIP IPv4Addr) (tcpSegment, bool) {
	if len(b) < tcpHdrLen {
		return tcpSegment{}, false
	}
	if transportChecksum(srcIP, dstIP, protoTCP, b) != 0 {
		return tcpSegment{}, false
	}
	var s tcpSegment
	s.srcPort = binary.BigEndian.Uint16(b[0:2])
	s.dstPort = binary.BigEndian.Uint16(b[2:4])
	s.seq = binary.BigEndian.Uint32(b[4:8])
	s.ack = binary.BigEndian.Uint32(b[8:12])
	off := int(b[12]>>4) * 4
	if off < tcpHdrLen || off > len(b) {
		return tcpSegment{}, false
	}
	s.flags = b[13]
	s.window = binary.BigEndian.Uint16(b[14:16])
	s.payload = b[off:]
	return s, true
}

// udpDatagram is a parsed UDP datagram.
type udpDatagram struct {
	srcPort, dstPort uint16
	payload          []byte
}

func (u udpDatagram) marshal(dst []byte, srcIP, dstIP IPv4Addr) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, u.srcPort)
	dst = binary.BigEndian.AppendUint16(dst, u.dstPort)
	dst = binary.BigEndian.AppendUint16(dst, uint16(udpHdrLen+len(u.payload)))
	dst = append(dst, 0, 0) // checksum placeholder
	dst = append(dst, u.payload...)
	cs := transportChecksum(srcIP, dstIP, protoUDP, dst[start:])
	binary.BigEndian.PutUint16(dst[start+6:start+8], cs)
	return dst
}

func parseUDP(b []byte, srcIP, dstIP IPv4Addr) (udpDatagram, bool) {
	if len(b) < udpHdrLen {
		return udpDatagram{}, false
	}
	if transportChecksum(srcIP, dstIP, protoUDP, b) != 0 {
		return udpDatagram{}, false
	}
	var u udpDatagram
	u.srcPort = binary.BigEndian.Uint16(b[0:2])
	u.dstPort = binary.BigEndian.Uint16(b[2:4])
	l := binary.BigEndian.Uint16(b[4:6])
	if int(l) < udpHdrLen || int(l) > len(b) {
		return udpDatagram{}, false
	}
	u.payload = b[udpHdrLen:l]
	return u, true
}

// checksum computes the Internet checksum of b seeded with init.
func checksum(b []byte, initial uint32) uint16 {
	sum := initial
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// transportChecksum computes the TCP/UDP checksum over the pseudo-header
// and segment.
func transportChecksum(src, dst IPv4Addr, proto uint8, seg []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(seg)))
	var sum uint32
	for i := 0; i < 12; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(pseudo[i : i+2]))
	}
	return checksum(seg, sum)
}
