//go:build !race

package catfish

const raceEnabled = false
