package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the bounded ring-buffer event tracer: a Dapper-ish
// always-compiled-in trace facility whose disabled cost is one atomic
// load and zero allocations — cheap enough to leave the call sites on
// every datapath layer (fabric fault injection, NIC ring drops, netstack
// retransmits, qtoken spans, event-loop dispatch).
//
// Events land in a fixed ring; when the ring wraps, the oldest events are
// overwritten (always-on tracing must be bounded, never a leak). Export
// renders the ring in the chrome://tracing JSON array format, so a trace
// from any run drops straight into chrome://tracing or Perfetto.

// EventKind discriminates tracer event shapes.
type EventKind uint8

// Event kinds.
const (
	// KindInstant is a point event ("i" phase in chrome trace).
	KindInstant EventKind = iota
	// KindSpan is a complete duration event ("X" phase).
	KindSpan
)

// Event is one trace record. Name and Cat must be string constants (or
// otherwise long-lived strings): the tracer stores the header only, so
// emitting allocates nothing.
type Event struct {
	TS   int64 // wall-clock nanoseconds
	Dur  int64 // span duration in nanoseconds (spans only)
	Name string
	Cat  string
	TID  int32 // logical track: queue descriptor, port, or ring index
	Arg  int64 // one numeric payload (virtual cost, burst size, ...)
	Kind EventKind
}

// DefaultTraceCap is the ring capacity of the package-level Trace.
const DefaultTraceCap = 16384

// Tracer is a bounded ring of events. Emission is guarded by an atomic
// enable flag (the only cost when disabled) and a mutex when enabled; the
// ring never grows, so always-on tracing is memory-bounded by
// construction.
type Tracer struct {
	on atomic.Bool

	mu      sync.Mutex
	buf     []Event
	next    int   // slot the next event lands in
	wrapped bool  // ring has overwritten at least one event
	total   int64 // events emitted since Reset (includes overwritten)
}

// NewTracer returns a disabled tracer with the given ring capacity
// (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Trace is the process-wide tracer the datapath layers emit into.
// Disabled by default; demi-stat and tests enable it around a run.
var Trace = NewTracer(DefaultTraceCap)

// Enable turns event recording on.
func (t *Tracer) Enable() { t.on.Store(true) }

// Disable turns event recording off; the ring's contents survive for
// export.
func (t *Tracer) Disable() { t.on.Store(false) }

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t.on.Load() }

// Reset clears the ring (recording state is unchanged).
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next = 0
	t.wrapped = false
	t.total = 0
	for i := range t.buf {
		t.buf[i] = Event{}
	}
}

// Instant records a point event. A no-op (one atomic load) when the
// tracer is disabled.
func (t *Tracer) Instant(cat, name string, tid int32, arg int64) {
	if !t.on.Load() {
		return
	}
	t.emit(Event{TS: time.Now().UnixNano(), Name: name, Cat: cat, TID: tid, Arg: arg, Kind: KindInstant})
}

// Span records a complete duration event starting at startNS wall time.
// A no-op (one atomic load) when the tracer is disabled.
func (t *Tracer) Span(cat, name string, tid int32, startNS, durNS, arg int64) {
	if !t.on.Load() {
		return
	}
	if durNS < 0 {
		durNS = 0
	}
	t.emit(Event{TS: startNS, Dur: durNS, Name: name, Cat: cat, TID: tid, Arg: arg, Kind: KindSpan})
}

func (t *Tracer) emit(e Event) {
	t.mu.Lock()
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapped = true
	}
	t.total++
	t.mu.Unlock()
}

// Len returns the number of events currently held in the ring.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		return len(t.buf)
	}
	return t.next
}

// Total returns the number of events emitted since the last Reset,
// including any the ring has since overwritten.
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the ring's contents oldest-first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// ExportChromeJSON writes the ring's events as a chrome://tracing JSON
// array. Timestamps are rebased to the earliest event so the trace
// starts near zero; chrome's "ts"/"dur" unit is microseconds.
func (t *Tracer) ExportChromeJSON(w io.Writer) error {
	events := t.Events()
	var base int64
	for i, e := range events {
		if i == 0 || e.TS < base {
			base = e.TS
		}
	}
	var b strings.Builder
	b.WriteString("[\n")
	for i, e := range events {
		if i > 0 {
			b.WriteString(",\n")
		}
		ts := float64(e.TS-base) / 1e3
		switch e.Kind {
		case KindSpan:
			fmt.Fprintf(&b,
				`  {"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"v":%d}}`,
				e.Name, e.Cat, ts, float64(e.Dur)/1e3, e.TID, e.Arg)
		default:
			fmt.Fprintf(&b,
				`  {"name":%q,"cat":%q,"ph":"i","s":"g","ts":%.3f,"pid":1,"tid":%d,"args":{"v":%d}}`,
				e.Name, e.Cat, ts, e.TID, e.Arg)
		}
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Package-level helpers over the process-wide Trace, so datapath call
// sites stay one line. All are single-atomic-load no-ops when tracing is
// off.

// TraceEnabled reports whether the process-wide tracer is recording.
func TraceEnabled() bool { return Trace.Enabled() }

// TraceInstant records a point event on the process-wide tracer.
func TraceInstant(cat, name string, tid int32, arg int64) { Trace.Instant(cat, name, tid, arg) }

// TraceSpan records a duration event on the process-wide tracer.
func TraceSpan(cat, name string, tid int32, startNS, durNS, arg int64) {
	Trace.Span(cat, name, tid, startNS, durNS, arg)
}
