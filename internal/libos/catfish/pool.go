package catfish

import (
	"sync"
	"sync/atomic"

	"demikernel/internal/sga"
	"demikernel/internal/telemetry"
)

// This file implements the storage-side buffer pool behind AllocSGA and
// the lookup-queue value path, mirroring fabric.FramePool: size-classed
// sync.Pool recycling so the steady-state storage data path allocates
// nothing per op.
//
// Ownership contract: a PooledBuf starts with exactly one owner. An SGA
// built over it carries the release as its free hook; whoever consumes
// the SGA frees it — the libOS after a durable push (the marshalled copy
// is on media; the staging buffer is dead), or the application after
// using a popped value. Releasing twice is a bug and panics, exactly as
// FramePool does. Outstanding() exposes the live-buffer gauge the chaos
// soak leak-asserts against.

// bufClasses are the pooled size classes. Storage records cluster around
// small keys/values and whole blocks; the largest class covers a 4x
// block-size marshalled record, larger requests fall back to dedicated
// heap buffers (misses, never recycled).
var bufClasses = [...]int{128, 512, 4096, 16384}

// PooledBuf is one recycled buffer plus the pre-bound SGA plumbing that
// makes re-use allocation-free.
type PooledBuf struct {
	pool     *BufPool
	class    int8 // index into bufClasses; -1 = oversized, not recycled
	released atomic.Bool
	data     []byte
	full     []byte
	segs     [1]sga.Segment
	release  func()
}

// Bytes returns the buffer's usable bytes (length = requested size).
func (b *PooledBuf) Bytes() []byte { return b.data }

// SGA returns a single-segment SGA over the buffer whose Free releases
// it back to the pool. Allocation-free: the segment header and release
// closure are part of the PooledBuf and recycle with it.
func (b *PooledBuf) SGA() sga.SGA {
	b.segs[0] = sga.Segment{Buf: b.data}
	return sga.SGA{Segments: b.segs[:]}.WithFree(b.release)
}

// Release returns the buffer to its pool. Releasing twice panics: a
// double free would hand the same storage to two owners.
func (b *PooledBuf) Release() {
	if b.released.Swap(true) {
		panic("catfish: PooledBuf released twice")
	}
	b.pool.outstanding.Add(-1)
	if b.class >= 0 {
		b.data = nil
		b.pool.recycled.Add(1)
		b.pool.classes[b.class].Put(b)
	}
}

// BufPoolStats is a snapshot of a pool's counters.
type BufPoolStats struct {
	Pooled      int64 // Gets served from recycled storage
	Misses      int64 // Gets that allocated fresh storage
	Recycled    int64 // buffers returned to the free lists
	Outstanding int64 // live buffers (gauge); 0 when nothing leaks
}

// BufPool recycles storage buffers by size class. Safe for concurrent
// use; the zero value is ready.
type BufPool struct {
	classes [len(bufClasses)]sync.Pool

	pooled      atomic.Int64
	misses      atomic.Int64
	recycled    atomic.Int64
	outstanding atomic.Int64
}

// Get returns a buffer of exactly n usable bytes, recycled when a
// buffer of its size class is free. The caller owns the single
// reference.
func (p *BufPool) Get(n int) *PooledBuf {
	ci := classFor(n)
	p.outstanding.Add(1)
	if ci < 0 {
		p.misses.Add(1)
		mem := make([]byte, n)
		b := &PooledBuf{pool: p, class: -1, data: mem, full: mem}
		b.release = b.Release
		return b
	}
	var b *PooledBuf
	if v := p.classes[ci].Get(); v != nil {
		b = v.(*PooledBuf)
		p.pooled.Add(1)
	} else {
		p.misses.Add(1)
		b = &PooledBuf{pool: p, class: int8(ci), full: make([]byte, bufClasses[ci])}
		b.release = b.Release
	}
	b.data = b.full[:n]
	b.released.Store(false)
	return b
}

func classFor(n int) int {
	for i, c := range bufClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// Stats returns a snapshot of the pool's counters.
func (p *BufPool) Stats() BufPoolStats {
	return BufPoolStats{
		Pooled:      p.pooled.Load(),
		Misses:      p.misses.Load(),
		Recycled:    p.recycled.Load(),
		Outstanding: p.outstanding.Load(),
	}
}

// Outstanding returns the live-buffer gauge (allocated minus released).
func (p *BufPool) Outstanding() int64 { return p.outstanding.Load() }

// RegisterTelemetry lifts the pool's counters into a telemetry registry
// under prefix.
func (p *BufPool) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	r.RegisterFunc(prefix+".pooled", p.pooled.Load)
	r.RegisterFunc(prefix+".misses", p.misses.Load)
	r.RegisterFunc(prefix+".recycled", p.recycled.Load)
	r.RegisterFunc(prefix+".outstanding", p.outstanding.Load)
}
