package kv

import (
	"errors"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/uring"
)

// Ring mode: the KV server and client post operations through an SQ/CQ
// ring pair instead of calling Push/Pop/Wait per op. The zero-copy
// discipline survives the switch: GET responses still push the stored
// buffer in place, protected by a per-value reference count so an
// overwrite cannot recycle a frame the transport is still reading
// (the legacy path gets this for free by waiting on each push inline).

// ErrRingDisabled is returned by ring-path calls before EnableRing.
var ErrRingDisabled = errors.New("kv: ring mode not enabled")

// ringPopDepth is how many pops the server keeps armed per connection
// (the per-connection pipeline depth; one would serialize pipelined
// clients to one request per poll).
const ringPopDepth = 8

func popTag(conn core.QD) uint64  { return uint64(conn) << 1 }
func pushTag(conn core.QD) uint64 { return uint64(conn)<<1 | 1 }

// EnableRing switches the server's data path onto an SQ/CQ ring pair of
// the given capacity attached to its libOS. Call once, before serving.
func (s *Server) EnableRing(capacity int) {
	s.ring = s.lib.AttachRing(capacity)
	s.sqes = make([]uring.SQE, 0, s.ring.Cap())
	s.cqes = make([]uring.CQE, s.ring.Cap())
	s.inflight = make(map[core.QD][]*storedVal)
}

// Ring returns the server's ring pair (nil before EnableRing).
func (s *Server) Ring() *uring.Pair { return s.ring }

// stepRing is Step over the ring path: accept → submit pops, harvest →
// apply each request and push its response, all batched through the
// rings. Single-threaded on the app side, per the ring contract.
func (s *Server) stepRing() int {
	for {
		conn, ok, err := s.lib.TryAccept(s.lqd)
		if err != nil || !ok {
			break
		}
		s.count(func(st *Stats) { st.Connections++ })
		depth := ringPopDepth
		if c := s.ring.Cap() / 4; c < depth {
			depth = max(c, 1)
		}
		for i := 0; i < depth; i++ {
			s.sqes = append(s.sqes, uring.SQE{Op: queue.OpPop, QD: int32(conn), Tag: popTag(conn)})
		}
	}
	s.flushSQ()

	served := 0
	n := s.lib.HarvestCQ(s.ring, s.cqes)
	for i := 0; i < n; i++ {
		c := &s.cqes[i]
		conn := core.QD(c.Tag >> 1)
		isPush := c.Tag&1 == 1
		if c.Err != nil {
			// Connection failed (or the node crashed): drop every
			// in-flight response reference and the descriptor.
			for _, ref := range s.inflight[conn] {
				s.releaseRef(ref)
			}
			delete(s.inflight, conn)
			s.lib.Close(conn) //nolint:errcheck // may already be gone
			*c = uring.CQE{}
			continue
		}
		if isPush {
			// Response delivered: the transport has copied the bytes
			// out, so the stored value it referenced (if any) may
			// release. Per-conn pushes complete FIFO.
			if held := s.inflight[conn]; len(held) > 0 {
				s.releaseRef(held[0])
				held[0] = nil
				if len(held) == 1 {
					s.inflight[conn] = held[:0]
				} else {
					s.inflight[conn] = held[1:]
				}
			}
			*c = uring.CQE{}
			continue
		}
		// Request arrived: apply it and stage response + re-armed pop.
		resp, retain, ref := s.apply(c.SGA, true)
		if !retain {
			c.SGA.Free()
		}
		s.inflight[conn] = append(s.inflight[conn], ref)
		s.sqes = append(s.sqes,
			uring.SQE{Op: queue.OpPush, QD: int32(conn), Tag: pushTag(conn), SGA: resp, Cost: c.Cost + s.model.AppRequestNS},
			uring.SQE{Op: queue.OpPop, QD: int32(conn), Tag: popTag(conn)})
		served++
		*c = uring.CQE{}
	}
	s.flushSQ()
	return served
}

// flushSQ submits whatever is staged, keeping the unaccepted suffix for
// the next step (ring full = backpressure, never a drop).
func (s *Server) flushSQ() {
	if len(s.sqes) == 0 {
		return
	}
	n, err := s.lib.SubmitBatch(s.ring, s.sqes)
	if err != nil {
		// Pair reset underneath us (node crash): the staged ops' conns
		// are dead; references unwind through the error CQEs above.
		s.sqes = s.sqes[:0]
		return
	}
	s.sqes = s.sqes[:copy(s.sqes, s.sqes[n:])]
}

// EnableRing switches the client's round trips onto an SQ/CQ ring pair
// of the given capacity. Get/Set/Del and the failover loop are
// unchanged; only the submission path underneath them moves.
func (c *Client) EnableRing(capacity int) {
	c.ring = c.lib.AttachRing(capacity)
	c.rsqes = make([]uring.SQE, 0, 2)
	c.rcqes = make([]uring.CQE, c.ring.Cap())
}

// Ring returns the client's ring pair (nil before EnableRing).
func (c *Client) Ring() *uring.Pair { return c.ring }

// attemptRing performs one push/pop round trip through the ring. Tags
// carry a per-attempt generation so stragglers from a timed-out earlier
// attempt are recognized and dropped instead of being mistaken for the
// current response.
func (c *Client) attemptRing(req sga.SGA, appCost simclock.Lat) (sga.SGA, simclock.Lat, error) {
	c.ringGen++
	gen := c.ringGen << 32
	sq := append(c.rsqes[:0],
		uring.SQE{Op: queue.OpPush, QD: int32(c.qd), Tag: gen | 1, SGA: req, Cost: appCost},
		uring.SQE{Op: queue.OpPop, QD: int32(c.qd), Tag: gen})
	var (
		resp     sga.SGA
		cost     simclock.Lat
		firstErr error
	)
	got := 0
	for got < 2 {
		if len(sq) > 0 {
			n, err := c.lib.SubmitBatch(c.ring, sq)
			if err != nil {
				return sga.SGA{}, 0, err
			}
			sq = sq[n:]
		}
		n, err := c.lib.WaitAnyRing(c.ring, c.rcqes, time.Time{})
		if err != nil {
			resp.Free()
			return sga.SGA{}, 0, err
		}
		for i := 0; i < n; i++ {
			cq := &c.rcqes[i]
			if cq.Tag&^uint64(0xffffffff) != gen {
				cq.SGA.Free() // straggler from an abandoned earlier attempt
				*cq = uring.CQE{}
				continue
			}
			got++
			if cq.Err != nil {
				if firstErr == nil {
					firstErr = cq.Err
				}
			} else if cq.Kind == queue.OpPop {
				resp, cost = cq.SGA, cq.Cost
			}
			*cq = uring.CQE{}
		}
	}
	c.rsqes = c.rsqes[:0]
	if firstErr != nil {
		resp.Free()
		return sga.SGA{}, 0, firstErr
	}
	return resp, cost, nil
}
