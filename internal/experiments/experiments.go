// Package experiments reproduces every figure, table, and quantitative
// claim of the paper as a runnable experiment. The paper (HotOS '19) has
// no evaluation section, so the reproduction targets are the two
// architecture figures, the syscall-interface figure, the accelerator
// taxonomy table, and each measurable claim in the text; DESIGN.md maps
// each experiment ID to its source.
//
// Every experiment returns tables of results plus named shape checks —
// the "who wins, by roughly what factor" assertions that must hold for
// the reproduction to count. cmd/demi-bench renders them into
// EXPERIMENTS.md; the test suite asserts every check.
package experiments

import (
	"fmt"

	demi "demikernel"
	"demikernel/internal/apps/echo"
	"demikernel/internal/apps/kv"
	"demikernel/internal/metrics"
	"demikernel/internal/simclock"
)

// Check is one pass/fail shape assertion with human-readable detail.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Result is one experiment's output.
type Result struct {
	Tables []*metrics.Table
	Checks []Check
}

// check appends a shape assertion to the result.
func (r *Result) check(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// Experiment is one entry in the reproduction index.
type Experiment struct {
	ID     string // E1..E13, matching DESIGN.md
	Title  string
	Source string // figure/table/section of the paper
	Claim  string // the sentence being reproduced
	Run    func(seed int64) (*Result, error)
}

// All lists every experiment in index order.
var All = []Experiment{
	{
		ID:     "E1",
		Title:  "Kernel vs kernel-bypass data path",
		Source: "Figure 1",
		Claim:  "kernel-bypass accelerators remove the OS kernel from the I/O data path; per-I/O latency drops by the syscall+copy+kernel-stack cost",
		Run:    runE1,
	},
	{
		ID:     "E2",
		Title:  "Accelerator taxonomy and the libOS software gap",
		Source: "Table 1, §2",
		Claim:  "device classes provide different OS feature subsets; the libOS must supply the rest in software",
		Run:    runE2,
	},
	{
		ID:     "E3",
		Title:  "Zero-copy vs POSIX copy",
		Source: "§3.2",
		Claim:  "copying a 4KB page takes ~1µs on a 4GHz CPU, adding ~50% overhead to a 2µs Redis request",
		Run:    runE3,
	},
	{
		ID:     "E4",
		Title:  "Stream vs atomic queue units",
		Source: "§3.2",
		Claim:  "with pipes Redis re-inspects partial requests while a ready request waits; queue pops return only whole elements",
		Run:    runE4,
	},
	{
		ID:     "E5",
		Title:  "Wakeup semantics: qtokens vs epoll",
		Source: "§4.4",
		Claim:  "wait wakes exactly one thread on each pop completion, so there are never wasted wake ups",
		Run:    runE5,
	},
	{
		ID:     "E6",
		Title:  "POSIX-preserving user stacks",
		Source: "§6",
		Claim:  "mTCP-style stacks impose POSIX-emulation overhead; 'its latency was higher than the Linux kernel's'",
		Run:    runE6,
	},
	{
		ID:     "E7",
		Title:  "Transparent memory registration + free-protection",
		Source: "§4.5",
		Claim:  "the libOS registers whole regions and defers frees of in-flight buffers, vs explicit per-buffer registration",
		Run:    runE7,
	},
	{
		ID:     "E8",
		Title:  "Filter offload and cache steering",
		Source: "§4.2, §4.3",
		Claim:  "filters run on the device, cutting host CPU, and steer I/O to CPUs by application keys to improve cache utilisation",
		Run:    runE8,
	},
	{
		ID:     "E9",
		Title:  "Portability: one application, three libOSes",
		Source: "§4.1, §5.1",
		Claim:  "the same application runs unmodified across kernel, DPDK, and RDMA libOSes",
		Run:    runE9,
	},
	{
		ID:     "E10",
		Title:  "Sort queues for application priorities",
		Source: "§4.3",
		Claim:  "a pop from the sorted queue returns the element with the highest priority",
		Run:    runE10,
	},
	{
		ID:     "E11",
		Title:  "SGA framing over a lossy stream",
		Source: "§5.2",
		Claim:  "the libOS inserts framing atop TCP and the receiver recreates the scatter-gather array exactly",
		Run:    runE11,
	},
	{
		ID:     "E12",
		Title:  "Accelerator-specific storage layout",
		Source: "§5.3",
		Claim:  "a single-application log layout avoids general-purpose file-system overhead (journaling, page-cache management)",
		Run:    runE12,
	},
	{
		ID:     "E13",
		Title:  "RDMA receive-buffer provisioning",
		Source: "§2",
		Claim:  "allocating too few buffers causes communication to fail; too many wastes memory; the libOS sizes them instead",
		Run:    runE13,
	},
	{
		ID:     "E14",
		Title:  "Multi-core scale-out: RSS-sharded workers",
		Source: "§3.1",
		Claim:  "kernel-bypass servers scale by flow-level parallelism: RSS partitions connections across cores and nothing on the per-request path is shared",
		Run:    runE14,
	},
	{
		ID:     "E15",
		Title:  "Multi-tenant NIC protection",
		Source: "§3, §7",
		Claim:  "untrusting applications share one kernel-bypass NIC; the control plane — flow steering, TX scheduling, and memory quotas — enforces isolation the data path no longer can",
		Run:    runE15,
	},
	{
		ID:     "E16",
		Title:  "Syscall-free submission: SQ/CQ rings vs per-op calls",
		Source: "§3.2, §4.4",
		Claim:  "the OS control plane leaves the data path entirely: apps post batches of operations and harvest completions through shared-memory rings, with zero libOS calls per op in steady state",
		Run:    runE16,
	},
	{
		ID:     "E17",
		Title:  "A real web workload on the bypass path: HTTP/1.1 over catnip queues",
		Source: "§2, §4",
		Claim:  "applications run directly on kernel-bypass queues, but the libOS still owes them the OS's end of TCP: a client that stops reading must become flow-control backpressure — bounded buffering and a reopenable window — not unbounded memory or a dead connection",
		Run:    runE17,
	},
	{
		ID:     "E18",
		Title:  "Storage pushdown: BPF-style compute in the NVMe completion path",
		Source: "§4.2, §5.3",
		Claim:  "the OS keeps protection while applications push logic to the device: a sandboxed lookup runs in the completion path, so a depth-N index GET costs one app↔libOS crossing instead of N+1, with a CPU fallback that returns byte-identical results",
		Run:    runE18,
	},
	{
		ID:     "E19",
		Title:  "Elastic resharding and live libOS switching",
		Source: "§3.1, §5",
		Claim:  "the OS control plane can repartition a bypass server's cores and swap its libOS at run time: keys migrate and RSS re-steers under load without failing a request, and a kernel↔bypass switch keeps every established connection while the syscall tax appears or disappears",
		Run:    runE19,
	},
	{
		ID:     "A1",
		Title:  "Ablation: syscall price",
		Source: "ablation of §3.2",
		Claim:  "the kernel's I/O abstraction is as much a barrier as the kernel itself: the bypass win survives free syscalls",
		Run:    runA1,
	},
	{
		ID:     "A2",
		Title:  "Ablation: copy price (memory bandwidth)",
		Source: "ablation of §3.2",
		Claim:  "the zero-copy advantage scales with the cost of a byte and persists at high memory bandwidth",
		Run:    runA2,
	},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared harness plumbing ---

// echoRig is a connected echo client/server over one libOS flavour.
type echoRig struct {
	cluster *demi.Cluster
	server  *echo.Server
	client  *echo.Client
	srvNode *demi.Node
	cliNode *demi.Node
	stops   []func()
}

func (r *echoRig) close() {
	for _, f := range r.stops {
		f()
	}
}

func newNode(c *demi.Cluster, flavor string, cfg demi.NodeConfig) (*demi.Node, error) {
	switch flavor {
	case "catnip":
		return c.MustSpawn(demi.Catnip, demi.WithConfig(cfg)), nil
	case "catnap":
		return c.MustSpawn(demi.Catnap, demi.WithConfig(cfg)), nil
	case "catmint":
		return c.MustSpawn(demi.Catmint, demi.WithConfig(cfg)), nil
	default:
		return nil, fmt.Errorf("unknown libOS flavor %q", flavor)
	}
}

func newEchoRig(flavor string, seed int64, extra simclock.Lat) (*echoRig, error) {
	c := demi.NewCluster(seed)
	srvNode, err := newNode(c, flavor, demi.NodeConfig{Host: 1, PerPacketExtra: extra})
	if err != nil {
		return nil, err
	}
	cliNode, err := newNode(c, flavor, demi.NodeConfig{Host: 2, PerPacketExtra: extra})
	if err != nil {
		return nil, err
	}
	srv := echo.NewServer(srvNode.LibOS)
	srv.AppCost = c.Model.AppRequestNS
	if err := srv.Listen(7); err != nil {
		return nil, err
	}
	stopS := srvNode.Background()
	stopC := cliNode.Background()
	stopServe := make(chan struct{})
	go srv.Run(stopServe)

	cli := echo.NewClient(cliNode.LibOS)
	if err := cli.Connect(c.AddrOf(srvNode, 7)); err != nil {
		return nil, err
	}
	return &echoRig{
		cluster: c,
		server:  srv,
		client:  cli,
		srvNode: srvNode,
		cliNode: cliNode,
		stops:   []func(){func() { close(stopServe) }, stopC, stopS},
	}, nil
}

// measureEcho collects n round trips of the given payload size.
func (r *echoRig) measureEcho(size, n int) (*metrics.Histogram, error) {
	payload := make([]byte, size)
	var h metrics.Histogram
	for i := 0; i < n; i++ {
		cost, err := r.client.RTT(payload, r.cluster.Model.AppRequestNS)
		if err != nil {
			return nil, fmt.Errorf("rtt %d: %w", i, err)
		}
		h.Record(cost)
	}
	return &h, nil
}

// kvRig is a connected KV client/server over one libOS flavour.
type kvRig struct {
	cluster *demi.Cluster
	server  *kv.Server
	client  *kv.Client
	srvNode *demi.Node
	cliNode *demi.Node
	stops   []func()
}

func (r *kvRig) close() {
	for _, f := range r.stops {
		f()
	}
}

func newKVRig(flavor string, seed int64) (*kvRig, error) {
	c := demi.NewCluster(seed)
	srvNode, err := newNode(c, flavor, demi.NodeConfig{Host: 1})
	if err != nil {
		return nil, err
	}
	cliNode, err := newNode(c, flavor, demi.NodeConfig{Host: 2})
	if err != nil {
		return nil, err
	}
	srv := kv.NewServer(srvNode.LibOS, &c.Model)
	if err := srv.Listen(6379); err != nil {
		return nil, err
	}
	stopS := srvNode.Background()
	stopC := cliNode.Background()
	stopServe := make(chan struct{})
	go srv.Run(stopServe)

	cli := kv.NewClient(cliNode.LibOS)
	if err := cli.Connect(c.AddrOf(srvNode, 6379)); err != nil {
		return nil, err
	}
	return &kvRig{
		cluster: c,
		server:  srv,
		client:  cli,
		srvNode: srvNode,
		cliNode: cliNode,
		stops:   []func(){func() { close(stopServe) }, stopC, stopS},
	}, nil
}
