// Package queue implements the Demikernel I/O queue abstraction (§4.2,
// §4.3, §4.4 of the paper): queues whose atomic element is a
// scatter-gather array, non-blocking push/pop operations that return
// qtokens, completion delivery that wakes exactly one waiter per
// operation, and the queue composition operators merge, filter, sort and
// map.
//
// The package is transport-agnostic: a queue backed by application memory
// (MemQueue) lives here; queues backed by simulated kernel-bypass devices
// are provided by the libOS packages (internal/libos/...), all satisfying
// IoQueue. The composition operators wrap any IoQueue.
package queue

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// QToken identifies one outstanding queue operation. "Each qtoken is
// unique to a single queue operation", which is what lets different
// threads wait on different tokens instead of sharing a descriptor.
type QToken uint64

// OpKind says whether a completion belongs to a push or a pop.
type OpKind int

// Operation kinds.
const (
	OpPush OpKind = iota
	OpPop
)

// Errors used across queue implementations.
var (
	ErrClosed       = errors.New("queue: closed")
	ErrFiltered     = errors.New("queue: element rejected by filter")
	ErrUnknownToken = errors.New("queue: unknown or already-consumed qtoken")
	ErrTokenClaimed = errors.New("queue: token already has a waiter")
)

// Completion is the result of one queue operation.
type Completion struct {
	Token QToken
	Kind  OpKind
	// SGA carries the popped element (pops only).
	SGA sga.SGA
	// Err is non-nil when the operation failed.
	Err error
	// Cost is the accumulated virtual latency of the operation's path.
	Cost simclock.Lat
}

// DoneFunc receives a queue operation's completion. Implementations of
// IoQueue must invoke it exactly once per operation, either inline or
// from a later Pump.
type DoneFunc func(Completion)

// IoQueue is the interface every Demikernel queue implements.
//
// Push and Pop are asynchronous: they accept the operation and invoke
// done when it completes. Pump advances any internal machinery (device
// polling, composition plumbing); leaf queues with no machinery return 0.
type IoQueue interface {
	// Push submits one scatter-gather array as an atomic element. cost
	// is the virtual latency the caller has already accumulated
	// (application compute, upstream queue stages).
	Push(s sga.SGA, cost simclock.Lat, done DoneFunc)
	// Pop requests the next atomic element.
	Pop(done DoneFunc)
	// Pump makes progress on internal machinery and reports how much
	// work it performed.
	Pump() int
	// Close shuts the queue down; outstanding and future operations
	// complete with ErrClosed.
	Close() error
}

// BatchIoQueue is the optional batched face of an IoQueue: PushBatched
// and PopBatched stage the operation without advancing the queue's
// machinery, so a caller issuing a burst (the SQ drain path) can stage
// every operation first and pay the pump — TX segmentation, RX sweep —
// once for the whole burst instead of once per op. The caller owns
// making progress afterwards (a transport Poll suffices).
type BatchIoQueue interface {
	PushBatched(s sga.SGA, cost simclock.Lat, done DoneFunc)
	PopBatched(done DoneFunc)
}

// completerShards is the number of token-table shards. Sixteen keeps the
// modulo a mask-friendly power of two while making same-lock collisions
// between concurrent completions rare at any realistic thread count.
const completerShards = 16

// maxFreeStates bounds each shard's tokenState freelist so a burst of
// outstanding tokens does not pin memory forever; overflow goes to GC.
const maxFreeStates = 1024

// Completer is the token table: it allocates qtokens, records
// completions, and wakes exactly one waiter per completion (§4.4).
// It is safe for concurrent use.
//
// The table is sharded by token so parallel queues completing on
// different shards never contend, and completions can optionally be
// published to a ready list (EnableReadyList) so an event loop dispatches
// in O(ready) instead of probing every pending token.
//
// The publish path is allocation-free in steady state: token states are
// recycled through per-shard freelists, and each state carries its own
// pre-bound DoneFunc, so NewToken → done → TryWait costs 0 allocs/op
// once the freelists are warm (the BenchmarkHotPath_Completer fence).
// Hot atomics and the shard array entries are padded to cache-line size
// so shards running on different cores never write-share a line.
type Completer struct {
	next atomic.Uint64
	_    [56]byte //nolint:unused // pad: next is written on every NewToken
	// wakeups feeds the E5 experiment.
	wakeups atomic.Int64
	_       [56]byte //nolint:unused // pad
	spans   *telemetry.SpanTable
	shards  [completerShards]completerShard

	// Ready list, opt-in: without a consumer it would grow without
	// bound, so nothing is recorded until EnableReadyList.
	trackReady atomic.Bool
	readyMu    sync.Mutex
	ready      []QToken
}

type completerShard struct {
	mu      sync.Mutex
	pending map[QToken]*tokenState
	free    []*tokenState // recycled token states (LIFO for cache warmth)
	// pad the 40 bytes above out to a 64-byte cache line so adjacent
	// shards in the array never write-share a line.
	_ [24]byte //nolint:unused
}

// tokenState is the per-token table entry. States are recycled through
// the owning shard's freelist: the back-pointers (c, home) and the
// doneFn closure are bound once at first allocation and reused across
// every token the state subsequently represents, which is what makes the
// completion publish path allocation-free. While a state sits on the
// freelist its qt is zero, so a DoneFunc invoked twice for the same
// operation (a contract violation — IoQueue implementations must call
// done exactly once) is dropped rather than corrupting a live token.
type tokenState struct {
	c    *Completer      // immutable after first allocation
	home *completerShard // immutable: states never migrate shards
	// doneFn is the reusable completion closure handed out by
	// NewTokenFor; it resolves the current qt under the shard lock.
	doneFn DoneFunc

	qt   QToken // current token, 0 while on the freelist
	done bool
	// published marks that the token has already been appended to the
	// ready list, so the EnableReadyList sweep and a racing complete()
	// never double-publish it.
	published bool
	qd        int32 // owning queue descriptor (-1 when unattributed)
	comp      Completion
	ch        chan Completion // non-nil once a blocking waiter subscribed
	// notify, when non-nil, is an any-of waiter to ping on completion
	// (WaitAny's O(1)-per-completion dispatch; see anywaiter.go).
	notify *AnyWaiter
	// span carries the wall-clock stage stamps while qtoken spans are
	// enabled; nil (no allocation) otherwise.
	span *spanStamps
}

type spanStamps struct {
	issueNS  int64
	submitNS int64
	doneNS   int64
}

// NewCompleter returns an empty token table.
func NewCompleter() *Completer {
	c := &Completer{spans: telemetry.NewSpanTable("completer")}
	for i := range c.shards {
		c.shards[i].pending = make(map[QToken]*tokenState)
	}
	return c
}

func (c *Completer) shard(qt QToken) *completerShard {
	return &c.shards[uint64(qt)%completerShards]
}

// Spans exposes the completer's qtoken span table. Spans are disabled by
// default; observability surfaces call Spans().Enable() to start
// stamping operations (see internal/telemetry).
func (c *Completer) Spans() *telemetry.SpanTable { return c.spans }

// NewToken allocates a fresh token in the pending state and returns it
// along with the DoneFunc that completes it.
func (c *Completer) NewToken() (QToken, DoneFunc) {
	return c.NewTokenFor(-1)
}

// NewTokenFor is NewToken with queue-descriptor attribution: qd labels
// the operation's latency series when qtoken spans are enabled (the
// syscall layer passes the QD; transports that allocate tokens
// internally use NewToken).
//
// Steady state performs no allocation: the token state (including its
// DoneFunc closure) comes from the shard's freelist.
func (c *Completer) NewTokenFor(qd int32) (QToken, DoneFunc) {
	qt := QToken(c.next.Add(1)) // starts at 1: qt 0 means "on freelist"
	sh := c.shard(qt)
	sh.mu.Lock()
	var st *tokenState
	if n := len(sh.free); n > 0 {
		st = sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
	} else {
		st = &tokenState{c: c, home: sh}
		st.doneFn = func(comp Completion) { st.c.completeState(st, comp) }
	}
	st.qt = qt
	st.qd = qd
	if c.spans.Enabled() {
		st.span = &spanStamps{issueNS: time.Now().UnixNano()}
	}
	sh.pending[qt] = st
	sh.mu.Unlock()
	return qt, st.doneFn
}

// recycle scrubs a consumed token state and returns it to its home
// shard's freelist. Callers must have copied everything they need out of
// st first (comp, span) — after this call the state may immediately be
// reissued as a new token.
func (c *Completer) recycle(st *tokenState) {
	sh := st.home
	sh.mu.Lock()
	st.qt = 0
	st.done = false
	st.published = false
	st.qd = 0
	st.comp = Completion{}
	st.ch = nil
	st.notify = nil
	st.span = nil
	if len(sh.free) < maxFreeStates {
		sh.free = append(sh.free, st)
	}
	sh.mu.Unlock()
}

// MarkSubmit stamps the device-submit stage of qt's span: the libOS
// calls it once the operation has been handed to the device-side queue
// machinery. A no-op (one atomic load) while spans are disabled, and on
// tokens that completed inline and were already consumed.
func (c *Completer) MarkSubmit(qt QToken) {
	if !c.spans.Enabled() {
		return
	}
	now := time.Now().UnixNano()
	sh := c.shard(qt)
	sh.mu.Lock()
	if st, ok := sh.pending[qt]; ok && st.span != nil && st.span.submitNS == 0 {
		st.span.submitNS = now
	}
	sh.mu.Unlock()
}

// recordSpan folds a consumed token's stage stamps into the span table.
// Called after the token has left the pending table (or will never be
// observed again), so st is owned by the caller — no lock is needed.
func (c *Completer) recordSpan(st *tokenState, consumeNS int64) {
	if st.span == nil || !c.spans.Enabled() {
		return
	}
	c.spans.Record(telemetry.SpanRecord{
		QD:        st.qd,
		Kind:      int(st.comp.Kind),
		Err:       st.comp.Err != nil,
		IssueNS:   st.span.issueNS,
		SubmitNS:  st.span.submitNS,
		DoneNS:    st.span.doneNS,
		ConsumeNS: consumeNS,
		VirtCost:  st.comp.Cost,
	})
}

// completeState records a completion directly against its token state —
// no map lookup; the DoneFunc closure owns the pointer. A stale call
// (state already consumed and back on the freelist, qt == 0) or a double
// completion (st.done) is a contract violation by the invoking IoQueue
// and is dropped.
func (c *Completer) completeState(st *tokenState, comp Completion) {
	sh := st.home
	sh.mu.Lock()
	qt := st.qt
	if qt == 0 || st.done {
		sh.mu.Unlock()
		return // stale/double completion is an implementation bug; tolerate
	}
	comp.Token = qt
	st.done = true
	st.comp = comp
	if st.span != nil {
		st.span.doneNS = time.Now().UnixNano()
	}
	ch := st.ch
	notify := st.notify
	publish := false
	if ch != nil {
		// A blocking waiter subscribed: hand off and consume the
		// token. Exactly this one waiter wakes.
		delete(sh.pending, qt)
		c.wakeups.Add(1)
	} else if c.trackReady.Load() {
		// Publication is decided (and the token marked) under the shard
		// lock, so the EnableReadyList sweep — which scans under the
		// same lock — can never double-publish a token this completion
		// already claimed, and vice versa.
		st.published = true
		publish = true
	}
	sh.mu.Unlock()
	if ch != nil {
		// The channel handoff deliberately happens outside the shard
		// lock: the channel has capacity 1 and exactly one completion is
		// ever delivered per token (the st.done guard above), so the
		// send cannot block and needs no lock. Delivery through the
		// channel is also the waiter's consume moment. The state is
		// recycled before the send — comp is a local copy.
		if st.span != nil {
			c.recordSpan(st, st.span.doneNS)
		}
		c.recycle(st)
		ch <- comp
		return
	}
	if publish {
		c.readyMu.Lock()
		c.ready = append(c.ready, qt)
		c.readyMu.Unlock()
	}
	if notify != nil {
		// Outside the shard lock (the waiter has its own mutex and no
		// lock ordering with shards). The token stays pending: the
		// waiter consumes it with TryWait.
		notify.push(qt)
	}
}

// EnableReadyList turns on ready-token tracking. Event loops call it
// once; completions that arrive without a blocking waiter are then
// recorded for TakeReady.
//
// Enabling also sweeps tokens that completed *before* the call (or while
// a waiter subscription raced) into the ready list, so an event loop
// attached to an already-running libOS cannot permanently miss
// done-but-unconsumed tokens. Idempotent: the per-token published flag
// makes the sweep and racing completions publish each token exactly
// once.
func (c *Completer) EnableReadyList() {
	c.trackReady.Store(true)
	var swept []QToken
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for qt, st := range sh.pending {
			if st.done && st.ch == nil && !st.published {
				st.published = true
				swept = append(swept, qt)
			}
		}
		sh.mu.Unlock()
	}
	if len(swept) > 0 {
		c.readyMu.Lock()
		c.ready = append(c.ready, swept...)
		c.readyMu.Unlock()
	}
}

// TakeReady appends all currently ready (completed, unconsumed, no
// blocking waiter) tokens to dst and clears the internal list, keeping
// its backing storage. Tokens may have been consumed by a direct waiter
// since being recorded; consumers must tolerate ErrUnknownToken.
func (c *Completer) TakeReady(dst []QToken) []QToken {
	c.readyMu.Lock()
	dst = append(dst, c.ready...)
	c.ready = c.ready[:0]
	c.readyMu.Unlock()
	return dst
}

// Done peeks at a token without consuming it: done reports whether its
// completion has arrived, exists whether the token is still in the table
// at all.
func (c *Completer) Done(qt QToken) (done, exists bool) {
	sh := c.shard(qt)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.pending[qt]
	if !ok {
		return false, false
	}
	return st.done, true
}

// TryWait returns the completion for qt if it has arrived, consuming the
// token. ok is false while the operation is still outstanding.
// Unknown or already-consumed tokens return ErrUnknownToken.
func (c *Completer) TryWait(qt QToken) (Completion, bool, error) {
	sh := c.shard(qt)
	sh.mu.Lock()
	st, ok := sh.pending[qt]
	if !ok {
		sh.mu.Unlock()
		return Completion{}, false, ErrUnknownToken
	}
	if !st.done {
		sh.mu.Unlock()
		return Completion{}, false, nil
	}
	delete(sh.pending, qt)
	sh.mu.Unlock()
	comp := st.comp
	if st.span != nil {
		c.recordSpan(st, time.Now().UnixNano())
	}
	c.recycle(st)
	return comp, true, nil
}

// WaitChan subscribes the calling thread to qt's completion. The channel
// receives exactly one Completion; the token is consumed at delivery.
// Only one waiter may subscribe per token — the abstraction that removes
// epoll's thundering herd. If the completion already arrived, it is
// delivered immediately through the channel.
func (c *Completer) WaitChan(qt QToken) (<-chan Completion, error) {
	sh := c.shard(qt)
	sh.mu.Lock()
	st, ok := sh.pending[qt]
	if !ok {
		sh.mu.Unlock()
		return nil, ErrUnknownToken
	}
	if st.ch != nil {
		sh.mu.Unlock()
		return nil, ErrTokenClaimed
	}
	ch := make(chan Completion, 1)
	st.ch = ch
	if st.done {
		delete(sh.pending, qt)
		c.wakeups.Add(1)
		sh.mu.Unlock()
		comp := st.comp
		if st.span != nil {
			c.recordSpan(st, time.Now().UnixNano())
		}
		c.recycle(st)
		ch <- comp
		return ch, nil
	}
	sh.mu.Unlock()
	return ch, nil
}

// Outstanding returns the number of pending, unconsumed tokens.
func (c *Completer) Outstanding() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.pending)
		sh.mu.Unlock()
	}
	return n
}

// Wakeups returns the number of blocking-waiter wakeups delivered. Every
// one of them had a completion attached: by construction there are no
// wasted wakeups to count.
func (c *Completer) Wakeups() int64 { return c.wakeups.Load() }

// ReadyLen reports how many tokens currently sit in the ready list (for
// observability; may include tokens a direct waiter has since consumed).
func (c *Completer) ReadyLen() int {
	c.readyMu.Lock()
	defer c.readyMu.Unlock()
	return len(c.ready)
}

// RegisterTelemetry lifts the completer's counters into a telemetry
// registry under prefix: wakeups delivered, tokens outstanding, and the
// ready-list depth.
func (c *Completer) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	r.RegisterFunc(prefix+".wakeups", c.Wakeups)
	r.RegisterFunc(prefix+".outstanding", func() int64 { return int64(c.Outstanding()) })
	r.RegisterFunc(prefix+".ready", func() int64 { return int64(c.ReadyLen()) })
}

// MemQueue is an in-memory Demikernel queue: the object behind the plain
// queue() syscall. Elements pass by reference — pushing and popping never
// copies payload bytes. It is safe for concurrent use.
type MemQueue struct {
	mu       sync.Mutex
	elems    []elem
	waiters  []DoneFunc // pending pops, FIFO
	pushWait []pushReq  // pushes stalled on capacity, FIFO
	capacity int
	closed   bool
}

type elem struct {
	s    sga.SGA
	cost simclock.Lat
}

type pushReq struct {
	e    elem
	done DoneFunc
}

// DefaultMemQueueCap bounds a memory queue when no capacity is given.
const DefaultMemQueueCap = 1024

// NewMemQueue creates a memory queue holding up to capacity elements
// (0 means DefaultMemQueueCap).
func NewMemQueue(capacity int) *MemQueue {
	if capacity <= 0 {
		capacity = DefaultMemQueueCap
	}
	return &MemQueue{capacity: capacity}
}

// Push implements IoQueue. If a pop is already waiting, the element is
// handed over directly (rendezvous); otherwise it is buffered. When the
// queue is at capacity the push completion is deferred until space frees,
// which is the queue-level backpressure devices give via ring occupancy.
func (q *MemQueue) Push(s sga.SGA, cost simclock.Lat, done DoneFunc) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		done(Completion{Kind: OpPush, Err: ErrClosed})
		return
	}
	e := elem{s: s, cost: cost}
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.mu.Unlock()
		done(Completion{Kind: OpPush, Cost: cost})
		w(Completion{Kind: OpPop, SGA: s, Cost: cost})
		return
	}
	if len(q.elems) >= q.capacity {
		q.pushWait = append(q.pushWait, pushReq{e: e, done: done})
		q.mu.Unlock()
		return
	}
	q.elems = append(q.elems, e)
	q.mu.Unlock()
	done(Completion{Kind: OpPush, Cost: cost})
}

// Pop implements IoQueue.
func (q *MemQueue) Pop(done DoneFunc) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		done(Completion{Kind: OpPop, Err: ErrClosed})
		return
	}
	if len(q.elems) > 0 {
		e := q.elems[0]
		q.elems = q.elems[1:]
		// Space freed: admit a stalled push, if any.
		var admitted *pushReq
		if len(q.pushWait) > 0 {
			p := q.pushWait[0]
			q.pushWait = q.pushWait[1:]
			q.elems = append(q.elems, p.e)
			admitted = &p
		}
		q.mu.Unlock()
		if admitted != nil {
			admitted.done(Completion{Kind: OpPush, Cost: admitted.e.cost})
		}
		done(Completion{Kind: OpPop, SGA: e.s, Cost: e.cost})
		return
	}
	q.waiters = append(q.waiters, done)
	q.mu.Unlock()
}

// Pump implements IoQueue; a memory queue has no internal machinery.
func (q *MemQueue) Pump() int { return 0 }

// Len returns the number of buffered elements.
func (q *MemQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.elems)
}

// Close implements IoQueue, failing all outstanding operations.
func (q *MemQueue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	waiters := q.waiters
	pushes := q.pushWait
	q.waiters = nil
	q.pushWait = nil
	q.mu.Unlock()
	for _, w := range waiters {
		w(Completion{Kind: OpPop, Err: ErrClosed})
	}
	for _, p := range pushes {
		p.done(Completion{Kind: OpPush, Err: ErrClosed})
	}
	return nil
}
