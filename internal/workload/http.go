package workload

// HTTP workload shapes. The paper's argument is about real datacenter
// services, not echo microbenchmarks; the HTTP generator reproduces the
// load shape of a production web tier: a Zipf-popular object set, an
// open-loop arrival process (requests arrive on a schedule, they do not
// wait for earlier responses — so a stalled server grows a queue instead
// of quietly throttling the load), keep-alive connections that churn,
// and a fraction of deliberately slow readers. Everything is seeded and
// deterministic.

import (
	"fmt"
	"math"
	"math/rand"
)

// HTTPObject is one entry of the synthetic cached-object tree httpd
// serves: a path and a deterministic body.
type HTTPObject struct {
	Path string
	Body []byte
}

// HTTPObjectPath returns the canonical path of synthetic object i, the
// same naming PathSet draws from.
func HTTPObjectPath(i int) string { return fmt.Sprintf("/obj/%05d", i) }

// HTTPObjects builds n synthetic objects with sizes drawn from sizes
// and deterministic pseudo-random bodies. The rigs load these into an
// httpd.Tree and point a PathSet over the same index space at it.
func HTTPObjects(n int, sizes SizeDist, seed int64) []HTTPObject {
	r := rand.New(rand.NewSource(seed))
	objs := make([]HTTPObject, n)
	for i := range objs {
		body := make([]byte, sizes.NextSize())
		r.Read(body)
		objs[i] = HTTPObject{Path: HTTPObjectPath(i), Body: body}
	}
	return objs
}

// PathSet draws request paths over a synthetic object set with a
// pluggable popularity distribution (NewZipfKeys gives the hot-object
// skew of production CDN/web traces). Paths are materialized once, so
// drawing allocates nothing.
type PathSet struct {
	paths []string
	dist  KeyDist
}

// NewPathSet materializes the paths of an n-object tree and draws from
// them with dist (which must have Keys() == n).
func NewPathSet(n int, dist KeyDist) *PathSet {
	p := &PathSet{paths: make([]string, n), dist: dist}
	for i := range p.paths {
		p.paths[i] = HTTPObjectPath(i)
	}
	return p
}

// Next returns the next request path.
func (p *PathSet) Next() string { return p.paths[p.dist.NextKey()] }

// Paths exposes the full materialized path list (tree loading, sanity
// checks).
func (p *PathSet) Paths() []string { return p.paths }

// OpenLoop is a Poisson arrival schedule: exponential inter-arrival
// gaps around a target rate, expressed in virtual nanoseconds so the
// simulation's cost model — not wall-clock jitter — defines time. The
// caller compares Next() stamps against its virtual clock and injects
// every request whose arrival time has passed, regardless of how many
// responses are still outstanding (that is what makes the loop open).
type OpenLoop struct {
	meanGapNS float64
	nowNS     float64
	lastNS    int64
	r         *rand.Rand
}

// NewOpenLoop builds an open-loop schedule targeting ratePerSec
// arrivals per virtual second.
func NewOpenLoop(ratePerSec float64, seed int64) *OpenLoop {
	return &OpenLoop{meanGapNS: 1e9 / ratePerSec, r: rand.New(rand.NewSource(seed))}
}

// Next returns the next arrival's virtual-time stamp in nanoseconds,
// strictly increasing.
func (o *OpenLoop) Next() int64 {
	// Inverse-CDF exponential draw; clamp the log away from 0 so the
	// gap is finite.
	u := o.r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	o.nowNS += o.meanGapNS * -math.Log(u)
	ts := int64(o.nowNS)
	if ts <= o.lastNS {
		// Sub-nanosecond gap rounded away: nudge forward so stamps
		// stay strictly increasing (schedules key off ordering).
		ts = o.lastNS + 1
	}
	o.lastNS = ts
	return ts
}

// Churn decides, per completed request, whether the connection should
// be torn down and redialed — the connection-lifetime shape of
// production keep-alive traffic, where most connections are long-lived
// but a steady fraction recycles.
type Churn struct {
	p float64
	r *rand.Rand
}

// NewChurn builds a churn schedule closing a connection after any given
// request with probability p.
func NewChurn(p float64, seed int64) *Churn {
	return &Churn{p: p, r: rand.New(rand.NewSource(seed))}
}

// ShouldClose reports whether the connection retires now.
func (c *Churn) ShouldClose() bool { return c.r.Float64() < c.p }

// StallSchedule marks a fraction of readers slow: a stalled reader keeps
// issuing requests but stops harvesting responses for stallLen requests,
// which is exactly the client behavior that backs up the server's TCP
// send path (the forcing function for the zero-window fixes).
type StallSchedule struct {
	frac     float64
	stallLen int
	r        *rand.Rand
}

// NewStallSchedule builds a schedule stalling a reader with probability
// frac at each decision point, each stall lasting stallLen requests.
func NewStallSchedule(frac float64, stallLen int, seed int64) *StallSchedule {
	return &StallSchedule{frac: frac, stallLen: stallLen, r: rand.New(rand.NewSource(seed))}
}

// NextStall returns how many requests the reader should now refuse to
// harvest for (0 = not stalled).
func (s *StallSchedule) NextStall() int {
	if s.r.Float64() < s.frac {
		return s.stallLen
	}
	return 0
}

// HTTPProduction bundles the production-shaped HTTP workload the E17
// experiment and `demi-http` drive: Zipf-popular paths over a bimodal
// object tree, Poisson open-loop arrivals, connection churn, and a slow
// reader fraction.
type HTTPProduction struct {
	Objects []HTTPObject
	Paths   *PathSet
	Arrives *OpenLoop
	Churn   *Churn
	Stalls  *StallSchedule
}

// NewHTTPProduction builds the standard production shape over n objects
// at ratePerSec virtual arrivals per second.
func NewHTTPProduction(n int, ratePerSec float64, seed int64) *HTTPProduction {
	return &HTTPProduction{
		Objects: HTTPObjects(n, NewBimodalSize(256, 8192, 0.9, seed+1), seed),
		Paths:   NewPathSet(n, NewZipfKeys(n, 1.2, seed+2)),
		Arrives: NewOpenLoop(ratePerSec, seed+3),
		Churn:   NewChurn(0.02, seed+4),
		Stalls:  NewStallSchedule(0.05, 32, seed+5),
	}
}
