package experiments

// E15 — multi-tenant NIC protection (§3, §7): untrusting applications
// share one kernel-bypass device, and the control plane — not mutual
// trust — keeps them apart. Two measurements:
//
//  1. Victim tail latency with and without a hostile co-tenant that
//     floods its TX path and leaks pooled frames against its quota.
//     Isolation working means the victims' virtual p99 barely moves.
//  2. WDRR weight enforcement under TX contention: three backlogged
//     tenants with weights 1:1:1 and 4:2:1; the scheduler must hand
//     out link share in weight proportion.

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	demi "demikernel"
	"demikernel/internal/apps/echo"
	"demikernel/internal/fabric"
	"demikernel/internal/metrics"
	"demikernel/internal/nic"
)

// TenantAttackPoint summarises one victim's service quality in the
// quiet and under-attack halves of a hostile-tenant run.
type TenantAttackPoint struct {
	Victim            string
	QuietP50, QuietP99 demi.Lat
	HotP50, HotP99     demi.Lat
	HostileThrottled   int64 // frames dropped at the hostile tenant's rate cap
	HostileReclaimedOK bool  // ledger returned to zero after the crash
}

// RunTenantAttack measures victim echo latency on a shared NIC while a
// hostile co-tenant floods, leaks, and finally crashes. ops round trips
// are driven per victim in each half.
func RunTenantAttack(seed int64, ops int) ([]TenantAttackPoint, error) {
	c := demi.NewCluster(seed)
	vicA := c.MustSpawn(demi.Catnip, demi.WithHost(1), demi.WithTenant("vic-a", demi.TenantPolicy{
		TxWeight: 2, FrameQuotaBytes: 8 << 20,
	}))
	vicB := c.MustSpawn(demi.Catnip, demi.WithHost(2), demi.WithTenant("vic-b", demi.TenantPolicy{
		TxWeight: 2, FrameQuotaBytes: 8 << 20,
	}))
	mal := c.MustSpawn(demi.Catnip, demi.WithHost(3), demi.WithTenant("mal", demi.TenantPolicy{
		TxWeight: 1, FrameQuotaBytes: 2 << 20, TxRateBps: 4 << 20, TxBurstBytes: 64 << 10,
	}))
	cliA := c.MustSpawn(demi.Catnip, demi.WithHost(4))
	cliB := c.MustSpawn(demi.Catnip, demi.WithHost(5))
	sink := c.MustSpawn(demi.Catnip, demi.WithHost(6))

	pairA, err := newTenantEchoPair(c, vicA, cliA)
	if err != nil {
		return nil, err
	}
	defer pairA.close()
	pairB, err := newTenantEchoPair(c, vicB, cliB)
	if err != nil {
		return nil, err
	}
	defer pairB.close()
	defer mal.Background()()
	defer sink.Background()()

	buf := make([]byte, 64)
	var quietA, quietB, hotA, hotB metrics.Histogram
	run := func(ha, hb *metrics.Histogram) error {
		for i := 0; i < ops; i++ {
			la, err := pairA.client.RTT(buf, 0)
			if err != nil {
				return fmt.Errorf("victim A rtt: %w", err)
			}
			lb, err := pairB.client.RTT(buf, 0)
			if err != nil {
				return fmt.Errorf("victim B rtt: %w", err)
			}
			ha.Record(la)
			hb.Record(lb)
		}
		return nil
	}
	if err := run(&quietA, &quietB); err != nil {
		return nil, err
	}

	// The rampage: flood toward the bystander sink from a background
	// goroutine, leak 400 pooled frames, then crash mid-burst.
	floodStop := make(chan struct{})
	var floodWG sync.WaitGroup
	fqd, err := mal.SocketUDP()
	if err != nil {
		return nil, err
	}
	if err := mal.Bind(fqd, demi.Addr{Port: 7777}); err != nil {
		return nil, err
	}
	if err := mal.Connect(fqd, c.AddrOf(sink, 9)); err != nil {
		return nil, err
	}
	floodWG.Add(1)
	go func() {
		defer floodWG.Done()
		for {
			select {
			case <-floodStop:
				return
			default:
			}
			ok := true
			for j := 0; j < 32; j++ {
				if _, err := mal.BlockingPush(fqd, demi.NewSGA(bytes.Repeat([]byte{0xAB}, 1024))); err != nil {
					ok = false
					break
				}
			}
			if !ok {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for i := 0; i < 400; i++ {
		mal.Catnip.Pool().Get(1500) // leaked against the hostile quota
	}
	if err := run(&hotA, &hotB); err != nil {
		close(floodStop)
		floodWG.Wait()
		return nil, err
	}
	if _, err := mal.Crash(); err != nil {
		close(floodStop)
		floodWG.Wait()
		return nil, err
	}
	close(floodStop)
	floodWG.Wait()

	mf, mb := mal.Tenant.Ledger.Outstanding()
	throttled := mal.Catnip.Group().Stats().ThrottleDrops
	qa, qb := quietA.Summarize(), quietB.Summarize()
	ha, hb := hotA.Summarize(), hotB.Summarize()
	return []TenantAttackPoint{
		{Victim: "vic-a", QuietP50: qa.P50, QuietP99: qa.P99, HotP50: ha.P50, HotP99: ha.P99,
			HostileThrottled: throttled, HostileReclaimedOK: mf == 0 && mb == 0},
		{Victim: "vic-b", QuietP50: qb.P50, QuietP99: qb.P99, HotP50: hb.P50, HotP99: hb.P99,
			HostileThrottled: throttled, HostileReclaimedOK: mf == 0 && mb == 0},
	}, nil
}

// tenantEchoPair is a connected echo pair over two already-spawned
// nodes (the package echoRig spawns its own whole-device nodes; tenant
// nodes need WithTenant options, so they arrive pre-built).
type tenantEchoPair struct {
	client *echo.Client
	stops  []func()
}

func (p *tenantEchoPair) close() {
	for _, f := range p.stops {
		f()
	}
}

func newTenantEchoPair(c *demi.Cluster, srvNode, cliNode *demi.Node) (*tenantEchoPair, error) {
	srv := echo.NewServer(srvNode.LibOS)
	srv.AppCost = c.Model.AppRequestNS
	if err := srv.Listen(7); err != nil {
		return nil, err
	}
	stopS := srvNode.Background()
	stopC := cliNode.Background()
	stopServe := make(chan struct{})
	go srv.Run(stopServe)
	cli := echo.NewClient(cliNode.LibOS)
	if err := cli.Connect(c.AddrOf(srvNode, 7)); err != nil {
		stopC()
		stopS()
		close(stopServe)
		return nil, err
	}
	return &tenantEchoPair{
		client: cli,
		stops:  []func(){func() { close(stopServe) }, stopC, stopS},
	}, nil
}

// RunTenantWDRR measures TX link share under deterministic contention:
// three tenant queue groups on one device, every ring backlogged behind
// an exhausted token bucket on a frozen clock, then one refill and a
// fixed pump budget. The bytes each tenant got out are its share.
func RunTenantWDRR(seed int64, weights [3]int) ([3]int64, error) {
	c := demi.NewCluster(seed)
	dev := nic.New(&c.Model, c.Switch, nic.Config{MAC: fabric.MAC{0x02, 0xE1, 0x50, 0, 0, 1}, RxQueues: 3})

	// A controllable clock: frozen during the fill so no tokens refill,
	// then advanced once to fund exactly one contended pump.
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	var groups [3]*nic.QueueGroup
	for i := range groups {
		g, err := dev.NewQueueGroup(fmt.Sprintf("t%d", i), 1, nic.GroupConfig{
			MAC:   fabric.MAC{0x02, 0xE1, 0x50, 0, 1, byte(i)},
			IP:    [4]byte{10, 0, 15, byte(i + 1)},
			Bounds: nic.SteeringBounds{
				MACs: []fabric.MAC{{0x02, 0xE1, 0x50, 0, 1, byte(i)}},
				IPs:  [][4]byte{{10, 0, 15, byte(i + 1)}},
			},
			TxWeight: weights[i],
			// 64 KB burst funds the fill's head; 6.4 MB/s refills one
			// more 64 KB budget per 10 ms of (frozen) virtual time.
			TxRateBps:    64 << 10 * 100,
			TxBurstBytes: 64 << 10,
			Clock:        clock,
		})
		if err != nil {
			return [3]int64{}, err
		}
		groups[i] = g
	}

	// Backlog every ring: 200 x 1000 B frames per tenant. The first
	// ~64 KB of each drains against the initial burst; the rest waits.
	frame := make([]byte, 1000)
	for i, g := range groups {
		frame[5] = byte(i)
		for f := 0; f < 200; f++ {
			g.TxFrame(fabric.Frame{Data: append([]byte(nil), frame...)})
		}
	}
	var before [3]int64
	for i, g := range groups {
		before[i] = g.Stats().TxBytes
	}

	// Refill every bucket (clamped at burst) and run one pump: a fixed
	// 64 KB budget the three backlogged tenants must share by weight.
	advance(time.Second)
	groups[0].RxBurst(0, 1)

	var share [3]int64
	for i, g := range groups {
		share[i] = g.Stats().TxBytes - before[i]
	}
	return share, nil
}

func runE15(seed int64) (*Result, error) {
	res := &Result{}

	const ops = 300
	points, err := RunTenantAttack(seed, ops)
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable("Victim service quality with a hostile co-tenant (virtual time)",
		"victim", "quiet p50", "quiet p99", "attacked p50", "attacked p99", "p99 ratio")
	for _, p := range points {
		ratio := float64(p.HotP99) / float64(p.QuietP99)
		tbl.AddRow(p.Victim, p.QuietP50, p.QuietP99, p.HotP50, p.HotP99, fmt.Sprintf("%.2fx", ratio))
	}
	res.Tables = append(res.Tables, tbl)

	shareEven, err := RunTenantWDRR(seed, [3]int{1, 1, 1})
	if err != nil {
		return nil, err
	}
	shareSkew, err := RunTenantWDRR(seed, [3]int{4, 2, 1})
	if err != nil {
		return nil, err
	}
	wtbl := metrics.NewTable("WDRR TX share under contention (one 64 KB pump, all rings backlogged)",
		"weights", "tenant 0", "tenant 1", "tenant 2")
	wtbl.AddRow("1:1:1", shareEven[0], shareEven[1], shareEven[2])
	wtbl.AddRow("4:2:1", shareSkew[0], shareSkew[1], shareSkew[2])
	res.Tables = append(res.Tables, wtbl)

	for _, p := range points {
		ratio := float64(p.HotP99) / float64(p.QuietP99)
		res.check(fmt.Sprintf("victim %s p99 within 2x under attack", p.Victim), ratio <= 2.0,
			"quiet p99 %v vs attacked p99 %v (%.2fx, ceiling 2x)", p.QuietP99, p.HotP99, ratio)
	}
	res.check("hostile flood throttled at its own rate cap", points[0].HostileThrottled > 0,
		"%d frames dropped at the hostile tenant's staging ring", points[0].HostileThrottled)
	res.check("hostile quota reclaimed to zero after crash", points[0].HostileReclaimedOK,
		"ledger outstanding frames/bytes both zero after device-side reclaim")

	evenOK := true
	total := shareEven[0] + shareEven[1] + shareEven[2]
	for _, s := range shareEven {
		if f := float64(s) / float64(total); f < 0.23 || f > 0.43 {
			evenOK = false
		}
	}
	res.check("equal weights share the link equally", evenOK,
		"1:1:1 shares = %d / %d / %d bytes", shareEven[0], shareEven[1], shareEven[2])
	skewOK := shareSkew[0] > shareSkew[1] && shareSkew[1] > shareSkew[2] &&
		float64(shareSkew[0]) >= 1.5*float64(shareSkew[1]) &&
		float64(shareSkew[1]) >= 1.5*float64(shareSkew[2])
	res.check("4:2:1 weights yield ordered ~2x-spaced shares", skewOK,
		"4:2:1 shares = %d / %d / %d bytes", shareSkew[0], shareSkew[1], shareSkew[2])
	return res, nil
}
