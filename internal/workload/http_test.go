package workload

import "testing"

func TestHTTPObjectsDeterministic(t *testing.T) {
	a := HTTPObjects(10, FixedSize(64), 7)
	b := HTTPObjects(10, FixedSize(64), 7)
	if len(a) != 10 {
		t.Fatalf("got %d objects", len(a))
	}
	for i := range a {
		if a[i].Path != b[i].Path || string(a[i].Body) != string(b[i].Body) {
			t.Fatalf("object %d differs across same-seed builds", i)
		}
		if a[i].Path != HTTPObjectPath(i) {
			t.Fatalf("object %d path %q, want %q", i, a[i].Path, HTTPObjectPath(i))
		}
	}
}

func TestPathSetZipfSkew(t *testing.T) {
	const n = 1000
	ps := NewPathSet(n, NewZipfKeys(n, 1.2, 11))
	counts := make(map[string]int)
	for i := 0; i < 20_000; i++ {
		p := ps.Next()
		counts[p]++
	}
	// Zipf 1.2: the hottest object dominates; a uniform draw would give
	// each path ~20 hits.
	if counts[HTTPObjectPath(0)] < 2000 {
		t.Fatalf("hottest object drew %d of 20000, want heavy skew", counts[HTTPObjectPath(0)])
	}
}

func TestPathSetDrawAllocFree(t *testing.T) {
	ps := NewPathSet(100, NewUniformKeys(100, 3))
	if allocs := testing.AllocsPerRun(100, func() { _ = ps.Next() }); allocs > 0 {
		t.Errorf("PathSet.Next allocates %.1f/op, want 0", allocs)
	}
}

func TestOpenLoopMonotoneAndCalibrated(t *testing.T) {
	ol := NewOpenLoop(1e6, 5) // 1M/s → mean gap 1000ns
	prev := int64(-1)
	var last int64
	const n = 50_000
	for i := 0; i < n; i++ {
		ts := ol.Next()
		if ts <= prev {
			t.Fatalf("arrival %d not strictly increasing: %d after %d", i, ts, prev)
		}
		prev, last = ts, ts
	}
	mean := float64(last) / n
	if mean < 900 || mean > 1100 {
		t.Fatalf("mean inter-arrival %.1fns, want ~1000ns", mean)
	}
}

func TestChurnAndStallRates(t *testing.T) {
	ch := NewChurn(0.1, 9)
	closes := 0
	for i := 0; i < 10_000; i++ {
		if ch.ShouldClose() {
			closes++
		}
	}
	if closes < 800 || closes > 1200 {
		t.Fatalf("churn fired %d/10000, want ~1000", closes)
	}
	st := NewStallSchedule(0.25, 16, 10)
	stalls := 0
	for i := 0; i < 10_000; i++ {
		if n := st.NextStall(); n != 0 {
			if n != 16 {
				t.Fatalf("stall length %d, want 16", n)
			}
			stalls++
		}
	}
	if stalls < 2200 || stalls > 2800 {
		t.Fatalf("stalls fired %d/10000, want ~2500", stalls)
	}
}
