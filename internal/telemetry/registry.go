// Package telemetry is the unified observability layer of the
// reproduction: the OS introspection services (profiling, tracing,
// resource accounting) that §2 of the paper lists among the first
// casualties of kernel-bypass, re-provided above the device by the libOS.
//
// It has three parts:
//
//   - a process-wide counter/gauge Registry that unifies the previously
//     ad-hoc per-component stats (fabric drops, frame-pool recycling, NIC
//     ring occupancy, netstack retransmits, completer wakeups, event-loop
//     dispatch depth) behind named handles with snapshot/diff support;
//   - per-qtoken operation spans (see span.go) that attribute latency to
//     individual queue operations as they move issue → device submit →
//     completion → consume, feeding per-queue latency histograms;
//   - a bounded ring-buffer event tracer (see trace.go) with
//     chrome://tracing JSON export, disabled by default and near-zero-cost
//     (one atomic load, zero allocations) when off.
//
// The whole layer is Dapper-shaped: always compiled in, cheap enough to
// leave on in production for counters, and opt-in for the higher-volume
// span/trace machinery.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing named value. It is a hot-path
// handle: Add/Inc are single atomic adds with no map lookups.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a named level that can move both ways (ring occupancy,
// outstanding tokens).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a name → metric table. Components either allocate atomic
// Counter/Gauge handles through it (new code) or register sample
// functions that read their existing mutex-guarded stats structs at
// snapshot time (the adapter path that absorbs the pre-existing ad-hoc
// counters without touching their hot paths).
//
// All methods are safe for concurrent use. Snapshot is the only reader
// of sample functions, so components may take their own locks inside
// them.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() int64),
	}
}

// Default is the process-wide registry that commands and apps report
// from. Tests that need isolation build their own with NewRegistry.
var Default = NewRegistry()

// Counter returns the named counter handle, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge handle, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// RegisterFunc registers (or replaces) a sampled metric: fn is invoked at
// snapshot time. This is the adapter that lifts existing Stats() structs
// into the registry without converting their fields to atomics.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Unregister removes every metric whose name starts with prefix, so a
// component instance can withdraw itself (tests, node teardown).
func (r *Registry) Unregister(prefix string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.counters {
		if strings.HasPrefix(name, prefix) {
			delete(r.counters, name)
		}
	}
	for name := range r.gauges {
		if strings.HasPrefix(name, prefix) {
			delete(r.gauges, name)
		}
	}
	for name := range r.funcs {
		if strings.HasPrefix(name, prefix) {
			delete(r.funcs, name)
		}
	}
}

// Sample is one named value inside a Snapshot.
type Sample struct {
	Name  string
	Value int64
}

// Snapshot is a point-in-time reading of every metric in a registry,
// sorted by name so renders and diffs are deterministic.
type Snapshot struct {
	When    time.Time
	Samples []Sample
}

// Snapshot reads every counter, gauge, and sample function. Sample
// functions run outside the registry's write path but inside its read
// lock; they must not re-enter the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	out := Snapshot{When: time.Now()}
	out.Samples = make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.funcs))
	for name, c := range r.counters {
		out.Samples = append(out.Samples, Sample{name, c.Load()})
	}
	for name, g := range r.gauges {
		out.Samples = append(out.Samples, Sample{name, g.Load()})
	}
	for name, fn := range r.funcs {
		out.Samples = append(out.Samples, Sample{name, fn()})
	}
	r.mu.RUnlock()
	sort.Slice(out.Samples, func(i, j int) bool { return out.Samples[i].Name < out.Samples[j].Name })
	return out
}

// Get returns the value of name in the snapshot.
func (s Snapshot) Get(name string) (int64, bool) {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].Name >= name })
	if i < len(s.Samples) && s.Samples[i].Name == name {
		return s.Samples[i].Value, true
	}
	return 0, false
}

// Diff returns s - prev, name-wise: the deltas accumulated between the
// two snapshots. Names present only in s keep their value (prev reads as
// zero); names present only in prev are dropped. The result is sorted,
// so Diff composes with Get and Render.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{When: s.When, Samples: make([]Sample, 0, len(s.Samples))}
	for _, sm := range s.Samples {
		v, _ := prev.Get(sm.Name)
		out.Samples = append(out.Samples, Sample{sm.Name, sm.Value - v})
	}
	return out
}

// NonZero returns only the samples with non-zero values (dashboards use
// it so idle counters do not drown the interesting ones).
func (s Snapshot) NonZero() Snapshot {
	out := Snapshot{When: s.When}
	for _, sm := range s.Samples {
		if sm.Value != 0 {
			out.Samples = append(out.Samples, sm)
		}
	}
	return out
}

// String renders the snapshot as an aligned two-column table.
func (s Snapshot) String() string {
	if len(s.Samples) == 0 {
		return "(no metrics)\n"
	}
	w := 0
	for _, sm := range s.Samples {
		if len(sm.Name) > w {
			w = len(sm.Name)
		}
	}
	var b strings.Builder
	for _, sm := range s.Samples {
		fmt.Fprintf(&b, "%-*s  %d\n", w, sm.Name, sm.Value)
	}
	return b.String()
}
