package httpd

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseRequestBasics(t *testing.T) {
	buf := []byte("GET /obj/00001 HTTP/1.1\r\nHost: demi\r\n\r\n")
	req, n, err := parseRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d, want %d", n, len(buf))
	}
	if string(req.path) != "/obj/00001" || req.head || req.close || req.rngKind != rangeNone {
		t.Fatalf("bad parse: %+v", req)
	}
}

func TestParseRequestPipelined(t *testing.T) {
	one := "GET /a HTTP/1.1\r\n\r\n"
	buf := []byte(one + "HEAD /b HTTP/1.1\r\nConnection: close\r\n\r\n")
	req1, n1, err := parseRequest(buf)
	if err != nil || string(req1.path) != "/a" {
		t.Fatalf("first: %+v err=%v", req1, err)
	}
	req2, n2, err := parseRequest(buf[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if !req2.head || !req2.close || string(req2.path) != "/b" {
		t.Fatalf("second: %+v", req2)
	}
	if n1+n2 != len(buf) {
		t.Fatalf("consumed %d, want %d", n1+n2, len(buf))
	}
}

func TestParseRequestIncomplete(t *testing.T) {
	buf := []byte("GET /a HTTP/1.1\r\nHost: d")
	if _, n, err := parseRequest(buf); n != 0 || err != nil {
		t.Fatalf("incomplete head: n=%d err=%v, want 0, nil", n, err)
	}
}

func TestParseRequestTooLarge(t *testing.T) {
	buf := []byte("GET /a HTTP/1.1\r\nX: " + strings.Repeat("y", maxRequestBytes))
	if _, _, err := parseRequest(buf); err == nil {
		t.Fatal("oversized head accepted")
	}
}

func TestParseRequestMalformed(t *testing.T) {
	for _, bad := range []string{
		"PUT /a HTTP/1.1\r\n\r\n",         // unsupported method
		"GET /a HTTP/1.0\r\n\r\n",         // unsupported version
		"GET a HTTP/1.1\r\n\r\n",          // path without leading slash
		"GET /a\r\n\r\n",                  // missing version
		"GET /a HTTP/1.1\r\nnope\r\n\r\n", // header without colon
	} {
		if _, _, err := parseRequest([]byte(bad)); err == nil {
			t.Fatalf("accepted malformed request %q", bad)
		}
	}
}

func TestParseRequestHeaderFolding(t *testing.T) {
	buf := []byte("GET /a HTTP/1.1\r\nCONNECTION:   Close \r\nRANGE: BYTES=5-9\r\n\r\n")
	req, _, err := parseRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !req.close {
		t.Fatal("case-folded Connection: close missed")
	}
	if req.rngKind != rangeFromTo || req.rngFrom != 5 || req.rngTo != 9 {
		t.Fatalf("case-folded Range missed: %+v", req)
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		in       string
		kind     int
		from, to int64
	}{
		{"bytes=0-99", rangeFromTo, 0, 99},
		{"bytes=100-", rangeFrom, 100, 0},
		{"bytes=-500", rangeSuffix, 0, 500},
		{"bytes=9-5", rangeNone, 0, 0},  // inverted
		{"chunks=0-5", rangeNone, 0, 0}, // wrong unit
		{"bytes=a-b", rangeNone, 0, 0},  // not numbers
	}
	for _, c := range cases {
		kind, from, to, ok := parseRange([]byte(c.in))
		if c.kind == rangeNone {
			if ok {
				t.Errorf("%q: accepted, want rejected", c.in)
			}
			continue
		}
		if !ok || kind != c.kind || from != c.from || to != c.to {
			t.Errorf("%q: (%d,%d,%d,%v), want (%d,%d,%d)", c.in, kind, from, to, ok, c.kind, c.from, c.to)
		}
	}
}

func TestResolveRange(t *testing.T) {
	mk := func(kind int, from, to int64) request {
		return request{rngKind: kind, rngFrom: from, rngTo: to}
	}
	if from, to, ok := resolveRange(mk(rangeFromTo, 10, 1000), 100); !ok || from != 10 || to != 99 {
		t.Fatalf("overlong to not clamped: %d-%d ok=%v", from, to, ok)
	}
	if _, _, ok := resolveRange(mk(rangeFromTo, 100, 200), 100); ok {
		t.Fatal("from past end accepted")
	}
	if from, to, ok := resolveRange(mk(rangeSuffix, 0, 30), 100); !ok || from != 70 || to != 99 {
		t.Fatalf("suffix: %d-%d ok=%v", from, to, ok)
	}
	if from, to, ok := resolveRange(mk(rangeSuffix, 0, 500), 100); !ok || from != 0 || to != 99 {
		t.Fatalf("overlong suffix: %d-%d ok=%v", from, to, ok)
	}
	if _, _, ok := resolveRange(mk(rangeSuffix, 0, 0), 100); ok {
		t.Fatal("zero suffix accepted")
	}
}

func TestRouteOf(t *testing.T) {
	for in, want := range map[string]string{
		"/obj/00042": "obj",
		"/index":     "index",
		"/":          "/",
	} {
		if got := string(routeOf([]byte(in))); got != want {
			t.Errorf("routeOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseResponseHead(t *testing.T) {
	head := []byte("HTTP/1.1 206 Partial Content\r\nContent-Range: bytes 0-4/100\r\nContent-Length: 5\r\nConnection: close\r\n\r\n")
	status, n, connClose, err := parseResponseHead(head)
	if err != nil {
		t.Fatal(err)
	}
	if status != 206 || n != 5 || !connClose {
		t.Fatalf("status=%d len=%d close=%v", status, n, connClose)
	}
}

func TestParseAllocFree(t *testing.T) {
	buf := []byte("GET /obj/00001 HTTP/1.1\r\nConnection: keep-alive\r\nRange: bytes=0-99\r\n\r\n")
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := parseRequest(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("parseRequest allocates %.1f/op, want 0", allocs)
	}
}

func TestTreeAccounting(t *testing.T) {
	tr := NewTree()
	tr.Add("/a", bytes.Repeat([]byte("x"), 10))
	tr.Add("/b", bytes.Repeat([]byte("y"), 5))
	tr.Add("/a", bytes.Repeat([]byte("z"), 3)) // replace
	if tr.Len() != 2 || tr.Bytes() != 8 {
		t.Fatalf("len=%d bytes=%d, want 2, 8", tr.Len(), tr.Bytes())
	}
	if b, ok := tr.Lookup([]byte("/a")); !ok || len(b) != 3 {
		t.Fatalf("lookup /a: %d bytes ok=%v", len(b), ok)
	}
}
