package sga

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	s := New([]byte("hello"), []byte(" "), []byte("world"))
	if s.Len() != 11 {
		t.Fatalf("Len = %d, want 11", s.Len())
	}
	if s.NumSegments() != 3 {
		t.Fatalf("NumSegments = %d, want 3", s.NumSegments())
	}
	if string(s.Bytes()) != "hello world" {
		t.Fatalf("Bytes = %q", s.Bytes())
	}
}

func TestZeroValue(t *testing.T) {
	var s SGA
	if s.Len() != 0 || s.NumSegments() != 0 {
		t.Fatal("zero SGA should be empty")
	}
	s.Free() // must not panic
	if err := s.Validate(); err != nil {
		t.Fatalf("zero SGA invalid: %v", err)
	}
	if len(s.Bytes()) != 0 {
		t.Fatal("zero SGA should flatten to empty")
	}
}

func TestFreeIdempotent(t *testing.T) {
	n := 0
	s := New([]byte("x")).WithFree(func() { n++ })
	s.Free()
	s.Free()
	s.Free()
	if n != 1 {
		t.Fatalf("free hook ran %d times, want exactly 1", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := New([]byte("abc"))
	c := orig.Clone()
	orig.Segments[0].Buf[0] = 'X'
	if c.Bytes()[0] != 'a' {
		t.Fatal("Clone shares memory with original")
	}
	if !c.EqualBytes(New([]byte("abc"))) {
		t.Fatal("Clone payload mismatch")
	}
}

func TestEqual(t *testing.T) {
	a := New([]byte("ab"), []byte("cd"))
	b := New([]byte("ab"), []byte("cd"))
	c := New([]byte("abcd"))
	if !a.Equal(b) {
		t.Fatal("identical SGAs not Equal")
	}
	if a.Equal(c) {
		t.Fatal("differently segmented SGAs should not be Equal")
	}
	if !a.EqualBytes(c) {
		t.Fatal("same payload should be EqualBytes regardless of segmentation")
	}
}

func TestValidateLimits(t *testing.T) {
	segs := make([][]byte, MaxSegments+1)
	for i := range segs {
		segs[i] = []byte{0}
	}
	if err := New(segs...).Validate(); !errors.Is(err, ErrTooManySegments) {
		t.Fatalf("want ErrTooManySegments, got %v", err)
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	s := New([]byte("GET"), []byte("key-123"), nil, []byte("tail"))
	b := s.Marshal()
	if len(b) != s.MarshalledSize() {
		t.Fatalf("MarshalledSize = %d, actual %d", s.MarshalledSize(), len(b))
	}
	got, n, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d, want %d", n, len(b))
	}
	if !got.Equal(s) {
		t.Fatalf("roundtrip mismatch: %v vs %v", got, s)
	}
}

func TestUnmarshalShort(t *testing.T) {
	s := New([]byte("hello world, this is a frame"))
	b := s.Marshal()
	for cut := 0; cut < len(b); cut++ {
		_, _, err := Unmarshal(b[:cut])
		if err != ErrShortBuffer {
			t.Fatalf("cut=%d: want ErrShortBuffer, got %v", cut, err)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	s := New([]byte("abcd"))
	b := s.Marshal()
	// Claim a segment longer than the declared payload.
	b[11] = 5
	if _, _, err := Unmarshal(b); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("want corruption error, got %v", err)
	}
	// Absurd payload length.
	b2 := s.Marshal()
	b2[0] = 0xFF
	if _, _, err := Unmarshal(b2); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("want ErrCorruptFrame, got %v", err)
	}
}

func TestUnmarshalTrailingBytes(t *testing.T) {
	s := New([]byte("one"))
	b := append(s.Marshal(), []byte("extra")...)
	got, n, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatal("payload mismatch with trailing bytes present")
	}
	if string(b[n:]) != "extra" {
		t.Fatalf("consumed wrong prefix: remainder %q", b[n:])
	}
}

// randomSGA builds a pseudo-random SGA from quick-check source data.
func randomSGA(r *rand.Rand) SGA {
	nseg := r.Intn(8)
	segs := make([][]byte, nseg)
	for i := range segs {
		seg := make([]byte, r.Intn(512))
		r.Read(seg)
		segs[i] = seg
	}
	return New(segs...)
}

func TestPropMarshalRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSGA(r)
		got, n, err := Unmarshal(s.Marshal())
		return err == nil && n == s.MarshalledSize() && got.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSGA(r)
		return s.Clone().Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFramerReassembly(t *testing.T) {
	// Three frames delivered in pathological fragmentation.
	frames := []SGA{
		New([]byte("first")),
		New([]byte("second"), []byte("frame")),
		New(nil, []byte("third")),
	}
	var stream []byte
	for _, f := range frames {
		stream = f.AppendMarshal(stream)
	}
	var fr Framer
	var got []SGA
	for i := 0; i < len(stream); i++ { // byte-at-a-time delivery
		fr.Feed(stream[i : i+1])
		for {
			s, ok, err := fr.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, s)
		}
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !got[i].Equal(frames[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if fr.Pending() != 0 {
		t.Fatalf("%d stray bytes pending", fr.Pending())
	}
	if fr.Decoded() != int64(len(frames)) {
		t.Fatalf("Decoded = %d, want %d", fr.Decoded(), len(frames))
	}
}

func TestFramerPoisonedByCorruption(t *testing.T) {
	s := New([]byte("abcd"))
	b := s.Marshal()
	b[0] = 0xFF // absurd length
	var fr Framer
	fr.Feed(b)
	if _, _, err := fr.Next(); err == nil {
		t.Fatal("expected corruption error")
	}
	if _, _, err := fr.Next(); err == nil {
		t.Fatal("framer should stay poisoned")
	}
}

func TestFramerHasCompleteFrame(t *testing.T) {
	s := New([]byte("payload"))
	b := s.Marshal()
	var fr Framer
	fr.Feed(b[:len(b)-1])
	if fr.HasCompleteFrame() {
		t.Fatal("incomplete frame reported complete")
	}
	fr.Feed(b[len(b)-1:])
	if !fr.HasCompleteFrame() {
		t.Fatal("complete frame not detected")
	}
	// Detection must not consume.
	if !fr.HasCompleteFrame() {
		t.Fatal("detection consumed the frame")
	}
	got, ok, err := fr.Next()
	if err != nil || !ok || !got.Equal(s) {
		t.Fatalf("Next after detection: ok=%v err=%v", ok, err)
	}
}

func TestPropFramerArbitraryFragmentation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		frames := make([]SGA, n)
		var stream []byte
		for i := range frames {
			frames[i] = randomSGA(r)
			stream = frames[i].AppendMarshal(stream)
		}
		var fr Framer
		var got []SGA
		for len(stream) > 0 {
			k := 1 + r.Intn(len(stream))
			fr.Feed(stream[:k])
			stream = stream[k:]
			for {
				s, ok, err := fr.Next()
				if err != nil {
					return false
				}
				if !ok {
					break
				}
				got = append(got, s)
			}
		}
		if len(got) != n {
			return false
		}
		for i := range frames {
			if !got[i].Equal(frames[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesMatchesSegments(t *testing.T) {
	s := New([]byte{1, 2}, []byte{}, []byte{3})
	if !bytes.Equal(s.Bytes(), []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", s.Bytes())
	}
}
