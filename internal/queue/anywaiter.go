package queue

import "sync"

// AnyWaiter is a one-shot subscription to "any of these tokens": the
// waiter subscribes each token once, then each completion pings the
// waiter in O(1) instead of the waiter rescanning its whole token slice
// every poll iteration. WaitAnyDeadline's old loop was O(n) tokens ×
// P poll iterations; with an AnyWaiter it is O(n) once (subscribe) plus
// O(1) per completion — the difference the 1024-token
// BenchmarkWaitAnyFanIn fences.
//
// A completed token is *not* consumed by the ping; the waiter collects
// it with TryWait, exactly like the ready-list path. Waiters are
// single-owner (one goroutine calls Take), but pings arrive from
// completing goroutines, hence the mutex.
type AnyWaiter struct {
	mu    sync.Mutex
	ready []QToken
}

// NewAnyWaiter returns an empty waiter.
func (c *Completer) NewAnyWaiter() *AnyWaiter { return &AnyWaiter{} }

// push records one completed token (called by completeState).
func (w *AnyWaiter) push(qt QToken) {
	w.mu.Lock()
	w.ready = append(w.ready, qt)
	w.mu.Unlock()
}

// Take removes and returns one pinged token, or ok=false when none is
// pending. A returned token may have been consumed by a racing direct
// waiter since the ping; callers must tolerate ErrUnknownToken from the
// follow-up TryWait. Stale pings from a previous owner of a recycled
// waiter may also surface — callers only act on tokens they subscribed,
// so membership-check before consuming.
func (w *AnyWaiter) Take() (QToken, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.ready); n > 0 {
		qt := w.ready[0]
		copy(w.ready, w.ready[1:])
		w.ready = w.ready[:n-1]
		return qt, true
	}
	return 0, false
}

// SubscribeAny attaches w to qt. It returns done=true when the token
// has already completed (the caller should TryWait it immediately — no
// ping will fire), and ErrUnknownToken when the token is not pending.
// A token supports one AnyWaiter at a time; re-subscribing replaces the
// previous waiter.
func (c *Completer) SubscribeAny(w *AnyWaiter, qt QToken) (done bool, err error) {
	sh := c.shard(qt)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.pending[qt]
	if !ok {
		return false, ErrUnknownToken
	}
	if st.done {
		return true, nil
	}
	st.notify = w
	return false, nil
}

// UnsubscribeAny detaches w from qt if (and only if) w is still the
// token's registered waiter. Safe on consumed or unknown tokens.
func (c *Completer) UnsubscribeAny(w *AnyWaiter, qt QToken) {
	sh := c.shard(qt)
	sh.mu.Lock()
	if st, ok := sh.pending[qt]; ok && st.notify == w {
		st.notify = nil
	}
	sh.mu.Unlock()
}
