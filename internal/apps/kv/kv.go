// Package kv implements the paper's running application example: a
// Redis-like in-memory key-value store, written against the Demikernel
// queue API so that one binary runs unmodified over every libOS (§4.1).
//
// The server follows the paper's zero-copy discipline (§4.5):
//
//   - SET stores the value buffer popped from the queue directly — "Redis
//     allocates a new value buffer for each put request and changes the
//     pointer in its data structures to the new buffer". No payload copy
//     happens on the data path.
//
//   - GET pushes the stored buffer as a scatter-gather segment; the
//     transport DMAs from it in place.
//
// Requests and responses are multi-segment SGAs, leaning on the
// guarantee that segmentation survives the queue:
//
//	request  := [op] [key] [value?]     op in {GET, SET, DEL}
//	response := [status] [value?]       status in {OK, NF, ER}
package kv

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"demikernel/internal/apps/failover"
	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/uring"
)

// Ops and statuses.
const (
	OpGet = "GET"
	OpSet = "SET"
	OpDel = "DEL"

	StatusOK       = "OK"
	StatusNotFound = "NF"
	StatusError    = "ER"
)

// ErrBadRequest is returned for malformed requests.
var ErrBadRequest = errors.New("kv: malformed request")

// Stats counts server activity.
type Stats struct {
	Gets, Sets, Dels int64
	NotFound         int64
	BadRequests      int64
	Connections      int64
	BytesStored      int64
}

type storedVal struct {
	val []byte
	s   sga.SGA // retained popped SGA backing val; freed on overwrite

	// Ring-path bookkeeping (see ring.go): a GET response pushed through
	// the ring references val zero-copy while the push is in flight, so
	// an overwrite/delete must defer the free until the last reference
	// drains. Guarded by Server.mu.
	refs int32
	dead bool
}

// Server is a KV server over one Demikernel libOS.
type Server struct {
	lib   *core.LibOS
	model *simclock.CostModel

	mu     sync.Mutex
	store  map[string]*storedVal
	stats  Stats
	lqd    core.QD
	conns  map[core.QD]queue.QToken // outstanding pop per connection
	closed bool

	// Ring-path state (nil until EnableRing; see ring.go).
	ring     *uring.Pair
	sqes     []uring.SQE
	cqes     []uring.CQE
	inflight map[core.QD][]*storedVal // per-push GET reference, FIFO
}

// NewServer creates a server on lib; per-request application compute is
// charged from model (the paper's 2µs Redis figure).
func NewServer(lib *core.LibOS, model *simclock.CostModel) *Server {
	return &Server{
		lib:   lib,
		model: model,
		store: make(map[string]*storedVal),
		conns: make(map[core.QD]queue.QToken),
	}
}

// Listen binds the server to port.
func (s *Server) Listen(port uint16) error {
	qd, err := s.lib.Socket()
	if err != nil {
		return err
	}
	if err := s.lib.Bind(qd, core.Addr{Port: port}); err != nil {
		return err
	}
	if err := s.lib.Listen(qd); err != nil {
		return err
	}
	s.mu.Lock()
	s.lqd = qd
	s.mu.Unlock()
	return nil
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Step runs one non-blocking server iteration: accept new connections,
// collect completed pops, serve requests, re-arm pops. It returns the
// number of requests served. Callers pump it from their event loop; Run
// wraps it in a goroutine. After EnableRing it travels the syscall-free
// ring path instead of the per-op token path.
func (s *Server) Step() int {
	if s.ring != nil {
		return s.stepRing()
	}
	s.acceptNew()
	return s.serveReady()
}

func (s *Server) acceptNew() {
	for {
		conn, ok, err := s.lib.TryAccept(s.lqd)
		if err != nil || !ok {
			return
		}
		qt, err := s.lib.Pop(conn)
		if err != nil {
			continue
		}
		s.mu.Lock()
		s.stats.Connections++
		s.conns[conn] = qt
		s.mu.Unlock()
	}
}

func (s *Server) serveReady() int {
	s.mu.Lock()
	type armed struct {
		conn core.QD
		qt   queue.QToken
	}
	pending := make([]armed, 0, len(s.conns))
	for conn, qt := range s.conns {
		pending = append(pending, armed{conn, qt})
	}
	s.mu.Unlock()

	served := 0
	for _, p := range pending {
		comp, ok, err := s.lib.TryWait(p.qt)
		if err != nil || !ok {
			continue
		}
		if comp.Err != nil {
			// Connection closed or failed: drop it.
			s.mu.Lock()
			delete(s.conns, p.conn)
			s.mu.Unlock()
			s.lib.Close(p.conn)
			continue
		}
		s.handle(p.conn, comp)
		served++
		// Re-arm the pop for the next request on this connection.
		qt, err := s.lib.Pop(p.conn)
		if err != nil {
			s.mu.Lock()
			delete(s.conns, p.conn)
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		s.conns[p.conn] = qt
		s.mu.Unlock()
	}
	return served
}

// Run pumps Step until stop closes.
func (s *Server) Run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if s.Step() == 0 {
			s.lib.Poll()
		}
		runtime.Gosched()
	}
}

// handle serves one request and pushes the response, charging the
// application compute cost on top of the request's accumulated path cost.
func (s *Server) handle(conn core.QD, comp queue.Completion) {
	resp, retain := s.Apply(comp.SGA)
	if !retain {
		comp.SGA.Free()
	}
	cost := comp.Cost + s.model.AppRequestNS
	if qt, err := s.lib.PushCost(conn, resp, cost); err == nil {
		// The response's buffers may be store-owned; the push holds
		// them only until the transport accepts the bytes, which the
		// wait below observes.
		s.lib.Wait(qt)
	}
}

// Apply executes one decoded request against the store and returns the
// response. retain reports whether the server kept the request SGA's
// buffers (a SET stores the value segment in place — the zero-copy
// pointer swap).
func (s *Server) Apply(req sga.SGA) (resp sga.SGA, retain bool) {
	resp, retain, _ = s.apply(req, false)
	return resp, retain
}

// apply is Apply plus the ring-path zero-copy discipline. With ring set,
// a GET response takes a reference on the stored value (released by the
// harvest loop once the push completes), and an overwrite/delete whose
// buffer is still referenced by an in-flight response tombstones it
// instead of freeing it out from under the transport.
func (s *Server) apply(req sga.SGA, ring bool) (resp sga.SGA, retain bool, ref *storedVal) {
	segs := req.Segments
	if len(segs) < 2 {
		s.count(func(st *Stats) { st.BadRequests++ })
		return sga.New([]byte(StatusError)), false, nil
	}
	op := string(segs[0].Buf)
	key := string(segs[1].Buf)
	switch op {
	case OpGet:
		s.mu.Lock()
		sv, ok := s.store[key]
		s.stats.Gets++
		if !ok {
			s.stats.NotFound++
		}
		if ok && ring {
			sv.refs++
			ref = sv
		}
		s.mu.Unlock()
		if !ok {
			return sga.New([]byte(StatusNotFound)), false, nil
		}
		// Zero-copy: the stored buffer itself is the response segment.
		return sga.New([]byte(StatusOK), sv.val), false, ref
	case OpSet:
		if len(segs) < 3 {
			s.count(func(st *Stats) { st.BadRequests++ })
			return sga.New([]byte(StatusError)), false, nil
		}
		val := segs[2].Buf
		s.mu.Lock()
		old, had := s.store[key]
		s.store[key] = &storedVal{val: val, s: req}
		s.stats.Sets++
		s.stats.BytesStored += int64(len(val))
		freeOld := false
		if had {
			s.stats.BytesStored -= int64(len(old.val))
			if old.refs > 0 {
				old.dead = true // in-flight GET still reads it; free later
			} else {
				freeOld = true
			}
		}
		s.mu.Unlock()
		if freeOld {
			old.s.Free() // the swapped-out buffer goes back to the pool
		}
		return sga.New([]byte(StatusOK)), true, nil
	case OpDel:
		s.mu.Lock()
		old, had := s.store[key]
		delete(s.store, key)
		s.stats.Dels++
		freeOld := false
		if had {
			s.stats.BytesStored -= int64(len(old.val))
			if old.refs > 0 {
				old.dead = true
			} else {
				freeOld = true
			}
		}
		s.mu.Unlock()
		if freeOld {
			old.s.Free()
		}
		if had {
			return sga.New([]byte(StatusOK)), false, nil
		}
		return sga.New([]byte(StatusNotFound)), false, nil
	default:
		s.count(func(st *Stats) { st.BadRequests++ })
		return sga.New([]byte(StatusError)), false, nil
	}
}

// releaseRef drops one in-flight-response reference on a stored value,
// freeing its buffer if it was tombstoned while referenced.
func (s *Server) releaseRef(sv *storedVal) {
	if sv == nil {
		return
	}
	s.mu.Lock()
	sv.refs--
	freeIt := sv.dead && sv.refs == 0
	s.mu.Unlock()
	if freeIt {
		sv.s.Free()
	}
}

func (s *Server) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Len returns the number of stored keys.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.store)
}

// Client is a KV client over one Demikernel libOS. With EnableFailover
// it survives server death: a retriable typed error (ErrPeerDead,
// ErrLocalReset) triggers jittered-exponential backoff, a redial of the
// saved address, and a replay of the in-flight idempotent operation —
// the availability loop the kernel's connection repair used to hide.
type Client struct {
	lib  *core.LibOS
	qd   core.QD
	addr core.Addr
	pol  *failover.Policy

	reconnects atomic.Int64
	replays    atomic.Int64

	// Ring-path state (nil until EnableRing; see ring.go).
	ring    *uring.Pair
	rsqes   []uring.SQE
	rcqes   []uring.CQE
	ringGen uint64
}

// NewClient creates a client on lib.
func NewClient(lib *core.LibOS) *Client {
	return &Client{lib: lib}
}

// EnableFailover arms redial-and-replay with pol. Call before or after
// Connect; GET/SET/DEL are idempotent, so replay is safe.
func (c *Client) EnableFailover(pol failover.Policy) { c.pol = &pol }

// FailoverStats reports how many redials succeeded and how many
// operations were replayed onto a fresh connection.
func (c *Client) FailoverStats() (reconnects, replays int64) {
	return c.reconnects.Load(), c.replays.Load()
}

// Connect dials the server and remembers the address for redials.
func (c *Client) Connect(addr core.Addr) error {
	qd, err := c.lib.Socket()
	if err != nil {
		return err
	}
	if err := c.lib.Connect(qd, addr); err != nil {
		return err
	}
	c.qd = qd
	c.addr = addr
	return nil
}

// roundTrip pushes a request and waits for its response, redialing and
// replaying through the failover policy when the peer dies mid-flight.
func (c *Client) roundTrip(req sga.SGA, appCost simclock.Lat) (sga.SGA, simclock.Lat, error) {
	resp, cost, err := c.attempt(req, appCost)
	if err == nil || c.pol == nil || !failover.Retriable(err) {
		return resp, cost, err
	}
	bo := failover.NewBackoff(*c.pol)
	for {
		d, ok := bo.Next()
		if !ok {
			return sga.SGA{}, 0, err // attempts exhausted: last typed error
		}
		time.Sleep(d)
		if rerr := c.redial(); rerr != nil {
			if failover.Retriable(rerr) {
				err = rerr
				continue // server still down; keep backing off
			}
			return sga.SGA{}, 0, rerr
		}
		c.reconnects.Add(1)
		c.replays.Add(1)
		resp, cost, err = c.attempt(req, appCost)
		if err == nil || !failover.Retriable(err) {
			return resp, cost, err
		}
	}
}

// attempt performs one push/pop round trip on the current connection,
// via the ring pair when EnableRing has armed one (the failover loop in
// roundTrip wraps both paths identically).
func (c *Client) attempt(req sga.SGA, appCost simclock.Lat) (sga.SGA, simclock.Lat, error) {
	if c.ring != nil {
		return c.attemptRing(req, appCost)
	}
	qt, err := c.lib.PushCost(c.qd, req, appCost)
	if err != nil {
		return sga.SGA{}, 0, err
	}
	pushed, err := c.lib.Wait(qt)
	if err != nil {
		return sga.SGA{}, 0, err
	}
	if pushed.Err != nil {
		// The push itself failed (dead peer, backpressure): surface the
		// typed transport error instead of waiting for a response that
		// can never come.
		return sga.SGA{}, 0, pushed.Err
	}
	comp, err := c.lib.BlockingPop(c.qd)
	if err != nil {
		return sga.SGA{}, 0, err
	}
	if comp.Err != nil {
		return sga.SGA{}, 0, comp.Err
	}
	return comp.SGA, comp.Cost, nil
}

// redial abandons the dead connection and dials the saved address anew.
// The swap is dial-first: the old QD is closed only once a replacement
// exists, so a failed redial (server still down) leaves the client
// holding a QD whose errors stay typed and retriable — never a stale
// closed descriptor that would surface non-retriable ErrBadQD.
func (c *Client) redial() error {
	qd, err := c.lib.Socket()
	if err != nil {
		return err
	}
	if err := c.lib.Connect(qd, c.addr); err != nil {
		c.lib.Close(qd) //nolint:errcheck
		return err
	}
	c.lib.Close(c.qd) //nolint:errcheck // the old QD is already dead
	c.qd = qd
	return nil
}

// Get fetches key; found is false on StatusNotFound.
func (c *Client) Get(key string) (val []byte, cost simclock.Lat, found bool, err error) {
	resp, cost, err := c.roundTrip(sga.New([]byte(OpGet), []byte(key)), 0)
	if err != nil {
		return nil, 0, false, err
	}
	status := string(resp.Segments[0].Buf)
	switch status {
	case StatusOK:
		if resp.NumSegments() < 2 {
			return nil, cost, false, ErrBadRequest
		}
		return resp.Segments[1].Buf, cost, true, nil
	case StatusNotFound:
		return nil, cost, false, nil
	default:
		return nil, cost, false, fmt.Errorf("kv: server error %q", status)
	}
}

// Set stores key=val. The value segment travels and is stored zero-copy.
func (c *Client) Set(key string, val []byte) (simclock.Lat, error) {
	resp, cost, err := c.roundTrip(sga.New([]byte(OpSet), []byte(key), val), 0)
	if err != nil {
		return 0, err
	}
	if status := string(resp.Segments[0].Buf); status != StatusOK {
		return cost, fmt.Errorf("kv: set failed: %q", status)
	}
	return cost, nil
}

// Del removes key; found reports whether it existed.
func (c *Client) Del(key string) (found bool, err error) {
	resp, _, err := c.roundTrip(sga.New([]byte(OpDel), []byte(key)), 0)
	if err != nil {
		return false, err
	}
	return string(resp.Segments[0].Buf) == StatusOK, nil
}

// Close shuts the client connection.
func (c *Client) Close() error { return c.lib.Close(c.qd) }
