// Sharded KV: the share-nothing, multi-core shape of the server. One
// worker per libOS shard owns a disjoint slice of the keyspace and every
// connection RSS steered to its NIC queue. The GET/PUT hot path takes no
// lock: the store map, the connection table, and the scratch state are
// all private to the single worker goroutine that touches them. The only
// cross-worker traffic is (a) padded atomic stats the control plane may
// snapshot, and (b) requests that arrive at a shard which does not own
// the key, which ride the bounded lock-free SPSC mesh to the owner and
// come back as replies — rare by construction when clients align their
// source ports with the keyspace partition, but correct always.
package kv

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"demikernel/internal/apps/failover"
	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/shard"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// KeyShard maps a key to its owning shard: FNV-1a over the key bytes,
// mod n. Deterministic and cheap; clients use it to pick the connection
// (and therefore, via RSS source-port alignment, the core) a request
// should travel to, and servers use it to detect misdirected requests.
func KeyShard(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// ShardStats snapshots one worker's counters.
type ShardStats struct {
	Gets, Sets, Dels int64
	NotFound         int64
	BadRequests      int64
	Connections      int64
	ForwardedOut     int64 // requests this shard relayed to the owner
	ForwardedIn      int64 // requests this shard executed for a sibling
	ForwardDrops     int64 // forwards abandoned because the mesh stayed full
	MigratedOut      int64 // records shipped out during reshards
	MigratedIn       int64 // records received during reshards
	Keys             int64
	BusyVirtNS       int64 // accumulated virtual busy time (see BusyVirt)
}

// shardCounters is the cross-thread-visible face of a worker, padded so
// the control plane snapshotting shard i never bounces shard i+1's hot
// line.
type shardCounters struct {
	gets, sets, dels atomic.Int64
	notFound         atomic.Int64
	badRequests      atomic.Int64
	connections      atomic.Int64
	forwardedOut     atomic.Int64
	forwardedIn      atomic.Int64
	forwardDrops     atomic.Int64
	migratedOut      atomic.Int64
	migratedIn       atomic.Int64
	keys             atomic.Int64
	busyVirt         atomic.Int64
	_                [64 - 8]byte //nolint:unused // pad to a cache line
}

// fwdReq crosses the mesh from the shard a request landed on toward the
// shard owning its key — possibly via an intermediate hop during a
// reshard. conn is meaningful only to the origin shard; origin names it
// so a multi-hop chain's executor can reply directly. final marks the
// hop authoritative: the receiver executes unconditionally instead of
// forwarding on a miss.
type fwdReq struct {
	conn   core.QD
	origin int
	final  bool
	req    sga.SGA
	cost   simclock.Lat
}

// fwdResp carries the owner's response back to the origin shard.
type fwdResp struct {
	conn core.QD
	resp sga.SGA
	cost simclock.Lat
}

// shardWorker is one share-nothing server shard. Every field below the
// marker is touched only by the worker's own goroutine.
type shardWorker struct {
	idx   int
	n     int // provisioned worker count (mesh size), not the active partition width
	lib   *core.LibOS
	model *simclock.CostModel
	group *shard.Group
	srv   *ShardedServer
	ctr   *shardCounters

	// --- worker-private state: no locks, by construction ---
	store      map[string]storedVal
	lqd        core.QD
	conns      map[core.QD]queue.QToken
	inbox      []shard.Msg
	fwdBacklog []shard.Msg // forwards the mesh rejected; retried next step

	// Reshard sweep state (see reshard.go).
	gen     uint64
	migKeys []string
	migDone bool
}

// ShardedServer runs one KV worker per libOS shard. The keyspace is
// partitioned over the ACTIVE shard count published in topo; workers
// beyond it are provisioned headroom that an elastic reshard can grow
// into (they drain the mesh but own no keys and hold no flows).
type ShardedServer struct {
	workers    []*shardWorker
	group      *shard.Group
	topo       atomic.Pointer[Topology]
	migPending atomic.Int32
}

// maxFwdBacklog bounds how many rejected forwards a worker parks before
// it starts answering StatusError — backpressure must eventually reach
// the client instead of growing an unbounded queue.
const maxFwdBacklog = 256

// NewShardedServer builds an n-shard server, one worker per libOS in
// libs (libs[i] must wrap shard i's transport). group is the cross-shard
// mesh; it must have exactly len(libs) workers.
func NewShardedServer(libs []*core.LibOS, model *simclock.CostModel, group *shard.Group) *ShardedServer {
	return NewShardedServerElastic(libs, model, group, len(libs))
}

// NewShardedServerElastic builds a server with len(libs) provisioned
// workers but only the first `active` participating in the keyspace
// partition — the application half of an elastic shard set. BeginReshard
// moves the active width anywhere in [1, len(libs)] live.
func NewShardedServerElastic(libs []*core.LibOS, model *simclock.CostModel, group *shard.Group, active int) *ShardedServer {
	if group.Size() != len(libs) {
		panic("kv: mesh size does not match shard count")
	}
	if active < 1 || active > len(libs) {
		panic("kv: active shard count outside provisioned range")
	}
	s := &ShardedServer{group: group}
	s.topo.Store(&Topology{Gen: 0, Old: active, New: active})
	for i, lib := range libs {
		s.workers = append(s.workers, &shardWorker{
			idx:   i,
			n:     len(libs),
			lib:   lib,
			model: model,
			group: group,
			srv:   s,
			ctr:   &shardCounters{},
			store: make(map[string]storedVal),
			conns: make(map[core.QD]queue.QToken),
		})
	}
	return s
}

// Listen binds every shard's listener to port. Each shard has its own
// netstack, so the same port coexists; RSS decides which stack a SYN
// reaches, which is exactly the accept-distribution policy the paper's
// sharded servers use.
func (s *ShardedServer) Listen(port uint16) error {
	for _, w := range s.workers {
		qd, err := w.lib.Socket()
		if err != nil {
			return err
		}
		if err := w.lib.Bind(qd, core.Addr{Port: port}); err != nil {
			return err
		}
		if err := w.lib.Listen(qd); err != nil {
			return err
		}
		w.lqd = qd
	}
	return nil
}

// Step runs one non-blocking iteration of shard i's worker and returns
// the number of requests it progressed. Single-goroutine benchmark
// harnesses drive all shards round-robin through this; Run wraps it in
// one goroutine per shard.
func (s *ShardedServer) Step(i int) int { return s.workers[i].step() }

// Run starts one goroutine per shard and pumps until stop closes.
func (s *ShardedServer) Run(stop <-chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	for _, w := range s.workers {
		wg.Add(1)
		go func(w *shardWorker) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if w.step() == 0 {
					w.lib.Poll()
				}
				runtime.Gosched()
			}
		}(w)
	}
	return &wg
}

// StatsOf snapshots shard i's counters.
func (s *ShardedServer) StatsOf(i int) ShardStats {
	c := s.workers[i].ctr
	return ShardStats{
		Gets:         c.gets.Load(),
		Sets:         c.sets.Load(),
		Dels:         c.dels.Load(),
		NotFound:     c.notFound.Load(),
		BadRequests:  c.badRequests.Load(),
		Connections:  c.connections.Load(),
		ForwardedOut: c.forwardedOut.Load(),
		ForwardedIn:  c.forwardedIn.Load(),
		ForwardDrops: c.forwardDrops.Load(),
		MigratedOut:  c.migratedOut.Load(),
		MigratedIn:   c.migratedIn.Load(),
		Keys:         c.keys.Load(),
		BusyVirtNS:   c.busyVirt.Load(),
	}
}

// TotalOps sums served requests (GET+SET+DEL) across shards.
func (s *ShardedServer) TotalOps() int64 {
	var n int64
	for i := range s.workers {
		c := s.workers[i].ctr
		n += c.gets.Load() + c.sets.Load() + c.dels.Load()
	}
	return n
}

// BusyVirt returns shard i's accumulated virtual busy time in
// nanoseconds: the modeled single-core cost of everything the shard has
// executed. In a real deployment each shard is pinned to a core, so
// aggregate throughput is bounded by the busiest shard; the scaling
// benchmark computes throughput as TotalOps / max_i(BusyVirt(i)).
func (s *ShardedServer) BusyVirt(i int) int64 { return s.workers[i].ctr.busyVirt.Load() }

// Len returns the total number of stored keys across shards.
func (s *ShardedServer) Len() int {
	n := 0
	for i := range s.workers {
		n += int(s.workers[i].ctr.keys.Load())
	}
	return n
}

// Size returns the shard count.
func (s *ShardedServer) Size() int { return len(s.workers) }

// RegisterTelemetry lifts per-shard KV counters into a registry as
// prefix.<i>.kv_* so demi-stat can show the per-core op distribution
// next to the mesh and stack counters.
func (s *ShardedServer) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	for i, w := range s.workers {
		p := telemetryPrefix(prefix, i)
		c := w.ctr
		r.RegisterFunc(p+".kv_gets", c.gets.Load)
		r.RegisterFunc(p+".kv_sets", c.sets.Load)
		r.RegisterFunc(p+".kv_fwd_out", c.forwardedOut.Load)
		r.RegisterFunc(p+".kv_fwd_in", c.forwardedIn.Load)
		r.RegisterFunc(p+".kv_migrated_out", c.migratedOut.Load)
		r.RegisterFunc(p+".kv_migrated_in", c.migratedIn.Load)
		r.RegisterFunc(p+".kv_keys", c.keys.Load)
		r.RegisterFunc(p+".kv_busy_virt_ns", c.busyVirt.Load)
	}
	r.RegisterFunc(prefix+".kv_gen", func() int64 { return int64(s.Generation()) })
	r.RegisterFunc(prefix+".kv_active", func() int64 { return int64(s.Active()) })
	r.RegisterFunc(prefix+".kv_migrating", func() int64 {
		if s.Stable() {
			return 0
		}
		return 1
	})
}

func telemetryPrefix(prefix string, i int) string {
	// Avoid fmt on a path that may be registered late; small and clear.
	const digits = "0123456789"
	if i < 10 {
		return prefix + "." + digits[i:i+1]
	}
	return prefix + "." + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}

// --- worker loop ---

func (w *shardWorker) step() int {
	w.pollTopology()
	n := 0
	w.acceptNew()
	n += w.drainMesh()
	n += w.retryForwards()
	n += w.stepMigration()
	n += w.serveReady()
	return n
}

func (w *shardWorker) acceptNew() {
	for {
		conn, ok, err := w.lib.TryAccept(w.lqd)
		if err != nil || !ok {
			return
		}
		qt, err := w.lib.Pop(conn)
		if err != nil {
			continue
		}
		w.ctr.connections.Add(1)
		w.conns[conn] = qt
	}
}

// serveReady collects completed pops and serves or forwards each.
func (w *shardWorker) serveReady() int {
	served := 0
	// Iterating the private map while mutating qt entries is safe: only
	// values change, and dead conns are collected into doomed first.
	var doomed []core.QD
	for conn, qt := range w.conns {
		comp, ok, err := w.lib.TryWait(qt)
		if err != nil || !ok {
			continue
		}
		if comp.Err != nil {
			doomed = append(doomed, conn)
			continue
		}
		w.handle(conn, comp)
		served++
		qt, err = w.lib.Pop(conn)
		if err != nil {
			doomed = append(doomed, conn)
			continue
		}
		w.conns[conn] = qt
	}
	for _, conn := range doomed {
		delete(w.conns, conn)
		w.lib.Close(conn)
	}
	return served
}

// handle serves one decoded request from a connection: it enters the
// topology-aware dispatch as a fresh, non-final request originated here.
func (w *shardWorker) handle(conn core.QD, comp queue.Completion) {
	w.dispatch(&fwdReq{conn: conn, origin: w.idx, req: comp.SGA, cost: comp.Cost}, false)
}

// dispatch routes one request — fresh off a connection (offMesh false)
// or relayed by a sibling — per the current topology: execute here, or
// send it one hop closer to the key's current holder.
func (w *shardWorker) dispatch(f *fwdReq, offMesh bool) {
	serveLocal, next, final := true, 0, false
	if key, ok := requestKey(f.req); ok && !f.final {
		serveLocal, next, final = w.route(key)
	} // malformed or marked final: executed here unconditionally
	if serveLocal {
		if f.origin == w.idx && !offMesh {
			// Fully local: the classic one-core fast path.
			resp, retain := w.apply(f.req)
			if !retain {
				f.req.Free()
			}
			w.respond(f.conn, resp, f.cost+w.model.AppRequestNS)
			w.ctr.busyVirt.Add(int64(w.localServeCost()))
			return
		}
		w.executeForward(f)
		return
	}
	// Misdirected: relay toward the holder. The origin pays the rx/tx
	// stack work; the executor pays the application compute.
	f.final = final
	m := shard.Msg{Op: shard.OpForward, Payload: f}
	if offMesh {
		w.ctr.busyVirt.Add(int64(w.meshHopCost()))
	} else {
		w.ctr.busyVirt.Add(int64(w.relayCost()))
	}
	if !w.group.Send(w.idx, next, m) {
		if len(w.fwdBacklog) >= maxFwdBacklog {
			w.ctr.forwardDrops.Add(1)
			f.req.Free()
			w.deliver(f, sga.New([]byte(StatusError)))
			return
		}
		m.From = w.idx // Send would have stamped it; keep it for retry
		w.fwdBacklog = append(w.fwdBacklog, m)
		return
	}
	w.ctr.forwardedOut.Add(1)
}

// executeForward applies a relayed request here and delivers the
// response to its origin shard.
func (w *shardWorker) executeForward(f *fwdReq) {
	resp, retain := w.apply(f.req)
	if !retain {
		f.req.Free()
	}
	if f.origin != w.idx {
		w.ctr.forwardedIn.Add(1)
	}
	w.ctr.busyVirt.Add(int64(w.model.AppRequestNS + w.meshHopCost()))
	w.deliver(f, resp)
}

// deliver routes a response to the request's origin: straight onto the
// connection when the origin is this worker, over the mesh otherwise. A
// full reply ring parks in the backlog like a forward.
func (w *shardWorker) deliver(f *fwdReq, resp sga.SGA) {
	if f.origin == w.idx {
		w.respond(f.conn, resp, f.cost+w.model.AppRequestNS)
		return
	}
	r := shard.Msg{Op: shard.OpReply, Payload: &fwdResp{conn: f.conn, resp: resp, cost: f.cost}}
	if !w.group.Send(w.idx, f.origin, r) {
		w.fwdBacklogReply(f.origin, r)
	}
}

// retryForwards replays mesh messages (forwards and replies) that were
// previously rejected by a full edge ring. Forwards re-route from
// scratch: the topology may have moved under a parked request, possibly
// all the way to "this shard now holds it".
func (w *shardWorker) retryForwards() int {
	n := 0
	for len(w.fwdBacklog) > 0 {
		m := w.fwdBacklog[0]
		if m.Op == shard.OpForward {
			f := m.Payload.(*fwdReq)
			serveLocal, next, final := true, 0, false
			if key, ok := requestKey(f.req); ok && !f.final {
				serveLocal, next, final = w.route(key)
			}
			if serveLocal {
				w.popBacklogHead()
				w.executeForward(f)
				n++
				continue
			}
			f.final = final
			if !w.group.Send(w.idx, next, m) {
				break
			}
			w.ctr.forwardedOut.Add(1)
		} else {
			if !w.group.Send(w.idx, int(m.Seq), m) { // replies carry their destination in Seq
				break
			}
		}
		w.popBacklogHead()
		n++
	}
	return n
}

func (w *shardWorker) popBacklogHead() {
	k := copy(w.fwdBacklog, w.fwdBacklog[1:])
	w.fwdBacklog[k] = shard.Msg{}
	w.fwdBacklog = w.fwdBacklog[:k]
}

// drainMesh absorbs cross-shard messages: forwards to route or execute,
// replies to deliver, migrate records to adopt.
func (w *shardWorker) drainMesh() int {
	if w.group.PendingTo(w.idx) == 0 {
		return 0
	}
	w.inbox = w.group.Recv(w.idx, w.inbox[:0], 64)
	for _, m := range w.inbox {
		switch m.Op {
		case shard.OpForward:
			w.dispatch(m.Payload.(*fwdReq), true)
		case shard.OpReply:
			f := m.Payload.(*fwdResp)
			w.ctr.busyVirt.Add(int64(w.meshHopCost()))
			w.respond(f.conn, f.resp, f.cost+w.model.AppRequestNS)
		case shard.OpMigrate:
			r := m.Payload.(*migRec)
			w.ctr.busyVirt.Add(int64(w.meshHopCost()))
			w.ctr.migratedIn.Add(1)
			if _, exists := w.store[r.key]; exists {
				// An authoritative write for this key already landed here
				// (it must have trailed the migrate on some path that
				// raced ahead); the stored value is newer. Drop the copy.
				r.val.s.Free()
				continue
			}
			w.store[r.key] = r.val
			w.ctr.keys.Add(1)
		}
	}
	return len(w.inbox)
}

// fwdBacklogReply parks a reply that could not be sent. Replies reuse
// the forward backlog; retryForwards cannot re-route them by key, so
// they carry their destination in Seq.
func (w *shardWorker) fwdBacklogReply(to int, m shard.Msg) {
	m.Seq = uint64(to)
	m.From = w.idx
	w.replyBacklogPush(m)
}

// replyBacklog is small enough to share the forward backlog's slice; a
// reply is distinguished by its Op.
func (w *shardWorker) replyBacklogPush(m shard.Msg) {
	if len(w.fwdBacklog) >= maxFwdBacklog {
		// Drop: the origin's client will time out and retry. Counted so
		// the chaos tests can assert this never fires in a healthy run.
		w.ctr.forwardDrops.Add(1)
		return
	}
	w.fwdBacklog = append(w.fwdBacklog, m)
}

// requestKey decodes just enough of a request to find its key; ok is
// false for malformed requests (answered locally with an error).
func requestKey(req sga.SGA) (string, bool) {
	if len(req.Segments) < 2 {
		return "", false
	}
	return string(req.Segments[1].Buf), true
}

// respond pushes a response and waits for the transport to accept it
// (store-owned buffers are only borrowed until then).
func (w *shardWorker) respond(conn core.QD, resp sga.SGA, cost simclock.Lat) {
	if qt, err := w.lib.PushCost(conn, resp, cost); err == nil {
		w.lib.Wait(qt)
	}
}

// localServeCost is the modeled single-core cost of one fully local
// request: syscall in/out, user netstack rx/tx, NIC rx/tx, app compute.
func (w *shardWorker) localServeCost() simclock.Lat {
	m := w.model
	return 2*(m.SyscallNS+m.UserNetStackNS+m.NICProcessNS) + m.AppRequestNS
}

// relayCost is the origin-side cost of a misdirected request: the same
// stack traversal, but the app compute happens at the owner.
func (w *shardWorker) relayCost() simclock.Lat {
	m := w.model
	return 2*(m.SyscallNS+m.UserNetStackNS+m.NICProcessNS) + w.meshHopCost()
}

// meshHopCost models one SPSC-ring hop (enqueue + cross-core cache miss
// on the consumer side) as a syscall-scale event.
func (w *shardWorker) meshHopCost() simclock.Lat { return w.model.SyscallNS }

// apply executes one decoded request against this worker's private
// store. It is Server.Apply without the lock: the store is owned by one
// goroutine, so the zero-copy pointer swap needs no synchronisation.
func (w *shardWorker) apply(req sga.SGA) (resp sga.SGA, retain bool) {
	segs := req.Segments
	if len(segs) < 2 {
		w.ctr.badRequests.Add(1)
		return sga.New([]byte(StatusError)), false
	}
	op := string(segs[0].Buf)
	key := string(segs[1].Buf)
	switch op {
	case OpGet:
		sv, ok := w.store[key]
		w.ctr.gets.Add(1)
		if !ok {
			w.ctr.notFound.Add(1)
			return sga.New([]byte(StatusNotFound)), false
		}
		return sga.New([]byte(StatusOK), sv.val), false
	case OpSet:
		if len(segs) < 3 {
			w.ctr.badRequests.Add(1)
			return sga.New([]byte(StatusError)), false
		}
		old, had := w.store[key]
		w.store[key] = storedVal{val: segs[2].Buf, s: req}
		w.ctr.sets.Add(1)
		if had {
			old.s.Free()
		} else {
			w.ctr.keys.Add(1)
		}
		return sga.New([]byte(StatusOK)), true
	case OpDel:
		old, had := w.store[key]
		delete(w.store, key)
		w.ctr.dels.Add(1)
		if had {
			old.s.Free()
			w.ctr.keys.Add(-1)
			return sga.New([]byte(StatusOK)), false
		}
		return sga.New([]byte(StatusNotFound)), false
	default:
		w.ctr.badRequests.Add(1)
		return sga.New([]byte(StatusError)), false
	}
}

// --- sharded client ---

// ShardedClient talks to a ShardedServer over one connection per server
// shard. The dialer (supplied by the facade, which knows the transport's
// RSS function) must return a connection whose flow lands on the given
// shard; Get/Set/Del then route each key over the connection of its
// owning shard, so in steady state no request crosses a server core.
//
// With EnableFailover, a dead peer on any per-shard connection triggers
// jittered backoff and a redial of that shard only — the redial dialer
// receives the attempt number so it can vary the source-port seed and
// avoid colliding with the dead connection's 4-tuple in TIME_WAIT-less
// bypass stacks.
type ShardedClient struct {
	lib *core.LibOS

	// mu guards the elastic width: n, conns, and attempts all change
	// under Resize, which may race in-flight operations on another
	// goroutine. Operations snapshot (index, conn) under RLock and
	// clamp stale shard indices to the current width — a misdirected
	// request stays correct because the server mesh forwards it.
	mu       sync.RWMutex
	n        int
	conns    []core.QD
	attempts []int

	pol      *failover.Policy
	redialFn func(shard, attempt int) (core.QD, error)

	reconnects atomic.Int64
	replays    atomic.Int64
}

// connAt resolves a (possibly stale) shard index against the current
// width: the returned j is i clamped to [0,n), alongside its live QD.
func (c *ShardedClient) connAt(i int) (core.QD, int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	j := i % c.n
	return c.conns[j], j
}

// NewShardedClient dials one flow per server shard using dial.
func NewShardedClient(lib *core.LibOS, n int, dial func(shard int) (core.QD, error)) (*ShardedClient, error) {
	c := &ShardedClient{lib: lib, n: n, attempts: make([]int, n)}
	for i := 0; i < n; i++ {
		qd, err := dial(i)
		if err != nil {
			return nil, err
		}
		c.conns = append(c.conns, qd)
	}
	return c, nil
}

// EnableFailover arms per-shard redial-and-replay: on a retriable typed
// error the owning shard's connection is redialed via dial (attempt
// starts at 1 and increments per redial of that shard, letting the
// dialer rotate source-port seeds) and the operation replays.
func (c *ShardedClient) EnableFailover(pol failover.Policy, dial func(shard, attempt int) (core.QD, error)) {
	c.pol = &pol
	c.redialFn = dial
}

// FailoverStats reports redials and replays across all shards.
func (c *ShardedClient) FailoverStats() (reconnects, replays int64) {
	return c.reconnects.Load(), c.replays.Load()
}

// roundTrip pushes req on shard i's connection and waits for the
// response, redialing that shard and replaying under an armed policy.
func (c *ShardedClient) roundTrip(i int, req sga.SGA) (sga.SGA, simclock.Lat, error) {
	conn, j := c.connAt(i)
	resp, cost, err := c.attempt(conn, req)
	if err == nil || c.pol == nil || c.redialFn == nil || !failover.Retriable(err) {
		return resp, cost, err
	}
	bo := failover.NewBackoff(*c.pol)
	for {
		d, ok := bo.Next()
		if !ok {
			return sga.SGA{}, 0, err
		}
		time.Sleep(d)
		// Re-resolve every iteration: a concurrent Resize may have
		// shrunk the width, retiring the shard this op was aimed at.
		conn, j = c.connAt(i)
		if rerr := c.redialShard(j); rerr != nil {
			if failover.Retriable(rerr) {
				err = rerr
				continue
			}
			return sga.SGA{}, 0, rerr
		}
		c.reconnects.Add(1)
		c.replays.Add(1)
		conn, _ = c.connAt(j)
		resp, cost, err = c.attempt(conn, req)
		if err == nil || !failover.Retriable(err) {
			return resp, cost, err
		}
	}
}

// attempt performs one push/pop round trip on conn.
func (c *ShardedClient) attempt(conn core.QD, req sga.SGA) (sga.SGA, simclock.Lat, error) {
	qt, err := c.lib.PushCost(conn, req, 0)
	if err != nil {
		return sga.SGA{}, 0, err
	}
	pushed, err := c.lib.Wait(qt)
	if err != nil {
		return sga.SGA{}, 0, err
	}
	if pushed.Err != nil {
		return sga.SGA{}, 0, pushed.Err
	}
	comp, err := c.lib.BlockingPop(conn)
	if err != nil {
		return sga.SGA{}, 0, err
	}
	if comp.Err != nil {
		return sga.SGA{}, 0, comp.Err
	}
	return comp.SGA, comp.Cost, nil
}

// redialShard replaces shard i's dead connection with a fresh one. The
// swap is dial-first: the dead QD is closed only once its replacement
// exists, so a redial that fails (server still down) leaves the shard
// holding a QD whose errors remain typed and retriable rather than a
// stale closed descriptor surfacing non-retriable ErrBadQD.
func (c *ShardedClient) redialShard(i int) error {
	c.mu.Lock()
	if i >= c.n {
		// Resized out from under us; the caller re-resolves.
		c.mu.Unlock()
		return nil
	}
	c.attempts[i]++
	attempt := c.attempts[i]
	c.mu.Unlock()
	qd, err := c.redialFn(i, attempt)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if i >= c.n {
		// Shrunk while the dial was in flight: the fresh connection has
		// no slot; drop it and let the caller re-resolve the index.
		c.mu.Unlock()
		c.lib.Close(qd) //nolint:errcheck // surplus dial
		return nil
	}
	old := c.conns[i]
	c.conns[i] = qd
	c.mu.Unlock()
	c.lib.Close(old) //nolint:errcheck // the old QD is already dead
	return nil
}

// owner hashes key over the client's current shard width.
func (c *ShardedClient) owner(key string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return KeyShard(key, c.n)
}

// Get fetches key from its owning shard.
func (c *ShardedClient) Get(key string) (val []byte, cost simclock.Lat, found bool, err error) {
	resp, cost, err := c.roundTrip(c.owner(key), sga.New([]byte(OpGet), []byte(key)))
	if err != nil {
		return nil, 0, false, err
	}
	switch string(resp.Segments[0].Buf) {
	case StatusOK:
		if resp.NumSegments() < 2 {
			return nil, cost, false, ErrBadRequest
		}
		return resp.Segments[1].Buf, cost, true, nil
	case StatusNotFound:
		return nil, cost, false, nil
	default:
		return nil, cost, false, ErrBadRequest
	}
}

// Set stores key=val on its owning shard.
func (c *ShardedClient) Set(key string, val []byte) (simclock.Lat, error) {
	resp, cost, err := c.roundTrip(c.owner(key), sga.New([]byte(OpSet), []byte(key), val))
	if err != nil {
		return 0, err
	}
	if string(resp.Segments[0].Buf) != StatusOK {
		return cost, ErrBadRequest
	}
	return cost, nil
}

// SetOn stores key=val via shard conn's connection regardless of the
// key's owner — the misdirection the forwarding path exists for. Tests
// and the scaling benchmark's "unaligned client" mode use it.
func (c *ShardedClient) SetOn(conn int, key string, val []byte) (simclock.Lat, error) {
	resp, cost, err := c.roundTrip(conn, sga.New([]byte(OpSet), []byte(key), val))
	if err != nil {
		return 0, err
	}
	if string(resp.Segments[0].Buf) != StatusOK {
		return cost, ErrBadRequest
	}
	return cost, nil
}

// GetOn fetches key via shard conn's connection regardless of owner.
func (c *ShardedClient) GetOn(conn int, key string) (val []byte, found bool, err error) {
	resp, _, err := c.roundTrip(conn, sga.New([]byte(OpGet), []byte(key)))
	if err != nil {
		return nil, false, err
	}
	switch string(resp.Segments[0].Buf) {
	case StatusOK:
		if resp.NumSegments() < 2 {
			return nil, false, ErrBadRequest
		}
		return resp.Segments[1].Buf, true, nil
	case StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, ErrBadRequest
	}
}

// Del removes key from its owning shard.
func (c *ShardedClient) Del(key string) (bool, error) {
	resp, _, err := c.roundTrip(c.owner(key), sga.New([]byte(OpDel), []byte(key)))
	if err != nil {
		return false, err
	}
	return string(resp.Segments[0].Buf) == StatusOK, nil
}

// Resize re-partitions the client onto n server shards: new shards are
// dialed, surplus connections closed, and subsequent Get/Set/Del calls
// hash keys over the new width. Safe to call lazily after a server
// reshard — a stale client stays correct in the meantime because the
// server's mesh forwarding absorbs misdirected requests; Resize just
// restores the zero-forward steady state.
func (c *ShardedClient) Resize(n int, dial func(shard int) (core.QD, error)) error {
	if n < 1 {
		return ErrBadRequest
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.conns); i < n; i++ {
		qd, err := dial(i)
		if err != nil {
			return err
		}
		c.conns = append(c.conns, qd)
		c.attempts = append(c.attempts, 0)
	}
	for i := n; i < len(c.conns); i++ {
		c.lib.Close(c.conns[i]) //nolint:errcheck // surplus conns may already be dead
	}
	c.conns = c.conns[:n]
	c.attempts = c.attempts[:n]
	c.n = n
	return nil
}

// Shards returns the shard width the client currently hashes over.
func (c *ShardedClient) Shards() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// Close shuts every per-shard connection.
func (c *ShardedClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, qd := range c.conns {
		if err := c.lib.Close(qd); err != nil && first == nil {
			first = err
		}
	}
	return first
}
