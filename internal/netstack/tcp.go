package netstack

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// TCP connection states (a condensed but faithful subset of RFC 793).
type tcpState int

const (
	stateSynSent tcpState = iota
	stateSynRcvd
	stateEstablished
	stateClosed
)

// seqLT reports a < b in 32-bit sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ reports a <= b in 32-bit sequence space.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// maxRTO caps exponential backoff.
const maxRTO = time.Second

// sndBufMax bounds the per-connection send buffer.
const sndBufMax = 256 * 1024

// TCPListener accepts inbound connections on a port.
type TCPListener struct {
	stack   *Stack
	port    uint16
	backlog []*TCPConn
	closed  bool
}

// ListenTCP binds a listener to port.
func (s *Stack) ListenTCP(port uint16) (*TCPListener, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, used := s.listeners[port]; used {
		return nil, fmt.Errorf("%w: tcp %d", ErrPortInUse, port)
	}
	l := &TCPListener{stack: s, port: port}
	s.listeners[port] = l
	return l, nil
}

// Accept pops one fully established connection, without blocking.
func (l *TCPListener) Accept() (*TCPConn, bool) {
	s := l.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(l.backlog) == 0 {
		return nil, false
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, true
}

// Close unbinds the listener. Established connections are unaffected.
func (l *TCPListener) Close() {
	s := l.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	l.closed = true
	delete(s.listeners, l.port)
}

// TCPConn is one TCP connection. All methods are non-blocking; callers
// pump Stack.Poll and retry, which is exactly how a Demikernel libOS
// drives it from wait_*.
type TCPConn struct {
	stack *Stack
	key   connKey
	state tcpState
	iss   uint32

	// Send side. sndBuf holds bytes in [sndUna, sndUna+len(sndBuf)).
	sndUna, sndNxt uint32
	sndBuf         []byte
	peerWnd        int
	cwnd, ssthresh int
	dupAcks        int
	rto            time.Duration
	rtoDeadline    time.Time
	retries        int // consecutive timer-driven retransmits
	txCost         simclock.Lat
	finQueued      bool
	finSent        bool
	finAcked       bool

	// Receive side. ooo stashes out-of-order segments in pooled buffers
	// keyed by sequence number; every exit path (drain, RST, give-up,
	// orderly close) releases them back to the frame pool.
	rcvNxt      uint32
	rcvBuf      []byte
	ooo         map[uint32]*fabric.FrameBuf
	peerFinRcvd bool
	rxCost      simclock.Lat
	// advWnd is the receive window advertised in the most recent segment
	// we sent. RecvAppend compares against it to decide when an
	// application drain has reopened the window enough that the (possibly
	// stalled) sender must be told with a window-update ACK.
	advWnd int

	// pendingListener receives the connection on handshake completion.
	pendingListener *TCPListener

	err error

	// readyHint mirrors Readable() into a lock-free flag: it is updated
	// (under the stack lock) wherever read-readiness can change, and read
	// without any lock by idle pollers deciding whether an endpoint needs
	// a pump at all. A false hint is always eventually corrected by the
	// same Poll that makes the connection readable, so skipping on false
	// never strands data — it only skips the stack-lock acquisition.
	readyHint atomic.Bool
}

// updateReadyLocked refreshes the lock-free readiness hint. Call at
// every point where rcvBuf, peerFinRcvd, or err transitions.
func (c *TCPConn) updateReadyLocked() {
	c.readyHint.Store(len(c.rcvBuf) > 0 || c.peerFinRcvd || c.err != nil)
}

// ReadyHint reports the last published read-readiness without taking the
// stack lock. See readyHint for the staleness contract.
func (c *TCPConn) ReadyHint() bool { return c.readyHint.Load() }

// DialTCP starts an active open to ip:port. The returned connection is in
// SYN-SENT; poll the stack until Established reports true.
func (s *Stack) DialTCP(ip IPv4Addr, port uint16) (*TCPConn, error) {
	return s.DialTCPFrom(0, ip, port)
}

// DialTCPFrom is DialTCP with an explicit local port (0 picks an
// ephemeral one). Sharded clients use it to choose a source port whose
// RSS hash steers the *server-side* flow onto a particular shard's
// receive queue (nic.RSSQueueFlow computes the mapping) — the
// connection-placement half of share-nothing partitioning.
func (s *Stack) DialTCPFrom(localPort uint16, ip IPv4Addr, port uint16) (*TCPConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	local := localPort
	if local == 0 {
		local = s.ephemeralLocked()
	}
	key := connKey{localPort: local, remoteIP: ip, remotePort: port}
	if _, dup := s.conns[key]; dup {
		return nil, fmt.Errorf("%w: %v", ErrPortInUse, key)
	}
	c := s.newConnLocked(key, stateSynSent)
	s.conns[key] = c
	c.sendSegmentLocked(c.iss, nil, flagSYN)
	c.sndNxt = c.iss + 1
	c.armTimerLocked()
	return c, nil
}

func (s *Stack) newConnLocked(key connKey, st tcpState) *TCPConn {
	s.issCounter += 64013
	return &TCPConn{
		stack:    s,
		key:      key,
		state:    st,
		iss:      s.issCounter,
		cwnd:     2 * s.cfg.MSS,
		ssthresh: 64 * 1024,
		peerWnd:  s.cfg.MSS, // until the peer advertises
		rto:      s.cfg.RTO,
		ooo:      make(map[uint32]*fabric.FrameBuf),
	}
}

// LocalPort returns the connection's local port.
func (c *TCPConn) LocalPort() uint16 { return c.key.localPort }

// RemoteIP returns the peer address.
func (c *TCPConn) RemoteIP() IPv4Addr { return c.key.remoteIP }

// RemotePort returns the peer port.
func (c *TCPConn) RemotePort() uint16 { return c.key.remotePort }

// Established reports whether the handshake has completed.
func (c *TCPConn) Established() bool {
	c.stack.mu.Lock()
	defer c.stack.mu.Unlock()
	return c.state == stateEstablished
}

// Err returns the terminal error, if the connection failed.
func (c *TCPConn) Err() error {
	c.stack.mu.Lock()
	defer c.stack.mu.Unlock()
	return c.err
}

// Send enqueues payload bytes for transmission, carrying the caller's
// accumulated virtual cost. It returns the number of bytes accepted,
// which may be less than len(b) when the send buffer fills.
func (c *TCPConn) Send(b []byte, cost simclock.Lat) (int, error) {
	s := c.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.err != nil {
		return 0, c.err
	}
	if c.state == stateClosed || c.finQueued {
		return 0, ErrConnClosed
	}
	space := sndBufMax - len(c.sndBuf)
	if space <= 0 {
		return 0, nil
	}
	n := len(b)
	if n > space {
		n = space
	}
	c.sndBuf = append(c.sndBuf, b[:n]...)
	c.txCost = cost
	c.trySendLocked()
	return n, nil
}

// SendBuffered queues bytes like Send but defers segmentation until
// FlushSend, so a burst of application writes coalesces into MSS-sized
// segments instead of one undersized segment per write. Retransmission
// and flow control are unchanged — sndBuf remains the source of truth.
func (c *TCPConn) SendBuffered(b []byte, cost simclock.Lat) (int, error) {
	s := c.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.err != nil {
		return 0, c.err
	}
	if c.state == stateClosed || c.finQueued {
		return 0, ErrConnClosed
	}
	space := sndBufMax - len(c.sndBuf)
	if space <= 0 {
		return 0, nil
	}
	n := len(b)
	if n > space {
		n = space
	}
	c.sndBuf = append(c.sndBuf, b[:n]...)
	c.txCost = cost
	return n, nil
}

// FlushSend emits whatever SendBuffered queued, as far as the
// congestion and flow-control windows allow.
func (c *TCPConn) FlushSend() {
	s := c.stack
	s.mu.Lock()
	c.trySendLocked()
	s.mu.Unlock()
}

// Recv pops up to max in-order received bytes. It returns (nil, 0, nil)
// when no data is ready, and io.EOF once the peer's FIN has been consumed
// and the buffer is drained.
func (c *TCPConn) Recv(max int) ([]byte, simclock.Lat, error) {
	return c.RecvAppend(nil, max)
}

// RecvAppend is Recv with caller-provided storage: ready bytes are
// appended to dst (commonly a recycled scratch slice with len 0), so a
// steady-state receive loop runs without allocating. It returns dst
// unchanged alongside io.EOF / a terminal error / no-data.
func (c *TCPConn) RecvAppend(dst []byte, max int) ([]byte, simclock.Lat, error) {
	s := c.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.err != nil {
		return dst, 0, c.err
	}
	if len(c.rcvBuf) == 0 {
		if c.peerFinRcvd {
			return dst, 0, io.EOF
		}
		return dst, 0, nil
	}
	n := len(c.rcvBuf)
	if max > 0 && n > max {
		n = max
	}
	dst = append(dst, c.rcvBuf[:n]...)
	c.rcvBuf = c.rcvBuf[:copy(c.rcvBuf, c.rcvBuf[n:])]
	// The drain may have made room for out-of-order segments that were
	// parked because the reassembly buffer was full; deliver them now
	// instead of waiting for the sender's RTO to retransmit them.
	before := c.rcvNxt
	c.drainOutOfOrderLocked()
	// Window update: a sender stalled on a zero (or shrunken) advertised
	// window has nothing in flight to elicit an ACK, so unless we tell it
	// the window reopened it only discovers via a retransmission timeout.
	// Receiver-side SWS avoidance: announce only when the window grew by
	// at least an MSS or half the receive buffer since our last
	// advertisement (RFC 1122 4.2.3.3), or when the re-drain advanced
	// rcvNxt (the parked data must be ACKed regardless).
	if c.state == stateEstablished {
		opened := int(c.advertisedWindowLocked()) - c.advWnd
		threshold := min(c.stack.cfg.MSS, c.stack.cfg.RxWindow/2)
		if before != c.rcvNxt || opened >= threshold {
			c.sendAckLocked()
		}
	}
	c.updateReadyLocked()
	return dst, c.rxCost, nil
}

// Close queues a FIN after any buffered data drains.
func (c *TCPConn) Close() {
	s := c.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.finQueued || c.state == stateClosed {
		return
	}
	c.finQueued = true
	c.trySendLocked()
}

// Readable reports whether Recv would return data or EOF right now
// (level-triggered readiness, as epoll sees it).
func (c *TCPConn) Readable() bool {
	c.stack.mu.Lock()
	defer c.stack.mu.Unlock()
	return len(c.rcvBuf) > 0 || c.peerFinRcvd || c.err != nil
}

// Pending returns the number of connections waiting in the accept
// backlog.
func (l *TCPListener) Pending() int {
	l.stack.mu.Lock()
	defer l.stack.mu.Unlock()
	return len(l.backlog)
}

// Closed reports whether both directions have shut down or the connection
// was reset.
func (c *TCPConn) Closed() bool {
	c.stack.mu.Lock()
	defer c.stack.mu.Unlock()
	return c.state == stateClosed
}

// --- segment input ---

func (s *Stack) handleTCPLocked(h ipv4Header, body []byte, cost simclock.Lat) {
	seg, ok := parseTCP(body, h.src, h.dst)
	if !ok {
		s.stats.BadChecksums++
		return
	}
	s.stats.TCPSegsRcvd++
	key := connKey{localPort: seg.dstPort, remoteIP: h.src, remotePort: seg.srcPort}
	if c, ok := s.conns[key]; ok {
		c.handleSegmentLocked(seg, cost)
		return
	}
	// New inbound connection?
	if seg.flags&flagSYN != 0 && seg.flags&flagACK == 0 {
		if l, ok := s.listeners[seg.dstPort]; ok && !l.closed {
			c := s.newConnLocked(key, stateSynRcvd)
			s.conns[key] = c
			c.rcvNxt = seg.seq + 1
			c.peerWnd = int(seg.window)
			c.pendingListener = l
			c.sendSegmentLocked(c.iss, nil, flagSYN|flagACK)
			c.sndNxt = c.iss + 1
			c.armTimerLocked()
			return
		}
	}
	s.stats.NoListener++
	// No connection and no listener: answer with RST, as a real stack
	// does, so the peer fails fast instead of retrying into a void.
	if seg.flags&flagRST == 0 {
		s.sendRSTLocked(h.src, seg)
	}
}

// sendRSTLocked emits a reset in response to an orphan segment.
func (s *Stack) sendRSTLocked(dst IPv4Addr, orphan tcpSegment) {
	s.stats.RSTsSent++
	rst := tcpSegment{
		srcPort: orphan.dstPort,
		dstPort: orphan.srcPort,
		// RFC 793: if the orphan had an ACK, reset with its ack number;
		// otherwise seq 0 and ack covering the orphan.
		seq:   orphan.ack,
		ack:   orphan.seq + uint32(len(orphan.payload)) + 1,
		flags: flagRST | flagACK,
	}
	l4 := rst.marshal(s.l4buf[:0], s.cfg.IP, dst)
	s.l4buf = l4
	s.sendIPv4Locked(dst, protoTCP, l4, 0)
}

func (c *TCPConn) handleSegmentLocked(seg tcpSegment, cost simclock.Lat) {
	s := c.stack
	if seg.flags&flagRST != 0 {
		s.stats.RSTsRcvd++
		c.err = ErrConnClosed
		c.state = stateClosed
		c.releaseOOOLocked()
		c.updateReadyLocked()
		delete(s.conns, c.key)
		return
	}
	switch c.state {
	case stateSynSent:
		if seg.flags&(flagSYN|flagACK) == flagSYN|flagACK && seg.ack == c.iss+1 {
			c.sndUna = seg.ack
			c.rcvNxt = seg.seq + 1
			c.peerWnd = int(seg.window)
			c.state = stateEstablished
			c.retries = 0
			c.clearTimerLocked()
			c.sendAckLocked()
			c.trySendLocked()
		}
		return
	case stateSynRcvd:
		if seg.flags&flagACK != 0 && seg.ack == c.iss+1 {
			c.sndUna = seg.ack
			c.peerWnd = int(seg.window)
			c.state = stateEstablished
			c.retries = 0
			c.clearTimerLocked()
			if l := c.pendingListener; l != nil && !l.closed {
				l.backlog = append(l.backlog, c)
			}
			c.pendingListener = nil
			// Fall through: the handshake ACK may carry data.
		} else {
			return
		}
	case stateClosed:
		return
	}

	// Any valid segment from the peer proves it is alive: the
	// retransmission budget tracks dead peers, not slow ones (a closed
	// receive window answered by probe ACKs must not kill the
	// connection).
	c.retries = 0

	c.processAckLocked(seg)
	c.processDataLocked(seg, cost)
	c.maybeFinishLocked()
	c.updateReadyLocked()
}

func (c *TCPConn) processAckLocked(seg tcpSegment) {
	if seg.flags&flagACK == 0 {
		return
	}
	oldWnd := c.peerWnd
	c.peerWnd = int(seg.window)
	mss := c.stack.cfg.MSS
	switch {
	case seqLT(c.sndUna, seg.ack) && seqLEQ(seg.ack, c.sndNxt):
		acked := int(seg.ack - c.sndUna)
		dataAcked := acked
		if dataAcked > len(c.sndBuf) {
			dataAcked = len(c.sndBuf) // the excess is our FIN
			c.finAcked = c.finSent
		}
		c.sndBuf = c.sndBuf[:copy(c.sndBuf, c.sndBuf[dataAcked:])]
		c.sndUna = seg.ack
		c.dupAcks = 0
		c.retries = 0 // forward progress: the peer is alive
		c.rto = c.stack.cfg.RTO
		// Congestion control: slow start then AIMD (RFC 5681 shape).
		if c.cwnd < c.ssthresh {
			c.cwnd += mss
		} else {
			c.cwnd += mss * mss / c.cwnd
		}
		if c.sndUna != c.sndNxt || len(c.sndBuf) > 0 {
			// Data in flight, or data stalled behind a closed peer
			// window (the timer then acts as the persist timer).
			c.armTimerLocked()
		} else {
			c.clearTimerLocked()
		}
	case seg.ack == c.sndUna && c.sndNxt != c.sndUna && len(seg.payload) == 0 && c.peerWnd == oldWnd:
		c.stack.stats.DupAcksRcvd++
		c.dupAcks++
		if c.dupAcks == 3 {
			c.fastRetransmitLocked()
		}
	}
	// A window update may have unblocked sending even without new ACKs.
	c.trySendLocked()
}

func (c *TCPConn) fastRetransmitLocked() {
	s := c.stack
	s.stats.FastRetransmits++
	telemetry.TraceInstant("netstack", "fast-retransmit", int32(c.key.localPort), int64(c.sndUna))
	mss := s.cfg.MSS
	flight := int(c.sndNxt - c.sndUna)
	c.ssthresh = max(flight/2, 2*mss)
	c.cwnd = c.ssthresh + 3*mss
	c.retransmitHeadLocked()
}

// retransmitHeadLocked resends the first unacknowledged segment (or the
// FIN when only the FIN is outstanding).
func (c *TCPConn) retransmitHeadLocked() {
	mss := c.stack.cfg.MSS
	if len(c.sndBuf) > 0 {
		n := min(mss, len(c.sndBuf))
		c.sendSegmentLocked(c.sndUna, c.sndBuf[:n], flagACK|flagPSH)
	} else if c.finSent && !c.finAcked {
		c.sendSegmentLocked(c.sndNxt-1, nil, flagFIN|flagACK)
	}
	c.armTimerLocked()
}

func (c *TCPConn) processDataLocked(seg tcpSegment, cost simclock.Lat) {
	payload := seg.payload
	seq := seg.seq
	hasFin := seg.flags&flagFIN != 0
	if len(payload) == 0 && !hasFin {
		return
	}
	// Trim anything we already have.
	if seqLT(seq, c.rcvNxt) {
		skip := int(c.rcvNxt - seq)
		if skip >= len(payload) {
			if !(hasFin && seq+uint32(len(payload)) == c.rcvNxt) {
				// Pure duplicate: re-ACK so the sender advances.
				c.sendAckLocked()
				return
			}
			payload = nil
			seq = c.rcvNxt
		} else {
			payload = payload[skip:]
			seq += uint32(skip)
		}
	}
	switch {
	case seq == c.rcvNxt:
		c.acceptDataLocked(payload, cost)
		if hasFin && !c.peerFinRcvd {
			c.peerFinRcvd = true
			c.rcvNxt++
		}
		c.drainOutOfOrderLocked()
	default:
		// Future segment: stash a pooled copy for reassembly. The wire
		// frame recycles after the burst; the stash lives until the gap
		// fills (or the connection dies — see releaseOOOLocked).
		c.stack.stats.OutOfOrderSegs++
		if len(payload) > 0 {
			if _, dup := c.ooo[seq]; !dup {
				if fb := c.stack.pool.Get(len(payload)); fb != nil {
					copy(fb.Bytes(), payload)
					c.ooo[seq] = fb
				} else {
					// Quota exhausted: drop the stash; retransmission
					// refills the gap once the tenant frees frames.
					c.stack.stats.RxQuotaDrops++
				}
			}
		}
		// FIN out of order is recovered by retransmission.
	}
	c.sendAckLocked()
}

func (c *TCPConn) acceptDataLocked(payload []byte, cost simclock.Lat) {
	space := c.stack.cfg.RxWindow - len(c.rcvBuf)
	n := min(len(payload), space)
	if n > 0 {
		c.rcvBuf = append(c.rcvBuf, payload[:n]...)
		c.rcvNxt += uint32(n)
		c.rxCost = cost
	}
	// Bytes beyond the window are dropped; the shrunken advertised
	// window makes the sender retransmit them later.
}

func (c *TCPConn) drainOutOfOrderLocked() {
	for {
		fb, ok := c.ooo[c.rcvNxt]
		if !ok {
			return
		}
		payload := fb.Bytes()
		space := c.stack.cfg.RxWindow - len(c.rcvBuf)
		if space < len(payload) {
			return // keep it buffered until the app drains
		}
		delete(c.ooo, c.rcvNxt)
		c.rcvBuf = append(c.rcvBuf, payload...)
		c.rcvNxt += uint32(len(payload))
		fb.Release()
	}
}

// releaseOOOLocked recycles every stashed out-of-order segment. Every
// connection-teardown path calls it so pooled buffers never leak with a
// dead connection.
func (c *TCPConn) releaseOOOLocked() {
	for seq, fb := range c.ooo {
		delete(c.ooo, seq)
		fb.Release()
	}
}

func (c *TCPConn) maybeFinishLocked() {
	if c.finSent && c.finAcked && c.peerFinRcvd && c.state != stateClosed {
		c.state = stateClosed
		c.releaseOOOLocked()
		delete(c.stack.conns, c.key)
	}
}

// --- segment output ---

func (c *TCPConn) advertisedWindowLocked() uint16 {
	w := c.stack.cfg.RxWindow - len(c.rcvBuf)
	if w < 0 {
		w = 0
	}
	if w > 0xffff {
		w = 0xffff
	}
	return uint16(w)
}

func (c *TCPConn) sendAckLocked() {
	c.sendSegmentLocked(c.sndNxt, nil, flagACK)
}

func (c *TCPConn) sendSegmentLocked(seq uint32, payload []byte, flags uint8) {
	s := c.stack
	s.stats.TCPSegsSent++
	seg := tcpSegment{
		srcPort: c.key.localPort,
		dstPort: c.key.remotePort,
		seq:     seq,
		ack:     c.rcvNxt,
		flags:   flags,
		window:  c.advertisedWindowLocked(),
		payload: payload,
	}
	c.advWnd = int(seg.window)
	// Marshal into the stack's scratch buffer: sendIPv4Locked copies the
	// bytes into the outgoing pooled frame before returning, so the
	// scratch is free again by the next segment.
	l4 := seg.marshal(s.l4buf[:0], s.cfg.IP, c.key.remoteIP)
	s.l4buf = l4
	cost := c.txCost + s.model.UserNetStackNS + s.cfg.PerPacketExtra
	s.sendIPv4Locked(c.key.remoteIP, protoTCP, l4, cost)
}

// trySendLocked emits as much buffered data as the congestion and flow
// control windows allow, then a FIN if one is queued and the buffer is
// empty.
func (c *TCPConn) trySendLocked() {
	if c.state != stateEstablished {
		return
	}
	mss := c.stack.cfg.MSS
	for {
		flight := int(c.sndNxt - c.sndUna)
		wnd := min(c.peerWnd, c.cwnd)
		unsent := len(c.sndBuf) - flight
		if unsent <= 0 {
			break
		}
		n := min(mss, unsent, wnd-flight)
		if n <= 0 {
			break
		}
		off := flight
		c.sendSegmentLocked(c.sndNxt, c.sndBuf[off:off+n], flagACK|flagPSH)
		c.sndNxt += uint32(n)
		c.armTimerLocked()
	}
	if c.finQueued && !c.finSent && int(c.sndNxt-c.sndUna) == len(c.sndBuf) {
		c.sendSegmentLocked(c.sndNxt, nil, flagFIN|flagACK)
		c.sndNxt++
		c.finSent = true
		c.armTimerLocked()
	}
	// Persist timer: data is queued but the peer window blocks it and no
	// timer is running. This happens when the peer closed its window
	// *after* everything in flight was ACKed (which cleared the timer) —
	// with nothing in flight there is no retransmission to recover a lost
	// window-update ACK, so without a probe the connection deadlocks
	// silently. Arm the timer; tickTimersLocked sends the one-byte
	// zero-window probe when it fires.
	if len(c.sndBuf) > int(c.sndNxt-c.sndUna) && c.rtoDeadline.IsZero() {
		c.armTimerLocked()
	}
}

// --- timers ---

// giveUpLocked terminates a connection whose retransmission budget is
// exhausted: SYN-phase failures become ErrConnectTimeout, established
// ones ErrMaxRetransmits. The error is terminal and observable through
// Err/Send/Recv, which is how the libOS above turns it into a failed
// qtoken instead of a hang.
func (c *TCPConn) giveUpLocked() {
	s := c.stack
	s.stats.GiveUps++
	telemetry.TraceInstant("netstack", "give-up", int32(c.key.localPort), int64(c.retries))
	switch c.state {
	case stateSynSent, stateSynRcvd:
		c.err = ErrConnectTimeout
	default:
		c.err = ErrMaxRetransmits
	}
	c.state = stateClosed
	c.clearTimerLocked()
	c.releaseOOOLocked()
	c.updateReadyLocked()
	delete(s.conns, c.key)
}

func (c *TCPConn) armTimerLocked() {
	c.rtoDeadline = c.stack.now().Add(c.rto)
}

func (c *TCPConn) clearTimerLocked() {
	c.rtoDeadline = time.Time{}
}

// tickTimersLocked fires retransmission timers across all connections.
func (s *Stack) tickTimersLocked() {
	now := s.now()
	for _, c := range s.conns {
		if c.rtoDeadline.IsZero() || now.Before(c.rtoDeadline) {
			continue
		}
		// Retransmission budget: a timer firing MaxRetransmits times in a
		// row without forward progress means the peer is gone. Surface a
		// terminal, typed error instead of retrying into the void.
		if c.retries >= s.cfg.MaxRetransmits {
			c.giveUpLocked()
			continue
		}
		c.retries++
		s.stats.Retransmits++
		telemetry.TraceInstant("netstack", "retransmit", int32(c.key.localPort), int64(c.retries))
		mss := s.cfg.MSS
		switch c.state {
		case stateSynSent:
			c.sendSegmentLocked(c.iss, nil, flagSYN)
		case stateSynRcvd:
			c.sendSegmentLocked(c.iss, nil, flagSYN|flagACK)
		case stateEstablished:
			flight := int(c.sndNxt - c.sndUna)
			c.ssthresh = max(flight/2, 2*mss)
			c.cwnd = mss
			if c.peerWnd == 0 && len(c.sndBuf) > 0 && flight == 0 {
				// Zero-window probe: one byte past the edge.
				c.sendSegmentLocked(c.sndNxt, c.sndBuf[:1], flagACK|flagPSH)
				c.sndNxt++
			} else if flight > 0 {
				c.retransmitHeadLocked()
				continue // retransmitHead re-armed the timer
			} else {
				c.clearTimerLocked()
				continue
			}
		case stateClosed:
			c.clearTimerLocked()
			continue
		}
		c.rto *= 2
		if c.rto > maxRTO {
			c.rto = maxRTO
		}
		c.armTimerLocked()
	}
}
