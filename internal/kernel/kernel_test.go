package kernel

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"demikernel/internal/fabric"
	"demikernel/internal/netstack"
	"demikernel/internal/nic"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
)

var (
	macA = fabric.MAC{0x02, 0, 0, 0, 0, 0xA}
	macB = fabric.MAC{0x02, 0, 0, 0, 0, 0xB}
	ipA  = netstack.IP(10, 0, 0, 1)
	ipB  = netstack.IP(10, 0, 0, 2)
)

type hosts struct {
	a, b *Kernel
}

func newHosts(t *testing.T) *hosts {
	t.Helper()
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 5)
	devA := nic.New(&model, sw, nic.Config{MAC: macA})
	devB := nic.New(&model, sw, nic.Config{MAC: macB})
	return &hosts{
		a: New(&model, devA, ipA),
		b: New(&model, devB, ipB),
	}
}

func (h *hosts) pump() {
	for h.a.Poll()+h.b.Poll() > 0 {
	}
}

func (h *hosts) pumpUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		h.pump()
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func connectPair(t *testing.T, h *hosts) (cli, srv FD) {
	t.Helper()
	lfd, _, err := h.b.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	cli, _, err = h.a.Connect(ipB, 8080)
	if err != nil {
		t.Fatal(err)
	}
	srv = -1
	h.pumpUntil(t, func() bool {
		if srv < 0 {
			if fd, _, err := h.b.Accept(lfd); err == nil {
				srv = fd
			}
		}
		return srv >= 0 && h.a.Connected(cli)
	})
	return cli, srv
}

func TestSocketEcho(t *testing.T) {
	h := newHosts(t)
	cli, srv := connectPair(t, h)
	if _, _, err := h.a.Send(cli, []byte("echo me"), 0); err != nil {
		t.Fatal(err)
	}
	var got []byte
	h.pumpUntil(t, func() bool {
		b, _, err := h.b.Recv(srv, 0)
		if err == nil {
			got = append(got, b...)
		}
		return len(got) == 7
	})
	if string(got) != "echo me" {
		t.Fatalf("got %q", got)
	}
}

func TestSyscallAndCopyCharged(t *testing.T) {
	h := newHosts(t)
	cli, srv := connectPair(t, h)
	h.a.ResetCounters()
	h.b.ResetCounters()
	payload := make([]byte, 4096)
	_, cost, err := h.a.Send(cli, payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := simclock.Datacenter2019()
	if cost < model.SyscallNS+model.CopyCost(4096) {
		t.Fatalf("send cost %v too low", cost)
	}
	ca := h.a.Counters()
	if ca.SyscallCrossings != 1 || ca.BytesCopied != 4096 {
		t.Fatalf("client counters: %+v", ca)
	}
	var got []byte
	h.pumpUntil(t, func() bool {
		b, _, err := h.b.Recv(srv, 0)
		if err == nil {
			got = append(got, b...)
		}
		return len(got) == 4096
	})
	cb := h.b.Counters()
	if cb.BytesCopied != 4096 {
		t.Fatalf("server should copy kernel->user exactly once: %+v", cb)
	}
}

func TestRecvWouldBlock(t *testing.T) {
	h := newHosts(t)
	cli, _ := connectPair(t, h)
	if _, _, err := h.a.Recv(cli, 0); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloseInvalidFD(t *testing.T) {
	h := newHosts(t)
	if _, err := h.a.Close(999); !errors.Is(err, ErrBadFD) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloseShutsDownTCP(t *testing.T) {
	h := newHosts(t)
	cli, srv := connectPair(t, h)
	h.a.Close(cli)
	h.pumpUntil(t, func() bool {
		_, _, err := h.b.Recv(srv, 0)
		return errors.Is(err, io.EOF)
	})
}

// --- pipes ---

func TestPipeStreamSemantics(t *testing.T) {
	model := simclock.Datacenter2019()
	k := New(&model, nil, netstack.IPv4Addr{})
	r, w, _ := k.Pipe()

	// Two logical messages written separately...
	k.WritePipe(w, []byte("messageA|"), 0)
	k.WritePipe(w, []byte("messageB|"), 0)
	// ...arrive as one undifferentiated byte stream.
	got, _, err := k.ReadPipe(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "messageA|messageB|" {
		t.Fatalf("got %q", got)
	}
	// Partial reads are the norm.
	k.WritePipe(w, []byte("0123456789"), 0)
	part, _, _ := k.ReadPipe(r, 4)
	if string(part) != "0123" {
		t.Fatalf("partial read = %q", part)
	}
	rest, _, _ := k.ReadPipe(r, 0)
	if string(rest) != "456789" {
		t.Fatalf("rest = %q", rest)
	}
}

func TestPipeEOF(t *testing.T) {
	model := simclock.Datacenter2019()
	k := New(&model, nil, netstack.IPv4Addr{})
	r, w, _ := k.Pipe()
	k.WritePipe(w, []byte("last"), 0)
	k.Close(w)
	if got, _, err := k.ReadPipe(r, 0); err != nil || string(got) != "last" {
		t.Fatalf("got %q err %v", got, err)
	}
	if _, _, err := k.ReadPipe(r, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestPipeBackpressure(t *testing.T) {
	model := simclock.Datacenter2019()
	k := New(&model, nil, netstack.IPv4Addr{})
	_, w, _ := k.Pipe()
	big := make([]byte, pipeCapacity+1000)
	n, _, err := k.WritePipe(w, big, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != pipeCapacity {
		t.Fatalf("accepted %d, want %d", n, pipeCapacity)
	}
}

// --- epoll ---

func TestEpollThunderingHerd(t *testing.T) {
	model := simclock.Datacenter2019()
	k := New(&model, nil, netstack.IPv4Addr{})
	r, w, _ := k.Pipe()
	ep := k.EpollCreate()
	ep.Add(r)

	const nWaiters = 8
	var started, winners atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < nWaiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Add(1)
			fds, _, ok := ep.Wait()
			if ok && len(fds) > 0 {
				winners.Add(1)
			}
		}()
	}
	// Let all waiters block.
	for started.Load() < nWaiters {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)

	k.WritePipe(w, []byte("one event"), 0)
	k.refreshReadiness(ep) // event delivery: wakes the whole herd

	// Exactly one waiter should win; release the rest via Close.
	deadline := time.Now().Add(2 * time.Second)
	for winners.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ep.Close()
	wg.Wait()
	if winners.Load() != 1 {
		t.Fatalf("winners = %d, want 1", winners.Load())
	}
	ctr := k.Counters()
	if ctr.Wakeups < nWaiters {
		t.Fatalf("Wakeups = %d, want >= %d (herd)", ctr.Wakeups, nWaiters)
	}
	if ctr.WastedWakeups < nWaiters-1 {
		t.Fatalf("WastedWakeups = %d, want >= %d", ctr.WastedWakeups, nWaiters-1)
	}
}

func TestEpollTryWait(t *testing.T) {
	model := simclock.Datacenter2019()
	k := New(&model, nil, netstack.IPv4Addr{})
	r, w, _ := k.Pipe()
	ep := k.EpollCreate()
	ep.Add(r)
	if fds, _ := ep.TryWait(); len(fds) != 0 {
		t.Fatalf("spurious readiness: %v", fds)
	}
	k.WritePipe(w, []byte("x"), 0)
	fds, _ := ep.TryWait()
	if len(fds) != 1 || fds[0] != r {
		t.Fatalf("fds = %v", fds)
	}
	// Level-triggered: still ready because data remains.
	fds, _ = ep.TryWait()
	if len(fds) != 1 {
		t.Fatalf("level-triggered readiness lost: %v", fds)
	}
	k.ReadPipe(r, 0)
	if fds, _ := ep.TryWait(); len(fds) != 0 {
		t.Fatalf("ready after drain: %v", fds)
	}
}

func TestEpollSocketReadiness(t *testing.T) {
	h := newHosts(t)
	cli, srv := connectPair(t, h)
	ep := h.b.EpollCreate()
	ep.Add(srv)
	if fds, _ := ep.TryWait(); len(fds) != 0 {
		t.Fatal("socket ready before data")
	}
	h.a.Send(cli, []byte("wake"), 0)
	var fds []FD
	h.pumpUntil(t, func() bool {
		fds, _ = ep.TryWait()
		return len(fds) == 1
	})
	if fds[0] != srv {
		t.Fatalf("fds = %v", fds)
	}
}

// --- files ---

func TestFileWriteReadFsync(t *testing.T) {
	model := simclock.Datacenter2019()
	k := New(&model, nil, netstack.IPv4Addr{})
	disk := spdk.New(&model, spdk.Config{})
	k.AttachDisk(disk)

	fd, _, err := k.OpenFile("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("abcdefgh"), 1500) // 12000 bytes, 3 blocks
	if _, err := k.WriteFile(fd, payload); err != nil {
		t.Fatal(err)
	}
	if disk.Stats().Writes != 0 {
		t.Fatal("write-back cache wrote through")
	}
	if _, err := k.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	// Journaling: 3 blocks * factor 2.
	if got := disk.Stats().Writes; got != 3*journalFactor {
		t.Fatalf("device writes = %d, want %d", got, 3*journalFactor)
	}
	got, _, err := k.ReadFile(fd, 4096, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[4096:4196]) {
		t.Fatal("read back wrong bytes")
	}
	if sz, _ := k.FileSize(fd); sz != len(payload) {
		t.Fatalf("size = %d", sz)
	}
}

func TestFileColdReadAfterDropCaches(t *testing.T) {
	model := simclock.Datacenter2019()
	k := New(&model, nil, netstack.IPv4Addr{})
	disk := spdk.New(&model, spdk.Config{})
	k.AttachDisk(disk)
	fd, _, _ := k.OpenFile("f")
	k.WriteFile(fd, bytes.Repeat([]byte{7}, 4096))
	k.Fsync(fd)
	k.DropCaches()
	before := disk.Stats().Reads
	_, coldCost, err := k.ReadFile(fd, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if disk.Stats().Reads != before+1 {
		t.Fatal("cold read did not hit the device")
	}
	_, warmCost, _ := k.ReadFile(fd, 0, 4096)
	if warmCost >= coldCost {
		t.Fatalf("warm read (%v) should be cheaper than cold (%v)", warmCost, coldCost)
	}
}

func TestFileWithoutDisk(t *testing.T) {
	model := simclock.Datacenter2019()
	k := New(&model, nil, netstack.IPv4Addr{})
	if _, _, err := k.OpenFile("f"); !errors.Is(err, ErrNoDisk) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadBeyondEOFTruncated(t *testing.T) {
	model := simclock.Datacenter2019()
	k := New(&model, nil, netstack.IPv4Addr{})
	disk := spdk.New(&model, spdk.Config{})
	k.AttachDisk(disk)
	fd, _, _ := k.OpenFile("f")
	k.WriteFile(fd, []byte("0123456789"))
	got, _, err := k.ReadFile(fd, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "56789" {
		t.Fatalf("got %q", got)
	}
}

func TestPipeWrongDirectionRejected(t *testing.T) {
	model := simclock.Datacenter2019()
	k := New(&model, nil, netstack.IPv4Addr{})
	r, w, _ := k.Pipe()
	if _, _, err := k.WritePipe(r, []byte("x"), 0); !errors.Is(err, ErrBadFD) {
		t.Fatalf("write to read end: %v", err)
	}
	if _, _, err := k.ReadPipe(w, 0); !errors.Is(err, ErrBadFD) {
		t.Fatalf("read from write end: %v", err)
	}
}

func TestSocketOpsOnWrongFDKind(t *testing.T) {
	h := newHosts(t)
	lfd, _, err := h.b.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	// Send on a listener is nonsense.
	if _, _, err := h.b.Send(lfd, []byte("x"), 0); !errors.Is(err, ErrBadFD) {
		t.Fatalf("send on listener: %v", err)
	}
	if _, _, err := h.b.Recv(lfd, 0); !errors.Is(err, ErrBadFD) {
		t.Fatalf("recv on listener: %v", err)
	}
	// Accept on a pipe is nonsense.
	r, _, _ := h.b.Pipe()
	if _, _, err := h.b.Accept(r); !errors.Is(err, ErrBadFD) {
		t.Fatalf("accept on pipe: %v", err)
	}
}

func TestDiskFullSurfaces(t *testing.T) {
	model := simclock.Datacenter2019()
	k := New(&model, nil, netstack.IPv4Addr{})
	k.AttachDisk(spdk.New(&model, spdk.Config{NumBlocks: 2}))
	fd, _, _ := k.OpenFile("big")
	_, err := k.WriteFile(fd, make([]byte, 3*spdk.BlockSize))
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("err = %v, want ErrDiskFull", err)
	}
}

func TestEpollCloseWakesWaiters(t *testing.T) {
	model := simclock.Datacenter2019()
	k := New(&model, nil, netstack.IPv4Addr{})
	ep := k.EpollCreate()
	done := make(chan bool, 1)
	go func() {
		_, _, ok := ep.Wait()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	ep.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("closed epoll returned ok=true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not released by Close")
	}
}

func TestUseAfterCloseRejected(t *testing.T) {
	h := newHosts(t)
	cli, _ := connectPair(t, h)
	h.a.Close(cli)
	if _, _, err := h.a.Send(cli, []byte("x"), 0); err == nil {
		t.Fatal("send on closed fd succeeded")
	}
	if _, _, err := h.a.Recv(cli, 0); err == nil {
		t.Fatal("recv on closed fd succeeded")
	}
}
