package nic

import (
	"math/rand"
	"testing"

	"demikernel/internal/fabric"
)

// TestSteeringIsolationProperty is the randomized isolation fence
// (ISSUE 6, satellite 4): no sequence of steering-rule installs —
// including ones the bounds check refuses — lets tenant A receive a
// frame addressed to tenant B. The adversary (tenant A) installs rules
// aimed at B's IP, at out-of-bounds ports, at foreign queues, and at
// its own resources; then randomized flows addressed to both tenants
// (plus strays) are injected and every delivered frame must sit in a
// queue range owned by its destination MAC's group.
func TestSteeringIsolationProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		d, inj := sharedNIC(t, 8)
		ga, err := d.NewQueueGroup("A", 3, GroupConfig{
			MAC:    macT1,
			IP:     ipT1,
			Bounds: SteeringBounds{PortLo: 5000, PortHi: 6000},
		})
		if err != nil {
			t.Fatal(err)
		}
		gb, err := d.NewQueueGroup("B", 3, GroupConfig{MAC: macT2, IP: ipT2})
		if err != nil {
			t.Fatal(err)
		}

		// Adversarial install phase: A tries everything.
		ips := [][4]byte{ipT1, ipT2, ipT3, {0, 0, 0, 0}}
		for i := 0; i < 200; i++ {
			r := SteeringRule{
				DstIP:     ips[rng.Intn(len(ips))],
				Proto:     []uint8{0, 6, 17}[rng.Intn(3)],
				DstPortLo: uint16(rng.Intn(9000)),
				Queue:     rng.Intn(8) - 2, // includes invalid queues
			}
			r.DstPortHi = r.DstPortLo + uint16(rng.Intn(2000))
			_ = ga.AddSteering(r) // denials are the point; ignore errors
			if rng.Intn(4) == 0 {
				_ = gb.AddSteering(SteeringRule{
					DstPortLo: uint16(1 + rng.Intn(60000)),
					DstPortHi: uint16(1 + rng.Intn(60000)),
					Queue:     rng.Intn(3),
				})
			}
		}

		// Traffic phase: flows to A, to B, and to nobody. The stray MAC
		// is never a frame source, so the switch floods it to the device
		// (a learned dst would be unicast back to the injector instead).
		macStray := fabric.MAC{0x02, 0, 0, 0, 1, 0xEE}
		macs := []fabric.MAC{macT1, macT2, macStray}
		sent := 0
		for i := 0; i < 500; i++ {
			dst := macs[rng.Intn(len(macs))]
			dstIP := ips[rng.Intn(3)]
			data := ipv4UDP(dst, macT3, [4]byte{10, 0, 0, 99}, dstIP,
				uint16(1 + rng.Intn(60000)), uint16(1 + rng.Intn(60000)), "prop")
			inj.Send(fabric.Frame{Data: data})
			sent++
			if rng.Intn(8) == 0 {
				inj.Send(fabric.Frame{Data: arpRequest(macT3, [4]byte{10, 0, 0, 99}, ips[rng.Intn(3)])})
				sent++
			}
			if i%32 != 0 {
				continue
			}
			checkOwnership(t, seed, d, ga, gb)
		}
		checkOwnership(t, seed, d, ga, gb)

		// Everything injected is accounted: delivered splits exactly into
		// received, ring-dropped, filter-dropped, and steer-dropped.
		s := d.Stats()
		if s.RxFrames+s.RxDropped+s.FilterDrops+s.SteerDrops != int64(sent) {
			t.Fatalf("seed %d: conservation: rx=%d dropped=%d filter=%d steer=%d, sent %d",
				seed, s.RxFrames, s.RxDropped, s.FilterDrops, s.SteerDrops, sent)
		}
	}
}

// checkOwnership drains every queue and asserts each frame landed
// inside the queue range of the group owning its destination.
func checkOwnership(t *testing.T, seed int64, d *Device, ga, gb *QueueGroup) {
	t.Helper()
	inRange := func(g *QueueGroup, q int) bool {
		return q >= g.BaseQueue() && q < g.BaseQueue()+g.NumRxQueues()
	}
	for q := 0; q < d.NumRxQueues(); q++ {
		for _, f := range d.RxBurst(q, 4096) {
			var dst fabric.MAC
			copy(dst[:], f.Data[0:6])
			switch {
			case dst == macT1:
				if !inRange(ga, q) {
					t.Fatalf("seed %d: frame for A on queue %d outside A's range", seed, q)
				}
			case dst == macT2:
				if !inRange(gb, q) {
					t.Fatalf("seed %d: frame for B on queue %d outside B's range", seed, q)
				}
			case dst == fabric.Broadcast:
				// ARP: owned by the target IP's group.
				var ip [4]byte
				copy(ip[:], f.Data[38:42])
				switch ip {
				case ipT1:
					if !inRange(ga, q) {
						t.Fatalf("seed %d: A's ARP on queue %d outside A's range", seed, q)
					}
				case ipT2:
					if !inRange(gb, q) {
						t.Fatalf("seed %d: B's ARP on queue %d outside B's range", seed, q)
					}
				default:
					t.Fatalf("seed %d: unowned ARP (target %v) delivered on queue %d", seed, ip, q)
				}
			default:
				t.Fatalf("seed %d: unowned frame (dst %v) delivered on queue %d", seed, dst, q)
			}
		}
	}
}
