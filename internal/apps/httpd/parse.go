package httpd

// Zero-copy HTTP/1.1 request parsing. A request popped off a catnip
// queue arrives as segments of raw bytes; the parser works in place —
// the returned path aliases the input — and the steady-state path
// allocates nothing. Only what the synthetic web workload needs is
// implemented: GET/HEAD, Connection, and single-interval Range headers;
// anything outside that envelope is a clean 400, never a panic.

import (
	"bytes"
	"errors"
)

// maxRequestBytes bounds how many bytes of a single request's head the
// server will buffer before giving up on the connection — the classic
// slowloris guard.
const maxRequestBytes = 8192

var (
	errMalformed = errors.New("httpd: malformed request")
	errTooLarge  = errors.New("httpd: request head too large")

	crlf2       = []byte("\r\n\r\n")
	methodGET   = []byte("GET")
	methodHEAD  = []byte("HEAD")
	httpVersion = []byte("HTTP/1.1")
	bytesPrefix = []byte("bytes=")
)

// Range header interval kinds.
const (
	rangeNone   = iota
	rangeFromTo // bytes=a-b (inclusive)
	rangeFrom   // bytes=a-
	rangeSuffix // bytes=-n (final n bytes)
)

// request is one parsed request. path aliases the parse buffer and is
// only valid until the buffer is recycled.
type request struct {
	head    bool // HEAD (GET otherwise)
	close   bool // Connection: close
	path    []byte
	rngKind int
	rngFrom int64
	rngTo   int64
}

// parseRequest parses the first request in buf. consumed == 0 means the
// request is still incomplete (wait for more bytes); a non-nil error
// means the connection is unsalvageable (respond 400 and close).
func parseRequest(buf []byte) (req request, consumed int, err error) {
	end := bytes.Index(buf, crlf2)
	if end < 0 {
		if len(buf) > maxRequestBytes {
			return request{}, 0, errTooLarge
		}
		return request{}, 0, nil
	}
	head := buf[:end]
	consumed = end + len(crlf2)

	// Request line: METHOD SP path SP HTTP/1.1
	eol := bytes.IndexByte(head, '\r')
	if eol < 0 {
		eol = len(head)
	}
	line := head[:eol]
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 {
		return request{}, 0, errMalformed
	}
	method := line[:sp]
	rest := line[sp+1:]
	sp = bytes.IndexByte(rest, ' ')
	if sp < 0 {
		return request{}, 0, errMalformed
	}
	req.path = rest[:sp]
	if !bytes.Equal(rest[sp+1:], httpVersion) {
		return request{}, 0, errMalformed
	}
	switch {
	case bytes.Equal(method, methodGET):
	case bytes.Equal(method, methodHEAD):
		req.head = true
	default:
		return request{}, 0, errMalformed
	}
	if len(req.path) == 0 || req.path[0] != '/' {
		return request{}, 0, errMalformed
	}

	// Header fields: only Connection and Range matter to the server;
	// everything else is skipped without validation.
	hdrs := head
	if eol+2 <= len(head) {
		hdrs = head[eol+2:]
	} else {
		hdrs = nil
	}
	for len(hdrs) > 0 {
		nl := bytes.IndexByte(hdrs, '\r')
		var hline []byte
		if nl < 0 {
			hline, hdrs = hdrs, nil
		} else {
			hline = hdrs[:nl]
			if nl+2 <= len(hdrs) {
				hdrs = hdrs[nl+2:]
			} else {
				hdrs = nil
			}
		}
		colon := bytes.IndexByte(hline, ':')
		if colon < 0 {
			return request{}, 0, errMalformed
		}
		name, val := hline[:colon], trimSpaces(hline[colon+1:])
		switch {
		case foldEq(name, "connection"):
			if foldEq(val, "close") {
				req.close = true
			}
		case foldEq(name, "range"):
			kind, from, to, ok := parseRange(val)
			if ok {
				req.rngKind, req.rngFrom, req.rngTo = kind, from, to
			}
			// A malformed Range header is ignored (RFC 9110 §14.2):
			// the response degrades to a full 200.
		}
	}
	return req, consumed, nil
}

// parseRange parses a single-interval "bytes=" range specifier.
func parseRange(val []byte) (kind int, from, to int64, ok bool) {
	if len(val) < len(bytesPrefix) || !foldEqBytes(val[:len(bytesPrefix)], bytesPrefix) {
		return rangeNone, 0, 0, false
	}
	spec := val[len(bytesPrefix):]
	dash := bytes.IndexByte(spec, '-')
	if dash < 0 {
		return rangeNone, 0, 0, false
	}
	left, right := spec[:dash], spec[dash+1:]
	switch {
	case len(left) == 0 && len(right) > 0: // bytes=-n
		n, ok := parseDecimal(right)
		if !ok {
			return rangeNone, 0, 0, false
		}
		return rangeSuffix, 0, n, true
	case len(left) > 0 && len(right) == 0: // bytes=a-
		a, ok := parseDecimal(left)
		if !ok {
			return rangeNone, 0, 0, false
		}
		return rangeFrom, a, 0, true
	case len(left) > 0 && len(right) > 0: // bytes=a-b
		a, okA := parseDecimal(left)
		b, okB := parseDecimal(right)
		if !okA || !okB || b < a {
			return rangeNone, 0, 0, false
		}
		return rangeFromTo, a, b, true
	}
	return rangeNone, 0, 0, false
}

// parseDecimal parses an unsigned decimal without allocating.
func parseDecimal(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// trimSpaces strips leading/trailing spaces and tabs in place.
func trimSpaces(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// foldEq reports ASCII case-insensitive equality of b against the
// lower-case literal s, without allocating.
func foldEq(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// foldEqBytes is foldEq over a lower-case byte-slice literal.
func foldEqBytes(b, lower []byte) bool {
	if len(b) != len(lower) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}

// routeOf extracts the first path segment for per-route telemetry:
// "/obj/00042" → "obj", "/" → "/".
func routeOf(path []byte) []byte {
	if len(path) <= 1 {
		return path
	}
	p := path[1:]
	if i := bytes.IndexByte(p, '/'); i >= 0 {
		p = p[:i]
	}
	return p
}
